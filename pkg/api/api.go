// Package api is the versioned wire contract of the noded client API:
// the typed request/response documents, the uniform JSON error envelope
// with its canonical error codes, and the route constants. Daemon
// (cmd/noded), client library (pkg/client), load generator
// (cmd/nodeload) and tests all share these definitions, so the contract
// lives in exactly one place.
//
// Every response — including every non-200 — carries
// Content-Type: application/json. Errors are always the envelope
//
//	{"code": "<canonical code>", "error": "<human message>", "shard": i}
//
// where shard appears only when the failing operation was addressed to
// a known shard. The envelope is versioned with the routes: a /v1
// endpoint never changes the meaning of an existing field, it only adds
// fields.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
)

// Version is the API version segment all routes live under.
const Version = "v1"

// Route constants of the /v1 contract. Register and per-shard routes
// take a path parameter; use RegPath/ShardPath to build request URLs
// with correct escaping.
const (
	PathStatus          = "/v1/status"
	PathHealthz         = "/v1/healthz"
	PathShards          = "/v1/shards"
	PathReg             = "/v1/reg/"
	PathSMRPropose      = "/v1/smr/propose"
	PathSMRLog          = "/v1/smr/log"
	PathStorage         = "/v1/storage"
	PathStorageSnapshot = "/v1/storage/snapshot"
)

// Unversioned operational endpoints. These sit outside the /v1
// contract: they follow ecosystem conventions rather than this API's
// versioning and envelope rules, and their output schemas (Prometheus
// text exposition format, the net/http/pprof pages) may change with the
// implementation.
const (
	// PathMetrics serves the node's metrics in Prometheus text
	// exposition format (always on).
	PathMetrics = "/metrics"
	// PathPprof is the net/http/pprof index; it is served only when the
	// daemon was started with -pprof.
	PathPprof = "/debug/pprof/"
)

// MaxBody bounds request and response bodies on both sides of the wire.
const MaxBody = 1 << 20

// RegPath returns the route of one register, escaping the name so any
// non-empty register name round-trips through the URL. The dot-segment
// names "." and ".." are percent-encoded by hand: url.PathEscape
// leaves them bare, and a bare dot segment would be rewritten away by
// HTTP path cleaning before it ever reached the handler.
func RegPath(name string) string {
	switch name {
	case ".":
		return PathReg + "%2E"
	case "..":
		return PathReg + "%2E%2E"
	}
	return PathReg + url.PathEscape(name)
}

// ShardPath returns the route of one shard's status document.
func ShardPath(i int) string {
	return fmt.Sprintf("%s/%d", PathShards, i)
}

// StoragePath returns the route of one shard's storage document.
func StoragePath(i int) string {
	return fmt.Sprintf("%s/%d", PathStorage, i)
}

// Canonical error codes carried by the envelope. Clients should branch
// on these, never on message text.
const (
	// CodeBadRequest: malformed request (unreadable body, bad JSON).
	CodeBadRequest = "bad_request"
	// CodeBadShard: the addressed shard index is malformed or outside
	// the node's shard range.
	CodeBadShard = "bad_shard"
	// CodeEmptyRegister: the register name is empty or all whitespace.
	CodeEmptyRegister = "empty_register"
	// CodeNotFound: no such route.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the route exists but not for this method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverload: the submission queue is full; retry after backoff.
	CodeOverload = "overload"
	// CodeUnavailable: the node is down or shutting down.
	CodeUnavailable = "unavailable"
	// CodeTimeout: the operation did not complete within the node's
	// operation deadline (no quorum, mid-reconfiguration); retry.
	CodeTimeout = "timeout"
	// CodeStorageUnavailable: the node runs without a durability
	// backend, or its backend latched a disk fault; another replica may
	// still serve storage operations, so clients fail over.
	CodeStorageUnavailable = "storage_unavailable"
	// CodeSnapshotInProgress: a snapshot is already being taken for the
	// addressed shard. A client mistake to retry elsewhere — snapshots
	// are per-node — so it maps to a 4xx and is never failed over.
	CodeSnapshotInProgress = "snapshot_in_progress"
)

// statusOf maps canonical codes to HTTP status codes.
var statusOf = map[string]int{
	CodeBadRequest:       http.StatusBadRequest,
	CodeBadShard:         http.StatusBadRequest,
	CodeEmptyRegister:    http.StatusBadRequest,
	CodeNotFound:         http.StatusNotFound,
	CodeMethodNotAllowed: http.StatusMethodNotAllowed,
	CodeOverload:         http.StatusTooManyRequests,
	CodeUnavailable:      http.StatusServiceUnavailable,
	CodeTimeout:          http.StatusGatewayTimeout,

	CodeStorageUnavailable: http.StatusServiceUnavailable,
	CodeSnapshotInProgress: http.StatusConflict,
}

// StatusOf returns the HTTP status a canonical code is served with
// (500 for unknown codes).
func StatusOf(code string) int {
	if s, ok := statusOf[code]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// CodeFor returns the canonical code a bare HTTP status maps to, for
// responses that did not carry a decodable envelope. Statuses shared
// by several codes map to the most generic one.
func CodeFor(status int) string {
	switch status {
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusTooManyRequests:
		return CodeOverload
	case http.StatusGatewayTimeout:
		return CodeTimeout
	case http.StatusConflict:
		return CodeSnapshotInProgress
	}
	if status >= 500 {
		return CodeUnavailable
	}
	return CodeBadRequest
}

// Error is the uniform error envelope. It is both the wire document and
// a Go error value: servers marshal it, clients unmarshal it and return
// it from calls so callers can branch on Code (and HTTPStatus, which is
// not serialized — it travels as the response status line).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"error"`
	// Shard is the shard the failing operation was addressed to, when
	// the server knew it.
	Shard *int `json:"shard,omitempty"`
	// HTTPStatus is the status line the envelope traveled under;
	// filled by the server from Code, and by the client from the
	// response.
	HTTPStatus int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Shard != nil {
		return fmt.Sprintf("api: %s (shard %d): %s", e.Code, *e.Shard, e.Message)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// Errorf builds an envelope from a canonical code and a format string.
func Errorf(code, format string, a ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, a...), HTTPStatus: StatusOf(code)}
}

// WithShard returns a copy of the envelope tagged with the shard the
// operation was addressed to.
func (e *Error) WithShard(shard int) *Error {
	c := *e
	c.Shard = &shard
	return &c
}

// IsRetryable reports whether the error names a condition another node
// (or a later retry) could serve: server-side faults and per-node
// overload (each node's submission queue is its own — an idle peer may
// accept what a busy one refused), not client mistakes.
func (e *Error) IsRetryable() bool {
	return e.HTTPStatus >= 500 || e.HTTPStatus == http.StatusTooManyRequests
}

// DecodeError reconstructs the envelope from a non-2xx response. Bodies
// that are not an envelope (intermediaries, panics) are folded into a
// synthetic one so callers always get canonical codes.
func DecodeError(status int, body []byte) *Error {
	var e Error
	if json.Unmarshal(body, &e) == nil && e.Code != "" {
		e.HTTPStatus = status
		return &e
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &Error{Code: CodeFor(status), Message: msg, HTTPStatus: status}
}

// WriteJSON writes a 200 response document with the contract's
// Content-Type.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the envelope under the status its code maps to
// (HTTPStatus, when set, wins — it lets intercepted statuses pass
// through unchanged).
func WriteError(w http.ResponseWriter, e *Error) {
	status := e.HTTPStatus
	if status == 0 {
		status = StatusOf(e.Code)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(e)
}

// Health is the liveness document at GET /v1/healthz. It is served
// without touching the node's execution context, so it answers even
// while the stack is wedged — liveness, not readiness; readiness is
// Status.Serving.
type Health struct {
	OK bool `json:"ok"`
	ID int  `json:"id"`
}

// Status is the introspection document at GET /v1/status. The top-level
// view fields mirror shard 0 (the pre-sharding surface, which scripts
// and older clients grep); Shards carries every shard's service-layer
// state.
type Status struct {
	ID           int    `json:"id"`
	Ticks        uint64 `json:"ticks"`
	Participant  bool   `json:"participant"`
	NoReco       bool   `json:"noReco"`
	HasConfig    bool   `json:"hasConfig"`
	Config       []int  `json:"config"`
	Trusted      []int  `json:"trusted"`
	Participants []int  `json:"participants"`
	HasView      bool   `json:"hasView"`
	ViewCoord    int    `json:"viewCoordinator"`
	ViewMembers  []int  `json:"viewMembers"`
	// Serving means the node can make progress on client operations: it
	// participates, holds an agreed configuration, and every shard sits
	// in an installed view.
	Serving bool          `json:"serving"`
	Shards  []ShardStatus `json:"shards"`
}

// ServingWithout reports whether the node serves and the given id has
// left its configuration and every shard's view. exclude 0 means no
// exclusion (node ids start at 1).
func (s Status) ServingWithout(exclude int) bool {
	if !s.Serving {
		return false
	}
	if intsContain(s.Config, exclude) || intsContain(s.ViewMembers, exclude) {
		return false
	}
	for _, sh := range s.Shards {
		if intsContain(sh.ViewMembers, exclude) {
			return false
		}
	}
	return true
}

func intsContain(xs []int, x int) bool {
	if x == 0 {
		return false
	}
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ShardStatus is one shard's service-layer state at GET /v1/shards and
// /v1/shards/{shard}: the reconfiguration fields live on the singleton
// layer (Status); only the view-bearing service layer is per shard.
type ShardStatus struct {
	Shard       int    `json:"shard"`
	HasView     bool   `json:"hasView"`
	ViewCoord   int    `json:"viewCoordinator,omitempty"`
	ViewMembers []int  `json:"viewMembers,omitempty"`
	Registers   int    `json:"registers"`
	Rounds      uint64 `json:"rounds"`
	Serving     bool   `json:"serving"`
}

// RegResponse answers register reads and writes. Shard echoes the shard
// the server routed the register to; clients configured with the
// cluster's shard count verify it against their own router.
type RegResponse struct {
	Name  string `json:"name"`
	Shard int    `json:"shard"`
	Value string `json:"value,omitempty"`
	Found bool   `json:"found,omitempty"`
	Done  bool   `json:"done"`
}

// ProposeRequest submits a raw SMR command at POST /v1/smr/propose.
type ProposeRequest struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// ProposeResponse acknowledges an accepted SMR submission.
type ProposeResponse struct {
	Accepted bool `json:"accepted"`
	Shard    int  `json:"shard"`
}

// LogEntry is one applied SMR command at GET /v1/smr/log.
type LogEntry struct {
	View   string `json:"view"`
	Rnd    uint64 `json:"rnd"`
	Member int    `json:"member"`
	Cmd    string `json:"cmd"`
}

// StorageStatus is the node-level durability document at
// GET /v1/storage. Attached reports whether the node runs with a
// durability backend at all; when it is false Shards is empty and the
// per-shard routes answer storage_unavailable.
type StorageStatus struct {
	ID       int                  `json:"id"`
	Attached bool                 `json:"attached"`
	Kind     string               `json:"kind,omitempty"`
	Fsync    string               `json:"fsync,omitempty"`
	DataDir  string               `json:"dataDir,omitempty"`
	Shards   []ShardStorageStatus `json:"shards,omitempty"`
}

// ShardStorageStatus is one shard's backend counters, at
// GET /v1/storage and /v1/storage/{shard}. The fields mirror the
// storage module's Stats: WAL tail size, lifetime append count,
// snapshot coverage, what recovery replayed at boot, and the latched
// failure state.
type ShardStorageStatus struct {
	Shard         int    `json:"shard"`
	Kind          string `json:"kind"`
	WALRecords    uint64 `json:"walRecords"`
	WALBytes      uint64 `json:"walBytes"`
	Appended      uint64 `json:"appended"`
	Snapshots     uint64 `json:"snapshots"`
	SnapshotIndex uint64 `json:"snapshotIndex"`
	SnapshotBytes uint64 `json:"snapshotBytes"`
	// LastSnapshotUnix is when the newest snapshot was saved, as Unix
	// seconds (0 when none, or when it predates this process).
	LastSnapshotUnix int64 `json:"lastSnapshotUnix,omitempty"`
	// Recovery of the boot-time replay: whether anything was recovered,
	// whether a snapshot was loaded, and what the WAL tail contributed.
	Recovered         bool   `json:"recovered,omitempty"`
	SnapshotLoaded    bool   `json:"snapshotLoaded,omitempty"`
	RecoveredBytes    uint64 `json:"recoveredBytes,omitempty"`
	TailRecords       int    `json:"tailRecords,omitempty"`
	SkippedRecords    int    `json:"skippedRecords,omitempty"`
	TruncatedWALBytes int64  `json:"truncatedWalBytes,omitempty"`
	// Failed reports the backend latched after a storage fault;
	// LastError carries the fault text.
	Failed    bool   `json:"failed,omitempty"`
	LastError string `json:"lastError,omitempty"`
}

// SnapshotRequest asks POST /v1/storage/snapshot to compact now. Shard
// selects one shard; nil means every shard.
type SnapshotRequest struct {
	Shard *int `json:"shard,omitempty"`
}

// SnapshotResponse acknowledges a forced compaction, echoing the
// per-shard backend counters after the snapshot was taken.
type SnapshotResponse struct {
	Snapshotted []int                `json:"snapshotted"`
	Shards      []ShardStorageStatus `json:"shards,omitempty"`
}
