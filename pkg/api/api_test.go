package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegPathEscapes(t *testing.T) {
	cases := map[string]string{
		"plain":   "/v1/reg/plain",
		"a/b":     "/v1/reg/a%2Fb",
		"sp ace":  "/v1/reg/sp%20ace",
		"q?x=1&y": "/v1/reg/q%3Fx=1&y",
		// Bare dot segments would be cleaned out of the path; they
		// must travel percent-encoded.
		".":  "/v1/reg/%2E",
		"..": "/v1/reg/%2E%2E",
	}
	for name, want := range cases {
		if got := RegPath(name); got != want {
			t.Errorf("RegPath(%q) = %q, want %q", name, got, want)
		}
	}
	if got := ShardPath(3); got != "/v1/shards/3" {
		t.Errorf("ShardPath(3) = %q", got)
	}
	if got := StoragePath(2); got != "/v1/storage/2" {
		t.Errorf("StoragePath(2) = %q", got)
	}
}

func TestStatusOfCodes(t *testing.T) {
	cases := map[string]int{
		CodeBadRequest:       http.StatusBadRequest,
		CodeBadShard:         http.StatusBadRequest,
		CodeEmptyRegister:    http.StatusBadRequest,
		CodeNotFound:         http.StatusNotFound,
		CodeMethodNotAllowed: http.StatusMethodNotAllowed,
		CodeOverload:         http.StatusTooManyRequests,
		CodeUnavailable:      http.StatusServiceUnavailable,
		CodeTimeout:          http.StatusGatewayTimeout,

		CodeStorageUnavailable: http.StatusServiceUnavailable,
		CodeSnapshotInProgress: http.StatusConflict,
	}
	for code, want := range cases {
		if got := StatusOf(code); got != want {
			t.Errorf("StatusOf(%q) = %d, want %d", code, got, want)
		}
	}
	if StatusOf("no-such-code") != http.StatusInternalServerError {
		t.Error("unknown code should map to 500")
	}
}

// TestErrorEnvelopeRoundTrip: WriteError → DecodeError preserves code,
// message, shard and status, and the wire form is the documented
// {code, error, shard?} shape.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, Errorf(CodeTimeout, "write did not complete").WithShard(2))

	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var wire map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if wire["code"] != "timeout" || wire["error"] != "write did not complete" || wire["shard"] != float64(2) {
		t.Fatalf("wire form %v", wire)
	}

	e := DecodeError(rec.Code, rec.Body.Bytes())
	if e.Code != CodeTimeout || e.Message != "write did not complete" {
		t.Fatalf("decoded %+v", e)
	}
	if e.Shard == nil || *e.Shard != 2 {
		t.Fatalf("decoded shard %v", e.Shard)
	}
	if e.HTTPStatus != http.StatusGatewayTimeout || !e.IsRetryable() {
		t.Fatalf("decoded status %d retryable=%v", e.HTTPStatus, e.IsRetryable())
	}
	if !strings.Contains(e.Error(), "timeout") || !strings.Contains(e.Error(), "shard 2") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

// TestDecodeErrorSynthesizesEnvelope: plain-text bodies (intermediaries,
// panics) fold into a synthetic envelope with a canonical code.
func TestDecodeErrorSynthesizesEnvelope(t *testing.T) {
	e := DecodeError(http.StatusBadGateway, []byte("upstream exploded\n"))
	if e.Code != CodeUnavailable || e.Message != "upstream exploded" || !e.IsRetryable() {
		t.Fatalf("synthetic 502 envelope %+v", e)
	}
	e = DecodeError(http.StatusNotFound, nil)
	if e.Code != CodeNotFound || e.Message != http.StatusText(http.StatusNotFound) {
		t.Fatalf("synthetic 404 envelope %+v", e)
	}
	e = DecodeError(http.StatusTeapot, []byte(`{"weird":true}`))
	if e.Code != CodeBadRequest || e.IsRetryable() {
		t.Fatalf("synthetic 418 envelope %+v", e)
	}
	// Overload is retryable: the submission queue is per-node.
	if !Errorf(CodeOverload, "queue full").IsRetryable() {
		t.Error("429 overload must be retryable")
	}
	if Errorf(CodeBadShard, "bad").IsRetryable() {
		t.Error("400 must not be retryable")
	}
}

// TestStorageCodeSemantics pins the failover contract of the storage
// codes: a missing/failed backend is a node-local condition a peer may
// not share (retryable 503), while a snapshot already in flight is a
// caller-side conflict that must never be failed over (409).
func TestStorageCodeSemantics(t *testing.T) {
	if e := Errorf(CodeStorageUnavailable, "no backend"); !e.IsRetryable() {
		t.Error("storage_unavailable must be retryable (another node may have a backend)")
	}
	if e := Errorf(CodeSnapshotInProgress, "busy"); e.IsRetryable() {
		t.Error("snapshot_in_progress must not be retryable (snapshots are per-node)")
	}
	// A bare 409 with no envelope reconstructs the canonical code.
	if e := DecodeError(http.StatusConflict, nil); e.Code != CodeSnapshotInProgress {
		t.Errorf("bare 409 decoded to %q", e.Code)
	}
	// The envelope round-trips through WriteError/DecodeError.
	rec := httptest.NewRecorder()
	WriteError(rec, Errorf(CodeSnapshotInProgress, "snapshot already running").WithShard(1))
	if rec.Code != http.StatusConflict {
		t.Fatalf("status %d, want 409", rec.Code)
	}
	e := DecodeError(rec.Code, rec.Body.Bytes())
	if e.Code != CodeSnapshotInProgress || e.Shard == nil || *e.Shard != 1 || e.IsRetryable() {
		t.Fatalf("decoded %+v retryable=%v", e, e.IsRetryable())
	}
}

func TestServingWithout(t *testing.T) {
	st := Status{
		Serving:     true,
		Config:      []int{1, 2},
		ViewMembers: []int{1, 2},
		Shards: []ShardStatus{
			{Shard: 0, ViewMembers: []int{1, 2}},
			{Shard: 1, ViewMembers: []int{1, 2, 3}},
		},
	}
	if !st.ServingWithout(0) {
		t.Error("exclude 0 must mean no exclusion")
	}
	if st.ServingWithout(2) {
		t.Error("id 2 still in config/view")
	}
	if st.ServingWithout(3) {
		t.Error("id 3 still in shard 1's view")
	}
	if !st.ServingWithout(9) {
		t.Error("absent id should pass")
	}
	st.Serving = false
	if st.ServingWithout(9) {
		t.Error("non-serving node can never pass")
	}
}
