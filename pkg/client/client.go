// Package client is the cluster-aware Go client for the noded HTTP API
// (the /v1 contract in repro/pkg/api). One Client fronts a whole
// cluster: it is built from every node's API endpoint, keeps a pooled
// HTTP connection set per node, routes register operations to a
// preferred node by the same deterministic hash router the servers use
// (internal/shard.ShardFor), and fails over to the remaining nodes on
// connect errors and 5xx responses. All operations take a context;
// calls without a deadline get the client's default timeout.
//
// Shard routing is client-side by design: every node hosts every shard,
// so any node can serve any request, but spreading shard s's traffic
// onto endpoint s mod len(endpoints) keeps each shard's round pipeline
// fed from a stable node and spreads load without a coordinator (the
// same placement-by-hash argument DESIGN.md §9 makes for the servers).
// When the client knows the cluster's shard count it also verifies the
// Shard echoed in register responses against its own router, so a
// client/cluster shard-count mismatch surfaces as an explicit error
// instead of silent misrouting.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/shard"
	"repro/pkg/api"
)

// Option configures a Client.
type Option func(*Client)

// WithShards tells the client the cluster's register shard count, n ≥ 1.
// It enables shard-aware endpoint routing for register operations and
// verification of the Shard echoed in register responses. 0 (the
// default) means unknown: register traffic round-robins and echoes are
// not checked.
func WithShards(n int) Option {
	return func(c *Client) { c.shards = n }
}

// WithTimeout sets the default per-call deadline applied when the
// caller's context has none. The default is 30s; 0 disables it.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithPasses sets how many full passes over the endpoint list one call
// may make before giving up (default 1: every node is tried once).
func WithPasses(n int) Option {
	return func(c *Client) {
		if n >= 1 {
			c.passes = n
		}
	}
}

// WithBackoff sets the failover retry pacing: the base delay before the
// first retry and the cap the exponential growth saturates at. The
// defaults are 2ms and 250ms; base 0 disables backoff entirely
// (restoring the pre-backoff back-to-back retries, for tests that count
// attempts).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		c.backoffBase, c.backoffMax = base, max
		if c.backoffMax < c.backoffBase {
			c.backoffMax = c.backoffBase
		}
	}
}

// WithBackoffSeed sets the seed of the deterministic per-attempt retry
// jitter. Two clients with the same seed pause identically on the same
// attempt sequence, so failover tests and churn runs stay reproducible;
// give concurrent workers distinct seeds to decorrelate their retries.
func WithBackoffSeed(seed int64) Option {
	return func(c *Client) { c.backoffSeed = seed }
}

// Client is a cluster-aware noded API client. It is safe for concurrent
// use; the load generator shares one Client across all its workers.
type Client struct {
	endpoints   []string
	nodes       []*http.Client
	shards      int
	timeout     time.Duration
	passes      int
	backoffBase time.Duration
	backoffMax  time.Duration
	backoffSeed int64
	rr          atomic.Uint64
}

// New builds a client over the given node API endpoints ("host:port" or
// full "http://host:port" base URLs). At least one endpoint is
// required; order is preserved and defines the shard→endpoint mapping.
func New(endpoints []string, opts ...Option) (*Client, error) {
	c := &Client{
		timeout:     30 * time.Second,
		passes:      1,
		backoffBase: 2 * time.Millisecond,
		backoffMax:  250 * time.Millisecond,
	}
	for _, e := range endpoints {
		e = strings.TrimRight(strings.TrimSpace(e), "/")
		if e == "" {
			continue
		}
		if !strings.Contains(e, "://") {
			e = "http://" + e
		}
		c.endpoints = append(c.endpoints, e)
		// One pooled connection set per node: failover probes must not
		// evict another node's warm connections, and a slow node's
		// queue must not head-of-line-block the rest.
		c.nodes = append(c.nodes, &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
		}})
	}
	if len(c.endpoints) == 0 {
		return nil, fmt.Errorf("client: no endpoints")
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Close releases every per-node pool's idle keep-alive connections.
// Call it when discarding a Client; the Client is unusable afterwards
// only in the sense that new requests will re-dial.
func (c *Client) Close() {
	for _, hc := range c.nodes {
		if t, ok := hc.Transport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
	}
}

// Endpoints returns the normalized endpoint list in routing order.
func (c *Client) Endpoints() []string {
	return append([]string(nil), c.endpoints...)
}

// Shards returns the configured cluster shard count (0 = unknown).
func (c *Client) Shards() int { return c.shards }

// endpointFor maps a shard index to its preferred endpoint. The
// round-robin modulus happens in uint64 so the counter's eventual wrap
// can never produce a negative index.
func (c *Client) endpointFor(sh int) int {
	if sh < 0 || c.shards <= 0 {
		return int(c.rr.Add(1) % uint64(len(c.endpoints)))
	}
	return sh % len(c.endpoints)
}

// regShard returns the shard a register routes to, or -1 when the
// client does not know the cluster's shard count.
func (c *Client) regShard(name string) int {
	if c.shards <= 0 {
		return -1
	}
	return shard.ShardFor(name, c.shards)
}

// do runs one API call with failover: the preferred endpoint first,
// then the rest in ring order, retrying on connect/transport errors and
// retryable envelopes (5xx, and 429 — submission queues are per-node).
// Non-retryable envelopes (the request itself is wrong) return
// immediately — another node would refuse them identically. Retries are
// paced by capped exponential backoff with deterministic jitter (see
// backoffDelay): against a fully-down cluster the ring loop must not
// degenerate into a tight retry storm until the context expires.
func (c *Client) do(ctx context.Context, pref int, method, path string, body []byte, out any) error {
	if _, has := ctx.Deadline(); !has && c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var lastErr error
	attempts := 0
	for pass := 0; pass < c.passes; pass++ {
		for k := 0; k < len(c.endpoints); k++ {
			i := (pref + k) % len(c.endpoints)
			if attempts > 0 && c.backoffBase > 0 {
				if !sleepCtx(ctx, c.backoffDelay(attempts)) {
					return lastErr
				}
			}
			attempts++
			// Bound each attempt by the default per-call timeout even
			// when the caller brought a longer deadline: a node that
			// accepts connections but never answers (wedged handler)
			// must not consume the whole budget and starve failover.
			attempt, cancel := ctx, context.CancelFunc(func() {})
			if c.timeout > 0 {
				attempt, cancel = context.WithTimeout(ctx, c.timeout)
			}
			err := c.once(attempt, i, method, path, body, out)
			cancel()
			if err == nil {
				return nil
			}
			lastErr = err
			var ae *api.Error
			if errors.As(err, &ae) && !ae.IsRetryable() {
				return err
			}
			if ctx.Err() != nil {
				return lastErr
			}
		}
	}
	return lastErr
}

// backoffDelay returns the pause before retry attempt k (k ≥ 1): the
// exponential base·2^(k−1) capped at the configured maximum, then
// scaled into [cap/2, cap) by a per-attempt jitter derived from the
// client's backoff seed via FNV-1a. The jitter is a pure function of
// (seed, k) — no shared RNG state, so concurrent calls never contend
// and reruns with the same seed pause identically.
func (c *Client) backoffDelay(k int) time.Duration {
	d := c.backoffBase
	for i := 1; i < k && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", c.backoffSeed, k)
	frac := float64(h.Sum64()%1024) / 1024
	return d/2 + time.Duration(frac*float64(d/2))
}

// sleepCtx pauses for d, reporting false when ctx expired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// once issues one request against one endpoint.
func (c *Client) once(ctx context.Context, i int, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.endpoints[i]+path, rd)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	resp, err := c.nodes[i].Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", c.endpoints[i], err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, api.MaxBody))
	if err != nil {
		return fmt.Errorf("client: %s: read response: %w", c.endpoints[i], err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return api.DecodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	// Decode into a fresh value and assign only on success: a corrupt
	// 200 body counts as a failed attempt, and a failed attempt must
	// not leak partially-decoded fields into the result a later
	// endpoint's answer is merged over.
	fresh := reflect.New(reflect.TypeOf(out).Elem())
	if err := json.Unmarshal(data, fresh.Interface()); err != nil {
		return fmt.Errorf("client: %s: decode %s: %w", c.endpoints[i], path, err)
	}
	reflect.ValueOf(out).Elem().Set(fresh.Elem())
	return nil
}

// Healthz fetches the liveness document (failing over across nodes).
func (c *Client) Healthz(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, c.endpointFor(-1), http.MethodGet, api.PathHealthz, nil, &h)
	return h, err
}

// Status fetches the node introspection document.
func (c *Client) Status(ctx context.Context) (api.Status, error) {
	var st api.Status
	err := c.do(ctx, c.endpointFor(-1), http.MethodGet, api.PathStatus, nil, &st)
	return st, err
}

// ShardStatuses fetches every shard's service-layer status.
func (c *Client) ShardStatuses(ctx context.Context) ([]api.ShardStatus, error) {
	var out []api.ShardStatus
	err := c.do(ctx, c.endpointFor(-1), http.MethodGet, api.PathShards, nil, &out)
	return out, err
}

// ShardStatus fetches one shard's service-layer status.
func (c *Client) ShardStatus(ctx context.Context, sh int) (api.ShardStatus, error) {
	var out api.ShardStatus
	err := c.do(ctx, c.endpointFor(sh), http.MethodGet, api.ShardPath(sh), nil, &out)
	return out, err
}

// Read serves a fast local read of a register: the routed node's
// current replica value, no round flush.
func (c *Client) Read(ctx context.Context, name string) (api.RegResponse, error) {
	return c.reg(ctx, name, http.MethodGet, api.RegPath(name), nil)
}

// SyncRead serves a synchronous read: the routed node flushes a marker
// round first, so the result reflects every write completed before the
// call started.
func (c *Client) SyncRead(ctx context.Context, name string) (api.RegResponse, error) {
	return c.reg(ctx, name, http.MethodGet, api.RegPath(name)+"?sync=1", nil)
}

// Write replicates value into the named register, completing when the
// owning shard's round pipeline has delivered it. Delivery is
// at-least-once: a timed-out attempt may still complete later, and the
// failover retry then delivers the value a second time — under
// concurrent writers, such a late duplicate can land after (and win
// over) a newer write to the same register, as any MWMR last-write
// re-delivery would.
func (c *Client) Write(ctx context.Context, name, value string) (api.RegResponse, error) {
	return c.reg(ctx, name, http.MethodPut, api.RegPath(name), []byte(value))
}

func (c *Client) reg(ctx context.Context, name, method, path string, body []byte) (api.RegResponse, error) {
	sh := c.regShard(name)
	var resp api.RegResponse
	if err := c.do(ctx, c.endpointFor(sh), method, path, body, &resp); err != nil {
		return resp, err
	}
	if sh >= 0 && resp.Shard != sh {
		return resp, fmt.Errorf(
			"client: shard mismatch for %q: server says shard %d, local router (shards=%d) says %d — client and cluster disagree on the shard count",
			name, resp.Shard, c.shards, sh)
	}
	return resp, nil
}

// Propose submits a raw SMR command to the given shard's replicated
// state machine. Delivery is at-least-once: if a node accepts the
// submission but its response is lost, failover re-submits to another
// node and the command may appear in the replicated log twice. KVPut
// is idempotent in effect; log-count consumers must tolerate
// duplicates.
func (c *Client) Propose(ctx context.Context, sh int, key, value string) (api.ProposeResponse, error) {
	body, err := json.Marshal(api.ProposeRequest{Key: key, Value: value})
	if err != nil {
		return api.ProposeResponse{}, err
	}
	var resp api.ProposeResponse
	err = c.do(ctx, c.endpointFor(sh), http.MethodPost,
		fmt.Sprintf("%s?shard=%d", api.PathSMRPropose, sh), body, &resp)
	return resp, err
}

// Log fetches the tail (up to n entries) of the given shard's applied
// SMR command log.
func (c *Client) Log(ctx context.Context, sh, n int) ([]api.LogEntry, error) {
	var out []api.LogEntry
	err := c.do(ctx, c.endpointFor(sh), http.MethodGet,
		fmt.Sprintf("%s?n=%d&shard=%d", api.PathSMRLog, n, sh), nil, &out)
	return out, err
}

// StorageStatus fetches the node-level durability document: whether a
// backend is attached, its kind and fsync policy, and every shard's
// counters. Like the other introspection calls it fails over, so the
// answer describes whichever node served it (check its ID field).
func (c *Client) StorageStatus(ctx context.Context) (api.StorageStatus, error) {
	var st api.StorageStatus
	err := c.do(ctx, c.endpointFor(-1), http.MethodGet, api.PathStorage, nil, &st)
	return st, err
}

// ShardStorage fetches one shard's backend counters.
func (c *Client) ShardStorage(ctx context.Context, sh int) (api.ShardStorageStatus, error) {
	var st api.ShardStorageStatus
	err := c.do(ctx, c.endpointFor(sh), http.MethodGet, api.StoragePath(sh), nil, &st)
	return st, err
}

// ForceSnapshot asks a node to compact its WAL into a snapshot now, for
// one shard (sh ≥ 0) or every shard (sh < 0). Snapshots are per-node
// state: connect errors and 5xx still fail over (some node compacts),
// but the snapshot_in_progress refusal is a 409 and returns immediately
// — retrying it on a different node would compact a different node's
// log, not wait out this one's.
func (c *Client) ForceSnapshot(ctx context.Context, sh int) (api.SnapshotResponse, error) {
	var req api.SnapshotRequest
	if sh >= 0 {
		req.Shard = &sh
	}
	body, err := json.Marshal(req)
	if err != nil {
		return api.SnapshotResponse{}, err
	}
	var resp api.SnapshotResponse
	err = c.do(ctx, c.endpointFor(sh), http.MethodPost, api.PathStorageSnapshot, body, &resp)
	return resp, err
}

// WaitServing polls Status until it reports Serving with the excluded
// id out of the configuration and every shard's view (exclude 0 = no
// exclusion), or until ctx expires. It returns the first satisfying
// status. With a multi-endpoint client the poll fails over like any
// call; to wait for one specific node, build the client on that node's
// endpoint alone.
func (c *Client) WaitServing(ctx context.Context, exclude int) (api.Status, error) {
	var (
		last    api.Status
		lastErr error
		any     bool
	)
	// Status fetches are cheap, so probes get a short bound — one
	// wedged node must not eat the whole wait budget (a probe that
	// misses it just retries 200ms later). The bound never exceeds the
	// client's configured per-call timeout.
	probeTO := 5 * time.Second
	if c.timeout > 0 && c.timeout < probeTO {
		probeTO = c.timeout
	}
	for {
		probe, cancel := context.WithTimeout(ctx, probeTO)
		st, err := c.Status(probe)
		cancel()
		if err == nil {
			last, any = st, true
			if st.ServingWithout(exclude) {
				return st, nil
			}
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			if any {
				return last, fmt.Errorf(
					"client: wait: %w; last status: serving=%v config=%v view=%v",
					ctx.Err(), last.Serving, last.Config, last.ViewMembers)
			}
			if lastErr != nil {
				return last, fmt.Errorf("client: wait: %w; last error: %w", ctx.Err(), lastErr)
			}
			return last, fmt.Errorf("client: wait: %w", ctx.Err())
		case <-time.After(200 * time.Millisecond):
		}
	}
}
