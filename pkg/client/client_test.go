package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apitest"
	"repro/internal/shard"
	"repro/pkg/api"
)

// cluster builds n fake nodes (internal/apitest, one shared store) and
// a client over their endpoints.
func cluster(t *testing.T, n, shards int, opts ...Option) ([]*apitest.Node, *Client) {
	t.Helper()
	nodes := apitest.Cluster(n, shards)
	eps := make([]string, n)
	for i := range nodes {
		srv := httptest.NewServer(nodes[i].Handler())
		t.Cleanup(srv.Close)
		eps[i] = srv.URL
	}
	c, err := New(eps, append([]Option{WithShards(shards)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, c
}

func TestNewNormalizesEndpoints(t *testing.T) {
	c, err := New([]string{" 127.0.0.1:8101/ ", "", "http://h:2/"})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Endpoints()
	if len(got) != 2 || got[0] != "http://127.0.0.1:8101" || got[1] != "http://h:2" {
		t.Fatalf("endpoints %v", got)
	}
	if _, err := New(nil); err == nil {
		t.Error("New with no endpoints must fail")
	}
	if _, err := New([]string{"  ", ""}); err == nil {
		t.Error("New with only blank endpoints must fail")
	}
}

// TestShardRoutingPrefersEndpointByHash: with a healthy cluster and a
// known shard count, register traffic for shard s lands on endpoint
// s mod len(endpoints) — the client-side shard-aware pool.
func TestShardRoutingPrefersEndpointByHash(t *testing.T) {
	const shards = 4
	nodes, c := cluster(t, 2, shards)
	ctx := context.Background()
	perShard := shard.NamesPerShard(shards, 2)
	for sh, names := range perShard {
		for _, name := range names {
			before := [2]int64{nodes[0].Hits.Load(), nodes[1].Hits.Load()}
			if _, err := c.Write(ctx, name, "v"); err != nil {
				t.Fatalf("write %s: %v", name, err)
			}
			want := sh % 2
			if got := nodes[want].Hits.Load() - before[want]; got != 1 {
				t.Errorf("write %s (shard %d): endpoint %d saw %d requests, want 1", name, sh, want, got)
			}
		}
	}
	// Reads agree and echo the router's shard.
	for sh, names := range perShard {
		got, err := c.Read(ctx, names[0])
		if err != nil {
			t.Fatalf("read %s: %v", names[0], err)
		}
		if !got.Found || got.Value != "v" || got.Shard != sh {
			t.Fatalf("read %s = %+v, want shard %d", names[0], got, sh)
		}
	}
}

// TestFailoverOnMidRunFailure: a node that starts answering 503 mid-run
// is routed around — every operation still succeeds via the surviving
// node, and once the node recovers it serves again.
func TestFailoverOnMidRunFailure(t *testing.T) {
	const shards = 2
	nodes, c := cluster(t, 2, shards)
	ctx := context.Background()
	names := shard.NamesPerShard(shards, 1)

	for sh, group := range names {
		if _, err := c.Write(ctx, group[0], "before"); err != nil {
			t.Fatalf("healthy write shard %d: %v", sh, err)
		}
	}

	// Node 0 (preferred for shard 0) starts failing mid-run.
	nodes[0].Failing.Store(true)
	survivorBefore := nodes[1].Hits.Load()
	for sh, group := range names {
		resp, err := c.Write(ctx, group[0], "after")
		if err != nil {
			t.Fatalf("write shard %d with node 0 down: %v", sh, err)
		}
		if resp.Shard != sh {
			t.Fatalf("failover write shard %d echoed %d", sh, resp.Shard)
		}
		got, err := c.SyncRead(ctx, group[0])
		if err != nil || got.Value != "after" {
			t.Fatalf("sync-read shard %d with node 0 down: %+v, %v", sh, got, err)
		}
	}
	if nodes[1].Hits.Load() == survivorBefore {
		t.Fatal("survivor never served during the outage")
	}
	if _, err := c.Status(ctx); err != nil {
		t.Fatalf("status with node 0 down: %v", err)
	}

	nodes[0].Failing.Store(false)
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz after recovery: %v", err)
	}
}

// TestFailoverOnConnectError: an endpoint nobody listens on is skipped
// in favor of a live one.
func TestFailoverOnConnectError(t *testing.T) {
	live := apitest.Cluster(1, 1)[0]
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // port is now closed: connects are refused

	c, err := New([]string{deadURL, srv.URL}, WithShards(1), WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Write(context.Background(), "k", "v")
	if err != nil {
		t.Fatalf("write with dead preferred endpoint: %v", err)
	}
	if !resp.Done {
		t.Fatalf("write response %+v", resp)
	}
}

// TestOverloadFailsOver: 429 is a per-node condition (each node owns
// its submission queue), so an overloaded preferred endpoint is routed
// around.
func TestOverloadFailsOver(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, api.Errorf(api.CodeOverload, "submission queue full (retry)").WithShard(0))
	}))
	defer busy.Close()
	idle := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, api.ProposeResponse{Accepted: true, Shard: 0})
	}))
	defer idle.Close()
	c, err := New([]string{busy.URL, idle.URL}, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0's preferred endpoint is the busy one.
	resp, err := c.Propose(context.Background(), 0, "k", "v")
	if err != nil || !resp.Accepted {
		t.Fatalf("propose with overloaded preferred endpoint: %+v, %v", resp, err)
	}
}

// TestCorruptBodyDoesNotLeakIntoRetry: a 200 whose body fails to
// decode counts as a failed attempt, and its partial decode must not
// bleed into the result taken from the next endpoint.
func TestCorruptBodyDoesNotLeakIntoRetry(t *testing.T) {
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Valid prefix that populates Found/Value, then truncation.
		io.WriteString(w, `{"name":"k","shard":0,"value":"stale","found":true,`)
	}))
	defer corrupt.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, api.RegResponse{Name: "k", Shard: 0, Done: true}) // not found: no value
	}))
	defer good.Close()
	c, err := New([]string{corrupt.URL, good.URL}, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(context.Background(), "k")
	if err != nil {
		t.Fatalf("read with corrupt preferred endpoint: %v", err)
	}
	if got.Found || got.Value != "" || !got.Done {
		t.Fatalf("partial decode leaked into failover result: %+v", got)
	}
}

// TestWedgedNodeDoesNotStarveFailover: an endpoint that accepts the
// connection but never answers is abandoned after the per-attempt
// bound (the client timeout), even when the caller brought a much
// longer deadline — the surviving endpoint still serves the call.
func TestWedgedNodeDoesNotStarveFailover(t *testing.T) {
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hang well past the client's 1s per-attempt bound (but not
		// forever: Server.Close waits for running handlers).
		select {
		case <-r.Context().Done():
		case <-time.After(3 * time.Second):
		}
	}))
	defer wedged.Close()
	good := apitest.Cluster(1, 1)[0]
	srv := httptest.NewServer(good.Handler())
	defer srv.Close()

	c, err := New([]string{wedged.URL, srv.URL}, WithShards(1), WithTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := c.Write(ctx, "k", "v")
	if err != nil || !resp.Done {
		t.Fatalf("write with wedged preferred endpoint: %+v, %v", resp, err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("failover took %v; the wedged node consumed the caller's deadline", d)
	}
}

// TestClientErrorsDoNotFailOver: a 4xx envelope is the caller's
// mistake; the client returns it typed, without burning the other
// endpoints.
func TestClientErrorsDoNotFailOver(t *testing.T) {
	var secondary atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, api.Errorf(api.CodeBadShard, "bad shard %q", "9").WithShard(9))
	}))
	defer bad.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		secondary.Add(1)
		api.WriteJSON(w, api.ShardStatus{})
	}))
	defer other.Close()

	c, err := New([]string{bad.URL, other.URL})
	if err != nil {
		t.Fatal(err)
	}
	// rr routing: pin the attempt order by asking every time until the
	// bad endpoint is hit first at least once.
	var ae *api.Error
	for i := 0; i < 2; i++ {
		_, err = c.ShardStatuses(context.Background())
		if errors.As(err, &ae) {
			break
		}
	}
	if ae == nil {
		t.Fatalf("want *api.Error, got %v", err)
	}
	if ae.Code != api.CodeBadShard || ae.HTTPStatus != http.StatusBadRequest {
		t.Fatalf("decoded envelope %+v", ae)
	}
	if ae.Shard == nil || *ae.Shard != 9 {
		t.Fatalf("envelope shard %v", ae.Shard)
	}
	if secondary.Load() > 1 {
		t.Fatalf("4xx failed over: secondary saw %d requests", secondary.Load())
	}
}

// TestShardMismatchSurfaces: a client configured with the wrong shard
// count gets an explicit error when the server's echo disagrees with
// its local router.
func TestShardMismatchSurfaces(t *testing.T) {
	// Server shards the namespace 4 ways; the client believes 2.
	node := apitest.Cluster(1, 4)[0]
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()
	c, err := New([]string{srv.URL}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	// Find a name the two routers place differently.
	name := ""
	for i := 0; i < 256 && name == ""; i++ {
		cand := fmt.Sprintf("k%d", i)
		if shard.ShardFor(cand, 4) != shard.ShardFor(cand, 2) {
			name = cand
		}
	}
	if name == "" {
		t.Fatal("no disagreeing name found")
	}
	_, err = c.Write(context.Background(), name, "v")
	if err == nil || !strings.Contains(err.Error(), "shard mismatch") {
		t.Fatalf("want shard mismatch error, got %v", err)
	}
}

// TestStorageStatusFailsOver: the durability document is introspection
// and fails over like Status — a failing preferred node is routed
// around and the answer identifies whichever node served it.
func TestStorageStatusFailsOver(t *testing.T) {
	nodes, c := cluster(t, 2, 2)
	ctx := context.Background()

	st, err := c.StorageStatus(ctx)
	if err != nil {
		t.Fatalf("storage status: %v", err)
	}
	if !st.Attached || st.Kind != "memory" || len(st.Shards) != 2 {
		t.Fatalf("storage status %+v", st)
	}

	nodes[0].Failing.Store(true)
	nodes[1].Failing.Store(false)
	st, err = c.StorageStatus(ctx)
	if err != nil {
		t.Fatalf("storage status with node 1 down: %v", err)
	}
	if st.ID != 2 {
		t.Fatalf("failover answer came from node %d, want 2", st.ID)
	}

	// Per-shard document.
	sh, err := c.ShardStorage(ctx, 1)
	if err != nil || sh.Shard != 1 || sh.Kind != "memory" {
		t.Fatalf("shard storage: %+v, %v", sh, err)
	}
	// Out-of-range shard is a 4xx: typed, no failover.
	_, err = c.ShardStorage(ctx, 9)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeBadShard {
		t.Fatalf("want bad_shard, got %v", err)
	}
}

// TestForceSnapshotSemantics: the trigger succeeds against a healthy
// node, and the snapshot_in_progress refusal is a 409 the client
// returns typed without trying another node (snapshots are per-node).
func TestForceSnapshotSemantics(t *testing.T) {
	nodes, c := cluster(t, 2, 3)
	ctx := context.Background()

	resp, err := c.ForceSnapshot(ctx, -1)
	if err != nil {
		t.Fatalf("force snapshot: %v", err)
	}
	if len(resp.Snapshotted) != 3 {
		t.Fatalf("snapshotted %v, want all 3 shards", resp.Snapshotted)
	}
	one, err := c.ForceSnapshot(ctx, 2)
	if err != nil || len(one.Snapshotted) != 1 || one.Snapshotted[0] != 2 {
		t.Fatalf("single-shard snapshot: %+v, %v", one, err)
	}

	// Both nodes busy: the preferred node's 409 comes back as-is.
	before := [2]int64{nodes[0].Hits.Load(), nodes[1].Hits.Load()}
	nodes[0].SnapshotBusy.Store(true)
	nodes[1].SnapshotBusy.Store(true)
	_, err = c.ForceSnapshot(ctx, -1)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeSnapshotInProgress || ae.IsRetryable() {
		t.Fatalf("want snapshot_in_progress, got %v", err)
	}
	if nodes[0].Hits.Load()-before[0]+nodes[1].Hits.Load()-before[1] != 1 {
		t.Fatal("409 snapshot refusal failed over")
	}
}

// TestStorageUnavailableFailsOver: a node without a backend answers
// storage_unavailable (503) on the per-shard route, and the client
// retries a node that has one.
func TestStorageUnavailableFailsOver(t *testing.T) {
	nodes, c := cluster(t, 2, 2)
	nodes[0].NoStorage.Store(true)
	sh, err := c.ShardStorage(context.Background(), 0) // prefers endpoint 0
	if err != nil {
		t.Fatalf("shard storage with diskless preferred node: %v", err)
	}
	if sh.Kind != "memory" {
		t.Fatalf("failover document %+v", sh)
	}
}

// TestWaitServingHonorsContext: the wait loop gives up when the context
// expires, reporting the last observation.
func TestWaitServingHonorsContext(t *testing.T) {
	notServing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, api.Status{ID: 1, Serving: false})
	}))
	defer notServing.Close()
	c, err := New([]string{notServing.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	_, err = c.WaitServing(ctx, 0)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if !strings.Contains(err.Error(), "serving=false") {
		t.Fatalf("want last status in error, got %v", err)
	}
}

// TestWaitServingExcludes: wait only completes once the excluded id has
// left the configuration and every shard view.
func TestWaitServingExcludes(t *testing.T) {
	var phase atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := api.Status{ID: 1, Serving: true, Config: []int{1, 2}, ViewMembers: []int{1, 2}}
		if phase.Load() > 0 {
			st.Config, st.ViewMembers = []int{1}, []int{1}
		}
		st.Shards = []api.ShardStatus{{Shard: 0, ViewMembers: st.ViewMembers, Serving: true}}
		api.WriteJSON(w, st)
	}))
	defer srv.Close()
	c, err := New([]string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		phase.Store(1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.WaitServing(ctx, 2)
	if err != nil {
		t.Fatalf("wait with exclude: %v", err)
	}
	if len(st.Config) != 1 || st.Config[0] != 1 {
		t.Fatalf("final status %+v", st)
	}
}

// TestBackoffBoundsAttemptRate is the regression test for the failover
// retry storm: against a cluster that only ever answers 503, the ring
// loop must pace its retries by the capped exponential backoff instead
// of hammering the endpoint back-to-back until the context expires.
func TestBackoffBoundsAttemptRate(t *testing.T) {
	var hits atomic.Uint64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer down.Close()
	c, err := New([]string{down.URL},
		WithPasses(10_000),
		WithBackoff(10*time.Millisecond, 50*time.Millisecond),
		WithBackoffSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Status(ctx); err == nil {
		t.Fatal("Status against an all-503 cluster: want error")
	}
	// Minimum pauses: attempt 1 waits ≥5ms, 2 ≥10ms, 3+ ≥25ms — so a
	// 300ms budget admits at most 1 + (300-5-10)/25 ≈ 13 attempts. The
	// bound below leaves slack for scheduling; without backoff the same
	// budget yields hundreds.
	n := hits.Load()
	if n > 25 {
		t.Errorf("attempt rate unbounded: %d attempts in 300ms (want ≤ 25)", n)
	}
	if n < 2 {
		t.Errorf("got %d attempts, want ≥ 2 (retry loop never retried)", n)
	}
}

// TestBackoffDelayDeterministic pins the jitter contract: the delay
// before attempt k is a pure function of (seed, k), bounded by
// [cap/2, cap], and two clients sharing a seed pause identically.
func TestBackoffDelayDeterministic(t *testing.T) {
	mk := func(seed int64) *Client {
		c, err := New([]string{"127.0.0.1:1"},
			WithBackoff(2*time.Millisecond, 64*time.Millisecond),
			WithBackoffSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(42), mk(42)
	for k := 1; k <= 12; k++ {
		da, db := a.backoffDelay(k), b.backoffDelay(k)
		if da != db {
			t.Fatalf("attempt %d: same seed, different delays %v vs %v", k, da, db)
		}
		exp := 2 * time.Millisecond << (k - 1)
		if exp > 64*time.Millisecond {
			exp = 64 * time.Millisecond
		}
		if da < exp/2 || da > exp {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", k, da, exp/2, exp)
		}
	}
}
