// Apiclient: programming against a LIVE noded cluster through the
// public client API (repro/pkg/client over the repro/pkg/api /v1
// contract) — the way an application would use the middleware. The
// client fronts every node at once: it waits for the cluster to serve,
// writes one register per shard (each routed by the same deterministic
// hash router the servers use, to that shard's preferred node),
// sync-reads everything back linearizably, and keeps working if a node
// drops mid-run — connect errors and 5xx answers fail over to the
// surviving endpoints automatically.
//
// Start a cluster first, e.g. two shards on three nodes:
//
//	for i in 1 2 3; do
//	  go run ./cmd/noded -id $i \
//	    -peers "1=127.0.0.1:7151,2=127.0.0.1:7152,3=127.0.0.1:7153" \
//	    -http 127.0.0.1:$((8150+i)) -shards 2 &
//	done
//
// then:
//
//	go run ./examples/apiclient \
//	  -addrs 127.0.0.1:8151,127.0.0.1:8152,127.0.0.1:8153 -shards 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/shard"
	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	addrs := flag.String("addrs", "127.0.0.1:8151,127.0.0.1:8152,127.0.0.1:8153",
		"comma-separated noded API endpoints (every node, for failover)")
	shards := flag.Int("shards", 2, "the cluster's -shards value")
	wait := flag.Duration("wait", 60*time.Second, "serving-wait budget")
	flag.Parse()
	if err := run(strings.Split(*addrs, ","), *shards, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "apiclient:", err)
		os.Exit(1)
	}
}

func run(addrs []string, shards int, wait time.Duration) error {
	// One client for the whole cluster: per-node connection pools,
	// shard-aware routing, failover. WithShards must match the
	// cluster's -shards; a mismatch surfaces as an explicit error on
	// the first register operation.
	c, err := client.New(addrs, client.WithShards(shards), client.WithTimeout(15*time.Second))
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	fmt.Printf("waiting up to %v for the cluster to serve...\n", wait)
	wctx, cancel := context.WithTimeout(ctx, wait)
	st, err := c.WaitServing(wctx, 0)
	cancel()
	if err != nil {
		return fmt.Errorf("cluster never served (is noded running? see the doc comment): %w", err)
	}
	fmt.Printf("serving: config=%v, %d shard(s)\n\n", st.Config, len(st.Shards))

	// One register per shard: NamesPerShard picks names the shared
	// hash router spreads over every shard, so each write exercises a
	// different shard's view/round pipeline — and a different preferred
	// endpoint in the client's pool.
	names := shard.NamesPerShard(shards, 1)
	for sh, group := range names {
		name := group[0]
		resp, err := c.Write(ctx, name, fmt.Sprintf("hello-from-shard-%d", sh))
		if err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
		fmt.Printf("wrote %-4s -> shard %d (server echo agrees with local router)\n", name, resp.Shard)
	}

	fmt.Println()
	for sh, group := range names {
		name := group[0]
		got, err := c.SyncRead(ctx, name)
		if err != nil {
			return fmt.Errorf("sync-read %s: %w", name, err)
		}
		fmt.Printf("sync-read %-4s = %q (shard %d)\n", name, got.Value, got.Shard)
		if got.Value != fmt.Sprintf("hello-from-shard-%d", sh) {
			return fmt.Errorf("read mismatch on %s: %q", name, got.Value)
		}
	}

	// Typed errors: the envelope's canonical code travels as *api.Error,
	// so applications branch on codes, not message text.
	_, err = c.ShardStatus(ctx, shards+7)
	var ae *api.Error
	if errors.As(err, &ae) {
		fmt.Printf("\nexpected refusal for shard %d: code=%s status=%d\n", shards+7, ae.Code, ae.HTTPStatus)
	}

	// Durability introspection: the /v1/storage document reports the
	// answering node's backend (memory unless the cluster runs with
	// -data-dir) and per-shard WAL/snapshot counters; ForceSnapshot
	// compacts that node's logs on demand. A diskless node still
	// answers — Attached=false — so the probe is safe on any cluster.
	if ss, err := c.StorageStatus(ctx); err == nil {
		if !ss.Attached {
			fmt.Printf("\nstorage: node %d runs without a durability backend (start noded with -data-dir)\n", ss.ID)
		} else {
			fmt.Printf("\nstorage: node %d backend=%s fsync=%s\n", ss.ID, ss.Kind, ss.Fsync)
			for _, sh := range ss.Shards {
				fmt.Printf("  shard %d: %d WAL record(s), %d snapshot(s)\n", sh.Shard, sh.WALRecords, sh.Snapshots)
			}
			if snap, err := c.ForceSnapshot(ctx, -1); err == nil {
				fmt.Printf("  forced snapshot of shard(s) %v\n", snap.Snapshotted)
			} else if errors.As(err, &ae) && ae.Code == api.CodeSnapshotInProgress {
				fmt.Println("  snapshot already in progress (409 — never failed over)")
			}
		}
	}

	fmt.Println("\nOK — kill any one node and rerun: the client fails over to the survivors.")
	return nil
}
