// Smrbank: a replicated bank ledger on the virtually synchronous SMR
// stack. The coordinator performs a delicate reconfiguration (Algorithm
// 4.6) after a member crashes; the example checks the paper's headline
// application property (Theorem 4.13): the ledger — including its total
// balance invariant — survives the reconfiguration.
//
//	go run ./examples/smrbank
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/smr"
	"repro/internal/vs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smrbank:", err)
		os.Exit(1)
	}
}

func run() error {
	machine := smr.BankMachine{InitialAccounts: map[string]int64{
		"alice": 1000, "bob": 1000, "carol": 1000,
	}}
	replicas := map[ids.ID]*smr.Replica{}
	managers := map[ids.ID]*vs.Manager{}

	opts := core.DefaultClusterOptions(23)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	// Coordinator-led reconfiguration: reconfigure when any member of the
	// current configuration is no longer trusted.
	eval := func(cur ids.Set, trusted ids.Set) bool {
		return cur.Diff(trusted).Size() > 0
	}
	opts.AppFactory = func(self ids.ID) core.App {
		rep := smr.NewReplica(self, machine)
		m := vs.NewManager(self, rep, eval)
		replicas[self] = rep
		managers[self] = m
		return m
	}
	cluster, err := core.BootstrapCluster(5, opts)
	if err != nil {
		return err
	}

	ok := cluster.Sched.RunWhile(func() bool {
		_, has := managers[1].CurrentView()
		return !has
	}, 6_000_000)
	if !ok {
		return fmt.Errorf("no initial view")
	}
	v, _ := managers[1].CurrentView()
	fmt.Printf("[t=%6d] view %v established\n", cluster.Sched.Now(), v)

	// Run transfers.
	for i := 0; i < 8; i++ {
		replicas[ids.ID(i%5+1)].Submit(smr.BankCmd{From: "alice", To: "bob", Amount: 25})
	}
	cluster.RunFor(25_000)
	st := managers[1].Replica().State
	fmt.Printf("[t=%6d] after transfers: alice=%d bob=%d total=%d\n",
		cluster.Sched.Now(), smr.BankBalance(st, "alice"), smr.BankBalance(st, "bob"), smr.BankTotal(st))

	// Crash a non-coordinator member; the coordinator suspends the
	// service and drives a delicate reconfiguration.
	victim := ids.ID(5)
	if victim == v.Coordinator() {
		victim = 4
	}
	cluster.Crash(victim)
	fmt.Printf("--- crashed %v; coordinator will reconfigure delicately ---\n", victim)

	ok = cluster.Sched.RunWhile(func() bool {
		cfg, conv := cluster.ConvergedConfig()
		if !conv || cfg.Contains(victim) {
			return true
		}
		nv, has := managers[1].CurrentView()
		return !has || nv.Set.Contains(victim)
	}, 30_000_000)
	if !ok {
		return fmt.Errorf("reconfiguration did not complete")
	}
	cfg, _ := cluster.ConvergedConfig()
	nv, _ := managers[1].CurrentView()
	fmt.Printf("[t=%6d] new configuration %v, new view %v\n", cluster.Sched.Now(), cfg, nv)

	// More transfers in the new configuration.
	for i := 0; i < 4; i++ {
		replicas[1].Submit(smr.BankCmd{From: "bob", To: "carol", Amount: 10})
	}
	cluster.RunFor(25_000)

	bad := false
	cluster.EachAlive(func(n *core.Node) {
		m, okm := managers[n.Self()]
		if !okm {
			return
		}
		state := m.Replica().State
		total := smr.BankTotal(state)
		fmt.Printf("  %v: alice=%-5d bob=%-5d carol=%-5d total=%d\n", n.Self(),
			smr.BankBalance(state, "alice"), smr.BankBalance(state, "bob"),
			smr.BankBalance(state, "carol"), total)
		if total != 3000 {
			bad = true
		}
	})
	if bad {
		return fmt.Errorf("ledger invariant broken: money was created or destroyed")
	}
	fmt.Println("ledger invariant held across the delicate reconfiguration ✓")
	return nil
}
