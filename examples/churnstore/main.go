// Churnstore: a replicated key-value store (virtual synchrony + SMR) that
// keeps serving while processors continuously join and crash, and while
// the reconfiguration scheme replaces configurations underneath it — the
// dynamic-participation scenario the paper's introduction motivates.
//
//	go run ./examples/churnstore
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/smr"
	"repro/internal/vs"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "churnstore:", err)
		os.Exit(1)
	}
}

func run() error {
	replicas := map[ids.ID]*smr.Replica{}
	managers := map[ids.ID]*vs.Manager{}

	opts := core.DefaultClusterOptions(11)
	// Let recMA reconfigure when a quarter of the members look crashed.
	opts.AppFactory = func(self ids.ID) core.App {
		rep := smr.NewReplica(self, smr.KVMachine{})
		m := vs.NewManager(self, rep, nil)
		replicas[self] = rep
		managers[self] = m
		return m
	}
	cluster, err := core.BootstrapCluster(5, opts)
	if err != nil {
		return err
	}

	// Wait for the first view.
	ok := cluster.Sched.RunWhile(func() bool {
		_, has := managers[1].CurrentView()
		return !has
	}, 6_000_000)
	if !ok {
		return fmt.Errorf("no initial view")
	}
	v, _ := managers[1].CurrentView()
	fmt.Printf("[t=%6d] first view: %v\n", cluster.Sched.Now(), v)

	// Background churn: joins and crashes every ~3000 ticks.
	churn := workload.NewChurn(cluster, workload.ChurnOptions{
		Interval: 3000, Joins: true, Crashes: true, MinAlive: 3, MaxEvents: 6,
	})
	churn.Start()
	defer churn.Stop()

	// Client workload: writes submitted from whatever is alive.
	writes := 0
	for i := 0; i < 12; i++ {
		alive := cluster.Alive().Members()
		who := alive[i%len(alive)]
		if rep, okRep := replicas[who]; okRep {
			key := fmt.Sprintf("key-%d", i)
			if rep.Submit(smr.KVCmd{Op: smr.KVPut, Key: key, Value: fmt.Sprintf("v%d", i)}) {
				writes++
			}
		}
		cluster.RunFor(2500)
	}
	cluster.RunFor(30_000)

	fmt.Printf("[t=%6d] churn done: joined=%v crashed=%v, %d writes submitted\n",
		cluster.Sched.Now(), churn.Joined, churn.Crashed, writes)

	// Inspect the surviving replicas.
	applied := map[ids.ID]int{}
	cluster.EachAlive(func(n *core.Node) {
		m, okm := managers[n.Self()]
		if !okm {
			return
		}
		state, _ := m.Replica().State.(map[string]string)
		applied[n.Self()] = len(state)
	})
	fmt.Println("replica sizes (keys visible per alive node):")
	for id, n := range applied {
		fmt.Printf("  %v: %d keys\n", id, n)
	}

	cfg, conv := cluster.ConvergedConfig()
	fmt.Printf("[t=%6d] final configuration %v (converged=%v, alive=%v)\n",
		cluster.Sched.Now(), cfg, conv, cluster.Alive())
	if !conv {
		return fmt.Errorf("configuration did not re-converge under churn")
	}
	return nil
}
