// Sharedreg: the MWMR shared-memory emulation running on the LIVE
// goroutine-and-channel runtime (one goroutine per processor, bounded
// channels as lossy links, wall-clock timers) — the concurrency substrate
// a real deployment of the paper's stack would use. Writers on different
// processors race on a register; every replica converges to the same
// winner.
//
//	go run ./examples/sharedreg
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sharedreg:", err)
		os.Exit(1)
	}
}

func run() error {
	live := runtime.New(99, runtime.DefaultOptions())
	defer live.Close()

	const n = 4
	all := ids.Range(1, n)
	mems := map[ids.ID]*regmem.SharedMemory{}
	nodes := map[ids.ID]*core.Node{}

	for i := ids.ID(1); i <= n; i++ {
		mem := regmem.New(i, nil)
		node, err := core.NewNode(live, core.Params{
			Self: i, N: 16, Initial: recsa.ConfigOf(all), App: mem,
		})
		if err != nil {
			return err
		}
		mems[i] = mem
		nodes[i] = node
	}
	for i := ids.ID(1); i <= n; i++ {
		i := i
		live.Inspect(i, func() {
			nodes[i].ConnectAll(all.Remove(i))
			nodes[i].Detector.Bootstrap(all.Remove(i))
		})
	}

	// Wait for a view over real time.
	if !waitLive(live, 30*time.Second, func() bool {
		has := false
		live.Inspect(1, func() {
			_, has = mems[1].VS().CurrentView()
		})
		return has
	}) {
		return fmt.Errorf("no view established on the live runtime")
	}
	fmt.Println("view established on the live goroutine runtime")

	// Two racing writers on different processors.
	var h1, h2 *regmem.Handle
	live.Inspect(1, func() { h1 = mems[1].Write("race", "from-p1") })
	live.Inspect(3, func() { h2 = mems[3].Write("race", "from-p3") })

	if !waitLive(live, 30*time.Second, func() bool {
		d1, d2 := false, false
		live.Inspect(1, func() { d1 = h1.Done() })
		live.Inspect(3, func() { d2 = h2.Done() })
		return d1 && d2
	}) {
		return fmt.Errorf("writes never completed")
	}

	// Give the last round a moment to reach everyone, then check that
	// all replicas agree on one winner.
	time.Sleep(200 * time.Millisecond)
	var winner string
	for i := ids.ID(1); i <= n; i++ {
		i := i
		var v string
		var ok bool
		live.Inspect(i, func() { v, ok = mems[i].Read("race") })
		if !ok {
			return fmt.Errorf("node %v has no value", i)
		}
		fmt.Printf("  %v reads %q\n", i, v)
		if winner == "" {
			winner = v
		} else if winner != v {
			return fmt.Errorf("replicas diverged: %q vs %q", winner, v)
		}
	}
	fmt.Printf("all replicas agree: winner = %q (dropped packets: %d)\n", winner, live.Dropped())
	return nil
}

func waitLive(live *runtime.Live, timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
