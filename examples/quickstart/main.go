// Quickstart: bring up a five-processor system with the self-stabilizing
// reconfiguration scheme, watch it agree on a configuration, survive a
// transient fault that scrambles every processor's state, and then perform
// a delicate (coordinated) configuration replacement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A cluster of five processors over the adversarial simulated
	// network (packet loss, duplication, reordering, bounded links).
	cluster, err := core.BootstrapCluster(5, core.DefaultClusterOptions(7))
	if err != nil {
		return err
	}

	cluster.RunFor(1000)
	cfg, ok := cluster.ConvergedConfig()
	fmt.Printf("[t=%6d] initial agreement: config=%v (converged=%v)\n",
		cluster.Sched.Now(), cfg, ok)

	// Transient fault: randomize recSA, recMA, failure detectors and
	// link state on every processor, and inject stale packets.
	fmt.Println("--- transient fault: corrupting every processor and the channels ---")
	d, recovered := workload.MeasureConvergence(cluster, 20, 400_000)
	if !recovered {
		return fmt.Errorf("system failed to self-stabilize")
	}
	cfg, _ = cluster.ConvergedConfig()
	fmt.Printf("[t=%6d] self-stabilized after %d virtual ticks: config=%v\n",
		cluster.Sched.Now(), d, cfg)

	// Delicate reconfiguration: replace the configuration with {p1,p2,p3}
	// through the three-phase replacement of Figure 2 — no brute force.
	target := ids.NewSet(1, 2, 3)
	if !cluster.Node(1).Estab(target) {
		return fmt.Errorf("estab rejected")
	}
	start := cluster.Sched.Now()
	done := cluster.Sched.RunWhile(func() bool {
		got, conv := cluster.ConvergedConfig()
		return !(conv && got.Equal(target))
	}, 10_000_000)
	if !done {
		return fmt.Errorf("delicate replacement did not complete")
	}
	fmt.Printf("[t=%6d] delicate replacement installed %v in %d ticks\n",
		cluster.Sched.Now(), target, cluster.Sched.Now()-start)

	resets := uint64(0)
	cluster.EachAlive(func(n *core.Node) { resets += n.SA.Metrics().Resets })
	fmt.Printf("total brute-force resets during the delicate phase-run: %d (all recovery happened earlier)\n", resets)
	return nil
}
