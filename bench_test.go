// Package repro's root benchmarks regenerate the experiment suite E1–E10
// (DESIGN.md §6): one testing.B benchmark per experiment. Each iteration
// runs the experiment at the benchmark sizes and reports the headline
// quantity through b.ReportMetric (virtual ticks or event counts — the
// simulator's deterministic clock, not wall time, is the measured value).
// The full sweep with per-N tables is produced by cmd/benchtab.
package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// lastY extracts the final row's measurement.
func lastY(s workload.Series) float64 {
	if len(s.Rows) == 0 {
		return 0
	}
	return s.Rows[len(s.Rows)-1].Y
}

func BenchmarkE1DelicateReplacement(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total += lastY(experiments.E1DelicateLatency(int64(i+1), experiments.SmallSizes))
	}
	b.ReportMetric(total/float64(b.N), "vticks/op")
}

func BenchmarkE2BruteForceConvergence(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total += lastY(experiments.E2BruteForceConvergence(int64(i+1), experiments.SmallSizes))
	}
	b.ReportMetric(total/float64(b.N), "vticks/op")
}

func BenchmarkE3SpuriousTriggers(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total += lastY(experiments.E3SpuriousTriggers(int64(i+1), experiments.SmallSizes))
	}
	b.ReportMetric(total/float64(b.N), "triggers")
}

func BenchmarkE4LabelCreations(b *testing.B) {
	var arbitrary, clean float64
	for i := 0; i < b.N; i++ {
		series := experiments.E4LabelCreations(int64(i+1), experiments.SmallSizes)
		arbitrary += lastY(series[0])
		clean += lastY(series[1])
	}
	b.ReportMetric(arbitrary/float64(b.N), "creations-arbitrary")
	b.ReportMetric(clean/float64(b.N), "creations-postreco")
}

func BenchmarkE5CounterIncrement(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total += lastY(experiments.E5CounterIncrement(int64(i+1), experiments.SmallSizes))
	}
	b.ReportMetric(total/float64(b.N), "vticks/increment")
}

func BenchmarkE6VSReconfiguration(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total += lastY(experiments.E6VSReconfiguration(int64(i+1), []int{5}))
	}
	b.ReportMetric(total/float64(b.N), "vticks-gap")
}

func BenchmarkE7JoinLatency(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total += lastY(experiments.E7JoinLatency(int64(i+1), experiments.SmallSizes))
	}
	b.ReportMetric(total/float64(b.N), "vticks/join")
}

func BenchmarkE8BaselineComparison(b *testing.B) {
	var ours, base float64
	for i := 0; i < b.N; i++ {
		series := experiments.E8BaselineComparison(int64(i+1), experiments.SmallSizes)
		ours += lastY(series[0])
		base += lastY(series[1])
	}
	b.ReportMetric(ours/float64(b.N), "vticks-selfstab")
	b.ReportMetric(base/float64(b.N), "vticks-baseline(never)")
}

func BenchmarkE9SharedMemory(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total += lastY(experiments.E9SharedMemory(int64(i+1), experiments.SmallSizes))
	}
	b.ReportMetric(total/float64(b.N), "vticks/write")
}

func BenchmarkE10Ablation(b *testing.B) {
	var strict, relaxed float64
	for i := 0; i < b.N; i++ {
		series := experiments.E10Ablation(int64(i+1), experiments.SmallSizes)
		strict += lastY(series[0])
		relaxed += lastY(series[1])
	}
	b.ReportMetric(strict/float64(b.N), "vticks-gap1")
	b.ReportMetric(relaxed/float64(b.N), "vticks-gap2")
}
