// Package repro's root benchmarks regenerate the experiment suite E1–E12
// (DESIGN.md §6) through the engine registry: one testing.B benchmark per
// experiment, each a thin call into the registered cell functions at the
// headline size. Each iteration runs every series of the experiment and
// reports its mean through b.ReportMetric (virtual ticks or event counts
// — the simulator's deterministic clock, not wall time, is the measured
// value). The full parallel sweep with per-N tables is produced by
// cmd/benchtab; the engine's own speedup benchmark lives in
// internal/experiments/engine.
package repro

import (
	"testing"

	_ "repro/internal/experiments" // registers E1–E12
	"repro/internal/experiments/engine"
	"repro/internal/obs"
)

// benchExperiment runs every series of the registered experiment at size
// n once per iteration and reports the per-series mean as a metric named
// by the series key (or the experiment metric for single-series
// experiments).
func benchExperiment(b *testing.B, id string, n int) {
	d, ok := engine.Get(id)
	if !ok {
		b.Fatalf("%s not registered", id)
	}
	if n < d.MinSize {
		n = d.MinSize
	}
	totals := make([]float64, len(d.Series))
	for i := 0; i < b.N; i++ {
		for si, spec := range d.Series {
			totals[si] += spec.Run(int64(i+1), n).Y
		}
	}
	for si, spec := range d.Series {
		unit := d.Metric
		if spec.Key != "" {
			unit = d.Metric + "-" + spec.Key
		}
		b.ReportMetric(totals[si]/float64(b.N), unit)
	}
}

func BenchmarkE1DelicateReplacement(b *testing.B)   { benchExperiment(b, "E1", 8) }
func BenchmarkE2BruteForceConvergence(b *testing.B) { benchExperiment(b, "E2", 8) }
func BenchmarkE3SpuriousTriggers(b *testing.B)      { benchExperiment(b, "E3", 8) }
func BenchmarkE4LabelCreations(b *testing.B)        { benchExperiment(b, "E4", 8) }
func BenchmarkE5CounterIncrement(b *testing.B)      { benchExperiment(b, "E5", 8) }
func BenchmarkE6VSReconfiguration(b *testing.B)     { benchExperiment(b, "E6", 5) }
func BenchmarkE7JoinLatency(b *testing.B)           { benchExperiment(b, "E7", 8) }
func BenchmarkE8BaselineComparison(b *testing.B)    { benchExperiment(b, "E8", 8) }
func BenchmarkE9SharedMemory(b *testing.B)          { benchExperiment(b, "E9", 8) }
func BenchmarkE10Ablation(b *testing.B)             { benchExperiment(b, "E10", 8) }
func BenchmarkE11ShardScaling(b *testing.B)         { benchExperiment(b, "E11", 4) }
func BenchmarkE12BatchScaling(b *testing.B)         { benchExperiment(b, "E12", 16) }

// BenchmarkObsHotPath guards the observability overhead on the hot
// path (DESIGN.md §13): one counter increment, one labeled-counter
// add and one histogram observation per iteration — the per-operation
// instrument mix on the write path — must run allocation-free. The
// benchmark fails itself if any iteration allocated, so the CI run
// (-benchtime 100x) is a hard 0 allocs/op gate, not just a report.
func BenchmarkObsHotPath(b *testing.B) {
	reg := obs.NewRegistry()
	ops := reg.Counter("bench_ops_total", "Ops.", nil)
	shardOps := reg.Counter("bench_shard_ops_total", "Sharded ops.", obs.Labels{"shard": "0"})
	lat := reg.Histogram("bench_latency_seconds", "Latency.", nil, obs.DefLatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops.Inc()
		shardOps.Add(3)
		lat.Observe(0.004)
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(100, func() {
		ops.Inc()
		shardOps.Add(3)
		lat.Observe(0.004)
	}); allocs != 0 {
		b.Fatalf("hot-path instruments allocated %.1f allocs/op, want 0", allocs)
	}
}
