#!/usr/bin/env bash
# noded_demo.sh [N] — boot an N-node (default 5) noded cluster as real OS
# processes talking TCP on localhost, drive it through the HTTP client
# API: bootstrap → register write/read → kill one node → delicate
# reconfiguration → write/read in the reconfigured cluster.
#
# Exits 0 only if every step succeeded. CI runs this with N=3 as the
# noded smoke job; developers run it with the default 5.
set -euo pipefail

N="${1:-5}"
BASE_TCP="${BASE_TCP:-7140}"
BASE_HTTP="${BASE_HTTP:-8140}"
TMP="$(mktemp -d)"
BIN="$TMP/noded"
declare -a PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

say() { echo "--- $*"; }

say "building noded"
go build -o "$BIN" ./cmd/noded

PEERS=""
for i in $(seq 1 "$N"); do
  PEERS+="${PEERS:+,}$i=127.0.0.1:$((BASE_TCP + i))"
done

say "booting $N nodes (peers: $PEERS)"
for i in $(seq 1 "$N"); do
  "$BIN" -id "$i" -peers "$PEERS" -http "127.0.0.1:$((BASE_HTTP + i))" \
    -seed 7 >"$TMP/node$i.log" 2>&1 &
  PIDS[$i]=$!
done

addr() { echo "http://127.0.0.1:$((BASE_HTTP + $1))"; }

client() {
  local node="$1"; shift
  "$BIN" client -addr "$(addr "$node")" "$@"
}

say "waiting for every node to serve"
for i in $(seq 1 "$N"); do
  client "$i" -timeout 120s wait >/dev/null
done
say "cluster is serving"

say "write greeting=hello via node 1, sync-read via node 2"
client 1 put greeting hello >/dev/null
OUT="$(client 2 sync-get greeting)"
echo "$OUT"
echo "$OUT" | grep -q '"value": "hello"' || { echo "FAIL: read mismatch"; exit 1; }

say "propose a raw SMR command via node $N and show the log tail"
client "$N" propose audit demo >/dev/null
client 1 log 5

COORD="$(client 1 status | grep -o '"viewCoordinator": *[0-9]*' | grep -o '[0-9]*$')"
VICTIM="$N"
if [ "$VICTIM" = "$COORD" ]; then VICTIM=$((N - 1)); fi
say "view coordinator is p$COORD — killing non-coordinator p$VICTIM (SIGKILL)"
kill -9 "${PIDS[$VICTIM]}"

say "waiting for survivors to reconfigure away from p$VICTIM"
for i in $(seq 1 "$N"); do
  [ "$i" = "$VICTIM" ] && continue
  client "$i" -timeout 180s -exclude "$VICTIM" wait >/dev/null
done
say "delicate reconfiguration complete"

say "state survived: reading greeting on a survivor; new write via node 1"
OUT="$(client "$COORD" get greeting)"
echo "$OUT"
echo "$OUT" | grep -q '"value": "hello"' || { echo "FAIL: state lost"; exit 1; }
client 1 put after reconfig >/dev/null
OUT="$(client "$COORD" sync-get after)"
echo "$OUT" | grep -q '"value": "reconfig"' || { echo "FAIL: post-reconfig write"; exit 1; }

say "SUCCESS: $N-node cluster bootstrapped, survived a kill via delicate reconfiguration, and kept serving"
