#!/usr/bin/env bash
# noded_demo.sh [N] [SHARDS] [DISK] — boot an N-node (default 5) noded
# cluster as real OS processes talking TCP on localhost, with the
# register namespace partitioned over SHARDS (default 1) independent
# service stacks, and drive it through the HTTP client API: bootstrap →
# register writes/reads across every shard → kill one node → delicate
# reconfiguration (all shards) → write/read in the reconfigured cluster.
#
# With DISK=1 every node runs with -data-dir (per-shard WAL +
# snapshots) and two more passes run: the killed node restarts over its
# data directory and rejoins, and then the WHOLE cluster is SIGKILLed
# and restarted — with no live peer to transfer state from, the
# registers can only come back through each node's local snapshot + WAL
# replay.
#
# Exits 0 only if every step succeeded. CI runs this with N=3 SHARDS=4
# and again with N=3 SHARDS=2 DISK=1 as the noded smoke job; developers
# run it with the defaults.
set -euo pipefail

N="${1:-5}"
SHARDS="${2:-${SHARDS:-1}}"
DISK="${3:-${DISK:-0}}"
BASE_TCP="${BASE_TCP:-7140}"
BASE_HTTP="${BASE_HTTP:-8140}"
TMP="$(mktemp -d)"
BIN="$TMP/noded"
declare -a PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

say() { echo "--- $*"; }

say "building noded"
go build -o "$BIN" ./cmd/noded

PEERS=""
for i in $(seq 1 "$N"); do
  PEERS+="${PEERS:+,}$i=127.0.0.1:$((BASE_TCP + i))"
done

start_node() {
  local i="$1"
  local store=()
  if [ "$DISK" = "1" ]; then
    store=(-data-dir "$TMP/data$i" -fsync always -snap-every 8)
  fi
  "$BIN" -id "$i" -peers "$PEERS" -http "127.0.0.1:$((BASE_HTTP + i))" \
    -seed 7 -shards "$SHARDS" "${store[@]}" >>"$TMP/node$i.log" 2>&1 &
  PIDS[$i]=$!
}

say "booting $N nodes × $SHARDS shards (disk=$DISK, peers: $PEERS)"
for i in $(seq 1 "$N"); do
  start_node "$i"
done

addr() { echo "http://127.0.0.1:$((BASE_HTTP + $1))"; }

client() {
  local node="$1"; shift
  "$BIN" client -addr "$(addr "$node")" "$@"
}

# Boot-up is polled in two phases: /v1/healthz first (cheap liveness —
# answers as soon as the HTTP server is up, no view lock taken), then
# the full serving wait once every process responds.
say "waiting for every node's API to answer healthz"
for i in $(seq 1 "$N"); do
  for _ in $(seq 1 150); do
    client "$i" -timeout 2s healthz >/dev/null 2>&1 && break
    sleep 0.2
  done
  client "$i" -timeout 2s healthz >/dev/null
done

say "waiting for every node to serve"
for i in $(seq 1 "$N"); do
  client "$i" -timeout 120s wait >/dev/null
done
say "cluster is serving"

say "write greeting=hello via node 1, sync-read via node 2"
client 1 put greeting hello >/dev/null
OUT="$(client 2 sync-get greeting)"
echo "$OUT"
echo "$OUT" | grep -q '"value": "hello"' || { echo "FAIL: read mismatch"; exit 1; }

say "writing/reading one register per shard (keys route by hash)"
for k in $(seq 0 $((4 * SHARDS - 1))); do
  client "$(( (k % N) + 1 ))" put "demo-key-$k" "demo-val-$k" >/dev/null
done
for k in $(seq 0 $((4 * SHARDS - 1))); do
  OUT="$(client "$(( ((k + 1) % N) + 1 ))" sync-get "demo-key-$k")"
  echo "$OUT" | grep -q "\"value\": \"demo-val-$k\"" \
    || { echo "FAIL: cross-shard read of demo-key-$k"; exit 1; }
done
HIT="$(client 1 shards | grep -c '"hasView": true' || true)"
[ "$HIT" = "$SHARDS" ] || { echo "FAIL: $HIT of $SHARDS shards have views"; exit 1; }
say "all $SHARDS shards serving with installed views"

say "propose a raw SMR command via node $N and show the log tail"
client "$N" propose audit demo >/dev/null
client 1 log 5

# The first viewCoordinator in the document is the top-level (shard 0)
# one; per-shard entries repeat the field.
COORD="$(client 1 status | grep -o '"viewCoordinator": *[0-9]*' | grep -o '[0-9]*$' | head -1)"
VICTIM="$N"
if [ "$VICTIM" = "$COORD" ]; then VICTIM=$((N - 1)); fi
say "view coordinator is p$COORD — killing non-coordinator p$VICTIM (SIGKILL)"
kill -9 "${PIDS[$VICTIM]}"

say "waiting for survivors to reconfigure away from p$VICTIM"
for i in $(seq 1 "$N"); do
  [ "$i" = "$VICTIM" ] && continue
  client "$i" -timeout 180s -exclude "$VICTIM" wait >/dev/null
done
say "delicate reconfiguration complete"

say "state survived: reading greeting on a survivor; new write via node 1"
OUT="$(client "$COORD" get greeting)"
echo "$OUT"
echo "$OUT" | grep -q '"value": "hello"' || { echo "FAIL: state lost"; exit 1; }
client 1 put after reconfig >/dev/null
OUT="$(client "$COORD" sync-get after)"
echo "$OUT" | grep -q '"value": "reconfig"' || { echo "FAIL: post-reconfig write"; exit 1; }

if [ "$DISK" = "1" ]; then
  say "storage introspection: every survivor reports a disk backend"
  OUT="$(client 1 storage)"
  echo "$OUT" | grep -q '"kind": "disk"' || { echo "FAIL: no disk backend reported"; exit 1; }
  client 1 snapshot >/dev/null
  client 1 storage | grep -q '"snapshots": 0' && { echo "FAIL: forced snapshot did not land"; exit 1; }

  say "restarting killed node p$VICTIM over its data directory"
  start_node "$VICTIM"
  for _ in $(seq 1 150); do
    client "$VICTIM" -timeout 2s healthz >/dev/null 2>&1 && break
    sleep 0.2
  done
  client "$VICTIM" -timeout 180s wait >/dev/null
  OUT="$(client "$VICTIM" sync-get greeting)"
  echo "$OUT" | grep -q '"value": "hello"' || { echo "FAIL: restarted node lost state"; exit 1; }
  say "p$VICTIM rejoined and serves the old registers"

  say "SIGKILLing the WHOLE cluster and restarting every node"
  for i in $(seq 1 "$N"); do
    kill -9 "${PIDS[$i]}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  for i in $(seq 1 "$N"); do
    start_node "$i"
  done
  for i in $(seq 1 "$N"); do
    for _ in $(seq 1 150); do
      client "$i" -timeout 2s healthz >/dev/null 2>&1 && break
      sleep 0.2
    done
    client "$i" -timeout 180s wait >/dev/null
  done

  say "registers intact after full-cluster crash (no peer held them — local replay only)"
  OUT="$(client 1 sync-get greeting)"
  echo "$OUT" | grep -q '"value": "hello"' || { echo "FAIL: greeting lost after full-cluster crash"; exit 1; }
  OUT="$(client 2 sync-get after)"
  echo "$OUT" | grep -q '"value": "reconfig"' || { echo "FAIL: after lost after full-cluster crash"; exit 1; }
  for k in $(seq 0 $((4 * SHARDS - 1))); do
    OUT="$(client "$(( (k % N) + 1 ))" sync-get "demo-key-$k")"
    echo "$OUT" | grep -q "\"value\": \"demo-val-$k\"" \
      || { echo "FAIL: demo-key-$k lost after full-cluster crash"; exit 1; }
  done
  client 1 storage | grep -q '"recovered": true' || { echo "FAIL: no shard reports recovery"; exit 1; }

  say "SUCCESS: $N-node × $SHARDS-shard disk-backed cluster survived node kill, rejoin, and full-cluster crash via local WAL/snapshot replay"
else
  say "SUCCESS: $N-node × $SHARDS-shard cluster bootstrapped, survived a kill via delicate reconfiguration, and kept serving"
fi
