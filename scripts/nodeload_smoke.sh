#!/usr/bin/env bash
# nodeload_smoke.sh [N] [SHARDS] [DURATION] — boot an N-node (default 3)
# noded cluster over real TCP with SHARDS (default 2) register shards,
# run a mixed write/sync-read nodeload workload (default 2s, after a
# WARMUP lead-in excluded from accounting) through the shard-aware
# failover client, and assert the report is sane: nonzero write and
# sync-read throughput, parseable p50/p95/p99 percentiles, zero errors.
# The whole pass then repeats against a cluster running with hot-path
# batching (-batch 16, DESIGN.md §11) and asserts the batched run's
# total throughput is at least the unbatched run's — the warmup keeps
# connection-setup and first-request link-cleaning costs out of both
# measurements, so no re-measure retry is needed. CI runs this as the
# nodeload smoke job.
set -euo pipefail

N="${1:-3}"
SHARDS="${2:-2}"
DURATION="${3:-2s}"
WARMUP="${WARMUP:-1s}"
BATCH="${BATCH:-16}"
BASE_TCP="${BASE_TCP:-7170}"
BASE_HTTP="${BASE_HTTP:-8170}"
TMP="$(mktemp -d)"
declare -a PIDS=()

cleanup_nodes() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  PIDS=()
}

cleanup() {
  cleanup_nodes
  rm -rf "$TMP"
}
trap cleanup EXIT

say() { echo "--- $*"; }

say "building noded + nodeload"
go build -o "$TMP/noded" ./cmd/noded
go build -o "$TMP/nodeload" ./cmd/nodeload

PEERS=""
ADDRS=""
for i in $(seq 1 "$N"); do
  PEERS+="${PEERS:+,}$i=127.0.0.1:$((BASE_TCP + i))"
  ADDRS+="${ADDRS:+,}http://127.0.0.1:$((BASE_HTTP + i))"
done

# boot_cluster BATCH — start N nodes with the given hot-path batch bound.
boot_cluster() {
  local batch="$1"
  say "booting $N nodes × $SHARDS shards (batch=$batch)"
  for i in $(seq 1 "$N"); do
    "$TMP/noded" -id "$i" -peers "$PEERS" -http "127.0.0.1:$((BASE_HTTP + i))" \
      -seed 11 -shards "$SHARDS" -batch "$batch" >"$TMP/node$i-b$batch.log" 2>&1 &
    PIDS+=($!)
  done
  say "waiting for liveness (healthz) on every node"
  for i in $(seq 1 "$N"); do
    for _ in $(seq 1 150); do
      "$TMP/noded" client -addr "http://127.0.0.1:$((BASE_HTTP + i))" -timeout 2s healthz \
        >/dev/null 2>&1 && break
      sleep 0.2
    done
  done
}

# run_load OUTDIR — drive the mixed workload and sanity-check the report.
run_load() {
  local out="$1"
  say "running $DURATION mixed workload after $WARMUP warmup ($SHARDS shards, ${N}-endpoint failover client)"
  "$TMP/nodeload" -addrs "$ADDRS" -clients 8 -duration "$DURATION" -warmup "$WARMUP" \
    -ratio 0.5 -shards "$SHARDS" -wait 120s -format csv -out "$out"
  test -s "$out/cells.csv" && test -s "$out/summary.csv"
  echo
  awk -F, '{ printf "%-32s %-28s %-6s %s\n", $2, $7, $3, $6 }' "$out/summary.csv"
  echo
}

# mean OUTDIR SERIES — one summary mean. summary.csv:
# experiment,series,metric,n,...,mean,...
mean() {
  awk -F, -v s="$2" '$2 == s { print $7 }' "$1/summary.csv"
}

# check OUTDIR SERIES pos|zero — assert a summary mean's sign.
check() {
  local out="$1" series="$2" cmp="$3"
  local m
  m="$(mean "$out" "$series")"
  [ -n "$m" ] || { echo "FAIL: series $series missing from summary"; exit 1; }
  awk -v m="$m" -v c="$cmp" 'BEGIN {
    if (c == "pos" && !(m + 0 > 0)) exit 1
    if (c == "zero" && m + 0 != 0) exit 1
  }' || { echo "FAIL: series $series mean=$m violates $cmp"; exit 1; }
  echo "ok: $series = $m"
}

# check_report OUTDIR — both op classes moved, percentiles parse as
# positive numbers, nothing errored.
check_report() {
  local out="$1"
  check "$out" "write.throughput_ops_s" pos
  check "$out" "sync-read.throughput_ops_s" pos
  check "$out" "total.throughput_ops_s" pos
  for cls in write sync-read; do
    for p in p50_ms p95_ms p99_ms; do
      check "$out" "$cls.$p" pos
    done
    check "$out" "$cls.errors" zero
  done
}

boot_cluster 1
run_load "$TMP/load-b1"
check_report "$TMP/load-b1"
cleanup_nodes
sleep 1

boot_cluster "$BATCH"
run_load "$TMP/load-b$BATCH"
check_report "$TMP/load-b$BATCH"

T1="$(mean "$TMP/load-b1" total.throughput_ops_s)"
TB="$(mean "$TMP/load-b$BATCH" total.throughput_ops_s)"
say "total throughput: batch=1 $T1 ops/s, batch=$BATCH $TB ops/s"
# Both runs measure only their post-warmup window, so connection setup
# and first-request link cleaning never skew the comparison.
awk -v a="$T1" -v b="$TB" 'BEGIN { exit !(b + 0 >= a + 0) }' || {
  echo "FAIL: batch=$BATCH throughput $TB < unbatched $T1"
  exit 1
}
cleanup_nodes

say "SUCCESS: live $N-node × $SHARDS-shard cluster sustained the mixed workload, and batch=$BATCH kept throughput >= batch=1 ($TB vs $T1 ops/s)"
