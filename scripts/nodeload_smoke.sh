#!/usr/bin/env bash
# nodeload_smoke.sh [N] [SHARDS] [DURATION] — boot an N-node (default 3)
# noded cluster over real TCP with SHARDS (default 2) register shards,
# run a mixed write/sync-read nodeload workload (default 2s) through
# the shard-aware failover client, and assert the report is sane:
# nonzero write and sync-read throughput, parseable p50/p95/p99
# percentiles, zero errors. CI runs this as the nodeload smoke job.
set -euo pipefail

N="${1:-3}"
SHARDS="${2:-2}"
DURATION="${3:-2s}"
BASE_TCP="${BASE_TCP:-7170}"
BASE_HTTP="${BASE_HTTP:-8170}"
TMP="$(mktemp -d)"
declare -a PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

say() { echo "--- $*"; }

say "building noded + nodeload"
go build -o "$TMP/noded" ./cmd/noded
go build -o "$TMP/nodeload" ./cmd/nodeload

PEERS=""
ADDRS=""
for i in $(seq 1 "$N"); do
  PEERS+="${PEERS:+,}$i=127.0.0.1:$((BASE_TCP + i))"
  ADDRS+="${ADDRS:+,}http://127.0.0.1:$((BASE_HTTP + i))"
done

say "booting $N nodes × $SHARDS shards"
for i in $(seq 1 "$N"); do
  "$TMP/noded" -id "$i" -peers "$PEERS" -http "127.0.0.1:$((BASE_HTTP + i))" \
    -seed 11 -shards "$SHARDS" >"$TMP/node$i.log" 2>&1 &
  PIDS[$i]=$!
done

say "waiting for liveness (healthz) on every node"
for i in $(seq 1 "$N"); do
  for _ in $(seq 1 150); do
    "$TMP/noded" client -addr "http://127.0.0.1:$((BASE_HTTP + i))" -timeout 2s healthz \
      >/dev/null 2>&1 && break
    sleep 0.2
  done
done

say "running $DURATION mixed workload ($SHARDS shards, ${N}-endpoint failover client)"
"$TMP/nodeload" -addrs "$ADDRS" -clients 8 -duration "$DURATION" -ratio 0.5 \
  -shards "$SHARDS" -wait 120s -format csv -out "$TMP/load"

test -s "$TMP/load/cells.csv" && test -s "$TMP/load/summary.csv"
echo
awk -F, '{ printf "%-32s %-28s %-6s %s\n", $2, $7, $3, $6 }' "$TMP/load/summary.csv"
echo

# Assert: both op classes moved, percentiles parse as positive numbers,
# nothing errored. summary.csv: experiment,series,metric,n,...,mean,...
check() {
  local series="$1" cmp="$2"
  local mean
  mean="$(awk -F, -v s="$series" '$2 == s { print $7 }' "$TMP/load/summary.csv")"
  [ -n "$mean" ] || { echo "FAIL: series $series missing from summary"; exit 1; }
  awk -v m="$mean" -v c="$cmp" 'BEGIN {
    if (c == "pos" && !(m + 0 > 0)) exit 1
    if (c == "zero" && m + 0 != 0) exit 1
  }' || { echo "FAIL: series $series mean=$mean violates $cmp"; exit 1; }
  echo "ok: $series = $mean"
}

check "write.throughput_ops_s" pos
check "sync-read.throughput_ops_s" pos
check "total.throughput_ops_s" pos
for cls in write sync-read; do
  for p in p50_ms p95_ms p99_ms; do
    check "$cls.$p" pos
  done
  check "$cls.errors" zero
done

say "SUCCESS: live $N-node × $SHARDS-shard cluster sustained a mixed workload with clean percentiles"
