#!/usr/bin/env bash
# metrics_smoke.sh [N] [SHARDS] [DURATION] — boot an N-node (default 3)
# disk-backed noded cluster over real TCP with SHARDS (default 2)
# register shards, drive a mixed write/sync-read nodeload workload
# (default 2s), then scrape every node's GET /metrics and pipe each
# page through cmd/metricslint: the exposition must be strict-parser
# clean and the key subsystem families — tcp, datalink, vs/smr,
# shard router, storage, http — must be present with nonzero samples
# after the write load. Also asserts nodeload's own end-of-run scrape
# folded nonzero server.* counters into its report, and that /metrics
# stays parseable while being scraped concurrently. CI runs this as
# the metrics smoke job.
set -euo pipefail

N="${1:-3}"
SHARDS="${2:-2}"
DURATION="${3:-2s}"
BASE_TCP="${BASE_TCP:-7270}"
BASE_HTTP="${BASE_HTTP:-8270}"
TMP="$(mktemp -d)"
declare -a PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

say() { echo "--- $*"; }

say "building noded + nodeload + metricslint"
go build -o "$TMP/noded" ./cmd/noded
go build -o "$TMP/nodeload" ./cmd/nodeload
go build -o "$TMP/metricslint" ./cmd/metricslint

PEERS=""
ADDRS=""
for i in $(seq 1 "$N"); do
  PEERS+="${PEERS:+,}$i=127.0.0.1:$((BASE_TCP + i))"
  ADDRS+="${ADDRS:+,}http://127.0.0.1:$((BASE_HTTP + i))"
done

say "booting $N nodes × $SHARDS shards, disk-backed (-data-dir), JSON logs"
for i in $(seq 1 "$N"); do
  mkdir -p "$TMP/data$i"
  "$TMP/noded" -id "$i" -peers "$PEERS" -http "127.0.0.1:$((BASE_HTTP + i))" \
    -seed 23 -shards "$SHARDS" -data-dir "$TMP/data$i" -snap-every 64 \
    -log-format json >"$TMP/node$i.log" 2>&1 &
  PIDS+=($!)
done

say "waiting for liveness (healthz) on every node"
for i in $(seq 1 "$N"); do
  for _ in $(seq 1 150); do
    "$TMP/noded" client -addr "http://127.0.0.1:$((BASE_HTTP + i))" -timeout 2s healthz \
      >/dev/null 2>&1 && break
    sleep 0.2
  done
done

say "every node's structured startup line made it to the log"
for i in $(seq 1 "$N"); do
  grep -q '"msg":"noded started"' "$TMP/node$i.log" || {
    echo "FAIL: node $i log has no structured startup line"
    sed -n '1,5p' "$TMP/node$i.log"
    exit 1
  }
done

say "running $DURATION mixed workload (nodeload, with end-of-run /metrics fold-in)"
"$TMP/nodeload" -addrs "$ADDRS" -clients 8 -duration "$DURATION" -ratio 0.5 \
  -shards "$SHARDS" -wait 120s -format csv -out "$TMP/load"

# mean SERIES — one summary mean from nodeload's report.
mean() {
  awk -F, -v s="$1" '$2 == s { print $7 }' "$TMP/load/summary.csv"
}

say "nodeload folded live server counters into its report"
for series in server.shard_ops server.vs_rounds server.datalink_cycles \
  server.tcp_frames_written server.storage_appends server.http_requests; do
  m="$(mean "$series")"
  [ -n "$m" ] || { echo "FAIL: series $series missing from nodeload summary"; exit 1; }
  awk -v m="$m" 'BEGIN { exit !(m + 0 > 0) }' || {
    echo "FAIL: folded series $series = $m, want > 0"
    exit 1
  }
  echo "ok: $series = $m"
done

# The cluster ran real traffic over TCP with disk-backed shards, so on
# every node each subsystem family must exist AND have moved. Shard
# ops are presence-only per node: the shard-aware client routes each
# shard's requests to that shard's preferred endpoint, so with fewer
# shards than nodes some node legitimately serves no register ops —
# the cluster-wide nonzero total is asserted above via the report's
# folded server.shard_ops series.
FAMILIES=(
  repro_node_ticks_total=nonzero
  repro_build_info=nonzero
  repro_tcp_sent_total=nonzero
  repro_tcp_delivered_total=nonzero
  repro_tcp_frames_written_total=nonzero
  repro_datalink_cycles_total=nonzero
  repro_datalink_delivered_total=nonzero
  repro_datalink_queue_depth
  repro_vs_rounds_applied_total=nonzero
  repro_vs_views_installed_total=nonzero
  repro_smr_pending_commands
  repro_shard_ops_total
  repro_storage_appends_total=nonzero
  repro_storage_wal_records=nonzero
  repro_http_requests_total=nonzero
  repro_http_request_seconds=nonzero
)

for i in $(seq 1 "$N"); do
  url="http://127.0.0.1:$((BASE_HTTP + i))/metrics"
  say "scraping node $i ($url) → strict parse + family assertions"
  curl -fsS "$url" >"$TMP/metrics$i.txt"
  "$TMP/metricslint" "${FAMILIES[@]}" <"$TMP/metrics$i.txt"
done

say "concurrent scrapes stay strict-parser clean"
declare -a SCRAPES=()
for _ in $(seq 1 8); do
  (curl -fsS "http://127.0.0.1:$((BASE_HTTP + 1))/metrics" | "$TMP/metricslint" >/dev/null) &
  SCRAPES+=($!)
done
for p in "${SCRAPES[@]}"; do
  wait "$p" || { echo "FAIL: concurrent scrape came back malformed"; exit 1; }
done

say "SUCCESS: $N-node × $SHARDS-shard disk-backed cluster served strict-parser-clean /metrics with live tcp, datalink, vs, shard, storage and http families on every node"
