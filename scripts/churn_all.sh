#!/usr/bin/env bash
# churn_all.sh [DURATION] [OUT] — the churn experiment pipeline
# (DESIGN.md §16), one trend-comparable report per run:
#
#   1. grid    — the deterministic simnet twin: benchtab runs the E14
#                churn-recovery grid (kill/restart and joiner adoption,
#                batch 1/16, datalink window 1/4) at a fixed seed.
#   2. check   — CSV validation: every E14 cell must be valid (acked
#                writes survived, post-recovery writes resumed, joiner
#                adopted the state) or the pipeline fails here.
#   3. live    — the chaos harness: nodeload -churn supervises a real
#                3-node × 2-shard TCP cluster per profile (batch=1/
#                window=1 and batch=16/window=4), SIGKILLs a victim
#                mid-load, restarts it over its -data-dir, drives one
#                fresh -members none joiner through adoption, and exits
#                nonzero on any lost acked write.
#   4. summary — a grouped table: simnet predicted ticks next to live
#                measured milliseconds per (event, batch) arm.
#
# Everything lands under OUT (default ./churn_report): e14/cells.csv +
# e14/summary.csv, live-b*/cells.csv + summary.csv, summary.txt. CI
# archives the directory; diffing summary.txt across PRs tracks the
# recovery-time trend. Override the seed with SEED=..., the E14 window
# grid with E14_SIZES=..., the live cluster shape with NODES=/SHARDS=.
set -euo pipefail

DURATION="${1:-6s}"
OUT="${2:-churn_report}"
SEED="${SEED:-42}"
E14_SIZES="${E14_SIZES:-1,4}"
NODES="${NODES:-3}"
SHARDS="${SHARDS:-2}"
WARMUP="${WARMUP:-1s}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

say() { echo "--- $*" >&2; }

mkdir -p "$OUT"

say "building noded + nodeload"
go build -o "$TMP/noded" ./cmd/noded
go build -o "$TMP/nodeload" ./cmd/nodeload

say "1/4 grid: E14 churn recovery (windows $E14_SIZES, seed $SEED, simnet)"
go run ./cmd/benchtab -seed "$SEED" -only E14 -sizes "$E14_SIZES" \
  -repeats 1 -format csv -out "$OUT/e14"

say "2/4 check: every E14 cell valid"
# cells.csv: experiment,series,n,repeat,seed,value,valid,note
bad="$(awk -F, '$1 == "E14" && $7 != "true"' "$OUT/e14/cells.csv")"
total="$(awk -F, '$1 == "E14"' "$OUT/e14/cells.csv" | wc -l)"
if [ -n "$bad" ]; then
  echo "FAIL: invalid E14 cells:" >&2
  echo "$bad" >&2
  exit 1
fi
say "all $total E14 cells valid"

# live_profile NAME BATCH WINDOW — one supervised chaos run.
live_profile() {
  local name="$1" batch="$2" window="$3"
  say "3/4 live: $name (batch=$batch window=$window, $NODES nodes × $SHARDS shards, $DURATION)"
  "$TMP/nodeload" -churn -noded "$TMP/noded" \
    -nodes "$NODES" -shards "$SHARDS" -batch "$batch" -window "$window" \
    -clients 4 -duration "$DURATION" -warmup "$WARMUP" -seed "$SEED" \
    -format csv -out "$OUT/$name"
  # -churn already exits nonzero on lost acked writes, a missed join or
  # an incomplete schedule; assert the series landed in the report too.
  for series in churn.recovery_time_ms churn.join_adopt_ms \
    churn.availability_gap_max_ms churn.lost_acked_writes; do
    grep -q ",$series," "$OUT/$name/summary.csv" \
      || { echo "FAIL: $series missing from $name report" >&2; exit 1; }
  done
}

live_profile live-b1 1 1
live_profile live-b16 16 4

say "4/4 summary: simnet predicted vs live measured"
# e14 summary.csv: experiment,series,metric,n,repeats,valid,mean,...
# live summary.csv: nodeload,<series>,<metric>,n,repeats,valid,mean,...
sim() { awk -F, -v s="$1" -v n="$2" '$2 == s && $4 == n { print $7 }' "$OUT/e14/summary.csv"; }
live() { awk -F, -v s="$2" '$2 == s { print $7 }' "$OUT/$1/summary.csv"; }
{
  echo "churn trend report (seed $SEED, live: $NODES nodes × $SHARDS shards, $DURATION + $WARMUP warmup)"
  echo
  printf '%-22s %-8s %18s %18s\n' "event" "batch" "simnet w1 (ticks)" "simnet w4 (ticks)"
  printf '%-22s %-8s %18s %18s\n' "kill -> recovered" 1 "$(sim kill_b1 1)" "$(sim kill_b1 4)"
  printf '%-22s %-8s %18s %18s\n' "kill -> recovered" 16 "$(sim kill_b16 1)" "$(sim kill_b16 4)"
  printf '%-22s %-8s %18s %18s\n' "join -> serving" 1 "$(sim join_b1 1)" "$(sim join_b1 4)"
  printf '%-22s %-8s %18s %18s\n' "join -> serving" 16 "$(sim join_b16 1)" "$(sim join_b16 4)"
  echo
  printf '%-22s %-14s %14s %14s\n' "live series" "profile" "b1/w1 (ms)" "b16/w4 (ms)"
  for series in churn.recovery_time_ms churn.join_adopt_ms \
    churn.availability_gap_max_ms churn.lost_acked_writes; do
    printf '%-22s %-14s %14s %14s\n' "${series#churn.}" "$NODES nodes" \
      "$(live live-b1 "$series")" "$(live live-b16 "$series")"
  done
} | tee "$OUT/summary.txt"

say "SUCCESS: wrote $OUT (e14 grid, live profiles, summary.txt)"
