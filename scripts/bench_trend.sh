#!/usr/bin/env bash
# bench_trend.sh [OUT] — run the hot-path benchmark trend through
# cmd/benchtab and fold it into one JSON artifact (default
# BENCH_pr10.json): E12 batch scaling (1/4/16/64 payloads per token
# cycle), E13 pipelining frontier (window 1/2/4/8 at batch 16, static
# vs adaptive sizing, binary vs gob codec bytes) and E14 churn recovery
# (kill/restart and joiner adoption, batch 1/16, window 1/4). All
# experiments run in the deterministic simulator with a fixed seed, so
# the artifact is byte-stable for a given tree — CI archives it per run
# and diffs across PRs track the latency/throughput frontier plus the
# recovery-time trajectory. Override the seed with SEED=..., the grids
# with E12_SIZES=/E13_SIZES=/E14_SIZES=.
set -euo pipefail

OUT="${1:-BENCH_pr10.json}"
SEED="${SEED:-42}"
E12_SIZES="${E12_SIZES:-1,4,16,64}"
E13_SIZES="${E13_SIZES:-1,2,4,8}"
E14_SIZES="${E14_SIZES:-1,4}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

say() { echo "--- $*" >&2; }

say "E12 batch scaling (sizes $E12_SIZES, seed $SEED)"
go run ./cmd/benchtab -seed "$SEED" -only E12 -sizes "$E12_SIZES" \
  -repeats 1 -format json >"$TMP/e12.json"

say "E13 pipelining frontier (sizes $E13_SIZES, seed $SEED)"
go run ./cmd/benchtab -seed "$SEED" -only E13 -sizes "$E13_SIZES" \
  -repeats 1 -format json >"$TMP/e13.json"

say "E14 churn recovery (windows $E14_SIZES, seed $SEED)"
go run ./cmd/benchtab -seed "$SEED" -only E14 -sizes "$E14_SIZES" \
  -repeats 1 -format json >"$TMP/e14.json"

# One self-describing artifact; the reports are valid JSON documents, so
# wrapping them needs no JSON tooling.
{
  printf '{"seed":%s,"e12":' "$SEED"
  cat "$TMP/e12.json"
  printf ',"e13":'
  cat "$TMP/e13.json"
  printf ',"e14":'
  cat "$TMP/e14.json"
  printf '}\n'
} >"$OUT"

test -s "$OUT"
say "wrote $OUT ($(wc -c <"$OUT") bytes)"
