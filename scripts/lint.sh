#!/usr/bin/env bash
# Repo lint suite, in the same order CI runs it: gofmt, go vet,
# staticcheck (when installed), repolint. Run from anywhere in the repo
# before pushing; the CI lint job runs exactly this plus govulncheck.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:"
  echo "$out"
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
else
  echo "staticcheck not installed; skipping (CI installs the pinned version)"
fi

echo "== repolint"
go run ./cmd/repolint ./...

echo "lint: OK"
