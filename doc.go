// Package repro is a from-scratch Go reproduction of "Self-Stabilizing
// Reconfiguration" (Dolev, Georgiou, Marcoullis, Schiller; MIDDLEWARE
// 2016 / arXiv:1606.00195): the first reconfiguration scheme for
// asynchronous message-passing systems that recovers automatically from
// transient faults, together with the dynamic services the paper builds on
// top of it — a bounded labeling scheme, a practically-infinite counter,
// virtually synchronous state machine replication, and an MWMR shared
// memory emulation.
//
// The implementation lives under internal/ (see README.md for the
// quickstart and DESIGN.md for the map); runnable demonstrations are
// under examples/, cmd/noded runs the stack as real networked processes
// over the transport subsystem (DESIGN.md §8), and the benchmark suite
// in bench_test.go regenerates the experiment tables recorded in
// EXPERIMENTS.md.
package repro
