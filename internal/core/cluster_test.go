package core

import (
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/sim"
)

func TestBootstrapStaysConverged(t *testing.T) {
	c, err := BootstrapCluster(5, DefaultClusterOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2000)
	cfg, ok := c.ConvergedConfig()
	if !ok {
		t.Fatalf("cluster did not stay converged; %s", describe(c))
	}
	if !cfg.Equal(ids.Range(1, 5)) {
		t.Fatalf("config = %v, want {p1..p5}", cfg)
	}
	// Closure: no resets should have occurred from a coherent start.
	c.EachAlive(func(n *Node) {
		if m := n.SA.Metrics(); m.Resets > 0 {
			t.Errorf("node %v performed %d resets from a coherent start", n.Self(), m.Resets)
		}
	})
}

func TestColdStartConverges(t *testing.T) {
	c, err := ColdStartCluster(5, DefaultClusterOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := c.RunUntilConverged(30000)
	if !ok {
		t.Fatalf("cold start did not converge; %s", describe(c))
	}
	cfg, _ := c.ConvergedConfig()
	if !cfg.Equal(ids.Range(1, 5)) {
		t.Fatalf("config = %v, want {p1..p5}", cfg)
	}
	t.Logf("cold start converged in %d ticks", d)
}

func TestDelicateReplacement(t *testing.T) {
	c, err := BootstrapCluster(5, DefaultClusterOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	target := ids.NewSet(1, 2, 3)
	if !c.Node(1).Estab(target) {
		t.Fatalf("estab rejected; noReco=%v", c.Node(1).NoReco())
	}
	ok := c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		return !(conv && cfg.Equal(target))
	}, 2_000_000)
	if !ok {
		t.Fatalf("delicate replacement did not complete; %s", describe(c))
	}
	// The replacement must have been delicate: no brute-force resets.
	c.EachAlive(func(n *Node) {
		if m := n.SA.Metrics(); m.Resets > 0 {
			t.Errorf("node %v resorted to %d resets during delicate replacement", n.Self(), m.Resets)
		}
	})
}

func TestTransientFaultRecovery(t *testing.T) {
	c, err := BootstrapCluster(5, DefaultClusterOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	c.CorruptAll(20)
	d, ok := c.RunUntilConverged(60000)
	if !ok {
		t.Fatalf("did not recover from transient fault; %s", describe(c))
	}
	t.Logf("recovered in %d ticks", d)
	// Safety must hold from convergence onward.
	c.RunFor(2000)
	if _, ok := c.ConvergedConfig(); !ok {
		t.Fatalf("converged state not closed under execution; %s", describe(c))
	}
}

func TestJoinerBecomesParticipant(t *testing.T) {
	c, err := BootstrapCluster(4, DefaultClusterOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	j, err := c.AddJoiner(9)
	if err != nil {
		t.Fatal(err)
	}
	ok := c.Sched.RunWhile(func() bool { return !j.IsParticipant() }, 2_000_000)
	if !ok {
		t.Fatalf("joiner never became a participant; %s", describe(c))
	}
	// Let the participant sets settle, then the configuration itself must
	// be unchanged by the join.
	c.RunFor(2000)
	cfg, conv := c.ConvergedConfig()
	if !conv || !cfg.Equal(ids.Range(1, 4)) {
		t.Fatalf("config = %v (converged=%v), want {p1..p4}", cfg, conv)
	}
}

func TestMajorityCrashTriggersReconfiguration(t *testing.T) {
	c, err := BootstrapCluster(6, DefaultClusterOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	// Crash 4 of 6: majority of the configuration collapses.
	for _, id := range []ids.ID{3, 4, 5, 6} {
		c.Crash(id)
	}
	ok := c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		if !conv {
			return true
		}
		// Recovered once the installed configuration has a live majority.
		return cfg.Intersect(c.Alive()).Size() < cfg.MajoritySize()
	}, 8_000_000)
	if !ok {
		t.Fatalf("no recovery after majority crash; %s", describe(c))
	}
	cfg, _ := c.ConvergedConfig()
	t.Logf("recovered with config %v", cfg)
}

func describe(c *Cluster) string {
	out := ""
	c.EachAlive(func(n *Node) {
		m := n.SA.Metrics()
		out += fmt.Sprintf("%v:cfg=%v prp=%v part=%v trusted=%v m=%+v | ",
			n.Self(), n.SA.CurrentConfig(), n.SA.Prp(), n.SA.Participants(), n.Trusted(), m)
	})
	return out
}

func TestEvalConfTriggersDelicateReconfiguration(t *testing.T) {
	opts := DefaultClusterOptions(7)
	c, err := BootstrapCluster(5, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	// Crash 2 of 5 — a quarter-threshold prediction fires while the
	// majority (3 of 5) is intact, so the delicate path must be used.
	c.Crash(4)
	c.Crash(5)
	ok := c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		return !(conv && cfg.Equal(ids.NewSet(1, 2, 3)))
	}, 8_000_000)
	if !ok {
		t.Fatalf("prediction-based reconfiguration did not happen; %s", describe(c))
	}
}

func TestConvergenceAcrossSeeds(t *testing.T) {
	for seed := int64(10); seed < 16; seed++ {
		c, err := ColdStartCluster(4, DefaultClusterOptions(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.RunUntilConverged(60000); !ok {
			t.Errorf("seed %d: no convergence; %s", seed, describe(c))
		}
	}
}

func TestRunUntilConvergedRespectsDeadline(t *testing.T) {
	c, err := ColdStartCluster(3, DefaultClusterOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := c.RunUntilConverged(50)
	if d > 100 {
		t.Fatalf("overshot deadline: %d", d)
	}
	_ = sim.Time(0)
}
