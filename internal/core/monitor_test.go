package core

import (
	"testing"

	"repro/internal/ids"
)

func TestAgreementHoldsContinuouslyThroughReplacements(t *testing.T) {
	c, err := BootstrapCluster(5, DefaultClusterOptions(95))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	if _, ok := c.ConvergedConfig(); !ok {
		t.Fatal("no initial convergence")
	}
	mon := c.MonitorAgreement(10)
	defer mon.Stop()

	// Two delicate replacements and a join, with the monitor sampling
	// the safety property at every 10 virtual ticks throughout.
	for _, target := range []ids.Set{ids.NewSet(1, 2, 3, 4), ids.Range(1, 5)} {
		if !c.Node(1).Estab(target) {
			t.Fatal("estab rejected")
		}
		ok := c.Sched.RunWhile(func() bool {
			cfg, conv := c.ConvergedConfig()
			return !(conv && cfg.Equal(target))
		}, 10_000_000)
		if !ok {
			t.Fatalf("replacement to %v never completed", target)
		}
		c.RunFor(2000)
	}
	if j, err := c.AddJoiner(9); err == nil {
		c.Sched.RunWhile(func() bool { return !j.IsParticipant() }, 10_000_000)
	}
	c.RunFor(5000)

	for _, v := range mon.Violations {
		t.Errorf("safety violation: %v", v)
	}
}

func TestAgreementHoldsContinuouslyThroughCrashRecovery(t *testing.T) {
	c, err := BootstrapCluster(6, DefaultClusterOptions(96))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	mon := c.MonitorAgreement(10)
	defer mon.Stop()

	c.Crash(5)
	c.Crash(6)
	c.RunFor(60_000)
	for _, v := range mon.Violations {
		t.Errorf("safety violation during crash recovery: %v", v)
	}
}

func TestMonitorDetectsViolations(t *testing.T) {
	// Sanity: the monitor is not vacuous — a hand-built disagreement
	// between two steady processors is reported.
	c, err := BootstrapCluster(2, DefaultClusterOptions(97))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	mon := c.MonitorAgreement(10)
	defer mon.Stop()
	// Force p2 into a different-but-locally-consistent configuration by
	// corrupting only its config view of itself and its peer.
	c.Node(2).SA.CorruptState(c.Sched.Rand(), c.IDs())
	c.RunFor(400)
	// Either the corruption was detected and repaired (fine), or at some
	// sample both reported steady with different configs (also fine for
	// the monitor's purposes). We only require the monitor machinery to
	// have sampled without crashing; detection is probabilistic here.
	_ = mon.Violations
}
