package core

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/sim"
)

// AgreementViolation records a point in virtual time at which two alive
// processors both observed a steady system (noReco) yet held different
// configurations — the safety property the whole scheme exists to protect.
type AgreementViolation struct {
	At   sim.Time
	A, B ids.ID
	QA   ids.Set
	QB   ids.Set
}

func (v AgreementViolation) String() string {
	return fmt.Sprintf("t=%d: %v believes %v but %v believes %v (both steady)",
		v.At, v.A, v.QA, v.B, v.QB)
}

// AgreementMonitor continuously checks the conflict-freedom objective:
// "no two alive processors consider different configurations" among
// processors that observe no ongoing reconfiguration. Self-stabilization
// only promises the property *from convergence onward*, so the monitor is
// typically armed after the first convergence and left running through
// whatever the test throws at the cluster (crashes, joins, delicate
// replacements — but not new transient faults, which legitimately break
// safety until re-convergence).
type AgreementMonitor struct {
	cluster    *Cluster
	stop       sim.Cancel
	Violations []AgreementViolation
}

// MonitorAgreement arms the monitor, sampling every `every` virtual ticks.
func (c *Cluster) MonitorAgreement(every sim.Time) *AgreementMonitor {
	if every <= 0 {
		every = 20
	}
	m := &AgreementMonitor{cluster: c}
	m.stop = c.Sched.Every(every, every, 0, m.sample)
	return m
}

// Stop disarms the monitor.
func (m *AgreementMonitor) Stop() {
	if m.stop != nil {
		m.stop()
	}
}

func (m *AgreementMonitor) sample() {
	type steady struct {
		id ids.ID
		q  ids.Set
	}
	var seen []steady
	m.cluster.EachAlive(func(n *Node) {
		if !n.IsParticipant() || !n.NoReco() {
			return
		}
		q, ok := n.Quorum()
		if !ok {
			return
		}
		seen = append(seen, steady{id: n.Self(), q: q})
	})
	for i := 1; i < len(seen); i++ {
		if !seen[0].q.Equal(seen[i].q) {
			m.Violations = append(m.Violations, AgreementViolation{
				At: m.cluster.Sched.Now(),
				A:  seen[0].id, QA: seen[0].q,
				B: seen[i].id, QB: seen[i].q,
			})
		}
	}
}
