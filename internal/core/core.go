// Package core composes the paper's reconfiguration scheme (Figure 1):
// the Reconfiguration Stability Assurance layer (recSA, Algorithm 3.1), the
// Reconfiguration Management layer (recMA, Algorithm 3.2) and the Joining
// Mechanism (Algorithm 3.3), stacked over the (N,Θ)-failure detector and
// the self-stabilizing token data link, all driven by the simulated
// asynchronous network. To an application the composition appears as a
// single black-box module exposing getConfig()/noReco()/estab() plus the
// joining callbacks — exactly the interface surface of Figure 1.
package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/datalink"
	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/join"
	"repro/internal/netsim"
	"repro/internal/quorum"
	"repro/internal/recma"
	"repro/internal/recsa"
)

// Transport abstracts the medium a node is attached to: the deterministic
// simulator (netsim.Network) for tests and benchmarks, or the live
// goroutine-and-channel runtime (internal/runtime) for the examples.
type Transport interface {
	// Send transmits a payload between nodes, subject to the medium's
	// loss/reorder/duplication behavior.
	Send(from, to ids.ID, payload any)
	// AddNode registers a handler and starts its periodic timer.
	AddNode(id ids.ID, h netsim.Handler) error
	// Rand returns a random source safe for use from the node's own
	// execution context.
	Rand() *rand.Rand
}

// App is an application riding on a node: it may piggyback a payload on
// every outgoing envelope and receives peers' payloads. Applications read
// configuration state through the node's Services methods.
type App interface {
	// Tick runs once per node timer tick, after the reconfiguration
	// layers have stepped.
	Tick(n *Node)
	// HandleApp processes a peer's application payload.
	HandleApp(from ids.ID, payload any, n *Node)
	// Outgoing returns the application payload for the next envelope to
	// the given peer (nil for none).
	Outgoing(to ids.ID, n *Node) any
}

// Envelope is the single message type a node broadcasts; it aggregates the
// per-layer state the paper's algorithms each send on their own. Bundling
// them preserves semantics (each layer still receives the latest state of
// its counterpart) while keeping one token exchange per peer pair.
//
// Sharding: the reconfiguration layers (RecSA/RecMA/Join) are singleton —
// one quorum system governs every shard — while the service layer above
// them is instantiated per shard. Shard 0's application payload travels in
// the legacy App field, so single-shard envelopes are indistinguishable
// from the pre-sharding format; payloads of shards ≥ 1 ride in ShardApps,
// each tagged with its shard identifier.
type Envelope struct {
	RecSA     *recsa.Message
	RecMA     *recma.Message
	JoinReq   bool
	JoinResp  *join.Response
	App       any // shard 0's application payload
	ShardApps []ShardApp
}

// ShardApp is one extra shard's application payload, tagged with the
// shard it belongs to.
type ShardApp struct {
	Shard int
	App   any
}

// Params configures a node.
type Params struct {
	Self     ids.ID
	N        int          // system bound N (failure detector sizing)
	Initial  recsa.Config // starting config value (set / ⊥ / ])
	EvalConf recma.EvalConf
	JoinApp  join.App
	App      App
	// Apps, when non-empty, replaces the single App with one service
	// stack per shard (index = shard identifier). The reconfiguration
	// layers stay singleton; only the application layer is sharded.
	Apps  []App
	Link  datalink.Options
	FD    fd.Options
	RecSA recsa.Options
	// Quorum overrides the majority quorum system used by the
	// management layer (nil keeps majorities).
	Quorum quorum.System
}

// Node is one processor running the full reconfiguration stack.
type Node struct {
	self ids.ID
	net  Transport

	Endpoint *datalink.Endpoint
	Detector *fd.Detector
	SA       *recsa.RecSA
	MA       *recma.RecMA
	Joiner   *join.Joiner

	// apps are the per-shard service stacks riding on the singleton
	// reconfiguration layers (index = shard identifier). An unsharded
	// node has exactly one entry; a node without an application has none.
	apps  []App
	maMsg recma.Message
	// joinTargets are the processors the joiner polls this tick.
	joinTargets ids.Set
	// pendingJoinResp holds one response per requesting joiner, carried
	// by the next envelope toward it.
	pendingJoinResp map[ids.ID]*join.Response
	// outbox snapshots the per-peer envelope at the end of every tick.
	// The data link pulls from the snapshot (never from live state), so
	// echoes always reflect the state of the last atomic step — the
	// paper's interleaving model, on which the unison proofs depend.
	outbox map[ids.ID]Envelope
	// batching mirrors Params.Link.MaxBatch > 1 or Link.Window > 1:
	// every tick's envelope is additionally pushed into the data link's
	// per-peer outbound queue, so one token cycle carries the envelopes
	// of several atomic steps instead of only the latest snapshot
	// (DESIGN.md §11), and a pipelined link has queued material to
	// restart cycles on ack (§14). At MaxBatch 1 and Window 1 the
	// legacy pull-only path is preserved bit-for-bit.
	batching bool

	// ticks is atomic: /metrics reads it live while the node runs.
	ticks atomic.Uint64
}

// NewNode constructs a node attached to the transport. The caller must
// still Connect it to its peers.
func NewNode(net Transport, p Params) (*Node, error) {
	if !p.Self.Valid() {
		return nil, fmt.Errorf("core: invalid node id %v", p.Self)
	}
	if p.N <= 0 {
		p.N = 64
	}
	if p.FD.N == 0 {
		p.FD = fd.DefaultOptions(p.N)
	}
	if p.Initial.Kind == 0 {
		p.Initial = recsa.NotParticipant()
	}
	apps := p.Apps
	if len(apps) == 0 && p.App != nil {
		apps = []App{p.App}
	}
	for i, a := range apps {
		if a == nil {
			return nil, fmt.Errorf("core: nil app for shard %d", i)
		}
	}
	n := &Node{
		self:            p.Self,
		net:             net,
		apps:            apps,
		pendingJoinResp: make(map[ids.ID]*join.Response),
		outbox:          make(map[ids.ID]Envelope),
	}
	n.Detector = fd.New(p.Self, p.FD)
	n.SA = recsa.New(p.Self, n.Detector, p.Initial, p.RecSA)
	n.MA = recma.New(p.Self, n.SA, n.Detector, p.EvalConf)
	if p.Quorum != nil {
		n.MA.SetQuorumSystem(p.Quorum)
	}
	n.Joiner = join.New(p.Self, n.SA, p.JoinApp)
	n.Endpoint = datalink.NewEndpoint(datalink.Config{
		Self: p.Self,
		Opts: p.Link,
		Rand: net.Rand(),
		Send: func(to ids.ID, pkt datalink.Packet) {
			net.Send(p.Self, to, pkt)
		},
		Deliver:   n.deliver,
		Heartbeat: n.Detector.Heartbeat,
		Source: func(to ids.ID) any {
			env, ok := n.outbox[to]
			if !ok {
				return nil
			}
			return env
		},
	})
	n.batching = n.Endpoint.MaxBatch() > 1 || n.Endpoint.Window() > 1
	if err := net.AddNode(p.Self, n); err != nil {
		return nil, err
	}
	return n, nil
}

// Self returns the node's identifier.
func (n *Node) Self() ids.ID { return n.self }

// Ticks returns the number of timer ticks executed. Safe to call
// concurrently with the node's own execution.
func (n *Node) Ticks() uint64 { return n.ticks.Load() }

// Connect establishes the data link toward a peer.
func (n *Node) Connect(peer ids.ID) { n.Endpoint.Connect(peer) }

// ConnectAll establishes links toward every member of peers.
func (n *Node) ConnectAll(peers ids.Set) {
	peers.Each(func(p ids.ID) { n.Connect(p) })
}

// --- Services surface used by applications ---

// Quorum returns the current configuration set if one is agreed.
func (n *Node) Quorum() (ids.Set, bool) { return n.SA.Quorum() }

// NoReco reports that no reconfiguration is taking place.
func (n *Node) NoReco() bool { return n.SA.NoReco() }

// IsParticipant reports whether the node broadcasts protocol state.
func (n *Node) IsParticipant() bool { return n.SA.IsParticipant() }

// Trusted returns the failure detector's trusted set.
func (n *Node) Trusted() ids.Set { return n.Detector.Trusted().Add(n.self) }

// Participants returns the current participant set.
func (n *Node) Participants() ids.Set { return n.SA.Participants() }

// Estab proposes replacing the configuration with set.
func (n *Node) Estab(set ids.Set) bool { return n.SA.Estab(set) }

// NumShards returns the number of service stacks hosted on this node.
func (n *Node) NumShards() int { return len(n.apps) }

// --- netsim.Handler ---

// Tick is the node's periodic timer body: step every layer, snapshot the
// outgoing envelopes, then drive the data link.
func (n *Node) Tick() {
	n.ticks.Add(1)
	n.SA.Step()
	n.maMsg = n.MA.Step(n.SA.PeerPart)
	n.joinTargets = n.Joiner.Step(n.Trusted())
	for _, app := range n.apps {
		app.Tick(n)
	}
	n.Endpoint.Peers().Each(func(to ids.ID) {
		env := n.buildEnvelope(to)
		n.outbox[to] = env
		if n.batching {
			n.Endpoint.Enqueue(to, env)
		}
	})
	n.Endpoint.Tick()
}

// Receive handles a raw network packet.
func (n *Node) Receive(from ids.ID, payload any) {
	pkt, ok := payload.(datalink.Packet)
	if !ok {
		return // unknown garbage (possible after fault injection)
	}
	n.Endpoint.HandlePacket(from, pkt)
}

// buildEnvelope assembles the outgoing message for one peer from the state
// of the step that just completed.
func (n *Node) buildEnvelope(to ids.ID) Envelope {
	env := Envelope{}
	if m, ok := n.SA.OutgoingMessage(to); ok {
		env.RecSA = &m
		mm := n.maMsg
		env.RecMA = &mm
	}
	if n.joinTargets.Contains(to) {
		env.JoinReq = true
	}
	if resp, ok := n.pendingJoinResp[to]; ok {
		env.JoinResp = resp
		delete(n.pendingJoinResp, to)
	}
	for shard, app := range n.apps {
		payload := app.Outgoing(to, n)
		if payload == nil {
			continue
		}
		if shard == 0 {
			env.App = payload
		} else {
			env.ShardApps = append(env.ShardApps, ShardApp{Shard: shard, App: payload})
		}
	}
	return env
}

// deliver processes a cleanly received envelope from the data link.
func (n *Node) deliver(from ids.ID, msg any) {
	env, ok := msg.(Envelope)
	if !ok {
		return
	}
	if env.RecSA != nil {
		n.SA.HandleMessage(from, *env.RecSA)
	}
	if env.RecMA != nil {
		n.MA.HandleMessage(from, *env.RecMA)
	}
	if env.JoinReq {
		resp, ok := n.Joiner.HandleRequest(from)
		if !ok {
			// Retract any previously granted pass: joiners poll
			// continuously, so an explicit denial keeps their
			// majority count honest during reconfigurations.
			resp = join.Response{}
		}
		r := resp
		n.pendingJoinResp[from] = &r
	}
	if env.JoinResp != nil {
		n.Joiner.HandleResponse(from, *env.JoinResp)
	}
	if env.App != nil && len(n.apps) > 0 {
		n.apps[0].HandleApp(from, env.App, n)
	}
	for _, sa := range env.ShardApps {
		// Out-of-range shard tags (peer misconfiguration, transient
		// corruption) are dropped like any other garbage.
		if sa.App == nil || sa.Shard < 0 || sa.Shard >= len(n.apps) {
			continue
		}
		n.apps[sa.Shard].HandleApp(from, sa.App, n)
	}
}
