package core

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/recsa"
	"repro/internal/sim"
)

// ClusterOptions configures a simulated cluster.
type ClusterOptions struct {
	Seed int64
	Net  netsim.Options
	Node Params // template: Self/Initial are set per node
	// AppFactory builds the per-node application (may be nil).
	AppFactory func(self ids.ID) App
	// AppsFactory builds the per-node, per-shard service stacks (index =
	// shard identifier). When non-nil it takes precedence over
	// AppFactory.
	AppsFactory func(self ids.ID) []App
}

// DefaultClusterOptions returns the standard adversarial configuration.
func DefaultClusterOptions(seed int64) ClusterOptions {
	return ClusterOptions{Seed: seed, Net: netsim.DefaultOptions()}
}

// Cluster is a convenience harness: a scheduler, a network, and a set of
// nodes, with helpers to drive executions and interrogate global state. It
// backs the integration tests, the benchmarks, and the examples.
type Cluster struct {
	Sched *sim.Scheduler
	Net   *netsim.Network
	nodes map[ids.ID]*Node
	opts  ClusterOptions
}

// NewCluster builds an empty cluster.
func NewCluster(opts ClusterOptions) *Cluster {
	sched := sim.NewScheduler(opts.Seed)
	return &Cluster{
		Sched: sched,
		Net:   netsim.New(sched, opts.Net),
		nodes: make(map[ids.ID]*Node),
		opts:  opts,
	}
}

// BootstrapCluster builds a cluster of n nodes p1..pn that start with a
// coherent configuration {p1..pn} and fully connected links — the paper's
// "consistent configuration" start that legacy schemes require. Transient
// faults are then injected by the tests to exercise stabilization.
func BootstrapCluster(n int, opts ClusterOptions) (*Cluster, error) {
	c := NewCluster(opts)
	all := ids.Range(1, ids.ID(n))
	for i := 1; i <= n; i++ {
		if _, err := c.AddNode(ids.ID(i), recsa.ConfigOf(all)); err != nil {
			return nil, err
		}
	}
	c.ConnectFull()
	c.BootstrapDetectors()
	return c, nil
}

// ColdStartCluster builds a cluster of n nodes that all start from the ⊥
// (reset) configuration: the system bootstraps itself through brute-force
// stabilization — there is no coherent start.
func ColdStartCluster(n int, opts ClusterOptions) (*Cluster, error) {
	c := NewCluster(opts)
	for i := 1; i <= n; i++ {
		if _, err := c.AddNode(ids.ID(i), recsa.Bottom()); err != nil {
			return nil, err
		}
	}
	c.ConnectFull()
	c.BootstrapDetectors()
	return c, nil
}

// BootstrapDetectors seeds every node's failure detector with all other
// registered nodes (see fd.Detector.Bootstrap).
func (c *Cluster) BootstrapDetectors() {
	all := c.IDs()
	all.Each(func(id ids.ID) {
		c.nodes[id].Detector.Bootstrap(all.Remove(id))
	})
}

// AddNode creates a node with the given initial config value.
func (c *Cluster) AddNode(id ids.ID, initial recsa.Config) (*Node, error) {
	if _, ok := c.nodes[id]; ok {
		return nil, fmt.Errorf("core: duplicate node %v", id)
	}
	p := c.opts.Node
	p.Self = id
	p.Initial = initial
	if p.N == 0 {
		p.N = 64
	}
	switch {
	case c.opts.AppsFactory != nil:
		p.Apps = c.opts.AppsFactory(id)
	case c.opts.AppFactory != nil:
		p.App = c.opts.AppFactory(id)
	}
	n, err := NewNode(c.Net, p)
	if err != nil {
		return nil, err
	}
	c.nodes[id] = n
	return n, nil
}

// AddJoiner creates a non-participant node and connects it to every alive
// node (the "connection signal" side of joining).
func (c *Cluster) AddJoiner(id ids.ID) (*Node, error) {
	n, err := c.AddNode(id, recsa.NotParticipant())
	if err != nil {
		return nil, err
	}
	alive := c.Alive().Remove(id)
	n.ConnectAll(alive)
	n.Detector.Bootstrap(alive)
	return n, nil
}

// ConnectFull wires every pair of registered nodes (in identifier order,
// keeping the rng stream — and thus the whole run — deterministic).
func (c *Cluster) ConnectFull() {
	all := c.IDs()
	all.Each(func(a ids.ID) {
		all.Each(func(b ids.ID) {
			if a != b {
				c.nodes[a].Connect(b)
			}
		})
	})
}

// Node returns the node with the given id (nil if absent).
func (c *Cluster) Node(id ids.ID) *Node { return c.nodes[id] }

// Nodes returns all registered nodes keyed by id.
func (c *Cluster) Nodes() map[ids.ID]*Node { return c.nodes }

// IDs returns the identifiers of all registered nodes.
func (c *Cluster) IDs() ids.Set {
	out := ids.Set{}
	for id := range c.nodes {
		out = out.Add(id)
	}
	return out
}

// Alive returns non-crashed node identifiers.
func (c *Cluster) Alive() ids.Set { return c.Net.Alive() }

// Crash stop-fails a node.
func (c *Cluster) Crash(id ids.ID) { c.Net.Crash(id) }

// EachAlive applies fn to every alive node.
func (c *Cluster) EachAlive(fn func(*Node)) {
	c.Alive().Each(func(id ids.ID) {
		if n, ok := c.nodes[id]; ok {
			fn(n)
		}
	})
}

// CorruptAll applies the transient-fault hooks on every alive node: recSA,
// recMA, failure detector and data-link state are randomized, and stale
// packets are injected into the channels.
func (c *Cluster) CorruptAll(stalePackets int) {
	rng := c.Sched.Rand()
	universe := c.IDs()
	c.EachAlive(func(n *Node) {
		n.SA.CorruptState(rng, universe)
		n.MA.CorruptState(rng, universe)
		n.Detector.CorruptCounts(func(ids.ID) uint64 { return uint64(rng.Intn(32)) })
		n.Endpoint.CorruptState(rng)
	})
	alive := c.Alive().Members()
	for i := 0; i < stalePackets && len(alive) > 1; i++ {
		from := alive[rng.Intn(len(alive))]
		to := alive[rng.Intn(len(alive))]
		if from == to {
			continue
		}
		c.Net.InjectPacket(from, to, garbagePacket(rng))
	}
}

func garbagePacket(rng interface{ Intn(int) int }) any {
	switch rng.Intn(3) {
	case 0:
		return "garbage"
	case 1:
		return 42
	default:
		return Envelope{}
	}
}

// ConvergedConfig reports whether every alive node currently agrees on one
// proper configuration with no reconfiguration in progress, and returns it.
func (c *Cluster) ConvergedConfig() (ids.Set, bool) {
	var agreed ids.Set
	first := true
	ok := true
	c.EachAlive(func(n *Node) {
		if !ok {
			return
		}
		q, has := n.Quorum()
		if !has || !n.NoReco() || !n.IsParticipant() {
			ok = false
			return
		}
		if first {
			agreed = q
			first = false
		} else if !agreed.Equal(q) {
			ok = false
		}
	})
	if first {
		return ids.Set{}, false
	}
	return agreed, ok
}

// ConflictFree reports the weaker safety condition: no two alive
// participants hold different proper configurations (⊥/] are permitted).
func (c *Cluster) ConflictFree() bool {
	var seen *ids.Set
	ok := true
	c.EachAlive(func(n *Node) {
		cfg := n.SA.CurrentConfig()
		if cfg.Kind != recsa.KindSet {
			return
		}
		if seen == nil {
			s := cfg.Set
			seen = &s
		} else if !seen.Equal(cfg.Set) {
			ok = false
		}
	})
	return ok
}

// RunUntilConverged drives the simulation until ConvergedConfig holds or
// maxTicks of virtual time elapse. It returns the virtual time spent and
// whether convergence was reached.
func (c *Cluster) RunUntilConverged(maxTicks sim.Time) (sim.Time, bool) {
	start := c.Sched.Now()
	deadline := start + maxTicks
	for c.Sched.Now() < deadline {
		if _, ok := c.ConvergedConfig(); ok {
			return c.Sched.Now() - start, true
		}
		if !c.Sched.RunUntil(c.Sched.Now() + 20) {
			break
		}
	}
	_, ok := c.ConvergedConfig()
	return c.Sched.Now() - start, ok
}

// RunFor advances the simulation by d virtual ticks.
func (c *Cluster) RunFor(d sim.Time) { c.Sched.RunUntil(c.Sched.Now() + d) }
