package core

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/quorum"
	"repro/internal/recsa"
)

// TestQuorumSystemIntegration runs the stack with the crumbling-wall
// quorum system: crashing the wall's top plus one element kills every
// quorum, so the management layer must reconfigure even though a strict
// majority (3 of 5) is still alive — behavior majorities cannot express.
func TestQuorumSystemIntegration(t *testing.T) {
	opts := DefaultClusterOptions(81)
	opts.Node.Quorum = quorum.CrumblingWall{}
	// Disable the prediction path to isolate the quorum-liveness path.
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	c, err := BootstrapCluster(5, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	// Kill the top row (p1) and one wall member: with {p3,p4,p5} alive
	// neither "top + wall element" nor "whole wall" survives.
	c.Crash(1)
	c.Crash(2)
	ok := c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		if !conv {
			return true
		}
		return !cfg.Subset(ids.NewSet(3, 4, 5))
	}, 12_000_000)
	if !ok {
		t.Fatalf("crumbling-wall quorum loss did not reconfigure; %s", describe(c))
	}
}

func TestPartitionHeal(t *testing.T) {
	c, err := BootstrapCluster(5, DefaultClusterOptions(82))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	// Partition {p1,p2} from {p3,p4,p5}.
	for _, a := range []ids.ID{1, 2} {
		for _, b := range []ids.ID{3, 4, 5} {
			c.Net.SetCut(a, b, true)
		}
	}
	c.RunFor(20_000)
	// Heal; the system must reconverge to a single configuration.
	for _, a := range []ids.ID{1, 2} {
		for _, b := range []ids.ID{3, 4, 5} {
			c.Net.SetCut(a, b, false)
		}
	}
	d, ok := c.RunUntilConverged(400_000)
	if !ok {
		t.Fatalf("no reconvergence after partition heal; %s", describe(c))
	}
	t.Logf("healed in %d ticks", d)
	// Safety: at no point may two disjoint proper configurations both
	// believe they are "the" configuration with noReco — checked by
	// ConvergedConfig requiring global agreement, plus closure below.
	c.RunFor(3000)
	if _, ok := c.ConvergedConfig(); !ok {
		t.Fatalf("agreement not closed after heal; %s", describe(c))
	}
}

func TestSequentialDelicateReplacements(t *testing.T) {
	c, err := BootstrapCluster(6, DefaultClusterOptions(83))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	targets := []ids.Set{
		ids.NewSet(1, 2, 3, 4, 5),
		ids.NewSet(1, 2, 3, 4),
		ids.NewSet(1, 2, 3, 4, 5, 6),
	}
	for i, target := range targets {
		if !c.Node(1).Estab(target) {
			t.Fatalf("estab %d rejected", i)
		}
		ok := c.Sched.RunWhile(func() bool {
			cfg, conv := c.ConvergedConfig()
			return !(conv && cfg.Equal(target))
		}, 10_000_000)
		if !ok {
			t.Fatalf("replacement %d to %v never completed; %s", i, target, describe(c))
		}
		// Let the channels drain the previous replacement's tail before
		// proposing again — the closure theorem's hypothesis is a state
		// with no stale information in the channels either.
		c.RunFor(2000)
	}
	c.EachAlive(func(n *Node) {
		if m := n.SA.Metrics(); m.Resets > 0 {
			t.Errorf("%v used %d brute-force resets across delicate replacements", n.Self(), m.Resets)
		}
		if got := n.SA.Metrics().DelicateInstalls + n.SA.Metrics().Adoptions; got == 0 {
			t.Errorf("%v never took part in a replacement", n.Self())
		}
	})
}

func TestRepeatedTransientFaults(t *testing.T) {
	c, err := BootstrapCluster(4, DefaultClusterOptions(84))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	for round := 0; round < 4; round++ {
		d, ok := c.RunUntilConverged(400_000)
		if !ok {
			t.Fatalf("round %d: no recovery; %s", round, describe(c))
		}
		t.Logf("round %d: recovered in %d ticks", round, d)
		c.CorruptAll(12)
	}
	if _, ok := c.RunUntilConverged(400_000); !ok {
		t.Fatalf("final recovery failed; %s", describe(c))
	}
}

func TestJoinBlockedDuringReconfiguration(t *testing.T) {
	c, err := BootstrapCluster(4, DefaultClusterOptions(85))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	// Start a delicate replacement and immediately add a joiner: the
	// joiner must not become a participant until the replacement is done
	// (Claim 3.24), and must join afterwards.
	if !c.Node(1).Estab(ids.NewSet(1, 2, 3)) {
		t.Fatal("estab rejected")
	}
	j, err := c.AddJoiner(9)
	if err != nil {
		t.Fatal(err)
	}
	joinedDuring := false
	ok := c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		done := conv && cfg.Equal(ids.NewSet(1, 2, 3))
		if !done && j.IsParticipant() {
			// Participation while the replacement is still visibly in
			// progress anywhere.
			busy := false
			c.EachAlive(func(n *Node) {
				if n.Self() != 9 && !n.SA.Prp().IsDefault() {
					busy = true
				}
			})
			if busy {
				joinedDuring = true
			}
		}
		return !done
	}, 10_000_000)
	if !ok {
		t.Fatalf("replacement never completed; %s", describe(c))
	}
	if joinedDuring {
		t.Fatal("joiner became a participant while the replacement was running")
	}
	ok = c.Sched.RunWhile(func() bool { return !j.IsParticipant() }, 10_000_000)
	if !ok {
		t.Fatalf("joiner never admitted after the replacement; %s", describe(c))
	}
}

func TestManyJoinersSequential(t *testing.T) {
	c, err := BootstrapCluster(3, DefaultClusterOptions(86))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	for id := ids.ID(10); id < 13; id++ {
		j, err := c.AddJoiner(id)
		if err != nil {
			t.Fatal(err)
		}
		ok := c.Sched.RunWhile(func() bool { return !j.IsParticipant() }, 10_000_000)
		if !ok {
			t.Fatalf("joiner %v never admitted; %s", id, describe(c))
		}
	}
	// Configuration unchanged; participants grown.
	c.RunFor(2000)
	cfg, conv := c.ConvergedConfig()
	if !conv || !cfg.Equal(ids.Range(1, 3)) {
		t.Fatalf("config drifted: %v %v", cfg, conv)
	}
	if got := c.Node(1).Participants().Size(); got != 6 {
		t.Fatalf("participants = %d, want 6", got)
	}
}

func TestCrashBelowMajorityKeepsConfig(t *testing.T) {
	// One crash out of five: below every reconfiguration threshold —
	// the configuration must stay put (no unnecessary reconfigurations,
	// the paper's "avoid unnecessary reconfiguration requests").
	opts := DefaultClusterOptions(87)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	c, err := BootstrapCluster(5, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800)
	c.Crash(5)
	c.RunFor(60_000)
	cfg, conv := c.ConvergedConfig()
	if !conv || !cfg.Equal(ids.Range(1, 5)) {
		t.Fatalf("config changed needlessly: %v %v; %s", cfg, conv, describe(c))
	}
	c.EachAlive(func(n *Node) {
		m := n.MA.Metrics()
		if m.TriggeredNoMaj+m.TriggeredPredict > 0 {
			t.Errorf("%v triggered a reconfiguration for a single crash", n.Self())
		}
	})
}

func TestColdStartWithInitialNonParticipant(t *testing.T) {
	// Mixed start: three ⊥ nodes and one ] node. The brute force run
	// must absorb the non-participant too (type-4/reset path makes every
	// active processor a participant).
	c := NewCluster(DefaultClusterOptions(88))
	for i := 1; i <= 3; i++ {
		if _, err := c.AddNode(ids.ID(i), recsa.Bottom()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddNode(4, recsa.NotParticipant()); err != nil {
		t.Fatal(err)
	}
	c.ConnectFull()
	c.BootstrapDetectors()
	if _, ok := c.RunUntilConverged(400_000); !ok {
		t.Fatalf("mixed cold start did not converge; %s", describe(c))
	}
	// p4 joined during/after stabilization.
	ok := c.Sched.RunWhile(func() bool { return !c.Node(4).IsParticipant() }, 10_000_000)
	if !ok {
		t.Fatalf("non-participant never absorbed; %s", describe(c))
	}
}
