// Package workload provides the churn, fault-injection and measurement
// machinery shared by the benchmark harness (bench_test.go) and the
// examples: scripted join/crash schedules, transient-fault campaigns, and
// convergence measurement against a core.Cluster.
package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/sim"
)

// ChurnOptions describes a churn schedule: every Interval ticks one crash
// and/or one join is injected, keeping the number of alive processors
// within [MinAlive, …].
type ChurnOptions struct {
	Interval sim.Time
	Joins    bool
	Crashes  bool
	MinAlive int
	// MaxEvents bounds the schedule (0 = unbounded).
	MaxEvents int
}

// Churn drives a churn schedule against a cluster. Joins use fresh
// identifiers above any existing one.
type Churn struct {
	cluster *core.Cluster
	opts    ChurnOptions
	nextID  ids.ID
	events  int
	stop    sim.Cancel

	// Joined and Crashed record the schedule actually executed.
	Joined  []ids.ID
	Crashed []ids.ID
}

// NewChurn builds (but does not start) a churn driver.
func NewChurn(c *core.Cluster, opts ChurnOptions) *Churn {
	if opts.Interval <= 0 {
		opts.Interval = 200
	}
	if opts.MinAlive <= 0 {
		opts.MinAlive = 3
	}
	var maxID ids.ID
	c.IDs().Each(func(id ids.ID) {
		if id > maxID {
			maxID = id
		}
	})
	return &Churn{cluster: c, opts: opts, nextID: maxID + 1}
}

// Start arms the schedule on the cluster's scheduler.
func (ch *Churn) Start() {
	ch.stop = ch.cluster.Sched.Every(ch.opts.Interval, ch.opts.Interval, ch.opts.Interval/4, ch.step)
}

// Stop disarms the schedule.
func (ch *Churn) Stop() {
	if ch.stop != nil {
		ch.stop()
	}
}

func (ch *Churn) step() {
	if ch.opts.MaxEvents > 0 && ch.events >= ch.opts.MaxEvents {
		return
	}
	rng := ch.cluster.Sched.Rand()
	alive := ch.cluster.Alive()
	if ch.opts.Crashes && alive.Size() > ch.opts.MinAlive && rng.Intn(2) == 0 {
		victims := alive.Members()
		v := victims[rng.Intn(len(victims))]
		ch.cluster.Crash(v)
		ch.Crashed = append(ch.Crashed, v)
		ch.events++
		return
	}
	if ch.opts.Joins {
		id := ch.nextID
		ch.nextID++
		if _, err := ch.cluster.AddJoiner(id); err == nil {
			ch.Joined = append(ch.Joined, id)
			ch.events++
		}
	}
}

// MeasureConvergence corrupts the cluster state (transient fault) and
// reports the virtual time until it converges again, plus success.
func MeasureConvergence(c *core.Cluster, stalePackets int, deadline sim.Time) (sim.Time, bool) {
	c.CorruptAll(stalePackets)
	return c.RunUntilConverged(deadline)
}

// Series is one (x, y) result series for a benchmark table.
type Series struct {
	Name string
	Rows []Row
}

// Row is one measurement row.
type Row struct {
	X     int
	Y     float64
	Note  string
	Valid bool
}

// Add appends a row.
func (s *Series) Add(x int, y float64, valid bool, note string) {
	s.Rows = append(s.Rows, Row{X: x, Y: y, Valid: valid, Note: note})
}

// Agg summarizes repeated measurements at one x: the mean/std/min/max of
// the Y values across repeats, plus how many repeats were valid. All
// repeats enter the statistics with whatever Y they reported — a
// timed-out repeat contributes the value measured at its deadline, and a
// repeat that failed outright (e.g. a rejected estab) contributes its
// zero — so always read Mean alongside Valid: a group with Valid <
// Repeats mixes failure sentinels into the stats.
type Agg struct {
	X       int
	Repeats int
	Valid   int
	Mean    float64
	Std     float64
	Min     float64
	Max     float64
}

// Aggregate groups rows by X (in first-seen order) and reduces each group
// of repeats to mean and sample standard deviation. A group with a single
// repeat reports Std 0.
func Aggregate(rows []Row) []Agg {
	var order []int
	groups := map[int][]Row{}
	for _, r := range rows {
		if _, seen := groups[r.X]; !seen {
			order = append(order, r.X)
		}
		groups[r.X] = append(groups[r.X], r)
	}
	out := make([]Agg, 0, len(order))
	for _, x := range order {
		g := groups[x]
		a := Agg{X: x, Repeats: len(g), Min: g[0].Y, Max: g[0].Y}
		sum := 0.0
		for _, r := range g {
			sum += r.Y
			if r.Valid {
				a.Valid++
			}
			if r.Y < a.Min {
				a.Min = r.Y
			}
			if r.Y > a.Max {
				a.Max = r.Y
			}
		}
		a.Mean = sum / float64(len(g))
		if len(g) > 1 {
			ss := 0.0
			for _, r := range g {
				d := r.Y - a.Mean
				ss += d * d
			}
			a.Std = math.Sqrt(ss / float64(len(g)-1))
		}
		out = append(out, a)
	}
	return out
}

// Render prints the series as a fixed-width table, the format the
// benchmark harness and benchtab binary emit for EXPERIMENTS.md.
func (s *Series) Render() string {
	out := fmt.Sprintf("%-28s %8s %14s  %s\n", s.Name, "x", "y", "note")
	for _, r := range s.Rows {
		status := ""
		if !r.Valid {
			status = " (timeout)"
		}
		out += fmt.Sprintf("%-28s %8d %14.2f  %s%s\n", "", r.X, r.Y, r.Note, status)
	}
	return out
}
