// Package workload provides the churn, fault-injection and measurement
// machinery shared by the benchmark harness (bench_test.go) and the
// examples: scripted join/crash schedules, transient-fault campaigns, and
// convergence measurement against a core.Cluster.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/sim"
)

// ChurnOptions describes a churn schedule: every Interval ticks one crash
// and/or one join is injected, keeping the number of alive processors
// within [MinAlive, …].
type ChurnOptions struct {
	Interval sim.Time
	Joins    bool
	Crashes  bool
	MinAlive int
	// MaxEvents bounds the schedule (0 = unbounded).
	MaxEvents int
}

// Churn drives a churn schedule against a cluster. Joins use fresh
// identifiers above any existing one.
type Churn struct {
	cluster *core.Cluster
	opts    ChurnOptions
	nextID  ids.ID
	events  int
	stop    sim.Cancel

	// Joined and Crashed record the schedule actually executed.
	Joined  []ids.ID
	Crashed []ids.ID
}

// NewChurn builds (but does not start) a churn driver.
func NewChurn(c *core.Cluster, opts ChurnOptions) *Churn {
	if opts.Interval <= 0 {
		opts.Interval = 200
	}
	if opts.MinAlive <= 0 {
		opts.MinAlive = 3
	}
	var maxID ids.ID
	c.IDs().Each(func(id ids.ID) {
		if id > maxID {
			maxID = id
		}
	})
	return &Churn{cluster: c, opts: opts, nextID: maxID + 1}
}

// Start arms the schedule on the cluster's scheduler.
func (ch *Churn) Start() {
	ch.stop = ch.cluster.Sched.Every(ch.opts.Interval, ch.opts.Interval, ch.opts.Interval/4, ch.step)
}

// Stop disarms the schedule.
func (ch *Churn) Stop() {
	if ch.stop != nil {
		ch.stop()
	}
}

func (ch *Churn) step() {
	if ch.opts.MaxEvents > 0 && ch.events >= ch.opts.MaxEvents {
		return
	}
	rng := ch.cluster.Sched.Rand()
	alive := ch.cluster.Alive()
	if ch.opts.Crashes && alive.Size() > ch.opts.MinAlive && rng.Intn(2) == 0 {
		victims := alive.Members()
		v := victims[rng.Intn(len(victims))]
		ch.cluster.Crash(v)
		ch.Crashed = append(ch.Crashed, v)
		ch.events++
		return
	}
	if ch.opts.Joins {
		id := ch.nextID
		ch.nextID++
		if _, err := ch.cluster.AddJoiner(id); err == nil {
			ch.Joined = append(ch.Joined, id)
			ch.events++
		}
	}
}

// MeasureConvergence corrupts the cluster state (transient fault) and
// reports the virtual time until it converges again, plus success.
func MeasureConvergence(c *core.Cluster, stalePackets int, deadline sim.Time) (sim.Time, bool) {
	c.CorruptAll(stalePackets)
	return c.RunUntilConverged(deadline)
}

// Series is one (x, y) result series for a benchmark table.
type Series struct {
	Name string
	Rows []Row
}

// Row is one measurement row.
type Row struct {
	X     int
	Y     float64
	Note  string
	Valid bool
}

// Add appends a row.
func (s *Series) Add(x int, y float64, valid bool, note string) {
	s.Rows = append(s.Rows, Row{X: x, Y: y, Valid: valid, Note: note})
}

// Render prints the series as a fixed-width table, the format the
// benchmark harness and benchtab binary emit for EXPERIMENTS.md.
func (s *Series) Render() string {
	out := fmt.Sprintf("%-28s %8s %14s  %s\n", s.Name, "x", "y", "note")
	for _, r := range s.Rows {
		status := ""
		if !r.Valid {
			status = " (timeout)"
		}
		out += fmt.Sprintf("%-28s %8d %14.2f  %s%s\n", "", r.X, r.Y, r.Note, status)
	}
	return out
}
