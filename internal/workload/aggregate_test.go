package workload

import (
	"math"
	"testing"
)

func TestAggregateGroupsAndStats(t *testing.T) {
	rows := []Row{
		{X: 4, Y: 10, Valid: true},
		{X: 8, Y: 7, Valid: true},
		{X: 4, Y: 14, Valid: true},
		{X: 4, Y: 12, Valid: false},
		{X: 8, Y: 7, Valid: true},
	}
	aggs := Aggregate(rows)
	if len(aggs) != 2 {
		t.Fatalf("got %d groups, want 2", len(aggs))
	}
	a4 := aggs[0]
	if a4.X != 4 || a4.Repeats != 3 || a4.Valid != 2 {
		t.Errorf("x=4 group: %+v", a4)
	}
	if a4.Mean != 12 || a4.Min != 10 || a4.Max != 14 {
		t.Errorf("x=4 stats: %+v", a4)
	}
	if want := 2.0; math.Abs(a4.Std-want) > 1e-12 {
		t.Errorf("x=4 std = %v, want %v (sample std of 10,14,12)", a4.Std, want)
	}
	a8 := aggs[1]
	if a8.X != 8 || a8.Repeats != 2 || a8.Valid != 2 || a8.Mean != 7 || a8.Std != 0 {
		t.Errorf("x=8 group: %+v", a8)
	}
}

func TestAggregateSingleRepeat(t *testing.T) {
	aggs := Aggregate([]Row{{X: 4, Y: 3, Valid: true}})
	if len(aggs) != 1 {
		t.Fatalf("got %d groups, want 1", len(aggs))
	}
	a := aggs[0]
	if a.Std != 0 || a.Mean != 3 || a.Min != 3 || a.Max != 3 || a.Repeats != 1 {
		t.Errorf("single repeat: %+v", a)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if aggs := Aggregate(nil); len(aggs) != 0 {
		t.Errorf("Aggregate(nil) = %v, want empty", aggs)
	}
}
