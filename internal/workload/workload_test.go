package workload

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestChurnSchedule(t *testing.T) {
	c, err := core.BootstrapCluster(5, core.DefaultClusterOptions(71))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	ch := NewChurn(c, ChurnOptions{Interval: 500, Joins: true, Crashes: true, MinAlive: 3, MaxEvents: 6})
	ch.Start()
	c.RunFor(10_000)
	ch.Stop()
	if len(ch.Joined)+len(ch.Crashed) == 0 {
		t.Fatal("churn executed no events")
	}
	if len(ch.Joined)+len(ch.Crashed) > 6 {
		t.Fatalf("MaxEvents exceeded: %d joins %d crashes", len(ch.Joined), len(ch.Crashed))
	}
	if got := c.Alive().Size(); got < 3 {
		t.Fatalf("MinAlive violated: %d", got)
	}
	// Events stop after Stop().
	joined, crashed := len(ch.Joined), len(ch.Crashed)
	c.RunFor(5_000)
	if len(ch.Joined) != joined || len(ch.Crashed) != crashed {
		t.Fatal("churn continued after Stop")
	}
}

func TestChurnFreshIdentifiers(t *testing.T) {
	c, err := core.BootstrapCluster(4, core.DefaultClusterOptions(72))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	ch := NewChurn(c, ChurnOptions{Interval: 300, Joins: true, MaxEvents: 3})
	ch.Start()
	c.RunFor(5_000)
	ch.Stop()
	for _, id := range ch.Joined {
		if id <= 4 {
			t.Fatalf("join reused identifier %v", id)
		}
	}
}

func TestMeasureConvergence(t *testing.T) {
	c, err := core.BootstrapCluster(4, core.DefaultClusterOptions(73))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(500)
	d, ok := MeasureConvergence(c, 10, 400_000)
	if !ok {
		t.Fatal("no convergence")
	}
	if d <= 0 {
		t.Fatalf("implausible recovery time %d", d)
	}
}

func TestSeriesRender(t *testing.T) {
	s := Series{Name: "demo"}
	s.Add(4, 123.5, true, "fine")
	s.Add(8, 0, false, "stuck")
	out := s.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "timeout") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "123.50") {
		t.Fatalf("value not rendered:\n%s", out)
	}
}
