// Package apitest provides an in-memory fake of the /v1 client-API
// contract (repro/pkg/api) for tests that need a cluster-shaped server
// without a live stack: pkg/client's routing/failover tests and
// cmd/nodeload's workload tests share it, so the fake tracks the wire
// contract in exactly one place.
package apitest

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/shard"
	"repro/pkg/api"
)

// Node fakes one noded process. Nodes constructed over the same Store
// act as one replicated cluster (every write is instantly visible on
// every node). Failing flips the node into answering 503 envelopes on
// every route — the mid-run failure mode of the failover tests. Hits
// counts every request the node saw.
type Node struct {
	ID      int
	Shards  int
	Store   *sync.Map
	Failing atomic.Bool
	Hits    atomic.Int64
	// NoStorage makes the storage routes answer storage_unavailable;
	// SnapshotBusy makes the snapshot trigger answer
	// snapshot_in_progress; Snapshots counts accepted triggers.
	NoStorage    atomic.Bool
	SnapshotBusy atomic.Bool
	Snapshots    atomic.Int64
}

// Cluster builds n healthy nodes over one shared store.
func Cluster(n, shards int) []*Node {
	store := &sync.Map{}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{ID: i + 1, Shards: shards, Store: store}
	}
	return nodes
}

// Handler serves the fake's /v1 surface: healthz, status (always
// serving, every shard in a view), and register read/sync-read/write
// with the shard echo computed by the real router.
func (f *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	serve := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			f.Hits.Add(1)
			if f.Failing.Load() {
				api.WriteError(w, api.Errorf(api.CodeUnavailable, "node is down"))
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET "+api.PathHealthz, serve(func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, api.Health{OK: true, ID: f.ID})
	}))
	mux.HandleFunc("GET "+api.PathStatus, serve(func(w http.ResponseWriter, r *http.Request) {
		st := api.Status{ID: f.ID, Serving: true, Config: []int{1, 2}}
		for i := 0; i < f.Shards; i++ {
			st.Shards = append(st.Shards, api.ShardStatus{Shard: i, HasView: true, Serving: true})
		}
		api.WriteJSON(w, st)
	}))
	mux.HandleFunc("GET "+api.PathReg+"{name}", serve(func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		resp := api.RegResponse{Name: name, Shard: shard.ShardFor(name, f.Shards), Done: true}
		if v, found := f.Store.Load(name); found {
			resp.Value, resp.Found = v.(string), true
		}
		api.WriteJSON(w, resp)
	}))
	put := serve(func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body, _ := io.ReadAll(io.LimitReader(r.Body, api.MaxBody))
		f.Store.Store(name, string(body))
		api.WriteJSON(w, api.RegResponse{
			Name: name, Shard: shard.ShardFor(name, f.Shards), Value: string(body), Done: true,
		})
	})
	mux.HandleFunc("PUT "+api.PathReg+"{name}", put)
	mux.HandleFunc("POST "+api.PathReg+"{name}", put)
	shardDoc := func(i int) api.ShardStorageStatus {
		return api.ShardStorageStatus{Shard: i, Kind: "memory", Snapshots: uint64(f.Snapshots.Load())}
	}
	mux.HandleFunc("GET "+api.PathStorage, serve(func(w http.ResponseWriter, r *http.Request) {
		st := api.StorageStatus{ID: f.ID}
		if !f.NoStorage.Load() {
			st.Attached, st.Kind = true, "memory"
			for i := 0; i < f.Shards; i++ {
				st.Shards = append(st.Shards, shardDoc(i))
			}
		}
		api.WriteJSON(w, st)
	}))
	mux.HandleFunc("GET "+api.PathStorage+"/{shard}", serve(func(w http.ResponseWriter, r *http.Request) {
		i, err := strconv.Atoi(r.PathValue("shard"))
		if err != nil || i < 0 || i >= f.Shards {
			api.WriteError(w, api.Errorf(api.CodeBadShard, "bad shard %q", r.PathValue("shard")))
			return
		}
		if f.NoStorage.Load() {
			api.WriteError(w, api.Errorf(api.CodeStorageUnavailable, "no durability backend").WithShard(i))
			return
		}
		api.WriteJSON(w, shardDoc(i))
	}))
	mux.HandleFunc("POST "+api.PathStorageSnapshot, serve(func(w http.ResponseWriter, r *http.Request) {
		if f.NoStorage.Load() {
			api.WriteError(w, api.Errorf(api.CodeStorageUnavailable, "no durability backend"))
			return
		}
		if f.SnapshotBusy.Load() {
			api.WriteError(w, api.Errorf(api.CodeSnapshotInProgress, "snapshot already running"))
			return
		}
		var req api.SnapshotRequest
		body, _ := io.ReadAll(io.LimitReader(r.Body, api.MaxBody))
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				api.WriteError(w, api.Errorf(api.CodeBadRequest, "bad snapshot request: %v", err))
				return
			}
		}
		f.Snapshots.Add(1)
		resp := api.SnapshotResponse{Snapshotted: []int{}}
		for i := 0; i < f.Shards; i++ {
			if req.Shard != nil && *req.Shard != i {
				continue
			}
			resp.Snapshotted = append(resp.Snapshotted, i)
			resp.Shards = append(resp.Shards, shardDoc(i))
		}
		if req.Shard != nil && len(resp.Snapshotted) == 0 {
			api.WriteError(w, api.Errorf(api.CodeBadShard, "bad shard %d", *req.Shard))
			return
		}
		api.WriteJSON(w, resp)
	}))
	return mux
}
