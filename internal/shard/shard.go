// Package shard partitions the register namespace across N independent
// service stacks (vs + smr + regmem), all riding on one node's singleton
// reconfiguration layers (recSA/recMA/fd) and one transport. Each shard
// is a self-contained law-governed module in the sense of Minsky's
// modularization principle: it elects its own view coordinator, orders
// its own multicast rounds, and replicates its own register file, while
// the quorum system governing membership stays shared. Register names
// map to shards through a deterministic hash router, so every processor
// — and every client talking to any processor — agrees on the placement
// without coordination.
package shard

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/regmem"
	"repro/internal/storage"
	"repro/internal/vs"
)

// ShardFor routes a register name to one of n shards via FNV-1a. The
// mapping depends only on (name, n), so all processors agree on it.
// Non-positive n collapses to a single shard.
func ShardFor(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// NamesPerShard returns, for each of n shards, per register names the
// router assigns to it, found by probing sequential candidates
// ("k0", "k1", …). It is deterministic in (n, per); tests, experiment
// cells, and scripts use it to construct workloads that touch every
// shard.
func NamesPerShard(n, per int) [][]string {
	if n < 1 {
		n = 1
	}
	out := make([][]string, n)
	remaining := n * per
	for i := 0; remaining > 0; i++ {
		name := fmt.Sprintf("k%d", i)
		s := ShardFor(name, n)
		if len(out[s]) < per {
			out[s] = append(out[s], name)
			remaining--
		}
	}
	return out
}

// Map owns one service stack per shard for a single processor and routes
// register operations to the owning shard. Its stacks plug into a
// core.Node via Apps; the node then tags every outgoing service message
// with its shard identifier (core.Envelope.ShardApps) so peers demux to
// their matching stacks.
type Map struct {
	self ids.ID
	mems []*regmem.SharedMemory
	// ops are the per-shard routed-operation counters (atomic — read
	// live by /metrics while the HTTP layer routes).
	ops []opCounters
}

// opCounters counts one shard's routed register operations.
type opCounters struct {
	writes    atomic.Uint64
	reads     atomic.Uint64
	syncReads atomic.Uint64
}

// OpStats is a snapshot of one shard's routed-operation counters.
type OpStats struct {
	Writes    uint64
	Reads     uint64
	SyncReads uint64
}

// New builds a processor's shard map with n stacks (n < 1 is raised to
// 1). eval is the per-shard delicate-reconfiguration predicate passed to
// every stack (may be nil).
func New(self ids.ID, n int, eval vs.EvalConf) *Map {
	if n < 1 {
		n = 1
	}
	m := &Map{self: self, mems: make([]*regmem.SharedMemory, n), ops: make([]opCounters, n)}
	for i := range m.mems {
		m.mems[i] = regmem.New(self, eval)
	}
	return m
}

// OpStats returns a snapshot of shard i's routed-operation counters
// (zero for out-of-range i). Safe to call concurrently with routing.
func (m *Map) OpStats(i int) OpStats {
	if i < 0 || i >= len(m.ops) {
		return OpStats{}
	}
	return OpStats{
		Writes:    m.ops[i].writes.Load(),
		Reads:     m.ops[i].reads.Load(),
		SyncReads: m.ops[i].syncReads.Load(),
	}
}

// N returns the shard count.
func (m *Map) N() int { return len(m.mems) }

// SetMaxBatch bounds the commands every shard's replica bundles into one
// multicast round input (regmem.SharedMemory.SetMaxBatch on each stack).
func (m *Map) SetMaxBatch(n int) {
	for _, mem := range m.mems {
		mem.SetMaxBatch(n)
	}
}

// SetAdaptiveBatch switches every shard's replica to adaptive bundle
// sizing (regmem.SharedMemory.SetAdaptiveBatch on each stack).
func (m *Map) SetAdaptiveBatch(on bool) {
	for _, mem := range m.mems {
		mem.SetAdaptiveBatch(on)
	}
}

// Apps returns the per-shard service stacks in shard order, for
// core.Params.Apps.
func (m *Map) Apps() []core.App {
	out := make([]core.App, len(m.mems))
	for i, mem := range m.mems {
		out[i] = mem
	}
	return out
}

// Mem returns shard i's stack.
func (m *Map) Mem(i int) (*regmem.SharedMemory, error) {
	if i < 0 || i >= len(m.mems) {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", i, len(m.mems))
	}
	return m.mems[i], nil
}

// For returns the stack owning the named register and its shard index.
func (m *Map) For(name string) (*regmem.SharedMemory, int) {
	i := ShardFor(name, len(m.mems))
	return m.mems[i], i
}

// Write routes a register write to its owning shard.
func (m *Map) Write(name, value string) (*regmem.Handle, int) {
	mem, i := m.For(name)
	m.ops[i].writes.Add(1)
	return mem.Write(name, value), i
}

// Read serves a fast local read from the owning shard.
func (m *Map) Read(name string) (string, bool) {
	mem, i := m.For(name)
	m.ops[i].reads.Add(1)
	return mem.Read(name)
}

// SyncRead routes a synchronous (marker-flushed) read to its owning
// shard.
func (m *Map) SyncRead(name string) (*regmem.Handle, int) {
	mem, i := m.For(name)
	m.ops[i].syncReads.Add(1)
	return mem.SyncRead(name), i
}

// AttachStorage wires one durability backend per shard: mk is called
// with each shard index and returns that shard's backend (one backend
// per shard — shards recover and snapshot independently). snapEvery is
// the per-shard automatic snapshot threshold (0 disables). Attach
// before the node starts ticking; on error the already-attached shards
// keep their backends (the caller abandons the whole map anyway).
func (m *Map) AttachStorage(mk func(shard int) (storage.Backend, error), snapEvery uint64) error {
	for i, mem := range m.mems {
		be, err := mk(i)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := mem.AttachStorage(be, snapEvery); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// StorageStats returns shard i's backend counters; ok is false when
// the shard has no backend attached (or i is out of range).
func (m *Map) StorageStats(i int) (storage.Stats, bool) {
	if i < 0 || i >= len(m.mems) {
		return storage.Stats{}, false
	}
	return m.mems[i].StorageStats()
}

// ForceSnapshot saves shard i's compacted snapshot now.
func (m *Map) ForceSnapshot(i int) error {
	mem, err := m.Mem(i)
	if err != nil {
		return err
	}
	return mem.ForceSnapshot()
}
