package shard

import (
	"testing"

	"repro/internal/storage"
)

func TestAttachStorageFansOutPerShard(t *testing.T) {
	m := New(1, 3, nil)
	bes := map[int]*storage.Memory{}
	err := m.AttachStorage(func(shard int) (storage.Backend, error) {
		be := storage.NewMemory()
		bes[shard] = be
		return be, nil
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(bes) != 3 {
		t.Fatalf("mk called for %d shards, want 3", len(bes))
	}
	for i := 0; i < 3; i++ {
		st, ok := m.StorageStats(i)
		if !ok || st.Kind != "memory" {
			t.Errorf("shard %d: stats ok=%v kind=%q", i, ok, st.Kind)
		}
		if err := m.ForceSnapshot(i); err != nil {
			t.Errorf("shard %d: force snapshot: %v", i, err)
		}
		if st, _ := m.StorageStats(i); st.Snapshots != 1 {
			t.Errorf("shard %d: snapshots = %d", i, st.Snapshots)
		}
	}
	if _, ok := m.StorageStats(3); ok {
		t.Error("out-of-range shard reported stats")
	}
	if err := m.ForceSnapshot(-1); err == nil {
		t.Error("out-of-range force snapshot succeeded")
	}
}

func TestStorageStatsWithoutBackend(t *testing.T) {
	m := New(1, 2, nil)
	if _, ok := m.StorageStats(0); ok {
		t.Error("unattached shard reported stats")
	}
	if err := m.ForceSnapshot(0); err == nil {
		t.Error("unattached force snapshot succeeded")
	}
}
