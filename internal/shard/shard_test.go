package shard_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/regmem"
	"repro/internal/shard"
)

func TestShardForDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("reg-%d", i)
			s := shard.ShardFor(name, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardFor(%q, %d) = %d out of range", name, n, s)
			}
			if again := shard.ShardFor(name, n); again != s {
				t.Fatalf("ShardFor(%q, %d) unstable: %d vs %d", name, n, s, again)
			}
		}
	}
	if shard.ShardFor("x", 0) != 0 || shard.ShardFor("x", -3) != 0 {
		t.Fatal("non-positive shard counts must collapse to shard 0")
	}
}

func TestShardForCoversAllShards(t *testing.T) {
	const n = 8
	hit := make([]bool, n)
	for i := 0; i < 512; i++ {
		hit[shard.ShardFor(fmt.Sprintf("key%d", i), n)] = true
	}
	for s, ok := range hit {
		if !ok {
			t.Errorf("shard %d never hit by 512 sequential names", s)
		}
	}
}

func TestMapRoutesConsistently(t *testing.T) {
	m := shard.New(1, 4, nil)
	if m.N() != 4 {
		t.Fatalf("N = %d, want 4", m.N())
	}
	if len(m.Apps()) != 4 {
		t.Fatalf("Apps() has %d entries, want 4", len(m.Apps()))
	}
	mem, i := m.For("some-register")
	if i != shard.ShardFor("some-register", 4) {
		t.Fatalf("For routed to %d, ShardFor says %d", i, shard.ShardFor("some-register", 4))
	}
	byIdx, err := m.Mem(i)
	if err != nil || byIdx != mem {
		t.Fatalf("Mem(%d) = %v (%v), want the stack For returned", i, byIdx, err)
	}
	if _, err := m.Mem(4); err == nil {
		t.Fatal("Mem(4) on a 4-shard map must fail")
	}
	if _, err := m.Mem(-1); err == nil {
		t.Fatal("Mem(-1) must fail")
	}
}

func TestMapCollapsesNonPositiveCounts(t *testing.T) {
	m := shard.New(1, 0, nil)
	if m.N() != 1 {
		t.Fatalf("N = %d, want 1", m.N())
	}
}

func TestNamesPerShard(t *testing.T) {
	for _, n := range []int{1, 2, 8} {
		names := shard.NamesPerShard(n, 3)
		if len(names) != n {
			t.Fatalf("NamesPerShard(%d, 3) has %d groups", n, len(names))
		}
		for s, group := range names {
			if len(group) != 3 {
				t.Fatalf("shard %d got %d names, want 3", s, len(group))
			}
			for _, name := range group {
				if got := shard.ShardFor(name, n); got != s {
					t.Fatalf("name %q grouped under shard %d but routes to %d", name, s, got)
				}
			}
		}
	}
}

// TestShardedClusterWritesAndIsolation runs a 3-node simulated cluster
// with 2 shards per node: writes routed to both shards complete, are
// visible on every node, and each register's value lives only in its
// owning shard's replicated state — the shards are genuinely
// independent stacks multiplexed over one reconfiguration layer.
func TestShardedClusterWritesAndIsolation(t *testing.T) {
	const n, shards = 3, 2
	maps := map[ids.ID]*shard.Map{}
	opts := core.DefaultClusterOptions(61)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.AppsFactory = func(self ids.ID) []core.App {
		m := shard.New(self, shards, nil)
		maps[self] = m
		return m.Apps()
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(1).NumShards() != shards {
		t.Fatalf("node hosts %d shards, want %d", c.Node(1).NumShards(), shards)
	}

	// Wait until every shard of node 1 has an installed view.
	ok := c.Sched.RunWhile(func() bool {
		for i := 0; i < shards; i++ {
			mem, _ := maps[1].Mem(i)
			if _, has := mem.VS().CurrentView(); !has {
				return true
			}
		}
		return false
	}, 6_000_000)
	if !ok {
		t.Fatal("not every shard established a view")
	}

	names := shard.NamesPerShard(shards, 1)
	h0, s0 := maps[1].Write(names[0][0], "zero")
	h1, s1 := maps[2].Write(names[1][0], "one")
	if s0 != 0 || s1 != 1 {
		t.Fatalf("routing: writes landed on shards %d,%d, want 0,1", s0, s1)
	}
	if !c.Sched.RunWhile(func() bool { return !(h0.Done() && h1.Done()) }, 8_000_000) {
		t.Fatal("cross-shard writes never completed")
	}

	// Every node reads both registers through the router.
	ok = c.Sched.RunWhile(func() bool {
		for id := ids.ID(1); id <= n; id++ {
			if v, _ := maps[id].Read(names[0][0]); v != "zero" {
				return true
			}
			if v, _ := maps[id].Read(names[1][0]); v != "one" {
				return true
			}
		}
		return false
	}, 8_000_000)
	if !ok {
		t.Fatal("cross-shard writes not visible everywhere")
	}

	// Isolation: the register of shard 0 must not exist in shard 1's
	// replicated state and vice versa.
	for id := ids.ID(1); id <= n; id++ {
		for i := 0; i < shards; i++ {
			mem, _ := maps[id].Mem(i)
			other := names[1-i][0]
			st, _ := mem.VS().Replica().State.(regmem.State)
			if _, leaked := st.Get(other); leaked {
				t.Fatalf("node %v shard %d holds register %q owned by shard %d", id, i, other, 1-i)
			}
		}
	}
}
