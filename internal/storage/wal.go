package storage

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL record framing. Every record is
//
//	4-byte big-endian length L (= 8 + len(data), bounded by MaxRecord)
//	4-byte big-endian IEEE CRC-32 over the L payload bytes
//	8-byte big-endian record index
//	data bytes
//
// The CRC covers index and data, so a torn write, a corrupted length,
// or flipped payload bits all fail verification. Recovery scans from
// the start and cuts the log at the first record that does not verify —
// everything before the cut is intact by CRC, everything after is
// unreachable anyway (a later record's durability never precedes an
// earlier one's under an append-only discipline).

// MaxRecord bounds one WAL record's framed payload (index + data). A
// register write is tiny; the bound only stops a corrupted length field
// from making recovery allocate wildly.
const MaxRecord = 16 << 20

// walHeaderLen is the fixed per-record framing overhead.
const walHeaderLen = 8 // length + CRC

// Record is one decoded WAL record.
type Record struct {
	Index uint64
	Data  []byte
}

// AppendRecord appends the framed encoding of one record to buf.
func AppendRecord(buf []byte, index uint64, data []byte) []byte {
	var hdr [walHeaderLen + 8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(8+len(data)))
	binary.BigEndian.PutUint64(hdr[8:16], index)
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:16])
	crc.Write(data)
	binary.BigEndian.PutUint32(hdr[4:8], crc.Sum32())
	buf = append(buf, hdr[:]...)
	return append(buf, data...)
}

// ScanWAL parses a WAL byte stream. It returns every record that
// verifies, the number of clean bytes consumed (the offset recovery
// truncates the log to), and whether a torn or corrupt tail was cut.
// It never fails: a WAL that decodes to nothing is a valid empty log.
// The decoder is fuzzed (FuzzScanWAL) — it must never panic or
// allocate beyond the declared record bounds.
func ScanWAL(data []byte) (recs []Record, clean int, torn bool) {
	off := 0
	for {
		if off == len(data) {
			return recs, off, false
		}
		if len(data)-off < walHeaderLen {
			return recs, off, true // torn mid-header
		}
		l := binary.BigEndian.Uint32(data[off : off+4])
		if l < 8 || l > MaxRecord {
			return recs, off, true // corrupt length field
		}
		if uint32(len(data)-off-walHeaderLen) < l {
			return recs, off, true // torn mid-payload
		}
		payload := data[off+walHeaderLen : off+walHeaderLen+int(l)]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			return recs, off, true // corrupt payload
		}
		recs = append(recs, Record{
			Index: binary.BigEndian.Uint64(payload[:8]),
			Data:  append([]byte(nil), payload[8:]...),
		})
		off += walHeaderLen + int(l)
	}
}
