package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// Disk file layout (one directory per shard):
//
//	wal.log        CRC-framed append-only records (see wal.go)
//	snapshot.snap  the newest compacted snapshot, atomically replaced
//	snapshot.tmp   in-flight snapshot (ignored, overwritten, cleaned)
//
// The snapshot file is
//
//	8-byte magic "rsnap\x00\x00\x01"
//	8-byte big-endian record index the snapshot covers
//	8-byte big-endian payload length
//	4-byte big-endian IEEE CRC-32 of the payload
//	payload bytes
//
// and is written to snapshot.tmp, fsynced, then renamed over
// snapshot.snap (with a directory fsync), so a crash leaves either the
// old snapshot or the new one — never a torn mix. Only after the rename
// is durable is the WAL truncated; a crash between the two leaves
// already-covered records in the log, which recovery skips by index.

var snapMagic = [8]byte{'r', 's', 'n', 'a', 'p', 0, 0, 1}

const snapHeaderLen = 8 + 8 + 8 + 4

// MaxSnapshot bounds a snapshot payload the disk backend will read
// back — the same role MaxRecord plays for the WAL.
const MaxSnapshot = 256 << 20

// DiskOptions configures OpenDisk.
type DiskOptions struct {
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync Fsync
	// Logf, when set, receives recovery diagnostics (torn tails,
	// discarded snapshots).
	Logf func(format string, a ...any)
}

// Disk is the durable Backend: a per-shard directory with a CRC-framed
// WAL and an atomically replaced compacted snapshot.
type Disk struct {
	dir   string
	opts  DiskOptions
	wal   *os.File
	stats Stats

	recSnap []byte
	recTail [][]byte

	failed error
}

var _ Backend = (*Disk)(nil)

// OpenDisk opens (creating if necessary) a shard's storage directory
// and runs recovery: the newest intact snapshot is loaded, the WAL is
// scanned and its torn or corrupt tail cut off, and records the
// snapshot already covers are skipped. The recovered state is returned
// by Recover.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", dir, err)
	}
	d := &Disk{dir: dir, opts: opts, stats: Stats{Kind: "disk"}}

	snap, snapIdx, err := d.loadSnapshot()
	if err != nil {
		// A snapshot that fails verification is treated as absent: the
		// WAL behind it is gone, so the honest recovery is "whatever
		// still verifies", not a refusal to start.
		d.logf("storage: %s: discarding snapshot: %v", dir, err)
		snap, snapIdx = nil, 0
	}

	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", walPath, err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read %s: %w", walPath, err)
	}
	recs, clean, torn := ScanWAL(raw)
	if torn {
		cut := int64(len(raw)) - int64(clean)
		d.logf("storage: %s: cutting %d torn/corrupt tail bytes at offset %d", walPath, cut, clean)
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: truncate torn tail of %s: %w", walPath, err)
		}
		d.stats.Recovery.TruncatedBytes = cut
	}
	if _, err := f.Seek(int64(clean), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek %s: %w", walPath, err)
	}
	d.wal = f

	last := snapIdx
	var walBytes uint64
	for _, r := range recs {
		if r.Index <= snapIdx {
			// Covered by the snapshot already: a crash between snapshot
			// save and WAL truncation leaves these behind.
			d.stats.Recovery.SkippedRecords++
			continue
		}
		d.recTail = append(d.recTail, r.Data)
		walBytes += uint64(walHeaderLen + 8 + len(r.Data))
		if r.Index > last {
			last = r.Index
		}
	}
	d.recSnap = snap
	d.stats.Appended = last
	d.stats.WALRecords = uint64(len(d.recTail))
	d.stats.WALBytes = walBytes
	d.stats.SnapshotIndex = snapIdx
	d.stats.SnapshotBytes = uint64(len(snap))
	d.stats.Recovery.Recovered = snap != nil || len(recs) > 0 || torn
	d.stats.Recovery.SnapshotLoaded = snap != nil
	d.stats.Recovery.SnapshotBytes = uint64(len(snap))
	d.stats.Recovery.TailRecords = len(d.recTail)
	return d, nil
}

func (d *Disk) logf(format string, a ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, a...)
	}
}

// loadSnapshot reads and verifies snapshot.snap (nil when absent).
func (d *Disk) loadSnapshot() ([]byte, uint64, error) {
	raw, err := os.ReadFile(filepath.Join(d.dir, "snapshot.snap"))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < snapHeaderLen || !bytes.Equal(raw[:8], snapMagic[:]) {
		return nil, 0, fmt.Errorf("bad header (%d bytes)", len(raw))
	}
	idx := binary.BigEndian.Uint64(raw[8:16])
	l := binary.BigEndian.Uint64(raw[16:24])
	if l > MaxSnapshot || l != uint64(len(raw)-snapHeaderLen) {
		return nil, 0, fmt.Errorf("length %d does not match %d payload bytes", l, len(raw)-snapHeaderLen)
	}
	payload := raw[snapHeaderLen:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(raw[24:28]) {
		return nil, 0, fmt.Errorf("payload CRC mismatch")
	}
	return payload, idx, nil
}

// Kind implements Backend.
func (d *Disk) Kind() string { return "disk" }

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

// fail latches the first storage fault: every later mutating call
// returns it without touching the files again (half-written state is
// exactly what the CRC framing exists to survive, but flapping between
// failing writes would grind the serving path).
func (d *Disk) fail(err error) error {
	if d.failed == nil {
		d.failed = err
		d.stats.Failed = true
		d.stats.LastError = err.Error()
		d.logf("storage: %s: latched failed: %v", d.dir, err)
	}
	return d.failed
}

// Append implements Backend.
func (d *Disk) Append(data []byte) error {
	if d.failed != nil {
		return d.failed
	}
	if 8+len(data) > MaxRecord {
		return fmt.Errorf("storage: record of %d bytes exceeds MaxRecord %d", len(data), MaxRecord)
	}
	frame := AppendRecord(nil, d.stats.Appended+1, data)
	if _, err := d.wal.Write(frame); err != nil {
		return d.fail(fmt.Errorf("storage: append: %w", err))
	}
	if d.opts.Fsync == FsyncAlways {
		if err := d.wal.Sync(); err != nil {
			return d.fail(fmt.Errorf("storage: fsync: %w", err))
		}
	}
	d.stats.Appended++
	d.stats.WALRecords++
	d.stats.WALBytes += uint64(len(frame))
	return nil
}

// SaveSnapshot implements Backend.
func (d *Disk) SaveSnapshot(data []byte) error {
	if d.failed != nil {
		return d.failed
	}
	if len(data) > MaxSnapshot {
		return fmt.Errorf("storage: snapshot of %d bytes exceeds MaxSnapshot %d", len(data), MaxSnapshot)
	}
	// The WAL must be durable up to the index the snapshot claims to
	// cover before the claim itself becomes durable.
	if d.opts.Fsync != FsyncAlways {
		if err := d.wal.Sync(); err != nil {
			return d.fail(fmt.Errorf("storage: fsync wal before snapshot: %w", err))
		}
	}
	var hdr [snapHeaderLen]byte
	copy(hdr[:8], snapMagic[:])
	binary.BigEndian.PutUint64(hdr[8:16], d.stats.Appended)
	binary.BigEndian.PutUint64(hdr[16:24], uint64(len(data)))
	binary.BigEndian.PutUint32(hdr[24:28], crc32.ChecksumIEEE(data))

	tmp := filepath.Join(d.dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return d.fail(fmt.Errorf("storage: snapshot tmp: %w", err))
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(data)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return d.fail(fmt.Errorf("storage: write snapshot: %w", err))
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, "snapshot.snap")); err != nil {
		return d.fail(fmt.Errorf("storage: install snapshot: %w", err))
	}
	if err := syncDir(d.dir); err != nil {
		return d.fail(fmt.Errorf("storage: fsync dir: %w", err))
	}
	// Only now is the snapshot the durable truth; dropping the log it
	// covers is safe. A crash before the truncate leaves covered
	// records behind, which recovery skips by index.
	if err := d.wal.Truncate(0); err != nil {
		return d.fail(fmt.Errorf("storage: truncate wal: %w", err))
	}
	if _, err := d.wal.Seek(0, 0); err != nil {
		return d.fail(fmt.Errorf("storage: rewind wal: %w", err))
	}
	d.stats.Snapshots++
	d.stats.SnapshotIndex = d.stats.Appended
	d.stats.SnapshotBytes = uint64(len(data))
	d.stats.LastSnapshot = time.Now()
	d.stats.WALRecords, d.stats.WALBytes = 0, 0
	return nil
}

// Recover implements Backend.
func (d *Disk) Recover() (snapshot []byte, tail [][]byte, err error) {
	return d.recSnap, d.recTail, nil
}

// Stats implements Backend.
func (d *Disk) Stats() Stats { return d.stats }

// Close implements Backend.
func (d *Disk) Close() error {
	if d.wal == nil {
		return nil
	}
	err := d.wal.Sync()
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	d.wal = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
