package storage

import (
	"bytes"
	"testing"
)

// FuzzScanWAL hammers the WAL record decoder: it must never panic, and
// on any input the reported clean prefix must itself re-scan to the
// same records with no torn verdict (truncation is idempotent — what
// recovery writes back is what a second recovery reads).
func FuzzScanWAL(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, 1, []byte("hello")))
	f.Add(AppendRecord(AppendRecord(nil, 1, nil), 2, []byte("x")))
	multi := AppendRecord(nil, 7, bytes.Repeat([]byte("a"), 100))
	multi = AppendRecord(multi, 8, []byte("tail"))
	f.Add(multi)
	f.Add(multi[:len(multi)-2])                                   // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})             // absurd length
	f.Add([]byte{0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // bad CRC
	corrupt := AppendRecord(nil, 3, []byte("flipme"))
	corrupt[len(corrupt)-1] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, torn := ScanWAL(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean offset %d out of [0,%d]", clean, len(data))
		}
		if !torn && clean != len(data) {
			t.Fatalf("clean scan consumed %d of %d bytes", clean, len(data))
		}
		recs2, clean2, torn2 := ScanWAL(data[:clean])
		if torn2 || clean2 != clean || len(recs2) != len(recs) {
			t.Fatalf("re-scan of clean prefix: %d recs, clean=%d, torn=%v (first pass: %d recs, clean=%d)",
				len(recs2), clean2, torn2, len(recs), clean)
		}
		// Round-trip: re-encoding the decoded records reproduces the
		// clean prefix byte for byte.
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r.Index, r.Data)
		}
		if !bytes.Equal(re, data[:clean]) {
			t.Fatalf("re-encode mismatch: %d vs %d bytes", len(re), clean)
		}
	})
}
