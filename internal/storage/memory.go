package storage

import "time"

// Memory is the in-RAM Backend: the default noded configuration and
// the baseline the disk backend is measured against. It implements the
// full module surface — appends, snapshots with log truncation,
// recovery, stats — but its contents die with the process, exactly like
// the pre-storage behavior. Within a process it recovers (tests reuse
// one instance across a simulated restart); across processes it is
// empty, which is what "memory backend" means.
type Memory struct {
	snapshot []byte
	snapIdx  uint64
	tail     []Record
	tailLen  uint64
	stats    Stats
}

var _ Backend = (*Memory)(nil)

// NewMemory builds an empty in-RAM backend.
func NewMemory() *Memory {
	return &Memory{stats: Stats{Kind: "memory"}}
}

// Kind implements Backend.
func (m *Memory) Kind() string { return "memory" }

// Append implements Backend.
func (m *Memory) Append(data []byte) error {
	m.stats.Appended++
	m.tail = append(m.tail, Record{Index: m.stats.Appended, Data: append([]byte(nil), data...)})
	m.tailLen += uint64(walHeaderLen + 8 + len(data))
	return nil
}

// SaveSnapshot implements Backend.
func (m *Memory) SaveSnapshot(data []byte) error {
	m.snapshot = append([]byte(nil), data...)
	m.snapIdx = m.stats.Appended
	m.tail, m.tailLen = nil, 0
	m.stats.Snapshots++
	m.stats.SnapshotIndex = m.snapIdx
	m.stats.SnapshotBytes = uint64(len(data))
	m.stats.LastSnapshot = time.Now()
	return nil
}

// Recover implements Backend.
func (m *Memory) Recover() (snapshot []byte, tail [][]byte, err error) {
	if m.snapshot == nil && len(m.tail) == 0 {
		return nil, nil, nil
	}
	m.stats.Recovery = RecoveryStats{
		Recovered:      true,
		SnapshotLoaded: m.snapshot != nil,
		SnapshotBytes:  uint64(len(m.snapshot)),
		TailRecords:    len(m.tail),
	}
	out := make([][]byte, 0, len(m.tail))
	for _, r := range m.tail {
		out = append(out, r.Data)
	}
	return m.snapshot, out, nil
}

// Stats implements Backend.
func (m *Memory) Stats() Stats {
	st := m.stats
	st.WALRecords = uint64(len(m.tail))
	st.WALBytes = m.tailLen
	return st
}

// Close implements Backend.
func (m *Memory) Close() error { return nil }
