package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFsyncRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Fsync
		ok   bool
	}{
		{"", FsyncAlways, true},
		{"always", FsyncAlways, true},
		{"snapshot", FsyncSnapshot, true},
		{"bogus", FsyncAlways, false},
	} {
		got, ok := ParseFsync(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseFsync(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	if FsyncAlways.String() != "always" || FsyncSnapshot.String() != "snapshot" {
		t.Errorf("Fsync.String: got %q/%q", FsyncAlways, FsyncSnapshot)
	}
}

func TestScanWALRoundTrip(t *testing.T) {
	var buf []byte
	for i := 1; i <= 5; i++ {
		buf = AppendRecord(buf, uint64(i), []byte(fmt.Sprintf("rec-%d", i)))
	}
	recs, clean, torn := ScanWAL(buf)
	if torn {
		t.Fatal("intact log reported torn")
	}
	if clean != len(buf) {
		t.Fatalf("clean = %d want %d", clean, len(buf))
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records want 5", len(recs))
	}
	for i, r := range recs {
		if r.Index != uint64(i+1) || string(r.Data) != fmt.Sprintf("rec-%d", i+1) {
			t.Fatalf("record %d = {%d %q}", i, r.Index, r.Data)
		}
	}
}

func TestScanWALTornTail(t *testing.T) {
	full := AppendRecord(nil, 1, []byte("alpha"))
	full = AppendRecord(full, 2, []byte("beta"))
	cut := len(full)
	full = AppendRecord(full, 3, []byte("gamma"))

	// Every strict prefix that stops inside record 3 must recover
	// exactly records 1 and 2 with a torn verdict.
	for n := cut + 1; n < len(full); n++ {
		recs, clean, torn := ScanWAL(full[:n])
		if !torn {
			t.Fatalf("prefix %d: not torn", n)
		}
		if clean != cut {
			t.Fatalf("prefix %d: clean = %d want %d", n, clean, cut)
		}
		if len(recs) != 2 {
			t.Fatalf("prefix %d: %d records want 2", n, len(recs))
		}
	}
}

func TestScanWALCorruptRecord(t *testing.T) {
	full := AppendRecord(nil, 1, []byte("alpha"))
	cut := len(full)
	full = AppendRecord(full, 2, []byte("beta"))
	full = AppendRecord(full, 3, []byte("gamma"))

	// Flip a payload bit in record 2: the scan keeps record 1 and cuts
	// there, even though record 3 after it is intact — append-only
	// ordering means nothing after a corrupt record is trustworthy.
	full[cut+walHeaderLen+8] ^= 0x40
	recs, clean, torn := ScanWAL(full)
	if !torn || clean != cut || len(recs) != 1 {
		t.Fatalf("got %d records, clean=%d, torn=%v; want 1, %d, true", len(recs), clean, torn, cut)
	}

	// A corrupt length field is also a clean cut, not a panic.
	full[cut] = 0xff
	recs, clean, torn = ScanWAL(full)
	if !torn || clean != cut || len(recs) != 1 {
		t.Fatalf("corrupt length: got %d records, clean=%d, torn=%v", len(recs), clean, torn)
	}
}

func TestDiskEmptyDir(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	snap, tail, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(tail) != 0 {
		t.Fatalf("empty dir recovered snap=%v tail=%d", snap, len(tail))
	}
	st := d.Stats()
	if st.Recovery.Recovered || st.Kind != "disk" || st.Appended != 0 {
		t.Fatalf("empty dir stats: %+v", st)
	}
}

func TestDiskAppendRecoverSnapshotTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := d.Append([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SaveSnapshot([]byte("snap@3")); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 6; i++ {
		if err := d.Append([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Appended != 6 || st.SnapshotIndex != 3 || st.WALRecords != 3 || st.Snapshots != 1 {
		t.Fatalf("pre-close stats: %+v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot plus the three tail records come back.
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, tail, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "snap@3" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(tail) != 3 {
		t.Fatalf("tail = %d records", len(tail))
	}
	for i, data := range tail {
		if string(data) != fmt.Sprintf("cmd-%d", i+4) {
			t.Fatalf("tail[%d] = %q", i, data)
		}
	}
	st = d2.Stats()
	if !st.Recovery.Recovered || !st.Recovery.SnapshotLoaded || st.Recovery.TailRecords != 3 ||
		st.Appended != 6 || st.SnapshotIndex != 3 {
		t.Fatalf("recovered stats: %+v", st)
	}

	// Appends continue from the recovered index.
	if err := d2.Append([]byte("cmd-7")); err != nil {
		t.Fatal(err)
	}
	if got := d2.Stats().Appended; got != 7 {
		t.Fatalf("appended after recovery = %d", got)
	}
}

func TestDiskTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{Fsync: FsyncSnapshot})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := d.Append([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn final write: chop bytes off the log's tail.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	_, tail, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 {
		t.Fatalf("recovered %d records want 3", len(tail))
	}
	st := d2.Stats()
	if st.Recovery.TruncatedBytes == 0 || st.Appended != 3 {
		t.Fatalf("torn recovery stats: %+v", st)
	}

	// The file itself was repaired: a third open sees a clean log.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if st := d3.Stats(); st.Recovery.TruncatedBytes != 0 || st.Recovery.TailRecords != 3 {
		t.Fatalf("post-repair stats: %+v", st)
	}
}

func TestDiskSkipsRecordsCoveredBySnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := d.Append([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SaveSnapshot([]byte("snap@3")); err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("cmd-4")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash between snapshot save and WAL truncation:
	// prepend already-covered records back onto the log.
	walPath := filepath.Join(dir, "wal.log")
	live, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var stale []byte
	for i := 1; i <= 3; i++ {
		stale = AppendRecord(stale, uint64(i), []byte(fmt.Sprintf("cmd-%d", i)))
	}
	if err := os.WriteFile(walPath, append(stale, live...), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, tail, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "snap@3" || len(tail) != 1 || string(tail[0]) != "cmd-4" {
		t.Fatalf("recovered snap=%q tail=%q", snap, tail)
	}
	if st := d2.Stats(); st.Recovery.SkippedRecords != 3 || st.Appended != 4 {
		t.Fatalf("skip stats: %+v", st)
	}
}

func TestDiskCorruptSnapshotDiscarded(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("cmd-1")); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveSnapshot([]byte("snap@1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	snapPath := filepath.Join(dir, "snapshot.snap")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged bytes.Buffer
	d2, err := OpenDisk(dir, DiskOptions{Logf: func(f string, a ...any) {
		fmt.Fprintf(&logged, f+"\n", a...)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, tail, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(tail) != 0 {
		t.Fatalf("corrupt snapshot recovered snap=%q tail=%d", snap, len(tail))
	}
	if !bytes.Contains(logged.Bytes(), []byte("discarding snapshot")) {
		t.Fatalf("no discard diagnostic logged: %q", logged.String())
	}
}

func TestDiskSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 10; i++ {
		if err := d.Append([]byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SaveSnapshot([]byte("compacted")); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("wal.log is %d bytes after snapshot", fi.Size())
	}
	if st := d.Stats(); st.WALRecords != 0 || st.WALBytes != 0 || st.SnapshotIndex != 10 {
		t.Fatalf("post-snapshot stats: %+v", st)
	}
}

func TestMemoryBackendRoundTrip(t *testing.T) {
	m := NewMemory()
	if m.Kind() != "memory" {
		t.Fatalf("kind = %q", m.Kind())
	}
	if snap, tail, _ := m.Recover(); snap != nil || tail != nil {
		t.Fatal("fresh memory backend recovered something")
	}
	for i := 1; i <= 3; i++ {
		if err := m.Append([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SaveSnapshot([]byte("snap@3")); err != nil {
		t.Fatal(err)
	}
	if err := m.Append([]byte("cmd-4")); err != nil {
		t.Fatal(err)
	}
	snap, tail, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "snap@3" || len(tail) != 1 || string(tail[0]) != "cmd-4" {
		t.Fatalf("recovered snap=%q tail=%q", snap, tail)
	}
	st := m.Stats()
	if st.Appended != 4 || st.WALRecords != 1 || st.SnapshotIndex != 3 || st.Snapshots != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFailureLatches(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Yank the file out from under the backend: the next fsync'd append
	// still succeeds (the fd is alive), but snapshot install fails at
	// the rename/dir step once the directory is gone.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	err = d.SaveSnapshot([]byte("snap"))
	if err == nil {
		t.Fatal("snapshot into removed dir succeeded")
	}
	st := d.Stats()
	if !st.Failed || st.LastError == "" {
		t.Fatalf("failure not latched: %+v", st)
	}
	if err2 := d.Append([]byte("more")); err2 == nil {
		t.Fatal("append after latched failure succeeded")
	}
	d.Close()
}
