// Package storage is the pluggable durability module behind a shard's
// register file (ROADMAP item 1; the modular-subsystem framing of
// Minsky's modularization principle: the service layer talks to a
// law-governed storage interface, never to files). One Backend instance
// serves one shard: the service appends every applied command to an
// append-only write-ahead log before the state that includes it can be
// observed, periodically replaces the log with a compacted snapshot,
// and — after a crash — replays snapshot plus log tail to recover the
// last durable state without asking a peer for a full state transfer.
//
// Two implementations ship: Memory (today's behavior — nothing survives
// the process, but the module surface and its stats are real, so the
// admin API reports uniformly) and Disk (per-shard directory holding a
// CRC-framed WAL and an atomically-replaced snapshot file, with
// truncated-tail recovery and an fsync policy knob).
//
// The Backend works on opaque byte records: the schema of what a record
// or snapshot *means* belongs to the service layer (internal/regmem
// encodes its commands and register maps), so storage stays reusable by
// any replicated application and fuzzable in isolation.
package storage

import "time"

// Backend is one shard's durability module. Implementations are not
// safe for concurrent use: every call happens from the owning node's
// execution context (the same single-threaded discipline the service
// stack itself runs under).
type Backend interface {
	// Kind identifies the implementation ("memory", "disk").
	Kind() string
	// Append durably logs one record. Records are write-ahead: the
	// caller appends a command before exposing any state that includes
	// it, so recovery can always replay forward from the snapshot.
	Append(data []byte) error
	// SaveSnapshot atomically replaces the snapshot with data — which
	// must cover every record appended so far — and truncates the WAL.
	SaveSnapshot(data []byte) error
	// Recover returns the newest snapshot (nil when none was ever
	// saved) and the WAL tail appended after it, in append order. It is
	// meant to be called once, right after opening, before any Append.
	Recover() (snapshot []byte, tail [][]byte, err error)
	// Stats returns a copy of the backend's counters.
	Stats() Stats
	// Close releases the backend's resources. Append durability is
	// governed by the fsync policy, not by Close.
	Close() error
}

// Fsync is the disk backend's durability policy knob.
type Fsync int

const (
	// FsyncAlways fsyncs the WAL after every append: survives power
	// loss at one syscall per record (the default).
	FsyncAlways Fsync = iota
	// FsyncSnapshot fsyncs only when a snapshot is saved (and on
	// close). Appends still reach the kernel immediately — a crashed
	// *process* loses nothing — but a crashed *machine* may lose the
	// records since the last snapshot.
	FsyncSnapshot
)

// String returns the flag spelling of the policy.
func (f Fsync) String() string {
	if f == FsyncSnapshot {
		return "snapshot"
	}
	return "always"
}

// ParseFsync parses the flag spelling of a policy.
func ParseFsync(s string) (Fsync, bool) {
	switch s {
	case "", "always":
		return FsyncAlways, true
	case "snapshot":
		return FsyncSnapshot, true
	}
	return FsyncAlways, false
}

// Stats is a snapshot of a backend's counters, served by the
// GET /v1/storage admin routes.
type Stats struct {
	// Kind mirrors Backend.Kind.
	Kind string
	// WALRecords and WALBytes describe the live log tail (the records
	// appended after the newest snapshot).
	WALRecords uint64
	WALBytes   uint64
	// Appended counts every record appended since open (snapshots do
	// not reset it; record indices are drawn from it).
	Appended uint64
	// Snapshots counts snapshots saved since open.
	Snapshots uint64
	// SnapshotIndex is the record index the newest snapshot covers
	// (0 = no snapshot).
	SnapshotIndex uint64
	// SnapshotBytes is the newest snapshot's payload size.
	SnapshotBytes uint64
	// LastSnapshot is when the newest snapshot was saved (zero when
	// none, or when the snapshot predates this process).
	LastSnapshot time.Time
	// Recovery describes what Recover found at open.
	Recovery RecoveryStats
	// Failed reports that a storage operation failed and the backend
	// latched read-only; LastError carries the fault.
	Failed    bool
	LastError string
}

// RecoveryStats describes one Recover pass.
type RecoveryStats struct {
	// Recovered reports that Recover ran and found anything at all
	// (snapshot or records) to replay.
	Recovered bool
	// SnapshotLoaded reports a snapshot was read back.
	SnapshotLoaded bool
	// SnapshotBytes is the loaded snapshot's payload size.
	SnapshotBytes uint64
	// TailRecords counts WAL records replayed after the snapshot.
	TailRecords int
	// SkippedRecords counts WAL records dropped because the snapshot
	// already covered them (a crash between snapshot save and log
	// truncation leaves such records behind; indices disambiguate).
	SkippedRecords int
	// TruncatedBytes counts torn- or corrupt-tail bytes cut from the
	// end of the WAL.
	TruncatedBytes int64
}
