package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestSelfAlwaysTrusted(t *testing.T) {
	d := New(1, DefaultOptions(8))
	if !d.Trusted().Contains(1) {
		t.Fatal("self not trusted")
	}
}

func TestHeartbeatResetsAndIncrements(t *testing.T) {
	d := New(1, DefaultOptions(8))
	d.Heartbeat(2)
	d.Heartbeat(3)
	c2, _ := d.Count(2)
	c3, _ := d.Count(3)
	if c2 != 1 || c3 != 0 {
		t.Fatalf("counts: p2=%d p3=%d, want 1,0", c2, c3)
	}
	d.Heartbeat(2)
	c2, _ = d.Count(2)
	c3, _ = d.Count(3)
	if c2 != 0 || c3 != 1 {
		t.Fatalf("counts after: p2=%d p3=%d, want 0,1", c2, c3)
	}
}

func TestSelfHeartbeatIgnored(t *testing.T) {
	d := New(1, DefaultOptions(8))
	d.Heartbeat(1)
	if _, known := d.Count(1); known {
		t.Fatal("self heartbeat recorded")
	}
}

// simulateRounds performs `rounds` of round-robin heartbeats from alive
// peers.
func simulateRounds(d *Detector, alive []ids.ID, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, p := range alive {
			d.Heartbeat(p)
		}
	}
}

func TestCrashedSuspectedAliveTrusted(t *testing.T) {
	d := New(1, DefaultOptions(10))
	everyone := []ids.ID{2, 3, 4, 5, 6}
	simulateRounds(d, everyone, 20)
	if got := d.Trusted(); !got.Equal(ids.Range(1, 6)) {
		t.Fatalf("all alive should be trusted, got %v", got)
	}
	// p6 crashes: only 2..5 keep beating.
	simulateRounds(d, []ids.ID{2, 3, 4, 5}, 100)
	trusted := d.Trusted()
	if trusted.Contains(6) {
		t.Fatalf("crashed p6 still trusted: %v", trusted)
	}
	if !ids.Range(1, 5).Subset(trusted) {
		t.Fatalf("alive processors suspected: %v", trusted)
	}
	if !d.Suspected().Contains(6) {
		t.Fatalf("Suspected() = %v", d.Suspected())
	}
}

func TestEstimateTracksActives(t *testing.T) {
	d := New(1, DefaultOptions(10))
	simulateRounds(d, []ids.ID{2, 3, 4}, 30)
	if got := d.Estimate(); got != 4 {
		t.Fatalf("Estimate = %d, want 4 (self + 3 peers)", got)
	}
}

func TestNBoundCapsTrusted(t *testing.T) {
	opts := DefaultOptions(3) // N = 3
	d := New(1, opts)
	simulateRounds(d, []ids.ID{2, 3, 4, 5, 6, 7}, 20)
	if got := d.Trusted().Size(); got > 3 {
		t.Fatalf("trusted %d > N=3", got)
	}
}

func TestBootstrapTrustsImmediately(t *testing.T) {
	d := New(1, DefaultOptions(8))
	d.Bootstrap(ids.NewSet(2, 3, 4))
	if !d.Trusted().Equal(ids.NewSet(1, 2, 3, 4)) {
		t.Fatalf("Trusted = %v after bootstrap", d.Trusted())
	}
	// Bootstrapped peers that never beat are eventually suspected.
	simulateRounds(d, []ids.ID{2, 3}, 200)
	if d.Trusted().Contains(4) {
		t.Fatalf("silent bootstrapped peer still trusted: %v", d.Trusted())
	}
}

func TestForget(t *testing.T) {
	d := New(1, DefaultOptions(8))
	d.Heartbeat(2)
	d.Forget(2)
	if _, known := d.Count(2); known {
		t.Fatal("Forget did not remove entry")
	}
}

func TestCorruptCountsRecovers(t *testing.T) {
	d := New(1, DefaultOptions(8))
	alive := []ids.ID{2, 3, 4}
	simulateRounds(d, alive, 10)
	// Transient fault: all counts arbitrary.
	rng := rand.New(rand.NewSource(1))
	d.CorruptCounts(func(ids.ID) uint64 { return uint64(rng.Int63n(1 << 19)) })
	// Fresh heartbeats must re-establish trust in the alive set.
	simulateRounds(d, alive, 200)
	if !ids.NewSet(1, 2, 3, 4).Subset(d.Trusted()) {
		t.Fatalf("did not recover from corrupted counts: %v", d.Trusted())
	}
}

func TestQuickEventualSuspicion(t *testing.T) {
	// Property: from any corrupted state, if a subset keeps beating and
	// the rest stay silent, the silent ones are eventually suspected and
	// the beating ones trusted.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(1, DefaultOptions(12))
		var alive, dead []ids.ID
		for p := ids.ID(2); p <= 9; p++ {
			if rng.Intn(2) == 0 {
				alive = append(alive, p)
			} else {
				dead = append(dead, p)
			}
			d.Heartbeat(p) // make the entry known
		}
		d.CorruptCounts(func(ids.ID) uint64 { return uint64(rng.Int63n(1000)) })
		if len(alive) == 0 {
			return true
		}
		simulateRounds(d, alive, 400)
		trusted := d.Trusted()
		for _, p := range alive {
			if !trusted.Contains(p) {
				return false
			}
		}
		for _, p := range dead {
			if trusted.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCountBoundsStorage(t *testing.T) {
	opts := DefaultOptions(4)
	opts.MaxCount = 100
	d := New(1, opts)
	d.Heartbeat(2)
	d.Heartbeat(3)
	for i := 0; i < 1000; i++ {
		d.Heartbeat(3)
	}
	if c, _ := d.Count(2); c > 100 {
		t.Fatalf("count %d exceeds MaxCount", c)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(1, Options{})
	if d.opts.N <= 0 || d.opts.GapFactor < 2 || d.opts.GapFloor == 0 || d.opts.MaxCount == 0 {
		t.Fatalf("defaults not applied: %+v", d.opts)
	}
}
