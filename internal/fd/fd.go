// Package fd implements the paper's (N,Θ)-failure detector (Section 2).
//
// Each processor maintains an ordered heartbeat-count vector nonCrashed
// with an entry per processor that exchanges the data-link token with it:
// whenever the token returns from pj, pj's count is set to zero and every
// other count is incremented. Active processors therefore keep each other's
// counts small, while a crashed processor's count grows without bound,
// eventually forming a "significant ever-expanding gap" in the sorted
// vector. The last processor before the gap is the ni-th, which also yields
// the estimate of the number of active processors; at most N entries are
// ever trusted.
//
// The detector is unreliable by design. The reconfiguration scheme only
// assumes *temporal* reliability while safety is being re-established, and
// the tests exercise both reliable and unreliable regimes.
package fd

import (
	"sort"

	"repro/internal/ids"
)

// Options tunes the gap detection.
type Options struct {
	// N is the global bound on live-and-connected processors; entries
	// ranked below the N-th are never trusted.
	N int
	// GapFactor is the multiplicative jump that identifies the gap: the
	// first sorted count exceeding GapFactor*max(previous, GapFloor)
	// starts the suspected suffix.
	GapFactor int
	// GapFloor keeps small absolute fluctuations from opening a false
	// gap when counts are tiny.
	GapFloor uint64
	// MaxCount caps stored counts, bounding local storage as
	// self-stabilization requires.
	MaxCount uint64
}

// DefaultOptions provides thresholds that match the data-link token rate
// produced by datalink+netsim defaults.
func DefaultOptions(n int) Options {
	return Options{N: n, GapFactor: 4, GapFloor: 16, MaxCount: 1 << 20}
}

// Detector is the per-processor failure detector. It is a pure state
// machine: feed Heartbeat from the data link, read Trusted.
type Detector struct {
	self   ids.ID
	opts   Options
	counts map[ids.ID]uint64
}

// New constructs a detector for processor self.
func New(self ids.ID, opts Options) *Detector {
	if opts.N <= 0 {
		opts.N = 64
	}
	if opts.GapFactor < 2 {
		opts.GapFactor = 2
	}
	if opts.GapFloor == 0 {
		opts.GapFloor = 16
	}
	if opts.MaxCount == 0 {
		opts.MaxCount = 1 << 20
	}
	return &Detector{self: self, opts: opts, counts: make(map[ids.ID]uint64)}
}

// Bootstrap seeds the detector with zero counts for the given peers, so
// that they start out trusted. The paper's model has no cold boot — its
// detectors are assumed to already be exchanging heartbeats ("temporal
// access to reliable failure detectors"); without seeding, the warm-up
// window (trusted = {self}) transiently violates the majority-supportive
// core assumption and provokes spurious reconfigurations.
func (d *Detector) Bootstrap(peers ids.Set) {
	peers.Each(func(p ids.ID) {
		if p != d.self && p.Valid() {
			d.counts[p] = 0
		}
	})
}

// Heartbeat records a returned token from peer: peer's count resets to
// zero and every other known count increments.
func (d *Detector) Heartbeat(peer ids.ID) {
	if !peer.Valid() || peer == d.self {
		return
	}
	for id, c := range d.counts {
		if id != peer && c < d.opts.MaxCount {
			d.counts[id] = c + 1
		}
	}
	d.counts[peer] = 0
}

// Forget drops a peer's entry entirely (e.g., when the processor left).
func (d *Detector) Forget(peer ids.ID) { delete(d.counts, peer) }

// Count returns the current heartbeat count for peer and whether the peer
// is known at all.
func (d *Detector) Count(peer ids.ID) (uint64, bool) {
	c, ok := d.counts[peer]
	return c, ok
}

// CorruptCounts overwrites all counts with the supplied function's values —
// the transient-fault hook for stabilization tests. Identifier order keeps
// rng-based value generators deterministic.
func (d *Detector) CorruptCounts(next func(ids.ID) uint64) {
	order := make([]ids.ID, 0, len(d.counts))
	for id := range d.counts {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		d.counts[id] = next(id) % d.opts.MaxCount
	}
}

type rankedEntry struct {
	id    ids.ID
	count uint64
}

// ranked returns known peers sorted by ascending count (ties by id for
// determinism).
func (d *Detector) ranked() []rankedEntry {
	out := make([]rankedEntry, 0, len(d.counts))
	for id, c := range d.counts {
		out = append(out, rankedEntry{id, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count < out[j].count
		}
		return out[i].id < out[j].id
	})
	return out
}

// Trusted returns the set of processors currently trusted (crashed
// processors are eventually suspected, i.e. excluded). The processor always
// trusts itself. The result is capped at N entries.
func (d *Detector) Trusted() ids.Set {
	trusted := ids.NewSet(d.self)
	ranked := d.ranked()
	prev := d.opts.GapFloor
	for i, e := range ranked {
		if trusted.Size() >= d.opts.N {
			break
		}
		bound := prev
		if bound < d.opts.GapFloor {
			bound = d.opts.GapFloor
		}
		if e.count > bound*uint64(d.opts.GapFactor) {
			break // the significant gap: everything from here is suspected
		}
		trusted = trusted.Add(e.id)
		prev = e.count
		_ = i
	}
	return trusted
}

// Estimate returns ni, the detector's estimate of the number of active
// processors (the rank of the last processor before the gap).
func (d *Detector) Estimate() int { return d.Trusted().Size() }

// Suspected returns known peers that are not trusted.
func (d *Detector) Suspected() ids.Set {
	t := d.Trusted()
	out := ids.Set{}
	for id := range d.counts {
		if !t.Contains(id) {
			out = out.Add(id)
		}
	}
	return out
}
