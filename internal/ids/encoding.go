package ids

import (
	"encoding/binary"
	"fmt"
)

// Set has no exported fields (its member slice is immutable by contract),
// so the transport wire codec serializes it through the standard binary
// marshaling interfaces: a uvarint member count followed by varint deltas
// between consecutive members. Delta coding keeps dense identifier ranges
// — the common case for configurations — to about one byte per member.

// MarshalBinary implements encoding.BinaryMarshaler.
func (s Set) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 1+2*len(s.members))
	buf = binary.AppendUvarint(buf, uint64(len(s.members)))
	prev := ID(0)
	for _, m := range s.members {
		buf = binary.AppendUvarint(buf, uint64(m-prev))
		prev = m
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The wire may
// carry adversarial bytes (the transport backends inject faults), so the
// decoder validates strict ascension and bounds instead of trusting the
// producer; any violation yields an error, never a malformed Set.
func (s *Set) UnmarshalBinary(data []byte) error {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("ids: truncated set header")
	}
	data = data[k:]
	const maxMembers = 1 << 20 // sanity bound against corrupted counts
	if n > maxMembers {
		return fmt.Errorf("ids: set size %d exceeds bound", n)
	}
	members := make([]ID, 0, n)
	prev := ID(0)
	for i := uint64(0); i < n; i++ {
		d, k := binary.Uvarint(data)
		if k <= 0 {
			return fmt.Errorf("ids: truncated set member %d", i)
		}
		data = data[k:]
		id := prev + ID(d)
		if id <= prev || !id.Valid() {
			return fmt.Errorf("ids: non-ascending or invalid member %v", id)
		}
		members = append(members, id)
		prev = id
	}
	if len(data) != 0 {
		return fmt.Errorf("ids: %d trailing bytes after set", len(data))
	}
	s.members = members
	return nil
}
