package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDValidity(t *testing.T) {
	tests := []struct {
		id   ID
		want bool
	}{
		{None, false},
		{-1, false},
		{1, true},
		{42, true},
	}
	for _, tt := range tests {
		if got := tt.id.Valid(); got != tt.want {
			t.Errorf("(%d).Valid() = %v, want %v", tt.id, got, tt.want)
		}
	}
}

func TestIDString(t *testing.T) {
	if got := ID(7).String(); got != "p7" {
		t.Errorf("String() = %q, want p7", got)
	}
	if got := None.String(); got != "p?" {
		t.Errorf("None.String() = %q, want p?", got)
	}
}

func TestNewSetDedupSort(t *testing.T) {
	s := NewSet(3, 1, 2, 3, 1, 0, -5)
	want := []ID{1, 2, 3}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
}

func TestRange(t *testing.T) {
	if s := Range(2, 4); s.Size() != 3 || !s.Contains(2) || !s.Contains(3) || !s.Contains(4) {
		t.Errorf("Range(2,4) = %v", s)
	}
	if s := Range(4, 2); !s.Empty() {
		t.Errorf("Range(4,2) = %v, want empty", s)
	}
}

func TestSetOperations(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4, 5)

	if got := a.Union(b); !got.Equal(NewSet(1, 2, 3, 4, 5)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(NewSet(1, 2)) {
		t.Errorf("Diff = %v", got)
	}
	if got := a.Add(9); !got.Equal(NewSet(1, 2, 3, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Remove(2); !got.Equal(NewSet(1, 3)) {
		t.Errorf("Remove = %v", got)
	}
	if got := a.Remove(99); !got.Equal(a) {
		t.Errorf("Remove(absent) = %v", got)
	}
	if got := a.Filter(func(id ID) bool { return id%2 == 1 }); !got.Equal(NewSet(1, 3)) {
		t.Errorf("Filter = %v", got)
	}
}

func TestSetImmutability(t *testing.T) {
	a := NewSet(1, 2, 3)
	_ = a.Add(4)
	_ = a.Remove(1)
	_ = a.Union(NewSet(9))
	if !a.Equal(NewSet(1, 2, 3)) {
		t.Fatalf("operations mutated receiver: %v", a)
	}
	m := a.Members()
	m[0] = 99
	if !a.Equal(NewSet(1, 2, 3)) {
		t.Fatalf("Members() aliases internal slice")
	}
}

func TestSubset(t *testing.T) {
	if !NewSet(1, 2).Subset(NewSet(1, 2, 3)) {
		t.Error("subset not detected")
	}
	if NewSet(1, 4).Subset(NewSet(1, 2, 3)) {
		t.Error("non-subset reported as subset")
	}
	if !NewSet().Subset(NewSet(1)) {
		t.Error("empty set must be subset of everything")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Set
		want int
	}{
		{NewSet(1, 2), NewSet(1, 2), 0},
		{NewSet(1, 2), NewSet(1, 3), -1},
		{NewSet(1, 3), NewSet(1, 2), 1},
		{NewSet(1), NewSet(1, 2), -1},
		{NewSet(1, 2), NewSet(1), 1},
		{NewSet(), NewSet(), 0},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMajoritySize(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {6, 4},
	}
	for _, tt := range tests {
		s := Range(1, ID(tt.n))
		if got := s.MajoritySize(); got != tt.want {
			t.Errorf("|s|=%d: MajoritySize=%d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := NewSet(2, 1).String(); got != "{p1,p2}" {
		t.Errorf("String() = %q", got)
	}
	if got := NewSet().String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

func randomSet(rng *rand.Rand) Set {
	n := rng.Intn(8)
	members := make([]ID, 0, n)
	for i := 0; i < n; i++ {
		members = append(members, ID(rng.Intn(10)+1))
	}
	return NewSet(members...)
}

func TestQuickSetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	// Union is commutative; intersection distributes; diff removes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng), randomSet(rng)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Diff(b).Intersect(b).Empty() {
			return false
		}
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// Compare is a total order: antisymmetric and reflexive.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Compare(a) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMajorityIntersection(t *testing.T) {
	// Any two majorities of the same set intersect — the quorum property
	// the whole reconfiguration scheme relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := Range(1, ID(rng.Intn(9)+1))
		pickMajority := func() Set {
			m := NewSet()
			for _, id := range base.Members() {
				if rng.Intn(2) == 0 {
					m = m.Add(id)
				}
			}
			for m.Size() < base.MajoritySize() {
				m = m.Add(base.Members()[rng.Intn(base.Size())])
			}
			return m
		}
		q1, q2 := pickMajority(), pickMajority()
		return !q1.Intersect(q2).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
