package ids

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestSetBinaryRoundTrip(t *testing.T) {
	cases := []Set{
		{},
		NewSet(1),
		NewSet(1, 2, 3, 4, 5),
		NewSet(7, 1000, 3, 99999),
		Range(1, 64),
	}
	for _, in := range cases {
		data, err := in.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", in, err)
		}
		var out Set
		if err := out.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", in, err)
		}
		if !in.Equal(out) {
			t.Fatalf("round trip %v -> %v", in, out)
		}
	}
}

func TestSetUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"truncated":     {5, 1, 1},
		"zero delta":    {2, 1, 0},
		"huge count":    {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"trailing junk": {1, 1, 9, 9},
	}
	for name, data := range cases {
		var s Set
		if err := s.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: garbage accepted as %v", name, s)
		}
	}
}

// TestSetGobRoundTrip exercises the path the TCP wire codec uses: gob
// picks up the BinaryMarshaler implementation, including for sets nested
// inside structs.
func TestSetGobRoundTrip(t *testing.T) {
	type carrier struct {
		A Set
		B Set
	}
	in := carrier{A: NewSet(2, 4, 6), B: Set{}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out carrier
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !in.A.Equal(out.A) || !in.B.Equal(out.B) {
		t.Fatalf("gob round trip: %v != %v", in, out)
	}
}
