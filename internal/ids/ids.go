// Package ids provides processor identifiers and ordered identifier sets.
//
// The paper (Section 2) assumes each processor has a unique identifier drawn
// from a totally-ordered set P, with at most N live-and-connected processors
// at any time. Sets of identifiers are used pervasively: quorum
// configurations, failure-detector trusted sets, participant sets and
// configuration-replacement proposals. This package represents such a set as
// an immutable sorted slice so that set values can be compared, hashed into
// map keys, and ordered lexicographically (the paper orders proposal sets
// "as ordered tuples that list processors in ascending order").
package ids

import (
	"sort"
	"strconv"
	"strings"
)

// ID is a processor identifier. Identifiers are totally ordered; the zero
// value is not a valid identifier (valid identifiers are >= 1, following the
// "start enums at one" convention so that an uninitialized ID is detectably
// invalid).
type ID int

// None is the invalid zero identifier.
const None ID = 0

// Valid reports whether the identifier is a usable processor identifier.
func (id ID) Valid() bool { return id > 0 }

// String renders the identifier as "p<i>", matching the paper's notation.
func (id ID) String() string {
	if id == None {
		return "p?"
	}
	return "p" + strconv.Itoa(int(id))
}

// Set is an immutable ordered set of processor identifiers, stored as a
// strictly increasing slice. The zero value is the empty set. Callers must
// not mutate a Set after construction; all methods return new sets.
type Set struct {
	members []ID
}

// NewSet builds a set from the given identifiers, discarding duplicates and
// invalid identifiers.
func NewSet(members ...ID) Set {
	if len(members) == 0 {
		return Set{}
	}
	out := make([]ID, 0, len(members))
	for _, id := range members {
		if id.Valid() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	var prev ID
	for _, id := range out {
		if id != prev {
			dedup = append(dedup, id)
			prev = id
		}
	}
	return Set{members: dedup}
}

// Range builds the set {lo, lo+1, ..., hi}. It returns the empty set when
// hi < lo.
func Range(lo, hi ID) Set {
	if hi < lo {
		return Set{}
	}
	out := make([]ID, 0, int(hi-lo)+1)
	for id := lo; id <= hi; id++ {
		if id.Valid() {
			out = append(out, id)
		}
	}
	return Set{members: out}
}

// Size returns the number of members.
func (s Set) Size() int { return len(s.members) }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return len(s.members) == 0 }

// Contains reports membership of id.
func (s Set) Contains(id ID) bool {
	i := sort.Search(len(s.members), func(i int) bool { return s.members[i] >= id })
	return i < len(s.members) && s.members[i] == id
}

// Members returns a fresh copy of the ordered member slice.
func (s Set) Members() []ID {
	out := make([]ID, len(s.members))
	copy(out, s.members)
	return out
}

// Each calls fn for every member in ascending order.
func (s Set) Each(fn func(ID)) {
	for _, id := range s.members {
		fn(id)
	}
}

// Add returns s ∪ {id}.
func (s Set) Add(id ID) Set {
	if !id.Valid() || s.Contains(id) {
		return s
	}
	out := make([]ID, 0, len(s.members)+1)
	out = append(out, s.members...)
	out = append(out, id)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return Set{members: out}
}

// Remove returns s \ {id}.
func (s Set) Remove(id ID) Set {
	if !s.Contains(id) {
		return s
	}
	out := make([]ID, 0, len(s.members)-1)
	for _, m := range s.members {
		if m != id {
			out = append(out, m)
		}
	}
	return Set{members: out}
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := make([]ID, 0, len(s.members)+len(t.members))
	i, j := 0, 0
	for i < len(s.members) && j < len(t.members) {
		switch {
		case s.members[i] < t.members[j]:
			out = append(out, s.members[i])
			i++
		case s.members[i] > t.members[j]:
			out = append(out, t.members[j])
			j++
		default:
			out = append(out, s.members[i])
			i++
			j++
		}
	}
	out = append(out, s.members[i:]...)
	out = append(out, t.members[j:]...)
	return Set{members: out}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	out := make([]ID, 0, min(len(s.members), len(t.members)))
	i, j := 0, 0
	for i < len(s.members) && j < len(t.members) {
		switch {
		case s.members[i] < t.members[j]:
			i++
		case s.members[i] > t.members[j]:
			j++
		default:
			out = append(out, s.members[i])
			i++
			j++
		}
	}
	return Set{members: out}
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	out := make([]ID, 0, len(s.members))
	for _, m := range s.members {
		if !t.Contains(m) {
			out = append(out, m)
		}
	}
	return Set{members: out}
}

// Filter returns the subset of members satisfying keep.
func (s Set) Filter(keep func(ID) bool) Set {
	out := make([]ID, 0, len(s.members))
	for _, m := range s.members {
		if keep(m) {
			out = append(out, m)
		}
	}
	return Set{members: out}
}

// Equal reports whether s and t have identical membership.
func (s Set) Equal(t Set) bool {
	if len(s.members) != len(t.members) {
		return false
	}
	for i, m := range s.members {
		if t.members[i] != m {
			return false
		}
	}
	return true
}

// Subset reports whether every member of s is in t.
func (s Set) Subset(t Set) bool {
	for _, m := range s.members {
		if !t.Contains(m) {
			return false
		}
	}
	return true
}

// Compare orders sets lexicographically as ascending tuples, the ordering
// the paper uses to break ties between configuration proposals
// ("considering sets of processors as ordered tuples ... in ascending
// order"). It returns -1, 0, or +1.
func (s Set) Compare(t Set) int {
	for i := 0; i < len(s.members) && i < len(t.members); i++ {
		if s.members[i] != t.members[i] {
			if s.members[i] < t.members[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s.members) < len(t.members):
		return -1
	case len(s.members) > len(t.members):
		return 1
	default:
		return 0
	}
}

// MajoritySize returns the minimum number of members that constitutes a
// strict majority of s, i.e. ⌊|s|/2⌋+1. The paper's quorum system is
// majorities (Section 1, "we use majorities ... the simplest form of a
// quorum system").
func (s Set) MajoritySize() int { return len(s.members)/2 + 1 }

// Key returns a canonical string usable as a map key for this membership.
func (s Set) Key() string { return s.String() }

// String renders the set as "{p1,p2,...}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, m := range s.members {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(m.String())
	}
	b.WriteByte('}')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
