// Package counter implements the paper's practically-infinite
// self-stabilizing counter (Section 4.2, Algorithms 4.3–4.5). A counter is
// a triple ⟨lbl, seqn, wid⟩: a bounded epoch label from the labeling scheme
// (Section 4.1), a bounded sequence number, and the identifier of the
// processor that wrote the sequence number. Counters order by label first,
// then seqn, then wid — a total order once the labels agree, which lets
// concurrent incrementers produce distinct, monotonically increasing
// values. When a transient fault drives seqn to its maximum, the epoch
// label is canceled and a fresh, strictly larger label restarts seqn — so
// the counter survives what would wrap an ordinary 64-bit integer.
//
// Configuration members maintain the maximal counter (Algorithm 4.3 gossip
// + Algorithm 4.4 member increments); any participant can increment through
// a majority read followed by a majority write (Algorithm 4.5), aborting
// cleanly while a reconfiguration is in progress.
package counter

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/label"
)

// Counter is the triple ⟨lbl, seqn, wid⟩.
type Counter struct {
	Lbl  label.Label
	Seqn uint64
	WID  ids.ID
}

// Less implements the paper's ≺ct order: by label (≺lb), then sequence
// number, then writer identifier. When the labels are incomparable, the
// counters are incomparable and Less is false both ways.
func (c Counter) Less(o Counter) bool {
	if !c.Lbl.Equal(o.Lbl) {
		return c.Lbl.Less(o.Lbl)
	}
	if c.Seqn != o.Seqn {
		return c.Seqn < o.Seqn
	}
	return c.WID < o.WID
}

// Equal compares counters structurally.
func (c Counter) Equal(o Counter) bool {
	return c.Lbl.Equal(o.Lbl) && c.Seqn == o.Seqn && c.WID == o.WID
}

func (c Counter) String() string {
	return fmt.Sprintf("⟨%v|%d|%v⟩", c.Lbl, c.Seqn, c.WID)
}

// Pair is the exchanged unit ⟨mct, cct⟩; a nil Cancel means legit.
type Pair struct {
	MCT    Counter
	Cancel *Counter
}

// Legit reports the pair is not canceled.
func (p Pair) Legit() bool { return p.Cancel == nil }

func (p Pair) String() string {
	if p.Cancel == nil {
		return fmt.Sprintf("(%v,⊥)", p.MCT)
	}
	return fmt.Sprintf("(%v,%v)", p.MCT, *p.Cancel)
}

// Store is the member-side counter bookkeeping of Algorithm 4.3: the label
// machinery of Algorithm 4.2 for epoch selection plus the highest sequence
// number seen per epoch label.
type Store struct {
	self      ids.ID
	labels    *label.Store
	exhaustAt uint64
	seqns     map[string]seqEntry // label key → highest (seqn, wid)
}

type seqEntry struct {
	seqn uint64
	wid  ids.ID
}

// NewStore builds the counter store for a configuration. exhaustAt is the
// paper's 2^b bound (b=64 conceptually; tests use small values to exercise
// epoch changes).
func NewStore(self ids.ID, members ids.Set, opts label.StoreOptions, exhaustAt uint64) *Store {
	if exhaustAt == 0 {
		exhaustAt = 1 << 60
	}
	return &Store{
		self:      self,
		labels:    label.NewStore(self, members, opts),
		exhaustAt: exhaustAt,
		seqns:     make(map[string]seqEntry),
	}
}

// Labels exposes the underlying label store.
func (s *Store) Labels() *label.Store { return s.labels }

// Rebuild adapts the structures to a new configuration; sequence numbers of
// dropped epochs are forgotten along with their labels.
func (s *Store) Rebuild(members ids.Set) {
	s.labels.Rebuild(members)
	s.prune()
}

// prune drops seqn entries for labels by non-members and bounds the map.
func (s *Store) prune() {
	for k := range s.seqns {
		if !s.labelKnownMember(k) {
			delete(s.seqns, k)
		}
	}
	for k := range s.seqns {
		if len(s.seqns) <= 4096 {
			break
		}
		delete(s.seqns, k)
	}
}

func (s *Store) labelKnownMember(key string) bool {
	// Key embeds the creator prefix "⟨pN;..."; cheap containment check by
	// re-deriving keys of member maxima is costlier than useful — keep
	// entries whose creator appears in the member set.
	ok := false
	s.labels.Members().Each(func(m ids.ID) {
		prefix := fmt.Sprintf("⟨%v;", m)
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			ok = true
		}
	})
	return ok
}

// Exhausted reports whether a counter's sequence number reached the bound
// (the paper's exhausted(ctp)).
func (s *Store) Exhausted(c Counter) bool { return c.Seqn >= s.exhaustAt }

// Observe folds a counter into the store: its label joins the label
// machinery and its sequence number updates the epoch's high-water mark.
// Exhausted counters cancel their epoch label.
func (s *Store) Observe(from ids.ID, c Counter) {
	key := c.Lbl.String()
	if e, ok := s.seqns[key]; !ok || e.seqn < c.Seqn || (e.seqn == c.Seqn && e.wid < c.WID) {
		s.seqns[key] = seqEntry{seqn: c.Seqn, wid: c.WID}
	}
	if p, ok := s.labels.CleanPair(label.Pair{ML: c.Lbl}); ok {
		s.labels.Receive(p, true, label.Pair{}, false, from)
	}
	if s.Exhausted(c) {
		s.cancelLabel(c.Lbl)
	}
}

// ObservePair folds a gossiped counter pair in, honoring cancellations.
func (s *Store) ObservePair(from ids.ID, p Pair) {
	if p.Cancel != nil {
		s.cancelLabel(p.MCT.Lbl)
		return
	}
	s.Observe(from, p.MCT)
}

// cancelLabel retires an epoch label (cancelExhausted: the pair is canceled
// by its own label, which is never below itself).
func (s *Store) cancelLabel(l label.Label) {
	if p, ok := s.labels.CleanPair(label.Pair{ML: l, Cancel: &l}); ok {
		s.labels.Receive(p, true, label.Pair{}, false, s.self)
	}
}

// MaxCounter is Algorithm 4.4's findMaxCounter: derive the maximal
// non-exhausted counter, canceling exhausted epochs until a usable label
// emerges (a fresh label is created when all known ones are spent).
func (s *Store) MaxCounter() (Counter, bool) {
	for tries := 0; tries < 1024; tries++ {
		p, ok := s.labels.LocalMax()
		if !ok {
			return Counter{}, false
		}
		if !p.Legit() {
			s.cancelLabel(p.ML)
			continue
		}
		c := Counter{Lbl: p.ML}
		if e, ok := s.seqns[p.ML.String()]; ok {
			c.Seqn, c.WID = e.seqn, e.wid
		}
		if s.Exhausted(c) {
			s.cancelLabel(p.ML)
			continue
		}
		return c, true
	}
	return Counter{}, false
}

// MaxPair returns the current maximal counter as a gossip pair.
func (s *Store) MaxPair() (Pair, bool) {
	c, ok := s.MaxCounter()
	if !ok {
		return Pair{}, false
	}
	return Pair{MCT: c}, true
}
