package counter

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/label"
)

func mkCounter(creator ids.ID, sting int, seqn uint64, wid ids.ID) Counter {
	return Counter{Lbl: label.Label{Creator: creator, Sting: sting}, Seqn: seqn, WID: wid}
}

func TestCounterOrder(t *testing.T) {
	a := mkCounter(1, 0, 5, 1)
	b := mkCounter(1, 0, 5, 2)
	c := mkCounter(1, 0, 6, 1)
	d := mkCounter(2, 0, 0, 1) // larger creator → larger label
	tests := []struct {
		x, y Counter
		want bool
	}{
		{a, b, true}, // wid breaks ties
		{b, a, false},
		{a, c, true},  // seqn dominates wid
		{c, d, true},  // label dominates seqn
		{a, a, false}, // irreflexive
	}
	for _, tt := range tests {
		if got := tt.x.Less(tt.y); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestQuickCounterOrderTotalWithinLabel(t *testing.T) {
	f := func(s1, s2 uint64, w1, w2 uint8) bool {
		a := mkCounter(1, 0, s1%1000, ids.ID(w1%8+1))
		b := mkCounter(1, 0, s2%1000, ids.ID(w2%8+1))
		// Exactly one of <, >, = holds.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreObserveTracksMax(t *testing.T) {
	members := ids.Range(1, 3)
	s := NewStore(1, members, label.DefaultStoreOptions(3, 4), 1<<20)
	c0, ok := s.MaxCounter()
	if !ok || c0.Seqn != 0 {
		t.Fatalf("initial counter = %v %v", c0, ok)
	}
	s.Observe(2, Counter{Lbl: c0.Lbl, Seqn: 7, WID: 2})
	c1, ok := s.MaxCounter()
	if !ok || c1.Seqn != 7 || c1.WID != 2 {
		t.Fatalf("after observe: %v", c1)
	}
}

func TestExhaustionTurnsEpoch(t *testing.T) {
	members := ids.Range(1, 2)
	s := NewStore(1, members, label.DefaultStoreOptions(2, 4), 10)
	c0, _ := s.MaxCounter()
	s.Observe(1, Counter{Lbl: c0.Lbl, Seqn: 10, WID: 1}) // exhausted
	c1, ok := s.MaxCounter()
	if !ok {
		t.Fatal("no counter after exhaustion")
	}
	if c1.Lbl.Equal(c0.Lbl) {
		t.Fatalf("epoch label did not change: %v", c1)
	}
	if !c0.Lbl.Less(c1.Lbl) {
		t.Fatalf("new epoch %v not above old %v", c1.Lbl, c0.Lbl)
	}
	if c1.Seqn >= 10 {
		t.Fatalf("fresh epoch seqn = %d", c1.Seqn)
	}
}

func TestObservePairCancellation(t *testing.T) {
	members := ids.Range(1, 2)
	s := NewStore(1, members, label.DefaultStoreOptions(2, 4), 1<<20)
	c0, _ := s.MaxCounter()
	cc := c0
	s.ObservePair(2, Pair{MCT: c0, Cancel: &cc})
	c1, ok := s.MaxCounter()
	if !ok || c1.Lbl.Equal(c0.Lbl) {
		t.Fatalf("canceled epoch still in use: %v", c1)
	}
}

// --- cluster-level tests ---

type managers map[ids.ID]*Manager

func counterCluster(t *testing.T, n int, seed int64, exhaustAt uint64) (*core.Cluster, managers) {
	t.Helper()
	ms := managers{}
	opts := core.DefaultClusterOptions(seed)
	opts.AppFactory = func(self ids.ID) core.App {
		m := NewManager(self)
		m.ExhaustAt = exhaustAt
		ms[self] = m
		return m
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(800) // settle configuration and labels
	return c, ms
}

func runOp(t *testing.T, c *core.Cluster, op *Op) (Counter, error) {
	t.Helper()
	if !c.Sched.RunWhile(func() bool { return !op.Done() }, 3_000_000) {
		t.Fatal("operation never completed")
	}
	return op.Result()
}

func TestIncrementMonotonic(t *testing.T) {
	c, ms := counterCluster(t, 4, 21, 0)
	var prev Counter
	for i := 0; i < 6; i++ {
		who := ids.ID(i%4 + 1)
		op := ms[who].Increment(c.Node(who))
		got, err := runOp(t, c, op)
		if err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
		if i > 0 && !prev.Less(got) {
			t.Fatalf("not monotonic: %v then %v", prev, got)
		}
		prev = got
	}
}

func TestConcurrentIncrementsDistinct(t *testing.T) {
	c, ms := counterCluster(t, 4, 22, 0)
	ops := make([]*Op, 0, 4)
	for id := ids.ID(1); id <= 4; id++ {
		ops = append(ops, ms[id].Increment(c.Node(id)))
	}
	results := make([]Counter, 0, 4)
	for _, op := range ops {
		got, err := runOp(t, c, op)
		if err != nil {
			t.Fatalf("concurrent increment: %v", err)
		}
		results = append(results, got)
	}
	for i := range results {
		for j := i + 1; j < len(results); j++ {
			if results[i].Equal(results[j]) {
				t.Fatalf("duplicate counters: %v", results)
			}
		}
	}
}

func TestNonMemberIncrements(t *testing.T) {
	c, ms := counterCluster(t, 4, 23, 0)
	// Shrink the configuration to {p1,p2,p3}; p4 stays a participant but
	// is no longer a member — it must still increment via Algorithm 4.5.
	if !c.Node(1).Estab(ids.NewSet(1, 2, 3)) {
		t.Fatal("estab rejected")
	}
	ok := c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		return !(conv && cfg.Equal(ids.NewSet(1, 2, 3)))
	}, 3_000_000)
	if !ok {
		t.Fatal("reconfiguration did not complete")
	}
	c.RunFor(800) // let members rebuild label stores
	op := ms[4].Increment(c.Node(4))
	got, err := runOp(t, c, op)
	if err != nil {
		t.Fatalf("non-member increment: %v", err)
	}
	if got.WID != 4 {
		t.Fatalf("writer id = %v, want p4", got.WID)
	}
	// And a subsequent member increment must exceed it.
	op2 := ms[1].Increment(c.Node(1))
	got2, err := runOp(t, c, op2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Less(got2) {
		t.Fatalf("member increment %v not above non-member %v", got2, got)
	}
}

func TestEpochTurnoverUnderSmallBound(t *testing.T) {
	// With a tiny exhaustion bound, epochs turn over. The theory
	// (Theorem 4.4's discussion) guarantees monotonicity *within* an
	// epoch and distinctness always; across an epoch turn the raw ≺ct
	// order may regress ("it cannot be guaranteed that the label of a
	// configuration will continue being the greatest"), because the
	// fresh label's creator identifier can be smaller.
	c, ms := counterCluster(t, 3, 24, 6) // exhaust after seqn 6
	var results []Counter
	for i := 0; i < 15; i++ {
		op := ms[1].Increment(c.Node(1))
		got, err := runOp(t, c, op)
		if err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
		results = append(results, got)
	}
	for i := 1; i < len(results); i++ {
		prev, got := results[i-1], results[i]
		if prev.Lbl.Equal(got.Lbl) && !prev.Less(got) {
			t.Fatalf("within-epoch monotonicity lost: %v then %v", prev, got)
		}
	}
	for i := range results {
		for j := i + 1; j < len(results); j++ {
			if results[i].Equal(results[j]) {
				t.Fatalf("duplicate counter issued: %v (ops %d and %d)", results[i], i, j)
			}
		}
	}
	turned := false
	for _, m := range ms {
		if m.Metrics().EpochTurns > 0 {
			turned = true
		}
	}
	if !turned {
		t.Fatal("no epoch turn despite tiny exhaustion bound")
	}
}

func TestIncrementAbortsDuringReconfiguration(t *testing.T) {
	c, ms := counterCluster(t, 4, 25, 0)
	// Start an increment, then immediately force a reconfiguration; the
	// operation must either complete or abort — never hang or corrupt.
	op := ms[4].Increment(c.Node(4))
	c.Node(1).Estab(ids.NewSet(1, 2, 3))
	c.Sched.RunWhile(func() bool { return !op.Done() }, 3_000_000)
	if !op.Done() {
		t.Fatal("operation hung across reconfiguration")
	}
	if _, err := op.Result(); err != nil && err != ErrAborted && err != ErrNoCounter {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestIncrementFailsFastWhenNoConfig(t *testing.T) {
	ms := managers{}
	opts := core.DefaultClusterOptions(26)
	opts.AppFactory = func(self ids.ID) core.App {
		m := NewManager(self)
		ms[self] = m
		return m
	}
	c, err := core.ColdStartCluster(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Before convergence there is no quorum: the op must fail fast.
	op := ms[1].Increment(c.Node(1))
	if !op.Done() {
		t.Fatal("op not failed fast without a configuration")
	}
	if _, err := op.Result(); err != ErrAborted {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestMembersConvergeOnGossip(t *testing.T) {
	c, ms := counterCluster(t, 3, 27, 0)
	op := ms[2].Increment(c.Node(2))
	if _, err := runOp(t, c, op); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2000) // gossip spreads the written counter
	want, _ := op.Result()
	for id := ids.ID(1); id <= 3; id++ {
		st := ms[id].Store()
		if st == nil {
			t.Fatalf("member %v has no store", id)
		}
		got, ok := st.MaxCounter()
		if !ok {
			t.Fatalf("member %v has no max counter", id)
		}
		if got.Less(want) {
			t.Fatalf("member %v max %v below written %v", id, got, want)
		}
	}
}
