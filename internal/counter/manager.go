package counter

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/label"
)

// ErrAborted is returned when an increment was interrupted by a
// reconfiguration (the paper's Abort response); the caller retries later.
var ErrAborted = errors.New("counter: increment aborted by reconfiguration")

// ErrNoCounter is returned when no legit, non-exhausted counter could be
// derived from a majority (labels have not converged yet).
var ErrNoCounter = errors.New("counter: no usable maximal counter")

// RPCKind enumerates the request/response messages of Algorithms 4.4/4.5.
type RPCKind int

// RPC kinds.
const (
	ReadReq RPCKind = iota + 1 // majMaxRead()
	ReadResp
	WriteReq // majMaxWrite(cnt)
	WriteResp
)

// RPC is one request or response. Seq identifies the client operation;
// responses echo it.
type RPC struct {
	Kind    RPCKind
	Seq     uint64
	Counter Pair
	HasCtr  bool
	Abort   bool
}

// Message is the counter application's envelope payload: member gossip
// (Algorithm 4.3's transmit of the maximal pair) plus any RPCs.
type Message struct {
	Gossip    Pair
	HasGossip bool
	RPCs      []RPC
}

// OpPhase tracks an increment operation's progress.
type OpPhase int

// Operation phases.
const (
	PhaseRead OpPhase = iota + 1
	PhaseWrite
	PhaseDone
	PhaseFailed
)

// Op is an in-flight increment operation (the two-phase majority
// read/write of Algorithms 4.4 and 4.5).
type Op struct {
	seq    uint64
	conf   ids.Set
	phase  OpPhase
	reads  map[ids.ID]Pair
	readOK map[ids.ID]bool
	acks   map[ids.ID]bool
	newCtr Counter
	result Counter
	err    error
}

// Done reports completion (successfully or not).
func (o *Op) Done() bool { return o.phase == PhaseDone || o.phase == PhaseFailed }

// Result returns the counter written by a successful increment.
func (o *Op) Result() (Counter, error) {
	if o.phase == PhaseDone {
		return o.result, nil
	}
	if o.err != nil {
		return Counter{}, o.err
	}
	return Counter{}, ErrNoCounter
}

// Metrics counts counter events.
type Metrics struct {
	Increments uint64
	Aborts     uint64
	EpochTurns uint64 // exhaustion-driven label changes observed
}

// Manager runs the counter algorithms on a core.Node: Algorithm 4.3's
// gossip and server role for configuration members, and the client-side
// increment for any participant. It implements core.App.
type Manager struct {
	self ids.ID
	// ExhaustAt is the sequence-number bound (2^b); small values let
	// tests exercise epoch turnover.
	ExhaustAt uint64
	// OptsFor sizes the label store per configuration size.
	OptsFor func(v int) label.StoreOptions

	store     *Store
	conf      ids.Set
	confValid bool

	nextSeq uint64
	ops     map[uint64]*Op
	outbox  map[ids.ID][]RPC // pending responses per peer (bounded)
	lastLbl label.Label
	haveLbl bool
	metrics Metrics
}

var _ core.App = (*Manager)(nil)

// NewManager builds the counter application for processor self.
func NewManager(self ids.ID) *Manager {
	return &Manager{
		self:   self,
		ops:    make(map[uint64]*Op),
		outbox: make(map[ids.ID][]RPC),
	}
}

// Store exposes the member-side store (nil for non-members).
func (m *Manager) Store() *Store { return m.store }

// Metrics returns a copy of the counters.
func (m *Manager) Metrics() Metrics { return m.metrics }

func (m *Manager) labelOpts(v int) label.StoreOptions {
	if m.OptsFor != nil {
		return m.OptsFor(v)
	}
	return label.DefaultStoreOptions(v, 8)
}

// Increment starts a two-phase counter increment against the current
// configuration. The returned Op completes (or fails) as the node ticks.
func (m *Manager) Increment(n *core.Node) *Op {
	m.nextSeq++
	op := &Op{
		seq:    m.nextSeq,
		phase:  PhaseRead,
		reads:  make(map[ids.ID]Pair),
		readOK: make(map[ids.ID]bool),
		acks:   make(map[ids.ID]bool),
	}
	q, ok := n.Quorum()
	if !ok || !n.NoReco() {
		op.phase = PhaseFailed
		op.err = ErrAborted
		m.metrics.Aborts++
		return op
	}
	op.conf = q
	m.selfServe(op)
	m.ops[op.seq] = op
	return op
}

// selfServe lets a configuration member answer its own read locally and
// ack its own write (Algorithm 4.4 runs the member and client roles on one
// processor; the node's transport never loops back to itself).
func (m *Manager) selfServe(op *Op) {
	if m.store == nil || !op.conf.Contains(m.self) {
		return
	}
	switch op.phase {
	case PhaseRead:
		if p, ok := m.store.MaxPair(); ok {
			op.reads[m.self] = p
		}
		op.readOK[m.self] = true
	case PhaseWrite:
		m.store.Observe(m.self, op.newCtr)
		op.acks[m.self] = true
	}
}

// Tick implements core.App: maintain member structures, watch for epoch
// turns, progress client operations.
func (m *Manager) Tick(n *core.Node) {
	q, ok := n.Quorum()
	steady := ok && n.NoReco()

	if steady && q.Contains(m.self) {
		if !m.confValid || !m.conf.Equal(q) {
			m.conf, m.confValid = q, true
			if m.store == nil {
				m.store = NewStore(m.self, q, m.labelOpts(q.Size()), m.ExhaustAt)
			} else {
				m.store.Rebuild(q)
			}
		}
		if c, ok := m.store.MaxCounter(); ok {
			if m.haveLbl && !m.lastLbl.Equal(c.Lbl) {
				m.metrics.EpochTurns++
			}
			m.lastLbl, m.haveLbl = c.Lbl, true
		}
	} else if steady && !q.Contains(m.self) {
		m.store = nil
		m.confValid = false
	}

	// Progress operations in sequence order (deterministic across runs).
	for _, seq := range m.opOrder() {
		op := m.ops[seq]
		if op.Done() {
			delete(m.ops, seq)
			continue
		}
		m.progress(op)
	}
}

// opOrder returns the in-flight operation sequence numbers, ascending.
func (m *Manager) opOrder() []uint64 {
	order := make([]uint64, 0, len(m.ops))
	for seq := range m.ops {
		order = append(order, seq)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

func (m *Manager) progress(op *Op) {
	maj := op.conf.MajoritySize()
	switch op.phase {
	case PhaseRead:
		got := 0
		for id := range op.readOK {
			if op.conf.Contains(id) {
				got++
			}
		}
		if got < maj {
			return
		}
		c, ok := m.deriveMax(op)
		// The incremented value must stay strictly below the exhaustion
		// bound, otherwise the write would be cancelled everywhere and a
		// later read could re-issue the same value; members cancel the
		// spent epoch and re-derive a fresh one instead.
		for tries := 0; ok && c.Seqn+1 >= m.exhaustBound(); tries++ {
			if m.store == nil || tries > 8 {
				ok = false
				break
			}
			m.store.Observe(m.self, Counter{Lbl: c.Lbl, Seqn: m.exhaustBound(), WID: m.self})
			c, ok = m.store.MaxCounter()
		}
		if !ok {
			op.phase = PhaseFailed
			op.err = ErrNoCounter
			return
		}
		op.newCtr = Counter{Lbl: c.Lbl, Seqn: c.Seqn + 1, WID: m.self}
		op.phase = PhaseWrite
		m.selfServe(op)
	case PhaseWrite:
		got := 0
		for id := range op.acks {
			if op.conf.Contains(id) {
				got++
			}
		}
		if got >= maj {
			op.result = op.newCtr
			op.phase = PhaseDone
			m.metrics.Increments++
		}
	}
}

// exhaustBound returns the effective sequence-number bound.
func (m *Manager) exhaustBound() uint64 {
	if m.ExhaustAt == 0 {
		return 1 << 60
	}
	return m.ExhaustAt
}

// deriveMax computes the maximal usable counter from the majority's read
// responses: members fold them into their store (Algorithm 4.4), other
// participants take the largest legit non-exhausted response (4.5).
func (m *Manager) deriveMax(op *Op) (Counter, bool) {
	readOrder := make([]ids.ID, 0, len(op.reads))
	for from := range op.reads {
		readOrder = append(readOrder, from)
	}
	sort.Slice(readOrder, func(i, j int) bool { return readOrder[i] < readOrder[j] })
	if m.store != nil {
		for _, from := range readOrder {
			m.store.ObservePair(from, op.reads[from])
		}
		return m.store.MaxCounter()
	}
	var best Counter
	found := false
	exhaust := m.exhaustBound()
	for _, from := range readOrder {
		p := op.reads[from]
		if !p.Legit() || p.MCT.Seqn >= exhaust {
			continue
		}
		if !found || best.Less(p.MCT) {
			best = p.MCT
			found = true
		}
	}
	return best, found
}

// Outgoing implements core.App: member gossip plus client requests and
// queued server responses for the peer.
func (m *Manager) Outgoing(to ids.ID, n *core.Node) any {
	msg := Message{}
	if m.store != nil && m.confValid && m.conf.Contains(to) && n.NoReco() {
		if p, ok := m.store.MaxPair(); ok {
			msg.Gossip = p
			msg.HasGossip = true
		}
	}
	for _, seq := range m.opOrder() {
		op := m.ops[seq]
		if op.Done() || !op.conf.Contains(to) {
			continue
		}
		switch op.phase {
		case PhaseRead:
			if !op.readOK[to] {
				msg.RPCs = append(msg.RPCs, RPC{Kind: ReadReq, Seq: op.seq})
			}
		case PhaseWrite:
			if !op.acks[to] {
				msg.RPCs = append(msg.RPCs, RPC{
					Kind: WriteReq, Seq: op.seq,
					Counter: Pair{MCT: op.newCtr}, HasCtr: true,
				})
			}
		}
	}
	if out := m.outbox[to]; len(out) > 0 {
		msg.RPCs = append(msg.RPCs, out...)
		delete(m.outbox, to)
	}
	if !msg.HasGossip && len(msg.RPCs) == 0 {
		return nil
	}
	return msg
}

// HandleApp implements core.App: fold gossip, serve requests, feed
// responses into operations.
func (m *Manager) HandleApp(from ids.ID, payload any, n *core.Node) {
	msg, ok := payload.(Message)
	if !ok {
		return
	}
	if msg.HasGossip && m.store != nil && m.confValid && m.conf.Contains(from) {
		m.store.ObservePair(from, msg.Gossip)
	}
	for _, r := range msg.RPCs {
		m.handleRPC(from, r, n)
	}
}

func (m *Manager) handleRPC(from ids.ID, r RPC, n *core.Node) {
	switch r.Kind {
	case ReadReq:
		resp := RPC{Kind: ReadResp, Seq: r.Seq}
		if m.store != nil && n.NoReco() {
			if p, ok := m.store.MaxPair(); ok {
				resp.Counter = p
				resp.HasCtr = true
			} else {
				resp.Abort = true
			}
		} else {
			resp.Abort = true // Abort during reconfiguration (line 24)
		}
		m.enqueue(from, resp)
	case WriteReq:
		resp := RPC{Kind: WriteResp, Seq: r.Seq}
		if m.store != nil && n.NoReco() && r.HasCtr {
			m.store.ObservePair(from, r.Counter)
		} else {
			resp.Abort = true
		}
		m.enqueue(from, resp)
	case ReadResp:
		op, ok := m.ops[r.Seq]
		if !ok || op.phase != PhaseRead {
			return
		}
		if r.Abort {
			op.phase = PhaseFailed
			op.err = ErrAborted
			m.metrics.Aborts++
			return
		}
		if r.HasCtr {
			op.reads[from] = r.Counter
		}
		op.readOK[from] = true
	case WriteResp:
		op, ok := m.ops[r.Seq]
		if !ok || op.phase != PhaseWrite {
			return
		}
		if r.Abort {
			op.phase = PhaseFailed
			op.err = ErrAborted
			m.metrics.Aborts++
			return
		}
		op.acks[from] = true
	}
}

// enqueue appends a response for the peer, bounding the queue (stale
// responses are safe to drop: clients re-request).
func (m *Manager) enqueue(to ids.ID, r RPC) {
	q := append(m.outbox[to], r)
	const bound = 16
	if len(q) > bound {
		q = q[len(q)-bound:]
	}
	m.outbox[to] = q
}
