package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/recsa"
)

type countingHandler struct {
	received atomic.Int64
	ticks    atomic.Int64
}

func (h *countingHandler) Receive(ids.ID, any) { h.received.Add(1) }
func (h *countingHandler) Tick()               { h.ticks.Add(1) }

func fastOptions() Options {
	return Options{
		Capacity:  256,
		MinDelay:  0,
		MaxDelay:  200 * time.Microsecond,
		LossProb:  0,
		TickEvery: 500 * time.Microsecond,
	}
}

func TestTicksAndDelivery(t *testing.T) {
	l := New(1, fastOptions())
	defer l.Close()
	a, b := &countingHandler{}, &countingHandler{}
	if err := l.AddNode(1, a); err != nil {
		t.Fatal(err)
	}
	if err := l.AddNode(2, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.Send(1, 2, i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.received.Load() >= 20 && a.ticks.Load() > 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("received=%d ticks=%d", b.received.Load(), a.ticks.Load())
}

func TestDuplicateNodeRejected(t *testing.T) {
	l := New(1, fastOptions())
	defer l.Close()
	if err := l.AddNode(1, &countingHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddNode(1, &countingHandler{}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestCrashStopsNode(t *testing.T) {
	l := New(1, fastOptions())
	defer l.Close()
	h := &countingHandler{}
	if err := l.AddNode(1, h); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	l.Crash(1)
	ticks := h.ticks.Load()
	time.Sleep(10 * time.Millisecond)
	if h.ticks.Load() > ticks+1 {
		t.Fatal("crashed node kept ticking")
	}
	l.Send(2, 1, "x")
	if h.received.Load() != 0 {
		t.Fatal("crashed node received")
	}
}

func TestInspectSerializesWithHandler(t *testing.T) {
	l := New(1, fastOptions())
	defer l.Close()
	h := &countingHandler{}
	if err := l.AddNode(1, h); err != nil {
		t.Fatal(err)
	}
	seen := int64(-1)
	if !l.Inspect(1, func() { seen = h.ticks.Load() }) {
		t.Fatal("Inspect failed")
	}
	if seen < 0 {
		t.Fatal("Inspect closure did not run")
	}
	if l.Inspect(99, func() {}) {
		t.Fatal("Inspect of unknown node succeeded")
	}
}

// TestFullStackLive brings up the complete reconfiguration stack on real
// goroutines and waits for convergence — the substrate the examples use.
func TestFullStackLive(t *testing.T) {
	l := New(7, fastOptions())
	defer l.Close()
	const n = 4
	all := ids.Range(1, n)
	nodes := make(map[ids.ID]*core.Node, n)
	for i := ids.ID(1); i <= n; i++ {
		node, err := core.NewNode(l, core.Params{Self: i, N: 16, Initial: recsa.ConfigOf(all)})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i := ids.ID(1); i <= n; i++ {
		l.Inspect(i, func() {
			nodes[i].ConnectAll(all.Remove(i))
			nodes[i].Detector.Bootstrap(all.Remove(i))
		})
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		agreed := true
		for i := ids.ID(1); i <= n; i++ {
			l.Inspect(i, func() {
				q, ok := nodes[i].Quorum()
				if !ok || !q.Equal(all) || !nodes[i].NoReco() {
					agreed = false
				}
			})
		}
		if agreed {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("live stack never converged")
}
