// Package runtime is the live counterpart of internal/netsim: it drives
// the same protocol step machines with real goroutines and channels — one
// goroutine per node, bounded channels as the lossy links, wall-clock
// tickers as the unknown-rate timers of the asynchronous model. The
// runnable examples use it; tests and benchmarks prefer the deterministic
// simulator.
//
// Concurrency discipline: each node's handler is invoked only from that
// node's own goroutine (ticks, deliveries and Inspect closures are all
// funneled through one channel), so the step machines need no locks.
// Cross-node sends are non-blocking — a full inbox drops the packet, which
// is exactly the bounded-capacity link of the paper's model.
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// Options configures the live network.
type Options struct {
	// Capacity bounds each node's inbox (the link capacity analogue).
	Capacity int
	// MinDelay/MaxDelay bound artificial delivery latency.
	MinDelay, MaxDelay time.Duration
	// LossProb drops packets at send time.
	LossProb float64
	// TickEvery is the node timer period (jittered ±25%).
	TickEvery time.Duration
}

// DefaultOptions returns a mildly adversarial live configuration.
func DefaultOptions() Options {
	return Options{
		Capacity:  256,
		MinDelay:  200 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		LossProb:  0.05,
		TickEvery: 2 * time.Millisecond,
	}
}

type inboxItem struct {
	from    ids.ID
	payload any
	ctl     func() // control closure (Inspect); nil for packets
}

type liveNode struct {
	id      ids.ID
	handler netsim.Handler
	inbox   chan inboxItem
	done    chan struct{}
}

// Live is a goroutine-per-node transport implementing core.Transport.
type Live struct {
	opts Options

	mu     sync.RWMutex
	nodes  map[ids.ID]*liveNode
	closed bool

	seed    int64
	rngSeq  atomic.Int64
	wg      sync.WaitGroup
	dropped atomic.Uint64
}

// New creates a live network. seed derives the per-node random sources so
// runs are loosely reproducible (scheduling is still up to the Go runtime).
func New(seed int64, opts Options) *Live {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.TickEvery <= 0 {
		opts.TickEvery = 2 * time.Millisecond
	}
	if opts.MaxDelay < opts.MinDelay {
		opts.MaxDelay = opts.MinDelay
	}
	return &Live{opts: opts, seed: seed, nodes: make(map[ids.ID]*liveNode)}
}

// Rand implements core.Transport: a fresh, independently seeded source per
// call, so no source is shared across goroutines.
func (l *Live) Rand() *rand.Rand {
	return rand.New(rand.NewSource(l.seed + l.rngSeq.Add(1)*7919))
}

// Dropped returns the number of packets dropped by full inboxes or loss.
func (l *Live) Dropped() uint64 { return l.dropped.Load() }

// AddNode implements core.Transport: register the handler and start its
// goroutine.
func (l *Live) AddNode(id ids.ID, h netsim.Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("runtime: network closed")
	}
	if _, ok := l.nodes[id]; ok {
		return fmt.Errorf("runtime: node %v already registered", id)
	}
	n := &liveNode{
		id:      id,
		handler: h,
		inbox:   make(chan inboxItem, l.opts.Capacity),
		done:    make(chan struct{}),
	}
	l.nodes[id] = n
	l.wg.Add(1)
	go l.run(n)
	return nil
}

func (l *Live) run(n *liveNode) {
	defer l.wg.Done()
	rng := l.Rand()
	jitter := func() time.Duration {
		q := int64(l.opts.TickEvery / 4)
		if q <= 0 {
			return l.opts.TickEvery
		}
		return l.opts.TickEvery + time.Duration(rng.Int63n(2*q)-q)
	}
	timer := time.NewTimer(jitter())
	defer timer.Stop()
	for {
		select {
		case <-n.done:
			return
		case item := <-n.inbox:
			if item.ctl != nil {
				item.ctl()
			} else {
				n.handler.Receive(item.from, item.payload)
			}
		case <-timer.C:
			n.handler.Tick()
			timer.Reset(jitter())
		}
	}
}

// Send implements core.Transport. It never blocks: loss, full inboxes and
// unknown destinations silently drop, as the bounded-link model allows.
func (l *Live) Send(from, to ids.ID, payload any) {
	l.mu.RLock()
	dst, ok := l.nodes[to]
	closed := l.closed
	l.mu.RUnlock()
	if !ok || closed {
		l.dropped.Add(1)
		return
	}
	// Loss and delay come from a cheap thread-local-ish source; crypto
	// quality is irrelevant here.
	r := rand.Int63() //nolint:gosec
	if l.opts.LossProb > 0 && float64(r%1000)/1000 < l.opts.LossProb {
		l.dropped.Add(1)
		return
	}
	deliver := func() {
		select {
		case dst.inbox <- inboxItem{from: from, payload: payload}:
		default:
			l.dropped.Add(1) // bounded link: overflow is omission
		}
	}
	span := l.opts.MaxDelay - l.opts.MinDelay
	delay := l.opts.MinDelay
	if span > 0 {
		delay += time.Duration(r % int64(span))
	}
	if delay <= 0 {
		deliver()
		return
	}
	time.AfterFunc(delay, deliver)
}

// Inspect runs fn inside the node's goroutine and waits for it — the only
// safe way to read node state from outside.
func (l *Live) Inspect(id ids.ID, fn func()) bool {
	l.mu.RLock()
	n, ok := l.nodes[id]
	l.mu.RUnlock()
	if !ok {
		return false
	}
	done := make(chan struct{})
	select {
	case n.inbox <- inboxItem{ctl: func() { fn(); close(done) }}:
	case <-n.done:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.done:
		return false
	}
}

// Crash stop-fails a node: its goroutine exits and its inbox drains to
// nowhere.
func (l *Live) Crash(id ids.ID) {
	l.mu.Lock()
	n, ok := l.nodes[id]
	if ok {
		delete(l.nodes, id)
	}
	l.mu.Unlock()
	if ok {
		close(n.done)
	}
}

// Close stops every node and waits for their goroutines.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	nodes := make([]*liveNode, 0, len(l.nodes))
	for _, n := range l.nodes {
		nodes = append(nodes, n)
	}
	l.nodes = make(map[ids.ID]*liveNode)
	l.mu.Unlock()
	for _, n := range nodes {
		close(n.done)
	}
	l.wg.Wait()
}
