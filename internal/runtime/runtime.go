// Package runtime is the historical name of the live in-process backend;
// it is now a thin compatibility layer over transport/inproc, which
// implements the same one-goroutine-per-node discipline behind the
// pluggable transport.Transport interface. New code should use
// repro/internal/transport/inproc (or transport/tcp for multi-process
// deployments) directly.
package runtime

import (
	"repro/internal/transport"
	"repro/internal/transport/inproc"
)

// Options is the unified transport fault/timing configuration. Compared
// to the pre-transport runtime options it gains DupProb and TickJitter,
// closing the fault-model gap with the simulator.
type Options = transport.Options

// DefaultOptions returns a mildly adversarial live configuration.
func DefaultOptions() Options { return transport.LiveDefaults() }

// Live is the goroutine-per-node transport (now inproc.Net).
type Live = inproc.Net

// New creates a live network. seed derives the per-node random sources
// so runs are loosely reproducible (scheduling is still up to the Go
// runtime).
func New(seed int64, opts Options) *Live { return inproc.New(seed, opts) }
