// Package experiments implements the paper-reproduction experiment suite
// E1–E10 defined in DESIGN.md §6. The paper (a proofs paper) publishes no
// empirical tables; each experiment here operationalizes one of its
// theorems or explicit asymptotic claims, producing the series recorded in
// EXPERIMENTS.md. Both bench_test.go and cmd/benchtab drive these
// functions.
package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/ids"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/recsa"
	"repro/internal/sim"
	"repro/internal/vs"
	"repro/internal/workload"
)

// Sizes is the default N sweep.
var Sizes = []int{4, 8, 16, 24}

// SmallSizes keeps `go test -bench` wall time modest.
var SmallSizes = []int{4, 8}

const deadline sim.Time = 400_000

// E1DelicateLatency measures Figure 2 / Theorem 3.16: the virtual time a
// delicate replacement takes from estab() to a system-wide installed
// configuration, as N grows.
func E1DelicateLatency(seed int64, sizes []int) workload.Series {
	s := workload.Series{Name: "E1 delicate replacement (ticks)"}
	for _, n := range sizes {
		c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
		if err != nil {
			continue
		}
		c.RunFor(800)
		target := ids.Range(1, ids.ID(n-1))
		start := c.Sched.Now()
		if !c.Node(1).Estab(target) {
			s.Add(n, 0, false, "estab rejected")
			continue
		}
		ok := c.Sched.RunWhile(func() bool {
			cfg, conv := c.ConvergedConfig()
			return !(conv && cfg.Equal(target))
		}, 10_000_000)
		s.Add(n, float64(c.Sched.Now()-start), ok, "estab→installed")
	}
	return s
}

// E2BruteForceConvergence measures Theorem 3.15: virtual time to converge
// from a fully corrupted state (all layers randomized, stale packets in
// the channels).
func E2BruteForceConvergence(seed int64, sizes []int) workload.Series {
	s := workload.Series{Name: "E2 brute-force recovery (ticks)"}
	for _, n := range sizes {
		c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
		if err != nil {
			continue
		}
		c.RunFor(800)
		d, ok := workload.MeasureConvergence(c, 4*n, deadline)
		s.Add(n, float64(d), ok, "corrupt→converged")
	}
	return s
}

// E3SpuriousTriggers measures Lemma 3.18: the number of reconfiguration
// triggerings caused by corrupted recMA flags, against the O(N²·cap)
// bound. Only the management layer is corrupted; recSA stays clean, so
// every triggering is attributable to stale flags.
func E3SpuriousTriggers(seed int64, sizes []int) workload.Series {
	s := workload.Series{Name: "E3 spurious recMA triggers (count)"}
	for _, n := range sizes {
		opts := core.DefaultClusterOptions(seed)
		c, err := core.BootstrapCluster(n, opts)
		if err != nil {
			continue
		}
		c.RunFor(800)
		rng := c.Sched.Rand()
		c.EachAlive(func(node *core.Node) {
			node.MA.CorruptState(rng, c.IDs())
		})
		c.RunFor(20_000)
		total := uint64(0)
		c.EachAlive(func(node *core.Node) {
			m := node.MA.Metrics()
			total += m.TriggeredNoMaj + m.TriggeredPredict
		})
		bound := n * n * netsim.DefaultOptions().Capacity
		s.Add(n, float64(total), int(total) <= bound,
			fmt.Sprintf("bound N²·cap=%d", bound))
	}
	return s
}

// E4LabelCreations measures Theorem 4.4: label creations until a global
// maximal label, from an arbitrary corrupted state (bound O(N(N²+m)))
// versus right after a clean rebuild (bound O(N²)).
func E4LabelCreations(seed int64, sizes []int) []workload.Series {
	arbitrary := workload.Series{Name: "E4 label creations (arbitrary start)"}
	postReco := workload.Series{Name: "E4 label creations (post-rebuild)"}
	const m = 8
	for _, n := range sizes {
		members := ids.Range(1, ids.ID(n))
		stores := make(map[ids.ID]*label.Store, n)
		members.Each(func(id ids.ID) {
			stores[id] = label.NewStore(id, members, label.DefaultStoreOptions(n, m))
		})
		rng := newRng(seed)
		// Corrupt: inject wild labels everywhere.
		members.Each(func(id ids.ID) {
			for k := 0; k < n; k++ {
				cr := ids.ID(rng.Intn(n) + 1)
				stores[id].InjectMax(cr, label.Pair{ML: label.Label{
					Creator: cr, Sting: rng.Intn(64),
					Antistings: []int{rng.Intn(64)},
				}})
			}
		})
		rounds := exchangeLabels(stores, members, 400)
		total := uint64(0)
		members.Each(func(id ids.ID) { total += stores[id].Metrics().Creations })
		arbitrary.Add(n, float64(total), rounds >= 0,
			fmt.Sprintf("bound N(N²+m)=%d", n*(n*n+m)))

		// Post-rebuild: clean structures, count to the next agreement.
		members.Each(func(id ids.ID) { stores[id].Rebuild(members) })
		base := uint64(0)
		members.Each(func(id ids.ID) { base += stores[id].Metrics().Creations })
		exchangeLabels(stores, members, 400)
		total = 0
		members.Each(func(id ids.ID) { total += stores[id].Metrics().Creations })
		postReco.Add(n, float64(total-base), true, fmt.Sprintf("bound N²=%d", n*n))
	}
	return []workload.Series{arbitrary, postReco}
}

// E5CounterIncrement measures Theorem 4.6 operationally: virtual-time
// latency per completed increment and total throughput.
func E5CounterIncrement(seed int64, sizes []int) workload.Series {
	s := workload.Series{Name: "E5 counter increment latency (ticks/op)"}
	for _, n := range sizes {
		mgrs := map[ids.ID]*counter.Manager{}
		opts := core.DefaultClusterOptions(seed)
		opts.AppFactory = func(self ids.ID) core.App {
			m := counter.NewManager(self)
			mgrs[self] = m
			return m
		}
		c, err := core.BootstrapCluster(n, opts)
		if err != nil {
			continue
		}
		c.RunFor(800)
		const opsWanted = 10
		start := c.Sched.Now()
		done := 0
		for i := 0; i < opsWanted; i++ {
			who := ids.ID(i%n + 1)
			op := mgrs[who].Increment(c.Node(who))
			if c.Sched.RunWhile(func() bool { return !op.Done() }, 4_000_000) {
				if _, err := op.Result(); err == nil {
					done++
				}
			}
		}
		elapsed := c.Sched.Now() - start
		if done == 0 {
			s.Add(n, 0, false, "no ops completed")
			continue
		}
		s.Add(n, float64(elapsed)/float64(done), done == opsWanted,
			fmt.Sprintf("%d/%d ops", done, opsWanted))
	}
	return s
}

// vsHarness builds a VS cluster for E6.
type countingApp struct{ delivered int }

func (a *countingApp) InitState() any { return 0 }
func (a *countingApp) Apply(state any, r vs.Round) any {
	v, _ := state.(int)
	return v + len(r.Inputs)
}
func (a *countingApp) Fetch() any         { return "x" }
func (a *countingApp) Deliver(r vs.Round) { a.delivered++ }

// E6VSReconfiguration measures Theorem 4.13: the service gap (virtual
// ticks without round progress) around a coordinator-led delicate
// reconfiguration, and whether the replica state survived.
func E6VSReconfiguration(seed int64, sizes []int) workload.Series {
	s := workload.Series{Name: "E6 VS reconfig service gap (ticks)"}
	for _, n := range sizes {
		mgrs := map[ids.ID]*vs.Manager{}
		opts := core.DefaultClusterOptions(seed)
		opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
		eval := func(cur ids.Set, trusted ids.Set) bool {
			return cur.Diff(trusted).Size() > 0
		}
		opts.AppFactory = func(self ids.ID) core.App {
			m := vs.NewManager(self, &countingApp{}, eval)
			mgrs[self] = m
			return m
		}
		c, err := core.BootstrapCluster(n, opts)
		if err != nil {
			continue
		}
		// Wait for a first view and some rounds.
		ok := c.Sched.RunWhile(func() bool {
			_, has := mgrs[1].CurrentView()
			return !has
		}, 6_000_000)
		if !ok {
			s.Add(n, 0, false, "no initial view")
			continue
		}
		c.RunFor(3000)
		state0, _ := mgrs[1].Replica().State.(int)
		// Crash the highest non-coordinator: evalConf starts firing.
		v, _ := mgrs[1].CurrentView()
		victim := ids.ID(n)
		if victim == v.Coordinator() {
			victim = ids.ID(n - 1)
		}
		c.Crash(victim)
		start := c.Sched.Now()
		ok = c.Sched.RunWhile(func() bool {
			cfg, conv := c.ConvergedConfig()
			if !conv || cfg.Contains(victim) {
				return true
			}
			good := true
			c.EachAlive(func(node *core.Node) {
				nv, has := mgrs[node.Self()].CurrentView()
				if !has || nv.Set.Contains(victim) {
					good = false
				}
			})
			return !good
		}, 20_000_000)
		gap := c.Sched.Now() - start
		state1, _ := mgrs[1].Replica().State.(int)
		preserved := state1 >= state0
		s.Add(n, float64(gap), ok && preserved,
			fmt.Sprintf("state %d→%d preserved=%v", state0, state1, preserved))
	}
	return s
}

// E7JoinLatency measures Theorem 3.26: time for a joining processor to
// become a participant, at increasing cluster sizes.
func E7JoinLatency(seed int64, sizes []int) workload.Series {
	s := workload.Series{Name: "E7 join latency (ticks)"}
	for _, n := range sizes {
		c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
		if err != nil {
			continue
		}
		c.RunFor(800)
		j, err := c.AddJoiner(ids.ID(n + 10))
		if err != nil {
			continue
		}
		start := c.Sched.Now()
		ok := c.Sched.RunWhile(func() bool { return !j.IsParticipant() }, 6_000_000)
		s.Add(n, float64(c.Sched.Now()-start), ok, "join→participant")
	}
	return s
}

// E8BaselineComparison reproduces the paper's headline claim (§1): after a
// transient fault, the self-stabilizing scheme recovers while the
// coherent-start baseline stays split forever (reported as the deadline).
func E8BaselineComparison(seed int64, sizes []int) []workload.Series {
	ours := workload.Series{Name: "E8 recovery: self-stabilizing (ticks)"}
	base := workload.Series{Name: "E8 recovery: baseline (ticks; deadline = never)"}
	for _, n := range sizes {
		c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
		if err != nil {
			continue
		}
		c.RunFor(800)
		d, ok := workload.MeasureConvergence(c, 2*n, deadline)
		ours.Add(n, float64(d), ok, "corrupt→converged")

		sched := sim.NewScheduler(seed)
		net := netsim.New(sched, netsim.DefaultOptions())
		bc, err := baseline.NewCluster(net, n)
		if err != nil {
			continue
		}
		sched.RunUntil(800)
		half := ids.Range(1, ids.ID(n/2))
		rest := ids.Range(ids.ID(n/2+1), ids.ID(n))
		for i := 1; i <= n; i++ {
			if i <= n/2 {
				bc.Node(ids.ID(i)).Corrupt(half, 7)
			} else {
				bc.Node(ids.ID(i)).Corrupt(rest, 7)
			}
		}
		start := sched.Now()
		recovered := false
		for sched.Now()-start < deadline {
			if _, ok := bc.Converged(); ok {
				recovered = true
				break
			}
			sched.RunUntil(sched.Now() + 1000)
		}
		base.Add(n, float64(sched.Now()-start), recovered, "split-brain")
	}
	return []workload.Series{ours, base}
}

// E9SharedMemory measures the MWMR register emulation's operation latency.
func E9SharedMemory(seed int64, sizes []int) workload.Series {
	s := workload.Series{Name: "E9 register write latency (ticks/op)"}
	for _, n := range sizes {
		mems, c, err := memCluster(seed, n)
		if err != nil {
			continue
		}
		ok := c.Sched.RunWhile(func() bool {
			_, has := mems[1].VS().CurrentView()
			return !has
		}, 6_000_000)
		if !ok {
			s.Add(n, 0, false, "no view")
			continue
		}
		const opsWanted = 8
		start := c.Sched.Now()
		done := 0
		for i := 0; i < opsWanted; i++ {
			who := ids.ID(i%n + 1)
			h := mems[who].Write("reg", fmt.Sprintf("v%d", i))
			if c.Sched.RunWhile(func() bool { return !h.Done() }, 4_000_000) {
				done++
			}
		}
		elapsed := c.Sched.Now() - start
		if done == 0 {
			s.Add(n, 0, false, "no ops")
			continue
		}
		s.Add(n, float64(elapsed)/float64(done), done == opsWanted,
			fmt.Sprintf("%d/%d writes", done, opsWanted))
	}
	return s
}

// E10Ablation compares the degree-gap staleness tolerance (DESIGN.md §4
// note 5): paper-strict gap 1 versus the default 2, measuring recovery
// time and spurious resets during a delicate replacement.
func E10Ablation(seed int64, sizes []int) []workload.Series {
	out := make([]workload.Series, 0, 2)
	for _, gap := range []int{1, 2} {
		s := workload.Series{Name: fmt.Sprintf("E10 delicate replacement, degree gap %d", gap)}
		for _, n := range sizes {
			opts := core.DefaultClusterOptions(seed)
			opts.Node.RecSA = recsa.Options{DegreeGap: gap}
			c, err := core.BootstrapCluster(n, opts)
			if err != nil {
				continue
			}
			c.RunFor(800)
			target := ids.Range(1, ids.ID(n-1))
			start := c.Sched.Now()
			c.Node(1).Estab(target)
			ok := c.Sched.RunWhile(func() bool {
				cfg, conv := c.ConvergedConfig()
				return !(conv && cfg.Equal(target))
			}, 10_000_000)
			resets := uint64(0)
			c.EachAlive(func(node *core.Node) { resets += node.SA.Metrics().Resets })
			s.Add(n, float64(c.Sched.Now()-start), ok,
				fmt.Sprintf("spurious resets=%d", resets))
		}
		out = append(out, s)
	}
	return out
}
