// Package experiments implements the paper-reproduction experiment suite
// E1–E14 defined in DESIGN.md §6. The paper (a proofs paper) publishes no
// empirical tables; E1–E10 each operationalize one of its theorems or
// explicit asymptotic claims, E11 measures the sharded register
// namespace's scaling (DESIGN.md §9), E12 the hot-path batching
// (DESIGN.md §11), E13 the pipelining/adaptive-batch/codec frontier
// (DESIGN.md §14), and E14 churn recovery — the deterministic twin of
// the live chaos harness (DESIGN.md §16) — producing the series
// recorded in EXPERIMENTS.md.
//
// The per-cell simulations live in cells.go; this file registers them
// with the engine registry (internal/experiments/engine), which
// bench_test.go and cmd/benchtab drive. The exported EN functions are
// kept as thin sequential wrappers over the registry for tests and
// direct callers.
package experiments

import (
	"fmt"

	"repro/internal/experiments/engine"
	"repro/internal/workload"
)

// Sizes is the default N sweep.
var Sizes = []int{4, 8, 16, 24}

func init() {
	engine.MustRegister(engine.Descriptor{
		ID: "E1", Title: "delicate replacement latency", Metric: "vticks",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Name: "E1 delicate replacement (ticks)", Run: e1Cell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E2", Title: "brute-force recovery", Metric: "vticks",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Name: "E2 brute-force recovery (ticks)", Run: e2Cell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E3", Title: "spurious recMA triggers", Metric: "count",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Name: "E3 spurious recMA triggers (count)", Run: e3Cell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E4", Title: "label creations", Metric: "creations",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Key: "arbitrary", Name: "E4 label creations (arbitrary start)", Run: e4ArbitraryCell},
			{Key: "postreco", Name: "E4 label creations (post-rebuild)", Run: e4PostRebuildCell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E5", Title: "counter increment latency", Metric: "vticks/op",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Name: "E5 counter increment latency (ticks/op)", Run: e5Cell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E6", Title: "VS reconfiguration service gap", Metric: "vticks",
		DefaultSizes: Sizes, MinSize: 5,
		Series: []engine.SeriesSpec{
			{Name: "E6 VS reconfig service gap (ticks)", Run: e6Cell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E7", Title: "join latency", Metric: "vticks",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Name: "E7 join latency (ticks)", Run: e7Cell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E8", Title: "recovery vs coherent-start baseline", Metric: "vticks",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Key: "selfstab", Name: "E8 recovery: self-stabilizing (ticks)", Run: e8SelfStabCell},
			{Key: "baseline", Name: "E8 recovery: baseline (ticks; deadline = never)",
				Run: e8BaselineCell, ExpectInvalid: true},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E9", Title: "register write latency", Metric: "vticks/op",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Name: "E9 register write latency (ticks/op)", Run: e9Cell},
		},
	})
	engine.MustRegister(engine.Descriptor{
		ID: "E10", Title: "degree-gap ablation", Metric: "vticks",
		DefaultSizes: Sizes, MinSize: 2,
		Series: []engine.SeriesSpec{
			{Key: "gap1", Name: "E10 delicate replacement, degree gap 1", Run: e10Cell(1)},
			{Key: "gap2", Name: "E10 delicate replacement, degree gap 2", Run: e10Cell(2)},
		},
	})
	engine.MustRegister(engine.Descriptor{
		// E11 sweeps the SHARD count (the cluster stays 3 nodes): the
		// grid size is the number of register stacks multiplexed over
		// one reconfiguration layer.
		ID: "E11", Title: "shard scaling (N = shards, 3 nodes)", Metric: "ops/kilotick",
		DefaultSizes: []int{1, 2, 4, 8},
		Series: []engine.SeriesSpec{
			{Key: "write", Name: "E11 write throughput (ops/kilotick)", Run: e11Cell(false)},
			{Key: "syncread", Name: "E11 sync-read throughput (ops/kilotick)", Run: e11Cell(true)},
		},
	})
	engine.MustRegister(engine.Descriptor{
		// E12 sweeps the BATCH bound (the cluster stays 3 nodes, one
		// shard): the grid size is the payload/command batch carried per
		// datalink token cycle and multicast round input (DESIGN.md §11).
		ID: "E12", Title: "batch scaling (N = batch, 3 nodes)", Metric: "ops/kilotick",
		DefaultSizes: []int{1, 4, 16, 64}, MinSize: 1,
		Series: []engine.SeriesSpec{
			{Key: "write", Name: "E12 write throughput (ops/kilotick)", Run: e12Cell(false)},
			{Key: "syncread", Name: "E12 sync-read throughput (ops/kilotick)", Run: e12Cell(true)},
		},
	})
	engine.MustRegister(engine.Descriptor{
		// E13 sweeps the WINDOW (the cluster stays 3 nodes, one shard,
		// batch 16): the grid size is the in-flight token cycles per
		// datalink (DESIGN.md §14). The write/adaptive arms measure
		// throughput in the simulator; the *bytes arms are the codec
		// lever — deterministic encoded bytes per payload of an N-payload
		// hot DATA batch under the binary fast path vs gob.
		ID: "E13", Title: "pipelining frontier (N = window, 3 nodes, batch 16)", Metric: "ops/kilotick",
		DefaultSizes: []int{1, 2, 4, 8}, MinSize: 1,
		Series: []engine.SeriesSpec{
			{Key: "write", Name: "E13 write throughput, static batch (ops/kilotick)", Run: e13Cell(false)},
			{Key: "adaptive", Name: "E13 write throughput, adaptive batch (ops/kilotick)", Run: e13Cell(true)},
			{Key: "binbytes", Name: "E13 binary codec (bytes/payload)", Run: e13CodecCell(true)},
			{Key: "gobbytes", Name: "E13 gob codec (bytes/payload)", Run: e13CodecCell(false)},
		},
	})
	engine.MustRegister(engine.Descriptor{
		// E14 sweeps the WINDOW over churn profiles: each arm fixes a
		// churn event (a mid-service crash of a configuration member, or
		// a fresh Algorithm 3.3 joiner) and a hot-path batch bound, and
		// measures the virtual recovery/adoption time (see
		// e14KillCell/e14JoinCell). The grid is the deterministic twin of
		// cmd/nodeload's live -churn harness: the simnet numbers predict
		// how the live recovery times should move with the levers.
		ID: "E14", Title: "churn recovery (N = window; kill/join × batch)", Metric: "vticks",
		DefaultSizes: []int{1, 4}, MinSize: 1,
		Series: []engine.SeriesSpec{
			{Key: "kill_b1", Name: "E14 kill→recovered, batch 1 (ticks)", Run: e14KillCell(1)},
			{Key: "kill_b16", Name: "E14 kill→recovered, batch 16 (ticks)", Run: e14KillCell(16)},
			{Key: "join_b1", Name: "E14 join→serving, batch 1 (ticks)", Run: e14JoinCell(1)},
			{Key: "join_b16", Name: "E14 join→serving, batch 16 (ticks)", Run: e14JoinCell(16)},
		},
	})
}

// runSeries sweeps one registered series sequentially over sizes, using
// the same base seed for every size (the pre-engine contract kept for
// tests and direct callers; the engine derives decorrelated per-cell
// seeds instead).
func runSeries(id, key string, seed int64, sizes []int) workload.Series {
	d, ok := engine.Get(id)
	if !ok {
		panic(fmt.Sprintf("experiments: %s not registered", id))
	}
	for _, spec := range d.Series {
		if spec.Key != key {
			continue
		}
		s := workload.Series{Name: spec.Name}
		for _, n := range sizes {
			if n < d.MinSize {
				n = d.MinSize
			}
			s.Rows = append(s.Rows, spec.Run(seed, n))
		}
		return s
	}
	panic(fmt.Sprintf("experiments: %s has no series %q", id, key))
}

// E1DelicateLatency measures Figure 2 / Theorem 3.16 (see e1Cell).
func E1DelicateLatency(seed int64, sizes []int) workload.Series {
	return runSeries("E1", "", seed, sizes)
}

// E2BruteForceConvergence measures Theorem 3.15 (see e2Cell).
func E2BruteForceConvergence(seed int64, sizes []int) workload.Series {
	return runSeries("E2", "", seed, sizes)
}

// E3SpuriousTriggers measures Lemma 3.18 (see e3Cell).
func E3SpuriousTriggers(seed int64, sizes []int) workload.Series {
	return runSeries("E3", "", seed, sizes)
}

// E4LabelCreations measures Theorem 4.4 in both arms: creations from an
// arbitrary corrupted start and right after a clean rebuild.
func E4LabelCreations(seed int64, sizes []int) []workload.Series {
	return []workload.Series{
		runSeries("E4", "arbitrary", seed, sizes),
		runSeries("E4", "postreco", seed, sizes),
	}
}

// E5CounterIncrement measures Theorem 4.6 operationally (see e5Cell).
func E5CounterIncrement(seed int64, sizes []int) workload.Series {
	return runSeries("E5", "", seed, sizes)
}

// E6VSReconfiguration measures Theorem 4.13 (see e6Cell). Sizes below 5
// are raised to 5.
func E6VSReconfiguration(seed int64, sizes []int) workload.Series {
	return runSeries("E6", "", seed, sizes)
}

// E7JoinLatency measures Theorem 3.26 (see e7Cell).
func E7JoinLatency(seed int64, sizes []int) workload.Series {
	return runSeries("E7", "", seed, sizes)
}

// E8BaselineComparison reproduces the paper's headline claim (§1): after
// a transient fault the self-stabilizing scheme recovers while the
// coherent-start baseline stays split forever (reported as the deadline).
func E8BaselineComparison(seed int64, sizes []int) []workload.Series {
	return []workload.Series{
		runSeries("E8", "selfstab", seed, sizes),
		runSeries("E8", "baseline", seed, sizes),
	}
}

// E9SharedMemory measures the MWMR register emulation's operation latency
// (see e9Cell).
func E9SharedMemory(seed int64, sizes []int) workload.Series {
	return runSeries("E9", "", seed, sizes)
}

// E10Ablation compares the degree-gap staleness tolerance (DESIGN.md §4
// note 5): paper-strict gap 1 versus the default 2.
func E10Ablation(seed int64, sizes []int) []workload.Series {
	return []workload.Series{
		runSeries("E10", "gap1", seed, sizes),
		runSeries("E10", "gap2", seed, sizes),
	}
}

// E11ShardScaling measures aggregate write and sync-read throughput as
// the register namespace is partitioned over 1/2/4/8 shards (see
// e11Cell; sizes are shard counts).
func E11ShardScaling(seed int64, shardCounts []int) []workload.Series {
	return []workload.Series{
		runSeries("E11", "write", seed, shardCounts),
		runSeries("E11", "syncread", seed, shardCounts),
	}
}

// E12BatchScaling measures write and sync-read throughput as the hot
// path batches 1/4/16/64 payloads per datalink token and commands per
// round (see e12Cell; sizes are batch bounds).
func E12BatchScaling(seed int64, batches []int) []workload.Series {
	return []workload.Series{
		runSeries("E12", "write", seed, batches),
		runSeries("E12", "syncread", seed, batches),
	}
}

// E13PipeliningFrontier charts the latency/throughput frontier's three
// levers (see e13Cell and e13CodecCell; sizes are datalink windows, and
// the codec series' batch sizes): write throughput with a static and an
// adaptive batch as the window widens, plus the deterministic
// bytes-per-payload of the binary fast path against gob.
func E13PipeliningFrontier(seed int64, windows []int) []workload.Series {
	return []workload.Series{
		runSeries("E13", "write", seed, windows),
		runSeries("E13", "adaptive", seed, windows),
		runSeries("E13", "binbytes", seed, windows),
		runSeries("E13", "gobbytes", seed, windows),
	}
}

// E14ChurnRecovery measures recovery from live churn in the simulator:
// crash-of-a-member recovery time and fresh-joiner adoption time, each
// at batch 1 and 16, swept over the datalink window (see e14KillCell
// and e14JoinCell). The deterministic baseline for cmd/nodeload -churn.
func E14ChurnRecovery(seed int64, windows []int) []workload.Series {
	return []workload.Series{
		runSeries("E14", "kill_b1", seed, windows),
		runSeries("E14", "kill_b16", seed, windows),
		runSeries("E14", "join_b1", seed, windows),
		runSeries("E14", "join_b16", seed, windows),
	}
}
