// Package engine is the registry-driven, parallel experiment engine
// behind cmd/benchtab and the root benchmark suite (DESIGN.md §6).
//
// Each paper experiment (E1–E11, EXPERIMENTS.md) registers a Descriptor:
// an identifier, the measured metric, the default size sweep, and one or
// more series whose Run function executes a single (size, seed) cell and
// returns one measurement row. The runner expands the requested
// (experiment × series × size × repeat) grid into independent cells, fans
// them out over a bounded worker pool, and aggregates repeats into
// mean/std summaries. Because every cell derives its own seed from the
// base seed and its coordinates — never from scheduling order — results
// are bit-identical regardless of the worker count.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/workload"
)

// CellFunc runs one experiment cell: a single simulation at size n, fully
// determined by seed. It must be safe to call concurrently with other
// cells (no shared mutable state between calls).
type CellFunc func(seed int64, n int) workload.Row

// SeriesSpec is one output series of an experiment. Most experiments have
// a single series (Key ""); comparative experiments such as E4, E8 and
// E10 register one spec per arm.
type SeriesSpec struct {
	// Key distinguishes the arms of a multi-series experiment
	// ("arbitrary", "baseline", "gap1", …). Empty for single-series
	// experiments.
	Key string
	// Name is the human-readable series title used in tables.
	Name string
	// Run executes one cell of this series.
	Run CellFunc
	// ExpectInvalid marks series whose rows are expected NOT to
	// validate (e.g. E8's coherent-start baseline never recovers, so
	// every row reports the deadline with Valid=false).
	ExpectInvalid bool
}

// Descriptor describes one registered experiment.
type Descriptor struct {
	// ID is the experiment identifier, "E1" … "E10".
	ID string
	// Title is a short human-readable description.
	Title string
	// Metric names the measured quantity ("vticks", "count", …).
	Metric string
	// DefaultSizes is the N sweep used when the caller does not
	// override sizes.
	DefaultSizes []int
	// MinSize, when positive, is the smallest meaningful N; the runner
	// raises smaller requested sizes to it (e.g. E6 needs ≥5 so a
	// non-coordinator can crash while a majority survives).
	MinSize int
	// Series holds the experiment's output series, at least one.
	Series []SeriesSpec
}

var (
	regMu    sync.RWMutex
	registry = map[string]Descriptor{}
)

// Register adds an experiment descriptor to the global registry.
func Register(d Descriptor) error {
	if d.ID == "" {
		return fmt.Errorf("engine: descriptor without ID")
	}
	if len(d.Series) == 0 {
		return fmt.Errorf("engine: %s has no series", d.ID)
	}
	seen := map[string]bool{}
	for _, s := range d.Series {
		if s.Run == nil {
			return fmt.Errorf("engine: %s series %q has no Run", d.ID, s.Key)
		}
		if seen[s.Key] {
			return fmt.Errorf("engine: %s has duplicate series key %q", d.ID, s.Key)
		}
		seen[s.Key] = true
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.ID]; dup {
		return fmt.Errorf("engine: %s registered twice", d.ID)
	}
	registry[d.ID] = d
	return nil
}

// MustRegister is Register, panicking on error. Intended for package
// init-time registration.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Get looks up a registered experiment by ID.
func Get(id string) (Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[id]
	return d, ok
}

// All returns every registered descriptor in natural order (E1 … E10:
// shorter IDs first, then lexicographic, so E2 sorts before E10).
func All() []Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}
