package engine

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/workload"
)

// Config selects the grid to run and how to run it.
type Config struct {
	// Seed is the base random seed; every cell derives its own seed
	// from it (see DeriveSeed).
	Seed int64
	// Sizes overrides each experiment's DefaultSizes when non-empty.
	Sizes []int
	// Repeats is the number of repeats per (experiment, series, size)
	// cell; values below 1 run one repeat.
	Repeats int
	// Workers bounds the worker pool; values below 1 use
	// runtime.NumCPU(). Workers only changes wall-clock time, never
	// results.
	Workers int
	// Only, when non-nil, restricts the run to the listed experiment
	// IDs (upper-case, e.g. "E2").
	Only map[string]bool
}

// Cell identifies one point of the run grid.
type Cell struct {
	Experiment string `json:"experiment"`
	Series     string `json:"series,omitempty"`
	N          int    `json:"n"`
	Repeat     int    `json:"repeat"`
	Seed       int64  `json:"seed"`
}

// Result is the measurement of one cell.
type Result struct {
	Cell
	Value float64 `json:"value"`
	Valid bool    `json:"valid"`
	Note  string  `json:"note,omitempty"`
}

// Summary is the grouped mean/std of one (experiment, series, size) over
// its repeats.
type Summary struct {
	Experiment string  `json:"experiment"`
	Series     string  `json:"series,omitempty"`
	Metric     string  `json:"metric"`
	N          int     `json:"n"`
	Repeats    int     `json:"repeats"`
	Valid      int     `json:"valid"`
	Mean       float64 `json:"mean"`
	Std        float64 `json:"std"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
}

// Report is the full outcome of a run: one Result per cell in grid order
// plus the grouped summaries. It contains no wall-clock or scheduling
// information, so two runs of the same Config (any Workers value) produce
// byte-identical emissions.
type Report struct {
	Seed    int64     `json:"seed"`
	Repeats int       `json:"repeats"`
	Cells   []Result  `json:"cells"`
	Summary []Summary `json:"summary"`
}

// DeriveSeed computes the seed of one cell from the base seed and the
// cell coordinates, via FNV-1a over "id|series|n|rep". Cells get
// decorrelated deterministic seeds independent of scheduling order.
func DeriveSeed(base int64, id, series string, n, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", id, series, n, rep)
	return base + int64(h.Sum64())
}

// sizesFor clamps the requested sweep to the descriptor's MinSize and
// drops duplicates created by clamping, preserving order.
func sizesFor(d Descriptor, requested []int) []int {
	src := requested
	if len(src) == 0 {
		src = d.DefaultSizes
	}
	out := make([]int, 0, len(src))
	seen := map[int]bool{}
	for _, n := range src {
		if n < d.MinSize {
			n = d.MinSize
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Run executes the configured grid over a bounded worker pool and returns
// the per-cell results (in deterministic grid order) and grouped
// summaries.
func Run(cfg Config) (*Report, error) {
	descs := All()
	if cfg.Only != nil {
		matched := map[string]bool{}
		kept := descs[:0]
		for _, d := range descs {
			if cfg.Only[d.ID] {
				matched[d.ID] = true
				kept = append(kept, d)
			}
		}
		var unknown []string
		for id := range cfg.Only {
			if !matched[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return nil, fmt.Errorf("engine: unknown experiment %q", strings.Join(unknown, ","))
		}
		descs = kept
	}
	if len(descs) == 0 {
		return nil, fmt.Errorf("engine: no experiments registered")
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}

	type job struct {
		cell Cell
		run  CellFunc
	}
	var jobs []job
	for _, d := range descs {
		sizes := sizesFor(d, cfg.Sizes)
		for _, spec := range d.Series {
			for _, n := range sizes {
				for rep := 0; rep < repeats; rep++ {
					jobs = append(jobs, job{
						cell: Cell{
							Experiment: d.ID,
							Series:     spec.Key,
							N:          n,
							Repeat:     rep,
							Seed:       DeriveSeed(cfg.Seed, d.ID, spec.Key, n, rep),
						},
						run: spec.Run,
					})
				}
			}
		}
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Each worker writes only results[i] for the indices it drains, so
	// the output order is the grid order regardless of scheduling.
	results := make([]Result, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				row := j.run(j.cell.Seed, j.cell.N)
				results[i] = Result{
					Cell:  j.cell,
					Value: row.Y,
					Valid: row.Valid,
					Note:  row.Note,
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{Seed: cfg.Seed, Repeats: repeats, Cells: results}
	rep.Summary = summarize(descs, results)
	return rep, nil
}

// summarize groups the cell results by (experiment, series, size) and
// reduces repeats via workload.Aggregate, preserving grid order.
func summarize(descs []Descriptor, results []Result) []Summary {
	metric := map[string]string{}
	for _, d := range descs {
		metric[d.ID] = d.Metric
	}
	type key struct {
		exp, series string
	}
	var order []key
	rows := map[key][]workload.Row{}
	for _, r := range results {
		k := key{r.Experiment, r.Series}
		if _, seen := rows[k]; !seen {
			order = append(order, k)
		}
		rows[k] = append(rows[k], workload.Row{X: r.N, Y: r.Value, Valid: r.Valid, Note: r.Note})
	}
	var out []Summary
	for _, k := range order {
		for _, a := range workload.Aggregate(rows[k]) {
			out = append(out, Summary{
				Experiment: k.exp,
				Series:     k.series,
				Metric:     metric[k.exp],
				N:          a.X,
				Repeats:    a.Repeats,
				Valid:      a.Valid,
				Mean:       a.Mean,
				Std:        a.Std,
				Min:        a.Min,
				Max:        a.Max,
			})
		}
	}
	return out
}
