package engine

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// fnum formats a float with the shortest round-trip representation, so
// emissions are deterministic and diff-friendly.
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCellsCSV emits one CSV row per grid cell, in grid order.
func WriteCellsCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "series", "n", "repeat", "seed", "value", "valid", "note"}); err != nil {
		return err
	}
	for _, r := range rep.Cells {
		rec := []string{
			r.Experiment,
			r.Series,
			strconv.Itoa(r.N),
			strconv.Itoa(r.Repeat),
			strconv.FormatInt(r.Seed, 10),
			fnum(r.Value),
			strconv.FormatBool(r.Valid),
			r.Note,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummaryCSV emits the grouped mean/std summary, one CSV row per
// (experiment, series, size).
func WriteSummaryCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "series", "metric", "n", "repeats", "valid", "mean", "std", "min", "max"}); err != nil {
		return err
	}
	for _, s := range rep.Summary {
		rec := []string{
			s.Experiment,
			s.Series,
			s.Metric,
			strconv.Itoa(s.N),
			strconv.Itoa(s.Repeats),
			strconv.Itoa(s.Valid),
			fnum(s.Mean),
			fnum(s.Std),
			fnum(s.Min),
			fnum(s.Max),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the full report (cells plus summary) as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteTable renders the report as fixed-width per-experiment tables, the
// format recorded in EXPERIMENTS.md: the grouped summary per size, with
// the first repeat's note attached.
func WriteTable(w io.Writer, rep *Report) error {
	note := map[[3]string]string{}
	for _, r := range rep.Cells {
		k := [3]string{r.Experiment, r.Series, strconv.Itoa(r.N)}
		if _, seen := note[k]; !seen && r.Repeat == 0 {
			note[k] = r.Note
		}
	}
	titles := map[string]string{}
	metrics := map[string]string{}
	expectInvalid := map[string]bool{}
	for _, d := range All() {
		titles[d.ID] = d.Title
		for _, s := range d.Series {
			metrics[d.ID+"\x00"+s.Key] = s.Name
			expectInvalid[d.ID+"\x00"+s.Key] = s.ExpectInvalid
		}
	}
	lastHeader := ""
	for _, s := range rep.Summary {
		header := s.Experiment
		if t := titles[s.Experiment]; t != "" {
			header = fmt.Sprintf("%s — %s (%s)", s.Experiment, t, s.Metric)
		}
		if header != lastHeader {
			if lastHeader != "" {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "=== %s ===\n", header); err != nil {
				return err
			}
			lastHeader = header
		}
		name := metrics[s.Experiment+"\x00"+s.Series]
		if name == "" {
			name = s.Series
		}
		k := [3]string{s.Experiment, s.Series, strconv.Itoa(s.N)}
		status := ""
		if s.Valid < s.Repeats {
			if expectInvalid[s.Experiment+"\x00"+s.Series] {
				status = fmt.Sprintf(" (expected invalid: %d/%d)", s.Repeats-s.Valid, s.Repeats)
			} else {
				status = fmt.Sprintf(" (%d/%d timeout)", s.Repeats-s.Valid, s.Repeats)
			}
		}
		_, err := fmt.Fprintf(w, "%-44s %4d %14.2f %12.2f  %s%s\n",
			name, s.N, s.Mean, s.Std, note[k], status)
		if err != nil {
			return err
		}
	}
	return nil
}
