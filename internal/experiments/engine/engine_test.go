package engine_test

import (
	"bytes"
	"fmt"
	"testing"

	_ "repro/internal/experiments" // registers E1–E14
	"repro/internal/experiments/engine"
	"repro/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	all := engine.All()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, d := range all {
		if d.ID != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, d.ID, want[i])
		}
		if d.Metric == "" {
			t.Errorf("%s: empty metric", d.ID)
		}
		if len(d.DefaultSizes) == 0 {
			t.Errorf("%s: no default sizes", d.ID)
		}
		if len(d.Series) == 0 {
			t.Errorf("%s: no series", d.ID)
		}
	}
	if _, ok := engine.Get("E6"); !ok {
		t.Error("Get(E6) failed")
	}
}

func TestRegisterRejectsBadDescriptors(t *testing.T) {
	noop := func(seed int64, n int) workload.Row { return workload.Row{X: n} }
	cases := []engine.Descriptor{
		{},         // no ID
		{ID: "EX"}, // no series
		{ID: "EY", Series: []engine.SeriesSpec{{Name: "no run"}}},
		{ID: "EZ", Series: []engine.SeriesSpec{ // duplicate key
			{Key: "a", Run: noop}, {Key: "a", Run: noop},
		}},
		{ID: "E1", Series: []engine.SeriesSpec{{Run: noop}}}, // E1 taken
	}
	for i, d := range cases {
		if err := engine.Register(d); err == nil {
			t.Errorf("case %d: Register accepted invalid descriptor", i)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	a := engine.DeriveSeed(42, "E1", "", 4, 0)
	if b := engine.DeriveSeed(42, "E1", "", 4, 0); a != b {
		t.Errorf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
	seen := map[int64]string{}
	for _, id := range []string{"E1", "E2"} {
		for _, key := range []string{"", "arbitrary"} {
			for n := 4; n <= 8; n += 4 {
				for rep := 0; rep < 3; rep++ {
					s := engine.DeriveSeed(42, id, key, n, rep)
					coord := fmt.Sprintf("%s/%s/%d/%d", id, key, n, rep)
					if prev, dup := seen[s]; dup {
						t.Errorf("seed collision: %s and %s both derive %d", prev, coord, s)
					}
					seen[s] = coord
				}
			}
		}
	}
}

func TestRunGridShape(t *testing.T) {
	rep, err := engine.Run(engine.Config{
		Seed:    7,
		Sizes:   []int{4},
		Repeats: 3,
		Workers: 2,
		Only:    map[string]bool{"E4": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// E4 has two series; 1 size × 3 repeats each.
	if len(rep.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(rep.Cells))
	}
	for i, r := range rep.Cells {
		if r.Experiment != "E4" || r.N != 4 {
			t.Errorf("cell %d: unexpected coordinates %+v", i, r.Cell)
		}
		if r.Seed == 7 {
			t.Errorf("cell %d: seed not derived from base", i)
		}
	}
	if len(rep.Summary) != 2 {
		t.Fatalf("got %d summary rows, want 2", len(rep.Summary))
	}
	for _, s := range rep.Summary {
		if s.Repeats != 3 {
			t.Errorf("summary %s/%s: repeats %d, want 3", s.Experiment, s.Series, s.Repeats)
		}
		if s.Metric != "creations" {
			t.Errorf("summary %s/%s: metric %q", s.Experiment, s.Series, s.Metric)
		}
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("summary %s/%s: min %v mean %v max %v out of order",
				s.Experiment, s.Series, s.Min, s.Mean, s.Max)
		}
	}
}

func TestRunClampsToMinSize(t *testing.T) {
	rep, err := engine.Run(engine.Config{
		Seed:    11,
		Sizes:   []int{4, 5},
		Repeats: 1,
		Workers: 2,
		Only:    map[string]bool{"E6": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both requested sizes clamp to E6's MinSize 5 and deduplicate.
	if len(rep.Cells) != 1 || rep.Cells[0].N != 5 {
		t.Fatalf("E6 sizes {4,5}: got cells %+v, want one cell at N=5", rep.Cells)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := engine.Run(engine.Config{Only: map[string]bool{"E99": true}}); err == nil {
		t.Error("Run with unknown experiment id: want error")
	}
}

// TestParallelDeterminism is the regression test for the engine's core
// guarantee: the same config produces byte-identical CSV and JSON output
// whether the grid runs on 1 worker or 8.
func TestParallelDeterminism(t *testing.T) {
	emit := func(workers int) (cells, summary, jsonOut []byte) {
		rep, err := engine.Run(engine.Config{
			Seed:    42,
			Sizes:   []int{4, 6},
			Repeats: 2,
			Workers: workers,
			Only:    map[string]bool{"E4": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		var a, b, c bytes.Buffer
		if err := engine.WriteCellsCSV(&a, rep); err != nil {
			t.Fatal(err)
		}
		if err := engine.WriteSummaryCSV(&b, rep); err != nil {
			t.Fatal(err)
		}
		if err := engine.WriteJSON(&c, rep); err != nil {
			t.Fatal(err)
		}
		return a.Bytes(), b.Bytes(), c.Bytes()
	}
	c1, s1, j1 := emit(1)
	c8, s8, j8 := emit(8)
	if !bytes.Equal(c1, c8) {
		t.Errorf("cells CSV differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", c1, c8)
	}
	if !bytes.Equal(s1, s8) {
		t.Errorf("summary CSV differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", s1, s8)
	}
	if !bytes.Equal(j1, j8) {
		t.Error("JSON report differs between 1 and 8 workers")
	}
	if len(bytes.Split(bytes.TrimSpace(c1), []byte("\n"))) != 1+2*2*2 {
		t.Errorf("unexpected cells CSV shape:\n%s", c1)
	}
}

// TestParallelDeterminismE11 extends the determinism regression to the
// sharded-register experiment: E11 cells run whole multi-shard cluster
// simulations, and their emissions must still be byte-identical for any
// worker count.
func TestParallelDeterminismE11(t *testing.T) {
	emit := func(workers int) []byte {
		rep, err := engine.Run(engine.Config{
			Seed:    42,
			Sizes:   []int{1, 4},
			Repeats: 1,
			Workers: workers,
			Only:    map[string]bool{"E11": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := engine.WriteCellsCSV(&out, rep); err != nil {
			t.Fatal(err)
		}
		if err := engine.WriteJSON(&out, rep); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if p1, p8 := emit(1), emit(8); !bytes.Equal(p1, p8) {
		t.Errorf("E11 emission differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", p1, p8)
	}
}

// TestParallelDeterminismE12 extends the determinism regression to the
// batch-scaling experiment: E12 cells run whole batched-hot-path cluster
// simulations (including the batch-1 arm that must stay bit-identical
// to the unbatched configuration), and their emissions must be
// byte-identical for any worker count.
func TestParallelDeterminismE12(t *testing.T) {
	emit := func(workers int) []byte {
		rep, err := engine.Run(engine.Config{
			Seed:    42,
			Sizes:   []int{1, 16},
			Repeats: 1,
			Workers: workers,
			Only:    map[string]bool{"E12": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := engine.WriteCellsCSV(&out, rep); err != nil {
			t.Fatal(err)
		}
		if err := engine.WriteJSON(&out, rep); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if p1, p8 := emit(1), emit(8); !bytes.Equal(p1, p8) {
		t.Errorf("E12 emission differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", p1, p8)
	}
}

// TestParallelDeterminismE13 extends the determinism regression to the
// pipelining-frontier experiment: E13 cells run whole pipelined
// (window > 1, adaptive-batch) cluster simulations plus the pure codec
// measurements, and their emissions must be byte-identical for any
// worker count.
func TestParallelDeterminismE13(t *testing.T) {
	emit := func(workers int) []byte {
		rep, err := engine.Run(engine.Config{
			Seed:    42,
			Sizes:   []int{1, 4},
			Repeats: 1,
			Workers: workers,
			Only:    map[string]bool{"E13": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := engine.WriteCellsCSV(&out, rep); err != nil {
			t.Fatal(err)
		}
		if err := engine.WriteJSON(&out, rep); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if p1, p8 := emit(1), emit(8); !bytes.Equal(p1, p8) {
		t.Errorf("E13 emission differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", p1, p8)
	}
}

// BenchmarkEngineDefaultGrid measures the wall-clock time of the full
// default E1–E10 grid at increasing worker counts; on a multi-core
// machine the 8-worker run should be ≥3× faster than the 1-worker run.
// One iteration takes minutes, so run it as:
//
//	go test -bench EngineDefaultGrid -benchtime 1x ./internal/experiments/engine
func BenchmarkEngineDefaultGrid(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(engine.Config{Seed: 42, Repeats: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSmallGrid is the quick variant (sizes 4 and 8 only) for
// iterating on the engine itself.
func BenchmarkEngineSmallGrid(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := engine.Config{Seed: 42, Sizes: []int{4, 8}, Repeats: 1, Workers: workers}
				if _, err := engine.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParallelDeterminismE14 extends the determinism regression to the
// churn experiment: E14 cells crash members and adopt joiners
// mid-simulation (the paths most tempted to consult wall clocks or
// shared state), and their emissions must be byte-identical for any
// worker count.
func TestParallelDeterminismE14(t *testing.T) {
	emit := func(workers int) []byte {
		rep, err := engine.Run(engine.Config{
			Seed:    42,
			Sizes:   []int{1, 4},
			Repeats: 1,
			Workers: workers,
			Only:    map[string]bool{"E14": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := engine.WriteCellsCSV(&out, rep); err != nil {
			t.Fatal(err)
		}
		if err := engine.WriteJSON(&out, rep); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if p1, p8 := emit(1), emit(8); !bytes.Equal(p1, p8) {
		t.Errorf("E14 emission differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", p1, p8)
	}
}
