package experiments

import (
	"testing"

	"repro/internal/workload"
)

func requireValid(t *testing.T, s workload.Series) {
	t.Helper()
	if len(s.Rows) == 0 {
		t.Fatalf("%s: empty series", s.Name)
	}
	for _, r := range s.Rows {
		if !r.Valid {
			t.Errorf("%s: x=%d invalid (%s)", s.Name, r.X, r.Note)
		}
	}
	t.Log("\n" + s.Render())
}

var tinySizes = []int{4}

func TestE1(t *testing.T) { requireValid(t, E1DelicateLatency(101, tinySizes)) }
func TestE2(t *testing.T) { requireValid(t, E2BruteForceConvergence(102, tinySizes)) }
func TestE3(t *testing.T) { requireValid(t, E3SpuriousTriggers(103, tinySizes)) }

func TestE4(t *testing.T) {
	for _, s := range E4LabelCreations(104, tinySizes) {
		requireValid(t, s)
	}
}

func TestE5(t *testing.T) { requireValid(t, E5CounterIncrement(105, tinySizes)) }
func TestE6(t *testing.T) { requireValid(t, E6VSReconfiguration(106, []int{5})) }
func TestE7(t *testing.T) { requireValid(t, E7JoinLatency(107, tinySizes)) }

func TestE8(t *testing.T) {
	series := E8BaselineComparison(108, tinySizes)
	requireValid(t, series[0]) // ours must recover
	// The baseline must NOT recover: its rows are expected invalid.
	base := series[1]
	if len(base.Rows) == 0 {
		t.Fatal("baseline series empty")
	}
	for _, r := range base.Rows {
		if r.Valid {
			t.Errorf("baseline unexpectedly recovered at N=%d", r.X)
		}
	}
	t.Log("\n" + base.Render())
}

func TestE9(t *testing.T) { requireValid(t, E9SharedMemory(109, tinySizes)) }

func TestE10(t *testing.T) {
	for _, s := range E10Ablation(110, tinySizes) {
		requireValid(t, s)
	}
}
