package experiments

import (
	"testing"

	"repro/internal/workload"
)

func requireValid(t *testing.T, s workload.Series) {
	t.Helper()
	if len(s.Rows) == 0 {
		t.Fatalf("%s: empty series", s.Name)
	}
	for _, r := range s.Rows {
		if !r.Valid {
			t.Errorf("%s: x=%d invalid (%s)", s.Name, r.X, r.Note)
		}
	}
	t.Log("\n" + s.Render())
}

var tinySizes = []int{4}

func TestE1(t *testing.T) { requireValid(t, E1DelicateLatency(101, tinySizes)) }
func TestE2(t *testing.T) { requireValid(t, E2BruteForceConvergence(102, tinySizes)) }
func TestE3(t *testing.T) { requireValid(t, E3SpuriousTriggers(103, tinySizes)) }

func TestE4(t *testing.T) {
	for _, s := range E4LabelCreations(104, tinySizes) {
		requireValid(t, s)
	}
}

func TestE5(t *testing.T) { requireValid(t, E5CounterIncrement(105, tinySizes)) }
func TestE6(t *testing.T) { requireValid(t, E6VSReconfiguration(106, []int{5})) }
func TestE7(t *testing.T) { requireValid(t, E7JoinLatency(107, tinySizes)) }

func TestE8(t *testing.T) {
	series := E8BaselineComparison(108, tinySizes)
	requireValid(t, series[0]) // ours must recover
	// The baseline must NOT recover: its rows are expected invalid.
	base := series[1]
	if len(base.Rows) == 0 {
		t.Fatal("baseline series empty")
	}
	for _, r := range base.Rows {
		if r.Valid {
			t.Errorf("baseline unexpectedly recovered at N=%d", r.X)
		}
	}
	t.Log("\n" + base.Render())
}

func TestE9(t *testing.T) { requireValid(t, E9SharedMemory(109, tinySizes)) }

func TestE10(t *testing.T) {
	for _, s := range E10Ablation(110, tinySizes) {
		requireValid(t, s)
	}
}

func TestE11(t *testing.T) {
	for _, s := range E11ShardScaling(111, []int{1, 2}) {
		requireValid(t, s)
	}
}

func TestE12(t *testing.T) {
	for _, s := range E12BatchScaling(112, []int{1, 4}) {
		requireValid(t, s)
	}
}

func TestE13(t *testing.T) {
	for _, s := range E13PipeliningFrontier(113, []int{1, 2}) {
		requireValid(t, s)
	}
}

func TestE14(t *testing.T) {
	for _, s := range E14ChurnRecovery(114, []int{1, 4}) {
		requireValid(t, s)
	}
}

// TestE13PipeliningSpeedup is this tentpole's acceptance check: with the
// batch bound held at E12's knee (16) and the datalink window widened to
// let cycles restart on acknowledgment, aggregate write throughput on
// the 3-node cluster must reach at least 1.5× the stop-and-wait E12
// batch-16 baseline — in the deterministic simulator's virtual time, so
// the assertion is exact and reproducible. The codec series must also
// show the binary fast path strictly under gob's bytes per payload at
// every swept batch size.
func TestE13PipeliningSpeedup(t *testing.T) {
	base := E12BatchScaling(42, []int{16})[0]
	if len(base.Rows) != 1 || !base.Rows[0].Valid {
		t.Fatalf("bad E12 baseline: %+v", base.Rows)
	}
	series := E13PipeliningFrontier(42, []int{4})
	writes := series[0]
	if len(writes.Rows) != 1 || !writes.Rows[0].Valid {
		t.Fatalf("bad E13 window-4 row: %+v", writes.Rows)
	}
	b, w := base.Rows[0], writes.Rows[0]
	if w.Y < 1.5*b.Y {
		t.Fatalf("window-4 write throughput %.3f < 1.5× stop-and-wait batch-16 %.3f ops/kilotick", w.Y, b.Y)
	}
	t.Logf("write throughput: window 1 (E12) %.3f, window 4 %.3f ops/kilotick (%.2fx)",
		b.Y, w.Y, w.Y/b.Y)
	bin, gob := series[2], series[3]
	for i := range bin.Rows {
		if !bin.Rows[i].Valid || !gob.Rows[i].Valid {
			t.Fatalf("invalid codec rows: bin %+v, gob %+v", bin.Rows[i], gob.Rows[i])
		}
		if bin.Rows[i].Y >= gob.Rows[i].Y {
			t.Errorf("batch %d: binary %.1f bytes/payload not under gob %.1f",
				bin.Rows[i].X, bin.Rows[i].Y, gob.Rows[i].Y)
		}
	}
}

// TestE12BatchScalingSpeedup is this tentpole's acceptance check: with
// the hot path batching up to 16 payloads per token cycle (and commands
// per round), aggregate write throughput on the 3-node cluster must be
// at least 2× the unbatched baseline — in the deterministic simulator's
// virtual time, so the assertion is exact and reproducible.
func TestE12BatchScalingSpeedup(t *testing.T) {
	series := E12BatchScaling(42, []int{1, 16})
	writes := series[0]
	if len(writes.Rows) != 2 {
		t.Fatalf("want rows for batch 1 and 16, got %+v", writes.Rows)
	}
	one, sixteen := writes.Rows[0], writes.Rows[1]
	if !one.Valid || !sixteen.Valid {
		t.Fatalf("invalid rows: batch-1 %+v, batch-16 %+v", one, sixteen)
	}
	if sixteen.Y < 2*one.Y {
		t.Fatalf("batch-16 write throughput %.3f < 2× batch-1 %.3f ops/kilotick", sixteen.Y, one.Y)
	}
	t.Logf("write throughput: batch 1 %.3f, batch 16 %.3f ops/kilotick (%.2fx)",
		one.Y, sixteen.Y, sixteen.Y/one.Y)
}

// TestE11ShardScalingSpeedup is the tentpole's acceptance check: with
// the register namespace split over 4 shards, aggregate write
// throughput must be at least 2× the single-shard baseline (in the
// deterministic simulator's virtual time, so the assertion is exact and
// reproducible).
func TestE11ShardScalingSpeedup(t *testing.T) {
	series := E11ShardScaling(42, []int{1, 4})
	writes := series[0]
	if len(writes.Rows) != 2 {
		t.Fatalf("want rows for 1 and 4 shards, got %+v", writes.Rows)
	}
	one, four := writes.Rows[0], writes.Rows[1]
	if !one.Valid || !four.Valid {
		t.Fatalf("invalid rows: 1-shard %+v, 4-shard %+v", one, four)
	}
	if four.Y < 2*one.Y {
		t.Fatalf("4-shard write throughput %.3f < 2× 1-shard %.3f ops/kilotick", four.Y, one.Y)
	}
	t.Logf("write throughput: 1 shard %.3f, 4 shards %.3f ops/kilotick (%.2fx)",
		one.Y, four.Y, four.Y/one.Y)
}
