package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/transport/wire"
	"repro/internal/vs"
	"repro/internal/workload"
)

const deadline sim.Time = 400_000

// Each eNCell function below runs one (seed, size) cell of experiment EN:
// a fresh, fully self-contained simulation whose outcome depends only on
// its arguments. The engine fans cells out over a worker pool; the
// sequential wrappers in experiments.go sweep them over a size list.

// e1Cell measures Figure 2 / Theorem 3.16: the virtual time a delicate
// replacement takes from estab() to a system-wide installed
// configuration.
func e1Cell(seed int64, n int) workload.Row {
	c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	c.RunFor(800)
	target := ids.Range(1, ids.ID(n-1))
	start := c.Sched.Now()
	if !c.Node(1).Estab(target) {
		return workload.Row{X: n, Note: "estab rejected"}
	}
	ok := c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		return !(conv && cfg.Equal(target))
	}, 10_000_000)
	return workload.Row{X: n, Y: float64(c.Sched.Now() - start), Valid: ok, Note: "estab→installed"}
}

// e2Cell measures Theorem 3.15: virtual time to converge from a fully
// corrupted state (all layers randomized, stale packets in the channels).
func e2Cell(seed int64, n int) workload.Row {
	c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	c.RunFor(800)
	d, ok := workload.MeasureConvergence(c, 4*n, deadline)
	return workload.Row{X: n, Y: float64(d), Valid: ok, Note: "corrupt→converged"}
}

// e3Cell measures Lemma 3.18: reconfiguration triggerings caused by
// corrupted recMA flags, against the O(N²·cap) bound. Only the management
// layer is corrupted; recSA stays clean, so every triggering is
// attributable to stale flags.
func e3Cell(seed int64, n int) workload.Row {
	c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	c.RunFor(800)
	rng := c.Sched.Rand()
	c.EachAlive(func(node *core.Node) {
		node.MA.CorruptState(rng, c.IDs())
	})
	c.RunFor(20_000)
	total := uint64(0)
	c.EachAlive(func(node *core.Node) {
		m := node.MA.Metrics()
		total += m.TriggeredNoMaj + m.TriggeredPredict
	})
	bound := n * n * netsim.DefaultOptions().Capacity
	return workload.Row{X: n, Y: float64(total), Valid: int(total) <= bound,
		Note: fmt.Sprintf("bound N²·cap=%d", bound)}
}

// e4Labels is the shared E4 prelude: per-member label stores corrupted
// with wild labels, gossiped until agreement (Theorem 4.4). It returns
// the stores, membership, and the round count (-1 if no agreement).
// Both E4 arms run it from scratch — the postreco cell deliberately
// recomputes the arbitrary phase rather than sharing state with the
// arbitrary cell, keeping every grid cell independent (the property the
// engine's parallel fan-out and per-cell seeds rely on). E4 cells cost
// milliseconds, so the duplication is immaterial.
func e4Labels(seed int64, n int) (map[ids.ID]*label.Store, ids.Set, int) {
	const m = 8
	members := ids.Range(1, ids.ID(n))
	stores := make(map[ids.ID]*label.Store, n)
	members.Each(func(id ids.ID) {
		stores[id] = label.NewStore(id, members, label.DefaultStoreOptions(n, m))
	})
	rng := newRng(seed)
	members.Each(func(id ids.ID) {
		for k := 0; k < n; k++ {
			cr := ids.ID(rng.Intn(n) + 1)
			stores[id].InjectMax(cr, label.Pair{ML: label.Label{
				Creator: cr, Sting: rng.Intn(64),
				Antistings: []int{rng.Intn(64)},
			}})
		}
	})
	rounds := exchangeLabels(stores, members, 400)
	return stores, members, rounds
}

// e4ArbitraryCell counts label creations until a global maximal label
// from an arbitrary corrupted state (bound O(N(N²+m))).
func e4ArbitraryCell(seed int64, n int) workload.Row {
	const m = 8
	stores, members, rounds := e4Labels(seed, n)
	total := uint64(0)
	members.Each(func(id ids.ID) { total += stores[id].Metrics().Creations })
	return workload.Row{X: n, Y: float64(total), Valid: rounds >= 0,
		Note: fmt.Sprintf("bound N(N²+m)=%d", n*(n*n+m))}
}

// e4PostRebuildCell counts label creations to the next agreement right
// after a clean rebuild (bound O(N²)).
func e4PostRebuildCell(seed int64, n int) workload.Row {
	stores, members, _ := e4Labels(seed, n)
	members.Each(func(id ids.ID) { stores[id].Rebuild(members) })
	base := uint64(0)
	members.Each(func(id ids.ID) { base += stores[id].Metrics().Creations })
	exchangeLabels(stores, members, 400)
	total := uint64(0)
	members.Each(func(id ids.ID) { total += stores[id].Metrics().Creations })
	return workload.Row{X: n, Y: float64(total - base), Valid: true,
		Note: fmt.Sprintf("bound N²=%d", n*n)}
}

// e5Cell measures Theorem 4.6 operationally: virtual-time latency per
// completed counter increment.
func e5Cell(seed int64, n int) workload.Row {
	mgrs := map[ids.ID]*counter.Manager{}
	opts := core.DefaultClusterOptions(seed)
	opts.AppFactory = func(self ids.ID) core.App {
		m := counter.NewManager(self)
		mgrs[self] = m
		return m
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	c.RunFor(800)
	const opsWanted = 10
	start := c.Sched.Now()
	done := 0
	for i := 0; i < opsWanted; i++ {
		who := ids.ID(i%n + 1)
		op := mgrs[who].Increment(c.Node(who))
		if c.Sched.RunWhile(func() bool { return !op.Done() }, 4_000_000) {
			if _, err := op.Result(); err == nil {
				done++
			}
		}
	}
	elapsed := c.Sched.Now() - start
	if done == 0 {
		return workload.Row{X: n, Note: "no ops completed"}
	}
	return workload.Row{X: n, Y: float64(elapsed) / float64(done), Valid: done == opsWanted,
		Note: fmt.Sprintf("%d/%d ops", done, opsWanted)}
}

// countingApp is the replicated application used by E6.
type countingApp struct{ delivered int }

func (a *countingApp) InitState() any { return 0 }
func (a *countingApp) Apply(state any, r vs.Round) any {
	v, _ := state.(int)
	return v + len(r.Inputs)
}
func (a *countingApp) Fetch() any         { return "x" }
func (a *countingApp) Deliver(r vs.Round) { a.delivered++ }

// e6Cell measures Theorem 4.13: the service gap (virtual ticks without
// round progress) around a coordinator-led delicate reconfiguration, and
// whether the replica state survived.
func e6Cell(seed int64, n int) workload.Row {
	mgrs := map[ids.ID]*vs.Manager{}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	eval := func(cur ids.Set, trusted ids.Set) bool {
		return cur.Diff(trusted).Size() > 0
	}
	opts.AppFactory = func(self ids.ID) core.App {
		m := vs.NewManager(self, &countingApp{}, eval)
		mgrs[self] = m
		return m
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	// Wait for a first view and some rounds.
	ok := c.Sched.RunWhile(func() bool {
		_, has := mgrs[1].CurrentView()
		return !has
	}, 6_000_000)
	if !ok {
		return workload.Row{X: n, Note: "no initial view"}
	}
	c.RunFor(3000)
	state0, _ := mgrs[1].Replica().State.(int)
	// Crash the highest non-coordinator: evalConf starts firing.
	v, _ := mgrs[1].CurrentView()
	victim := ids.ID(n)
	if victim == v.Coordinator() {
		victim = ids.ID(n - 1)
	}
	c.Crash(victim)
	start := c.Sched.Now()
	ok = c.Sched.RunWhile(func() bool {
		cfg, conv := c.ConvergedConfig()
		if !conv || cfg.Contains(victim) {
			return true
		}
		good := true
		c.EachAlive(func(node *core.Node) {
			nv, has := mgrs[node.Self()].CurrentView()
			if !has || nv.Set.Contains(victim) {
				good = false
			}
		})
		return !good
	}, 20_000_000)
	gap := c.Sched.Now() - start
	state1, _ := mgrs[1].Replica().State.(int)
	preserved := state1 >= state0
	return workload.Row{X: n, Y: float64(gap), Valid: ok && preserved,
		Note: fmt.Sprintf("state %d→%d preserved=%v", state0, state1, preserved)}
}

// e7Cell measures Theorem 3.26: time for a joining processor to become a
// participant.
func e7Cell(seed int64, n int) workload.Row {
	c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	c.RunFor(800)
	j, err := c.AddJoiner(ids.ID(n + 10))
	if err != nil {
		return workload.Row{X: n, Note: "join: " + err.Error()}
	}
	start := c.Sched.Now()
	ok := c.Sched.RunWhile(func() bool { return !j.IsParticipant() }, 6_000_000)
	return workload.Row{X: n, Y: float64(c.Sched.Now() - start), Valid: ok, Note: "join→participant"}
}

// e8SelfStabCell measures recovery time of the self-stabilizing scheme
// after a transient fault (the paper's headline claim, §1).
func e8SelfStabCell(seed int64, n int) workload.Row {
	c, err := core.BootstrapCluster(n, core.DefaultClusterOptions(seed))
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	c.RunFor(800)
	d, ok := workload.MeasureConvergence(c, 2*n, deadline)
	return workload.Row{X: n, Y: float64(d), Valid: ok, Note: "corrupt→converged"}
}

// e8BaselineCell subjects the coherent-start baseline to the same fault:
// it stays split forever, reported as the deadline with Valid=false.
func e8BaselineCell(seed int64, n int) workload.Row {
	sched := sim.NewScheduler(seed)
	net := netsim.New(sched, netsim.DefaultOptions())
	bc, err := baseline.NewCluster(net, n)
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	sched.RunUntil(800)
	half := ids.Range(1, ids.ID(n/2))
	rest := ids.Range(ids.ID(n/2+1), ids.ID(n))
	for i := 1; i <= n; i++ {
		if i <= n/2 {
			bc.Node(ids.ID(i)).Corrupt(half, 7)
		} else {
			bc.Node(ids.ID(i)).Corrupt(rest, 7)
		}
	}
	start := sched.Now()
	recovered := false
	for sched.Now()-start < deadline {
		if _, ok := bc.Converged(); ok {
			recovered = true
			break
		}
		sched.RunUntil(sched.Now() + 1000)
	}
	return workload.Row{X: n, Y: float64(sched.Now() - start), Valid: recovered, Note: "split-brain"}
}

// e9Cell measures the MWMR register emulation's write latency.
func e9Cell(seed int64, n int) workload.Row {
	mems, c, err := memCluster(seed, n)
	if err != nil {
		return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
	}
	ok := c.Sched.RunWhile(func() bool {
		_, has := mems[1].VS().CurrentView()
		return !has
	}, 6_000_000)
	if !ok {
		return workload.Row{X: n, Note: "no view"}
	}
	const opsWanted = 8
	start := c.Sched.Now()
	done := 0
	for i := 0; i < opsWanted; i++ {
		who := ids.ID(i%n + 1)
		h := mems[who].Write("reg", fmt.Sprintf("v%d", i))
		if c.Sched.RunWhile(func() bool { return !h.Done() }, 4_000_000) {
			done++
		}
	}
	elapsed := c.Sched.Now() - start
	if done == 0 {
		return workload.Row{X: n, Note: "no ops"}
	}
	return workload.Row{X: n, Y: float64(elapsed) / float64(done), Valid: done == opsWanted,
		Note: fmt.Sprintf("%d/%d writes", done, opsWanted)}
}

// e11Cell builds one arm of E11 "shard scaling": aggregate register
// throughput on a fixed 3-node cluster whose register namespace is
// partitioned over the grid size — for this experiment the swept N is
// the SHARD count (1/2/4/8), not the cluster size. Every shard runs its
// own vs round pipeline over the shared reconfiguration layer, so the
// offered load (a fixed batch per shard, issued round-robin across the
// nodes) completes in roughly 1/N of the single-stack virtual time; the
// reported value is aggregate completed operations per kilotick (higher
// is better). The write arm measures register writes, the syncread arm
// marker-flushed synchronous reads.
func e11Cell(sync bool) func(seed int64, n int) workload.Row {
	return func(seed int64, n int) workload.Row {
		const nodes = 3
		const opsPerShard = 12
		maps, c, err := shardedMemCluster(seed, nodes, n)
		if err != nil {
			return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
		}
		allViews := func() bool {
			for id := ids.ID(1); id <= nodes; id++ {
				for s := 0; s < n; s++ {
					mem, err := maps[id].Mem(s)
					if err != nil {
						return false
					}
					if _, has := mem.VS().CurrentView(); !has {
						return false
					}
				}
			}
			return true
		}
		if !c.Sched.RunWhile(func() bool { return !allViews() }, 8_000_000) {
			return workload.Row{X: n, Note: "not every shard installed a view"}
		}
		names := shard.NamesPerShard(n, opsPerShard)
		var handles []*regmem.Handle
		start := c.Sched.Now()
		k := 0
		for s := 0; s < n; s++ {
			for i, name := range names[s] {
				who := ids.ID(k%nodes + 1)
				k++
				var h *regmem.Handle
				if sync {
					h, _ = maps[who].SyncRead(name)
				} else {
					h, _ = maps[who].Write(name, fmt.Sprintf("v%d", i))
				}
				handles = append(handles, h)
			}
		}
		ok := c.Sched.RunWhile(func() bool {
			for _, h := range handles {
				if !h.Done() {
					return true
				}
			}
			return false
		}, 8_000_000)
		elapsed := c.Sched.Now() - start
		done := 0
		for _, h := range handles {
			if h.Done() {
				done++
			}
		}
		if done == 0 || elapsed <= 0 {
			return workload.Row{X: n, Note: "no ops completed"}
		}
		return workload.Row{
			X:     n,
			Y:     float64(done) / float64(elapsed) * 1000,
			Valid: ok,
			Note:  fmt.Sprintf("%d/%d ops in %d ticks", done, len(handles), elapsed),
		}
	}
}

// e12Cell builds one arm of E12 "batch scaling": register throughput on
// a fixed 3-node single-shard cluster whose hot path batches up to the
// grid size — for this experiment the swept N is the BATCH bound
// (1/4/16/64): datalink.Options.MaxBatch payloads per token cycle and
// smr.Replica.MaxBatch commands per round input. The offered load (a
// fixed operation count issued round-robin across the nodes, the same
// at every batch size for comparability) completes in fewer multicast
// rounds as batches fill, so the reported aggregate ops/kilotick rises
// until the per-node backlog no longer fills a batch (the saturation
// knee between 16 and 64 on this workload); per-op latency is the
// reciprocal, giving the E9-style latency/throughput trade-off. Batch 1
// is bit-identical to the unbatched configuration (the determinism
// regression relies on it).
func e12Cell(sync bool) func(seed int64, n int) workload.Row {
	return func(seed int64, n int) workload.Row {
		const nodes = 3
		const opsTotal = 48
		mems, c, err := batchMemCluster(seed, nodes, n)
		if err != nil {
			return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
		}
		ok := c.Sched.RunWhile(func() bool {
			_, has := mems[1].VS().CurrentView()
			return !has
		}, 6_000_000)
		if !ok {
			return workload.Row{X: n, Note: "no view"}
		}
		var handles []*regmem.Handle
		start := c.Sched.Now()
		for i := 0; i < opsTotal; i++ {
			who := ids.ID(i%nodes + 1)
			var h *regmem.Handle
			if sync {
				h = mems[who].SyncRead(fmt.Sprintf("k%d", i))
			} else {
				h = mems[who].Write(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
			}
			handles = append(handles, h)
		}
		ok = c.Sched.RunWhile(func() bool {
			for _, h := range handles {
				if !h.Done() {
					return true
				}
			}
			return false
		}, 8_000_000)
		elapsed := c.Sched.Now() - start
		done := 0
		for _, h := range handles {
			if h.Done() {
				done++
			}
		}
		if done == 0 || elapsed <= 0 {
			return workload.Row{X: n, Note: "no ops completed"}
		}
		return workload.Row{
			X:     n,
			Y:     float64(done) / float64(elapsed) * 1000,
			Valid: ok,
			Note:  fmt.Sprintf("%d/%d ops in %d ticks", done, len(handles), elapsed),
		}
	}
}

// e13Cell builds one throughput arm of E13 "pipelining frontier":
// register write throughput on a fixed 3-node single-shard cluster with
// the hot-path batch bound held at 16 (E12's knee) while the swept N is
// the datalink WINDOW — the in-flight token cycles per link. Window 1
// with a static batch is bit-identical to the E12 batch-16 cell; wider
// windows restart the token cycle on acknowledgment instead of waiting
// out the full legacy exchange, so throughput rises with the window
// until the queue no longer keeps it full. The adaptive arm additionally
// sizes every batch from the queue-depth EWMA, trading peak batch fill
// for lower queueing delay at light load — together the two arms plus
// the codec-bytes series below chart the latency/throughput frontier's
// three levers (window, batch sizing, codec). The offered load doubles
// E12's (96 ops, issued round-robin) so the pipeline has a backlog to
// stream; throughput is still comparable since both experiments report
// steady-state aggregate ops/kilotick.
func e13Cell(adaptive bool) func(seed int64, n int) workload.Row {
	return func(seed int64, n int) workload.Row {
		const nodes = 3
		const batch = 16
		const opsTotal = 96
		mems, c, err := pipelinedMemCluster(seed, nodes, batch, n, adaptive)
		if err != nil {
			return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
		}
		ok := c.Sched.RunWhile(func() bool {
			_, has := mems[1].VS().CurrentView()
			return !has
		}, 6_000_000)
		if !ok {
			return workload.Row{X: n, Note: "no view"}
		}
		var handles []*regmem.Handle
		start := c.Sched.Now()
		for i := 0; i < opsTotal; i++ {
			who := ids.ID(i%nodes + 1)
			handles = append(handles, mems[who].Write(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)))
		}
		ok = c.Sched.RunWhile(func() bool {
			for _, h := range handles {
				if !h.Done() {
					return true
				}
			}
			return false
		}, 8_000_000)
		elapsed := c.Sched.Now() - start
		done := 0
		for _, h := range handles {
			if h.Done() {
				done++
			}
		}
		if done == 0 || elapsed <= 0 {
			return workload.Row{X: n, Note: "no ops completed"}
		}
		return workload.Row{
			X:     n,
			Y:     float64(done) / float64(elapsed) * 1000,
			Valid: ok,
			Note:  fmt.Sprintf("%d/%d ops in %d ticks", done, len(handles), elapsed),
		}
	}
}

// e13CodecCell is E13's codec lever, measured without a simulation: the
// steady-state encoded bytes per payload of one hot DATA packet carrying
// an N-payload batch of representative envelopes, under the binary fast
// path and under gob framing (wire.CodecSizes). The numbers are pure
// functions of the codec — deterministic across runs and machines — and
// chart how the binary encoding's fixed savings compound as batches
// amortize the packet header.
func e13CodecCell(binary bool) func(seed int64, n int) workload.Row {
	return func(seed int64, n int) workload.Row {
		batch := make([]any, n)
		for i := range batch {
			batch[i] = core.Envelope{
				App:       fmt.Sprintf("cmd-%03d", i),
				ShardApps: []core.ShardApp{{Shard: 1, App: fmt.Sprintf("s-%03d", i)}},
			}
		}
		pkt := datalink.Packet{Kind: datalink.KindData, Session: 7, Seq: 1, Batch: batch}
		binSize, gobSize, binOK := wire.CodecSizes(wire.NewMsg(1, 2, pkt))
		size, valid := gobSize, gobSize > 0
		if binary {
			size, valid = binSize, binOK
		}
		if !valid {
			return workload.Row{X: n, Note: "encoding failed"}
		}
		return workload.Row{
			X:     n,
			Y:     float64(size) / float64(n),
			Valid: true,
			Note:  fmt.Sprintf("%d bytes for %d payloads", size, n),
		}
	}
}

// e14Regs is the pre-churn register workload size shared by both E14
// profiles: enough writes to make state survival meaningful, few enough
// that the cell's cost is dominated by the churn event it measures.
const e14Regs = 8

// e14Seed seeds a churn cluster and completes the pre-churn register
// workload, returning the cluster handles and whether setup succeeded.
func e14Seed(seed int64, nodes, batch, window int) (map[ids.ID]*regmem.SharedMemory, *core.Cluster, string) {
	mems, c, err := churnMemCluster(seed, nodes, batch, window)
	if err != nil {
		return nil, nil, "bootstrap: " + err.Error()
	}
	ok := c.Sched.RunWhile(func() bool {
		_, has := mems[1].VS().CurrentView()
		return !has
	}, 6_000_000)
	if !ok {
		return nil, nil, "no initial view"
	}
	var handles []*regmem.Handle
	for i := 0; i < e14Regs; i++ {
		who := ids.ID(i%nodes + 1)
		handles = append(handles, mems[who].Write(fmt.Sprintf("r%d", i), fmt.Sprintf("v%d", i)))
	}
	ok = c.Sched.RunWhile(func() bool {
		for _, h := range handles {
			if !h.Done() {
				return true
			}
		}
		return false
	}, 8_000_000)
	if !ok {
		return nil, nil, "pre-churn writes incomplete"
	}
	return mems, c, ""
}

// e14PostWrite submits one fresh write and waits until it lands: the
// handle completes, or the value is readable from the local replica. The
// second arm matters under churn — a state adoption can jump the replica
// past the round that carried the command, losing the per-handle
// delivery indication while the write itself is durably applied (the
// same at-least-once hazard pkg/client documents); what the cell must
// assert is that the service resumed, not that no ack was lost.
func e14PostWrite(c *core.Cluster, mem *regmem.SharedMemory) bool {
	h := mem.Write("post", "1")
	return c.Sched.RunWhile(func() bool {
		if h.Done() {
			return false
		}
		got, has := mem.Read("post")
		return !(has && got == "1")
	}, 8_000_000)
}

// e14Survived reports whether every acked pre-churn write is still
// readable with its value on the given replica.
func e14Survived(mem *regmem.SharedMemory) bool {
	for i := 0; i < e14Regs; i++ {
		got, has := mem.Read(fmt.Sprintf("r%d", i))
		if !has || got != fmt.Sprintf("v%d", i) {
			return false
		}
	}
	return true
}

// e14KillCell is the E14 kill/recover profile: a 5-node churn cluster
// (the real membership eval, see churnMemCluster) completes a register
// workload, then the highest non-coordinator is crashed mid-service.
// The measured value is the virtual time from the crash to full
// recovery — configuration converged without the victim, every
// survivor's view excluding it — and validity additionally demands that
// every acked pre-kill write is still readable (Theorem 4.13's state
// preservation) and that a fresh post-recovery write completes (the
// service actually resumed). The swept N is the datalink WINDOW; batch
// is the arm's fixed hot-path bound, so the grid predicts how the live
// churn harness's recovery time moves with the transport levers.
func e14KillCell(batch int) func(seed int64, n int) workload.Row {
	return func(seed int64, n int) workload.Row {
		const nodes = 5
		mems, c, note := e14Seed(seed, nodes, batch, n)
		if note != "" {
			return workload.Row{X: n, Note: note}
		}
		v, _ := mems[1].VS().CurrentView()
		victim := ids.ID(nodes)
		if victim == v.Coordinator() {
			victim = ids.ID(nodes - 1)
		}
		c.Crash(victim)
		start := c.Sched.Now()
		ok := c.Sched.RunWhile(func() bool {
			cfg, conv := c.ConvergedConfig()
			if !conv || cfg.Contains(victim) {
				return true
			}
			good := true
			c.EachAlive(func(node *core.Node) {
				nv, has := mems[node.Self()].VS().CurrentView()
				if !has || nv.Set.Contains(victim) {
					good = false
				}
			})
			return !good
		}, 20_000_000)
		recovery := c.Sched.Now() - start
		survived := e14Survived(mems[1])
		resumed := e14PostWrite(c, mems[1])
		return workload.Row{X: n, Y: float64(recovery), Valid: ok && survived && resumed,
			Note: fmt.Sprintf("batch %d: acked survived=%v resumed=%v", batch, survived, resumed)}
	}
}

// e14JoinCell is the E14 joiner-adoption profile: a 3-node churn
// cluster completes a register workload, then a fresh processor joins
// through Algorithm 3.3 (join requests → majority pass → participate)
// and the coordinator extends the view around it. The measured value is
// the virtual time from the join start until the joiner is a
// participant inside a view containing it AND every acked pre-join
// write is readable from the joiner's own replica — the simnet twin of
// the live harness's "-members none process reaches serving with state
// intact". The swept N and the batch arm mirror the kill profile.
func e14JoinCell(batch int) func(seed int64, n int) workload.Row {
	return func(seed int64, n int) workload.Row {
		const nodes = 3
		mems, c, note := e14Seed(seed, nodes, batch, n)
		if note != "" {
			return workload.Row{X: n, Note: note}
		}
		jid := ids.ID(nodes + 10)
		j, err := c.AddJoiner(jid)
		if err != nil {
			return workload.Row{X: n, Note: "join: " + err.Error()}
		}
		start := c.Sched.Now()
		ok := c.Sched.RunWhile(func() bool {
			if !j.IsParticipant() {
				return true
			}
			jv, has := mems[jid].VS().CurrentView()
			if !has || !jv.Set.Contains(jid) {
				return true
			}
			return !e14Survived(mems[jid])
		}, 20_000_000)
		adopt := c.Sched.Now() - start
		serving := e14PostWrite(c, mems[jid])
		return workload.Row{X: n, Y: float64(adopt), Valid: ok && serving,
			Note: fmt.Sprintf("batch %d: adopted state, serving=%v", batch, serving)}
	}
}

// e10Cell builds the cell function for one degree-gap arm of the E10
// ablation (DESIGN.md §4 note 5): delicate replacement latency and
// spurious resets under the given staleness tolerance.
func e10Cell(gap int) func(seed int64, n int) workload.Row {
	return func(seed int64, n int) workload.Row {
		opts := core.DefaultClusterOptions(seed)
		opts.Node.RecSA = recsa.Options{DegreeGap: gap}
		c, err := core.BootstrapCluster(n, opts)
		if err != nil {
			return workload.Row{X: n, Note: "bootstrap: " + err.Error()}
		}
		c.RunFor(800)
		target := ids.Range(1, ids.ID(n-1))
		start := c.Sched.Now()
		c.Node(1).Estab(target)
		ok := c.Sched.RunWhile(func() bool {
			cfg, conv := c.ConvergedConfig()
			return !(conv && cfg.Equal(target))
		}, 10_000_000)
		resets := uint64(0)
		c.EachAlive(func(node *core.Node) { resets += node.SA.Metrics().Resets })
		return workload.Row{X: n, Y: float64(c.Sched.Now() - start), Valid: ok,
			Note: fmt.Sprintf("spurious resets=%d", resets)}
	}
}
