package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/label"
	"repro/internal/regmem"
	"repro/internal/shard"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// exchangeLabels runs synchronous label gossip rounds until all stores
// agree on one legit maximum (returning the round count) or maxRounds pass
// (returning -1).
func exchangeLabels(stores map[ids.ID]*label.Store, members ids.Set, maxRounds int) int {
	agreed := func() bool {
		var max label.Label
		first, ok := true, true
		members.Each(func(id ids.ID) {
			p, has := stores[id].LocalMax()
			if !has || !p.Legit() {
				ok = false
				return
			}
			if first {
				max, first = p.ML, false
			} else if !max.Equal(p.ML) {
				ok = false
			}
		})
		return ok && !first
	}
	for r := 0; r < maxRounds; r++ {
		if agreed() {
			return r
		}
		type msg struct {
			from, to           ids.ID
			sent, last         label.Pair
			haveSent, haveLast bool
		}
		var msgs []msg
		members.Each(func(from ids.ID) {
			s := stores[from]
			members.Each(func(to ids.ID) {
				if to == from {
					return
				}
				m := msg{from: from, to: to}
				m.sent, m.haveSent = s.LocalMax()
				m.last, m.haveLast = s.MaxOf(to)
				msgs = append(msgs, m)
			})
		})
		for _, m := range msgs {
			stores[m.to].Receive(m.sent, m.haveSent, m.last, m.haveLast, m.from)
		}
	}
	if agreed() {
		return maxRounds
	}
	return -1
}

// memCluster builds a shared-memory cluster for E9.
func memCluster(seed int64, n int) (map[ids.ID]*regmem.SharedMemory, *core.Cluster, error) {
	return batchMemCluster(seed, n, 1)
}

// batchMemCluster builds a shared-memory cluster whose hot path batches
// up to `batch` payloads per datalink token and commands per round
// input (E12; batch 1 is exactly the unbatched E9 configuration).
func batchMemCluster(seed int64, n, batch int) (map[ids.ID]*regmem.SharedMemory, *core.Cluster, error) {
	return pipelinedMemCluster(seed, n, batch, 1, false)
}

// pipelinedMemCluster builds a shared-memory cluster with the full
// hot-path lever set: up to `batch` payloads per datalink token cycle
// and commands per round input, up to `window` token cycles in flight
// per link, and — with adaptive — batch sizing from the queue-depth
// EWMA instead of the static bound (E13; window 1 with static batch is
// exactly the E12 configuration).
func pipelinedMemCluster(seed int64, n, batch, window int, adaptive bool) (map[ids.ID]*regmem.SharedMemory, *core.Cluster, error) {
	mems := map[ids.ID]*regmem.SharedMemory{}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.Node.Link.MaxBatch = batch
	opts.Node.Link.Window = window
	opts.Node.Link.AdaptiveBatch = adaptive
	opts.AppFactory = func(self ids.ID) core.App {
		s := regmem.New(self, nil)
		s.SetMaxBatch(batch)
		s.SetAdaptiveBatch(adaptive)
		mems[self] = s
		return s
	}
	c, err := core.BootstrapCluster(n, opts)
	return mems, c, err
}

// churnMemCluster builds the E14 cluster: a shared-memory stack per
// node whose vs layer runs the real membership eval — a configuration
// member leaving the trusted set triggers the coordinator-led delicate
// reconfiguration, exactly the noded wiring — unlike the throughput
// clusters' frozen eval. Churn is the point here: crash cells need the
// reconfiguration to fire, join cells need the view to follow the
// participant set.
func churnMemCluster(seed int64, n, batch, window int) (map[ids.ID]*regmem.SharedMemory, *core.Cluster, error) {
	mems := map[ids.ID]*regmem.SharedMemory{}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.Node.Link.MaxBatch = batch
	opts.Node.Link.Window = window
	eval := func(cur ids.Set, trusted ids.Set) bool {
		return cur.Diff(trusted).Size() > 0
	}
	opts.AppFactory = func(self ids.ID) core.App {
		s := regmem.New(self, eval)
		s.SetMaxBatch(batch)
		mems[self] = s
		return s
	}
	c, err := core.BootstrapCluster(n, opts)
	return mems, c, err
}

// shardedMemCluster builds an E11 cluster: nodes processors, each
// hosting one register stack per shard on a singleton reconfiguration
// layer.
func shardedMemCluster(seed int64, nodes, shards int) (map[ids.ID]*shard.Map, *core.Cluster, error) {
	maps := map[ids.ID]*shard.Map{}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.AppsFactory = func(self ids.ID) []core.App {
		m := shard.New(self, shards, nil)
		maps[self] = m
		return m.Apps()
	}
	c, err := core.BootstrapCluster(nodes, opts)
	return maps, c, err
}
