// Package join implements Algorithm 3.3 of the paper, the self-stabilizing
// Joining Mechanism. A joining processor repeatedly asks the configuration
// members for permission; each member answers with the application's
// passQuery() verdict and its current application state. Once a majority of
// the configuration has granted a pass — and no reconfiguration is taking
// place — the joiner initializes its application variables from the
// collected states and becomes a participant via recSA's participate().
//
// The critical invariant (Lemma 3.25): a joiner can never contaminate the
// system with stale information, because it resets its application state on
// entry, communicates over freshly cleaned data links, and only adopts
// state acknowledged by a configuration majority.
package join

import (
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/recsa"
)

// StabilityAssurance is the recSA interface the joining mechanism uses.
type StabilityAssurance interface {
	NoReco() bool
	GetConfig() recsa.Config
	Participate() bool
	IsParticipant() bool
}

// App is the application hook. PassQuery is the member-side admission
// decision; ResetVars/InitVars are the joiner-side state management.
type App interface {
	// PassQuery reports whether the application admits a new joiner.
	PassQuery(joiner ids.ID) bool
	// AppState returns this member's current application state snapshot.
	AppState() any
	// ResetVars resets the joiner's application variables to defaults.
	ResetVars()
	// InitVars initializes the joiner's application variables from the
	// states collected from a majority of configuration members.
	InitVars(states map[ids.ID]any)
}

// NopApp is an App that admits everybody and has no state; useful for
// tests and for systems whose state lives entirely above the join layer.
type NopApp struct{}

// PassQuery implements App.
func (NopApp) PassQuery(ids.ID) bool { return true }

// AppState implements App.
func (NopApp) AppState() any { return nil }

// ResetVars implements App.
func (NopApp) ResetVars() {}

// InitVars implements App.
func (NopApp) InitVars(map[ids.ID]any) {}

// Request is the joiner's "Join" message.
type Request struct{}

// Response is a member's reply: the pass verdict plus its application state.
type Response struct {
	Pass  bool
	State any
}

// Metrics is a snapshot of the join-protocol event counters.
type Metrics struct {
	Requests  uint64
	Responses uint64
	Joined    uint64
	Denied    uint64
}

// metricsCounters are the live counters behind Metrics, atomic so a
// concurrent /metrics scrape reads them while the node ticks (the same
// discipline as vs.metricsCounters).
type metricsCounters struct {
	requests  atomic.Uint64
	responses atomic.Uint64
	joined    atomic.Uint64
	denied    atomic.Uint64
}

func (c *metricsCounters) snapshot() Metrics {
	return Metrics{
		Requests:  c.requests.Load(),
		Responses: c.responses.Load(),
		Joined:    c.joined.Load(),
		Denied:    c.denied.Load(),
	}
}

// Joiner is the per-processor joining state machine. Participants run it
// too (they answer requests); only non-participants execute the joining
// loop.
type Joiner struct {
	self ids.ID
	sa   StabilityAssurance
	app  App

	pass   map[ids.ID]bool
	states map[ids.ID]any

	wasParticipant bool
	metrics        metricsCounters
}

// New constructs the joining mechanism. app may be nil (NopApp).
func New(self ids.ID, sa StabilityAssurance, app App) *Joiner {
	if app == nil {
		app = NopApp{}
	}
	return &Joiner{
		self:   self,
		sa:     sa,
		app:    app,
		pass:   make(map[ids.ID]bool),
		states: make(map[ids.ID]any),
	}
}

// Metrics returns a snapshot of the counters. It is safe to call
// concurrently with the protocol handlers.
func (j *Joiner) Metrics() Metrics { return j.metrics.snapshot() }

// Step executes one iteration of the joiner loop. It returns the set of
// processors to which a Join request should be sent this round (empty for
// participants).
func (j *Joiner) Step(trusted ids.Set) ids.Set {
	if j.sa.IsParticipant() {
		if !j.wasParticipant {
			// Reset collected passes so a later demotion (only
			// possible through a transient fault) starts clean.
			j.pass = make(map[ids.ID]bool)
			j.states = make(map[ids.ID]any)
		}
		j.wasParticipant = true
		return ids.Set{}
	}
	if j.wasParticipant {
		// Demoted (transient fault): restart the join procedure with a
		// clean application state (line 7, resetVars()).
		j.wasParticipant = false
		j.app.ResetVars()
		j.pass = make(map[ids.ID]bool)
		j.states = make(map[ids.ID]any)
	}

	conf := j.sa.GetConfig()
	if conf.Kind == recsa.KindSet && !conf.Set.Empty() && j.sa.NoReco() {
		granted := 0
		conf.Set.Each(func(k ids.ID) {
			if j.pass[k] {
				granted++
			}
		})
		if granted >= conf.Set.MajoritySize() {
			// Line 10–12: majority pass and no reconfiguration —
			// adopt the majority's state and become a participant.
			j.app.InitVars(j.collectedStates(conf.Set))
			if j.sa.Participate() {
				j.metrics.joined.Add(1)
				j.wasParticipant = true
				return ids.Set{}
			}
			j.metrics.denied.Add(1)
		}
	}

	j.metrics.requests.Add(1)
	return trusted.Remove(j.self)
}

func (j *Joiner) collectedStates(conf ids.Set) map[ids.ID]any {
	out := make(map[ids.ID]any, len(j.states))
	for id, st := range j.states {
		if conf.Contains(id) {
			out[id] = st
		}
	}
	return out
}

// HandleRequest processes a peer's Join request on the member side
// (lines 15–16). It returns the response to send, or ok=false when this
// processor must not answer (not a configuration member, or a
// reconfiguration is in progress — in which case previously granted passes
// are implicitly retracted because the joiner keeps polling).
func (j *Joiner) HandleRequest(from ids.ID) (Response, bool) {
	conf := j.sa.GetConfig()
	if conf.Kind != recsa.KindSet || !conf.Set.Contains(j.self) || !j.sa.NoReco() {
		return Response{}, false
	}
	j.metrics.responses.Add(1)
	return Response{Pass: j.app.PassQuery(from), State: j.app.AppState()}, true
}

// HandleResponse stores a member's pass verdict on the joiner side
// (lines 17–18). Participants ignore responses.
func (j *Joiner) HandleResponse(from ids.ID, r Response) {
	if j.sa.IsParticipant() {
		return
	}
	j.pass[from] = r.Pass
	j.states[from] = r.State
}
