package join

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/recsa"
)

type fakeSA struct {
	noReco       bool
	config       recsa.Config
	participant  bool
	participated int
	refuse       bool
}

func (f *fakeSA) NoReco() bool            { return f.noReco }
func (f *fakeSA) GetConfig() recsa.Config { return f.config }
func (f *fakeSA) IsParticipant() bool     { return f.participant }
func (f *fakeSA) Participate() bool {
	if f.refuse {
		return false
	}
	f.participated++
	f.participant = true
	return true
}

type recordingApp struct {
	admits  bool
	state   any
	resets  int
	inits   []map[ids.ID]any
	queried []ids.ID
}

func (a *recordingApp) PassQuery(j ids.ID) bool { a.queried = append(a.queried, j); return a.admits }
func (a *recordingApp) AppState() any           { return a.state }
func (a *recordingApp) ResetVars()              { a.resets++ }
func (a *recordingApp) InitVars(s map[ids.ID]any) {
	a.inits = append(a.inits, s)
}

func steady(conf ids.Set) *fakeSA {
	return &fakeSA{noReco: true, config: recsa.ConfigOf(conf)}
}

func TestParticipantSendsNoRequests(t *testing.T) {
	sa := steady(ids.Range(1, 3))
	sa.participant = true
	j := New(1, sa, nil)
	if got := j.Step(ids.Range(1, 3)); !got.Empty() {
		t.Fatalf("participant polled %v", got)
	}
}

func TestJoinerPollsTrusted(t *testing.T) {
	sa := steady(ids.Range(1, 3))
	j := New(9, sa, nil)
	got := j.Step(ids.Range(1, 3).Add(9))
	if !got.Equal(ids.Range(1, 3)) {
		t.Fatalf("poll set = %v", got)
	}
	if j.Metrics().Requests != 1 {
		t.Fatal("request not counted")
	}
}

func TestMajorityPassAdmits(t *testing.T) {
	conf := ids.Range(1, 5)
	sa := steady(conf)
	app := &recordingApp{}
	j := New(9, sa, app)
	j.Step(conf.Add(9))
	j.HandleResponse(1, Response{Pass: true, State: "s1"})
	j.HandleResponse(2, Response{Pass: true, State: "s2"})
	j.Step(conf.Add(9)) // 2 of 5: not yet
	if sa.participated != 0 {
		t.Fatal("admitted without majority")
	}
	j.HandleResponse(3, Response{Pass: true, State: "s3"})
	j.Step(conf.Add(9)) // 3 of 5: majority
	if sa.participated != 1 {
		t.Fatal("not admitted with majority")
	}
	if j.Metrics().Joined != 1 {
		t.Fatal("join not counted")
	}
	if len(app.inits) != 1 {
		t.Fatalf("InitVars calls = %d, want 1", len(app.inits))
	}
	if app.inits[0][2] != "s2" {
		t.Fatalf("collected states = %v", app.inits[0])
	}
}

func TestPassesFromNonMembersIgnored(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	j := New(9, sa, nil)
	// Passes from processors outside the configuration must not count.
	j.HandleResponse(7, Response{Pass: true})
	j.HandleResponse(8, Response{Pass: true})
	j.HandleResponse(1, Response{Pass: true})
	j.Step(conf.Add(9))
	if sa.participated != 0 {
		t.Fatal("non-member passes counted toward majority")
	}
}

func TestNoJoinDuringReconfiguration(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	sa.noReco = false
	j := New(9, sa, nil)
	for _, m := range conf.Members() {
		j.HandleResponse(m, Response{Pass: true})
	}
	j.Step(conf.Add(9))
	if sa.participated != 0 {
		t.Fatal("joined during reconfiguration")
	}
}

func TestParticipateRefusalCountsDenied(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	sa.refuse = true
	j := New(9, sa, nil)
	for _, m := range conf.Members() {
		j.HandleResponse(m, Response{Pass: true})
	}
	j.Step(conf.Add(9))
	if j.Metrics().Denied != 1 {
		t.Fatal("denial not counted")
	}
}

func TestMemberAnswersRequests(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	sa.participant = true
	app := &recordingApp{admits: true, state: "snapshot"}
	j := New(1, sa, app)
	resp, ok := j.HandleRequest(9)
	if !ok || !resp.Pass || resp.State != "snapshot" {
		t.Fatalf("response = %+v ok=%v", resp, ok)
	}
	if len(app.queried) != 1 || app.queried[0] != 9 {
		t.Fatalf("passQuery calls = %v", app.queried)
	}
}

func TestNonMemberDoesNotAnswer(t *testing.T) {
	conf := ids.NewSet(2, 3, 4) // p1 not a member
	sa := steady(conf)
	sa.participant = true
	j := New(1, sa, &recordingApp{admits: true})
	if _, ok := j.HandleRequest(9); ok {
		t.Fatal("non-member answered a join request")
	}
}

func TestMemberSilentDuringReconfiguration(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	sa.participant = true
	sa.noReco = false
	j := New(1, sa, &recordingApp{admits: true})
	if _, ok := j.HandleRequest(9); ok {
		t.Fatal("member answered during reconfiguration")
	}
}

func TestApplicationDenialBlocksJoin(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	sa.participant = true
	app := &recordingApp{admits: false}
	j := New(1, sa, app)
	resp, ok := j.HandleRequest(9)
	if !ok || resp.Pass {
		t.Fatal("application denial not propagated")
	}
}

func TestDemotionResetsState(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	sa.participant = true
	app := &recordingApp{}
	j := New(9, sa, app)
	j.Step(conf) // participant: records wasParticipant
	// Transient fault demotes the processor.
	sa.participant = false
	j.Step(conf)
	if app.resets != 1 {
		t.Fatalf("ResetVars calls = %d, want 1", app.resets)
	}
}

func TestResponsesIgnoredByParticipants(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	sa.participant = true
	j := New(1, sa, nil)
	j.HandleResponse(2, Response{Pass: true})
	if len(j.pass) != 0 {
		t.Fatal("participant stored a pass")
	}
}

func TestRetractedPassBlocksJoin(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	sa := steady(conf)
	j := New(9, sa, nil)
	j.HandleResponse(1, Response{Pass: true})
	j.HandleResponse(2, Response{Pass: true})
	// p2 retracts (e.g., a reconfiguration started and was answered with
	// a denial).
	j.HandleResponse(2, Response{Pass: false})
	j.Step(conf.Add(9))
	if sa.participated != 0 {
		t.Fatal("joined with a retracted pass")
	}
}

func TestNopApp(t *testing.T) {
	var a NopApp
	if !a.PassQuery(1) {
		t.Fatal("NopApp must admit")
	}
	if a.AppState() != nil {
		t.Fatal("NopApp state must be nil")
	}
	a.ResetVars()
	a.InitVars(nil)
}
