package recma

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
	"repro/internal/recsa"
)

// fakeSA is a scripted StabilityAssurance.
type fakeSA struct {
	noReco      bool
	config      recsa.Config
	part        ids.Set
	participant bool
	estabCalls  []ids.Set
	estabOK     bool
}

func (f *fakeSA) NoReco() bool            { return f.noReco }
func (f *fakeSA) GetConfig() recsa.Config { return f.config }
func (f *fakeSA) Participants() ids.Set   { return f.part }
func (f *fakeSA) IsParticipant() bool     { return f.participant }
func (f *fakeSA) Estab(set ids.Set) bool {
	f.estabCalls = append(f.estabCalls, set)
	return f.estabOK
}

type fakeFD ids.Set

func (f fakeFD) Trusted() ids.Set { return ids.Set(f) }

func allKnown(part ids.Set) Views {
	return func(ids.ID) (ids.Set, bool) { return part, true }
}

func steadyFake(conf ids.Set, part ids.Set) *fakeSA {
	return &fakeSA{
		noReco:      true,
		config:      recsa.ConfigOf(conf),
		part:        part,
		participant: true,
		estabOK:     true,
	}
}

func TestDefaultEvalConf(t *testing.T) {
	cur := ids.Range(1, 8)
	tests := []struct {
		trusted ids.Set
		want    bool
	}{
		{ids.Range(1, 8), false}, // nobody missing
		{ids.Range(1, 7), false}, // 1/8 missing: below quarter
		{ids.Range(1, 6), false}, // exactly a quarter: not strictly more
		{ids.Range(1, 5), true},  // 3/8 missing
		{ids.Range(1, 2), true},
	}
	for _, tt := range tests {
		if got := DefaultEvalConf(cur, tt.trusted); got != tt.want {
			t.Errorf("trusted=%v: got %v, want %v", tt.trusted, got, tt.want)
		}
	}
	if DefaultEvalConf(ids.Set{}, ids.Set{}) {
		t.Error("empty config must not request reconfiguration")
	}
}

func TestNonParticipantDoesNothing(t *testing.T) {
	sa := steadyFake(ids.Range(1, 3), ids.Range(1, 3))
	sa.participant = false
	m := New(1, sa, fakeFD(ids.Range(1, 3)), nil)
	msg := m.Step(allKnown(ids.Range(1, 3)))
	if msg.NoMaj || msg.NeedReconf || len(sa.estabCalls) != 0 {
		t.Fatal("non-participant acted")
	}
}

func TestMajorityPresentNoTrigger(t *testing.T) {
	conf := ids.Range(1, 5)
	sa := steadyFake(conf, conf)
	m := New(1, sa, fakeFD(conf), func(ids.Set, ids.Set) bool { return false })
	for i := 0; i < 10; i++ {
		m.Step(allKnown(conf))
	}
	if len(sa.estabCalls) != 0 {
		t.Fatalf("triggered with full majority: %v", sa.estabCalls)
	}
}

func TestMajorityLossTriggersWithCoreAgreement(t *testing.T) {
	conf := ids.Range(1, 5)
	alive := ids.NewSet(1, 2)
	sa := steadyFake(conf, alive)
	m := New(1, sa, fakeFD(alive), func(ids.Set, ids.Set) bool { return false })

	// First step: local noMaj set, but the core's (p2's) flag is unknown.
	msg := m.Step(allKnown(alive))
	if !msg.NoMaj {
		t.Fatal("noMaj not detected")
	}
	if len(sa.estabCalls) != 0 {
		t.Fatal("triggered without core agreement")
	}
	// p2 reports noMaj too: now the whole core agrees.
	m.HandleMessage(2, Message{NoMaj: true})
	m.Step(allKnown(alive))
	if len(sa.estabCalls) != 1 {
		t.Fatalf("estab calls = %v, want 1", sa.estabCalls)
	}
	if !sa.estabCalls[0].Equal(alive) {
		t.Fatalf("proposed %v, want %v", sa.estabCalls[0], alive)
	}
}

func TestMajoritySupportiveCoreBlocksTrigger(t *testing.T) {
	// Definition 3.2: one core member that still sees a majority
	// (noMaj=false) must prevent the trigger.
	conf := ids.Range(1, 5)
	alive := ids.NewSet(1, 2)
	sa := steadyFake(conf, alive)
	m := New(1, sa, fakeFD(alive), func(ids.Set, ids.Set) bool { return false })
	m.Step(allKnown(alive))
	m.HandleMessage(2, Message{NoMaj: false})
	for i := 0; i < 5; i++ {
		m.Step(allKnown(alive))
	}
	if len(sa.estabCalls) != 0 {
		t.Fatal("triggered despite a supportive core member")
	}
}

func TestSingletonCoreNeverTriggers(t *testing.T) {
	// |core| > 1 is required: a lone processor cannot trigger.
	conf := ids.Range(1, 5)
	alive := ids.NewSet(1)
	sa := steadyFake(conf, alive)
	m := New(1, sa, fakeFD(alive), func(ids.Set, ids.Set) bool { return false })
	for i := 0; i < 5; i++ {
		m.Step(allKnown(alive))
	}
	if len(sa.estabCalls) != 0 {
		t.Fatal("singleton core triggered")
	}
}

func TestPredictionPathNeedsMajority(t *testing.T) {
	conf := ids.Range(1, 5)
	sa := steadyFake(conf, conf)
	m := New(1, sa, fakeFD(conf), func(ids.Set, ids.Set) bool { return true })

	m.Step(allKnown(conf)) // local needReconf only: 1 of 5
	if len(sa.estabCalls) != 0 {
		t.Fatal("triggered without member majority")
	}
	m.HandleMessage(2, Message{NeedReconf: true})
	m.Step(allKnown(conf)) // 2 of 5: still no
	if len(sa.estabCalls) != 0 {
		t.Fatal("triggered with 2/5")
	}
	m.HandleMessage(3, Message{NeedReconf: true})
	m.Step(allKnown(conf)) // 3 of 5: majority
	if len(sa.estabCalls) != 1 {
		t.Fatalf("estab calls = %d, want 1", len(sa.estabCalls))
	}
	if m.Metrics().TriggeredPredict != 1 {
		t.Fatal("prediction trigger not counted")
	}
}

func TestFlagsFlushedAfterTrigger(t *testing.T) {
	conf := ids.Range(1, 3)
	sa := steadyFake(conf, conf)
	m := New(1, sa, fakeFD(conf), func(ids.Set, ids.Set) bool { return true })
	m.HandleMessage(2, Message{NeedReconf: true})
	m.Step(allKnown(conf))
	if len(sa.estabCalls) != 1 {
		t.Fatalf("no trigger: %v", sa.estabCalls)
	}
	// Flags were flushed: without fresh reports, no second trigger even
	// though evalConf still says true.
	m.Step(allKnown(conf))
	if len(sa.estabCalls) != 1 {
		t.Fatal("re-triggered from flushed flags")
	}
}

func TestNoTriggerDuringReconfiguration(t *testing.T) {
	conf := ids.Range(1, 3)
	sa := steadyFake(conf, ids.NewSet(1))
	sa.noReco = false
	m := New(1, sa, fakeFD(ids.NewSet(1)), func(ids.Set, ids.Set) bool { return true })
	m.HandleMessage(2, Message{NoMaj: true, NeedReconf: true})
	m.HandleMessage(3, Message{NoMaj: true, NeedReconf: true})
	for i := 0; i < 5; i++ {
		m.Step(allKnown(ids.NewSet(1)))
	}
	if len(sa.estabCalls) != 0 {
		t.Fatal("triggered while reconfiguration in progress")
	}
}

func TestConfigChangeFlushesFlags(t *testing.T) {
	confA := ids.Range(1, 3)
	sa := steadyFake(confA, confA)
	m := New(1, sa, fakeFD(confA), func(ids.Set, ids.Set) bool { return false })
	m.HandleMessage(2, Message{NoMaj: true, NeedReconf: true})
	m.Step(allKnown(confA))
	// Configuration changes: stale flags must be dropped (line 9).
	sa.config = recsa.ConfigOf(ids.Range(1, 4))
	m.Step(allKnown(confA))
	if m.noMaj[2] || m.needReconf[2] {
		t.Fatal("stale flags survived a configuration change")
	}
}

func TestStaleFlagsCauseBoundedTriggers(t *testing.T) {
	// Lemma 3.18: corrupted flags can cause at most a bounded number of
	// triggerings; after the flush they are gone.
	conf := ids.Range(1, 4)
	sa := steadyFake(conf, conf)
	m := New(1, sa, fakeFD(conf), func(ids.Set, ids.Set) bool { return false })
	rng := rand.New(rand.NewSource(3))
	m.CorruptState(rng, conf)
	for id := ids.ID(1); id <= 4; id++ {
		m.noMaj[id] = true
		m.needReconf[id] = true
	}
	triggersBefore := func() uint64 {
		mm := m.Metrics()
		return mm.TriggeredNoMaj + mm.TriggeredPredict
	}
	for i := 0; i < 20; i++ {
		m.Step(allKnown(conf))
	}
	got := triggersBefore()
	if got > 1 {
		t.Fatalf("stale local flags caused %d triggers, want ≤ 1", got)
	}
}

func TestHandleMessageIgnoredByNonParticipant(t *testing.T) {
	sa := steadyFake(ids.Range(1, 3), ids.Range(1, 3))
	sa.participant = false
	m := New(1, sa, fakeFD(ids.Range(1, 3)), nil)
	m.HandleMessage(2, Message{NoMaj: true})
	if m.noMaj[2] {
		t.Fatal("non-participant stored flags")
	}
}

func TestCoreComputation(t *testing.T) {
	part := ids.Range(1, 4)
	sa := steadyFake(ids.Range(1, 4), part)
	m := New(1, sa, fakeFD(part), nil)
	views := func(j ids.ID) (ids.Set, bool) {
		switch j {
		case 1, 2:
			return ids.Range(1, 4), true
		case 3:
			return ids.NewSet(1, 3), true
		default:
			return ids.Set{}, false // p4 unknown: skipped
		}
	}
	got := m.coreSet(part, views)
	if !got.Equal(ids.NewSet(1, 3)) {
		t.Fatalf("core = %v, want {p1,p3}", got)
	}
}
