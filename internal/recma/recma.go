// Package recma implements Algorithm 3.2 of the paper, the Reconfiguration
// Management layer: it decides *when* a reconfiguration should happen and
// triggers the recSA layer's estab() interface, while recSA owns the
// replacement process itself.
//
// A reconfiguration is triggered in two cases: (i) the configuration's
// majority appears lost — guarded by the majority-supportive-core
// assumption (Definition 3.2) so that a single inaccurate failure detector
// cannot trigger unilaterally — or (ii) an application-supplied prediction
// function evalConf() tells a majority of configuration members that the
// configuration should be replaced (e.g., a quarter of its members look
// crashed). Both paths reset the exchanged flag arrays immediately after
// triggering so the same event cannot re-trigger, bounding the number of
// stale-information-induced triggerings by O(N²·cap) (Lemma 3.18).
package recma

import (
	"math/rand"

	"repro/internal/ids"
	"repro/internal/quorum"
	"repro/internal/recsa"
)

// StabilityAssurance is the interface recMA needs from the recSA layer.
type StabilityAssurance interface {
	NoReco() bool
	GetConfig() recsa.Config
	Estab(set ids.Set) bool
	Participants() ids.Set
	IsParticipant() bool
}

// FDSource supplies the trusted set; identical to recsa.FDSource.
type FDSource interface {
	Trusted() ids.Set
}

// EvalConf is the application-defined prediction function: it returns true
// when the given current configuration should be replaced. The paper treats
// it as a black box; DefaultEvalConf reconfigures once a quarter of the
// members look crashed.
type EvalConf func(cur ids.Set, trusted ids.Set) bool

// DefaultEvalConf requests a reconfiguration once strictly more than a
// quarter of the configuration members are no longer trusted (the simple
// policy the paper's related-work discussion suggests).
func DefaultEvalConf(cur ids.Set, trusted ids.Set) bool {
	if cur.Empty() {
		return false
	}
	missing := cur.Diff(trusted).Size()
	return 4*missing > cur.Size()
}

// Message is the pair continuously exchanged between participants
// (lines 19–20).
type Message struct {
	NoMaj      bool
	NeedReconf bool
}

// Metrics counts triggering events.
type Metrics struct {
	TriggeredNoMaj   uint64 // estab() calls from the majority-failure path
	TriggeredPredict uint64 // estab() calls from the prediction path
	FlagResets       uint64
}

// RecMA is the per-processor Reconfiguration Management state.
type RecMA struct {
	self ids.ID
	sa   StabilityAssurance
	fd   FDSource
	eval EvalConf
	qs   quorum.System

	noMaj      map[ids.ID]bool
	needReconf map[ids.ID]bool
	prevConfig recsa.Config
	prevValid  bool

	metrics Metrics
}

// New constructs the layer. eval may be nil, in which case DefaultEvalConf
// is used.
func New(self ids.ID, sa StabilityAssurance, fd FDSource, eval EvalConf) *RecMA {
	if eval == nil {
		eval = DefaultEvalConf
	}
	return &RecMA{
		self:       self,
		sa:         sa,
		fd:         fd,
		eval:       eval,
		qs:         quorum.Majority{},
		noMaj:      make(map[ids.ID]bool),
		needReconf: make(map[ids.ID]bool),
	}
}

// SetQuorumSystem replaces the majority quorum test with another system
// (Section 1: the scheme generalizes to any quorum system derivable from
// the member set). It must be called before the first Step.
func (m *RecMA) SetQuorumSystem(qs quorum.System) {
	if qs != nil {
		m.qs = qs
	}
}

// Metrics returns a copy of the counters.
func (m *RecMA) Metrics() Metrics { return m.metrics }

// NoMaj exposes the local no-majority flag (for tests).
func (m *RecMA) NoMaj() bool { return m.noMaj[m.self] }

// flushFlags resets every exchanged flag (the paper's flushFlags()).
func (m *RecMA) flushFlags() {
	m.metrics.FlagResets++
	m.noMaj = make(map[ids.ID]bool)
	m.needReconf = make(map[ids.ID]bool)
}

// core computes ∩_{pj ∈ FD[i].part} FD[j].part — the intersection of the
// participant sets reported by every trusted participant, as supplied by
// the views callback. Unknown views contribute nothing (they are skipped),
// which only shrinks confidence, never creates it.
func (m *RecMA) coreSet(part ids.Set, partOf func(ids.ID) (ids.Set, bool)) ids.Set {
	out := part
	first := true
	part.Each(func(j ids.ID) {
		p, ok := partOf(j)
		if !ok {
			return
		}
		if first {
			out = p
			first = false
			return
		}
		out = out.Intersect(p)
	})
	if first {
		return ids.Set{}
	}
	return out
}

// Views supplies, per peer, the participant set that peer last reported
// (from recSA's stored views). The core() computation needs it.
type Views func(j ids.ID) (part ids.Set, known bool)

// Step executes one iteration of the do-forever loop (lines 5–19). It
// returns the message to broadcast to every trusted participant.
func (m *RecMA) Step(views Views) Message {
	if !m.sa.IsParticipant() {
		return Message{}
	}
	trusted := m.fd.Trusted().Add(m.self)
	part := m.sa.Participants()

	curConf := m.sa.GetConfig()
	m.noMaj[m.self] = false
	m.needReconf[m.self] = false

	if m.prevValid && !m.prevConfig.Equal(curConf) {
		m.flushFlags() // line 9: configuration changed — stale flags out
	}

	if m.sa.NoReco() && curConf.Kind == recsa.KindSet {
		m.prevConfig = curConf
		m.prevValid = true
		cur := curConf.Set

		// Line 12, generalized: does a live quorum of the
		// configuration survive in the trusted set?
		if !quorum.Live(m.qs, cur, trusted) {
			m.noMaj[m.self] = true
		}

		core := m.coreSet(part, views)
		if m.noMaj[m.self] && core.Size() > 1 && m.allCoreNoMaj(core) {
			// Lines 13–14: the whole core agrees the majority is gone.
			m.metrics.TriggeredNoMaj++
			m.sa.Estab(part)
			m.flushFlags()
		} else if m.evalAndCount(cur, trusted) {
			// Lines 16–18: a majority of members wants to reconfigure.
			m.metrics.TriggeredPredict++
			m.sa.Estab(part)
			m.flushFlags()
		}
	}

	return Message{NoMaj: m.noMaj[m.self], NeedReconf: m.needReconf[m.self]}
}

func (m *RecMA) allCoreNoMaj(core ids.Set) bool {
	ok := true
	core.Each(func(k ids.ID) {
		if k == m.self {
			if !m.noMaj[m.self] {
				ok = false
			}
			return
		}
		if !m.noMaj[k] {
			ok = false
		}
	})
	return ok
}

func (m *RecMA) evalAndCount(cur ids.Set, trusted ids.Set) bool {
	m.needReconf[m.self] = m.eval(cur, trusted)
	if !m.needReconf[m.self] {
		return false
	}
	agree := 0
	cur.Intersect(trusted).Each(func(j ids.ID) {
		if j == m.self || m.needReconf[j] {
			agree++
		}
	})
	return agree > cur.Size()/2
}

// HandleMessage stores a peer's exchanged flags (line 20). Only
// participants record them.
func (m *RecMA) HandleMessage(from ids.ID, msg Message) {
	if !m.sa.IsParticipant() || from == m.self {
		return
	}
	m.noMaj[from] = msg.NoMaj
	m.needReconf[from] = msg.NeedReconf
}

// CorruptState randomizes the exchanged flag arrays (transient-fault hook).
func (m *RecMA) CorruptState(rng *rand.Rand, universe ids.Set) {
	universe.Each(func(id ids.ID) {
		m.noMaj[id] = rng.Intn(2) == 0
		m.needReconf[id] = rng.Intn(2) == 0
	})
	m.prevValid = rng.Intn(2) == 0
	if m.prevValid {
		m.prevConfig = recsa.ConfigOf(universe.Filter(func(ids.ID) bool { return rng.Intn(2) == 0 }))
	}
}
