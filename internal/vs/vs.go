// Package vs implements the paper's self-stabilizing reconfigurable
// virtually synchronous state machine replication (Section 4.3, Algorithms
// 4.6 and 4.7). A coordinator — the configuration member holding the
// highest counter from the increment service (Section 4.2) — establishes a
// view (a processor set tagged with the counter as its identifier), drives
// lock-step multicast rounds that replicate a state machine, and, via the
// coordinator-led delicate reconfiguration of Algorithm 4.6, suspends the
// service, has recSA install a new configuration, and resumes with the
// state intact. Virtual synchrony: any two processors that appear together
// in two consecutive views deliver the same messages and hold the same
// replica state — even across a delicate reconfiguration.
//
// Faithfulness notes (DESIGN.md §4): the paper's inc() is a blocking call;
// here the two-phase increment is asynchronous, so a proposal is staged
// while its counter is being obtained. Algorithm 4.6 is realized by having
// the established coordinator call estab() directly once every view member
// reports suspend (needDelicateReconf()), replacing the recMA prediction
// path exactly as line 17 of the modified Algorithm 3.2 specifies.
package vs

import (
	"fmt"
	"sync/atomic"

	"repro/internal/counter"
	"repro/internal/ids"
)

// Status is the replica's automaton state.
type Status int

// Replica statuses.
const (
	StatusMulticast Status = iota + 1
	StatusPropose
	StatusInstall
)

func (s Status) String() string {
	switch s {
	case StatusMulticast:
		return "Multicast"
	case StatusPropose:
		return "Propose"
	case StatusInstall:
		return "Install"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// View is a processor set with a unique identifier drawn from the counter
// increment service; the counter's writer identifier names the coordinator.
type View struct {
	ID  counter.Counter
	Set ids.Set
}

// Valid reports whether the view has an identifier and members.
func (v View) Valid() bool { return v.ID.WID.Valid() && !v.Set.Empty() }

// Coordinator returns the proposer encoded in the view identifier.
func (v View) Coordinator() ids.ID { return v.ID.WID }

// Equal compares views structurally.
func (v View) Equal(o View) bool { return v.ID.Equal(o.ID) && v.Set.Equal(o.Set) }

func (v View) String() string {
	return fmt.Sprintf("view⟨%v@%v⟩", v.Set, v.ID)
}

// Round is one delivered multicast round: the inputs contributed by each
// view member, applied in ascending member order.
type Round struct {
	View   View
	Rnd    uint64
	Inputs map[ids.ID]any
}

// App is the replicated application: a deterministic state machine plus an
// input source and a delivery hook.
type App interface {
	// InitState returns the state machine's default initial state.
	InitState() any
	// Apply returns the state after applying a round's inputs
	// (deterministically; inputs are iterated in ascending member id).
	Apply(state any, r Round) any
	// Fetch returns the next input to multicast, or nil when idle.
	Fetch() any
	// Deliver is the side-effect hook invoked exactly once per round a
	// replica processes (the reliable-multicast delivery indication).
	Deliver(r Round)
}

// StateAdopter is an optional App extension. When the manager replaces
// the replica state wholesale with a remote record's state — a view
// install adopting synchState's pick, a new-view adoption, or a round
// jump past rounds this replica never delivered locally — the hook
// fires with the adopted state. Durable service layers use it to
// re-anchor WAL coverage: the skipped rounds' commands were never
// appended locally, so only a fresh snapshot restores the write-ahead
// invariant.
type StateAdopter interface {
	StateAdopted(state any)
}

// Replica is the per-processor state record exchanged by Algorithm 4.7.
type Replica struct {
	View    View
	Status  Status
	Rnd     uint64
	State   any            // replica state (after applying rounds < Rnd)
	Inputs  map[ids.ID]any // the inputs of round Rnd, assembled by the coordinator
	Input   any            // this processor's last fetched input
	PropV   View
	NoCrd   bool
	Suspend bool
	Crd     ids.ID // this processor's current coordinator (FD.crd)
}

// clone returns a shallow copy with a fresh Inputs map (state values are
// treated as immutable snapshots).
func (r Replica) clone() Replica {
	out := r
	out.Inputs = copyInputs(r.Inputs)
	return out
}

func copyInputs(in map[ids.ID]any) map[ids.ID]any {
	if in == nil {
		return nil
	}
	out := make(map[ids.ID]any, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Metrics is a snapshot of the VS event counters.
type Metrics struct {
	ViewsInstalled   uint64
	RoundsApplied    uint64
	Proposals        uint64
	SuspendedTicks   uint64
	ReconfigRequests uint64
	// Adoptions counts replica-state adoptions (view changes, joins,
	// recovery) — one per StateAdopter hook firing.
	Adoptions uint64
	// StateMismatches counts adopted states that differ from the locally
	// recomputed Apply result — a determinism violation detector.
	StateMismatches uint64
	// NoCoordinatorTicks counts participant ticks spent without an
	// established coordinator (no agreed configuration, or no valid
	// candidate). Under churn this is the service-side half of the
	// availability gap the client observes.
	NoCoordinatorTicks uint64
}

// metricsCounters are the live counters behind Metrics, atomic so a
// concurrent /metrics scrape reads them while the node ticks.
type metricsCounters struct {
	viewsInstalled   atomic.Uint64
	roundsApplied    atomic.Uint64
	proposals        atomic.Uint64
	suspendedTicks   atomic.Uint64
	reconfigRequests atomic.Uint64
	adoptions        atomic.Uint64
	stateMismatches  atomic.Uint64
	noCrdTicks       atomic.Uint64
}

func (c *metricsCounters) snapshot() Metrics {
	return Metrics{
		ViewsInstalled:     c.viewsInstalled.Load(),
		RoundsApplied:      c.roundsApplied.Load(),
		Proposals:          c.proposals.Load(),
		SuspendedTicks:     c.suspendedTicks.Load(),
		ReconfigRequests:   c.reconfigRequests.Load(),
		Adoptions:          c.adoptions.Load(),
		StateMismatches:    c.stateMismatches.Load(),
		NoCoordinatorTicks: c.noCrdTicks.Load(),
	}
}
