package vs

import (
	"reflect"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/ids"
)

// EvalConf is the application predicate that asks the established
// coordinator to perform a delicate reconfiguration (Algorithm 4.6's
// application criteria). nil never reconfigures.
type EvalConf func(cur ids.Set, trusted ids.Set) bool

// Payload is the VS application's envelope payload: the replica state
// exchange of Algorithm 4.7 plus the piggybacked counter-service payload.
type Payload struct {
	Replica *Replica
	Counter any
}

// Manager runs Algorithm 4.7 on a core.Node. It embeds the counter
// manager (Section 4.2) for view identifiers, and implements core.App.
type Manager struct {
	self ids.ID
	app  App
	ctr  *counter.Manager
	eval EvalConf

	rep   Replica
	views map[ids.ID]Replica

	pendingInc  *counter.Op
	reconfReady bool
	// confOfView is the configuration under which the current view was
	// proposed; a configuration change forces a new view (Lemma 4.11).
	confOfView ids.Set
	haveConf   bool
	// lastDelivered deduplicates deliveries: the round number up to
	// which rounds of the current view were handed to the application.
	lastDelivered uint64
	haveDelivered bool

	metrics metricsCounters
}

var _ core.App = (*Manager)(nil)

// NewManager builds the VS application. app must be non-nil; eval may be
// nil (no coordinator-led reconfigurations).
func NewManager(self ids.ID, app App, eval EvalConf) *Manager {
	m := &Manager{
		self:  self,
		app:   app,
		ctr:   counter.NewManager(self),
		eval:  eval,
		views: make(map[ids.ID]Replica),
	}
	m.rep = Replica{Status: StatusMulticast, State: app.InitState()}
	return m
}

// Counter exposes the embedded counter manager (tests tune ExhaustAt).
func (m *Manager) Counter() *counter.Manager { return m.ctr }

// Metrics returns a snapshot of the counters. Safe to call concurrently
// with protocol steps (atomic per-field reads).
func (m *Manager) Metrics() Metrics { return m.metrics.snapshot() }

// Replica returns a copy of the current replica record.
func (m *Manager) Replica() Replica { return m.rep.clone() }

// Restore replaces the replica's state machine state. It is the
// crash-recovery entry point: the service layer replays its durable
// snapshot and WAL tail into a state value before the node starts
// ticking, then installs it here so the recovering replica rejoins with
// its last durable state instead of InitState — no full state transfer
// from a peer required.
func (m *Manager) Restore(state any) { m.rep.State = state }

// notifyAdopted fires the optional StateAdopter hook after the replica
// state was replaced by a remote record's state.
func (m *Manager) notifyAdopted() {
	m.metrics.adoptions.Add(1)
	if a, ok := m.app.(StateAdopter); ok {
		a.StateAdopted(m.rep.State)
	}
}

// CurrentView returns the installed view, if any.
func (m *Manager) CurrentView() (View, bool) {
	if m.rep.Status == StatusMulticast && m.rep.View.Valid() {
		return m.rep.View, true
	}
	return View{}, false
}

// lessCtr orders counters totally: the ≺ct order with a deterministic
// (creator, sting) tie-break for incomparable labels (which appear
// transiently right after an epoch rebuild).
func lessCtr(a, b counter.Counter) bool {
	if a.Less(b) {
		return true
	}
	if b.Less(a) || a.Equal(b) {
		return false
	}
	if a.Lbl.Creator != b.Lbl.Creator {
		return a.Lbl.Creator < b.Lbl.Creator
	}
	if a.Lbl.Sting != b.Lbl.Sting {
		return a.Lbl.Sting < b.Lbl.Sting
	}
	if a.Seqn != b.Seqn {
		return a.Seqn < b.Seqn
	}
	return a.WID < b.WID
}

// replicaOf returns the stored replica record for k (own record for self).
func (m *Manager) replicaOf(k ids.ID) (Replica, bool) {
	if k == m.self {
		return m.rep, true
	}
	r, ok := m.views[k]
	return r, ok
}

// computeValCrd evaluates the seemCrd/valCrd conditions of lines 6–7
// against the stored records and returns the unique valid coordinator.
func (m *Manager) computeValCrd(n *core.Node, conf ids.Set) (ids.ID, bool) {
	trusted := n.Trusted()
	part := n.Participants()
	maj := conf.MajoritySize()
	var best ids.ID
	var bestID counter.Counter
	found := false
	trusted.Intersect(conf).Each(func(l ids.ID) {
		r, ok := m.replicaOf(l)
		if !ok || !r.PropV.Valid() {
			return
		}
		if r.PropV.Coordinator() != l || !r.PropV.Set.Contains(l) {
			return
		}
		if r.PropV.Set.Intersect(conf).Size() < maj {
			return
		}
		if r.Status == StatusMulticast && !r.View.Equal(r.PropV) {
			return
		}
		if (r.Status == StatusMulticast || r.Status == StatusInstall) && r.Crd != l {
			return
		}
		if !found || lessCtr(bestID, r.PropV.ID) {
			best, bestID, found = l, r.PropV.ID, true
		}
	})
	_ = part
	return best, found
}

// Tick implements core.App — one iteration of Algorithm 4.7's do-forever
// loop for a participant.
func (m *Manager) Tick(n *core.Node) {
	m.ctr.Tick(n)
	if !n.IsParticipant() {
		return
	}
	conf, haveConf := n.Quorum()
	if !haveConf {
		// No agreed configuration (brute-force recovery in progress):
		// freeze the service; recSA will restore a configuration.
		m.rep.NoCrd = true
		m.metrics.noCrdTicks.Add(1)
		return
	}
	trusted := n.Trusted()
	part := n.Participants()

	crd, haveCrd := m.computeValCrd(n, conf)
	m.rep.NoCrd = !haveCrd
	m.rep.Crd = crd
	if !haveCrd {
		m.rep.Crd = ids.None
		m.metrics.noCrdTicks.Add(1)
	}

	// Suspension discipline (line 9 + Algorithm 4.6): an established
	// coordinator raises suspend from the prediction function; everyone
	// suspends during a reconfiguration.
	if !n.NoReco() {
		m.rep.Suspend = true
		m.metrics.suspendedTicks.Add(1)
	} else if haveCrd && crd == m.self && m.rep.Status == StatusMulticast {
		m.rep.Suspend = m.evalConf(conf, trusted)
		if !m.rep.Suspend {
			m.reconfReady = false
		}
	}

	// Proposal trigger (line 10).
	m.maybePropose(n, conf, trusted, part, crd, haveCrd)

	switch {
	case haveCrd && crd == m.self:
		m.coordinate(n, conf)
	case haveCrd:
		m.follow(crd)
	}
}

func (m *Manager) evalConf(conf, trusted ids.Set) bool {
	if m.eval == nil {
		return false
	}
	return m.eval(conf, trusted)
}

// maybePropose starts (or completes) a view proposal when line 10's
// conditions hold: a trusted configuration majority, plus either no valid
// coordinator anywhere (with a participant majority agreeing), or this
// processor being the coordinator of a view that no longer matches the
// participant set or the configuration.
func (m *Manager) maybePropose(n *core.Node, conf, trusted, part ids.Set, crd ids.ID, haveCrd bool) {
	// Complete a staged proposal whose counter arrived.
	if m.pendingInc != nil {
		if !m.pendingInc.Done() {
			return
		}
		ctr, err := m.pendingInc.Result()
		m.pendingInc = nil
		if err == nil {
			m.rep.PropV = View{ID: counter.Counter{Lbl: ctr.Lbl, Seqn: ctr.Seqn, WID: m.self}, Set: part}
			m.rep.Status = StatusPropose
			m.rep.Crd = m.self
			m.confOfView = conf
			m.haveConf = true
			m.metrics.proposals.Add(1)
		}
		return
	}

	if trusted.Intersect(conf).Size() < conf.MajoritySize() || !n.NoReco() {
		return
	}

	needNew := false
	switch {
	case !haveCrd:
		// A majority of participants must agree there is no
		// coordinator (avoids unilateral churn from one bad FD).
		agree := 0
		part.Each(func(k ids.ID) {
			if k == m.self {
				if m.rep.NoCrd {
					agree++
				}
				return
			}
			if r, ok := m.views[k]; ok && r.NoCrd {
				agree++
			}
		})
		needNew = agree > conf.Size()/2
	case crd == m.self:
		confChanged := m.haveConf && !m.confOfView.Equal(conf)
		setChanged := m.rep.PropV.Valid() && !part.Equal(m.rep.PropV.Set)
		if setChanged {
			// A majority must still follow the current proposal.
			follow := 0
			part.Each(func(k ids.ID) {
				if k == m.self {
					follow++
					return
				}
				if r, ok := m.views[k]; ok && r.PropV.Equal(m.rep.PropV) {
					follow++
				}
			})
			setChanged = follow > conf.Size()/2
		}
		needNew = confChanged || setChanged
	}
	if needNew {
		m.pendingInc = m.ctr.Increment(n)
	}
}

// coordinate drives lines 11–17: the coordinator's propose → install →
// multicast progression, gated on every relevant member echoing its state.
func (m *Manager) coordinate(n *core.Node, conf ids.Set) {
	trusted := n.Trusted()
	switch m.rep.Status {
	case StatusPropose:
		if !m.allReport(m.rep.PropV.Set, trusted, func(r Replica) bool {
			return r.Status == StatusPropose && r.PropV.Equal(m.rep.PropV)
		}) {
			return
		}
		// synchState/synchMsgs: adopt the most advanced replica among
		// the proposed members (they all carry the last view's state).
		var foreign bool
		m.rep.State, m.rep.Inputs, m.rep.Rnd, foreign = m.synchState()
		m.rep.Status = StatusInstall
		if foreign {
			m.notifyAdopted()
		}
	case StatusInstall:
		if !m.allReport(m.rep.PropV.Set, trusted, func(r Replica) bool {
			return r.Status == StatusInstall && r.PropV.Equal(m.rep.PropV)
		}) {
			return
		}
		m.rep.View = m.rep.PropV
		m.rep.Status = StatusMulticast
		// synchMsgs: the pending round carried over by synchState (a
		// round assembled in the old view but not yet applied anywhere —
		// its contributors have already marked those inputs consumed)
		// becomes round 0 of the new view, so no multicast command is
		// lost across a reconfiguration. For a fresh bootstrap there is
		// no prior round and Inputs stays nil.
		m.rep.Rnd = 0
		m.rep.Suspend = false
		m.reconfReady = false
		m.lastDelivered, m.haveDelivered = 0, false
		m.metrics.viewsInstalled.Add(1)
	case StatusMulticast:
		if !m.allReport(m.rep.View.Set, trusted, func(r Replica) bool {
			return r.Status == StatusMulticast && r.View.Equal(m.rep.View) && r.Rnd == m.rep.Rnd
		}) {
			return
		}
		// Algorithm 4.6: once every view member has suspended, the
		// coordinator may request the delicate reconfiguration.
		if m.rep.Suspend {
			all := true
			m.rep.View.Set.Each(func(k ids.ID) {
				if k == m.self {
					return
				}
				if r, ok := m.views[k]; !ok || !r.Suspend {
					all = false
				}
			})
			m.reconfReady = all
			if m.reconfReady && n.NoReco() && m.evalConf(conf, trusted) {
				if n.Estab(n.Participants()) {
					m.metrics.reconfigRequests.Add(1)
				}
			}
			return // no rounds while suspended
		}
		if !n.NoReco() {
			return // line 14: no round increments during reconfiguration
		}
		// Deliver and apply the completed round, then assemble the next.
		consumed := m.rep.Input == nil
		if m.rep.Inputs != nil {
			round := Round{View: m.rep.View, Rnd: m.rep.Rnd, Inputs: copyInputs(m.rep.Inputs)}
			m.deliverOnce(round)
			m.rep.State = m.app.Apply(m.rep.State, round)
			m.metrics.roundsApplied.Add(1)
			consumed = consumed || inputConsumed(round.Inputs, m.self, m.rep.Input)
		}
		// An input stays pending until some round has carried it; only
		// then is the next one fetched (otherwise inputs sampled between
		// rounds would be lost).
		if consumed {
			m.rep.Input = m.app.Fetch()
		}
		next := make(map[ids.ID]any, m.rep.View.Set.Size())
		m.rep.View.Set.Each(func(j ids.ID) {
			if j == m.self {
				if m.rep.Input != nil {
					next[j] = m.rep.Input
				}
				return
			}
			if r, ok := m.views[j]; ok && r.Input != nil {
				next[j] = r.Input
			}
		})
		m.rep.Inputs = next
		m.rep.Rnd++
	}
}

// allReport checks a predicate against every member of set (self included)
// that is still trusted; untrusted members are skipped — the view change
// triggered by their crash is handled by the proposal logic.
func (m *Manager) allReport(set ids.Set, trusted ids.Set, pred func(Replica) bool) bool {
	ok := true
	set.Each(func(k ids.ID) {
		if !ok || !trusted.Contains(k) {
			return
		}
		r, have := m.replicaOf(k)
		if !have || !pred(r) {
			ok = false
		}
	})
	return ok
}

// synchState consolidates the proposed members' replicas: the record with
// the highest (view id, round) wins; its state and pending inputs carry
// over (synchState + synchMsgs). foreign reports that another member's
// record won (the local state was replaced). Records without a state are
// skipped — a stale follower record from the multicast phase has its
// state omitted from gossip, and such a record is never a legitimate
// synchronization source (the member either echoes the proposal with its
// state attached or is untrusted and excluded from the install gate).
func (m *Manager) synchState() (any, map[ids.ID]any, uint64, bool) {
	best := m.rep
	foreign := false
	m.rep.PropV.Set.Each(func(k ids.ID) {
		r, ok := m.replicaOf(k)
		if !ok || !r.View.Valid() || r.State == nil {
			return
		}
		if !best.View.Valid() {
			best, foreign = r, k != m.self
			return
		}
		if lessCtr(best.View.ID, r.View.ID) ||
			(best.View.ID.Equal(r.View.ID) && r.Rnd > best.Rnd) {
			best, foreign = r, k != m.self
		}
	})
	return best.State, copyInputs(best.Inputs), best.Rnd, foreign
}

// follow executes line 18–23: adopt the coordinator's progression.
func (m *Manager) follow(crd ids.ID) {
	r, ok := m.views[crd]
	if !ok {
		return
	}
	switch r.Status {
	case StatusPropose:
		if !m.rep.PropV.Equal(r.PropV) || m.rep.Status != StatusPropose {
			m.rep.PropV = r.PropV
			m.rep.Status = StatusPropose
			m.rep.Crd = crd
		}
	case StatusInstall:
		if !m.rep.PropV.Equal(r.PropV) || m.rep.Status != StatusInstall {
			adopted := m.adopt(r, crd)
			m.rep.Status = StatusInstall
			if adopted {
				m.notifyAdopted()
			}
		}
	case StatusMulticast:
		if !r.View.Valid() {
			return
		}
		newView := !m.rep.View.Equal(r.View) || m.rep.Status != StatusMulticast
		if newView {
			if r.Rnd == 0 || r.View.Set.Contains(m.self) {
				adopted := m.adopt(r, crd)
				m.rep.View = r.View
				m.rep.Status = StatusMulticast
				m.lastDelivered, m.haveDelivered = 0, false
				m.metrics.viewsInstalled.Add(1)
				if adopted {
					m.notifyAdopted()
				}
			}
			return
		}
		if r.Rnd > m.rep.Rnd {
			// The coordinator completed round m.rep.Rnd: deliver it
			// with our copy of its inputs, check determinism, adopt.
			consumed := m.rep.Input == nil
			// A single-step advance whose round we applied locally is
			// incremental — the adopted state equals our own Apply
			// result. Anything else is a jump past rounds this replica
			// never delivered, so the adoption is wholesale.
			applied := m.rep.Inputs != nil && r.Rnd == m.rep.Rnd+1
			if m.rep.Inputs != nil {
				round := Round{View: m.rep.View, Rnd: m.rep.Rnd, Inputs: copyInputs(m.rep.Inputs)}
				m.deliverOnce(round)
				local := m.app.Apply(m.rep.State, round)
				if r.Rnd == m.rep.Rnd+1 && !reflect.DeepEqual(local, r.State) {
					m.metrics.stateMismatches.Add(1)
				}
				m.metrics.roundsApplied.Add(1)
				consumed = consumed || inputConsumed(round.Inputs, m.self, m.rep.Input)
			}
			consumed = consumed || inputConsumed(r.Inputs, m.self, m.rep.Input)
			adopted := m.adopt(r, crd)
			if consumed && !r.Suspend {
				m.rep.Input = m.app.Fetch()
			}
			if adopted && !applied {
				m.notifyAdopted()
			}
		} else {
			// Same round: still track the suspend flag (Lemma 4.10's
			// propagation) and keep echoing our input.
			m.rep.Suspend = r.Suspend
			if m.rep.Input == nil && !r.Suspend {
				m.rep.Input = m.app.Fetch()
			}
		}
	}
}

// adopt copies the coordinator's record into the local replica (line 20's
// state[i] ← state[ℓ]), preserving the local input slot. It reports
// whether the remote state was actually taken: a record whose state was
// omitted from gossip (a follower's multicast-phase record — which a
// valid coordinator never sends, but a corrupted peer might) keeps the
// local state instead of wiping it.
func (m *Manager) adopt(r Replica, crd ids.ID) bool {
	input := m.rep.Input
	local := m.rep.State
	m.rep = r.clone()
	m.rep.Crd = crd
	m.rep.Input = input
	m.rep.NoCrd = false
	if m.rep.State == nil {
		m.rep.State = local
		return false
	}
	return true
}

// inputConsumed reports whether the member's pending input appears in the
// given round inputs.
func inputConsumed(inputs map[ids.ID]any, self ids.ID, input any) bool {
	if inputs == nil || input == nil {
		return input == nil
	}
	got, ok := inputs[self]
	return ok && reflect.DeepEqual(got, input)
}

// deliverOnce invokes the application's delivery hook exactly once per
// round of the current view.
func (m *Manager) deliverOnce(round Round) {
	if m.haveDelivered && round.Rnd <= m.lastDelivered {
		return
	}
	m.app.Deliver(round)
	m.lastDelivered = round.Rnd
	m.haveDelivered = true
}

// Outgoing implements core.App: broadcast the replica record to every
// participant, with the counter payload piggybacked.
func (m *Manager) Outgoing(to ids.ID, n *core.Node) any {
	p := Payload{Counter: m.ctr.Outgoing(to, n)}
	if n.IsParticipant() {
		rep := m.rep.clone()
		// A follower's multicast-phase state is never consumed by any
		// peer: the coordinator gates rounds on Status/Rnd echoes only,
		// and synchState draws from propose-phase records (which carry
		// state). Omitting it cuts the steady-state gossip from
		// O(registers) to O(1) per follower per tick — the monolithic
		// full-state transfer survives only where it is actually needed.
		if rep.Status == StatusMulticast && rep.Crd != m.self {
			rep.State = nil
		}
		p.Replica = &rep
	}
	if p.Replica == nil && p.Counter == nil {
		return nil
	}
	return p
}

// HandleApp implements core.App.
func (m *Manager) HandleApp(from ids.ID, payload any, n *core.Node) {
	p, ok := payload.(Payload)
	if !ok {
		return
	}
	if p.Counter != nil {
		m.ctr.HandleApp(from, p.Counter, n)
	}
	if p.Replica != nil {
		m.views[from] = p.Replica.clone()
	}
}
