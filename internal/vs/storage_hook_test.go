package vs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/label"
)

// adoptApp wraps logApp with the StateAdopter hook.
type adoptApp struct {
	logApp
	adopted []any
}

func (a *adoptApp) StateAdopted(state any) { a.adopted = append(a.adopted, state) }

func newAdoptCluster(t *testing.T, n int, seed int64) (*vsCluster, map[ids.ID]*adoptApp) {
	t.Helper()
	vc := &vsCluster{mgrs: map[ids.ID]*Manager{}, apps: map[ids.ID]*logApp{}}
	hooks := map[ids.ID]*adoptApp{}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.AppFactory = func(self ids.ID) core.App {
		app := &adoptApp{logApp: logApp{self: self}}
		m := NewManager(self, app, nil)
		m.Counter().OptsFor = func(v int) label.StoreOptions { return label.DefaultStoreOptions(v, 8) }
		vc.mgrs[self] = m
		vc.apps[self] = &app.logApp
		hooks[self] = app
		return m
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	vc.Cluster = c
	return vc, hooks
}

func TestRestoreSeedsReplicaState(t *testing.T) {
	m := NewManager(1, &logApp{self: 1}, nil)
	if s, _ := m.Replica().State.(string); s != "" {
		t.Fatalf("initial state = %q", s)
	}
	m.Restore("recovered")
	if s, _ := m.Replica().State.(string); s != "recovered" {
		t.Fatalf("restored state = %q", s)
	}
}

func TestStateAdopterFiresOnInstall(t *testing.T) {
	vc, hooks := newAdoptCluster(t, 4, 33)
	v := vc.waitView(t, 3_000_000)

	// Every follower that installed the view via a remote record saw the
	// hook at least once (the install/new-view adoption carries the
	// coordinator's synchronized state). The coordinator synthesized the
	// state locally; whether its hook fired depends on whose record won
	// synchState, so it is not asserted either way.
	v.Set.Each(func(k ids.ID) {
		if k == v.Coordinator() {
			return
		}
		if len(hooks[k].adopted) == 0 {
			t.Errorf("follower %v: StateAdopted never fired across view install", k)
		}
	})
}

func TestFollowerGossipOmitsMulticastState(t *testing.T) {
	vc, _ := newAdoptCluster(t, 4, 34)
	v := vc.waitView(t, 3_000_000)

	// Push a round through so every replica holds non-trivial state.
	vc.apps[v.Coordinator()].pending = []string{"w"}
	vc.Sched.RunWhile(func() bool {
		s, _ := vc.mgrs[v.Coordinator()].Replica().State.(string)
		return s == ""
	}, 3_000_000)

	vc.EachAlive(func(n *core.Node) {
		m := vc.mgrs[n.Self()]
		if m.rep.Status != StatusMulticast {
			return
		}
		out := m.Outgoing(v.Coordinator(), n)
		p, ok := out.(Payload)
		if !ok || p.Replica == nil {
			t.Fatalf("%v: no replica payload", n.Self())
		}
		if n.Self() == v.Coordinator() {
			if p.Replica.State == nil {
				t.Errorf("coordinator %v omitted its state from gossip", n.Self())
			}
		} else if p.Replica.State != nil {
			t.Errorf("follower %v gossiped multicast-phase state", n.Self())
		}
		// The local record is untouched by the omission.
		if m.rep.State == nil {
			t.Errorf("%v: local state wiped by Outgoing", n.Self())
		}
	})
}

// TestAdoptNilStateKeepsLocal exercises the defensive guard: adopting a
// record without state must not wipe the local replica state.
func TestAdoptNilStateKeepsLocal(t *testing.T) {
	m := NewManager(1, &logApp{self: 1}, nil)
	m.Restore("precious")
	r := Replica{Status: StatusMulticast, Rnd: 9, Crd: 2}
	if m.adopt(r, 2) {
		t.Fatal("nil-state adoption reported as taken")
	}
	if s, _ := m.rep.State.(string); s != "precious" {
		t.Fatalf("local state after nil adoption = %q", s)
	}
}
