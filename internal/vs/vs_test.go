package vs

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/ids"
	"repro/internal/label"
)

// logApp is a deterministic replicated state machine: the state is the
// concatenation of all delivered inputs in (round, member) order, and the
// delivery log records every round handed to the application.
type logApp struct {
	self      ids.ID
	pending   []string
	delivered []Round
}

func (a *logApp) InitState() any { return "" }

func (a *logApp) Apply(state any, r Round) any {
	s, _ := state.(string)
	keys := make([]ids.ID, 0, len(r.Inputs))
	for k := range r.Inputs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		s += fmt.Sprintf("[%v:%v]", k, r.Inputs[k])
	}
	return s
}

func (a *logApp) Fetch() any {
	if len(a.pending) == 0 {
		return nil
	}
	next := a.pending[0]
	a.pending = a.pending[1:]
	return next
}

func (a *logApp) Deliver(r Round) { a.delivered = append(a.delivered, r) }

type vsCluster struct {
	*core.Cluster
	mgrs map[ids.ID]*Manager
	apps map[ids.ID]*logApp
}

func newVSCluster(t *testing.T, n int, seed int64, eval EvalConf) *vsCluster {
	t.Helper()
	vc := &vsCluster{mgrs: map[ids.ID]*Manager{}, apps: map[ids.ID]*logApp{}}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false } // recMA prediction off: the VS coordinator drives reconfigurations
	opts.AppFactory = func(self ids.ID) core.App {
		app := &logApp{self: self}
		m := NewManager(self, app, eval)
		m.Counter().OptsFor = func(v int) label.StoreOptions { return label.DefaultStoreOptions(v, 8) }
		vc.mgrs[self] = m
		vc.apps[self] = app
		return m
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	vc.Cluster = c
	return vc
}

// agreedView reports whether every alive participant has the same
// installed view in Multicast status.
func (vc *vsCluster) agreedView() (View, bool) {
	var v View
	first, ok := true, true
	vc.EachAlive(func(n *core.Node) {
		m := vc.mgrs[n.Self()]
		cur, has := m.CurrentView()
		if !has || !cur.Set.Contains(n.Self()) {
			ok = false
			return
		}
		if first {
			v, first = cur, false
		} else if !v.Equal(cur) {
			ok = false
		}
	})
	return v, ok && !first
}

func (vc *vsCluster) waitView(t *testing.T, maxSteps int) View {
	t.Helper()
	ok := vc.Sched.RunWhile(func() bool {
		_, agreed := vc.agreedView()
		return !agreed
	}, maxSteps)
	if !ok {
		vc.EachAlive(func(n *core.Node) {
			m := vc.mgrs[n.Self()]
			t.Logf("%v: rep={st=%v view=%v propV=%v rnd=%d noCrd=%v} metrics=%+v",
				n.Self(), m.rep.Status, m.rep.View, m.rep.PropV, m.rep.Rnd, m.rep.NoCrd, m.Metrics())
		})
		t.Fatal("no agreed view")
	}
	v, _ := vc.agreedView()
	return v
}

func TestViewEstablished(t *testing.T) {
	vc := newVSCluster(t, 4, 31, nil)
	v := vc.waitView(t, 3_000_000)
	if !v.Set.Equal(ids.Range(1, 4)) {
		t.Fatalf("view set = %v, want all participants", v.Set)
	}
	if !v.Set.Contains(v.Coordinator()) {
		t.Fatalf("coordinator %v outside view", v.Coordinator())
	}
}

func TestMulticastReplicatesState(t *testing.T) {
	vc := newVSCluster(t, 4, 32, nil)
	vc.waitView(t, 3_000_000)
	vc.apps[2].pending = []string{"a", "b"}
	vc.apps[4].pending = []string{"x"}
	ok := vc.Sched.RunWhile(func() bool {
		// All inputs applied at every replica?
		done := true
		vc.EachAlive(func(n *core.Node) {
			s, _ := vc.mgrs[n.Self()].Replica().State.(string)
			for _, want := range []string{"[p2:a]", "[p2:b]", "[p4:x]"} {
				if !contains(s, want) {
					done = false
				}
			}
		})
		return !done
	}, 5_000_000)
	if !ok {
		vc.EachAlive(func(n *core.Node) {
			t.Logf("%v state=%q", n.Self(), vc.mgrs[n.Self()].Replica().State)
		})
		t.Fatal("inputs not replicated to all members")
	}
	// All replicas must hold identical state strings eventually (run to a
	// common round).
	vc.RunFor(3000)
	if n := vc.mgrs[1].Metrics().StateMismatches; n > 0 {
		t.Fatalf("determinism mismatches: %d", n)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDeliveryAgreement(t *testing.T) {
	// Virtual synchrony: any two members of the same view deliver the
	// same inputs for the same round.
	vc := newVSCluster(t, 4, 33, nil)
	vc.waitView(t, 3_000_000)
	for i := 0; i < 4; i++ {
		vc.apps[ids.ID(i+1)].pending = []string{fmt.Sprintf("m%d", i)}
	}
	vc.RunFor(20000)
	type key struct {
		view string
		rnd  uint64
	}
	seen := map[key]string{}
	for id, app := range vc.apps {
		for _, r := range app.delivered {
			k := key{view: r.View.String(), rnd: r.Rnd}
			repr := fmt.Sprintf("%v", (&logApp{}).Apply("", r))
			if prev, ok := seen[k]; ok && prev != repr {
				t.Fatalf("node %v delivered %q for %v/%d, another delivered %q",
					id, repr, k.view, k.rnd, prev)
			}
			seen[k] = repr
		}
	}
	if len(seen) == 0 {
		t.Fatal("nothing was delivered")
	}
}

func TestCoordinatorCrashPreservesState(t *testing.T) {
	vc := newVSCluster(t, 5, 34, nil)
	v := vc.waitView(t, 3_000_000)
	crd := v.Coordinator()
	// Replicate something first.
	payload := "precious"
	vc.apps[pickNonCoordinator(v, crd)].pending = []string{payload}
	ok := vc.Sched.RunWhile(func() bool {
		s, _ := vc.mgrs[crd].Replica().State.(string)
		return !contains(s, payload)
	}, 5_000_000)
	if !ok {
		t.Fatal("payload never replicated")
	}
	vc.Crash(crd)
	// A new view without the old coordinator must emerge, carrying state.
	ok = vc.Sched.RunWhile(func() bool {
		nv, agreed := vc.agreedView()
		if !agreed || nv.Equal(v) || nv.Set.Contains(crd) {
			return true
		}
		good := true
		vc.EachAlive(func(n *core.Node) {
			s, _ := vc.mgrs[n.Self()].Replica().State.(string)
			if !contains(s, payload) {
				good = false
			}
		})
		return !good
	}, 8_000_000)
	if !ok {
		nv, agreed := vc.agreedView()
		t.Fatalf("no state-preserving new view (agreed=%v view=%v)", agreed, nv)
	}
}

func pickNonCoordinator(v View, crd ids.ID) ids.ID {
	var out ids.ID
	v.Set.Each(func(id ids.ID) {
		if id != crd && out == ids.None {
			out = id
		}
	})
	return out
}

func TestCoordinatorLedDelicateReconfiguration(t *testing.T) {
	// Theorem 4.13 / Algorithm 4.6: the coordinator suspends the service,
	// triggers a delicate reconfiguration, and the state survives into
	// the first view of the next configuration.
	eval := func(cur ids.Set, trusted ids.Set) bool {
		// Reconfigure whenever a configuration member is missing.
		return cur.Diff(trusted).Size() > 0
	}
	vc := newVSCluster(t, 5, 35, eval)
	v := vc.waitView(t, 3_000_000)

	payload := "survives-reconfig"
	vc.apps[pickNonCoordinator(v, v.Coordinator())].pending = []string{payload}
	ok := vc.Sched.RunWhile(func() bool {
		s, _ := vc.mgrs[v.Coordinator()].Replica().State.(string)
		return !contains(s, payload)
	}, 5_000_000)
	if !ok {
		t.Fatal("payload never replicated")
	}

	// Crash a non-coordinator member: evalConf starts returning true.
	victim := pickVictim(v, payload, vc)
	vc.Crash(victim)

	ok = vc.Sched.RunWhile(func() bool {
		cfg, conv := vc.ConvergedConfig()
		if !conv || cfg.Contains(victim) {
			return true // old configuration still in place
		}
		nv, agreed := vc.agreedView()
		if !agreed || nv.Set.Contains(victim) {
			return true
		}
		good := true
		vc.EachAlive(func(n *core.Node) {
			s, _ := vc.mgrs[n.Self()].Replica().State.(string)
			if !contains(s, payload) {
				good = false
			}
		})
		return !good
	}, 12_000_000)
	if !ok {
		cfg, conv := vc.ConvergedConfig()
		nv, agreed := vc.agreedView()
		t.Fatalf("reconfiguration did not preserve state: conf=%v(%v) view=%v(%v)",
			cfg, conv, nv, agreed)
	}
	// The reconfiguration must have been coordinator-initiated.
	total := uint64(0)
	for _, m := range vc.mgrs {
		total += m.Metrics().ReconfigRequests
	}
	if total == 0 {
		t.Fatal("no coordinator-led reconfiguration request recorded")
	}
}

func pickVictim(v View, _ string, vc *vsCluster) ids.ID {
	// Prefer a member that is neither the coordinator nor p1 (tests often
	// interrogate p1).
	var out ids.ID
	v.Set.Each(func(id ids.ID) {
		if id != v.Coordinator() && id != 1 && out == ids.None {
			out = id
		}
	})
	if out == ids.None {
		out = pickNonCoordinator(v, v.Coordinator())
	}
	return out
}

func TestSuspendBlocksRounds(t *testing.T) {
	alwaysReconf := func(ids.Set, ids.Set) bool { return true }
	// evalConf constantly true, but participants == config, so estab()
	// rejects and the service stays suspended — rounds must not advance.
	vc := newVSCluster(t, 3, 36, alwaysReconf)
	vc.waitView(t, 3_000_000)
	vc.RunFor(5000)
	rnd := vc.mgrs[1].Replica().Rnd
	vc.RunFor(5000)
	if got := vc.mgrs[1].Replica().Rnd; got > rnd+1 {
		t.Fatalf("rounds advanced while suspended: %d → %d", rnd, got)
	}
}

func TestJoinerEntersNextView(t *testing.T) {
	vc := newVSCluster(t, 3, 37, nil)
	vc.waitView(t, 3_000_000)
	j, err := vc.AddJoiner(9)
	if err != nil {
		t.Fatal(err)
	}
	ok := vc.Sched.RunWhile(func() bool {
		v, agreed := vc.agreedView()
		return !(agreed && v.Set.Contains(9) && j.IsParticipant())
	}, 10_000_000)
	if !ok {
		v, agreed := vc.agreedView()
		t.Fatalf("joiner never entered a view: agreed=%v view=%v participant=%v",
			agreed, v, j.IsParticipant())
	}
	// The joiner must have adopted the replica state, not invented one.
	if vc.mgrs[9].Metrics().StateMismatches > 0 {
		t.Fatal("joiner state mismatches")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusMulticast: "Multicast", StatusPropose: "Propose",
		StatusInstall: "Install", Status(9): "Status(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d) = %q, want %q", s, got, want)
		}
	}
}

func TestViewHelpers(t *testing.T) {
	v := View{ID: counter.Counter{WID: 3}, Set: ids.NewSet(1, 3)}
	if !v.Valid() || v.Coordinator() != 3 {
		t.Fatalf("view helpers broken: %v", v)
	}
	if (View{}).Valid() {
		t.Fatal("zero view reported valid")
	}
	if !v.Equal(v) || v.Equal(View{}) {
		t.Fatal("view equality broken")
	}
}

func TestLessCtrTotalOrder(t *testing.T) {
	mk := func(creator ids.ID, sting int, seqn uint64, wid ids.ID) counter.Counter {
		return counter.Counter{Lbl: label.Label{Creator: creator, Sting: sting}, Seqn: seqn, WID: wid}
	}
	cs := []counter.Counter{
		mk(1, 0, 0, 1), mk(1, 0, 1, 1), mk(1, 1, 0, 1), mk(2, 0, 0, 1),
		mk(1, 0, 0, 2),
	}
	for i, a := range cs {
		for j, b := range cs {
			la, lb := lessCtr(a, b), lessCtr(b, a)
			if i == j && (la || lb) {
				t.Fatalf("irreflexivity broken at %d", i)
			}
			if i != j && la == lb {
				t.Fatalf("totality broken: %v vs %v", a, b)
			}
		}
	}
}
