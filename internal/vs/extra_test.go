package vs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
)

func TestManyRoundsStateConsistency(t *testing.T) {
	// Long steady-state run: many rounds with steady input flow; all
	// replicas end with identical state strings and no determinism
	// mismatches anywhere.
	vc := newVSCluster(t, 4, 91, nil)
	vc.waitView(t, 3_000_000)
	for i := 0; i < 4; i++ {
		id := ids.ID(i + 1)
		for j := 0; j < 5; j++ {
			vc.apps[id].pending = append(vc.apps[id].pending, "m")
		}
	}
	vc.RunFor(40_000)
	var ref string
	first := true
	vc.EachAlive(func(n *core.Node) {
		m := vc.mgrs[n.Self()]
		if mm := m.Metrics().StateMismatches; mm > 0 {
			t.Errorf("%v: %d determinism mismatches", n.Self(), mm)
		}
		s, _ := m.Replica().State.(string)
		if first {
			ref, first = s, false
		} else if s != ref {
			t.Errorf("%v diverged: %q vs %q", n.Self(), s, ref)
		}
	})
	if ref == "" {
		t.Fatal("no inputs were ever applied")
	}
}

func TestViewChangeOnJoinKeepsDeliveredPrefix(t *testing.T) {
	// A joiner forces a view change; members' pre-change deliveries must
	// remain a prefix of their post-change history (no rewriting).
	vc := newVSCluster(t, 3, 92, nil)
	vc.waitView(t, 3_000_000)
	vc.apps[2].pending = []string{"before-join"}
	ok := vc.Sched.RunWhile(func() bool {
		s, _ := vc.mgrs[1].Replica().State.(string)
		return !contains(s, "before-join")
	}, 5_000_000)
	if !ok {
		t.Fatal("pre-join input never applied")
	}
	preLog := len(vc.apps[1].delivered)

	if _, err := vc.AddJoiner(9); err != nil {
		t.Fatal(err)
	}
	ok = vc.Sched.RunWhile(func() bool {
		v, agreed := vc.agreedView()
		return !(agreed && v.Set.Contains(9))
	}, 10_000_000)
	if !ok {
		t.Fatal("joiner never entered a view")
	}
	if len(vc.apps[1].delivered) < preLog {
		t.Fatal("delivery log shrank across the view change")
	}
	for i := 0; i < preLog; i++ {
		if vc.apps[1].delivered[i].View.Set.Contains(9) {
			t.Fatal("pre-join round attributed to the new view")
		}
	}
	// State carried over.
	s, _ := vc.mgrs[1].Replica().State.(string)
	if !contains(s, "before-join") {
		t.Fatal("state lost across join-driven view change")
	}
}

func TestCounterEpochTurnInsideViews(t *testing.T) {
	// Tiny view-counter bound: repeated view changes force counter epoch
	// turns; views must still be established and totally ordered per
	// lessCtr (no stuck elections).
	vc := newVSCluster(t, 4, 93, nil)
	for _, m := range vc.mgrs {
		m.Counter().ExhaustAt = 3
	}
	vc.waitView(t, 3_000_000)
	// Force several view changes by joining processors.
	for id := ids.ID(10); id < 13; id++ {
		if _, err := vc.AddJoiner(id); err != nil {
			t.Fatal(err)
		}
		ok := vc.Sched.RunWhile(func() bool {
			v, agreed := vc.agreedView()
			return !(agreed && v.Set.Contains(id))
		}, 12_000_000)
		if !ok {
			t.Fatalf("no view including %v despite exhausted counters", id)
		}
	}
}

func TestFollowerIgnoresInvalidCoordinatorViews(t *testing.T) {
	m := NewManager(2, &logApp{self: 2}, nil)
	// A fabricated coordinator record whose proposed view does not
	// contain the proposer must never be followed.
	m.views[3] = Replica{
		Status: StatusMulticast,
		View:   View{Set: ids.NewSet(1, 2)},
		PropV:  View{Set: ids.NewSet(1, 2)},
	}
	if _, ok := m.CurrentView(); ok {
		t.Fatal("zero-value manager claims a view")
	}
}
