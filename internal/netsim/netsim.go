// Package netsim simulates the paper's communication substrate (Section 2):
// a fully connected asynchronous message-passing network whose directed
// links have bounded capacity and may lose, reorder and duplicate packets —
// but never create them (except for the bounded set of stale packets that a
// transient fault may leave in the channels). The simulator also provides
// the fair-communication guarantee probabilistically: a packet that is sent
// infinitely often is received infinitely often, as long as the configured
// loss probability is below one.
//
// Beyond the steady-state axioms, the package doubles as the transient-fault
// adversary required by the self-stabilization experiments: it can inject
// arbitrary stale packets, fill links to capacity with garbage, cut links,
// and crash processors.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/ids"
	"repro/internal/sim"
)

// Handler is the per-node protocol entry point driven by the network.
type Handler interface {
	// Receive is invoked for every packet delivered to the node.
	Receive(from ids.ID, payload any)
	// Tick is invoked on the node's periodic (jittered) timer.
	Tick()
}

// Options configures the network adversary.
type Options struct {
	// Capacity bounds the number of in-flight packets per directed link
	// (the paper's cap). Sends beyond the bound are dropped, matching
	// "the new packet might be omitted".
	Capacity int
	// MinDelay/MaxDelay bound per-packet delivery latency; independent
	// draws produce reordering.
	MinDelay, MaxDelay sim.Time
	// LossProb is the probability that a packet is silently dropped.
	LossProb float64
	// DupProb is the probability that a delivered packet is delivered a
	// second time.
	DupProb float64
	// TickEvery/TickJitter control node timer firing.
	TickEvery, TickJitter sim.Time
}

// DefaultOptions returns a moderately adversarial configuration suitable
// for most tests: small link capacity, 10% loss, occasional duplication,
// delivery delays that overlap across sends (reordering).
func DefaultOptions() Options {
	return Options{
		Capacity:   8,
		MinDelay:   1,
		MaxDelay:   12,
		LossProb:   0.10,
		DupProb:    0.05,
		TickEvery:  10,
		TickJitter: 5,
	}
}

type nodeState struct {
	id      ids.ID
	handler Handler
	crashed bool
	stop    sim.Cancel
}

type linkKey struct{ from, to ids.ID }

type linkState struct {
	inFlight int
	cut      bool
}

// Stats aggregates network-level counters, exported for the benchmarks.
type Stats struct {
	Sent      uint64
	Delivered uint64
	DroppedBy struct {
		Loss     uint64
		Capacity uint64
		Cut      uint64
		Crash    uint64
	}
	Duplicated uint64
	Injected   uint64
}

// Network is a simulated fully-connected network of nodes.
type Network struct {
	sched *sim.Scheduler
	opts  Options
	nodes map[ids.ID]*nodeState
	links map[linkKey]*linkState
	stats Stats
}

// New creates a network driven by sched.
func New(sched *sim.Scheduler, opts Options) *Network {
	if opts.Capacity <= 0 {
		opts.Capacity = 1
	}
	if opts.MaxDelay < opts.MinDelay {
		opts.MaxDelay = opts.MinDelay
	}
	if opts.TickEvery <= 0 {
		opts.TickEvery = 10
	}
	return &Network{
		sched: sched,
		opts:  opts,
		nodes: make(map[ids.ID]*nodeState),
		links: make(map[linkKey]*linkState),
	}
}

// Scheduler exposes the underlying scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Rand returns the scheduler's deterministic random source (the simulator
// is single-threaded, so sharing it is safe). Implements core.Transport.
func (n *Network) Rand() *rand.Rand { return n.sched.Rand() }

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// AddNode registers a node and starts its periodic timer.
func (n *Network) AddNode(id ids.ID, h Handler) error {
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("netsim: node %v already registered", id)
	}
	ns := &nodeState{id: id, handler: h}
	ns.stop = n.sched.Every(1, n.opts.TickEvery, n.opts.TickJitter, func() {
		if !ns.crashed {
			ns.handler.Tick()
		}
	})
	n.nodes[id] = ns
	return nil
}

// Crash stop-fails a node: it takes no further steps and receives nothing.
// Per the paper, a crashed processor never rejoins (rejoining processors
// are modeled as transient faults instead).
func (n *Network) Crash(id ids.ID) {
	ns, ok := n.nodes[id]
	if !ok {
		return
	}
	ns.crashed = true
	ns.stop()
}

// Crashed reports whether the node has stop-failed.
func (n *Network) Crashed(id ids.ID) bool {
	ns, ok := n.nodes[id]
	return ok && ns.crashed
}

// Alive returns the identifiers of non-crashed registered nodes.
func (n *Network) Alive() ids.Set {
	out := ids.Set{}
	//repolint:allow determinism -- set insertion is commutative; the resulting ids.Set is identical for every iteration order
	for id, ns := range n.nodes {
		if !ns.crashed {
			out = out.Add(id)
		}
	}
	return out
}

// SetCut severs (or restores) both directions between a and b. Packets in a
// cut link are dropped at send time.
func (n *Network) SetCut(a, b ids.ID, cut bool) {
	n.link(a, b).cut = cut
	n.link(b, a).cut = cut
}

func (n *Network) link(from, to ids.ID) *linkState {
	k := linkKey{from, to}
	l, ok := n.links[k]
	if !ok {
		l = &linkState{}
		n.links[k] = l
	}
	return l
}

// InFlight returns the number of packets currently in the directed link.
func (n *Network) InFlight(from, to ids.ID) int { return n.link(from, to).inFlight }

// Send transmits payload from one node to another, subject to the
// adversary. It is a no-op for unregistered or crashed endpoints.
func (n *Network) Send(from, to ids.ID, payload any) {
	n.stats.Sent++
	src, ok := n.nodes[from]
	if !ok || src.crashed {
		n.stats.DroppedBy.Crash++
		return
	}
	l := n.link(from, to)
	if l.cut {
		n.stats.DroppedBy.Cut++
		return
	}
	if l.inFlight >= n.opts.Capacity {
		n.stats.DroppedBy.Capacity++
		return
	}
	rng := n.sched.Rand()
	if rng.Float64() < n.opts.LossProb {
		n.stats.DroppedBy.Loss++
		return
	}
	l.inFlight++
	n.scheduleDelivery(from, to, payload, l, true)
	if rng.Float64() < n.opts.DupProb {
		n.stats.Duplicated++
		n.scheduleDelivery(from, to, payload, nil, false)
	}
}

// InjectPacket places a packet directly into the channel toward `to`,
// bypassing capacity accounting — this models the stale packets that a
// transient fault leaves in the channels (Section 2: channels "may
// initially (after transient faults) contain stale packets").
func (n *Network) InjectPacket(from, to ids.ID, payload any) {
	n.stats.Injected++
	n.scheduleDelivery(from, to, payload, nil, false)
}

func (n *Network) scheduleDelivery(from, to ids.ID, payload any, l *linkState, counted bool) {
	delay := n.opts.MinDelay
	if span := n.opts.MaxDelay - n.opts.MinDelay; span > 0 {
		delay += sim.Time(n.sched.Rand().Int63n(int64(span) + 1))
	}
	n.sched.After(delay, func() {
		if counted && l != nil {
			l.inFlight--
		}
		dst, ok := n.nodes[to]
		if !ok || dst.crashed {
			n.stats.DroppedBy.Crash++
			return
		}
		n.stats.Delivered++
		dst.handler.Receive(from, payload)
	})
}
