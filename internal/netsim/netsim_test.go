package netsim

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/sim"
)

type recorder struct {
	received []any
	froms    []ids.ID
	ticks    int
}

func (r *recorder) Receive(from ids.ID, payload any) {
	r.received = append(r.received, payload)
	r.froms = append(r.froms, from)
}
func (r *recorder) Tick() { r.ticks++ }

func reliable() Options {
	return Options{Capacity: 100, MinDelay: 1, MaxDelay: 1, TickEvery: 10}
}

func newPair(t *testing.T, opts Options) (*sim.Scheduler, *Network, *recorder, *recorder) {
	t.Helper()
	sched := sim.NewScheduler(1)
	net := New(sched, opts)
	a, b := &recorder{}, &recorder{}
	if err := net.AddNode(1, a); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(2, b); err != nil {
		t.Fatal(err)
	}
	return sched, net, a, b
}

func TestDelivery(t *testing.T) {
	sched, net, _, b := newPair(t, reliable())
	net.Send(1, 2, "hello")
	sched.RunUntil(10)
	if len(b.received) != 1 || b.received[0] != "hello" || b.froms[0] != 1 {
		t.Fatalf("received %v from %v", b.received, b.froms)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	sched := sim.NewScheduler(1)
	net := New(sched, reliable())
	if err := net.AddNode(1, &recorder{}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(1, &recorder{}); err == nil {
		t.Fatal("duplicate AddNode must fail")
	}
}

func TestTicking(t *testing.T) {
	sched, _, a, _ := newPair(t, reliable())
	sched.RunUntil(100)
	if a.ticks < 9 || a.ticks > 11 {
		t.Fatalf("ticks = %d, want ~10", a.ticks)
	}
}

func TestCrashStopsEverything(t *testing.T) {
	sched, net, _, b := newPair(t, reliable())
	sched.RunUntil(50)
	net.Crash(2)
	ticksAt := b.ticks
	net.Send(1, 2, "x")
	sched.RunUntil(200)
	if len(b.received) != 0 {
		t.Fatal("crashed node received a packet")
	}
	if b.ticks != ticksAt {
		t.Fatal("crashed node kept ticking")
	}
	if !net.Crashed(2) || net.Crashed(1) {
		t.Fatal("Crashed() wrong")
	}
	if !net.Alive().Equal(ids.NewSet(1)) {
		t.Fatalf("Alive() = %v", net.Alive())
	}
}

func TestCapacityBound(t *testing.T) {
	opts := reliable()
	opts.Capacity = 3
	opts.MinDelay, opts.MaxDelay = 100, 100 // keep packets in flight
	sched, net, _, b := newPair(t, opts)
	for i := 0; i < 10; i++ {
		net.Send(1, 2, i)
	}
	if got := net.InFlight(1, 2); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
	sched.RunUntil(1000)
	if len(b.received) != 3 {
		t.Fatalf("delivered %d, want 3 (capacity)", len(b.received))
	}
	if net.Stats().DroppedBy.Capacity != 7 {
		t.Fatalf("capacity drops = %d, want 7", net.Stats().DroppedBy.Capacity)
	}
}

func TestLoss(t *testing.T) {
	opts := reliable()
	opts.LossProb = 1.0
	sched, net, _, b := newPair(t, opts)
	for i := 0; i < 20; i++ {
		net.Send(1, 2, i)
	}
	sched.RunUntil(100)
	if len(b.received) != 0 {
		t.Fatalf("lossy link delivered %d packets", len(b.received))
	}
}

func TestFairCommunication(t *testing.T) {
	// A packet sent repeatedly under loss < 1 is eventually received.
	opts := reliable()
	opts.LossProb = 0.9
	sched, net, _, b := newPair(t, opts)
	for i := 0; i < 200; i++ {
		net.Send(1, 2, "retry")
	}
	sched.RunUntil(1000)
	if len(b.received) == 0 {
		t.Fatal("fair communication violated: nothing delivered")
	}
}

func TestDuplication(t *testing.T) {
	opts := reliable()
	opts.DupProb = 1.0
	sched, net, _, b := newPair(t, opts)
	net.Send(1, 2, "x")
	sched.RunUntil(100)
	if len(b.received) != 2 {
		t.Fatalf("delivered %d, want 2 (duplicated)", len(b.received))
	}
}

func TestReordering(t *testing.T) {
	opts := reliable()
	opts.MinDelay, opts.MaxDelay = 1, 50
	sched, net, _, b := newPair(t, opts)
	for i := 0; i < 50; i++ {
		net.Send(1, 2, i)
	}
	sched.RunUntil(1000)
	inOrder := true
	for i := 1; i < len(b.received); i++ {
		if b.received[i].(int) < b.received[i-1].(int) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("wide delay spread should reorder packets")
	}
}

func TestCut(t *testing.T) {
	sched, net, a, b := newPair(t, reliable())
	net.SetCut(1, 2, true)
	net.Send(1, 2, "x")
	net.Send(2, 1, "y")
	sched.RunUntil(100)
	if len(b.received)+len(a.received) != 0 {
		t.Fatal("cut link delivered")
	}
	net.SetCut(1, 2, false)
	net.Send(1, 2, "x")
	sched.RunUntil(200)
	if len(b.received) != 1 {
		t.Fatal("restored link did not deliver")
	}
}

func TestInjectPacket(t *testing.T) {
	sched, net, _, b := newPair(t, reliable())
	net.InjectPacket(1, 2, "stale")
	sched.RunUntil(100)
	if len(b.received) != 1 || b.received[0] != "stale" {
		t.Fatalf("injection failed: %v", b.received)
	}
	if net.Stats().Injected != 1 {
		t.Fatal("injection not counted")
	}
}

func TestSendFromCrashedDropped(t *testing.T) {
	sched, net, _, b := newPair(t, reliable())
	net.Crash(1)
	net.Send(1, 2, "x")
	sched.RunUntil(100)
	if len(b.received) != 0 {
		t.Fatal("crashed sender delivered")
	}
}

func TestStatsAccounting(t *testing.T) {
	sched, net, _, _ := newPair(t, reliable())
	for i := 0; i < 5; i++ {
		net.Send(1, 2, i)
	}
	sched.RunUntil(100)
	st := net.Stats()
	if st.Sent != 5 || st.Delivered != 5 {
		t.Fatalf("stats = %+v", st)
	}
}
