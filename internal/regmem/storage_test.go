package regmem

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/storage"
)

// newStoredCluster builds a cluster whose members each carry a storage
// backend built by mk (nil mk = no storage for that member).
func newStoredCluster(t *testing.T, n int, seed int64, mk func(self ids.ID) storage.Backend, snapEvery uint64) (*memCluster, map[ids.ID]storage.Backend) {
	t.Helper()
	mc := &memCluster{mems: map[ids.ID]*SharedMemory{}}
	bes := map[ids.ID]storage.Backend{}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.AppFactory = func(self ids.ID) core.App {
		s := New(self, nil)
		if mk != nil {
			be := mk(self)
			if err := s.AttachStorage(be, snapEvery); err != nil {
				t.Fatal(err)
			}
			bes[self] = be
		}
		mc.mems[self] = s
		return s
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc.Cluster = c
	return mc, bes
}

func writeAndWait(t *testing.T, mc *memCluster, id ids.ID, name, value string) {
	t.Helper()
	h := mc.mems[id].Write(name, value)
	if !mc.Sched.RunWhile(func() bool { return !h.Done() }, 5_000_000) {
		t.Fatalf("write %s=%s never completed", name, value)
	}
}

func TestWALReceivesDeliveredWrites(t *testing.T) {
	mc, bes := newStoredCluster(t, 3, 61, func(ids.ID) storage.Backend {
		return storage.NewMemory()
	}, 0)
	mc.waitView(t)
	writeAndWait(t, mc, 1, "a", "1")
	writeAndWait(t, mc, 2, "b", "2")

	// Every member's backend must reconstruct both registers — whether a
	// write reached it through local delivery (a WAL record) or through
	// an adopted state (covered by an adoption snapshot). A member that
	// adopted a state needs one more tick to persist it, so run the
	// cluster until durable coverage catches up everywhere.
	recoveredBoth := func(id ids.ID, be storage.Backend) bool {
		s2 := New(id, nil)
		if err := s2.AttachStorage(be, 0); err != nil {
			t.Fatalf("member %v: %v", id, err)
		}
		st := asState(s2.VS().Replica().State)
		a, _ := st.Get("a")
		b, _ := st.Get("b")
		return a == "1" && b == "2"
	}
	ok := mc.Sched.RunWhile(func() bool {
		for id, be := range bes {
			if !recoveredBoth(id, be) {
				return true
			}
		}
		return false
	}, 5_000_000)
	if !ok {
		for id, be := range bes {
			if !recoveredBoth(id, be) {
				t.Errorf("member %v: durable state incomplete (stats %+v)", id, be.Stats())
			}
		}
	}
}

func TestRecoveryReplaysSnapshotAndTail(t *testing.T) {
	be := storage.NewMemory()
	mc, _ := newStoredCluster(t, 1, 62, func(ids.ID) storage.Backend { return be }, 0)
	mc.waitView(t)
	writeAndWait(t, mc, 1, "x", "1")
	writeAndWait(t, mc, 1, "y", "2")
	if err := mc.mems[1].ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	writeAndWait(t, mc, 1, "x", "3") // tail record after the snapshot

	// "Restart": a fresh SharedMemory attached to the same backend
	// recovers snapshot + tail without any peer.
	s2 := New(1, nil)
	if err := s2.AttachStorage(be, 0); err != nil {
		t.Fatal(err)
	}
	st := asState(s2.VS().Replica().State)
	if v, _ := st.Get("x"); v != "3" {
		t.Errorf("recovered x = %q want 3", v)
	}
	if v, _ := st.Get("y"); v != "2" {
		t.Errorf("recovered y = %q want 2", v)
	}
	bst := be.Stats()
	if !bst.Recovery.Recovered || !bst.Recovery.SnapshotLoaded {
		t.Errorf("recovery stats: %+v", bst.Recovery)
	}
}

func TestSnapshotPolicyTruncatesWAL(t *testing.T) {
	be := storage.NewMemory()
	mc, _ := newStoredCluster(t, 1, 63, func(ids.ID) storage.Backend { return be }, 4)
	mc.waitView(t)
	for i := 0; i < 10; i++ {
		writeAndWait(t, mc, 1, "k", "v")
	}
	st := be.Stats()
	if st.Snapshots == 0 {
		t.Fatalf("snapEvery=4 never snapshotted after 10 writes: %+v", st)
	}
	if st.WALRecords >= 10 {
		t.Fatalf("WAL never truncated: %+v", st)
	}
}

func TestForceSnapshotWithoutBackend(t *testing.T) {
	s := New(1, nil)
	if err := s.ForceSnapshot(); err != ErrNoStorage {
		t.Fatalf("ForceSnapshot without backend: %v", err)
	}
	if _, ok := s.StorageStats(); ok {
		t.Fatal("StorageStats reported a backend where none is attached")
	}
}

func TestAdoptionSchedulesSnapshot(t *testing.T) {
	s := New(1, nil)
	if err := s.AttachStorage(storage.NewMemory(), 0); err != nil {
		t.Fatal(err)
	}
	s.StateAdopted(State{})
	if !s.snapDue {
		t.Fatal("adoption did not schedule a snapshot")
	}
	s.maybeSnapshot()
	if s.snapDue {
		t.Fatal("due snapshot not taken")
	}
	if st, _ := s.StorageStats(); st.Snapshots != 1 {
		t.Fatalf("snapshots = %d", st.Snapshots)
	}
}

func TestDiskBackedClusterRecoversAcrossReattach(t *testing.T) {
	dir := t.TempDir()
	open := func() *storage.Disk {
		d, err := storage.OpenDisk(dir, storage.DiskOptions{Fsync: storage.FsyncSnapshot})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	be := open()
	mc, _ := newStoredCluster(t, 1, 64, func(ids.ID) storage.Backend { return be }, 3)
	mc.waitView(t)
	for i := 0; i < 8; i++ {
		writeAndWait(t, mc, 1, "r", string(rune('a'+i)))
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(1, nil)
	if err := s2.AttachStorage(open(), 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := asState(s2.VS().Replica().State).Get("r"); v != "h" {
		t.Errorf("recovered r = %q want h", v)
	}
}
