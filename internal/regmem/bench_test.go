package regmem

import (
	"fmt"
	"testing"
)

// naiveApply is the pre-refactor register machine: every write copies
// the whole register map (O(registers) per command). Kept here as the
// baseline the delta-chain State is benchmarked against.
func naiveApply(state any, cmd any) any {
	m, _ := state.(map[string]string)
	c, ok := cmd.(WriteCmd)
	if !ok {
		return state
	}
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out[c.Name] = c.Value
	return out
}

// seedNames pre-generates register names so the benchmark loop measures
// only the apply itself.
func seedNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("reg-%d", i)
	}
	return names
}

// BenchmarkApplyDeltaChain measures the restructured O(1)-amortized
// apply at several resident register counts; the cost must stay flat as
// the register file grows.
func BenchmarkApplyDeltaChain(b *testing.B) {
	for _, regs := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("registers=%d", regs), func(b *testing.B) {
			m := regMachine{}
			names := seedNames(regs)
			state := m.Init()
			for i, name := range names {
				state = m.Apply(state, WriteCmd{Name: name, Value: "seed", Writer: 1, Seq: uint64(i)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state = m.Apply(state, WriteCmd{
					Name: names[i%regs], Value: "v", Writer: 1, Seq: uint64(i),
				})
			}
		})
	}
}

// BenchmarkApplyNaiveCopy is the before side: the full-map copy grows
// linearly with the register count.
func BenchmarkApplyNaiveCopy(b *testing.B) {
	for _, regs := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("registers=%d", regs), func(b *testing.B) {
			names := seedNames(regs)
			state := any(map[string]string{})
			for i, name := range names {
				state = naiveApply(state, WriteCmd{Name: name, Value: "seed", Writer: 1, Seq: uint64(i)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state = naiveApply(state, WriteCmd{
					Name: names[i%regs], Value: "v", Writer: 1, Seq: uint64(i),
				})
			}
		})
	}
}

// BenchmarkReadAfterWrites measures the read path against a state whose
// overlay chain is mid-cycle (the worst case for the delta walk).
func BenchmarkReadAfterWrites(b *testing.B) {
	m := regMachine{}
	names := seedNames(1024)
	state := m.Init()
	for i := 0; i < 3*1024/2; i++ {
		state = m.Apply(state, WriteCmd{Name: names[i%1024], Value: "v", Writer: 1, Seq: uint64(i)})
	}
	st := state.(State)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(names[i%1024]); !ok {
			b.Fatal("lost register")
		}
	}
}
