package regmem

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/vs"
)

// Durable register files: a storage.Backend attached to a SharedMemory
// turns the replica into a write-ahead-logged state machine. Every
// delivered command is appended to the WAL before the round that
// carries it is applied (vs delivers before it applies, so the log
// always runs ahead of the observable state); the materialized register
// map is periodically saved as a compacted snapshot, truncating the
// log; and AttachStorage replays snapshot plus tail at boot, seeding
// the replica with its last durable state through vs.Manager.Restore —
// a restarting node recovers locally instead of pulling a full state
// transfer from a peer.
//
// When the manager adopts a remote state wholesale (view install after
// a partition, a round jump past rounds this replica never delivered),
// the local WAL no longer reconstructs the state; the vs.StateAdopter
// hook marks a snapshot due, and the next Tick re-anchors coverage.

// ErrNoStorage reports a storage operation on a SharedMemory without an
// attached backend.
var ErrNoStorage = errors.New("regmem: no storage backend attached")

// walEntry is the concrete WAL record schema. Exactly one field is set.
// Markers are logged too — the WAL is the round history, and replaying
// a marker is a no-op, so faithfulness costs nothing.
type walEntry struct {
	Write  *WriteCmd
	Marker *MarkerCmd
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// AttachStorage wires a durability backend into the register file and
// runs recovery: the backend's snapshot and WAL tail are replayed into
// a register state and installed as the replica's pre-serving state.
// snapEvery bounds the WAL records accumulated between automatic
// snapshots (0 disables the policy; adoption- and force-triggered
// snapshots still run). Attach before the node starts ticking.
func (s *SharedMemory) AttachStorage(be storage.Backend, snapEvery uint64) error {
	snap, tail, err := be.Recover()
	if err != nil {
		return fmt.Errorf("regmem: recover: %w", err)
	}
	st := State{}
	recovered := false
	if snap != nil {
		var m map[string]string
		if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&m); err != nil {
			return fmt.Errorf("regmem: decode snapshot: %w", err)
		}
		st = State{Base: m}
		recovered = true
	}
	for i, rec := range tail {
		var e walEntry
		if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&e); err != nil {
			return fmt.Errorf("regmem: decode wal record %d: %w", i, err)
		}
		if e.Write != nil {
			st = st.put(e.Write.Name, e.Write.Value)
		}
		recovered = true
	}
	if recovered {
		s.mgr.Restore(st)
	}
	s.store = be
	s.snapEvery = snapEvery
	return nil
}

// logCommand write-ahead-logs one delivered command. Append errors are
// not propagated into the delivery path — the backend latches the fault
// and Stats exposes it (the service keeps serving from memory; the
// admin API reports storage_unavailable).
func (s *SharedMemory) logCommand(cmd any) {
	if s.store == nil {
		return
	}
	var e walEntry
	switch c := cmd.(type) {
	case WriteCmd:
		e.Write = &c
	case MarkerCmd:
		e.Marker = &c
	default:
		// Commands foreign to the register machine (e.g. raw SMR
		// proposals) leave the register state untouched, so the WAL
		// does not need them.
		return
	}
	data, err := encodeGob(e)
	if err != nil {
		return
	}
	_ = s.store.Append(data)
}

// StateAdopted implements vs.StateAdopter: the replica state was
// replaced by a remote record, so the local WAL no longer reconstructs
// it — schedule a snapshot to re-anchor durable coverage.
func (s *SharedMemory) StateAdopted(any) {
	if s.store != nil {
		s.snapDue = true
	}
}

var _ vs.StateAdopter = (*SharedMemory)(nil)

// maybeSnapshot runs the snapshot policy: a due adoption snapshot, or
// the WAL tail outgrowing snapEvery records.
func (s *SharedMemory) maybeSnapshot() {
	if s.store == nil {
		return
	}
	st := s.store.Stats()
	if st.Failed {
		return
	}
	if !s.snapDue && (s.snapEvery == 0 || st.Appended-st.SnapshotIndex < s.snapEvery) {
		return
	}
	_ = s.saveSnapshot()
}

func (s *SharedMemory) saveSnapshot() error {
	var start time.Time
	if s.onSnapshot != nil {
		//repolint:allow determinism -- timing feeds the opt-in ObserveSnapshots hook only; nil in every experiment path
		start = time.Now()
	}
	err := s.saveSnapshotInner()
	if s.onSnapshot != nil {
		//repolint:allow determinism -- duration goes to the opt-in ObserveSnapshots hook, never into replayed state
		s.onSnapshot(time.Since(start), err)
	}
	return err
}

func (s *SharedMemory) saveSnapshotInner() error {
	data, err := encodeGob(asState(s.mgr.Replica().State).snapshot())
	if err != nil {
		return fmt.Errorf("regmem: encode snapshot: %w", err)
	}
	if err := s.store.SaveSnapshot(data); err != nil {
		return err
	}
	s.snapDue = false
	return nil
}

// ObserveSnapshots installs fn as the snapshot observer: it receives
// every snapshot save's duration and outcome. Install at wiring time
// (before the node ticks); the clock is never read without an observer.
func (s *SharedMemory) ObserveSnapshots(fn func(d time.Duration, err error)) {
	s.onSnapshot = fn
}

// ForceSnapshot saves a compacted snapshot now (the admin API's
// POST /v1/storage/snapshot). ErrNoStorage without a backend.
func (s *SharedMemory) ForceSnapshot() error {
	if s.store == nil {
		return ErrNoStorage
	}
	return s.saveSnapshot()
}

// StorageStats returns the attached backend's counters; ok is false
// when no backend is attached.
func (s *SharedMemory) StorageStats() (storage.Stats, bool) {
	if s.store == nil {
		return storage.Stats{}, false
	}
	return s.store.Stats(), true
}
