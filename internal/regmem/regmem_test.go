package regmem

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/vs"
)

type memCluster struct {
	*core.Cluster
	mems map[ids.ID]*SharedMemory
}

func newMemCluster(t *testing.T, n int, seed int64, eval vs.EvalConf) *memCluster {
	t.Helper()
	mc := &memCluster{mems: map[ids.ID]*SharedMemory{}}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.AppFactory = func(self ids.ID) core.App {
		s := New(self, eval)
		mc.mems[self] = s
		return s
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc.Cluster = c
	return mc
}

func (mc *memCluster) waitView(t *testing.T) {
	t.Helper()
	ok := mc.Sched.RunWhile(func() bool {
		_, has := mc.mems[1].VS().CurrentView()
		return !has
	}, 3_000_000)
	if !ok {
		t.Fatal("no view established")
	}
}

func TestWriteThenReadEverywhere(t *testing.T) {
	mc := newMemCluster(t, 4, 51, nil)
	mc.waitView(t)
	h := mc.mems[2].Write("x", "42")
	ok := mc.Sched.RunWhile(func() bool { return !h.Done() }, 5_000_000)
	if !ok {
		t.Fatal("write never completed")
	}
	// After the round completes everywhere, every node reads 42.
	ok = mc.Sched.RunWhile(func() bool {
		for id := ids.ID(1); id <= 4; id++ {
			if v, _ := mc.mems[id].Read("x"); v != "42" {
				return true
			}
		}
		return false
	}, 5_000_000)
	if !ok {
		t.Fatal("written value not visible everywhere")
	}
}

func TestSyncReadSeesCompletedWrite(t *testing.T) {
	mc := newMemCluster(t, 3, 52, nil)
	mc.waitView(t)
	w := mc.mems[1].Write("reg", "v1")
	if !mc.Sched.RunWhile(func() bool { return !w.Done() }, 5_000_000) {
		t.Fatal("write never completed")
	}
	r := mc.mems[3].SyncRead("reg")
	if !mc.Sched.RunWhile(func() bool { return !r.Done() }, 5_000_000) {
		t.Fatal("sync read never completed")
	}
	if v, ok := r.Value(); !ok || v != "v1" {
		t.Fatalf("sync read = %q %v, want v1", v, ok)
	}
}

func TestLastWriterWinsTotalOrder(t *testing.T) {
	mc := newMemCluster(t, 3, 53, nil)
	mc.waitView(t)
	h1 := mc.mems[1].Write("k", "from-1")
	h2 := mc.mems[2].Write("k", "from-2")
	ok := mc.Sched.RunWhile(func() bool { return !(h1.Done() && h2.Done()) }, 6_000_000)
	if !ok {
		t.Fatal("writes never completed")
	}
	mc.RunFor(5000)
	// All replicas agree on a single winner.
	var want string
	for id := ids.ID(1); id <= 3; id++ {
		v, ok := mc.mems[id].Read("k")
		if !ok {
			t.Fatalf("node %v has no value", id)
		}
		if want == "" {
			want = v
		} else if v != want {
			t.Fatalf("divergent register: %q vs %q", v, want)
		}
	}
	if want != "from-1" && want != "from-2" {
		t.Fatalf("winner %q is not one of the writes", want)
	}
}

func TestRegisterSurvivesCoordinatorCrash(t *testing.T) {
	mc := newMemCluster(t, 5, 54, nil)
	mc.waitView(t)
	h := mc.mems[2].Write("durable", "yes")
	if !mc.Sched.RunWhile(func() bool { return !h.Done() }, 5_000_000) {
		t.Fatal("write never completed")
	}
	v, _ := mc.mems[1].VS().CurrentView()
	crd := v.Coordinator()
	mc.RunFor(3000) // let the round propagate everywhere
	mc.Crash(crd)
	ok := mc.Sched.RunWhile(func() bool {
		good := true
		mc.EachAlive(func(n *core.Node) {
			nv, has := mc.mems[n.Self()].VS().CurrentView()
			if !has || nv.Set.Contains(crd) {
				good = false
				return
			}
			if val, _ := mc.mems[n.Self()].Read("durable"); val != "yes" {
				good = false
			}
		})
		return !good
	}, 10_000_000)
	if !ok {
		t.Fatal("register lost after coordinator crash")
	}
}

func TestWriteRejectedWhenQueueFull(t *testing.T) {
	s := New(1, nil)
	s.rep.MaxPending = 1
	h1 := s.Write("a", "1")
	h2 := s.Write("a", "2")
	if h1.Done() || h2.Done() {
		t.Fatal("handles done prematurely")
	}
	if s.rep.PendingLen() != 1 {
		t.Fatalf("pending = %d, want 1 (second rejected)", s.rep.PendingLen())
	}
}

func TestReadUnknownRegister(t *testing.T) {
	s := New(1, nil)
	if _, ok := s.Read("nope"); ok {
		t.Fatal("unknown register returned a value")
	}
}

// TestUnknownCommandsLeaveStateUntouched: the register machine ignores
// markers and any garbage command type — the state value it returns is
// the very snapshot it was given.
func TestUnknownCommandsLeaveStateUntouched(t *testing.T) {
	m := regMachine{}
	st := m.Apply(m.Init(), WriteCmd{Name: "a", Value: "1", Writer: 1, Seq: 1})
	for _, cmd := range []any{
		MarkerCmd{Reader: 2, Seq: 9},
		"garbage",
		42,
		nil,
		struct{ X int }{7},
	} {
		got := m.Apply(st, cmd)
		if !reflect.DeepEqual(got, st) {
			t.Fatalf("command %#v changed the state: %#v -> %#v", cmd, st, got)
		}
	}
	s, _ := st.(State)
	if v, ok := s.Get("a"); !ok || v != "1" {
		t.Fatalf("state lost its register: %v %v", v, ok)
	}
}

// TestLegacyMapStateMigrates: a replica state in the pre-refactor
// representation (bare map[string]string, as a wire-MinVersion peer
// replicates it) is adopted as the base of a delta chain instead of
// being discarded.
func TestLegacyMapStateMigrates(t *testing.T) {
	m := regMachine{}
	legacy := map[string]string{"old": "kept"}
	st := m.Apply(any(legacy), WriteCmd{Name: "new", Value: "1", Writer: 1, Seq: 1}).(State)
	if v, ok := st.Get("old"); !ok || v != "kept" {
		t.Fatalf("legacy register lost in migration: %q %v", v, ok)
	}
	if v, ok := st.Get("new"); !ok || v != "1" {
		t.Fatalf("write onto migrated state lost: %q %v", v, ok)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
}

// TestStateLenCountsOverlayWithoutDoubleCounting: Len must count
// overlay-only names once and not re-count base names overwritten in
// the chain.
func TestStateLenCountsOverlayWithoutDoubleCounting(t *testing.T) {
	s := State{Base: map[string]string{"a": "0"}}
	s = s.put("a", "1") // overwrite base name
	s = s.put("b", "1") // fresh name
	s = s.put("b", "2") // overwrite fresh name
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (a, b)", s.Len())
	}
}

// TestStateSnapshotsAreImmutable: a snapshot taken before later writes
// keeps reading the old values — the property the O(1) delta-chain
// restructuring must preserve (smr treats states as immutable).
func TestStateSnapshotsAreImmutable(t *testing.T) {
	m := regMachine{}
	old := m.Apply(m.Init(), WriteCmd{Name: "x", Value: "old", Writer: 1, Seq: 1}).(State)
	cur := any(old)
	// Drive far past the compaction threshold, overwriting x repeatedly.
	for i := 0; i < 10*minCompact; i++ {
		cur = m.Apply(cur, WriteCmd{Name: "x", Value: fmt.Sprintf("v%d", i), Writer: 1, Seq: uint64(i + 2)})
		cur = m.Apply(cur, WriteCmd{Name: fmt.Sprintf("r%d", i), Value: "y", Writer: 1, Seq: uint64(i + 2)})
	}
	if v, _ := old.Get("x"); v != "old" {
		t.Fatalf("old snapshot mutated: x=%q, want old", v)
	}
	if _, ok := old.Get("r5"); ok {
		t.Fatal("old snapshot sees a later register")
	}
	now := cur.(State)
	if v, _ := now.Get("x"); v != fmt.Sprintf("v%d", 10*minCompact-1) {
		t.Fatalf("latest snapshot x=%q", v)
	}
	if now.Len() != 1+10*minCompact {
		t.Fatalf("Len = %d, want %d", now.Len(), 1+10*minCompact)
	}
	// Compaction actually ran: the chain is bounded, not 2*10*minCompact
	// long.
	if now.Depth > max(minCompact, len(now.Base)) {
		t.Fatalf("Depth %d exceeds compaction bound (base %d)", now.Depth, len(now.Base))
	}
}

// TestHandleCompletionUnderSuspendedRounds: while the coordinator holds
// the rounds suspended (Algorithm 4.6's delicate-reconfiguration
// prelude) a write stays pending; once the suspension lifts the handle
// completes with the state intact (Theorem 4.13's pause-and-resume).
func TestHandleCompletionUnderSuspendedRounds(t *testing.T) {
	suspend := false
	mc := newMemCluster(t, 3, 55, func(cur ids.Set, trusted ids.Set) bool { return suspend })
	mc.waitView(t)
	// A pre-suspension write completes normally.
	h0 := mc.mems[1].Write("warm", "up")
	if !mc.Sched.RunWhile(func() bool { return !h0.Done() }, 5_000_000) {
		t.Fatal("warm-up write never completed")
	}
	suspend = true
	mc.RunFor(20_000) // let every member echo the suspend flag
	h := mc.mems[2].Write("held", "back")
	mc.RunFor(40_000)
	if h.Done() {
		t.Fatal("write completed while rounds were suspended")
	}
	suspend = false
	if !mc.Sched.RunWhile(func() bool { return !h.Done() }, 10_000_000) {
		t.Fatal("write never completed after suspension lifted")
	}
	ok := mc.Sched.RunWhile(func() bool {
		v1, _ := mc.mems[1].Read("warm")
		v2, _ := mc.mems[1].Read("held")
		return v1 != "up" || v2 != "back"
	}, 5_000_000)
	if !ok {
		t.Fatal("state lost across the suspension")
	}
}

// TestMarkerFlushOrdering: a sync read issued while a write of the same
// register is still pending must observe that write — the marker is
// queued behind it, so the flush cannot complete before the write is
// delivered and applied.
func TestMarkerFlushOrdering(t *testing.T) {
	mc := newMemCluster(t, 3, 56, nil)
	mc.waitView(t)
	w := mc.mems[1].Write("ord", "first")
	r := mc.mems[1].SyncRead("ord") // same node: marker queues behind the write
	if w.Done() || r.Done() {
		t.Fatal("handles done before any round ran")
	}
	if !mc.Sched.RunWhile(func() bool { return !r.Done() }, 6_000_000) {
		t.Fatal("sync read never completed")
	}
	if !w.Done() {
		t.Fatal("marker flushed before the earlier write was delivered")
	}
	if v, ok := r.Value(); !ok || v != "first" {
		t.Fatalf("sync read = %q %v, want the pending write's value", v, ok)
	}
}
