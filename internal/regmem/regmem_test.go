package regmem

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/vs"
)

type memCluster struct {
	*core.Cluster
	mems map[ids.ID]*SharedMemory
}

func newMemCluster(t *testing.T, n int, seed int64, eval vs.EvalConf) *memCluster {
	t.Helper()
	mc := &memCluster{mems: map[ids.ID]*SharedMemory{}}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.AppFactory = func(self ids.ID) core.App {
		s := New(self, eval)
		mc.mems[self] = s
		return s
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc.Cluster = c
	return mc
}

func (mc *memCluster) waitView(t *testing.T) {
	t.Helper()
	ok := mc.Sched.RunWhile(func() bool {
		_, has := mc.mems[1].VS().CurrentView()
		return !has
	}, 3_000_000)
	if !ok {
		t.Fatal("no view established")
	}
}

func TestWriteThenReadEverywhere(t *testing.T) {
	mc := newMemCluster(t, 4, 51, nil)
	mc.waitView(t)
	h := mc.mems[2].Write("x", "42")
	ok := mc.Sched.RunWhile(func() bool { return !h.Done() }, 5_000_000)
	if !ok {
		t.Fatal("write never completed")
	}
	// After the round completes everywhere, every node reads 42.
	ok = mc.Sched.RunWhile(func() bool {
		for id := ids.ID(1); id <= 4; id++ {
			if v, _ := mc.mems[id].Read("x"); v != "42" {
				return true
			}
		}
		return false
	}, 5_000_000)
	if !ok {
		t.Fatal("written value not visible everywhere")
	}
}

func TestSyncReadSeesCompletedWrite(t *testing.T) {
	mc := newMemCluster(t, 3, 52, nil)
	mc.waitView(t)
	w := mc.mems[1].Write("reg", "v1")
	if !mc.Sched.RunWhile(func() bool { return !w.Done() }, 5_000_000) {
		t.Fatal("write never completed")
	}
	r := mc.mems[3].SyncRead("reg")
	if !mc.Sched.RunWhile(func() bool { return !r.Done() }, 5_000_000) {
		t.Fatal("sync read never completed")
	}
	if v, ok := r.Value(); !ok || v != "v1" {
		t.Fatalf("sync read = %q %v, want v1", v, ok)
	}
}

func TestLastWriterWinsTotalOrder(t *testing.T) {
	mc := newMemCluster(t, 3, 53, nil)
	mc.waitView(t)
	h1 := mc.mems[1].Write("k", "from-1")
	h2 := mc.mems[2].Write("k", "from-2")
	ok := mc.Sched.RunWhile(func() bool { return !(h1.Done() && h2.Done()) }, 6_000_000)
	if !ok {
		t.Fatal("writes never completed")
	}
	mc.RunFor(5000)
	// All replicas agree on a single winner.
	var want string
	for id := ids.ID(1); id <= 3; id++ {
		v, ok := mc.mems[id].Read("k")
		if !ok {
			t.Fatalf("node %v has no value", id)
		}
		if want == "" {
			want = v
		} else if v != want {
			t.Fatalf("divergent register: %q vs %q", v, want)
		}
	}
	if want != "from-1" && want != "from-2" {
		t.Fatalf("winner %q is not one of the writes", want)
	}
}

func TestRegisterSurvivesCoordinatorCrash(t *testing.T) {
	mc := newMemCluster(t, 5, 54, nil)
	mc.waitView(t)
	h := mc.mems[2].Write("durable", "yes")
	if !mc.Sched.RunWhile(func() bool { return !h.Done() }, 5_000_000) {
		t.Fatal("write never completed")
	}
	v, _ := mc.mems[1].VS().CurrentView()
	crd := v.Coordinator()
	mc.RunFor(3000) // let the round propagate everywhere
	mc.Crash(crd)
	ok := mc.Sched.RunWhile(func() bool {
		good := true
		mc.EachAlive(func(n *core.Node) {
			nv, has := mc.mems[n.Self()].VS().CurrentView()
			if !has || nv.Set.Contains(crd) {
				good = false
				return
			}
			if val, _ := mc.mems[n.Self()].Read("durable"); val != "yes" {
				good = false
			}
		})
		return !good
	}, 10_000_000)
	if !ok {
		t.Fatal("register lost after coordinator crash")
	}
}

func TestWriteRejectedWhenQueueFull(t *testing.T) {
	s := New(1, nil)
	s.rep.MaxPending = 1
	h1 := s.Write("a", "1")
	h2 := s.Write("a", "2")
	if h1.Done() || h2.Done() {
		t.Fatal("handles done prematurely")
	}
	if s.rep.PendingLen() != 1 {
		t.Fatalf("pending = %d, want 1 (second rejected)", s.rep.PendingLen())
	}
}

func TestReadUnknownRegister(t *testing.T) {
	s := New(1, nil)
	if _, ok := s.Read("nope"); ok {
		t.Fatal("unknown register returned a value")
	}
}
