// Package regmem emulates self-stabilizing reconfigurable multi-writer
// multi-reader (MWMR) shared memory (Section 4.3, final part). Following
// the approach the paper adopts from Birman et al. [5], the emulation is
// built on the self-stabilizing reconfigurable virtually synchronous SMR
// solution: register writes are commands totally ordered by the view's
// multicast rounds, reads are served from the locally replicated state, and
// a synchronous read flushes a marker command through a round to guarantee
// freshness. During a delicate reconfiguration the coordinator suspends
// the rounds, so operations pause and resume with the state preserved
// (Theorem 4.13); after a brute-force reconfiguration the service recovers
// although the register contents may be reset — exactly the trade-off the
// paper states.
package regmem

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/smr"
	"repro/internal/storage"
	"repro/internal/vs"
)

// WriteCmd stores Value into register Name; Writer/Seq identify the write
// for completion tracking. The command types are exported because they
// travel between processes inside vs rounds (transport/wire registers
// them with the codec).
type WriteCmd struct {
	Name   string
	Value  string
	Writer ids.ID
	Seq    uint64
}

// MarkerCmd is the no-op flushed by synchronous reads.
type MarkerCmd struct {
	Reader ids.ID
	Seq    uint64
}

// State is the register file state: an immutable snapshot of the map
// from register name to current value. Snapshots share structure — Base
// is shared among successors and never mutated; writes stack onto an
// overlay chain (Delta, newest first) until it outgrows the base, at
// which point the snapshot compacts into a fresh map. A write therefore
// costs O(1) amortized instead of the O(registers) full-map copy, while
// every snapshot stays internally consistent (the smr.StateMachine
// immutability contract). The trade-off is on reads: Get walks the
// overlay before the base map, so a read costs O(chain length), bounded
// by the compaction limit max(minCompact, |base|) — acceptable because
// chains stay short between compactions and sharding keeps each
// partition's base small (see BenchmarkReadAfterWrites for the measured
// cost). The fields are exported only because replica states travel
// between processes inside vs rounds (transport/wire encodes them with
// gob).
type State struct {
	Base  map[string]string // shared among snapshots; never mutated
	Delta *Delta            // writes since Base, newest first
	Depth int               // overlay chain length (compaction trigger)
}

// Delta is one overlaid write in a State's chain.
type Delta struct {
	Name, Value string
	Prev        *Delta
}

// minCompact keeps tiny states from compacting on every write.
const minCompact = 16

// asState coerces a replica state value to a State snapshot. Legacy
// peers (wire MinVersion) replicate the pre-refactor representation, a
// bare map[string]string; adopting it as the base of an empty chain
// migrates the register file instead of silently discarding it.
func asState(state any) State {
	switch v := state.(type) {
	case State:
		return v
	case map[string]string:
		return State{Base: v}
	default:
		return State{}
	}
}

// Get returns the current value of the named register.
func (s State) Get(name string) (string, bool) {
	for d := s.Delta; d != nil; d = d.Prev {
		if d.Name == name {
			return d.Value, true
		}
	}
	v, ok := s.Base[name]
	return v, ok
}

// Len returns the number of registers holding a value. It walks the
// overlay chain (bounded by the compaction limit) rather than
// materializing the map.
func (s State) Len() int {
	n := len(s.Base)
	var fresh map[string]bool
	for d := s.Delta; d != nil; d = d.Prev {
		if _, inBase := s.Base[d.Name]; inBase || fresh[d.Name] {
			continue
		}
		if fresh == nil {
			fresh = make(map[string]bool, s.Depth)
		}
		fresh[d.Name] = true
		n++
	}
	return n
}

// snapshot materializes the register map (base plus overlay).
func (s State) snapshot() map[string]string {
	out := make(map[string]string, len(s.Base)+s.Depth)
	for k, v := range s.Base {
		out[k] = v
	}
	// Apply the chain oldest-first so newer writes win.
	deltas := make([]*Delta, 0, s.Depth)
	for d := s.Delta; d != nil; d = d.Prev {
		deltas = append(deltas, d)
	}
	for i := len(deltas) - 1; i >= 0; i-- {
		out[deltas[i].Name] = deltas[i].Value
	}
	return out
}

// put returns the successor snapshot holding name=value.
func (s State) put(name, value string) State {
	out := State{Base: s.Base, Delta: &Delta{Name: name, Value: value, Prev: s.Delta}, Depth: s.Depth + 1}
	if limit := max(minCompact, len(out.Base)); out.Depth > limit {
		// Compaction costs O(registers) but runs only every ≥limit
		// writes, keeping the amortized per-write cost O(1). The
		// trigger depends only on the state itself, so every replica
		// compacts at the same rounds — applies stay deterministic.
		out = State{Base: out.snapshot()}
	}
	return out
}

// regMachine is the register file state machine over State snapshots.
type regMachine struct{}

func (regMachine) Init() any { return State{} }

func (regMachine) Apply(state any, cmd any) any {
	c, ok := cmd.(WriteCmd)
	if !ok {
		return state // markers and garbage leave the state untouched
	}
	return asState(state).put(c.Name, c.Value)
}

// Handle tracks an operation until its command has been delivered.
type Handle struct {
	done  bool
	value string
	hasV  bool
}

// Done reports completion.
func (h *Handle) Done() bool { return h.done }

// Value returns the result of a completed synchronous read.
func (h *Handle) Value() (string, bool) { return h.value, h.hasV && h.done }

// SharedMemory is the per-processor register-file frontend. It implements
// core.App by delegating to the underlying vs.Manager.
type SharedMemory struct {
	self ids.ID
	rep  *smr.Replica
	mgr  *vs.Manager

	nextSeq         uint64
	writes          map[uint64]*Handle
	reads           map[uint64]*Handle
	pendingReadName map[uint64]string
	readyReads      []readyRead

	// Durability (see storage.go): nil store means the pre-storage
	// in-memory behavior, bit for bit.
	store     storage.Backend
	snapEvery uint64
	snapDue   bool
	// onSnapshot, when set, observes every snapshot save (duration and
	// outcome) for the observability layer. The clock is read only when
	// the hook is installed, so simulations without it stay untouched.
	onSnapshot func(d time.Duration, err error)
}

var _ core.App = (*SharedMemory)(nil)

// New builds the shared-memory application for processor self. eval may be
// nil (no coordinator-led reconfigurations).
func New(self ids.ID, eval vs.EvalConf) *SharedMemory {
	s := &SharedMemory{
		self:            self,
		writes:          make(map[uint64]*Handle),
		reads:           make(map[uint64]*Handle),
		pendingReadName: make(map[uint64]string),
	}
	s.rep = smr.NewReplica(self, regMachine{})
	s.mgr = vs.NewManager(self, s, eval)
	return s
}

// VS exposes the underlying virtual-synchrony manager.
func (s *SharedMemory) VS() *vs.Manager { return s.mgr }

// SMR exposes the underlying replicated state machine (cmd/noded's
// propose endpoint submits raw commands through it).
func (s *SharedMemory) SMR() *smr.Replica { return s.rep }

// Write stores value into the named register. The handle completes once
// the write has been delivered in a multicast round (and is thus visible
// to every view member).
func (s *SharedMemory) Write(name, value string) *Handle {
	s.nextSeq++
	h := &Handle{}
	cmd := WriteCmd{Name: name, Value: value, Writer: s.self, Seq: s.nextSeq}
	if !s.rep.Submit(cmd) {
		return h // stays un-done; caller retries
	}
	s.writes[s.nextSeq] = h
	return h
}

// Read returns the locally replicated value of the register. Within a
// view this is the value of the last delivered write — the fast,
// regular-semantics read.
func (s *SharedMemory) Read(name string) (string, bool) {
	return asState(s.mgr.Replica().State).Get(name)
}

// Registers returns the number of registers holding a value in the
// local replica (introspection; cmd/noded's per-shard status).
func (s *SharedMemory) Registers() int {
	return asState(s.mgr.Replica().State).Len()
}

// SyncRead flushes a marker command through a round and then reads, which
// rules out stale values from before the operation started (the atomic
// read). The handle's Value carries the result.
func (s *SharedMemory) SyncRead(name string) *Handle {
	s.nextSeq++
	h := &Handle{}
	if !s.rep.Submit(MarkerCmd{Reader: s.self, Seq: s.nextSeq}) {
		return h
	}
	s.reads[s.nextSeq] = h
	s.pendingReadName[s.nextSeq] = name
	return h
}

// --- vs.App delegation (SharedMemory wraps the replica to observe
// deliveries for completion tracking) ---

// InitState implements vs.App.
func (s *SharedMemory) InitState() any { return s.rep.InitState() }

// Apply implements vs.App.
func (s *SharedMemory) Apply(state any, r vs.Round) any { return s.rep.Apply(state, r) }

// Fetch implements vs.App.
func (s *SharedMemory) Fetch() any { return s.rep.Fetch() }

// Deliver implements vs.App: write-ahead-logs the round's commands and
// completes handles whose commands appear (each member's round input
// may be a smr.Batch bundling several). Inputs are walked in ascending
// member order — the order Apply executes them — so the WAL replays to
// the same last-write-wins outcome.
func (s *SharedMemory) Deliver(r vs.Round) {
	s.rep.Deliver(r)
	members := make([]ids.ID, 0, len(r.Inputs))
	for m := range r.Inputs {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, m := range members {
		s.deliverInput(r.Inputs[m])
	}
}

func (s *SharedMemory) deliverInput(in any) {
	for _, cmd := range smr.Commands(in) {
		s.logCommand(cmd)
		switch c := cmd.(type) {
		case WriteCmd:
			if c.Writer == s.self {
				if h, ok := s.writes[c.Seq]; ok {
					h.done = true
					delete(s.writes, c.Seq)
				}
			}
		case MarkerCmd:
			if c.Reader == s.self {
				if h, ok := s.reads[c.Seq]; ok {
					name := s.pendingReadName[c.Seq]
					// The state as of this round is not yet applied
					// here; read after the manager applies it — mark
					// and resolve on the next tick.
					s.readyReads = append(s.readyReads, readyRead{h: h, name: name})
					delete(s.reads, c.Seq)
					delete(s.pendingReadName, c.Seq)
				}
			}
		}
	}
}

// SetMaxBatch bounds the commands the underlying replica bundles into
// one multicast round input (smr.Replica.MaxBatch; <= 1 disables
// batching). Configure it before serving traffic.
func (s *SharedMemory) SetMaxBatch(n int) { s.rep.MaxBatch = n }

// SetAdaptiveBatch switches the underlying replica's bundle sizing to
// the queue-depth EWMA (smr.Replica.AdaptiveBatch). Configure it before
// serving traffic.
func (s *SharedMemory) SetAdaptiveBatch(on bool) { s.rep.AdaptiveBatch = on }

type readyRead struct {
	h    *Handle
	name string
}

// --- core.App delegation ---

// Tick implements core.App.
func (s *SharedMemory) Tick(n *core.Node) {
	s.mgr.Tick(n)
	if len(s.readyReads) > 0 {
		for _, rr := range s.readyReads {
			v, ok := s.Read(rr.name)
			rr.h.value, rr.h.hasV = v, ok
			rr.h.done = true
		}
		s.readyReads = nil
	}
	// Snapshot after the manager ticked: the state now includes every
	// round whose commands Deliver appended, so the snapshot's coverage
	// claim (all records so far) holds.
	s.maybeSnapshot()
}

// HandleApp implements core.App.
func (s *SharedMemory) HandleApp(from ids.ID, payload any, n *core.Node) {
	s.mgr.HandleApp(from, payload, n)
}

// Outgoing implements core.App.
func (s *SharedMemory) Outgoing(to ids.ID, n *core.Node) any {
	return s.mgr.Outgoing(to, n)
}
