// Package conformance is the shared behavioral test suite every
// transport backend must pass: registration and tick semantics, lossless
// and fully-lossy delivery, duplication injection, crash stop-failure,
// Inspect serialization, Close idempotence, batched datalink payloads
// crossing intact (for tcp: through the version-3 wire batch field, plus
// a mixed-version pair exercising the writer downgrade), a full
// reconfiguration-stack cluster converging on the backend, and a sharded
// register cluster — two service stacks multiplexed over one transport
// with shard-tagged envelopes — completing writes on every shard
// concurrently.
//
// Backends invoke Run from their own test files, so `go test ./...`
// exercises the suite against simnet, inproc and tcp in one sweep (the
// CI -race run covers the live backends' concurrency).
package conformance

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/shard"
	"repro/internal/transport"
)

// Backend describes one transport implementation under test.
type Backend struct {
	// Name labels the subtests.
	Name string
	// New builds a fresh transport able to host any of the given node
	// identifiers. The suite closes it.
	New func(t *testing.T, seed int64, opts transport.Options, universe ids.Set) Harness
	// MixedPair, when non-nil, builds two interconnected transports
	// writing different wire-format versions over one address universe:
	// a writes version 2 (the newest version without the batch field),
	// b writes the current version; both read the full accepted range.
	// Backends without a serialized wire format (simnet, inproc) leave
	// it nil and the mixed-version subtest is skipped. The suite closes
	// both.
	MixedPair func(t *testing.T, seed int64, opts transport.Options, universe ids.Set) (a, b Harness)
	// VersionPair, when non-nil, builds two interconnected transports
	// pinned to the two given wire-format versions (0 = current). It
	// powers version-specific pairings beyond MixedPair's fixed v2
	// shape — e.g. the v4↔v5 arm asserting the binary fast path and
	// plain gob framing interoperate losslessly. Backends without a
	// serialized wire format leave it nil and those subtests are
	// skipped.
	VersionPair func(t *testing.T, seed int64, opts transport.Options, universe ids.Set, va, vb byte) (a, b Harness)
}

// Harness couples a transport with the way model time advances on it:
// virtual (the test pumps a scheduler) or real (the test sleeps).
type Harness struct {
	Net transport.Transport
	// Settle lets the medium make roughly d of model-time progress.
	Settle func(d time.Duration)
}

// handler counts events; its fields are only touched from the node's
// execution context (writes by the backend, reads via Inspect).
type handler struct {
	ticks    int
	received int
	lastFrom ids.ID
	lastPay  any
}

func (h *handler) Receive(from ids.ID, payload any) {
	h.received++
	h.lastFrom = from
	h.lastPay = payload
}

func (h *handler) Tick() { h.ticks++ }

// packetRecorder keeps every received datalink packet in arrival order;
// touched only from the node's execution context, like handler.
type packetRecorder struct {
	pkts []datalink.Packet
}

func (r *packetRecorder) Receive(from ids.ID, payload any) {
	if pkt, ok := payload.(datalink.Packet); ok {
		r.pkts = append(r.pkts, pkt)
	}
}

func (r *packetRecorder) Tick() {}

// quietOpts is a fault-free configuration for exact-delivery assertions.
func quietOpts() transport.Options {
	return transport.Options{
		Capacity:  64,
		MinDelay:  0,
		MaxDelay:  2 * time.Millisecond,
		TickEvery: time.Millisecond,
	}
}

// await polls cond (outside any node context) every settle step until it
// holds or the model-time budget runs out.
func await(h Harness, budget time.Duration, cond func() bool) bool {
	step := 20 * time.Millisecond
	for spent := time.Duration(0); spent < budget; spent += step {
		if cond() {
			return true
		}
		h.Settle(step)
	}
	return cond()
}

// inspected reads a value from inside the node's execution context.
func inspected[T any](t *testing.T, h Harness, id ids.ID, read func() T) T {
	t.Helper()
	var out T
	if !h.Net.Inspect(id, func() { out = read() }) {
		t.Fatalf("Inspect(%v) failed", id)
	}
	return out
}

// Run executes the conformance suite against the backend.
func Run(t *testing.T, b Backend) {
	universe := ids.Range(1, 8)

	t.Run("TicksAndRegistration", func(t *testing.T) {
		h := b.New(t, 1, quietOpts(), universe)
		defer h.Net.Close()
		ha := &handler{}
		if err := h.Net.AddNode(1, ha); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.AddNode(1, &handler{}); err == nil {
			t.Fatal("duplicate AddNode accepted")
		}
		if !await(h, 5*time.Second, func() bool {
			return inspected(t, h, 1, func() int { return ha.ticks }) >= 5
		}) {
			t.Fatal("node never ticked")
		}
		if !h.Net.Alive().Contains(1) {
			t.Fatal("registered node not alive")
		}
	})

	t.Run("LosslessDelivery", func(t *testing.T) {
		h := b.New(t, 2, quietOpts(), universe)
		defer h.Net.Close()
		src, dst := &handler{}, &handler{}
		if err := h.Net.AddNode(1, src); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.AddNode(2, dst); err != nil {
			t.Fatal(err)
		}
		const k = 20
		for i := 0; i < k; i++ {
			h.Net.Send(1, 2, i)
		}
		if !await(h, 10*time.Second, func() bool {
			return inspected(t, h, 2, func() int { return dst.received }) == k
		}) {
			got := inspected(t, h, 2, func() int { return dst.received })
			t.Fatalf("delivered %d/%d", got, k)
		}
		// No spurious duplication without DupProb.
		h.Settle(100 * time.Millisecond)
		if got := inspected(t, h, 2, func() int { return dst.received }); got != k {
			t.Fatalf("delivered %d after settling, want exactly %d", got, k)
		}
		from := inspected(t, h, 2, func() ids.ID { return dst.lastFrom })
		if from != 1 {
			t.Fatalf("sender identity %v, want p1", from)
		}
	})

	t.Run("TotalLossDeliversNothing", func(t *testing.T) {
		opts := quietOpts()
		opts.LossProb = 1
		h := b.New(t, 3, opts, universe)
		defer h.Net.Close()
		dst := &handler{}
		if err := h.Net.AddNode(1, &handler{}); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.AddNode(2, dst); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			h.Net.Send(1, 2, i)
		}
		h.Settle(200 * time.Millisecond)
		if got := inspected(t, h, 2, func() int { return dst.received }); got != 0 {
			t.Fatalf("full loss delivered %d packets", got)
		}
	})

	t.Run("DuplicationInjection", func(t *testing.T) {
		opts := quietOpts()
		opts.DupProb = 1
		h := b.New(t, 4, opts, universe)
		defer h.Net.Close()
		dst := &handler{}
		if err := h.Net.AddNode(1, &handler{}); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.AddNode(2, dst); err != nil {
			t.Fatal(err)
		}
		h.Net.Send(1, 2, "once")
		if !await(h, 5*time.Second, func() bool {
			return inspected(t, h, 2, func() int { return dst.received }) >= 2
		}) {
			got := inspected(t, h, 2, func() int { return dst.received })
			t.Fatalf("DupProb=1 delivered %d copies, want >= 2", got)
		}
	})

	t.Run("CrashStopsNode", func(t *testing.T) {
		h := b.New(t, 5, quietOpts(), universe)
		defer h.Net.Close()
		victim := &handler{}
		if err := h.Net.AddNode(1, &handler{}); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.AddNode(2, victim); err != nil {
			t.Fatal(err)
		}
		if !await(h, 5*time.Second, func() bool {
			return inspected(t, h, 2, func() int { return victim.ticks }) > 0
		}) {
			t.Fatal("victim never ticked")
		}
		h.Net.Crash(2)
		if h.Net.Alive().Contains(2) {
			t.Fatal("crashed node still alive")
		}
		if h.Net.Inspect(2, func() {}) {
			t.Fatal("Inspect of crashed node succeeded")
		}
		// Unknown/crashed destinations drop silently.
		h.Net.Send(1, 2, "into the void")
		h.Net.Send(1, 99, "into the void")
		h.Settle(50 * time.Millisecond)
	})

	t.Run("CloseIdempotent", func(t *testing.T) {
		h := b.New(t, 6, quietOpts(), universe)
		if err := h.Net.AddNode(1, &handler{}); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.Close(); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.Close(); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.AddNode(3, &handler{}); err == nil {
			t.Fatal("AddNode after Close accepted")
		}
	})

	t.Run("BatchedPayloads", func(t *testing.T) {
		// Batched DATA packets (datalink MaxBatch > 1) must cross the
		// backend as one unit: every batch arrives exactly once with its
		// payloads in order — no loss, duplication or reordering across
		// batch boundaries. For tcp this exercises the wire codec's
		// version-3 batch field end to end, envelopes (with shard tags)
		// and raw payloads mixed.
		opts := quietOpts()
		h := b.New(t, 9, opts, universe)
		defer h.Net.Close()
		dst := &packetRecorder{}
		if err := h.Net.AddNode(1, &handler{}); err != nil {
			t.Fatal(err)
		}
		if err := h.Net.AddNode(2, dst); err != nil {
			t.Fatal(err)
		}
		const k = 12
		sent := make(map[uint64]datalink.Packet, k+1)
		for i := 0; i < k; i++ {
			pkt := datalink.Packet{
				Kind: datalink.KindData, Session: uint64(i + 1), Seq: uint8(i),
				Batch: []any{
					fmt.Sprintf("b%d-0", i),
					core.Envelope{
						App:       fmt.Sprintf("b%d-1", i),
						ShardApps: []core.ShardApp{{Shard: 1, App: fmt.Sprintf("b%d-s1", i)}},
					},
					fmt.Sprintf("b%d-2", i),
				},
			}
			sent[pkt.Session] = pkt
			h.Net.Send(1, 2, pkt)
		}
		// A legacy single-payload packet shares the stream unharmed.
		legacy := datalink.Packet{Kind: datalink.KindData, Session: k + 1, Seq: 0, Payload: "single"}
		sent[legacy.Session] = legacy
		h.Net.Send(1, 2, legacy)

		if !await(h, 10*time.Second, func() bool {
			return inspected(t, h, 2, func() int { return len(dst.pkts) }) == len(sent)
		}) {
			got := inspected(t, h, 2, func() int { return len(dst.pkts) })
			t.Fatalf("delivered %d/%d batched packets", got, len(sent))
		}
		// No late duplicates across batch boundaries.
		h.Settle(100 * time.Millisecond)
		pkts := inspected(t, h, 2, func() []datalink.Packet {
			return append([]datalink.Packet(nil), dst.pkts...)
		})
		if len(pkts) != len(sent) {
			t.Fatalf("delivered %d packets after settling, want exactly %d", len(pkts), len(sent))
		}
		seen := map[uint64]bool{}
		for _, got := range pkts {
			if seen[got.Session] {
				t.Fatalf("batch %d delivered twice", got.Session)
			}
			seen[got.Session] = true
			want, ok := sent[got.Session]
			if !ok {
				t.Fatalf("unknown batch session %d", got.Session)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("batch %d mutated in transit:\n in=%#v\nout=%#v", got.Session, want, got)
			}
		}
	})

	t.Run("MixedVersionPair", func(t *testing.T) {
		// A version-2-writing process and a current-version process
		// interoperate: current→old batches arrive intact (old readers
		// of this codebase accept newer preambles up to wire.Version;
		// here "old" means old *writer*), while old-writer→current
		// batched packets collapse to their freshest payload — the
		// documented lossy downgrade — and unbatched traffic crosses
		// unharmed both ways.
		if b.MixedPair == nil {
			t.Skip("backend has no serialized wire format")
		}
		ha, hb := b.MixedPair(t, 10, quietOpts(), universe)
		defer ha.Net.Close()
		defer hb.Net.Close()
		oldRx, newRx := &packetRecorder{}, &packetRecorder{}
		if err := ha.Net.AddNode(1, oldRx); err != nil {
			t.Fatal(err)
		}
		if err := hb.Net.AddNode(2, newRx); err != nil {
			t.Fatal(err)
		}
		batch := []any{"stale-1", "stale-2", "fresh"}
		// current writer → old-writer process: batch intact.
		hb.Net.Send(2, 1, datalink.Packet{Kind: datalink.KindData, Session: 1, Batch: batch})
		// old (v2) writer → current process: batch collapses to "fresh".
		ha.Net.Send(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 2, Batch: batch})
		// Unbatched traffic both ways.
		hb.Net.Send(2, 1, datalink.Packet{Kind: datalink.KindData, Session: 3, Payload: "plain"})
		ha.Net.Send(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 4, Payload: "plain"})

		if !await(ha, 10*time.Second, func() bool {
			atOld := inspected(t, ha, 1, func() int { return len(oldRx.pkts) })
			atNew := inspected(t, hb, 2, func() int { return len(newRx.pkts) })
			return atOld == 2 && atNew == 2
		}) {
			t.Fatalf("mixed pair delivered %d+%d packets, want 2+2",
				inspected(t, ha, 1, func() int { return len(oldRx.pkts) }),
				inspected(t, hb, 2, func() int { return len(newRx.pkts) }))
		}
		atOld := inspected(t, ha, 1, func() []datalink.Packet {
			return append([]datalink.Packet(nil), oldRx.pkts...)
		})
		for _, pkt := range atOld {
			switch pkt.Session {
			case 1:
				if !reflect.DeepEqual(pkt.Batch, batch) {
					t.Fatalf("current→old batch mutated: %#v", pkt.Batch)
				}
			case 3:
				if pkt.Payload != "plain" || pkt.Batch != nil {
					t.Fatalf("current→old single payload mutated: %#v", pkt)
				}
			default:
				t.Fatalf("old side got unexpected session %d", pkt.Session)
			}
		}
		atNew := inspected(t, hb, 2, func() []datalink.Packet {
			return append([]datalink.Packet(nil), newRx.pkts...)
		})
		for _, pkt := range atNew {
			switch pkt.Session {
			case 2:
				if pkt.Batch != nil || pkt.Payload != "fresh" {
					t.Fatalf("v2 downgrade kept %#v, want freshest payload only", pkt)
				}
			case 4:
				if pkt.Payload != "plain" {
					t.Fatalf("old→current single payload mutated: %#v", pkt)
				}
			default:
				t.Fatalf("new side got unexpected session %d", pkt.Session)
			}
		}
	})

	t.Run("MixedVersionPairV4V5", func(t *testing.T) {
		// A version-4 (plain gob framing) process and a version-5
		// (binary fast path) process interoperate losslessly in both
		// directions: version 5 is a framing-only change, so batched and
		// single-payload DATA traffic must cross unharmed — the v5
		// writer emits binary frames only on v5 streams, and the v4
		// writer's gob frames decode identically on a v5 reader.
		if b.VersionPair == nil {
			t.Skip("backend has no serialized wire format")
		}
		hv4, hv5 := b.VersionPair(t, 11, quietOpts(), universe, 4, 5)
		defer hv4.Net.Close()
		defer hv5.Net.Close()
		rx4, rx5 := &packetRecorder{}, &packetRecorder{}
		if err := hv4.Net.AddNode(1, rx4); err != nil {
			t.Fatal(err)
		}
		if err := hv5.Net.AddNode(2, rx5); err != nil {
			t.Fatal(err)
		}
		batch := []any{"p1", "p2", "p3"}
		hv5.Net.Send(2, 1, datalink.Packet{Kind: datalink.KindData, Session: 1, Batch: batch})
		hv4.Net.Send(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 2, Batch: batch})
		hv5.Net.Send(2, 1, datalink.Packet{Kind: datalink.KindData, Session: 3, Payload: "plain"})
		hv4.Net.Send(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 4, Payload: "plain"})

		if !await(hv4, 10*time.Second, func() bool {
			at4 := inspected(t, hv4, 1, func() int { return len(rx4.pkts) })
			at5 := inspected(t, hv5, 2, func() int { return len(rx5.pkts) })
			return at4 == 2 && at5 == 2
		}) {
			t.Fatalf("v4↔v5 pair delivered %d+%d packets, want 2+2",
				inspected(t, hv4, 1, func() int { return len(rx4.pkts) }),
				inspected(t, hv5, 2, func() int { return len(rx5.pkts) }))
		}
		check := func(name string, pkts []datalink.Packet, batchSession, plainSession uint64) {
			for _, pkt := range pkts {
				switch pkt.Session {
				case batchSession:
					if !reflect.DeepEqual(pkt.Batch, batch) {
						t.Fatalf("%s batch mutated: %#v", name, pkt.Batch)
					}
				case plainSession:
					if pkt.Payload != "plain" || pkt.Batch != nil {
						t.Fatalf("%s single payload mutated: %#v", name, pkt)
					}
				default:
					t.Fatalf("%s got unexpected session %d", name, pkt.Session)
				}
			}
		}
		check("v5→v4", inspected(t, hv4, 1, func() []datalink.Packet {
			return append([]datalink.Packet(nil), rx4.pkts...)
		}), 1, 3)
		check("v4→v5", inspected(t, hv5, 2, func() []datalink.Packet {
			return append([]datalink.Packet(nil), rx5.pkts...)
		}), 2, 4)
	})

	t.Run("FullStackConvergence", func(t *testing.T) {
		// A 3-node reconfiguration stack bootstraps to an agreed
		// configuration under mild faults — the subsystem's reason to
		// exist, demonstrated per backend.
		opts := transport.Options{
			Capacity:   32,
			MinDelay:   0,
			MaxDelay:   2 * time.Millisecond,
			LossProb:   0.05,
			DupProb:    0.02,
			TickEvery:  time.Millisecond,
			TickJitter: time.Millisecond,
		}
		h := b.New(t, 7, opts, universe)
		defer h.Net.Close()
		all := ids.Range(1, 3)
		nodes := make(map[ids.ID]*core.Node)
		for i := ids.ID(1); i <= 3; i++ {
			n, err := core.NewNode(h.Net, core.Params{
				Self: i, N: 16, Initial: recsa.ConfigOf(all),
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = n
		}
		for i := ids.ID(1); i <= 3; i++ {
			if !h.Net.Inspect(i, func() {
				nodes[i].ConnectAll(all.Remove(i))
				nodes[i].Detector.Bootstrap(all.Remove(i))
			}) {
				t.Fatalf("wiring node %v failed", i)
			}
		}
		converged := func() bool {
			for i := ids.ID(1); i <= 3; i++ {
				ok := inspected(t, h, i, func() bool {
					q, has := nodes[i].Quorum()
					return has && q.Equal(all) && nodes[i].NoReco()
				})
				if !ok {
					return false
				}
			}
			return true
		}
		if !await(h, 60*time.Second, converged) {
			t.Fatal("full stack never converged on this backend")
		}
	})

	t.Run("ShardedServiceStacks", func(t *testing.T) {
		// Two register shards multiplexed over one transport: each node
		// hosts two vs/smr/regmem stacks on a singleton reconfiguration
		// layer, envelopes carry shard-tagged payloads (for tcp, through
		// the wire codec's version-2 shard field), and writes routed to
		// both shards complete concurrently and replicate to every node.
		const n, shards = 3, 2
		opts := transport.Options{
			Capacity:   32,
			MaxDelay:   2 * time.Millisecond,
			TickEvery:  time.Millisecond,
			TickJitter: time.Millisecond,
		}
		h := b.New(t, 8, opts, universe)
		defer h.Net.Close()
		all := ids.Range(1, n)
		maps := make(map[ids.ID]*shard.Map)
		nodes := make(map[ids.ID]*core.Node)
		for i := ids.ID(1); i <= n; i++ {
			m := shard.New(i, shards, nil)
			maps[i] = m
			node, err := core.NewNode(h.Net, core.Params{
				Self: i, N: 16, Initial: recsa.ConfigOf(all),
				EvalConf: func(ids.Set, ids.Set) bool { return false },
				Apps:     m.Apps(),
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = node
		}
		for i := ids.ID(1); i <= n; i++ {
			if !h.Net.Inspect(i, func() {
				nodes[i].ConnectAll(all.Remove(i))
				nodes[i].Detector.Bootstrap(all.Remove(i))
			}) {
				t.Fatalf("wiring node %v failed", i)
			}
		}
		// Every shard of every node installs a view.
		if !await(h, 60*time.Second, func() bool {
			for i := ids.ID(1); i <= n; i++ {
				ok := inspected(t, h, i, func() bool {
					for s := 0; s < shards; s++ {
						mem, err := maps[i].Mem(s)
						if err != nil {
							return false
						}
						if _, has := mem.VS().CurrentView(); !has {
							return false
						}
					}
					return true
				})
				if !ok {
					return false
				}
			}
			return true
		}) {
			t.Fatal("not every shard installed a view on this backend")
		}
		// One register per shard, written concurrently through node 1's
		// router.
		perShard := shard.NamesPerShard(shards, 1)
		names := make([]string, shards)
		for s, group := range perShard {
			names[s] = group[0]
		}
		handles := make([]*regmem.Handle, shards)
		if !h.Net.Inspect(1, func() {
			for s, name := range names {
				hnd, got := maps[1].Write(name, fmt.Sprintf("v%d", s))
				if got != s {
					t.Errorf("write %q routed to shard %d, want %d", name, got, s)
				}
				handles[s] = hnd
			}
		}) {
			t.Fatal("Inspect(1) failed")
		}
		if !await(h, 60*time.Second, func() bool {
			return inspected(t, h, 1, func() bool {
				for _, hnd := range handles {
					if !hnd.Done() {
						return false
					}
				}
				return true
			})
		}) {
			t.Fatal("cross-shard writes never completed")
		}
		// Both registers are readable on every node through the router.
		if !await(h, 60*time.Second, func() bool {
			for i := ids.ID(1); i <= n; i++ {
				ok := inspected(t, h, i, func() bool {
					for s, name := range names {
						if v, _ := maps[i].Read(name); v != fmt.Sprintf("v%d", s) {
							return false
						}
					}
					return true
				})
				if !ok {
					return false
				}
			}
			return true
		}) {
			t.Fatal("cross-shard writes not visible on every node")
		}
	})
}
