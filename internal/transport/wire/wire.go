// Package wire is the versioned codec of the TCP transport backend: the
// message schema for everything the reconfiguration stack sends between
// processes — recSA/recMA state broadcasts, joining requests/responses,
// label/counter gossip and RPCs, and vs replica exchanges — framed as
// length-prefixed gob over a persistent per-connection stream.
//
// Stream layout:
//
//	preamble: 6-byte magic "recfg\x00", 1-byte version, 1-byte reserved
//	frames:   4-byte big-endian header, then payload bytes
//
// The header's low 30 bits are the payload length; bit 31 (version 4+)
// marks a chunk frame of a chunked state transfer, and bit 30 (version
// 5+) marks a self-contained binary fast-path frame (see binary.go).
// The remaining (gob) frame payloads of one connection form a single
// continuous gob stream (type definitions are transmitted once, on
// first use), decoded into Msg values; binary frames may interleave
// freely because they never touch the gob stream state.
//
// A message larger than MaxFrame is chunked (version 4): each chunk
// frame carries a fixed header — the declared total size of the whole
// transfer, the chunk's index, the chunk count, and a CRC-32 of the
// chunk data — followed by a slice of the message's stream encoding.
// The reader validates the declared total against MaxMessage and the
// sequencing *before* buffering any chunk data, verifies each chunk's
// CRC, and splices the verified bytes back into the continuous gob
// stream. Writers negotiated below version 4 fall back to the legacy
// behavior of spanning the message over several plain frames.
//
// A reader rejects mismatched magic, versions outside
// [MinVersion, Version], over-long frames before buffering them,
// chunked transfers whose declared total exceeds MaxMessage before
// buffering any chunk, messages spanning more than MaxMessage bytes,
// and absurd batch counts, so a corrupted or hostile peer cannot keep
// the reader buffering without bound. A writer can be negotiated down to
// any accepted version (NewWriterVersion): it stamps that version in the
// preamble and downgrades every message's schema and framing to match,
// which is how new binaries keep serving old readers during a rolling
// upgrade.
//
// Schema notes. Msg/Packet/Envelope mirror datalink.Packet and
// core.Envelope with explicit presence booleans instead of pointers: gob
// omits zero-valued fields, so a pointer to a zero value (e.g. the
// explicit join-denial &join.Response{}) would silently decode as nil
// and change protocol semantics. Version bumps are required whenever the
// schema of any transmitted type changes shape.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/join"
	"repro/internal/recma"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/smr"
	"repro/internal/vs"
)

// Version is the wire-format version written by this build. Version 2
// added the shard-tagged application payloads (Envelope.HasShards /
// Shards); Version 3 added the batched datalink payloads
// (Packet.HasBatch / Batch, DESIGN.md §11); Version 4 added chunked
// state transfer (oversize messages travel as flagged chunk frames with
// a declared total, sequencing, and per-chunk CRC, DESIGN.md §12) — a
// framing change only, the message schema is untouched; Version 5 added
// the binary fast path (DESIGN.md §14): hot DATA/batch packets whose
// payload types all belong to the stack's closed type set travel as
// self-contained binFlag frames in a hand-rolled binary encoding
// instead of the gob stream — again framing only, the message schema
// and the gob fallback are untouched, and a v5 writer emits plain gob
// for everything a binary frame cannot carry. The schema
// additions are gob-compatible — an older frame simply decodes with the
// presence boolean false — so readers accept [MinVersion, Version], and
// unbatched single-shard frames carry no format break: shard 0's
// payload still travels in the legacy App slot and a single payload in
// the legacy Payload slot.
//
// Writing is negotiable too: NewWriterVersion emits any version in the
// accepted range and downgrades the schema of every message to it
// (dropping what the older schema cannot express — see downgrade), so a
// new binary can serve old readers during a rolling upgrade. App-level
// state representations that changed alongside a bump must migrate on
// adoption themselves; regmem does (a legacy map[string]string replica
// state is adopted as the base of a delta-chain State rather than
// discarded).
const Version = 5

// MinVersion is the oldest preamble version a Reader accepts (and the
// oldest a Writer can be asked to emit).
const MinVersion = 1

// MaxFrame bounds a single frame's payload size. Messages whose
// encoding exceeds it are split across several frames (the frame layer
// chunks one continuous gob stream, so readers of every version
// reassemble them transparently).
const MaxFrame = 4 << 20

// MaxMessage bounds the total bytes one decoded message may span
// across frames: generous for multi-frame state snapshots, but a
// reader stops feeding the gob decoder past it, so a hostile stream
// cannot have a single message buffered without bound. (gob itself
// additionally refuses messages above its ~1 GiB internal sanity cap
// before this budget is consumed.)
const MaxMessage = 64 << 20

// MaxWireBatch bounds the per-packet batch length a Reader accepts —
// far above any sane datalink.Options.MaxBatch, it only stops a
// corrupted or hostile peer from making batch fan-out allocate wildly.
const MaxWireBatch = 4096

var magic = [6]byte{'r', 'e', 'c', 'f', 'g', 0}

const preambleLen = len(magic) + 2 // + version + reserved

// chunkFlag marks a frame header as a chunk frame (version 4).
const chunkFlag = 1 << 31

// chunkHeaderLen is the fixed chunk-frame header: 8-byte declared total
// transfer size, 4-byte chunk index, 4-byte chunk count, 4-byte IEEE
// CRC-32 of the chunk data.
const chunkHeaderLen = 8 + 4 + 4 + 4

func init() {
	// Concrete types that travel inside `any` slots. Named explicitly so
	// renaming a Go type does not silently change the wire format.
	gob.RegisterName("repro/vs.Payload", vs.Payload{})
	gob.RegisterName("repro/counter.Message", counter.Message{})
	gob.RegisterName("repro/regmem.WriteCmd", regmem.WriteCmd{})
	gob.RegisterName("repro/regmem.MarkerCmd", regmem.MarkerCmd{})
	gob.RegisterName("repro/regmem.State", regmem.State{})
	gob.RegisterName("repro/smr.KVCmd", smr.KVCmd{})
	gob.RegisterName("repro/smr.BankCmd", smr.BankCmd{})
	gob.RegisterName("repro/smr.Batch", smr.Batch{})
	gob.RegisterName("repro/map.ss", map[string]string{})
	gob.RegisterName("repro/map.si64", map[string]int64{})
	gob.RegisterName("repro/map.idany", map[ids.ID]any{})
	gob.RegisterName("repro/ids.Set", ids.Set{})
	// Primitive payloads (tests and fault-injection garbage).
	gob.Register("")
	gob.Register(0)
	gob.Register(false)
}

// Msg is one transport send: From/To routing plus the payload in wire
// form.
type Msg struct {
	From, To ids.ID
	// HasPkt/Pkt carry a datalink.Packet — the only payload the stack
	// itself produces.
	HasPkt bool
	Pkt    Packet
	// Raw carries any other payload (fault-injection garbage, tests).
	Raw any
}

// Packet mirrors datalink.Packet. HasBatch/Batch is the version-3
// batched-payload field: one entry per payload of a multi-payload DATA
// cycle, in delivery order, with explicit presence (an empty batch is
// distinguishable from an unbatched packet).
type Packet struct {
	Kind     int
	Session  uint64
	Seq      uint8
	HasEnv   bool
	Env      Envelope
	Raw      any // non-Envelope datalink payload
	HasBatch bool
	Batch    []BatchItem
}

// BatchItem is one payload of a batched DATA packet, in the same
// Envelope-or-Raw shape as the packet's single-payload slots.
type BatchItem struct {
	HasEnv bool
	Env    Envelope
	Raw    any
}

// Envelope mirrors core.Envelope with presence flags for the pointer
// fields. App carries shard 0's application payload (the only payload
// before sharding, so unsharded frames keep their exact shape);
// HasShards/Shards is the version-2 shard-mux field carrying the tagged
// payloads of shards ≥ 1 with explicit presence — a shard tag of 0 in an
// entry is preserved even though gob elides zero struct fields, because
// presence is signalled by HasShards and the entry itself, never by the
// tag's value.
type Envelope struct {
	HasSA       bool
	SA          recsa.Message
	HasMA       bool
	MA          recma.Message
	JoinReq     bool
	HasJoinResp bool
	JoinResp    join.Response
	App         any
	HasShards   bool
	Shards      []ShardApp
}

// ShardApp mirrors core.ShardApp: one shard-tagged application payload.
type ShardApp struct {
	Shard int
	App   any
}

// NewMsg converts a transport payload into its wire form.
func NewMsg(from, to ids.ID, payload any) Msg {
	m := Msg{From: from, To: to}
	pkt, ok := payload.(datalink.Packet)
	if !ok {
		m.Raw = payload
		return m
	}
	m.HasPkt = true
	m.Pkt = Packet{Kind: int(pkt.Kind), Session: pkt.Session, Seq: pkt.Seq}
	if pkt.Batch != nil {
		// Payload and Batch are mutually exclusive per the
		// datalink.Packet contract; a receiving endpoint ignores
		// Payload when Batch is set, so it is not carried either.
		m.Pkt.HasBatch = true
		m.Pkt.Batch = make([]BatchItem, 0, len(pkt.Batch))
		for _, p := range pkt.Batch {
			var item BatchItem
			if env, ok := p.(core.Envelope); ok {
				item.HasEnv, item.Env = true, toWireEnvelope(env)
			} else {
				item.Raw = p
			}
			m.Pkt.Batch = append(m.Pkt.Batch, item)
		}
		return m
	}
	env, ok := pkt.Payload.(core.Envelope)
	if !ok {
		m.Pkt.Raw = pkt.Payload
		return m
	}
	m.Pkt.HasEnv = true
	m.Pkt.Env = toWireEnvelope(env)
	return m
}

// toWireEnvelope converts a core.Envelope to its explicit-presence wire
// form.
func toWireEnvelope(env core.Envelope) Envelope {
	var w Envelope
	if env.RecSA != nil {
		w.HasSA, w.SA = true, *env.RecSA
	}
	if env.RecMA != nil {
		w.HasMA, w.MA = true, *env.RecMA
	}
	w.JoinReq = env.JoinReq
	if env.JoinResp != nil {
		w.HasJoinResp, w.JoinResp = true, *env.JoinResp
	}
	w.App = env.App
	if env.ShardApps != nil {
		w.HasShards = true
		w.Shards = make([]ShardApp, 0, len(env.ShardApps))
		for _, sa := range env.ShardApps {
			w.Shards = append(w.Shards, ShardApp{Shard: sa.Shard, App: sa.App})
		}
	}
	return w
}

// fromWireEnvelope reconstructs the core.Envelope.
func fromWireEnvelope(w Envelope) core.Envelope {
	env := core.Envelope{JoinReq: w.JoinReq, App: w.App}
	if w.HasSA {
		sa := w.SA
		env.RecSA = &sa
	}
	if w.HasMA {
		ma := w.MA
		env.RecMA = &ma
	}
	if w.HasJoinResp {
		jr := w.JoinResp
		env.JoinResp = &jr
	}
	if w.HasShards {
		env.ShardApps = make([]core.ShardApp, 0, len(w.Shards))
		for _, sa := range w.Shards {
			env.ShardApps = append(env.ShardApps, core.ShardApp{Shard: sa.Shard, App: sa.App})
		}
	}
	return env
}

// Payload reconstructs the transport payload.
func (m Msg) Payload() any {
	if !m.HasPkt {
		return m.Raw
	}
	pkt := datalink.Packet{
		Kind:    datalink.Kind(m.Pkt.Kind),
		Session: m.Pkt.Session,
		Seq:     m.Pkt.Seq,
	}
	if m.Pkt.HasBatch {
		pkt.Batch = make([]any, 0, len(m.Pkt.Batch))
		for _, item := range m.Pkt.Batch {
			if item.HasEnv {
				pkt.Batch = append(pkt.Batch, fromWireEnvelope(item.Env))
			} else {
				pkt.Batch = append(pkt.Batch, item.Raw)
			}
		}
		return pkt
	}
	if !m.Pkt.HasEnv {
		pkt.Payload = m.Pkt.Raw
		return pkt
	}
	pkt.Payload = fromWireEnvelope(m.Pkt.Env)
	return pkt
}

// Writer frames a gob stream onto w. Not safe for concurrent use.
type Writer struct {
	w       *bufio.Writer
	buf     bytes.Buffer
	enc     *gob.Encoder
	bin     []byte // binary fast-path scratch (version 5)
	version byte
	frames  uint64
}

// NewWriter writes the current-version preamble and returns a frame
// writer.
func NewWriter(w io.Writer) (*Writer, error) { return NewWriterVersion(w, Version) }

// NewWriterVersion writes a preamble for any supported version and
// returns a writer that emits that version's schema: messages are
// downgraded (see downgrade) before encoding, so a reader that only
// speaks the negotiated version never sees fields it cannot decode.
func NewWriterVersion(w io.Writer, version byte) (*Writer, error) {
	if version < MinVersion || version > Version {
		return nil, fmt.Errorf("wire: cannot write version %d, support %d..%d", version, MinVersion, Version)
	}
	bw := bufio.NewWriter(w)
	var pre [preambleLen]byte
	copy(pre[:], magic[:])
	pre[len(magic)] = version
	if _, err := bw.Write(pre[:]); err != nil {
		return nil, err
	}
	out := &Writer{w: bw, version: version}
	out.enc = gob.NewEncoder(&out.buf)
	return out, nil
}

// Version returns the version this writer was negotiated down to.
func (w *Writer) Version() byte { return w.version }

// downgrade rewrites a message into the schema of an older format
// version, dropping what that schema cannot express:
//
//   - below version 3, a batched DATA packet collapses to its last
//     (freshest) payload in the legacy single-payload slot. The dropped
//     earlier payloads are an omission the bounded-link model already
//     allows and the stack's latest-state gossip absorbs; run batch 1
//     during mixed-version operation to avoid it entirely.
//   - below version 2, shard-tagged payloads (shards >= 1) are dropped;
//     shard 0 traffic is unaffected.
//
// Versions 4 and 5 are framing-only changes (chunked transfer, binary
// fast path), so no schema rewrite exists for them: a writer negotiated
// to 4 merely stops emitting binary frames, one negotiated to 3 also
// spans oversize messages across plain frames.
func downgrade(m Msg, version byte) Msg {
	if version >= Version || !m.HasPkt {
		return m
	}
	if version < 3 && m.Pkt.HasBatch {
		var last BatchItem
		if n := len(m.Pkt.Batch); n > 0 {
			last = m.Pkt.Batch[n-1]
		}
		m.Pkt.HasBatch, m.Pkt.Batch = false, nil
		m.Pkt.HasEnv, m.Pkt.Env, m.Pkt.Raw = last.HasEnv, last.Env, last.Raw
	}
	if version < 2 && m.Pkt.HasEnv {
		m.Pkt.Env.HasShards, m.Pkt.Env.Shards = false, nil
	}
	return m
}

// WriteMsg appends one message to the stream and flushes it.
func (w *Writer) WriteMsg(m Msg) error {
	if err := w.Append(m); err != nil {
		return err
	}
	return w.Flush()
}

// ErrMessageTooLarge reports a message whose encoding exceeds
// MaxMessage: every reader would refuse it, so the writer refuses it
// symmetrically before any frame reaches the stream (callers should
// drop the message — an omission — rather than retry it).
var ErrMessageTooLarge = errors.New("wire: message encoding exceeds MaxMessage")

// Append encodes one message into the stream without flushing, so
// callers can coalesce several messages into one underlying write (the
// tcp backend's hot path). A message whose encoding exceeds MaxFrame
// becomes a chunked transfer (version 4): explicit chunk frames carrying
// the declared total, sequence numbers, and per-chunk CRCs, so the
// reader validates the transfer before buffering it. Writers negotiated
// below version 4 span the oversize encoding across consecutive plain
// frames instead (the frame layer chunks one continuous gob stream, so
// legacy readers reassemble it transparently). Encodings beyond
// MaxMessage fail with ErrMessageTooLarge (readers enforce the same
// bound; writing such a message would dead-loop the link on rejection).
// Any Append error leaves the gob stream state undefined — discard the
// writer and start a fresh stream (the tcp backend redials).
//
// A version-5 writer first tries the binary fast path for DATA packets
// (binary.go): payloads entirely within the closed hot-path type set
// whose encoding fits one frame travel as a self-contained binFlag
// frame, skipping gob reflection; anything else falls through to the
// gob stream below, bit-identical to version 4.
func (w *Writer) Append(m Msg) error {
	m = downgrade(m, w.version)
	if w.version >= 5 && m.HasPkt && m.Pkt.Kind == int(datalink.KindData) {
		if b, ok := appendBinaryMsg(w.bin[:0], m); ok && len(b) <= MaxFrame {
			w.bin = b
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], binFlag|uint32(len(b)))
			if _, err := w.w.Write(hdr[:]); err != nil {
				return err
			}
			if _, err := w.w.Write(b); err != nil {
				return err
			}
			w.frames++
			return nil
		}
	}
	w.buf.Reset()
	if err := w.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if w.buf.Len() > MaxMessage {
		return fmt.Errorf("%w (%d bytes)", ErrMessageTooLarge, w.buf.Len())
	}
	if w.version >= 4 && w.buf.Len() > MaxFrame {
		return w.appendChunked(w.buf.Bytes())
	}
	for b := w.buf.Bytes(); len(b) > 0; {
		n := len(b)
		if n > MaxFrame {
			n = MaxFrame
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(n))
		if _, err := w.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.w.Write(b[:n]); err != nil {
			return err
		}
		w.frames++
		b = b[n:]
	}
	return nil
}

// appendChunked emits one oversize message encoding as a chunked
// transfer: consecutive chunk frames, each flagged in the frame header
// and self-describing (declared total, index, count, data CRC).
func (w *Writer) appendChunked(b []byte) error {
	const maxData = MaxFrame - chunkHeaderLen
	total := uint64(len(b))
	count := (len(b) + maxData - 1) / maxData
	for i := 0; i < count; i++ {
		piece := b[i*maxData:]
		if len(piece) > maxData {
			piece = piece[:maxData]
		}
		var hdr [4 + chunkHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], chunkFlag|uint32(chunkHeaderLen+len(piece)))
		binary.BigEndian.PutUint64(hdr[4:12], total)
		binary.BigEndian.PutUint32(hdr[12:16], uint32(i))
		binary.BigEndian.PutUint32(hdr[16:20], uint32(count))
		binary.BigEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(piece))
		if _, err := w.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.w.Write(piece); err != nil {
			return err
		}
		w.frames++
	}
	return nil
}

// Frames returns the cumulative count of wire frames emitted — one per
// message plus one per MaxFrame-sized split chunk beyond the first.
func (w *Writer) Frames() uint64 { return w.frames }

// Flush pushes every appended frame to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader validates the preamble and decodes framed messages.
type Reader struct {
	fr  *frameReader
	dec *gob.Decoder
}

// NewReader consumes and validates the preamble from r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var pre [preambleLen]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("wire: preamble: %w", err)
	}
	if !bytes.Equal(pre[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("wire: bad magic %q", pre[:len(magic)])
	}
	if v := pre[len(magic)]; v < MinVersion || v > Version {
		return nil, fmt.Errorf("wire: version %d, want %d..%d", v, MinVersion, Version)
	}
	fr := &frameReader{r: br, version: pre[len(magic)]}
	return &Reader{fr: fr, dec: gob.NewDecoder(fr)}, nil
}

// ReadMsg decodes the next message, blocking until a frame arrives. At
// a message boundary the next frame header is peeked: a binary
// fast-path frame (version 5) is decoded by binary.go without touching
// the gob stream; any other header is stashed and the gob decoder
// proceeds exactly as before.
func (r *Reader) ReadMsg() (Msg, error) {
	r.fr.budget = MaxMessage
	if b, err := r.fr.nextBinary(); err != nil {
		return Msg{}, err
	} else if b != nil {
		return decodeBinaryMsg(b)
	}
	var m Msg
	if err := r.dec.Decode(&m); err != nil {
		return Msg{}, err
	}
	if m.HasPkt && len(m.Pkt.Batch) > MaxWireBatch {
		return Msg{}, fmt.Errorf("wire: batch of %d payloads exceeds MaxWireBatch %d", len(m.Pkt.Batch), MaxWireBatch)
	}
	return m, nil
}

// frameReader unwraps length-prefixed frames into the continuous byte
// stream the gob decoder expects, enforcing MaxFrame per frame before
// buffering and the per-message MaxMessage budget (re-armed by ReadMsg)
// across frames. Chunk frames (version 4) are validated — declared
// total against MaxMessage before any chunk data is buffered, index
// sequencing, per-chunk CRC — and their verified data is spliced back
// into the continuous stream.
type frameReader struct {
	r       *bufio.Reader
	version byte
	remain  int
	budget  int

	// Frame header peeked by nextBinary but belonging to the gob stream.
	pending    uint32
	hasPending bool

	// Verified chunk data not yet consumed by the decoder.
	chunk    []byte
	chunkOff int
	// In-progress chunked-transfer assembly state.
	assembling bool
	asmTotal   uint64
	asmCount   uint32
	asmNext    uint32
	asmGot     uint64
}

// nextBinary peeks the next frame header at a message boundary. A
// binary fast-path frame is read whole and returned; any other header
// is stashed for Read (the gob path) and nil is returned. When the
// reader is mid-stream — undrained frame bytes, chunk data, or an
// in-progress chunked assembly — there is no boundary to peek at and
// the gob path continues untouched.
func (f *frameReader) nextBinary() ([]byte, error) {
	if f.hasPending || f.remain > 0 || f.chunkOff < len(f.chunk) || f.assembling {
		return nil, nil
	}
	var hdr [4]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n&chunkFlag != 0 || n&binFlag == 0 {
		f.pending, f.hasPending = n, true
		return nil, nil
	}
	if f.version < 5 {
		return nil, fmt.Errorf("wire: binary frame on version-%d stream", f.version)
	}
	size := n &^ uint32(binFlag)
	if size == 0 || size > MaxFrame {
		return nil, fmt.Errorf("wire: binary frame of %d bytes outside (0, MaxFrame]", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(f.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (f *frameReader) Read(p []byte) (int, error) {
	for f.remain == 0 && f.chunkOff == len(f.chunk) {
		var n uint32
		if f.hasPending {
			n, f.hasPending = f.pending, false
		} else {
			var hdr [4]byte
			if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
				return 0, err
			}
			n = binary.BigEndian.Uint32(hdr[:])
		}
		if n&chunkFlag == 0 && n&binFlag != 0 {
			// A binary frame can only begin at a message boundary, where
			// nextBinary consumes it; reaching one here means the gob
			// decoder wanted more bytes mid-message.
			return 0, errors.New("wire: binary frame interrupts gob message")
		}
		if n&chunkFlag != 0 {
			if err := f.readChunk(n &^ chunkFlag); err != nil {
				return 0, err
			}
			continue
		}
		if f.assembling {
			return 0, fmt.Errorf("wire: plain frame interrupts chunked transfer at chunk %d/%d", f.asmNext, f.asmCount)
		}
		if n > MaxFrame {
			return 0, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", n)
		}
		f.remain = int(n)
	}
	if f.budget <= 0 {
		return 0, fmt.Errorf("wire: message exceeds MaxMessage %d bytes", MaxMessage)
	}
	if f.chunkOff < len(f.chunk) {
		avail := f.chunk[f.chunkOff:]
		if len(p) > len(avail) {
			p = p[:len(avail)]
		}
		if len(p) > f.budget {
			p = p[:f.budget]
		}
		n := copy(p, avail)
		f.chunkOff += n
		f.budget -= n
		return n, nil
	}
	if len(p) > f.remain {
		p = p[:f.remain]
	}
	if len(p) > f.budget {
		p = p[:f.budget]
	}
	n, err := f.r.Read(p)
	f.remain -= n
	f.budget -= n
	return n, err
}

// readChunk consumes one chunk frame whose header declared n payload
// bytes. Validation order matters: the declared total is checked
// against MaxMessage (and all sequencing against the in-progress
// assembly) from the fixed header alone, before the chunk data is read
// into memory — an oversize or inconsistent transfer is rejected at the
// cost of chunkHeaderLen bytes, never a buffer.
func (f *frameReader) readChunk(n uint32) error {
	if n < chunkHeaderLen || n > MaxFrame {
		return fmt.Errorf("wire: chunk frame of %d bytes outside [%d, MaxFrame]", n, chunkHeaderLen)
	}
	var hdr [chunkHeaderLen]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		return err
	}
	total := binary.BigEndian.Uint64(hdr[0:8])
	index := binary.BigEndian.Uint32(hdr[8:12])
	count := binary.BigEndian.Uint32(hdr[12:16])
	crc := binary.BigEndian.Uint32(hdr[16:20])
	if total == 0 || total > MaxMessage {
		return fmt.Errorf("wire: chunked transfer declares %d bytes, exceeds MaxMessage %d", total, MaxMessage)
	}
	if count == 0 || uint64(count) > total {
		return fmt.Errorf("wire: chunked transfer declares %d chunks for %d bytes", count, total)
	}
	if index >= count {
		return fmt.Errorf("wire: chunk index %d out of range (count %d)", index, count)
	}
	if !f.assembling {
		if index != 0 {
			return fmt.Errorf("wire: chunked transfer starts at index %d", index)
		}
		f.assembling = true
		f.asmTotal, f.asmCount, f.asmNext, f.asmGot = total, count, 0, 0
	}
	if index != f.asmNext || total != f.asmTotal || count != f.asmCount {
		return fmt.Errorf("wire: chunk %d (total %d, count %d) does not continue transfer at %d (total %d, count %d)",
			index, total, count, f.asmNext, f.asmTotal, f.asmCount)
	}
	dataLen := int(n) - chunkHeaderLen
	if dataLen == 0 || f.asmGot+uint64(dataLen) > f.asmTotal {
		return fmt.Errorf("wire: chunk %d of %d bytes overflows declared total %d", index, dataLen, f.asmTotal)
	}
	data := make([]byte, dataLen)
	if _, err := io.ReadFull(f.r, data); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(data) != crc {
		return fmt.Errorf("wire: chunk %d CRC mismatch", index)
	}
	f.asmGot += uint64(dataLen)
	f.asmNext++
	if f.asmNext == f.asmCount {
		if f.asmGot != f.asmTotal {
			return fmt.Errorf("wire: chunked transfer ended with %d of %d declared bytes", f.asmGot, f.asmTotal)
		}
		f.assembling = false
	}
	f.chunk, f.chunkOff = data, 0
	return nil
}
