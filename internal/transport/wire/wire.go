// Package wire is the versioned codec of the TCP transport backend: the
// message schema for everything the reconfiguration stack sends between
// processes — recSA/recMA state broadcasts, joining requests/responses,
// label/counter gossip and RPCs, and vs replica exchanges — framed as
// length-prefixed gob over a persistent per-connection stream.
//
// Stream layout:
//
//	preamble: 6-byte magic "recfg\x00", 1-byte version, 1-byte reserved
//	frames:   4-byte big-endian payload length, then payload bytes
//
// The frame payloads of one connection form a single continuous gob
// stream (type definitions are transmitted once, on first use), decoded
// into Msg values. A reader rejects mismatched magic, versions outside
// [MinVersion, Version], and over-long frames before buffering them, so
// a corrupted or hostile peer cannot make it allocate unboundedly.
//
// Schema notes. Msg/Packet/Envelope mirror datalink.Packet and
// core.Envelope with explicit presence booleans instead of pointers: gob
// omits zero-valued fields, so a pointer to a zero value (e.g. the
// explicit join-denial &join.Response{}) would silently decode as nil
// and change protocol semantics. Version bumps are required whenever the
// schema of any transmitted type changes shape.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/join"
	"repro/internal/recma"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/smr"
	"repro/internal/vs"
)

// Version is the wire-format version written by this build. Version 2
// added the shard-tagged application payloads (Envelope.HasShards /
// Shards). The addition is gob-compatible — a version-1 frame simply
// decodes with HasShards false — so readers accept MinVersion too and
// single-shard frames carry no format break: shard 0's payload still
// travels in the legacy App slot.
//
// Scope of the compatibility claim: acceptance is read-side only (this
// build still *writes* Version, which a version-1 reader refuses —
// full negotiation is a ROADMAP item), and it covers the envelope
// schema. App-level state representations that changed alongside the
// bump must migrate on adoption themselves; regmem does (a legacy
// map[string]string replica state is adopted as the base of a
// delta-chain State rather than discarded).
const Version = 2

// MinVersion is the oldest preamble version a Reader accepts.
const MinVersion = 1

// MaxFrame bounds a single frame's payload size.
const MaxFrame = 4 << 20

var magic = [6]byte{'r', 'e', 'c', 'f', 'g', 0}

const preambleLen = len(magic) + 2 // + version + reserved

func init() {
	// Concrete types that travel inside `any` slots. Named explicitly so
	// renaming a Go type does not silently change the wire format.
	gob.RegisterName("repro/vs.Payload", vs.Payload{})
	gob.RegisterName("repro/counter.Message", counter.Message{})
	gob.RegisterName("repro/regmem.WriteCmd", regmem.WriteCmd{})
	gob.RegisterName("repro/regmem.MarkerCmd", regmem.MarkerCmd{})
	gob.RegisterName("repro/regmem.State", regmem.State{})
	gob.RegisterName("repro/smr.KVCmd", smr.KVCmd{})
	gob.RegisterName("repro/smr.BankCmd", smr.BankCmd{})
	gob.RegisterName("repro/map.ss", map[string]string{})
	gob.RegisterName("repro/map.si64", map[string]int64{})
	gob.RegisterName("repro/map.idany", map[ids.ID]any{})
	gob.RegisterName("repro/ids.Set", ids.Set{})
	// Primitive payloads (tests and fault-injection garbage).
	gob.Register("")
	gob.Register(0)
	gob.Register(false)
}

// Msg is one transport send: From/To routing plus the payload in wire
// form.
type Msg struct {
	From, To ids.ID
	// HasPkt/Pkt carry a datalink.Packet — the only payload the stack
	// itself produces.
	HasPkt bool
	Pkt    Packet
	// Raw carries any other payload (fault-injection garbage, tests).
	Raw any
}

// Packet mirrors datalink.Packet.
type Packet struct {
	Kind    int
	Session uint64
	Seq     uint8
	HasEnv  bool
	Env     Envelope
	Raw     any // non-Envelope datalink payload
}

// Envelope mirrors core.Envelope with presence flags for the pointer
// fields. App carries shard 0's application payload (the only payload
// before sharding, so unsharded frames keep their exact shape);
// HasShards/Shards is the version-2 shard-mux field carrying the tagged
// payloads of shards ≥ 1 with explicit presence — a shard tag of 0 in an
// entry is preserved even though gob elides zero struct fields, because
// presence is signalled by HasShards and the entry itself, never by the
// tag's value.
type Envelope struct {
	HasSA       bool
	SA          recsa.Message
	HasMA       bool
	MA          recma.Message
	JoinReq     bool
	HasJoinResp bool
	JoinResp    join.Response
	App         any
	HasShards   bool
	Shards      []ShardApp
}

// ShardApp mirrors core.ShardApp: one shard-tagged application payload.
type ShardApp struct {
	Shard int
	App   any
}

// NewMsg converts a transport payload into its wire form.
func NewMsg(from, to ids.ID, payload any) Msg {
	m := Msg{From: from, To: to}
	pkt, ok := payload.(datalink.Packet)
	if !ok {
		m.Raw = payload
		return m
	}
	m.HasPkt = true
	m.Pkt = Packet{Kind: int(pkt.Kind), Session: pkt.Session, Seq: pkt.Seq}
	env, ok := pkt.Payload.(core.Envelope)
	if !ok {
		m.Pkt.Raw = pkt.Payload
		return m
	}
	m.Pkt.HasEnv = true
	w := &m.Pkt.Env
	if env.RecSA != nil {
		w.HasSA, w.SA = true, *env.RecSA
	}
	if env.RecMA != nil {
		w.HasMA, w.MA = true, *env.RecMA
	}
	w.JoinReq = env.JoinReq
	if env.JoinResp != nil {
		w.HasJoinResp, w.JoinResp = true, *env.JoinResp
	}
	w.App = env.App
	if env.ShardApps != nil {
		w.HasShards = true
		w.Shards = make([]ShardApp, 0, len(env.ShardApps))
		for _, sa := range env.ShardApps {
			w.Shards = append(w.Shards, ShardApp{Shard: sa.Shard, App: sa.App})
		}
	}
	return m
}

// Payload reconstructs the transport payload.
func (m Msg) Payload() any {
	if !m.HasPkt {
		return m.Raw
	}
	pkt := datalink.Packet{
		Kind:    datalink.Kind(m.Pkt.Kind),
		Session: m.Pkt.Session,
		Seq:     m.Pkt.Seq,
	}
	if !m.Pkt.HasEnv {
		pkt.Payload = m.Pkt.Raw
		return pkt
	}
	w := m.Pkt.Env
	env := core.Envelope{JoinReq: w.JoinReq, App: w.App}
	if w.HasSA {
		sa := w.SA
		env.RecSA = &sa
	}
	if w.HasMA {
		ma := w.MA
		env.RecMA = &ma
	}
	if w.HasJoinResp {
		jr := w.JoinResp
		env.JoinResp = &jr
	}
	if w.HasShards {
		env.ShardApps = make([]core.ShardApp, 0, len(w.Shards))
		for _, sa := range w.Shards {
			env.ShardApps = append(env.ShardApps, core.ShardApp{Shard: sa.Shard, App: sa.App})
		}
	}
	pkt.Payload = env
	return pkt
}

// Writer frames a gob stream onto w. Not safe for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf bytes.Buffer
	enc *gob.Encoder
}

// NewWriter writes the versioned preamble and returns a frame writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var pre [preambleLen]byte
	copy(pre[:], magic[:])
	pre[len(magic)] = Version
	if _, err := bw.Write(pre[:]); err != nil {
		return nil, err
	}
	out := &Writer{w: bw}
	out.enc = gob.NewEncoder(&out.buf)
	return out, nil
}

// WriteMsg appends one message to the stream and flushes it.
func (w *Writer) WriteMsg(m Msg) error {
	w.buf.Reset()
	if err := w.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if w.buf.Len() > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", w.buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(w.buf.Len()))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf.Bytes()); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader validates the preamble and decodes framed messages.
type Reader struct {
	fr  *frameReader
	dec *gob.Decoder
}

// NewReader consumes and validates the preamble from r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var pre [preambleLen]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("wire: preamble: %w", err)
	}
	if !bytes.Equal(pre[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("wire: bad magic %q", pre[:len(magic)])
	}
	if v := pre[len(magic)]; v < MinVersion || v > Version {
		return nil, fmt.Errorf("wire: version %d, want %d..%d", v, MinVersion, Version)
	}
	fr := &frameReader{r: br}
	return &Reader{fr: fr, dec: gob.NewDecoder(fr)}, nil
}

// ReadMsg decodes the next message, blocking until a frame arrives.
func (r *Reader) ReadMsg() (Msg, error) {
	var m Msg
	if err := r.dec.Decode(&m); err != nil {
		return Msg{}, err
	}
	return m, nil
}

// frameReader unwraps length-prefixed frames into the continuous byte
// stream the gob decoder expects, enforcing MaxFrame before buffering.
type frameReader struct {
	r      *bufio.Reader
	remain int
}

func (f *frameReader) Read(p []byte) (int, error) {
	for f.remain == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxFrame {
			return 0, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", n)
		}
		f.remain = int(n)
	}
	if len(p) > f.remain {
		p = p[:f.remain]
	}
	n, err := f.r.Read(p)
	f.remain -= n
	return n, err
}
