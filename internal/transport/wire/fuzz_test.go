package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/recma"
)

// fuzzSeedStream builds a well-formed stream at the given written
// version carrying representative traffic: a batched DATA packet (with
// envelopes and raw payloads), a legacy single-payload envelope packet,
// control packets, and a raw value.
func fuzzSeedStream(tb testing.TB, version byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, version)
	if err != nil {
		tb.Fatal(err)
	}
	env := core.Envelope{
		RecMA:     &recma.Message{NoMaj: true},
		App:       "app",
		ShardApps: []core.ShardApp{{Shard: 1, App: "s1"}},
	}
	payloads := []any{
		datalink.Packet{Kind: datalink.KindData, Session: 9, Seq: 3,
			Batch: []any{env, "raw", env}},
		datalink.Packet{Kind: datalink.KindData, Session: 9, Seq: 4, Payload: env},
		datalink.Packet{Kind: datalink.KindClean, Session: 10},
		datalink.Packet{Kind: datalink.KindAck, Session: 9, Seq: 4},
		"garbage",
	}
	for _, p := range payloads {
		if err := w.WriteMsg(NewMsg(1, 2, p)); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzReadMsg is the decoder-hardening fuzz target: for arbitrary input
// bytes the reader must return errors — never panic, hang, or allocate
// past its declared bounds (MaxFrame per frame, MaxWireBatch per batch;
// gob's own message sanity limits cover the rest). The seed corpus
// (f.Add plus the checked-in testdata corpus, which plain `go test`
// executes as a regression suite) covers well-formed v1..v5 streams
// (version 5 mixes binary fast-path and gob frames), truncations at
// every structural boundary, corrupted preambles, oversize frame
// headers, absurd batch counts, and corrupt binary-frame internals
// (bad shapes, unknown type tags, over-bound counts, both flag bits
// set).
func FuzzReadMsg(f *testing.F) {
	for _, version := range []byte{1, 2, 3, 4, 5} {
		stream := fuzzSeedStream(f, version)
		f.Add(stream)
		// Truncations: inside the preamble, inside a frame header,
		// inside a frame payload, inside the gob stream.
		for _, cut := range []int{3, preambleLen, preambleLen + 2, preambleLen + 6, len(stream) / 2, len(stream) - 1} {
			if cut < len(stream) {
				f.Add(append([]byte(nil), stream[:cut]...))
			}
		}
		// Corrupted version and magic bytes.
		bad := append([]byte(nil), stream...)
		bad[len(magic)] = 99
		f.Add(bad)
		bad2 := append([]byte(nil), stream...)
		bad2[0] = 'X'
		f.Add(bad2)
	}
	// Oversize frame header right after a valid preamble.
	huge := fuzzSeedStream(f, Version)[:preambleLen]
	huge = append(huge, 0xff, 0xff, 0xff, 0xff)
	f.Add(huge)
	// Zero-length frames followed by garbage.
	zero := fuzzSeedStream(f, Version)[:preambleLen]
	zero = append(zero, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3)
	f.Add(zero)
	// A frame whose header claims more than the stream holds.
	short := fuzzSeedStream(f, Version)[:preambleLen]
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1024)
	short = append(short, hdr[:]...)
	short = append(short, 'x', 'y')
	f.Add(short)
	// Chunk frames (version 4). Writer-built chunked transfers start at
	// MaxFrame — too big for a seed — so these are hand-framed small
	// transfers exercising the same reader path: a valid two-chunk
	// transfer, a declared-oversize one, a CRC mismatch, a sequence
	// break, and a truncated chunk header.
	{
		pre := fuzzSeedStream(f, Version)[:preambleLen]
		valid := append(append([]byte(nil), pre...), chunkFrame(8, 0, 2, []byte("abcd"))...)
		valid = append(valid, chunkFrame(8, 1, 2, []byte("efgh"))...)
		f.Add(valid)

		var oversize [4 + chunkHeaderLen]byte
		binary.BigEndian.PutUint32(oversize[0:4], chunkFlag|uint32(chunkHeaderLen+16))
		binary.BigEndian.PutUint64(oversize[4:12], MaxMessage+1)
		binary.BigEndian.PutUint32(oversize[16:20], 1)
		f.Add(append(append([]byte(nil), pre...), oversize[:]...))

		crcBad := append(append([]byte(nil), pre...), chunkFrame(4, 0, 1, []byte("abcd"))...)
		crcBad[len(crcBad)-1] ^= 0x40
		f.Add(crcBad)

		f.Add(append(append([]byte(nil), pre...), chunkFrame(8, 1, 2, []byte("efgh"))...))
		f.Add(append(append([]byte(nil), pre...), chunkFrame(8, 0, 2, []byte("abcd"))[:9]...))
	}
	// Binary fast-path frames (version 5). A valid frame with interior
	// corruption at several offsets, an empty and an oversize binFlag
	// header, both flag bits set, a binary frame under a v4 preamble,
	// and an over-bound batch count inside the frame.
	{
		pre := fuzzSeedStream(f, Version)[:preambleLen]
		pkt := datalink.Packet{Kind: datalink.KindData, Session: 9, Seq: 3,
			Batch: []any{core.Envelope{App: "app"}, "raw"}}
		body, ok := appendBinaryMsg(nil, NewMsg(1, 2, pkt))
		if !ok {
			f.Fatal("seed packet should be binary-encodable")
		}
		frame := func(b []byte) []byte {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], binFlag|uint32(len(b)))
			return append(hdr[:], b...)
		}
		valid := append(append([]byte(nil), pre...), frame(body)...)
		f.Add(valid)
		for _, off := range []int{0, len(body) / 4, len(body) / 2, len(body) - 1} {
			bad := append([]byte(nil), valid...)
			bad[preambleLen+4+off] ^= 0xff
			f.Add(bad)
		}
		f.Add(append(append([]byte(nil), pre...), 0x40, 0, 0, 0))             // empty binFlag frame
		f.Add(append(append([]byte(nil), pre...), 0x7f, 0xff, 0xff, 0xff))    // binFlag, size > MaxFrame
		f.Add(append(append([]byte(nil), pre...), 0xc0, 0, 0, 8, 1, 2, 3, 4)) // chunkFlag|binFlag
		v4pre := append([]byte(nil), pre...)
		v4pre[len(magic)] = 4
		f.Add(append(v4pre, frame(body)...))
		overBatch := append(append([]byte(nil), pre...), frame([]byte{
			2, 4, byte(datalink.KindData),
			0, 0, 0, 0, 0, 0, 0, 1, 1,
			3,                            // shapeBatch
			0xff, 0xff, 0xff, 0xff, 0x7f, // absurd count
		})...)
		f.Add(overBatch)
	}
	// An over-MaxWireBatch batch in an otherwise valid stream.
	{
		batch := make([]any, MaxWireBatch+1)
		for i := range batch {
			batch[i] = 0
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		if err := w.WriteMsg(NewMsg(1, 2, datalink.Packet{Kind: datalink.KindData, Batch: batch})); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed preamble: rejected is the contract
		}
		// Decode until error or stream end; bound the message count so a
		// pathological input cannot loop forever.
		for i := 0; i < 256; i++ {
			m, err := r.ReadMsg()
			if err != nil {
				return
			}
			if m.HasPkt && len(m.Pkt.Batch) > MaxWireBatch {
				t.Fatalf("reader passed a %d-payload batch through", len(m.Pkt.Batch))
			}
			m.Payload() // reconstruction must not panic either
		}
	})
}
