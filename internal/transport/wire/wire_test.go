package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/join"
	"repro/internal/label"
	"repro/internal/recma"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/vs"
)

func roundTrip(t *testing.T, payloads ...any) []any {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if err := w.WriteMsg(NewMsg(1, 2, p)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]any, 0, len(payloads))
	for i := range payloads {
		m, err := r.ReadMsg()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if m.From != 1 || m.To != 2 {
			t.Fatalf("read %d: routing %v->%v", i, m.From, m.To)
		}
		out = append(out, m.Payload())
	}
	return out
}

func TestFullEnvelopeRoundTrip(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	saMsg := recsa.Message{
		FD:     ids.NewSet(1, 2, 3, 4),
		Part:   conf,
		Config: recsa.ConfigOf(conf),
		Prp:    recsa.Notification{Phase: 1, HasSet: true, Set: ids.NewSet(1, 2)},
		All:    true,
		Echo: recsa.Echo{
			Valid: true, Part: conf,
			Prp: recsa.DefaultNtf(), All: false,
		},
	}
	ctr := counter.Counter{
		Lbl:  label.Label{Creator: 3, Sting: 2, Antistings: []int{0, 1}},
		Seqn: 9, WID: 3,
	}
	rep := vs.Replica{
		View:   vs.View{ID: ctr, Set: conf},
		Status: vs.StatusMulticast,
		Rnd:    4,
		State:  map[string]string{"x": "1"},
		Inputs: map[ids.ID]any{
			1: regmem.WriteCmd{Name: "x", Value: "2", Writer: 1, Seq: 7},
			2: regmem.MarkerCmd{Reader: 2, Seq: 3},
		},
		Input: regmem.WriteCmd{Name: "y", Value: "0", Writer: 1, Seq: 8},
		Crd:   3,
	}
	app := vs.Payload{
		Replica: &rep,
		Counter: counter.Message{
			Gossip:    counter.Pair{MCT: ctr},
			HasGossip: true,
			RPCs:      []counter.RPC{{Kind: counter.ReadReq, Seq: 1}},
		},
	}
	env := core.Envelope{
		RecSA:    &saMsg,
		RecMA:    &recma.Message{NoMaj: true},
		JoinReq:  true,
		JoinResp: &join.Response{Pass: true, State: map[ids.ID]any{1: "s"}},
		App:      app,
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 99, Seq: 1, Payload: env}

	got := roundTrip(t, in)[0]
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", in, got)
	}
}

// TestZeroValueFieldsSurvive guards the gob nil-vs-zero hazard: pointers
// to zero values (an explicit join denial, an all-clear recMA message)
// must arrive as non-nil pointers to zero values, not as nil.
func TestZeroValueFieldsSurvive(t *testing.T) {
	env := core.Envelope{
		RecMA:    &recma.Message{}, // all-clear flags
		JoinResp: &join.Response{}, // explicit join denial
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 1, Payload: env}
	got, ok := roundTrip(t, in)[0].(datalink.Packet)
	if !ok {
		t.Fatalf("payload type %T", got)
	}
	out, ok := got.Payload.(core.Envelope)
	if !ok {
		t.Fatalf("envelope type %T", got.Payload)
	}
	if out.RecMA == nil || *out.RecMA != (recma.Message{}) {
		t.Errorf("zero recMA message lost: %+v", out.RecMA)
	}
	if out.JoinResp == nil || out.JoinResp.Pass || out.JoinResp.State != nil {
		t.Errorf("explicit join denial lost: %+v", out.JoinResp)
	}
	if out.RecSA != nil {
		t.Errorf("absent recSA materialized: %+v", out.RecSA)
	}
}

// TestShardTaggedEnvelopeRoundTrip exercises the version-2 shard-mux
// field: payloads of shards ≥ 1 travel tagged, and — the gob hazard the
// explicit-presence schema guards — an entry tagged shard 0 survives
// even though gob elides zero-valued struct fields.
func TestShardTaggedEnvelopeRoundTrip(t *testing.T) {
	st := regmem.State{Base: map[string]string{"a": "1"}, Delta: &regmem.Delta{Name: "b", Value: "2"}, Depth: 1}
	app0 := vs.Payload{Replica: &vs.Replica{Status: vs.StatusMulticast, Rnd: 1, State: st}}
	app1 := vs.Payload{Replica: &vs.Replica{Status: vs.StatusPropose, Rnd: 2}}
	env := core.Envelope{
		App: app0,
		ShardApps: []core.ShardApp{
			{Shard: 0, App: app0}, // tag 0 must survive gob's zero elision
			{Shard: 1, App: app1},
		},
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 5, Payload: env}
	got, ok := roundTrip(t, in)[0].(datalink.Packet)
	if !ok {
		t.Fatalf("payload type %T", got)
	}
	out, ok := got.Payload.(core.Envelope)
	if !ok {
		t.Fatalf("envelope type %T", got.Payload)
	}
	if len(out.ShardApps) != 2 {
		t.Fatalf("ShardApps = %+v, want 2 entries", out.ShardApps)
	}
	if out.ShardApps[0].Shard != 0 || out.ShardApps[1].Shard != 1 {
		t.Fatalf("shard tags %d,%d, want 0,1", out.ShardApps[0].Shard, out.ShardApps[1].Shard)
	}
	if !reflect.DeepEqual(out, in.Payload) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", in.Payload, out)
	}
}

// TestUnshardedEnvelopeHasNoShardField: a single-shard envelope encodes
// exactly as before sharding — no shard field materializes on decode, so
// shard-0-only deployments see no format break.
func TestUnshardedEnvelopeHasNoShardField(t *testing.T) {
	env := core.Envelope{App: vs.Payload{Replica: &vs.Replica{Status: vs.StatusMulticast}}}
	in := datalink.Packet{Kind: datalink.KindData, Session: 2, Payload: env}
	got := roundTrip(t, in)[0].(datalink.Packet)
	out := got.Payload.(core.Envelope)
	if out.ShardApps != nil {
		t.Fatalf("unsharded envelope grew ShardApps: %+v", out.ShardApps)
	}
	if !reflect.DeepEqual(out, env) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", env, out)
	}
}

// TestReaderAcceptsMinVersionStream: a stream stamped with the
// pre-sharding preamble version still decodes (the shard field is a
// gob-compatible addition; old frames just carry HasShards=false).
func TestReaderAcceptsMinVersionStream(t *testing.T) {
	var buf bytes.Buffer
	// Version 4 emits the current message schema with plain gob framing
	// (the version-5 binary fast path is a framing change, and binary
	// frames are rightly rejected under a downgraded preamble).
	w, err := NewWriterVersion(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	env := core.Envelope{RecMA: &recma.Message{NoMaj: true}}
	if err := w.WriteMsg(NewMsg(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 9, Payload: env})); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[6] = MinVersion // rewrite the preamble's version byte
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("MinVersion preamble rejected: %v", err)
	}
	m, err := r.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	pkt := m.Payload().(datalink.Packet)
	out := pkt.Payload.(core.Envelope)
	if out.RecMA == nil || !out.RecMA.NoMaj {
		t.Fatalf("v1 frame lost content: %+v", out)
	}
	if out.ShardApps != nil {
		t.Fatalf("v1 frame materialized ShardApps: %+v", out.ShardApps)
	}
}

func TestControlAndRawPayloads(t *testing.T) {
	payloads := []any{
		datalink.Packet{Kind: datalink.KindClean, Session: 7},
		datalink.Packet{Kind: datalink.KindCleanAck, Session: 7},
		datalink.Packet{Kind: datalink.KindAck, Session: 7, Seq: 1},
		"garbage",
		42,
	}
	got := roundTrip(t, payloads...)
	for i := range payloads {
		if !reflect.DeepEqual(got[i], payloads[i]) {
			t.Errorf("payload %d: %#v != %#v", i, got[i], payloads[i])
		}
	}
}

// TestBatchedPacketRoundTrip exercises the version-3 batch field: a
// DATA packet carrying several payloads — envelopes (with shard tags)
// and raw values mixed — survives the trip with order and presence
// intact.
func TestBatchedPacketRoundTrip(t *testing.T) {
	env0 := core.Envelope{RecMA: &recma.Message{NoMaj: true}, App: "a0"}
	env1 := core.Envelope{
		App:       "a1",
		ShardApps: []core.ShardApp{{Shard: 0, App: "s0"}, {Shard: 2, App: "s2"}},
	}
	in := datalink.Packet{
		Kind: datalink.KindData, Session: 77, Seq: 9,
		Batch: []any{env0, "raw-middle", env1},
	}
	got, ok := roundTrip(t, in)[0].(datalink.Packet)
	if !ok {
		t.Fatalf("payload type %T", got)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", in, got)
	}
}

// TestEmptyBatchDistinctFromUnbatched: explicit presence means a
// zero-length batch is not confused with a legacy single-payload packet.
func TestEmptyBatchDistinctFromUnbatched(t *testing.T) {
	in := datalink.Packet{Kind: datalink.KindData, Session: 1, Seq: 1, Batch: []any{}}
	got := roundTrip(t, in)[0].(datalink.Packet)
	if got.Batch == nil {
		t.Fatal("empty batch decoded as unbatched packet")
	}
	if len(got.Batch) != 0 || got.Payload != nil {
		t.Fatalf("empty batch mutated: %#v", got)
	}
}

// roundTripVersion writes payloads through a writer negotiated down to
// the given version and decodes them back.
func roundTripVersion(t *testing.T, version byte, payloads ...any) []any {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, version)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if err := w.WriteMsg(NewMsg(1, 2, p)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := buf.Bytes()[6]; got != version {
		t.Fatalf("preamble stamps version %d, want %d", got, version)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]any, 0, len(payloads))
	for i := range payloads {
		m, err := r.ReadMsg()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		out = append(out, m.Payload())
	}
	return out
}

// TestWriterDowngradesBatchesToVersion2: a writer negotiated to version
// 2 collapses a batched packet to its freshest payload in the legacy
// slot — old readers see a well-formed version-2 stream, the dropped
// payloads count as link omissions.
func TestWriterDowngradesBatchesToVersion2(t *testing.T) {
	envOld := core.Envelope{App: "stale"}
	envNew := core.Envelope{
		App:       "fresh",
		ShardApps: []core.ShardApp{{Shard: 1, App: "s1"}},
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 4, Seq: 2, Batch: []any{envOld, envNew}}
	got := roundTripVersion(t, 2, in)[0].(datalink.Packet)
	if got.Batch != nil {
		t.Fatalf("version-2 stream carried a batch: %#v", got)
	}
	env, ok := got.Payload.(core.Envelope)
	if !ok || env.App != "fresh" {
		t.Fatalf("downgrade kept %#v, want the freshest payload", got.Payload)
	}
	if len(env.ShardApps) != 1 || env.ShardApps[0].Shard != 1 {
		t.Fatalf("version 2 must keep shard tags: %#v", env.ShardApps)
	}
}

// TestWriterDowngradesShardsToVersion1: version 1 additionally drops the
// shard-mux field (shards >= 1), keeping shard 0 traffic intact.
func TestWriterDowngradesShardsToVersion1(t *testing.T) {
	env := core.Envelope{
		App:       "zero",
		ShardApps: []core.ShardApp{{Shard: 1, App: "one"}},
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 4, Seq: 0, Payload: env}
	got := roundTripVersion(t, 1, in)[0].(datalink.Packet)
	out := got.Payload.(core.Envelope)
	if out.App != "zero" {
		t.Fatalf("shard 0 payload lost: %#v", out)
	}
	if out.ShardApps != nil {
		t.Fatalf("version-1 stream carried shard tags: %#v", out.ShardApps)
	}
}

func TestWriterRejectsUnsupportedVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriterVersion(&buf, 0); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := NewWriterVersion(&buf, Version+1); err == nil {
		t.Fatal("future version accepted")
	}
}

// frameSizes parses a written stream's frame headers.
func frameSizes(t *testing.T, b []byte) []int {
	t.Helper()
	b = b[8:] // preamble
	var sizes []int
	for len(b) > 0 {
		if len(b) < 4 {
			t.Fatalf("dangling %d header bytes", len(b))
		}
		n := int((uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])) &^ uint32(chunkFlag))
		b = b[4:]
		if n > len(b) {
			t.Fatalf("frame header claims %d bytes, %d remain", n, len(b))
		}
		sizes = append(sizes, n)
		b = b[n:]
	}
	return sizes
}

// TestOversizeMessageSplitsAcrossFrames is the MaxFrame boundary
// regression: a message encoding just past MaxFrame is split across
// frames (each within the bound) instead of erroring after buffering,
// and decodes back intact; one encoding just under stays a single
// frame.
func TestOversizeMessageSplitsAcrossFrames(t *testing.T) {
	write := func(payloadLen int) ([]byte, string) {
		payload := strings.Repeat("x", payloadLen)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteMsg(NewMsg(1, 2, payload)); err != nil {
			t.Fatalf("payload of %d bytes: %v", payloadLen, err)
		}
		return buf.Bytes(), payload
	}

	// Just under: encoding overhead must not push a small message over.
	under, _ := write(MaxFrame - 1024)
	if n := len(frameSizes(t, under)); n != 1 {
		t.Fatalf("under-bound message used %d frames, want 1", n)
	}

	// Just over (MaxFrame+1 payload): must split, every frame in bound.
	over, payload := write(MaxFrame + 1)
	sizes := frameSizes(t, over)
	if len(sizes) < 2 {
		t.Fatalf("over-bound message used %d frame(s), want >= 2", len(sizes))
	}
	for i, n := range sizes {
		if n > MaxFrame {
			t.Fatalf("frame %d is %d bytes > MaxFrame", i, n)
		}
	}
	r, err := NewReader(bytes.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.ReadMsg()
	if err != nil {
		t.Fatalf("split message did not decode: %v", err)
	}
	if got, ok := m.Payload().(string); !ok || got != payload {
		t.Fatalf("split message corrupted (len %d)", len(got))
	}
}

// TestMessageSizeBoundsSymmetry: the writer refuses encodings beyond
// MaxMessage (every reader would reject them — writing one would
// dead-loop the link on retransmission), and a reader fed a
// hand-framed over-budget message cuts it off at the per-message
// budget instead of buffering it in full.
func TestMessageSizeBoundsSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates several ×MaxMessage")
	}
	big := NewMsg(1, 2, strings.Repeat("x", MaxMessage+1024))

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(big); err == nil || !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("writer accepted an over-MaxMessage message (err=%v)", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := frameSizes(t, buf.Bytes()); len(got) != 0 {
		t.Fatalf("refused message still emitted %d frames", len(got))
	}

	// Hand-frame the same gob encoding (bypassing the writer's bound,
	// as a hostile peer would) and confirm the reader stops feeding the
	// decoder at MaxMessage.
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(big); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	stream.Write(magic[:])
	stream.WriteByte(Version)
	stream.WriteByte(0)
	for b := gobBuf.Bytes(); len(b) > 0; {
		n := len(b)
		if n > MaxFrame {
			n = MaxFrame
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(n))
		stream.Write(hdr[:])
		stream.Write(b[:n])
		b = b[n:]
	}
	r, err := NewReader(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMsg(); err == nil {
		t.Fatal("message beyond MaxMessage accepted by reader")
	}
}

// TestReaderRejectsOversizeBatchCount: an absurd decoded batch length is
// refused even when the frames themselves are in bounds.
func TestReaderRejectsOversizeBatchCount(t *testing.T) {
	batch := make([]any, MaxWireBatch+1)
	for i := range batch {
		batch[i] = i
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(NewMsg(1, 2, datalink.Packet{Kind: datalink.KindData, Batch: batch})); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMsg(); err == nil {
		t.Fatal("oversize batch count accepted")
	}
}

func TestReaderRejectsBadPreamble(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notrecfg"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte("recfg\x00"), 99, 0)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("rec"))); err == nil {
		t.Fatal("truncated preamble accepted")
	}
}

func TestReaderRejectsOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(NewMsg(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first frame header to claim an enormous payload.
	b := buf.Bytes()
	b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMsg(); err == nil || err == io.EOF {
		t.Fatalf("oversize frame not rejected: %v", err)
	}
}

func TestStreamReusesTypeDefinitions(t *testing.T) {
	env := core.Envelope{RecMA: &recma.Message{NoMaj: true}}
	pkt := datalink.Packet{Kind: datalink.KindData, Session: 3, Payload: env}

	size := func(n int) int {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.WriteMsg(NewMsg(1, 2, pkt)); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Len()
	}
	one, ten := size(1), size(10)
	perMsg := (ten - one) / 9
	if perMsg >= one {
		t.Fatalf("per-message cost %dB not below first-message cost %dB — type definitions resent?", perMsg, one)
	}
}
