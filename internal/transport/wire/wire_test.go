package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/join"
	"repro/internal/label"
	"repro/internal/recma"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/vs"
)

func roundTrip(t *testing.T, payloads ...any) []any {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if err := w.WriteMsg(NewMsg(1, 2, p)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]any, 0, len(payloads))
	for i := range payloads {
		m, err := r.ReadMsg()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if m.From != 1 || m.To != 2 {
			t.Fatalf("read %d: routing %v->%v", i, m.From, m.To)
		}
		out = append(out, m.Payload())
	}
	return out
}

func TestFullEnvelopeRoundTrip(t *testing.T) {
	conf := ids.NewSet(1, 2, 3)
	saMsg := recsa.Message{
		FD:     ids.NewSet(1, 2, 3, 4),
		Part:   conf,
		Config: recsa.ConfigOf(conf),
		Prp:    recsa.Notification{Phase: 1, HasSet: true, Set: ids.NewSet(1, 2)},
		All:    true,
		Echo: recsa.Echo{
			Valid: true, Part: conf,
			Prp: recsa.DefaultNtf(), All: false,
		},
	}
	ctr := counter.Counter{
		Lbl:  label.Label{Creator: 3, Sting: 2, Antistings: []int{0, 1}},
		Seqn: 9, WID: 3,
	}
	rep := vs.Replica{
		View:   vs.View{ID: ctr, Set: conf},
		Status: vs.StatusMulticast,
		Rnd:    4,
		State:  map[string]string{"x": "1"},
		Inputs: map[ids.ID]any{
			1: regmem.WriteCmd{Name: "x", Value: "2", Writer: 1, Seq: 7},
			2: regmem.MarkerCmd{Reader: 2, Seq: 3},
		},
		Input: regmem.WriteCmd{Name: "y", Value: "0", Writer: 1, Seq: 8},
		Crd:   3,
	}
	app := vs.Payload{
		Replica: &rep,
		Counter: counter.Message{
			Gossip:    counter.Pair{MCT: ctr},
			HasGossip: true,
			RPCs:      []counter.RPC{{Kind: counter.ReadReq, Seq: 1}},
		},
	}
	env := core.Envelope{
		RecSA:    &saMsg,
		RecMA:    &recma.Message{NoMaj: true},
		JoinReq:  true,
		JoinResp: &join.Response{Pass: true, State: map[ids.ID]any{1: "s"}},
		App:      app,
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 99, Seq: 1, Payload: env}

	got := roundTrip(t, in)[0]
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", in, got)
	}
}

// TestZeroValueFieldsSurvive guards the gob nil-vs-zero hazard: pointers
// to zero values (an explicit join denial, an all-clear recMA message)
// must arrive as non-nil pointers to zero values, not as nil.
func TestZeroValueFieldsSurvive(t *testing.T) {
	env := core.Envelope{
		RecMA:    &recma.Message{}, // all-clear flags
		JoinResp: &join.Response{}, // explicit join denial
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 1, Payload: env}
	got, ok := roundTrip(t, in)[0].(datalink.Packet)
	if !ok {
		t.Fatalf("payload type %T", got)
	}
	out, ok := got.Payload.(core.Envelope)
	if !ok {
		t.Fatalf("envelope type %T", got.Payload)
	}
	if out.RecMA == nil || *out.RecMA != (recma.Message{}) {
		t.Errorf("zero recMA message lost: %+v", out.RecMA)
	}
	if out.JoinResp == nil || out.JoinResp.Pass || out.JoinResp.State != nil {
		t.Errorf("explicit join denial lost: %+v", out.JoinResp)
	}
	if out.RecSA != nil {
		t.Errorf("absent recSA materialized: %+v", out.RecSA)
	}
}

// TestShardTaggedEnvelopeRoundTrip exercises the version-2 shard-mux
// field: payloads of shards ≥ 1 travel tagged, and — the gob hazard the
// explicit-presence schema guards — an entry tagged shard 0 survives
// even though gob elides zero-valued struct fields.
func TestShardTaggedEnvelopeRoundTrip(t *testing.T) {
	st := regmem.State{Base: map[string]string{"a": "1"}, Delta: &regmem.Delta{Name: "b", Value: "2"}, Depth: 1}
	app0 := vs.Payload{Replica: &vs.Replica{Status: vs.StatusMulticast, Rnd: 1, State: st}}
	app1 := vs.Payload{Replica: &vs.Replica{Status: vs.StatusPropose, Rnd: 2}}
	env := core.Envelope{
		App: app0,
		ShardApps: []core.ShardApp{
			{Shard: 0, App: app0}, // tag 0 must survive gob's zero elision
			{Shard: 1, App: app1},
		},
	}
	in := datalink.Packet{Kind: datalink.KindData, Session: 5, Payload: env}
	got, ok := roundTrip(t, in)[0].(datalink.Packet)
	if !ok {
		t.Fatalf("payload type %T", got)
	}
	out, ok := got.Payload.(core.Envelope)
	if !ok {
		t.Fatalf("envelope type %T", got.Payload)
	}
	if len(out.ShardApps) != 2 {
		t.Fatalf("ShardApps = %+v, want 2 entries", out.ShardApps)
	}
	if out.ShardApps[0].Shard != 0 || out.ShardApps[1].Shard != 1 {
		t.Fatalf("shard tags %d,%d, want 0,1", out.ShardApps[0].Shard, out.ShardApps[1].Shard)
	}
	if !reflect.DeepEqual(out, in.Payload) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", in.Payload, out)
	}
}

// TestUnshardedEnvelopeHasNoShardField: a single-shard envelope encodes
// exactly as before sharding — no shard field materializes on decode, so
// shard-0-only deployments see no format break.
func TestUnshardedEnvelopeHasNoShardField(t *testing.T) {
	env := core.Envelope{App: vs.Payload{Replica: &vs.Replica{Status: vs.StatusMulticast}}}
	in := datalink.Packet{Kind: datalink.KindData, Session: 2, Payload: env}
	got := roundTrip(t, in)[0].(datalink.Packet)
	out := got.Payload.(core.Envelope)
	if out.ShardApps != nil {
		t.Fatalf("unsharded envelope grew ShardApps: %+v", out.ShardApps)
	}
	if !reflect.DeepEqual(out, env) {
		t.Fatalf("round trip mismatch:\n in=%#v\nout=%#v", env, out)
	}
}

// TestReaderAcceptsMinVersionStream: a stream stamped with the
// pre-sharding preamble version still decodes (the shard field is a
// gob-compatible addition; old frames just carry HasShards=false).
func TestReaderAcceptsMinVersionStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	env := core.Envelope{RecMA: &recma.Message{NoMaj: true}}
	if err := w.WriteMsg(NewMsg(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 9, Payload: env})); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[6] = MinVersion // rewrite the preamble's version byte
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("MinVersion preamble rejected: %v", err)
	}
	m, err := r.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	pkt := m.Payload().(datalink.Packet)
	out := pkt.Payload.(core.Envelope)
	if out.RecMA == nil || !out.RecMA.NoMaj {
		t.Fatalf("v1 frame lost content: %+v", out)
	}
	if out.ShardApps != nil {
		t.Fatalf("v1 frame materialized ShardApps: %+v", out.ShardApps)
	}
}

func TestControlAndRawPayloads(t *testing.T) {
	payloads := []any{
		datalink.Packet{Kind: datalink.KindClean, Session: 7},
		datalink.Packet{Kind: datalink.KindCleanAck, Session: 7},
		datalink.Packet{Kind: datalink.KindAck, Session: 7, Seq: 1},
		"garbage",
		42,
	}
	got := roundTrip(t, payloads...)
	for i := range payloads {
		if !reflect.DeepEqual(got[i], payloads[i]) {
			t.Errorf("payload %d: %#v != %#v", i, got[i], payloads[i])
		}
	}
}

func TestReaderRejectsBadPreamble(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notrecfg"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte("recfg\x00"), 99, 0)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("rec"))); err == nil {
		t.Fatal("truncated preamble accepted")
	}
}

func TestReaderRejectsOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(NewMsg(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first frame header to claim an enormous payload.
	b := buf.Bytes()
	b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMsg(); err == nil || err == io.EOF {
		t.Fatalf("oversize frame not rejected: %v", err)
	}
}

func TestStreamReusesTypeDefinitions(t *testing.T) {
	env := core.Envelope{RecMA: &recma.Message{NoMaj: true}}
	pkt := datalink.Packet{Kind: datalink.KindData, Session: 3, Payload: env}

	size := func(n int) int {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.WriteMsg(NewMsg(1, 2, pkt)); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Len()
	}
	one, ten := size(1), size(10)
	perMsg := (ten - one) / 9
	if perMsg >= one {
		t.Fatalf("per-message cost %dB not below first-message cost %dB — type definitions resent?", perMsg, one)
	}
}
