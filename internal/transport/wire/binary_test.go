package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/join"
	"repro/internal/label"
	"repro/internal/recma"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/smr"
	"repro/internal/vs"
)

// outsideType is gob-registered but outside the binary fast path's
// closed type set, forcing the per-message gob fallback.
type outsideType struct{ X int }

func init() { gob.Register(outsideType{}) }

// encodeOne writes one message at the given version and returns the
// stream minus the preamble.
func encodeOne(t *testing.T, version byte, m Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, version)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()[preambleLen:]
}

// firstHeader returns the first frame header of a preamble-stripped
// stream.
func firstHeader(t *testing.T, b []byte) uint32 {
	t.Helper()
	if len(b) < 4 {
		t.Fatalf("stream of %d bytes has no frame header", len(b))
	}
	return binary.BigEndian.Uint32(b[:4])
}

// decodeOne reads one message back from a full version-5 stream.
func decodeOne(t *testing.T, stream []byte) Msg {
	t.Helper()
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fullStream prepends a version-5 preamble-carrying writer encoding of
// one message.
func fullStream(t *testing.T, m Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// hotShapes enumerates representative DATA/batch payload shapes of
// every type the binary fast path encodes — the shapes the stack
// actually sends plus edge cases (nil payload, empty batch, zero-value
// structs, multi-key maps).
func hotShapes() map[string]datalink.Packet {
	conf := ids.NewSet(1, 2, 3)
	ctr := counter.Counter{
		Lbl:  label.Label{Creator: 3, Sting: 2, Antistings: []int{0, 1, 5}},
		Seqn: 9, WID: 3,
	}
	cancel := counter.Counter{Lbl: label.Label{Creator: 1}, Seqn: 1, WID: 1}
	rep := vs.Replica{
		View:   vs.View{ID: ctr, Set: conf},
		Status: vs.StatusPropose,
		Rnd:    4,
		State: regmem.State{
			Base:  map[string]string{"x": "1", "a": "0", "m": "7"},
			Delta: &regmem.Delta{Name: "x", Value: "2", Prev: &regmem.Delta{Name: "y", Value: "3"}},
			Depth: 2,
		},
		Inputs: map[ids.ID]any{
			1: regmem.WriteCmd{Name: "x", Value: "2", Writer: 1, Seq: 7},
			2: smr.Batch{Cmds: []any{
				regmem.MarkerCmd{Reader: 2, Seq: 3},
				regmem.WriteCmd{Name: "z", Value: "9", Writer: 2, Seq: 4},
			}},
			3: nil,
		},
		Input: smr.KVCmd{Op: smr.KVPut, Key: "k", Value: "v"},
		PropV: vs.View{ID: cancel, Set: ids.NewSet(1, 2)},
		NoCrd: true,
		Crd:   3,
	}
	saMsg := recsa.Message{
		FD:     ids.NewSet(1, 2, 3, 4),
		Part:   conf,
		Config: recsa.ConfigOf(conf),
		Prp:    recsa.Notification{Phase: 1, HasSet: true, Set: ids.NewSet(1, 2)},
		All:    true,
		Echo:   recsa.Echo{Valid: true, Part: conf, Prp: recsa.DefaultNtf()},
	}
	fullEnv := core.Envelope{
		RecSA:    &saMsg,
		RecMA:    &recma.Message{NoMaj: true, NeedReconf: true},
		JoinReq:  true,
		JoinResp: &join.Response{Pass: true, State: map[string]int64{"acct": -12, "b": 4}},
		App: vs.Payload{
			Replica: &rep,
			Counter: counter.Message{
				Gossip:    counter.Pair{MCT: ctr, Cancel: &cancel},
				HasGossip: true,
				RPCs: []counter.RPC{
					{Kind: counter.ReadReq, Seq: 1},
					{Kind: counter.WriteResp, Seq: 2, Counter: counter.Pair{MCT: ctr}, HasCtr: true, Abort: true},
				},
			},
		},
		ShardApps: []core.ShardApp{
			{Shard: 1, App: smr.Batch{Cmds: []any{smr.BankCmd{From: "a", To: "b", Amount: 5}}}},
			{Shard: 2, App: map[ids.ID]any{4: "s", 9: 42}},
		},
	}
	return map[string]datalink.Packet{
		"empty-token":  {Kind: datalink.KindData, Session: 7, Seq: 3},
		"full-env":     {Kind: datalink.KindData, Session: 99, Seq: 1, Payload: fullEnv},
		"zero-ptrs":    {Kind: datalink.KindData, Session: 1, Payload: core.Envelope{RecMA: &recma.Message{}, JoinResp: &join.Response{}}},
		"raw-string":   {Kind: datalink.KindData, Session: 2, Seq: 9, Payload: "garbage"},
		"raw-int":      {Kind: datalink.KindData, Session: 2, Payload: -41},
		"raw-bool":     {Kind: datalink.KindData, Session: 2, Payload: true},
		"raw-set":      {Kind: datalink.KindData, Session: 2, Payload: ids.NewSet(3, 1, 2)},
		"raw-map-ss":   {Kind: datalink.KindData, Session: 2, Payload: map[string]string{"k1": "v1", "k0": "v0"}},
		"empty-batch":  {Kind: datalink.KindData, Session: 5, Seq: 2, Batch: []any{}},
		"mixed-batch":  {Kind: datalink.KindData, Session: 5, Seq: 2, Batch: []any{fullEnv, "raw", core.Envelope{}, nil}},
		"state-batch":  {Kind: datalink.KindData, Session: 5, Seq: 4, Batch: []any{core.Envelope{App: regmem.State{}}, core.Envelope{App: vs.Payload{}}}},
		"counter-only": {Kind: datalink.KindData, Session: 6, Payload: core.Envelope{App: vs.Payload{Counter: counter.Message{}}}},
		// Empty non-nil maps next to nil ones: gob keeps the
		// distinction and vs.follow keys incremental apply off
		// Inputs != nil, so the codec must too (regression: the
		// original encoding collapsed empty maps to nil, forcing a
		// wholesale adoption + snapshot every round).
		"nil-vs-empty-maps": {Kind: datalink.KindData, Session: 8, Seq: 1, Batch: []any{
			core.Envelope{App: vs.Payload{Replica: &vs.Replica{
				Rnd:    2,
				State:  regmem.State{Base: map[string]string{}},
				Inputs: map[ids.ID]any{},
			}}},
			core.Envelope{App: vs.Payload{Replica: &vs.Replica{Rnd: 3}}},
			core.Envelope{JoinResp: &join.Response{Pass: true, State: map[string]int64{}}},
			core.Envelope{App: map[string]string{}},
			core.Envelope{App: map[string]int64{}},
		}},
	}
}

// TestBinaryGobEquivalence: every hot DATA/batch shape decodes to the
// same message through the version-5 binary fast path as through the
// version-4 gob framing, and the binary path is actually taken.
func TestBinaryGobEquivalence(t *testing.T) {
	for name, pkt := range hotShapes() {
		t.Run(name, func(t *testing.T) {
			in := NewMsg(1, 2, pkt)
			v5 := encodeOne(t, 5, in)
			if hdr := firstHeader(t, v5); hdr&binFlag == 0 {
				t.Fatalf("DATA packet missed the binary fast path (header %#x)", hdr)
			}

			var pre [preambleLen]byte
			copy(pre[:], magic[:])
			pre[len(magic)] = 4
			binOut := decodeOne(t, fullStream(t, in))
			gobOut := decodeOne(t, append(pre[:], encodeOne(t, 4, in)...))
			if !reflect.DeepEqual(binOut, gobOut) {
				t.Fatalf("binary and gob decode diverge:\nbin=%#v\ngob=%#v", binOut, gobOut)
			}
			if got := binOut.Payload(); !reflect.DeepEqual(got, any(pkt)) {
				t.Fatalf("binary round trip mismatch:\n in=%#v\nout=%#v", pkt, got)
			}
		})
	}
}

// TestBinaryPreservesEmptyInputs: an assembled-but-empty round ships
// as Replica.Inputs = map[ids.ID]any{}, and followers treat a nil
// Inputs as "no round to apply" (vs.Manager.follow). The binary path
// must therefore hand back an empty non-nil map, and leave genuinely
// nil maps nil.
func TestBinaryPreservesEmptyInputs(t *testing.T) {
	empty := &vs.Replica{Rnd: 2, State: regmem.State{Base: map[string]string{}}, Inputs: map[ids.ID]any{}}
	null := &vs.Replica{Rnd: 3}
	pkt := datalink.Packet{Kind: datalink.KindData, Session: 3, Seq: 1, Batch: []any{
		core.Envelope{App: vs.Payload{Replica: empty}},
		core.Envelope{App: vs.Payload{Replica: null}},
	}}
	in := NewMsg(1, 2, pkt)
	if hdr := firstHeader(t, encodeOne(t, 5, in)); hdr&binFlag == 0 {
		t.Fatalf("packet missed the binary fast path (header %#x)", hdr)
	}
	batch := decodeOne(t, fullStream(t, in)).Payload().(datalink.Packet).Batch
	got := batch[0].(core.Envelope).App.(vs.Payload).Replica
	if got.Inputs == nil || len(got.Inputs) != 0 {
		t.Fatalf("empty Inputs round-tripped as %#v, want empty non-nil map", got.Inputs)
	}
	if base := got.State.(regmem.State).Base; base == nil || len(base) != 0 {
		t.Fatalf("empty State.Base round-tripped as %#v, want empty non-nil map", base)
	}
	gotNil := batch[1].(core.Envelope).App.(vs.Payload).Replica
	if gotNil.Inputs != nil {
		t.Fatalf("nil Inputs round-tripped non-nil: %#v", gotNil.Inputs)
	}
}

// TestBinaryDeterministicBytes: the binary encoding of a message with
// multi-key maps is byte-identical across encodes (maps are sorted), so
// bytes-per-op columns in experiments are reproducible.
func TestBinaryDeterministicBytes(t *testing.T) {
	pkt := hotShapes()["full-env"]
	in := NewMsg(1, 2, pkt)
	first := encodeOne(t, 5, in)
	for i := 0; i < 8; i++ {
		if again := encodeOne(t, 5, in); !bytes.Equal(first, again) {
			t.Fatalf("encode %d diverged from first encode", i)
		}
	}
}

// TestBinaryFallbackToGob: payload types outside the closed hot-path
// set, and non-DATA packets, fall back to the gob stream on a
// version-5 connection and still round-trip.
func TestBinaryFallbackToGob(t *testing.T) {
	cases := map[string]any{
		"outside-type":   datalink.Packet{Kind: datalink.KindData, Session: 3, Payload: outsideType{X: 7}},
		"outside-in-env": datalink.Packet{Kind: datalink.KindData, Session: 3, Payload: core.Envelope{App: outsideType{X: 8}}},
		"outside-batch":  datalink.Packet{Kind: datalink.KindData, Session: 3, Batch: []any{core.Envelope{}, outsideType{X: 9}}},
		"clean":          datalink.Packet{Kind: datalink.KindClean, Session: 3},
		"clean-ack":      datalink.Packet{Kind: datalink.KindCleanAck, Session: 3},
		"ack":            datalink.Packet{Kind: datalink.KindAck, Session: 3, Seq: 2},
		"raw-msg":        "not a packet at all",
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			in := NewMsg(1, 2, payload)
			stream := encodeOne(t, 5, in)
			if hdr := firstHeader(t, stream); hdr&binFlag != 0 {
				t.Fatalf("%s took the binary path (header %#x)", name, hdr)
			}
			got := decodeOne(t, fullStream(t, in)).Payload()
			if !reflect.DeepEqual(got, payload) {
				t.Fatalf("gob fallback round trip mismatch:\n in=%#v\nout=%#v", payload, got)
			}
		})
	}
}

// TestBinaryGobInterleave: binary DATA frames, gob control frames, and
// a chunked oversize state transfer share one connection; the reader
// switches codecs at every message boundary without losing gob stream
// state.
func TestBinaryGobInterleave(t *testing.T) {
	big := strings.Repeat("s", MaxFrame+MaxFrame/2) // forces chunked gob transfer
	payloads := []any{
		datalink.Packet{Kind: datalink.KindData, Session: 1, Seq: 1, Payload: core.Envelope{App: "warm"}},
		datalink.Packet{Kind: datalink.KindClean, Session: 2},
		datalink.Packet{Kind: datalink.KindData, Session: 2, Seq: 2, Batch: []any{core.Envelope{App: 1}, core.Envelope{App: 2}}},
		datalink.Packet{Kind: datalink.KindData, Session: 2, Seq: 3, Payload: core.Envelope{App: big}},
		datalink.Packet{Kind: datalink.KindAck, Session: 2, Seq: 3},
		datalink.Packet{Kind: datalink.KindData, Session: 2, Seq: 4, Payload: core.Envelope{App: "cool"}},
	}
	got := roundTrip(t, payloads...)
	for i := range payloads {
		if !reflect.DeepEqual(got[i], payloads[i]) {
			t.Fatalf("message %d mismatch:\n in=%#v\nout=%#v", i, payloads[i], got[i])
		}
	}
}

// TestBinaryRejectedBelowV5: a binary frame appearing on a stream whose
// preamble negotiated a version below 5 is rejected — old readers never
// see fast-path frames from a correct writer, so one arriving means the
// stream is corrupt.
func TestBinaryRejectedBelowV5(t *testing.T) {
	in := NewMsg(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 7})
	stream := fullStream(t, in)
	if hdr := firstHeader(t, stream[preambleLen:]); hdr&binFlag == 0 {
		t.Fatalf("expected a binary frame (header %#x)", hdr)
	}
	stream[len(magic)] = 4 // rewrite the preamble version
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMsg(); err == nil || !strings.Contains(err.Error(), "binary frame") {
		t.Fatalf("binary frame on v4 stream not rejected: %v", err)
	}
}

// TestBinaryOversizeFallsBack: a DATA message whose binary encoding
// exceeds MaxFrame leaves the fast path and travels as a (possibly
// chunked) gob transfer.
func TestBinaryOversizeFallsBack(t *testing.T) {
	big := strings.Repeat("b", MaxFrame+1)
	in := NewMsg(1, 2, datalink.Packet{Kind: datalink.KindData, Session: 9, Payload: core.Envelope{App: big}})
	stream := encodeOne(t, 5, in)
	if hdr := firstHeader(t, stream); hdr&binFlag != 0 {
		t.Fatalf("oversize message took the binary path (header %#x)", hdr)
	}
	got := decodeOne(t, fullStream(t, in)).Payload().(datalink.Packet)
	env := got.Payload.(core.Envelope)
	if env.App != big {
		t.Fatalf("oversize fallback lost the payload (%d bytes back)", len(env.App.(string)))
	}
}

// TestBinaryTruncationAndCorruptionRejected: every prefix of a valid
// binary frame payload fails to decode cleanly (no silent partial
// messages), and absurd counts are rejected before allocation.
func TestBinaryTruncationAndCorruptionRejected(t *testing.T) {
	pkt := hotShapes()["full-env"]
	b, ok := appendBinaryMsg(nil, NewMsg(1, 2, pkt))
	if !ok {
		t.Fatal("full-env should be binary-encodable")
	}
	if _, err := decodeBinaryMsg(b); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := decodeBinaryMsg(b[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(b))
		}
	}
	if _, err := decodeBinaryMsg(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}

	// An over-bound batch count must be rejected by the remaining-bytes
	// check, not allocated.
	huge := []byte{
		2, 4, // from=1, to=2 (zigzag)
		byte(datalink.KindData),
		0, 0, 0, 0, 0, 0, 0, 1, // session
		1,                            // seq
		shapeBatch,                   // batch shape
		0xff, 0xff, 0xff, 0xff, 0x7f, // uvarint count ≈ 34 G
	}
	if _, err := decodeBinaryMsg(huge); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("absurd batch count not rejected: %v", err)
	}
}
