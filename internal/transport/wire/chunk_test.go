package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// chunkPreamble returns a version-4 stream preamble.
func chunkPreamble() []byte {
	var pre [preambleLen]byte
	copy(pre[:], magic[:])
	pre[len(magic)] = Version
	return pre[:]
}

// chunkFrame hand-frames one chunk.
func chunkFrame(total uint64, index, count uint32, data []byte) []byte {
	var hdr [4 + chunkHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], chunkFlag|uint32(chunkHeaderLen+len(data)))
	binary.BigEndian.PutUint64(hdr[4:12], total)
	binary.BigEndian.PutUint32(hdr[12:16], index)
	binary.BigEndian.PutUint32(hdr[16:20], count)
	binary.BigEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(data))
	return append(hdr[:], data...)
}

func TestChunkedTransferRoundTrip(t *testing.T) {
	payload := strings.Repeat("s", MaxFrame+MaxFrame/2)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(NewMsg(1, 2, payload)); err != nil {
		t.Fatal(err)
	}
	if w.Frames() < 2 {
		t.Fatalf("oversize transfer used %d frames", w.Frames())
	}
	// A plain message after the chunked one proves the gob stream and
	// the frame layer stay in sync across the transfer.
	if err := w.WriteMsg(NewMsg(1, 2, "after")); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.ReadMsg()
	if err != nil {
		t.Fatalf("chunked message did not decode: %v", err)
	}
	if got, _ := m.Payload().(string); got != payload {
		t.Fatalf("chunked message corrupted (len %d want %d)", len(got), len(payload))
	}
	m, err = r.ReadMsg()
	if err != nil {
		t.Fatalf("message after chunked transfer: %v", err)
	}
	if got, _ := m.Payload().(string); got != "after" {
		t.Fatalf("follow-up message = %q", got)
	}
}

func TestLegacyWriterSpansWithoutChunkFrames(t *testing.T) {
	payload := strings.Repeat("s", MaxFrame+1)
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg(NewMsg(1, 2, payload)); err != nil {
		t.Fatal(err)
	}
	// No frame header carries the chunk flag.
	b := buf.Bytes()[preambleLen:]
	for len(b) >= 4 {
		n := binary.BigEndian.Uint32(b[:4])
		if n&chunkFlag != 0 {
			t.Fatal("legacy writer emitted a chunk frame")
		}
		b = b[4+int(n):]
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Payload().(string); got != payload {
		t.Fatal("legacy spanned message corrupted")
	}
}

// TestChunkDeclaredTotalRejectedBeforeBuffering is the bounds bugfix:
// a transfer declaring more than MaxMessage is refused from the fixed
// chunk header alone. The stream deliberately carries NO chunk data —
// a reader that tried to buffer before validating would report
// unexpected EOF instead of the budget violation.
func TestChunkDeclaredTotalRejectedBeforeBuffering(t *testing.T) {
	stream := chunkPreamble()
	var hdr [4 + chunkHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], chunkFlag|uint32(chunkHeaderLen+1024))
	binary.BigEndian.PutUint64(hdr[4:12], MaxMessage+1)
	binary.BigEndian.PutUint32(hdr[12:16], 0)
	binary.BigEndian.PutUint32(hdr[16:20], 17)
	stream = append(stream, hdr[:]...)

	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadMsg()
	if err == nil || !strings.Contains(err.Error(), "MaxMessage") {
		t.Fatalf("declared-oversize transfer not rejected up front: %v", err)
	}
}

func TestChunkCRCMismatchRejected(t *testing.T) {
	data := []byte("chunk-payload")
	frame := chunkFrame(uint64(len(data)), 0, 1, data)
	frame[len(frame)-1] ^= 0x01 // corrupt the data, keep the CRC
	stream := append(chunkPreamble(), frame...)
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMsg(); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt chunk not rejected: %v", err)
	}
}

func TestChunkSequenceViolationsRejected(t *testing.T) {
	data := []byte("0123456789")
	for name, stream := range map[string][]byte{
		"starts past zero": append(chunkPreamble(),
			chunkFrame(20, 1, 2, data)...),
		"index jump": append(append(chunkPreamble(),
			chunkFrame(30, 0, 3, data)...),
			chunkFrame(30, 2, 3, data)...),
		"total changes mid-transfer": append(append(chunkPreamble(),
			chunkFrame(20, 0, 2, data)...),
			chunkFrame(40, 1, 2, data)...),
		"data overflows total": append(chunkPreamble(),
			chunkFrame(5, 0, 1, data)...),
		"count zero": append(chunkPreamble(),
			chunkFrame(20, 0, 0, data)...),
		"plain frame interrupts": append(append(chunkPreamble(),
			chunkFrame(20, 0, 2, data)...),
			0, 0, 0, 1, 'x'),
	} {
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadMsg(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestChunkShortFinalTransferRejected: a transfer whose last chunk
// leaves the declared total unmet is an error, not a silent truncation.
func TestChunkShortFinalTransferRejected(t *testing.T) {
	data := []byte("0123456789")
	stream := append(chunkPreamble(), chunkFrame(25, 0, 2, data)...)
	stream = append(stream, chunkFrame(25, 1, 2, data)...) // 20 of 25 bytes
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMsg(); err == nil || !strings.Contains(err.Error(), "declared") {
		t.Fatalf("short transfer not rejected: %v", err)
	}
}
