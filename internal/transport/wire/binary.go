// Binary fast path (version 5): a hand-rolled length-delimited encoding
// for the hot DATA/batch packet shape, eliminating per-message gob
// reflection on the path that carries essentially all steady-state
// bytes. A writer negotiated to version 5 encodes every DATA packet
// whose payload types it knows (the closed set of types the stack sends
// — envelopes, recSA/recMA broadcasts, vs replica exchanges, counter
// gossip, regmem/smr commands and states) into a single frame flagged
// with binFlag; everything else — control packets, unknown payload
// types, encodings larger than MaxFrame — falls back to the continuous
// gob stream, frame by frame, exactly as before. Binary frames are
// self-contained (they never touch the gob stream state), so the two
// codecs interleave freely on one connection.
//
// Layout (big-endian fixed ints, unsigned LEB128 "uvarint" lengths and
// counts, zigzag varints for signed ints):
//
//	msg    := from(zigzag) to(zigzag) kind(u8) session(8B) seq(u8) shape(u8) body
//	shape  := 1 envelope | 2 raw anyVal | 3 batch
//	batch  := count(uvarint) { itemTag(u8=1 env, 2 raw) body }*
//	env    := flags(u8) [SA] [MA] [JoinResp] app(anyVal) [shards]
//	anyVal := typeTag(u8) body
//	map    := pres(uvarint: 0 = nil, n+1 = n entries) { key value }*
//
// Maps carry an explicit nil/empty distinction (the pres uvarint)
// because gob preserves it and the vs layer keys behavior off it: a
// coordinator's record with an assembled-but-empty round (Inputs
// non-nil, zero entries) must not arrive as a nil map — a follower
// treats nil Inputs as "no round to apply" and downgrades every
// incremental adoption to a wholesale one. Slices intentionally do NOT
// get the same treatment: gob itself collapses empty slices to nil, so
// collapsing here keeps the two codecs observably identical.
//
// Every decoder length and count is validated against the remaining
// buffer before any allocation, and anyVal recursion is depth-bounded,
// so a corrupted or hostile frame cannot make the reader allocate or
// recurse without bound (the fuzz corpus covers truncations, corrupt
// headers and over-bound counts for this path too).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"repro/internal/counter"
	"repro/internal/ids"
	"repro/internal/join"
	"repro/internal/label"
	"repro/internal/recma"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/smr"
	"repro/internal/vs"
)

// binFlag marks a frame header as a self-contained binary fast-path
// message (version 5). It shares the header's high bits with chunkFlag;
// a version ≤ 4 reader treats either bit as an absurd frame length and
// rejects the stream, which is why binary frames are only emitted to
// peers that negotiated version 5.
const binFlag = 1 << 30

// errUnsupported aborts a binary encode attempt: the message carries a
// payload type outside the closed hot-path set, so the writer falls
// back to gob. Decoders never return it.
var errUnsupported = errors.New("wire: payload type outside binary fast path")

// maxAnyDepth bounds anyVal nesting on decode (a Batch of Batches of …
// from a hostile frame must not recurse without bound).
const maxAnyDepth = 24

// anyVal type tags.
const (
	tagNil       = 0
	tagString    = 1
	tagInt       = 2
	tagBool      = 3
	tagVSPayload = 4
	tagCtrMsg    = 5
	tagWriteCmd  = 6
	tagMarkerCmd = 7
	tagRegState  = 8
	tagKVCmd     = 9
	tagBankCmd   = 10
	tagSMRBatch  = 11
	tagMapSS     = 12
	tagMapSI64   = 13
	tagMapIDAny  = 14
	tagIDSet     = 15
)

// Packet shape discriminators.
const (
	shapeEnv   = 1
	shapeRaw   = 2
	shapeBatch = 3
)

// Envelope presence flags.
const (
	envHasSA       = 1 << 0
	envHasMA       = 1 << 1
	envJoinReq     = 1 << 2
	envHasJoinResp = 1 << 3
	envHasShards   = 1 << 4
)

// --- encoder ---

// appendBinaryMsg appends the binary fast-path encoding of m to dst.
// ok is false when m carries a payload outside the closed type set (the
// caller falls back to gob; dst's extension is then garbage and must be
// discarded via the returned slice's original length).
func appendBinaryMsg(dst []byte, m Msg) (out []byte, ok bool) {
	var err error
	dst = appendZigzag(dst, int64(m.From))
	dst = appendZigzag(dst, int64(m.To))
	dst = append(dst, byte(m.Pkt.Kind))
	dst = binary.BigEndian.AppendUint64(dst, m.Pkt.Session)
	dst = append(dst, m.Pkt.Seq)
	switch {
	case m.Pkt.HasBatch:
		dst = append(dst, shapeBatch)
		dst = binary.AppendUvarint(dst, uint64(len(m.Pkt.Batch)))
		for _, item := range m.Pkt.Batch {
			if item.HasEnv {
				dst = append(dst, 1)
				dst, err = appendEnvelope(dst, item.Env)
			} else {
				dst = append(dst, 2)
				dst, err = appendAny(dst, item.Raw)
			}
			if err != nil {
				return dst, false
			}
		}
	case m.Pkt.HasEnv:
		dst = append(dst, shapeEnv)
		if dst, err = appendEnvelope(dst, m.Pkt.Env); err != nil {
			return dst, false
		}
	default:
		dst = append(dst, shapeRaw)
		if dst, err = appendAny(dst, m.Pkt.Raw); err != nil {
			return dst, false
		}
	}
	return dst, true
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendSet(dst []byte, s ids.Set) []byte {
	members := s.Members()
	dst = binary.AppendUvarint(dst, uint64(len(members)))
	for _, id := range members {
		dst = appendZigzag(dst, int64(id))
	}
	return dst
}

func appendLabel(dst []byte, l label.Label) []byte {
	dst = appendZigzag(dst, int64(l.Creator))
	dst = appendZigzag(dst, int64(l.Sting))
	dst = binary.AppendUvarint(dst, uint64(len(l.Antistings)))
	for _, a := range l.Antistings {
		dst = appendZigzag(dst, int64(a))
	}
	return dst
}

func appendCounter(dst []byte, c counter.Counter) []byte {
	dst = appendLabel(dst, c.Lbl)
	dst = binary.AppendUvarint(dst, c.Seqn)
	return appendZigzag(dst, int64(c.WID))
}

func appendCtrPair(dst []byte, p counter.Pair) []byte {
	dst = appendCounter(dst, p.MCT)
	if p.Cancel == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendCounter(dst, *p.Cancel)
}

func appendCtrMsg(dst []byte, m counter.Message) []byte {
	dst = appendBool(dst, m.HasGossip)
	dst = appendCtrPair(dst, m.Gossip)
	dst = binary.AppendUvarint(dst, uint64(len(m.RPCs)))
	for _, r := range m.RPCs {
		dst = appendZigzag(dst, int64(r.Kind))
		dst = binary.AppendUvarint(dst, r.Seq)
		dst = appendCtrPair(dst, r.Counter)
		dst = appendBool(dst, r.HasCtr)
		dst = appendBool(dst, r.Abort)
	}
	return dst
}

func appendConfig(dst []byte, c recsa.Config) []byte {
	dst = appendZigzag(dst, int64(c.Kind))
	return appendSet(dst, c.Set)
}

func appendNtf(dst []byte, n recsa.Notification) []byte {
	dst = appendZigzag(dst, int64(n.Phase))
	dst = appendBool(dst, n.HasSet)
	return appendSet(dst, n.Set)
}

func appendSA(dst []byte, m recsa.Message) []byte {
	dst = appendSet(dst, m.FD)
	dst = appendSet(dst, m.Part)
	dst = appendConfig(dst, m.Config)
	dst = appendNtf(dst, m.Prp)
	dst = appendBool(dst, m.All)
	dst = appendBool(dst, m.Echo.Valid)
	dst = appendSet(dst, m.Echo.Part)
	dst = appendNtf(dst, m.Echo.Prp)
	return appendBool(dst, m.Echo.All)
}

func appendView(dst []byte, v vs.View) []byte {
	dst = appendCounter(dst, v.ID)
	return appendSet(dst, v.Set)
}

func appendIDAnyMap(dst []byte, m map[ids.ID]any) (out []byte, err error) {
	if m == nil {
		return binary.AppendUvarint(dst, 0), nil
	}
	keys := make([]ids.ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
	for _, k := range keys {
		dst = appendZigzag(dst, int64(k))
		if dst, err = appendAny(dst, m[k]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendReplica(dst []byte, r vs.Replica) (out []byte, err error) {
	dst = appendView(dst, r.View)
	dst = appendZigzag(dst, int64(r.Status))
	dst = binary.AppendUvarint(dst, r.Rnd)
	if dst, err = appendAny(dst, r.State); err != nil {
		return dst, err
	}
	if dst, err = appendIDAnyMap(dst, r.Inputs); err != nil {
		return dst, err
	}
	if dst, err = appendAny(dst, r.Input); err != nil {
		return dst, err
	}
	dst = appendView(dst, r.PropV)
	dst = appendBool(dst, r.NoCrd)
	dst = appendBool(dst, r.Suspend)
	return appendZigzag(dst, int64(r.Crd)), nil
}

func appendRegState(dst []byte, s regmem.State) []byte {
	if s.Base == nil {
		dst = binary.AppendUvarint(dst, 0)
		return appendRegDeltas(dst, s)
	}
	keys := make([]string, 0, len(s.Base))
	for k := range s.Base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, s.Base[k])
	}
	return appendRegDeltas(dst, s)
}

func appendRegDeltas(dst []byte, s regmem.State) []byte {
	n := 0
	for d := s.Delta; d != nil; d = d.Prev {
		n++
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for d := s.Delta; d != nil; d = d.Prev { // newest first
		dst = appendString(dst, d.Name)
		dst = appendString(dst, d.Value)
	}
	return appendZigzag(dst, int64(s.Depth))
}

// appendAny encodes one payload from the closed hot-path type set,
// failing with errUnsupported for anything else (the caller falls back
// to gob for the whole message).
func appendAny(dst []byte, v any) (out []byte, err error) {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil), nil
	case string:
		return appendString(append(dst, tagString), x), nil
	case int:
		return appendZigzag(append(dst, tagInt), int64(x)), nil
	case bool:
		return appendBool(append(dst, tagBool), x), nil
	case vs.Payload:
		dst = append(dst, tagVSPayload)
		if x.Replica == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			if dst, err = appendReplica(dst, *x.Replica); err != nil {
				return dst, err
			}
		}
		return appendAny(dst, x.Counter)
	case counter.Message:
		return appendCtrMsg(append(dst, tagCtrMsg), x), nil
	case regmem.WriteCmd:
		dst = append(dst, tagWriteCmd)
		dst = appendString(dst, x.Name)
		dst = appendString(dst, x.Value)
		dst = appendZigzag(dst, int64(x.Writer))
		return binary.AppendUvarint(dst, x.Seq), nil
	case regmem.MarkerCmd:
		dst = append(dst, tagMarkerCmd)
		dst = appendZigzag(dst, int64(x.Reader))
		return binary.AppendUvarint(dst, x.Seq), nil
	case regmem.State:
		return appendRegState(append(dst, tagRegState), x), nil
	case smr.KVCmd:
		dst = append(dst, tagKVCmd)
		dst = appendZigzag(dst, int64(x.Op))
		dst = appendString(dst, x.Key)
		return appendString(dst, x.Value), nil
	case smr.BankCmd:
		dst = append(dst, tagBankCmd)
		dst = appendString(dst, x.From)
		dst = appendString(dst, x.To)
		return appendZigzag(dst, x.Amount), nil
	case smr.Batch:
		dst = append(dst, tagSMRBatch)
		dst = binary.AppendUvarint(dst, uint64(len(x.Cmds)))
		for _, c := range x.Cmds {
			if dst, err = appendAny(dst, c); err != nil {
				return dst, err
			}
		}
		return dst, nil
	case map[string]string:
		dst = append(dst, tagMapSS)
		if x == nil {
			return binary.AppendUvarint(dst, 0), nil
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
		for _, k := range keys {
			dst = appendString(dst, k)
			dst = appendString(dst, x[k])
		}
		return dst, nil
	case map[string]int64:
		dst = append(dst, tagMapSI64)
		if x == nil {
			return binary.AppendUvarint(dst, 0), nil
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys))+1)
		for _, k := range keys {
			dst = appendString(dst, k)
			dst = appendZigzag(dst, x[k])
		}
		return dst, nil
	case map[ids.ID]any:
		return appendIDAnyMap(append(dst, tagMapIDAny), x)
	case ids.Set:
		return appendSet(append(dst, tagIDSet), x), nil
	default:
		return dst, errUnsupported
	}
}

func appendEnvelope(dst []byte, e Envelope) (out []byte, err error) {
	var flags byte
	if e.HasSA {
		flags |= envHasSA
	}
	if e.HasMA {
		flags |= envHasMA
	}
	if e.JoinReq {
		flags |= envJoinReq
	}
	if e.HasJoinResp {
		flags |= envHasJoinResp
	}
	if e.HasShards {
		flags |= envHasShards
	}
	dst = append(dst, flags)
	if e.HasSA {
		dst = appendSA(dst, e.SA)
	}
	if e.HasMA {
		dst = appendBool(dst, e.MA.NoMaj)
		dst = appendBool(dst, e.MA.NeedReconf)
	}
	if e.HasJoinResp {
		dst = appendBool(dst, e.JoinResp.Pass)
		if dst, err = appendAny(dst, e.JoinResp.State); err != nil {
			return dst, err
		}
	}
	if dst, err = appendAny(dst, e.App); err != nil {
		return dst, err
	}
	if e.HasShards {
		dst = binary.AppendUvarint(dst, uint64(len(e.Shards)))
		for _, sa := range e.Shards {
			dst = appendZigzag(dst, int64(sa.Shard))
			if dst, err = appendAny(dst, sa.App); err != nil {
				return dst, err
			}
		}
	}
	return dst, nil
}

// --- decoder ---

// bdec is a bounds-checked cursor over one binary frame. Every length
// and count is validated against the remaining bytes before any
// allocation; the first violation latches err and every subsequent read
// returns zero values, so decode paths stay linear.
type bdec struct {
	b   []byte
	off int
	err error
}

func (d *bdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: binary decode: "+format, args...)
	}
}

func (d *bdec) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("truncated")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *bdec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("truncated")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) zigzag() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// count reads an element count and validates it against the remaining
// bytes assuming each element occupies at least minBytes.
func (d *bdec) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if remaining := len(d.b) - d.off; v > uint64(remaining/minBytes) {
		d.fail("count %d exceeds remaining %d bytes", v, remaining)
		return 0
	}
	return int(v)
}

// pcount reads a map presence count ("0 = nil, n+1 = n entries"),
// validating n against the remaining bytes like count.
func (d *bdec) pcount(minBytes int) (n int, present bool) {
	v := d.uvarint()
	if d.err != nil || v == 0 {
		return 0, false
	}
	v--
	if remaining := len(d.b) - d.off; v > uint64(remaining/minBytes) {
		d.fail("count %d exceeds remaining %d bytes", v, remaining)
		return 0, false
	}
	return int(v), true
}

func (d *bdec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *bdec) bool() bool { return d.u8() != 0 }

func (d *bdec) set() ids.Set {
	n := d.count(1)
	if n == 0 {
		return ids.Set{}
	}
	members := make([]ids.ID, 0, n)
	for i := 0; i < n; i++ {
		members = append(members, ids.ID(d.zigzag()))
	}
	return ids.NewSet(members...)
}

func (d *bdec) label() label.Label {
	l := label.Label{Creator: ids.ID(d.zigzag()), Sting: int(d.zigzag())}
	if n := d.count(1); n > 0 {
		l.Antistings = make([]int, 0, n)
		for i := 0; i < n; i++ {
			l.Antistings = append(l.Antistings, int(d.zigzag()))
		}
	}
	return l
}

func (d *bdec) counter() counter.Counter {
	return counter.Counter{Lbl: d.label(), Seqn: d.uvarint(), WID: ids.ID(d.zigzag())}
}

func (d *bdec) ctrPair() counter.Pair {
	p := counter.Pair{MCT: d.counter()}
	if d.bool() {
		c := d.counter()
		p.Cancel = &c
	}
	return p
}

func (d *bdec) ctrMsg() counter.Message {
	m := counter.Message{HasGossip: d.bool(), Gossip: d.ctrPair()}
	if n := d.count(1); n > 0 {
		m.RPCs = make([]counter.RPC, 0, n)
		for i := 0; i < n; i++ {
			m.RPCs = append(m.RPCs, counter.RPC{
				Kind:    counter.RPCKind(d.zigzag()),
				Seq:     d.uvarint(),
				Counter: d.ctrPair(),
				HasCtr:  d.bool(),
				Abort:   d.bool(),
			})
		}
	}
	return m
}

func (d *bdec) config() recsa.Config {
	return recsa.Config{Kind: recsa.ConfigKind(d.zigzag()), Set: d.set()}
}

func (d *bdec) ntf() recsa.Notification {
	return recsa.Notification{Phase: int(d.zigzag()), HasSet: d.bool(), Set: d.set()}
}

func (d *bdec) saMsg() recsa.Message {
	return recsa.Message{
		FD:     d.set(),
		Part:   d.set(),
		Config: d.config(),
		Prp:    d.ntf(),
		All:    d.bool(),
		Echo:   recsa.Echo{Valid: d.bool(), Part: d.set(), Prp: d.ntf(), All: d.bool()},
	}
}

func (d *bdec) view() vs.View {
	return vs.View{ID: d.counter(), Set: d.set()}
}

func (d *bdec) idAnyMap(depth int) map[ids.ID]any {
	n, present := d.pcount(2)
	if !present {
		return nil
	}
	m := make(map[ids.ID]any, n)
	for i := 0; i < n; i++ {
		k := ids.ID(d.zigzag())
		m[k] = d.anyVal(depth)
	}
	if d.err != nil {
		return nil
	}
	return m
}

func (d *bdec) replica(depth int) vs.Replica {
	r := vs.Replica{View: d.view(), Status: vs.Status(d.zigzag()), Rnd: d.uvarint()}
	r.State = d.anyVal(depth)
	r.Inputs = d.idAnyMap(depth)
	r.Input = d.anyVal(depth)
	r.PropV = d.view()
	r.NoCrd = d.bool()
	r.Suspend = d.bool()
	r.Crd = ids.ID(d.zigzag())
	return r
}

func (d *bdec) regState() regmem.State {
	var s regmem.State
	if n, present := d.pcount(2); present {
		s.Base = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := d.str()
			s.Base[k] = d.str()
		}
	}
	n := d.count(2)
	if n > 0 {
		// Entries travel newest-first; rebuild the chain oldest-up so
		// Prev links point at the older overlay.
		type kv struct{ name, value string }
		entries := make([]kv, n)
		for i := 0; i < n; i++ {
			entries[i] = kv{d.str(), d.str()}
		}
		var prev *regmem.Delta
		for i := n - 1; i >= 0; i-- {
			prev = &regmem.Delta{Name: entries[i].name, Value: entries[i].value, Prev: prev}
		}
		s.Delta = prev
	}
	s.Depth = int(d.zigzag())
	return s
}

func (d *bdec) anyVal(depth int) any {
	if d.err != nil {
		return nil
	}
	if depth >= maxAnyDepth {
		d.fail("anyVal nesting exceeds %d", maxAnyDepth)
		return nil
	}
	depth++
	switch tag := d.u8(); tag {
	case tagNil:
		return nil
	case tagString:
		return d.str()
	case tagInt:
		return int(d.zigzag())
	case tagBool:
		return d.bool()
	case tagVSPayload:
		var p vs.Payload
		if d.bool() {
			r := d.replica(depth)
			p.Replica = &r
		}
		p.Counter = d.anyVal(depth)
		if d.err != nil {
			return nil
		}
		return p
	case tagCtrMsg:
		return d.ctrMsg()
	case tagWriteCmd:
		return regmem.WriteCmd{Name: d.str(), Value: d.str(), Writer: ids.ID(d.zigzag()), Seq: d.uvarint()}
	case tagMarkerCmd:
		return regmem.MarkerCmd{Reader: ids.ID(d.zigzag()), Seq: d.uvarint()}
	case tagRegState:
		return d.regState()
	case tagKVCmd:
		return smr.KVCmd{Op: smr.KVOp(d.zigzag()), Key: d.str(), Value: d.str()}
	case tagBankCmd:
		return smr.BankCmd{From: d.str(), To: d.str(), Amount: d.zigzag()}
	case tagSMRBatch:
		b := smr.Batch{}
		n := d.count(1)
		if n > 0 {
			b.Cmds = make([]any, 0, n)
			for i := 0; i < n; i++ {
				b.Cmds = append(b.Cmds, d.anyVal(depth))
			}
		}
		if d.err != nil {
			return nil
		}
		return b
	case tagMapSS:
		n, present := d.pcount(2)
		if d.err != nil || !present {
			if d.err != nil {
				return nil
			}
			return map[string]string(nil)
		}
		m := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := d.str()
			m[k] = d.str()
		}
		return m
	case tagMapSI64:
		n, present := d.pcount(2)
		if d.err != nil || !present {
			if d.err != nil {
				return nil
			}
			return map[string]int64(nil)
		}
		m := make(map[string]int64, n)
		for i := 0; i < n; i++ {
			k := d.str()
			m[k] = d.zigzag()
		}
		return m
	case tagMapIDAny:
		return d.idAnyMap(depth)
	case tagIDSet:
		return d.set()
	default:
		d.fail("unknown anyVal tag %d", tag)
		return nil
	}
}

func (d *bdec) envelope(depth int) Envelope {
	var e Envelope
	flags := d.u8()
	if flags&envHasSA != 0 {
		e.HasSA, e.SA = true, d.saMsg()
	}
	if flags&envHasMA != 0 {
		e.HasMA = true
		e.MA = recma.Message{NoMaj: d.bool(), NeedReconf: d.bool()}
	}
	e.JoinReq = flags&envJoinReq != 0
	if flags&envHasJoinResp != 0 {
		e.HasJoinResp = true
		e.JoinResp = join.Response{Pass: d.bool(), State: d.anyVal(depth)}
	}
	e.App = d.anyVal(depth)
	if flags&envHasShards != 0 {
		e.HasShards = true
		if n := d.count(2); n > 0 {
			e.Shards = make([]ShardApp, 0, n)
			for i := 0; i < n; i++ {
				e.Shards = append(e.Shards, ShardApp{Shard: int(d.zigzag()), App: d.anyVal(depth)})
			}
		}
	}
	return e
}

// decodeBinaryMsg decodes one binary fast-path frame payload.
func decodeBinaryMsg(b []byte) (Msg, error) {
	d := &bdec{b: b}
	m := Msg{
		From:   ids.ID(d.zigzag()),
		To:     ids.ID(d.zigzag()),
		HasPkt: true,
	}
	m.Pkt.Kind = int(d.u8())
	m.Pkt.Session = d.u64()
	m.Pkt.Seq = d.u8()
	switch shape := d.u8(); shape {
	case shapeEnv:
		m.Pkt.HasEnv = true
		m.Pkt.Env = d.envelope(0)
	case shapeRaw:
		m.Pkt.Raw = d.anyVal(0)
	case shapeBatch:
		m.Pkt.HasBatch = true
		n := d.count(1)
		if d.err == nil && n > MaxWireBatch {
			d.fail("batch of %d payloads exceeds MaxWireBatch %d", n, MaxWireBatch)
		}
		if n > 0 && d.err == nil {
			m.Pkt.Batch = make([]BatchItem, 0, n)
			for i := 0; i < n; i++ {
				switch itemTag := d.u8(); itemTag {
				case 1:
					m.Pkt.Batch = append(m.Pkt.Batch, BatchItem{HasEnv: true, Env: d.envelope(0)})
				case 2:
					m.Pkt.Batch = append(m.Pkt.Batch, BatchItem{Raw: d.anyVal(0)})
				default:
					d.fail("unknown batch item tag %d", itemTag)
				}
				if d.err != nil {
					break
				}
			}
		}
	default:
		d.fail("unknown packet shape %d", shape)
	}
	if d.err != nil {
		return Msg{}, d.err
	}
	if d.off != len(d.b) {
		return Msg{}, fmt.Errorf("wire: binary decode: %d trailing bytes", len(d.b)-d.off)
	}
	return m, nil
}

// CodecSizes reports the steady-state encoded sizes of m under the two
// codecs a version-5 stream can carry: the binary fast path and gob
// framing (the codec lever of experiment E13). The gob size is measured
// on the second encoding of the message through one encoder, so the
// one-time type descriptors a long-lived stream amortizes away are
// excluded. binOK is false when m falls outside the binary codec's
// closed hot set (the writer would fall back to gob), leaving binSize 0.
func CodecSizes(m Msg) (binSize, gobSize int, binOK bool) {
	b, ok := appendBinaryMsg(nil, m)
	if ok {
		binSize = len(b)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(m); err != nil {
		return binSize, 0, ok
	}
	first := buf.Len()
	if err := enc.Encode(m); err != nil {
		return binSize, 0, ok
	}
	return binSize, buf.Len() - first, ok
}
