package inproc_test

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
	"repro/internal/transport/inproc"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Backend{
		Name: "inproc",
		New: func(t *testing.T, seed int64, opts transport.Options, _ ids.Set) conformance.Harness {
			n := inproc.New(seed, opts)
			return conformance.Harness{Net: n, Settle: time.Sleep}
		},
	})
}

// TestDuplicationCounter checks the new DupProb knob feeds the stats the
// fault-parity satellite promised.
func TestDuplicationCounter(t *testing.T) {
	opts := transport.Options{Capacity: 64, DupProb: 1, TickEvery: time.Millisecond}
	n := inproc.New(1, opts)
	defer n.Close()
	if err := n.AddNode(1, nopHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(2, nopHandler{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		n.Send(1, 2, i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n.Duplicated() == 10 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("duplicated %d, want 10", n.Duplicated())
}

type nopHandler struct{}

func (nopHandler) Receive(ids.ID, any) {}
func (nopHandler) Tick()               {}
