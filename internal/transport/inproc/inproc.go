// Package inproc is the in-process live backend of the transport
// subsystem: one goroutine per node, bounded channels as the lossy links,
// wall-clock tickers as the unknown-rate timers of the asynchronous
// model. It descends from the original internal/runtime engine, now
// implementing transport.Transport with full fault-model parity
// (loss, duplication, delay reordering, tick jitter — transport.Options).
//
// Concurrency discipline: each node's handler is invoked only from that
// node's own goroutine (ticks, deliveries and Inspect closures are all
// funneled through one channel), so the step machines need no locks.
// Cross-node sends are non-blocking — a full inbox drops the packet,
// which is exactly the bounded-capacity link of the paper's model.
package inproc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

type inboxItem struct {
	from    ids.ID
	payload any
	ctl     func() // control closure (Inspect); nil for packets
}

type node struct {
	id      ids.ID
	handler transport.Handler
	inbox   chan inboxItem
	done    chan struct{}
}

// Net is the goroutine-per-node transport.
type Net struct {
	opts transport.Options

	mu     sync.RWMutex
	nodes  map[ids.ID]*node
	closed bool

	seed    int64
	rngSeq  atomic.Int64
	wg      sync.WaitGroup
	dropped atomic.Uint64
	dups    atomic.Uint64
}

var _ transport.Transport = (*Net)(nil)

// New creates an in-process network. seed derives the per-node random
// sources so runs are loosely reproducible (scheduling is still up to the
// Go runtime).
func New(seed int64, opts transport.Options) *Net {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.TickEvery <= 0 {
		opts.TickEvery = 2 * time.Millisecond
	}
	if opts.MaxDelay < opts.MinDelay {
		opts.MaxDelay = opts.MinDelay
	}
	return &Net{opts: opts, seed: seed, nodes: make(map[ids.ID]*node)}
}

// Rand implements transport.Transport: a fresh, independently seeded
// source per call, so no source is shared across goroutines.
func (l *Net) Rand() *rand.Rand {
	return rand.New(rand.NewSource(l.seed + l.rngSeq.Add(1)*7919))
}

// Dropped returns the number of packets dropped by full inboxes or loss.
func (l *Net) Dropped() uint64 { return l.dropped.Load() }

// Duplicated returns the number of packets the adversary duplicated.
func (l *Net) Duplicated() uint64 { return l.dups.Load() }

// AddNode implements transport.Transport: register the handler and start
// its goroutine.
func (l *Net) AddNode(id ids.ID, h transport.Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("inproc: network closed")
	}
	if _, ok := l.nodes[id]; ok {
		return fmt.Errorf("inproc: node %v already registered", id)
	}
	n := &node{
		id:      id,
		handler: h,
		inbox:   make(chan inboxItem, l.opts.Capacity),
		done:    make(chan struct{}),
	}
	l.nodes[id] = n
	l.wg.Add(1)
	go l.run(n)
	return nil
}

func (l *Net) run(n *node) {
	defer l.wg.Done()
	rng := l.Rand()
	period := func() time.Duration {
		d := l.opts.TickEvery
		if j := int64(l.opts.TickJitter); j > 0 {
			d += time.Duration(rng.Int63n(j + 1))
		}
		return d
	}
	timer := time.NewTimer(period())
	defer timer.Stop()
	for {
		select {
		case <-n.done:
			return
		case item := <-n.inbox:
			if item.ctl != nil {
				item.ctl()
			} else {
				n.handler.Receive(item.from, item.payload)
			}
		case <-timer.C:
			n.handler.Tick()
			timer.Reset(period())
		}
	}
}

// Send implements transport.Transport. It never blocks: loss, full
// inboxes and unknown destinations silently drop, as the bounded-link
// model allows; duplication delivers the packet a second time on an
// independent delay (reordering the copies, like netsim).
func (l *Net) Send(from, to ids.ID, payload any) {
	l.mu.RLock()
	dst, ok := l.nodes[to]
	closed := l.closed
	l.mu.RUnlock()
	if !ok || closed {
		l.dropped.Add(1)
		return
	}
	// Loss, duplication and delay come from a cheap shared source;
	// crypto quality is irrelevant here.
	r := rand.Int63() //nolint:gosec
	if l.opts.LossProb > 0 && float64(r%1000)/1000 < l.opts.LossProb {
		l.dropped.Add(1)
		return
	}
	l.deliverDelayed(dst, from, payload, r)
	if l.opts.DupProb > 0 {
		d := rand.Int63() //nolint:gosec
		if float64(d%1000)/1000 < l.opts.DupProb {
			l.dups.Add(1)
			l.deliverDelayed(dst, from, payload, d)
		}
	}
}

func (l *Net) deliverDelayed(dst *node, from ids.ID, payload any, r int64) {
	deliver := func() {
		select {
		case dst.inbox <- inboxItem{from: from, payload: payload}:
		case <-dst.done:
			l.dropped.Add(1) // crashed destination
		default:
			l.dropped.Add(1) // bounded link: overflow is omission
		}
	}
	span := l.opts.MaxDelay - l.opts.MinDelay
	delay := l.opts.MinDelay
	if span > 0 {
		delay += time.Duration(r % int64(span))
	}
	if delay <= 0 {
		deliver()
		return
	}
	time.AfterFunc(delay, deliver)
}

// Inspect implements transport.Transport: run fn inside the node's
// goroutine and wait for it.
func (l *Net) Inspect(id ids.ID, fn func()) bool {
	l.mu.RLock()
	n, ok := l.nodes[id]
	l.mu.RUnlock()
	if !ok {
		return false
	}
	done := make(chan struct{})
	select {
	case n.inbox <- inboxItem{ctl: func() { fn(); close(done) }}:
	case <-n.done:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.done:
		return false
	}
}

// Alive implements transport.Transport.
func (l *Net) Alive() ids.Set {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := ids.Set{}
	for id := range l.nodes {
		out = out.Add(id)
	}
	return out
}

// Crash implements transport.Transport: the node's goroutine exits and
// its inbox drains to nowhere.
func (l *Net) Crash(id ids.ID) {
	l.mu.Lock()
	n, ok := l.nodes[id]
	if ok {
		delete(l.nodes, id)
	}
	l.mu.Unlock()
	if ok {
		close(n.done)
	}
}

// Close implements transport.Transport: stop every node and wait for
// their goroutines.
func (l *Net) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	nodes := make([]*node, 0, len(l.nodes))
	for _, n := range l.nodes {
		nodes = append(nodes, n)
	}
	l.nodes = make(map[ids.ID]*node)
	l.mu.Unlock()
	for _, n := range nodes {
		close(n.done)
	}
	l.wg.Wait()
	return nil
}
