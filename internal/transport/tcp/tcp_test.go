package tcp_test

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
	"repro/internal/transport/tcp"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Backend{
		Name: "tcp",
		New: func(t *testing.T, seed int64, opts transport.Options, universe ids.Set) conformance.Harness {
			addrs, err := tcp.FreeAddrs(universe.Members()...)
			if err != nil {
				t.Fatal(err)
			}
			n := tcp.New(tcp.Config{Addrs: addrs, Seed: seed, Opts: opts})
			return conformance.Harness{Net: n, Settle: time.Sleep}
		},
		// Two processes over one address book, the first negotiated down
		// to wire version 2 — the rolling-upgrade shape the writer
		// downgrade exists for.
		MixedPair: func(t *testing.T, seed int64, opts transport.Options, universe ids.Set) (conformance.Harness, conformance.Harness) {
			addrs, err := tcp.FreeAddrs(universe.Members()...)
			if err != nil {
				t.Fatal(err)
			}
			old := tcp.New(tcp.Config{Addrs: addrs, Seed: seed, Opts: opts, WireVersion: 2})
			cur := tcp.New(tcp.Config{Addrs: addrs, Seed: seed + 1, Opts: opts})
			return conformance.Harness{Net: old, Settle: time.Sleep},
				conformance.Harness{Net: cur, Settle: time.Sleep}
		},
		// Arbitrary version pinning (the v4↔v5 arm exercises the binary
		// fast path against plain gob framing).
		VersionPair: func(t *testing.T, seed int64, opts transport.Options, universe ids.Set, va, vb byte) (conformance.Harness, conformance.Harness) {
			addrs, err := tcp.FreeAddrs(universe.Members()...)
			if err != nil {
				t.Fatal(err)
			}
			a := tcp.New(tcp.Config{Addrs: addrs, Seed: seed, Opts: opts, WireVersion: va})
			b := tcp.New(tcp.Config{Addrs: addrs, Seed: seed + 1, Opts: opts, WireVersion: vb})
			return conformance.Harness{Net: a, Settle: time.Sleep},
				conformance.Harness{Net: b, Settle: time.Sleep}
		},
	})
}

// TestCrossProcessShape runs two *separate* transports (the shape two
// noded processes have) against one address book: frames really cross
// the loopback sockets, survive a receiver restart via redial, and
// unreachable destinations degrade to omission.
func TestCrossProcessShape(t *testing.T) {
	addrs, err := tcp.FreeAddrs(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := transport.Options{Capacity: 64, TickEvery: time.Millisecond}

	a := tcp.New(tcp.Config{Addrs: addrs, Seed: 1, Opts: opts})
	defer a.Close()
	if err := a.AddNode(1, nopHandler{}); err != nil {
		t.Fatal(err)
	}

	// Destination not up yet: sends degrade to drops, not blocks.
	for i := 0; i < 5; i++ {
		a.Send(1, 2, i)
	}

	b := tcp.New(tcp.Config{Addrs: addrs, Seed: 2, Opts: opts})
	defer b.Close()
	rx := &countHandler{}
	if err := b.AddNode(2, rx); err != nil {
		t.Fatal(err)
	}

	deliver := func(want int, desc string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			got := 0
			if !b.Inspect(2, func() { got = rx.n }) {
				t.Fatalf("%s: inspect failed", desc)
			}
			if got >= want {
				return
			}
			a.Send(1, 2, "ping")
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("%s: never delivered", desc)
	}
	deliver(1, "initial delivery")

	// Tear the receiver down and bring a fresh transport up on the same
	// address: the sender's link must redial and deliver again.
	b.Close()
	time.Sleep(10 * time.Millisecond)
	b2 := tcp.New(tcp.Config{Addrs: addrs, Seed: 3, Opts: opts})
	defer b2.Close()
	rx2 := &countHandler{}
	if err := b2.AddNode(2, rx2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		got := 0
		if !b2.Inspect(2, func() { got = rx2.n }) {
			t.Fatal("inspect failed after restart")
		}
		if got >= 1 {
			if a.Stats().Redials == 0 {
				t.Log("note: delivery resumed without a recorded redial")
			}
			return
		}
		a.Send(1, 2, "ping-after-restart")
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("delivery never resumed after receiver restart")
}

type nopHandler struct{}

func (nopHandler) Receive(ids.ID, any) {}
func (nopHandler) Tick()               {}

type countHandler struct{ n int }

func (h *countHandler) Receive(ids.ID, any) { h.n++ }
func (h *countHandler) Tick()               {}
