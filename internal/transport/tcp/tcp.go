// Package tcp is the multi-process backend of the transport subsystem:
// nodes run in separate OS processes and exchange the stack's messages
// over TCP using the versioned length-prefixed codec of transport/wire.
// cmd/noded builds on it.
//
// Topology: every node listens on its address from the cluster address
// book (Config.Addrs); for each destination the transport maintains one
// outbound connection, dialed lazily and redialed with backoff after a
// failure. Sends never block: while a destination is unreachable (or
// its send queue is full) packets are dropped, which is exactly the
// omission behavior of the paper's bounded-capacity lossy links — the
// data-link layer's retransmission makes the link fair again once the
// destination returns.
//
// Fault injection: the same transport.Options adversary as the other
// backends (probabilistic loss and duplication, optional artificial
// delay) is applied at send time, so a live cluster can be driven under
// the exact fault model of the simulated experiments.
//
// Concurrency discipline matches transport/inproc: one goroutine per
// local node owns its handler; deliveries, ticks and Inspect closures
// are funneled through the node's inbox channel.
//
// Hot-path batching: each outbound link's write loop coalesces every
// frame already waiting in its queue into a single connection write
// (wire.Writer.Append + one Flush, bounded by maxCoalesce), and
// Config.WireVersion lets the process write an older wire-format
// version for peers that have not been upgraded yet (DESIGN.md §11).
package tcp

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Config describes a node's place in the cluster.
type Config struct {
	// Addrs is the cluster address book: node id → "host:port". A node
	// may listen on a ":0" address; the resolved port is visible via
	// Addr. Destinations missing from the book are unreachable (sends
	// to them are dropped).
	Addrs map[ids.ID]string
	// Seed derives the per-node random sources and fault draws.
	Seed int64
	// Opts is the unified fault/timing configuration. Artificial
	// MinDelay/MaxDelay are only applied when MaxDelay > 0; the real
	// network already supplies delay and reordering.
	Opts transport.Options
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// RedialBackoff is the initial pause after a failed dial, doubling
	// up to 16x (default 50ms).
	RedialBackoff time.Duration
	// WriteTimeout bounds each connection write syscall (default 2s):
	// a stalled peer is cut within it, while a slow-but-progressing
	// transfer of a large (multi-frame) message or coalesced group
	// gets a fresh budget per write.
	WriteTimeout time.Duration
	// WireVersion is the wire-format version this process writes
	// (0 = wire.Version). Setting it to an older accepted version makes
	// every outbound stream decodable by peers that only speak that
	// version — the rolling-upgrade knob; the writer downgrades message
	// schemas accordingly (see wire.NewWriterVersion). Reading always
	// accepts the full [wire.MinVersion, wire.Version] range.
	WireVersion byte
	// Logf, when non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.Opts.Capacity <= 0 {
		c.Opts.Capacity = 256
	}
	if c.Opts.TickEvery <= 0 {
		c.Opts.TickEvery = 2 * time.Millisecond
	}
	if c.Opts.MaxDelay < c.Opts.MinDelay {
		c.Opts.MaxDelay = c.Opts.MinDelay
	}
	if c.WireVersion == 0 {
		c.WireVersion = wire.Version
	}
}

// Stats aggregates transport-level counters.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64 // loss, full queues, unreachable destinations
	Duplicated uint64
	Redials    uint64
	DecodeErrs uint64
	// ConnWrites counts connection flushes, FramesWritten the wire
	// frames they carried (a message larger than wire.MaxFrame spans
	// several); FramesWritten/ConnWrites is the achieved write
	// coalescing factor (frames ready while a flush was in progress are
	// folded into the next one).
	ConnWrites    uint64
	FramesWritten uint64
}

type inboxItem struct {
	from    ids.ID
	payload any
	ctl     func()
}

type node struct {
	id       ids.ID
	handler  transport.Handler
	inbox    chan inboxItem
	done     chan struct{}
	listener net.Listener
}

// Net is the TCP transport.
type Net struct {
	cfg Config

	mu     sync.RWMutex
	local  map[ids.ID]*node
	links  map[ids.ID]*link
	conns  map[net.Conn]struct{} // accepted inbound connections
	closed bool

	rngMu  sync.Mutex
	rng    *rand.Rand // fault-injection draws
	rngSeq atomic.Int64

	wg sync.WaitGroup

	sent, delivered, dropped, dups, redials, decodeErrs atomic.Uint64
	connWrites, framesWritten                           atomic.Uint64
}

var _ transport.Transport = (*Net)(nil)

// New builds a TCP transport for this process. It opens no sockets until
// AddNode (listeners) and Send (outbound connections).
func New(cfg Config) *Net {
	cfg.fill()
	return &Net{
		cfg:   cfg,
		local: make(map[ids.ID]*node),
		links: make(map[ids.ID]*link),
		conns: make(map[net.Conn]struct{}),
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x7c3f)), //nolint:gosec
	}
}

// Stats returns a snapshot of the transport counters.
func (t *Net) Stats() Stats {
	return Stats{
		Sent:          t.sent.Load(),
		Delivered:     t.delivered.Load(),
		Dropped:       t.dropped.Load(),
		Duplicated:    t.dups.Load(),
		Redials:       t.redials.Load(),
		DecodeErrs:    t.decodeErrs.Load(),
		ConnWrites:    t.connWrites.Load(),
		FramesWritten: t.framesWritten.Load(),
	}
}

// Addr returns the resolved listen address of a local node ("" when the
// node is not local or not yet listening).
func (t *Net) Addr(id ids.ID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n, ok := t.local[id]; ok {
		return n.listener.Addr().String()
	}
	return ""
}

// Rand implements transport.Transport: a fresh, independently seeded
// source per call.
func (t *Net) Rand() *rand.Rand {
	return rand.New(rand.NewSource(t.cfg.Seed + t.rngSeq.Add(1)*7919)) //nolint:gosec
}

// AddNode implements transport.Transport: listen on the node's address
// book entry and start its handler goroutine.
func (t *Net) AddNode(id ids.ID, h transport.Handler) error {
	addr, ok := t.cfg.Addrs[id]
	if !ok {
		return fmt.Errorf("tcp: node %v has no address book entry", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("tcp: transport closed")
	}
	if _, dup := t.local[id]; dup {
		return fmt.Errorf("tcp: node %v already registered", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("tcp: listen %v on %s: %w", id, addr, err)
	}
	n := &node{
		id:       id,
		handler:  h,
		inbox:    make(chan inboxItem, t.cfg.Opts.Capacity),
		done:     make(chan struct{}),
		listener: ln,
	}
	t.local[id] = n
	t.wg.Add(2)
	go t.runNode(n)
	go t.acceptLoop(n)
	return nil
}

// runNode owns the node's handler: ticks, deliveries, Inspect closures.
func (t *Net) runNode(n *node) {
	defer t.wg.Done()
	rng := t.Rand()
	period := func() time.Duration {
		d := t.cfg.Opts.TickEvery
		if j := int64(t.cfg.Opts.TickJitter); j > 0 {
			d += time.Duration(rng.Int63n(j + 1))
		}
		return d
	}
	timer := time.NewTimer(period())
	defer timer.Stop()
	for {
		select {
		case <-n.done:
			return
		case item := <-n.inbox:
			if item.ctl != nil {
				item.ctl()
			} else {
				t.delivered.Add(1)
				n.handler.Receive(item.from, item.payload)
			}
		case <-timer.C:
			n.handler.Tick()
			timer.Reset(period())
		}
	}
}

// acceptLoop accepts inbound connections on the node's listener.
func (t *Net) acceptLoop(n *node) {
	defer t.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed (crash or transport close)
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes one inbound connection and routes messages to local
// nodes. A decode error tears the connection down; the remote side
// redials.
func (t *Net) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	r, err := wire.NewReader(conn)
	if err != nil {
		t.decodeErrs.Add(1)
		t.logf("tcp: %s: %v", conn.RemoteAddr(), err)
		return
	}
	for {
		msg, err := r.ReadMsg()
		if err != nil {
			return
		}
		t.mu.RLock()
		dst, ok := t.local[msg.To]
		t.mu.RUnlock()
		if !ok {
			t.dropped.Add(1)
			continue
		}
		select {
		case dst.inbox <- inboxItem{from: msg.From, payload: msg.Payload()}:
		case <-dst.done:
			t.dropped.Add(1)
		default:
			t.dropped.Add(1) // bounded inbox: overflow is omission
		}
	}
}

// Send implements transport.Transport. It never blocks; loss,
// duplication and artificial delay are injected here so every backend
// presents the same adversary.
func (t *Net) Send(from, to ids.ID, payload any) {
	t.sent.Add(1)
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		t.dropped.Add(1)
		return
	}
	t.rngMu.Lock()
	lost := t.cfg.Opts.LossProb > 0 && t.rng.Float64() < t.cfg.Opts.LossProb
	dup := t.cfg.Opts.DupProb > 0 && t.rng.Float64() < t.cfg.Opts.DupProb
	var delay time.Duration
	if span := t.cfg.Opts.MaxDelay - t.cfg.Opts.MinDelay; t.cfg.Opts.MaxDelay > 0 && span > 0 {
		delay = t.cfg.Opts.MinDelay + time.Duration(t.rng.Int63n(int64(span)))
	} else if t.cfg.Opts.MaxDelay > 0 {
		delay = t.cfg.Opts.MinDelay
	}
	t.rngMu.Unlock()
	if lost {
		t.dropped.Add(1)
		return
	}
	msg := wire.NewMsg(from, to, payload)
	t.enqueue(msg, delay)
	if dup {
		t.dups.Add(1)
		t.enqueue(msg, delay)
	}
}

func (t *Net) enqueue(msg wire.Msg, delay time.Duration) {
	if delay > 0 {
		time.AfterFunc(delay, func() { t.enqueue(msg, 0) })
		return
	}
	l := t.link(msg.To)
	if l == nil {
		t.dropped.Add(1)
		return
	}
	select {
	case l.out <- msg:
	default:
		t.dropped.Add(1) // bounded send queue: overflow is omission
	}
}

// link returns (creating lazily) the outbound link toward a destination,
// or nil when the destination has no address or the transport is closed.
func (t *Net) link(to ids.ID) *link {
	t.mu.RLock()
	l, ok := t.links[to]
	closed := t.closed
	t.mu.RUnlock()
	if ok {
		return l
	}
	if closed {
		return nil
	}
	addr, have := t.cfg.Addrs[to]
	if !have {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if l, ok := t.links[to]; ok {
		return l
	}
	l = newLink(t, to, addr)
	t.links[to] = l
	t.wg.Add(1)
	go l.writeLoop()
	return l
}

// Inspect implements transport.Transport.
func (t *Net) Inspect(id ids.ID, fn func()) bool {
	t.mu.RLock()
	n, ok := t.local[id]
	t.mu.RUnlock()
	if !ok {
		return false
	}
	done := make(chan struct{})
	select {
	case n.inbox <- inboxItem{ctl: func() { fn(); close(done) }}:
	case <-n.done:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.done:
		return false
	}
}

// Alive implements transport.Transport (local nodes only; remote
// liveness is the failure detector's business).
func (t *Net) Alive() ids.Set {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := ids.Set{}
	for id := range t.local {
		out = out.Add(id)
	}
	return out
}

// Crash implements transport.Transport: the node's listener closes, its
// goroutine exits, and its inbox drains to nowhere.
func (t *Net) Crash(id ids.ID) {
	t.mu.Lock()
	n, ok := t.local[id]
	if ok {
		delete(t.local, id)
	}
	t.mu.Unlock()
	if ok {
		close(n.done)
		n.listener.Close()
	}
}

// Close implements transport.Transport.
func (t *Net) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	nodes := make([]*node, 0, len(t.local))
	for _, n := range t.local {
		nodes = append(nodes, n)
	}
	links := make([]*link, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.local = make(map[ids.ID]*node)
	t.links = make(map[ids.ID]*link)
	t.mu.Unlock()
	for _, n := range nodes {
		close(n.done)
		n.listener.Close()
	}
	for _, l := range links {
		close(l.done)
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

func (t *Net) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// link is one outbound connection toward a destination, redialed with
// backoff after failures. Frames queued while the destination is down
// stay in the bounded out channel; overflow drops (lossy link).
type link struct {
	t    *Net
	to   ids.ID
	addr string
	out  chan wire.Msg
	done chan struct{}
}

func newLink(t *Net, to ids.ID, addr string) *link {
	return &link{
		t:    t,
		to:   to,
		addr: addr,
		out:  make(chan wire.Msg, t.cfg.Opts.Capacity),
		done: make(chan struct{}),
	}
}

// maxCoalesce bounds the messages one connection write may carry, so a
// deep send queue cannot delay the flush indefinitely.
const maxCoalesce = 64

func (l *link) writeLoop() {
	defer l.t.wg.Done()
	var (
		conn    net.Conn
		w       *wire.Writer
		backoff = l.t.cfg.RedialBackoff
		nextTry time.Time
	)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var msg wire.Msg
		select {
		case <-l.done:
			return
		case msg = <-l.out:
		}
		if conn == nil {
			if time.Now().Before(nextTry) {
				l.t.dropped.Add(1) // destination down: omission
				continue
			}
			c, err := net.DialTimeout("tcp", l.addr, l.t.cfg.DialTimeout)
			if err != nil {
				l.t.redials.Add(1)
				l.t.dropped.Add(1)
				nextTry = time.Now().Add(backoff)
				if backoff < 16*l.t.cfg.RedialBackoff {
					backoff *= 2
				}
				l.t.logf("tcp: dial %v (%s): %v", l.to, l.addr, err)
				continue
			}
			// The deadline wrapper re-arms WriteTimeout before every
			// write syscall, so the budget bounds peer stalls — not the
			// total size of a coalesced group or split message.
			ww, err := wire.NewWriterVersion(&deadlineWriter{conn: c, timeout: l.t.cfg.WriteTimeout}, l.t.cfg.WireVersion)
			if err != nil {
				c.Close()
				l.t.dropped.Add(1)
				l.t.logf("tcp: writer for %v: %v", l.to, err)
				continue
			}
			conn, w = c, ww
			backoff = l.t.cfg.RedialBackoff
			nextTry = time.Time{}
		}
		// Coalesce every already-ready frame into this connection write:
		// Append buffers each message, one Flush hands the group to the
		// kernel — one syscall (and one wakeup on the receiver) instead
		// of one per frame when the queue runs hot.
		framesBefore := w.Frames()
		err := w.Append(msg)
		msgs := uint64(1)
	drain:
		for err == nil && msgs < maxCoalesce {
			select {
			case more := <-l.out:
				err = w.Append(more)
				msgs++
			default:
				break drain
			}
		}
		if err == nil {
			err = w.Flush()
		}
		if err != nil {
			l.t.logf("tcp: write to %v: %v", l.to, err)
			conn.Close()
			conn, w = nil, nil
			l.t.dropped.Add(msgs)
			nextTry = time.Now().Add(backoff)
			continue
		}
		l.t.connWrites.Add(1)
		l.t.framesWritten.Add(w.Frames() - framesBefore)
	}
}

// deadlineWriter arms the connection's write deadline before every
// write, giving each syscall — not each message or coalesced group —
// the configured budget.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (d *deadlineWriter) Write(p []byte) (int, error) {
	d.conn.SetWriteDeadline(time.Now().Add(d.timeout))
	return d.conn.Write(p)
}

// FreeAddrs reserves one loopback address per node by briefly listening
// on port 0 — a convenience for tests that build multi-transport
// clusters in one process. The ports are released before returning, so
// a racing process could in principle claim one; tests on loopback
// accept that risk.
func FreeAddrs(nodes ...ids.ID) (map[ids.ID]string, error) {
	out := make(map[ids.ID]string, len(nodes))
	for _, id := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		out[id] = ln.Addr().String()
		ln.Close()
	}
	return out, nil
}
