// Package transport defines the pluggable communication substrate the
// reconfiguration stack runs on. A Transport carries the netsim.Handler
// protocol (Receive/Tick) between nodes; three interchangeable backends
// implement it:
//
//   - transport/simnet — adapter over the deterministic discrete-event
//     simulator (internal/netsim). Tests, benchmarks, and the experiment
//     suite use it; whole runs are a pure function of the seed.
//   - transport/inproc — one goroutine per node with bounded channels as
//     lossy links and wall-clock timers. The examples and in-process
//     deployments use it.
//   - transport/tcp — real OS processes over TCP with length-prefixed,
//     versioned frames (transport/wire). cmd/noded runs on it.
//
// All three present the same fault model (transport.Options): bounded
// link capacity, probabilistic loss and duplication, delivery-delay
// reordering, and jittered node timers — so an adversary configured for
// a simulated run injects the same faults into a live one.
//
// The Transport interface is a superset of core.Transport: any Transport
// can be passed directly to core.NewNode.
package transport

import (
	"math/rand"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// Handler is the per-node protocol entry point driven by every backend;
// it is an alias of netsim.Handler, the protocol's original home, so
// existing step machines work on all backends unchanged.
type Handler = netsim.Handler

// Transport is a medium nodes attach to. Implementations must make Send
// safe for concurrent use and must invoke a given node's handler from a
// single execution context at a time (the step machines are lock-free).
type Transport interface {
	// AddNode registers a handler under id and starts its periodic
	// (jittered) timer. It fails on duplicate registration or after
	// Close.
	AddNode(id ids.ID, h Handler) error
	// Send transmits payload between nodes, subject to the backend's
	// loss/reorder/duplication behavior. It never blocks; undeliverable
	// packets are dropped, as the bounded-link model allows.
	Send(from, to ids.ID, payload any)
	// Rand returns a random source safe for use from the calling
	// execution context.
	Rand() *rand.Rand
	// Crash stop-fails a node: it takes no further steps and receives
	// nothing. Crashed nodes never rejoin (the paper models rejoining
	// as a transient fault on a fresh identifier).
	Crash(id ids.ID)
	// Alive returns the identifiers of registered, non-crashed nodes
	// this transport knows locally (for tcp, the nodes in this
	// process).
	Alive() ids.Set
	// Inspect runs fn inside the node's execution context and waits for
	// it — the only safe way to read node state from outside. It
	// reports false for unknown or crashed nodes.
	Inspect(id ids.ID, fn func()) bool
	// Close stops every node and releases backend resources (sockets,
	// goroutines). It is idempotent.
	Close() error
}

// Conn is one node's handle on a transport: the Transport/Conn pair is
// the subsystem's client-facing surface. A Conn pins the sender identity
// so upper layers cannot forge a peer's origin.
type Conn struct {
	t    Transport
	self ids.ID
}

// Attach registers h under id and returns the node's connection.
func Attach(t Transport, id ids.ID, h Handler) (*Conn, error) {
	if err := t.AddNode(id, h); err != nil {
		return nil, err
	}
	return &Conn{t: t, self: id}, nil
}

// Self returns the attached node's identifier.
func (c *Conn) Self() ids.ID { return c.self }

// Transport returns the underlying medium.
func (c *Conn) Transport() Transport { return c.t }

// Send transmits payload from this node.
func (c *Conn) Send(to ids.ID, payload any) { c.t.Send(c.self, to, payload) }

// Inspect runs fn inside this node's execution context.
func (c *Conn) Inspect(fn func()) bool { return c.t.Inspect(c.self, fn) }

// Close crashes the attached node (the Conn-level close is a stop-fail;
// closing the whole medium is the Transport's Close).
func (c *Conn) Close() error {
	c.t.Crash(c.self)
	return nil
}
