package transport

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// SimTick is the wall-clock duration one virtual tick of the simulator
// stands for when converting between the unified Options (durations) and
// netsim.Options (virtual ticks).
const SimTick = time.Millisecond

// Options is the backend-independent fault and timing configuration — one
// adversary description that simulated and live runs share, so the fault
// model injected into a netsim experiment is the same one a live cluster
// faces. Durations are wall-clock; the simnet backend maps them to
// virtual ticks at SimTick per tick.
type Options struct {
	// Capacity bounds in-flight packets per directed link (simnet) or
	// the per-node inbox and per-peer send queue (inproc, tcp). Sends
	// beyond the bound are dropped — the paper's bounded-capacity link.
	Capacity int
	// MinDelay/MaxDelay bound artificial per-packet delivery latency;
	// independent draws produce reordering. The tcp backend adds no
	// artificial delay on top of the real network unless MaxDelay > 0.
	MinDelay, MaxDelay time.Duration
	// LossProb is the probability a packet is silently dropped at send.
	LossProb float64
	// DupProb is the probability a delivered packet is delivered twice.
	DupProb float64
	// TickEvery is the node timer period; each firing is delayed by an
	// independent jitter drawn from [0, TickJitter] (timer rates are
	// unknown in the asynchronous model).
	TickEvery, TickJitter time.Duration
}

// DefaultOptions mirrors netsim.DefaultOptions at SimTick scale: the
// moderately adversarial configuration (10% loss, 5% duplication, link
// capacity 8, overlapping delays) used throughout the tests.
func DefaultOptions() Options { return FromNetsim(netsim.DefaultOptions()) }

// LiveDefaults is a gentler configuration for long-lived live clusters:
// roomier queues and lower loss, with the duplication and jitter knobs
// still on so the live adversary stays a superset of a real network.
func LiveDefaults() Options {
	return Options{
		Capacity:   256,
		MinDelay:   200 * time.Microsecond,
		MaxDelay:   2 * time.Millisecond,
		LossProb:   0.05,
		DupProb:    0.02,
		TickEvery:  2 * time.Millisecond,
		TickJitter: time.Millisecond,
	}
}

// Netsim converts the unified configuration to the simulator's
// virtual-tick units (rounding delays up so sub-tick durations stay
// nonzero where they were nonzero).
func (o Options) Netsim() netsim.Options {
	return netsim.Options{
		Capacity:   o.Capacity,
		MinDelay:   toTicks(o.MinDelay),
		MaxDelay:   toTicks(o.MaxDelay),
		LossProb:   o.LossProb,
		DupProb:    o.DupProb,
		TickEvery:  toTicks(o.TickEvery),
		TickJitter: toTicks(o.TickJitter),
	}
}

// FromNetsim lifts a simulator configuration to the unified form.
func FromNetsim(o netsim.Options) Options {
	return Options{
		Capacity:   o.Capacity,
		MinDelay:   time.Duration(o.MinDelay) * SimTick,
		MaxDelay:   time.Duration(o.MaxDelay) * SimTick,
		LossProb:   o.LossProb,
		DupProb:    o.DupProb,
		TickEvery:  time.Duration(o.TickEvery) * SimTick,
		TickJitter: time.Duration(o.TickJitter) * SimTick,
	}
}

func toTicks(d time.Duration) sim.Time {
	if d <= 0 {
		return 0
	}
	return sim.Time((d + SimTick - 1) / SimTick)
}
