// Package simnet adapts the deterministic discrete-event simulator
// (internal/netsim) to the transport.Transport interface. It is the
// backend tests and the experiment suite run on: a whole cluster is a
// pure function of its seed, and virtual time advances only when the
// owner pumps the scheduler (Run/RunFor/Scheduler).
//
// The adapter adds nothing to netsim's semantics — experiments that
// construct netsim.Network directly and clusters running through this
// adapter execute identical event sequences for the same seed.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Net drives a netsim.Network through the transport interface.
type Net struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	closed bool
}

var _ transport.Transport = (*Net)(nil)

// New builds a simulated transport with its own scheduler. The unified
// options are mapped to virtual ticks at transport.SimTick per tick.
func New(seed int64, opts transport.Options) *Net {
	sched := sim.NewScheduler(seed)
	return &Net{sched: sched, net: netsim.New(sched, opts.Netsim())}
}

// Wrap adapts an existing scheduler/network pair (e.g. a core.Cluster's)
// so transport-generic code can drive it.
func Wrap(sched *sim.Scheduler, net *netsim.Network) *Net {
	return &Net{sched: sched, net: net}
}

// Scheduler exposes the underlying scheduler for pumping virtual time.
func (s *Net) Scheduler() *sim.Scheduler { return s.sched }

// Network exposes the underlying simulated network (fault injection,
// stats).
func (s *Net) Network() *netsim.Network { return s.net }

// RunFor advances virtual time by the tick-equivalent of d.
func (s *Net) RunFor(d time.Duration) {
	ticks := sim.Time(d / transport.SimTick)
	if ticks <= 0 {
		ticks = 1
	}
	s.sched.RunUntil(s.sched.Now() + ticks)
}

// AddNode implements transport.Transport.
func (s *Net) AddNode(id ids.ID, h transport.Handler) error {
	if s.closed {
		return fmt.Errorf("simnet: transport closed")
	}
	return s.net.AddNode(id, h)
}

// Send implements transport.Transport.
func (s *Net) Send(from, to ids.ID, payload any) { s.net.Send(from, to, payload) }

// Rand implements transport.Transport (the simulator is single-threaded,
// so sharing the scheduler's source is safe).
func (s *Net) Rand() *rand.Rand { return s.sched.Rand() }

// Crash implements transport.Transport.
func (s *Net) Crash(id ids.ID) { s.net.Crash(id) }

// Alive implements transport.Transport.
func (s *Net) Alive() ids.Set { return s.net.Alive() }

// Inspect implements transport.Transport. The simulator is
// single-threaded: handlers only run while the owner pumps the
// scheduler, so between pumps the closure may run directly. Callers must
// not Inspect from inside a simulation event.
func (s *Net) Inspect(id ids.ID, fn func()) bool {
	if !s.net.Alive().Contains(id) {
		return false
	}
	fn()
	return true
}

// Close implements transport.Transport. The simulator holds no external
// resources; halting the scheduler stops any in-progress run.
func (s *Net) Close() error {
	s.closed = true
	s.sched.Halt()
	return nil
}
