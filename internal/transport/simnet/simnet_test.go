package simnet_test

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
	"repro/internal/transport/simnet"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Backend{
		Name: "simnet",
		New: func(t *testing.T, seed int64, opts transport.Options, _ ids.Set) conformance.Harness {
			n := simnet.New(seed, opts)
			return conformance.Harness{Net: n, Settle: n.RunFor}
		},
	})
}

// TestDeterminism: two same-seeded simnet transports execute identical
// event sequences — the property the experiment suite depends on.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		n := simnet.New(42, transport.DefaultOptions())
		defer n.Close()
		h1, h2 := &nopHandler{}, &nopHandler{}
		if err := n.AddNode(1, h1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddNode(2, h2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			n.Send(1, 2, i)
			n.RunFor(10 * time.Millisecond)
		}
		st := n.Network().Stats()
		return st.Delivered, st.DroppedBy.Loss
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: delivered %d/%d, lost %d/%d", d1, d2, l1, l2)
	}
}

type nopHandler struct{}

func (nopHandler) Receive(ids.ID, any) {}
func (nopHandler) Tick()               {}
