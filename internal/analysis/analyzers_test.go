package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestExplicitPresence(t *testing.T) {
	analysistest.Run(t, analysis.ExplicitPresence, "testdata/explicitpresence/wire", "wire")
}

func TestExplicitPresenceOutOfScope(t *testing.T) {
	// The same fixture under a non-wire import path must produce nothing:
	// the analyzer scopes itself by path segment.
	pkg := analysistest.Load(t, "testdata/explicitpresence/wire", "notwire")
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.ExplicitPresence})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0:\n%v", len(diags), diags)
	}
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "testdata/determinism/smr", "smr")
}

func TestAtomicFields(t *testing.T) {
	analysistest.Run(t, analysis.AtomicFields, "testdata/atomicfields/atomics", "atomics")
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysis.MetricName, "testdata/metricname/metrics", "metrics")
}

func TestErrEnvelope(t *testing.T) {
	analysistest.Run(t, analysis.ErrEnvelope, "testdata/errenvelope/noded", "noded")
}

// TestEscapeHatch pins the //repolint:allow contract: a justified allow
// suppresses (same line or line above), an allow without a
// justification is malformed, and an allow that suppresses nothing is
// reported as unused.
func TestEscapeHatch(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/hatch", "hatch/smr")
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Determinism})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3:\n%s", len(diags), strings.Join(got, "\n"))
	}
	wantFrags := []string{
		"malformed repolint:allow",
		"unused repolint:allow",
		"wall clock", // the site under the malformed directive stays flagged
	}
	for _, frag := range wantFrags {
		found := false
		for _, g := range got {
			if strings.Contains(g, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q:\n%s", frag, strings.Join(got, "\n"))
		}
	}
	for _, g := range got {
		if strings.Contains(g, "justified exception") {
			t.Errorf("suppressed site leaked a diagnostic: %s", g)
		}
	}
}

// TestUnusedJudgedOnlyWhenCovered pins the fairness rule: a directive
// naming an analyzer that did not run in this invocation is never
// reported as unused.
func TestUnusedJudgedOnlyWhenCovered(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/hatch", "hatch2/smr")
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.ErrEnvelope})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "unused repolint:allow") {
			t.Errorf("unused-directive report for an analyzer that did not run: %s", d)
		}
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// invocation CI uses. Every real violation is fixed or carries a
// justified annotation, and this keeps it that way.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is a few seconds; skipped in -short")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from ./..., expected the whole module", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
