package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricName pins the metric naming contract (DESIGN.md §11, §15):
//
//  1. Every obs.Registry registration (Counter, CounterFunc, Gauge,
//     GaugeFunc, Histogram) uses a constant name matching
//     repro_<subsystem>_<name>, with the kind-appropriate suffix
//     (counters end in _total; histograms in _seconds/_ticks/_bytes;
//     gauges in neither), drawn from the metricfamilies.go allowlist,
//     and — when the label set is written literally — with exactly the
//     family's declared label keys.
//  2. Any other "repro_…" string literal in the tree (dashboards-by-
//     grep tables like cmd/nodeload's) must name an allowlisted family,
//     so references cannot drift from registrations.
//
// The analysis package itself is exempt: the allowlist and these doc
// strings legitimately mention family names and the pattern.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "obs.Registry registrations use constant repro_<subsystem>_<name> families " +
		"from the metricfamilies.go allowlist with matching kind suffix and label keys",
	Run: runMetricName,
}

var metricNameRE = regexp.MustCompile(`^repro_[a-z0-9]+(_[a-z0-9]+)*$`)

// registryMethods maps obs.Registry method names to the instrument kind
// they register.
var registryMethods = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

func runMetricName(pass *Pass) error {
	if pass.PathHasSegment("analysis") {
		return nil
	}
	// Positions of name arguments already checked at a registration call
	// site, so the stray-literal sweep does not double-report them.
	checked := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryMethodKind(pass, call)
			if !ok {
				return true
			}
			if len(call.Args) > 0 {
				checked[ast.Unparen(call.Args[0]).Pos()] = true
			}
			checkRegistration(pass, call, kind)
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || checked[lit.Pos()] {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(val, "repro_") {
				return true
			}
			if !metricNameRE.MatchString(val) {
				pass.Reportf(lit.Pos(),
					"string %q looks like a metric family but does not match repro_<subsystem>_<name> (lower-case, underscore-separated)", val)
				return true
			}
			if _, ok := metricFamilies[val]; !ok {
				pass.Reportf(lit.Pos(),
					"metric family %q is not in the metricfamilies.go allowlist; add it there (with kind and labels) in the same change", val)
			}
			return true
		})
	}
	return nil
}

// registryMethodKind reports whether call invokes a registration method
// on obs.Registry, and if so which instrument kind it registers.
func registryMethodKind(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	kind, ok := registryMethods[fn.Name()]
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	path := namedTypePath(sig.Recv().Type())
	if path != "obs.Registry" && !strings.HasSuffix(path, "/obs.Registry") {
		return "", false
	}
	return kind, true
}

// checkRegistration validates one registration call: constant name,
// pattern, kind suffix, allowlist membership, and (when literal) label
// keys. At most one diagnostic per call, most fundamental first.
func checkRegistration(pass *Pass, call *ast.CallExpr, kind string) {
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	tv := pass.TypesInfo.Types[nameArg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(),
			"metric name passed to %s must be a constant string so the allowlist can vouch for it", kind)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		pass.Reportf(nameArg.Pos(),
			"metric family %q does not match repro_<subsystem>_<name> (lower-case, underscore-separated)", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(nameArg.Pos(), "counter family %q must end in _total", name)
			return
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(nameArg.Pos(), "gauge family %q must not end in _total (that suffix is reserved for counters)", name)
			return
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_ticks") && !strings.HasSuffix(name, "_bytes") {
			pass.Reportf(nameArg.Pos(), "histogram family %q must end in a unit suffix (_seconds, _ticks, or _bytes)", name)
			return
		}
	}
	fam, ok := metricFamilies[name]
	if !ok {
		pass.Reportf(nameArg.Pos(),
			"metric family %q is not in the metricfamilies.go allowlist; add it there (with kind and labels) in the same change", name)
		return
	}
	if fam.kind != kind {
		pass.Reportf(nameArg.Pos(),
			"metric family %q is allowlisted as a %s but registered as a %s", name, fam.kind, kind)
		return
	}
	checkRegistrationLabels(pass, call, name, fam)
}

// checkRegistrationLabels compares a literal obs.Labels argument against
// the family's declared key schema. Non-literal label arguments (tables,
// loop-built maps) are skipped — the family row still bounds them in
// review, and values are free to vary.
func checkRegistrationLabels(pass *Pass, call *ast.CallExpr, name string, fam metricFamily) {
	for _, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		path := namedTypePath(tv.Type)
		if path != "obs.Labels" && !strings.HasSuffix(path, "/obs.Labels") {
			continue
		}
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok {
			return // non-literal labels: cannot check keys statically
		}
		var keys []string
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return
			}
			ktv := pass.TypesInfo.Types[kv.Key]
			if ktv.Value == nil || ktv.Value.Kind() != constant.String {
				pass.Reportf(kv.Key.Pos(),
					"label key for metric family %q must be a constant string", name)
				return
			}
			keys = append(keys, constant.StringVal(ktv.Value))
		}
		want := append([]string(nil), fam.labels...)
		got := append([]string(nil), keys...)
		sort.Strings(want)
		sort.Strings(got)
		if !equalStrings(want, got) {
			pass.Reportf(lit.Pos(),
				"metric family %q declares label keys [%s] in the allowlist but this registration uses [%s]",
				name, strings.Join(want, " "), strings.Join(got, " "))
		}
		return
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
