package analysis

// metricFamily describes one allowed metric family: its instrument kind
// and the exact label-key schema every registration must use.
type metricFamily struct {
	kind   string   // "counter", "gauge", or "histogram"
	labels []string // exact label-key set; empty = unlabeled family
}

// metricFamilies is the checked-in allowlist the metricname analyzer
// enforces. Adding a metric means adding a row here first — that is the
// point: the family name, kind suffix, and label schema get reviewed in
// the same diff that introduces the series, and stray "repro_…" literals
// anywhere in the tree must resolve to a row in this table.
var metricFamilies = map[string]metricFamily{
	// node core
	"repro_node_ticks_total": {kind: "counter"},

	// datalink (internal/datalink)
	"repro_datalink_cleanings_total":      {kind: "counter"},
	"repro_datalink_cycles_total":         {kind: "counter"},
	"repro_datalink_delivered_total":      {kind: "counter"},
	"repro_datalink_stale_ignored_total":  {kind: "counter"},
	"repro_datalink_timeouts_total":       {kind: "counter"},
	"repro_datalink_batches_total":        {kind: "counter"},
	"repro_datalink_batch_payloads_total": {kind: "counter"},
	"repro_datalink_evictions_total":      {kind: "counter"},
	"repro_datalink_queue_depth":          {kind: "gauge"},
	"repro_datalink_inflight_window":      {kind: "gauge"},
	"repro_datalink_ack_rtt_ticks":        {kind: "histogram"},

	// tcp transport (internal/transport/tcp)
	"repro_tcp_sent_total":           {kind: "counter"},
	"repro_tcp_delivered_total":      {kind: "counter"},
	"repro_tcp_dropped_total":        {kind: "counter"},
	"repro_tcp_duplicated_total":     {kind: "counter"},
	"repro_tcp_redials_total":        {kind: "counter"},
	"repro_tcp_decode_errors_total":  {kind: "counter"},
	"repro_tcp_conn_writes_total":    {kind: "counter"},
	"repro_tcp_frames_written_total": {kind: "counter"},
	"repro_tcp_write_coalescing":     {kind: "gauge"},

	// per-shard vs/smr (cmd/noded registerShards)
	"repro_vs_rounds_applied_total":       {kind: "counter", labels: []string{"shard"}},
	"repro_vs_views_installed_total":      {kind: "counter", labels: []string{"shard"}},
	"repro_vs_proposals_total":            {kind: "counter", labels: []string{"shard"}},
	"repro_vs_suspended_ticks_total":      {kind: "counter", labels: []string{"shard"}},
	"repro_vs_reconfig_requests_total":    {kind: "counter", labels: []string{"shard"}},
	"repro_vs_state_adoptions_total":      {kind: "counter", labels: []string{"shard"}},
	"repro_vs_state_mismatches_total":     {kind: "counter", labels: []string{"shard"}},
	"repro_vs_no_coordinator_ticks_total": {kind: "counter", labels: []string{"shard"}},
	"repro_smr_pending_commands":          {kind: "gauge", labels: []string{"shard"}},
	"repro_shard_ops_total":               {kind: "counter", labels: []string{"shard", "op"}},

	// joining mechanism (cmd/noded registerJoin; Algorithm 3.3 progress
	// under churn)
	"repro_join_requests_total":  {kind: "counter"},
	"repro_join_responses_total": {kind: "counter"},
	"repro_join_joined_total":    {kind: "counter"},
	"repro_join_denied_total":    {kind: "counter"},
	"repro_join_participant":     {kind: "gauge"},

	// durable storage (internal/shard/storage)
	"repro_storage_appends_total":         {kind: "counter", labels: []string{"shard"}},
	"repro_storage_snapshots_total":       {kind: "counter", labels: []string{"shard"}},
	"repro_storage_snapshot_errors_total": {kind: "counter", labels: []string{"shard"}},
	"repro_storage_wal_records":           {kind: "gauge", labels: []string{"shard"}},
	"repro_storage_wal_bytes":             {kind: "gauge", labels: []string{"shard"}},
	"repro_storage_snapshot_bytes":        {kind: "gauge", labels: []string{"shard"}},
	"repro_storage_failed":                {kind: "gauge", labels: []string{"shard"}},
	"repro_storage_snapshot_seconds":      {kind: "histogram", labels: []string{"shard"}},

	// HTTP admin surface (cmd/noded)
	"repro_http_requests_total":  {kind: "counter", labels: []string{"route", "code"}},
	"repro_http_request_seconds": {kind: "histogram", labels: []string{"route"}},

	// build identity (PR 9)
	"repro_build_info": {kind: "gauge", labels: []string{"go_version", "vcs_rev"}},
}
