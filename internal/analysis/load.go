package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit repolint
// analyzers run over. Only non-test files are loaded — the invariants
// the suite mechanizes (wire schema, determinism, scrape safety,
// metric registration, error envelopes) all live in shipped code, and
// test files are free to use clocks, global rand, and raw writers.
type Package struct {
	Path  string // import path ("repro/internal/smr")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives []directive
}

// Loader parses and type-checks packages of one module without any
// dependency on golang.org/x/tools: module-local import paths are
// resolved straight to directories and type-checked recursively, and
// standard-library imports are delegated to the compiler's source
// importer. The module must be dependency-free (this one is — see
// go.mod), which is exactly what makes the stdlib-only loader viable.
type Loader struct {
	ModDir  string // absolute module root
	ModPath string // module path from go.mod

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
	// extra maps fixture import paths to directories outside the module
	// tree (the analysistest harness).
	extra map[string]string
}

// NewLoader builds a loader rooted at the module containing dir (dir or
// an ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModDir:  root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		extra:   make(map[string]string),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load resolves patterns ("./...", "./internal/...", "./cmd/noded",
// import paths) into loaded packages, in deterministic (path) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			dirs[d] = true
		}
	}
	var rels []string
	for d := range dirs {
		rels = append(rels, d)
	}
	sort.Strings(rels)
	var out []*Package
	for _, rel := range rels {
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// expand turns one pattern into module-relative directories holding at
// least one non-test .go file.
func (l *Loader) expand(pat string) ([]string, error) {
	pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
	if pat == "" {
		pat = "..."
	}
	recursive := false
	if pat == "..." {
		recursive, pat = true, "."
	} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive, pat = true, rest
	}
	if strings.HasPrefix(pat, l.ModPath) {
		pat = strings.TrimPrefix(strings.TrimPrefix(pat, l.ModPath), "/")
		if pat == "" {
			pat = "."
		}
	}
	base := filepath.Join(l.ModDir, filepath.FromSlash(pat))
	if !recursive {
		if hasGoFiles(base) {
			return []string{pat}, nil
		}
		return nil, fmt.Errorf("analysis: no Go files in %s", base)
	}
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.ModDir, p)
			if err != nil {
				return err
			}
			dirs = append(dirs, filepath.ToSlash(rel))
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir under an explicit import path,
// bypassing module-path mapping — the analysistest harness uses it to
// load fixtures whose path (and thus package-scoping) is chosen by the
// test.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.extra[path] = abs
	return l.load(path)
}

// Import implements types.Importer: module-local and fixture paths are
// loaded by this loader, everything else goes to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") || l.extra[path] != "" {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one package by import path, caching the
// result. A directory with no non-test Go files yields (nil, nil).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := l.extra[path]
	if dir == "" {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir = filepath.Join(l.ModDir, filepath.FromSlash(rel))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		l.cache[path] = nil
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	pkg.directives = parseDirectives(l.fset, files)
	l.cache[path] = pkg
	return pkg, nil
}
