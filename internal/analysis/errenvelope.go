package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrEnvelope keeps the admin API's error contract uniform (DESIGN.md
// §10): every response a noded HTTP handler emits goes through
// api.WriteJSON or api.WriteError, so clients always get the JSON error
// envelope with a machine-readable code.
//
// Inside any noded function that takes an http.ResponseWriter
// parameter, the analyzer flags:
//
//   - direct w.Write / w.WriteHeader calls (header *reads and sets* via
//     w.Header() stay legal — content-type negotiation is fine), and
//   - handing the writer to a cross-package callee other than
//     api.WriteJSON, api.WriteError, or a ServeHTTP method — which
//     catches http.Error, fmt.Fprintf(w, …), json.NewEncoder(w), and
//     friends. Same-package helpers are allowed because they are
//     scanned by this same rule.
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc: "noded HTTP handlers emit responses only through api.WriteJSON/api.WriteError " +
		"so every error carries the uniform JSON envelope",
	Run: runErrEnvelope,
}

const respWriterPath = "net/http.ResponseWriter"

func runErrEnvelope(pass *Pass) error {
	if !pass.PathHasSegment("noded") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var sig *types.Signature
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					sig, _ = obj.Type().(*types.Signature)
				}
			case *ast.FuncLit:
				body = fn.Body
				sig, _ = pass.TypesInfo.TypeOf(fn).(*types.Signature)
			default:
				return true
			}
			if body == nil || sig == nil || !hasRespWriterParam(sig) {
				return true
			}
			checkHandlerBody(pass, body)
			return true
		})
	}
	return nil
}

func hasRespWriterParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if namedTypePath(sig.Params().At(i).Type()) == respWriterPath {
			return true
		}
	}
	return false
}

func isRespWriter(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && namedTypePath(tv.Type) == respWriterPath
}

// envelopeWriters are the only cross-package callees a handler may hand
// the ResponseWriter to: the api envelope helpers and ServeHTTP
// (delegation to another handler, e.g. a mux or pprof).
func allowedEnvelopeCallee(fn *types.Func) bool {
	if fn.Name() == "ServeHTTP" {
		return true
	}
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "api" && !strings.HasSuffix(path, "/api") {
		return false
	}
	return fn.Name() == "WriteJSON" || fn.Name() == "WriteError"
}

func checkHandlerBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// w.Write(...) / w.WriteHeader(...) directly on the writer.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isRespWriter(pass, sel.X) {
			switch sel.Sel.Name {
			case "Write", "WriteHeader":
				pass.Reportf(call.Pos(),
					"handler calls %s directly on the ResponseWriter; emit through api.WriteJSON/api.WriteError so the response carries the envelope",
					sel.Sel.Name)
			}
			return true
		}
		// Handing the writer to someone else.
		for _, arg := range call.Args {
			if !isRespWriter(pass, ast.Unparen(arg)) {
				continue
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				continue // dynamic call through a function value
			}
			if fn.Pkg() != nil && fn.Pkg() == pass.Pkg {
				continue // same-package helper: scanned by this same rule
			}
			if allowedEnvelopeCallee(fn) {
				continue
			}
			pass.Reportf(arg.Pos(),
				"handler passes the ResponseWriter to %s; only api.WriteJSON, api.WriteError, and ServeHTTP delegation keep the error envelope uniform",
				fn.Name())
		}
		return true
	})
}
