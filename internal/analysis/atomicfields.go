package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicFields generalizes the PR 7 datalink retrofit, repo-wide:
//
//  1. A struct field that is ever passed to a sync/atomic function
//     (atomic.AddUint64(&s.f, …) style) must never be read or written
//     plainly — mixed access is a data race the race detector only
//     catches when both sides happen to run under -race. (Fields
//     declared as atomic.Uint64 & co. are safe by construction: their
//     only access path is atomic methods.)
//  2. Scrape-path methods — Stats, Metrics, QueueLen and *Stats
//     variants, called concurrently with protocol steps by the
//     /metrics gatherers — must hold one of the struct's own mutexes
//     while touching plain (non-atomic) fields of the receiver.
var AtomicFields = &Analyzer{
	Name: "atomicfields",
	Doc: "fields accessed via sync/atomic are never accessed plainly; " +
		"Stats()/scrape-path methods hold the owning mutex for plain state",
	Run: runAtomicFields,
}

// scrapeMethod reports whether a method name is on the scrape path.
func scrapeMethod(name string) bool {
	return name == "Stats" || name == "Metrics" || name == "QueueLen" ||
		strings.HasSuffix(name, "Stats")
}

func runAtomicFields(pass *Pass) error {
	// Pass 1: collect fields used through sync/atomic package functions,
	// and remember the selector nodes inside those calls as blessed.
	atomicVars := map[*types.Var]bool{}
	blessed := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldVar(pass.TypesInfo, sel); v != nil {
					atomicVars[v] = true
					blessed[sel] = true
				}
			}
			return true
		})
	}
	// Pass 2: any other use of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			v := fieldVar(pass.TypesInfo, sel)
			if v == nil || !atomicVars[v] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed via sync/atomic elsewhere; this plain access races with it (use the atomic API everywhere, or declare the field as an atomic.* type)",
				v.Name())
			return true
		})
	}
	// Pass 3: scrape-path methods on mutex-owning structs.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !scrapeMethod(fd.Name.Name) {
				continue
			}
			checkScrapeMethod(pass, fd)
		}
	}
	return nil
}

// fieldVar resolves a selector to the struct field it denotes (nil for
// methods, package selectors, and non-field objects).
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// checkScrapeMethod enforces rule 2 on one method: if the receiver's
// struct has mutex fields and the body reads plain receiver state, a
// Lock/RLock on one of those mutexes must appear in the body.
func checkScrapeMethod(pass *Pass, fd *ast.FuncDecl) {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	recvType := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if recvType == nil {
		return
	}
	st := structOf(recvType)
	if st == nil {
		return
	}
	mus := mutexFields(st)
	if len(mus) == 0 {
		return
	}
	locked := false
	var plainReads []*ast.SelectorExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base := receiverOf(sel.X)
		if base == nil || base.Name != recvName {
			return true
		}
		// e.mu.Lock() / RLock() on a receiver mutex?
		if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				for _, mu := range mus {
					if inner.Sel.Name == mu {
						locked = true
					}
				}
			}
			return true
		}
		v := fieldVar(pass.TypesInfo, sel)
		if v == nil {
			return true
		}
		for _, mu := range mus {
			if v.Name() == mu {
				return true
			}
		}
		if isAtomicType(v.Type()) {
			return true
		}
		// Interior selector of a longer chain? The leaf decides.
		if isSelectorParentChain(fd.Body, sel) {
			return true
		}
		plainReads = append(plainReads, sel)
		return true
	})
	if locked || len(plainReads) == 0 {
		return
	}
	pass.Reportf(plainReads[0].Pos(),
		"scrape-path method %s reads plain field %s without holding a receiver mutex (%s); lock it or make the field atomic",
		fd.Name.Name, plainReads[0].Sel.Name, strings.Join(mus, "/"))
}

// isSelectorParentChain reports whether sel is the X of an enclosing
// selector (e.stats in e.stats.cleanings.Load()) — interior links are
// skipped; the leaf field or method decides safety.
func isSelectorParentChain(root ast.Node, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if outer, ok := n.(*ast.SelectorExpr); ok && ast.Unparen(outer.X) == sel {
			found = true
		}
		return !found
	})
	return found
}
