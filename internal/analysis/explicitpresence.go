package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ExplicitPresence mechanizes the wire-schema presence contract
// (DESIGN.md §8, §14) in packages named "wire":
//
//  1. Exported message structs never carry pointer fields — gob omits
//     zero values, so a pointer to a zero value decodes as nil and
//     silently changes protocol semantics. Every struct-, slice- or
//     map-typed exported field X must instead have a paired
//     "HasX bool" presence field ("any" slots are exempt: a nil
//     interface round-trips unambiguously).
//  2. The hand-rolled binary codec never encodes a raw map length as
//     its on-wire discriminant, and never branches on len() of a map:
//     both collapse the nil/empty distinction the vs layer keys
//     behavior off — the exact PR 8 Inputs regression, where an
//     assembled-but-empty round arrived as a nil map and downgraded
//     every incremental adoption to a wholesale one. Encode presence
//     explicitly (0 = nil, n+1 = n entries) and branch on == nil.
var ExplicitPresence = &Analyzer{
	Name: "explicitpresence",
	Doc: "wire message structs pair nilable fields with HasX presence booleans; " +
		"the binary codec keeps the map nil/empty distinction explicit",
	Run: runExplicitPresence,
}

// encodeCallNames marks callees whose arguments end up on the wire; a
// raw map len() flowing into one is the PR 8 bug shape.
func isEncodeCallee(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"varint", "append", "put", "write", "encode"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

func runExplicitPresence(pass *Pass) error {
	if !pass.PathHasSegment("wire") {
		return nil
	}
	for _, f := range pass.Files {
		checkPresencePairs(pass, f)
		checkMapLenEncoding(pass, f)
	}
	return nil
}

// checkPresencePairs enforces rule 1 on every exported struct type.
func checkPresencePairs(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || !ts.Name.IsExported() {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		names := map[string]bool{}
		for _, fld := range st.Fields.List {
			for _, name := range fld.Names {
				names[name.Name] = true
			}
		}
		for _, fld := range st.Fields.List {
			for _, name := range fld.Names {
				if !name.IsExported() {
					continue
				}
				t := pass.TypesInfo.TypeOf(fld.Type)
				if t == nil {
					continue
				}
				switch t.Underlying().(type) {
				case *types.Pointer:
					pass.Reportf(name.Pos(),
						"wire message field %s.%s is a pointer: gob elides zero values, so &zero decodes as nil; use a value field with a Has%s bool",
						ts.Name.Name, name.Name, name.Name)
				case *types.Struct, *types.Slice, *types.Map:
					if strings.HasPrefix(name.Name, "Has") || names["Has"+name.Name] {
						continue
					}
					if isScalarish(t) {
						continue
					}
					pass.Reportf(name.Pos(),
						"wire message field %s.%s has no Has%s bool presence field: absent and zero-valued are indistinguishable after gob",
						ts.Name.Name, name.Name, name.Name)
				}
			}
		}
		return true
	})
}

// isScalarish exempts named types that are really value scalars on the
// wire (ids.Set is a map but ships through its own validating
// MarshalBinary, so presence pairing does not apply to it).
func isScalarish(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "MarshalBinary" {
			return true
		}
	}
	return false
}

// checkMapLenEncoding enforces rule 2: no raw map len() as an encode
// argument, no branching on len() of a map.
func checkMapLenEncoding(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, n)
			if fn == nil || !isEncodeCallee(fn.Name()) {
				return true
			}
			for _, arg := range n.Args {
				if lenOfMap(pass.TypesInfo, arg) {
					pass.Reportf(arg.Pos(),
						"raw map length encoded as wire discriminant: 0 entries and nil collapse to the same bytes (the PR 8 Inputs bug); encode presence explicitly (0 = nil, n+1 = n entries)")
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				if lenOfMap(pass.TypesInfo, n.X) || lenOfMap(pass.TypesInfo, n.Y) {
					pass.Reportf(n.Pos(),
						"branching on len() of a map conflates nil and empty (the PR 8 Inputs bug); branch on == nil and encode the distinction")
				}
			}
		}
		return true
	})
}
