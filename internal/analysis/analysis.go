// Package analysis is repolint's engine: a small, stdlib-only analyzer
// framework (mirroring the shape of golang.org/x/tools/go/analysis,
// which this dependency-free module deliberately does not vendor) plus
// the repository-specific analyzers that mechanize invariants earlier
// PRs could only pin with one-off tests:
//
//   - explicitpresence — wire message structs carry HasX presence
//     booleans instead of pointers, and the binary codec never encodes
//     a raw map length (the PR 8 empty→nil Inputs regression).
//   - determinism — no wall clock, global math/rand, environment reads,
//     or unordered map iteration feeding output in the packages whose
//     seed-42 outputs must stay byte-identical.
//   - atomicfields — a field accessed through sync/atomic is never
//     read or written plainly, and scrape-path methods (Stats, Metrics,
//     QueueLen) hold the owning mutex when they touch plain state.
//   - metricname — every obs.Registry registration uses a constant
//     repro_<subsystem>_<name> family from the checked-in allowlist
//     (metricfamilies.go) with its declared type suffix and label keys.
//   - errenvelope — noded HTTP handlers emit responses only through
//     api.WriteJSON / api.WriteError, so every error carries the
//     uniform envelope.
//
// A legitimate exception is annotated in place:
//
//	//repolint:allow <analyzer>[,<analyzer>] -- <justification>
//
// on the flagged line or the line directly above it. The justification
// is mandatory (a bare allow is itself a finding), and an allow that
// suppresses nothing is reported as unused, so stale annotations cannot
// accumulate. See DESIGN.md §15.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier, used in directives
	Doc  string // one-paragraph description for -list
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass connects one analyzer run to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg   *Package
	diags []Diagnostic
}

// Reportf records a finding at pos. Findings covered by a well-formed
// //repolint:allow directive for this analyzer (same line or the line
// above) are suppressed, and the directive is marked used.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for i := range p.pkg.directives {
		d := &p.pkg.directives[i]
		if d.malformed || d.pos.Filename != position.Filename {
			continue
		}
		if d.pos.Line != position.Line && d.pos.Line != position.Line-1 {
			continue
		}
		if d.allows(p.Analyzer.Name) {
			d.used = true
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PathHasSegment reports whether the pass's package import path
// contains seg as a whole path element — how analyzers scope themselves
// to named packages while staying testable under fixture paths.
func (p *Pass) PathHasSegment(seg string) bool {
	for _, s := range strings.Split(p.Pkg.Path(), "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// directive is one //repolint:allow comment.
type directive struct {
	pos       token.Position
	analyzers []string
	malformed bool
	reason    string // why it is malformed, for the diagnostic
	used      bool
}

func (d *directive) allows(name string) bool {
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

const directivePrefix = "//repolint:allow"

// parseDirectives scans every comment for //repolint:allow directives.
// Grammar: "//repolint:allow name[,name...] -- justification" — the
// justification is mandatory, so every suppression records why.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := directive{pos: fset.Position(c.Pos())}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// Not our directive (e.g. //repolint:allowfoo).
					continue
				}
				names, just, ok := strings.Cut(rest, " -- ")
				names = strings.TrimSpace(names)
				just = strings.TrimSpace(just)
				switch {
				case !ok || just == "":
					d.malformed = true
					d.reason = "missing justification (want //repolint:allow <analyzer> -- <why>)"
				case names == "":
					d.malformed = true
					d.reason = "missing analyzer name (want //repolint:allow <analyzer> -- <why>)"
				default:
					for _, n := range strings.Split(names, ",") {
						d.analyzers = append(d.analyzers, strings.TrimSpace(n))
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Run executes every analyzer over every package and returns the merged
// findings sorted by position, including malformed and unused
// //repolint:allow directives (reported under the pseudo-analyzer name
// "repolint"). Directive bookkeeping is per call: a directive counts as
// used when any analyzer in this run suppressed a finding at it.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, pkg := range pkgs {
		for i := range pkg.directives {
			pkg.directives[i].used = false
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				pkg:       pkg,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			all = append(all, pass.diags...)
		}
		for _, d := range pkg.directives {
			switch {
			case d.malformed:
				all = append(all, Diagnostic{Pos: d.pos, Analyzer: "repolint",
					Message: "malformed repolint:allow directive: " + d.reason})
			case !d.used && coveredByRun(d, names):
				all = append(all, Diagnostic{Pos: d.pos, Analyzer: "repolint",
					Message: fmt.Sprintf("unused repolint:allow directive for %s: nothing to suppress here",
						strings.Join(d.analyzers, ","))})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return dedupe(all), nil
}

// coveredByRun reports whether every analyzer a directive names ran in
// this invocation — only then can "unused" be judged fairly (the
// analysistest harness runs analyzers one at a time).
func coveredByRun(d directive, ran map[string]bool) bool {
	for _, a := range d.analyzers {
		if !ran[a] {
			return false
		}
	}
	return len(d.analyzers) > 0
}

// dedupe drops identical findings (nested handler scans can visit the
// same expression twice). Input must be sorted.
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// All returns the full repolint analyzer suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ExplicitPresence,
		Determinism,
		AtomicFields,
		MetricName,
		ErrEnvelope,
	}
}
