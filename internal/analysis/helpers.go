package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the function or method it
// invokes (nil for conversions, builtins, and dynamic calls through
// function-typed values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function (no
// receiver) pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// unwrapConversions peels type conversions (and parens) off an
// expression: uint64(len(m)) → len(m).
func unwrapConversions(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		if tv, ok := info.Types[call.Fun]; !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

// isMapExpr reports whether e's static type is (or underlies to) a map.
func isMapExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// lenOfMap reports whether e (after peeling conversions) is a len()
// call over a map-typed operand.
func lenOfMap(info *types.Info, e ast.Expr) bool {
	call, ok := unwrapConversions(info, e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return false
	}
	return isMapExpr(info, call.Args[0])
}

// namedTypePath returns "pkgpath.Name" for a (possibly pointered) named
// type, "" otherwise.
func namedTypePath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// isAtomicType reports whether t is one of sync/atomic's instrument
// types (atomic.Uint64, atomic.Int64, …) or a named type from a package
// whose path ends in "obs" (obs.Counter and friends wrap atomics).
func isAtomicType(t types.Type) bool {
	path := namedTypePath(t)
	if strings.HasPrefix(path, "sync/atomic.") {
		return true
	}
	return false
}

// structOf returns the struct underlying a (possibly pointered, possibly
// named) type, or nil.
func structOf(t types.Type) *types.Struct {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

// mutexFields returns the names of sync.Mutex / sync.RWMutex fields of
// a struct type.
func mutexFields(s *types.Struct) []string {
	var out []string
	for i := 0; i < s.NumFields(); i++ {
		switch namedTypePath(s.Field(i).Type()) {
		case "sync.Mutex", "sync.RWMutex":
			out = append(out, s.Field(i).Name())
		}
	}
	return out
}

// receiverOf returns the receiver base identifier of a selector chain
// (e for e.stats.cleanings), or nil if the base is not an identifier.
func receiverOf(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// enclosingFunc returns the innermost *ast.FuncDecl or *ast.FuncLit in
// file whose span contains pos (nil at top level) — how analyzers ask
// "does the surrounding function also do X".
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if pos < n.Pos() || pos >= n.End() {
			return false // subtree cannot contain pos
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			best = n // visited parents-first, so a later hit is more inner
		}
		return true
	})
	return best
}
