package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterministicPackages are the package names (matched as import-path
// segments) whose seed-42 outputs must stay byte-identical across runs
// and parallelism levels — the EXPERIMENTS.md contract CI pins with
// cmp-based determinism smokes.
var DeterministicPackages = []string{
	"experiments", "netsim", "datalink", "smr", "vs", "regmem", "shard", "sim",
}

// Determinism forbids nondeterminism sources in the deterministic
// packages:
//
//   - wall-clock reads (time.Now and friends, timers),
//   - the global math/rand source (seeded *rand.Rand instances are the
//     sanctioned path — per-cell FNV-derived seeds),
//   - environment reads (os.Getenv/LookupEnv/Environ),
//   - iteration over a map in an order-sensitive way. A map range is
//     accepted when its body is syntactically order-insensitive
//     (commutative accumulation, map stores, deletes) or when the
//     enclosing function sorts (package sort/slices) — the
//     collect-keys-then-sort idiom.
//
// Legitimate exceptions carry //repolint:allow determinism -- <why>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "no wall clock, global math/rand, env reads, or order-sensitive map iteration " +
		"in the byte-determinism packages (experiments, netsim, datalink, smr, vs, regmem, shard, sim)",
	Run: runDeterminism,
}

// forbiddenCalls maps package path → function names that introduce
// nondeterminism when called from a deterministic package.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now": "wall clock", "Since": "wall clock", "Until": "wall clock",
		"Sleep": "wall-clock delay", "After": "wall-clock timer", "Tick": "wall-clock timer",
		"NewTimer": "wall-clock timer", "NewTicker": "wall-clock timer", "AfterFunc": "wall-clock timer",
	},
	"os": {
		"Getenv": "environment read", "LookupEnv": "environment read", "Environ": "environment read",
	},
}

func runDeterminism(pass *Pass) error {
	inScope := false
	for _, seg := range DeterministicPackages {
		if pass.PathHasSegment(seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		f := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if what, ok := forbiddenCalls[fn.Pkg().Path()][fn.Name()]; ok && isPkgFunc(fn, fn.Pkg().Path(), fn.Name()) {
					pass.Reportf(n.Pos(),
						"%s.%s (%s) in deterministic package %s breaks byte-identical replay",
						fn.Pkg().Path(), fn.Name(), what, pass.Pkg.Path())
				}
				if fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructor(fn.Name()) {
						pass.Reportf(n.Pos(),
							"global math/rand source in deterministic package %s: draw from a seeded *rand.Rand instead",
							pass.Pkg.Path())
					}
				}
			case *ast.RangeStmt:
				if !isMapExpr(pass.TypesInfo, n.X) {
					return true
				}
				if orderInsensitiveBody(n.Body) {
					return true
				}
				if funcSorts(pass, f, n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"map iteration order feeds order-sensitive logic in deterministic package %s: collect keys and sort, or make the body commutative",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// randConstructor exempts the package-level functions that build a
// seeded generator rather than drawing from the global source —
// rand.New(rand.NewSource(seed)) is the sanctioned pattern.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}

// funcSorts reports whether the function enclosing pos calls into
// package sort or slices — the collect-then-sort idiom that makes a map
// range deterministic.
func funcSorts(pass *Pass, f *ast.File, pos token.Pos) bool {
	fn := enclosingFunc(f, pos)
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if callee := calleeFunc(pass.TypesInfo, call); callee != nil && callee.Pkg() != nil {
			switch callee.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

// orderInsensitiveBody reports whether every statement in a map-range
// body is commutative across iterations: counter accumulation (x += v,
// x++, x *= v, bit-ops), stores into another map, deletes, and
// if/blocks of the same. Anything else — appends, sends, plain
// assignments, calls — is treated as order-sensitive.
func orderInsensitiveBody(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if !orderInsensitiveStmt(s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
			return true
		case token.ASSIGN:
			// m[k] = v — distinct keys land regardless of order.
			for _, lhs := range s.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); !ok {
					return false
				}
			}
			return true
		}
		return false
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "delete"
	case *ast.IfStmt:
		// An if-scoped := init (comma-ok lookups and the like) is fine;
		// its bindings die with the branch.
		if s.Init != nil {
			init, ok := s.Init.(*ast.AssignStmt)
			if !(ok && init.Tok == token.DEFINE) && !orderInsensitiveStmt(s.Init) {
				return false
			}
		}
		if !orderInsensitiveBody(s.Body) {
			return false
		}
		if s.Else != nil {
			return orderInsensitiveStmt(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return orderInsensitiveBody(s)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}
