// Package atomics is an atomicfields fixture: mixed atomic/plain field
// access and scrape-path methods with and without the owning mutex.
package atomics

import (
	"sync"
	"sync/atomic"
)

// counter uses old-style sync/atomic functions on a plain field.
type counter struct {
	n uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) racy() uint64 {
	return c.n // want "plain access races"
}

func (c *counter) racyWrite() {
	c.n = 0 // want "plain access races"
}

// Endpoint mirrors the datalink shape: a mutex, plain state, and an
// atomic-typed stats block.
type Endpoint struct {
	mu    sync.Mutex
	depth int
	stats struct {
		hits atomic.Uint64
	}
}

// Stats reads plain state without the mutex: racy scrape.
func (e *Endpoint) Stats() int {
	return e.depth // want "without holding a receiver mutex"
}

// QueueLen holds the mutex: safe scrape.
func (e *Endpoint) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.depth
}

// HitStats reads only atomic-typed state: safe without the mutex.
func (e *Endpoint) HitStats() uint64 {
	return e.stats.hits.Load()
}

var (
	_ = (*counter).inc
	_ = (*counter).read
	_ = (*counter).racy
	_ = (*counter).racyWrite
	_ = (*Endpoint).Stats
	_ = (*Endpoint).QueueLen
	_ = (*Endpoint).HitStats
)
