// Package noded is an errenvelope fixture: its import path ends in
// "noded", so handler-shaped functions are scanned.
package noded

import (
	"fmt"
	"net/http"

	"repro/pkg/api"
)

func goodJSON(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, map[string]string{"ok": "true"})
}

func goodError(w http.ResponseWriter, r *http.Request) {
	api.WriteError(w, api.Errorf("bad_request", "nope"))
}

// goodDelegate hands off to another handler; ServeHTTP keeps whatever
// envelope that handler enforces.
func goodDelegate(w http.ResponseWriter, r *http.Request, mux *http.ServeMux) {
	mux.ServeHTTP(w, r)
}

// helper is same-package: allowed at the call site because this rule
// scans it too.
func helper(w http.ResponseWriter) {
	api.WriteJSON(w, nil)
}

func goodHelper(w http.ResponseWriter, r *http.Request) {
	helper(w)
}

// goodHeaders may negotiate content types; only body/status writes are
// restricted.
func goodHeaders(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Fixture", "1")
	api.WriteJSON(w, nil)
}

func badWriteHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusTeapot) // want "WriteHeader directly"
}

func badWrite(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("raw")) // want "Write directly"
}

func badFprint(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "raw") // want "passes the ResponseWriter to Fprintln"
}

func badHTTPError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusInternalServerError) // want "passes the ResponseWriter to Error"
}

var (
	_ = goodJSON
	_ = goodError
	_ = goodDelegate
	_ = goodHelper
	_ = goodHeaders
	_ = badWriteHeader
	_ = badWrite
	_ = badFprint
	_ = badHTTPError
)
