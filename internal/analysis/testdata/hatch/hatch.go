// Package hatch exercises //repolint:allow directive handling: a used
// allow, an unused allow, and a malformed allow (no justification). It
// is loaded under an import path ending in "smr" so the determinism
// analyzer is in scope.
package hatch

import "time"

func suppressed() time.Time {
	//repolint:allow determinism -- fixture: justified exception on the line above
	return time.Now()
}

func suppressedSameLine() time.Time {
	return time.Now() //repolint:allow determinism -- fixture: justified exception in trailing position
}

func unused() int {
	//repolint:allow determinism -- fixture: nothing here to suppress
	return 1
}

//repolint:allow determinism
func malformed() time.Time {
	return time.Now()
}

var (
	_ = suppressed
	_ = suppressedSameLine
	_ = unused
	_ = malformed
)
