// Package metrics is a metricname fixture exercising registration calls
// against the real obs.Registry API and the checked-in allowlist.
package metrics

import "repro/internal/obs"

func register(reg *obs.Registry) {
	// Allowlisted families with the right kind, suffix, and labels.
	reg.Counter("repro_node_ticks_total", "Ticks.", nil)
	reg.Gauge("repro_datalink_queue_depth", "Depth.", nil)
	reg.Histogram("repro_storage_snapshot_seconds", "Latency.", obs.Labels{"shard": "0"}, nil)

	// Wrong shape or not vouched for.
	reg.Counter("repro_bad_counter", "No _total suffix.", nil)                       // want "must end in _total"
	reg.Gauge("repro_bad_gauge_total", "Counter suffix on a gauge.", nil)            // want "must not end in _total"
	reg.Histogram("repro_storage_snapshot_latency", "No unit suffix.", nil, nil)     // want "must end in a unit suffix"
	reg.Counter("repro_UPPER_total", "Bad charset.", nil)                            // want "does not match repro_"
	reg.Counter("repro_unknown_thing_total", "Absent from the allowlist.", nil)      // want "not in the metricfamilies.go allowlist"
	reg.Gauge("repro_node_ticks_total", "Kind clash: allowlisted as counter.", nil)  // want "must not end in _total"
	reg.Counter("repro_storage_appends_total", "Missing shard label.", obs.Labels{}) // want "declares label keys"
	reg.Gauge("repro_smr_pending_commands", "Wrong key.", obs.Labels{"shardx": "0"}) // want "declares label keys"
	name := "repro_node_ticks_total"
	reg.Counter(name, "Non-constant name.", nil) // want "must be a constant string"
}

// reference tables may mention families, but only allowlisted ones.
var families = []string{
	"repro_node_ticks_total",
	"repro_made_up_total", // want "not in the metricfamilies.go allowlist"
}

var (
	_ = register
	_ = families
)
