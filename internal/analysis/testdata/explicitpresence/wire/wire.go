// Package wire is an explicitpresence fixture: the bad declarations and
// encoders reproduce the PR 8 Inputs regression shape; the good ones
// mirror the real codec's presence discipline.
package wire

import "sort"

// Env stands in for a nested payload struct.
type Env struct {
	X int
	Y string
}

// Good pairs every nilable field with a presence boolean; interface
// slots round-trip unambiguously and are exempt.
type Good struct {
	HasEnv   bool
	Env      Env
	Raw      any
	HasItems bool
	Items    []int
}

// Set is a map on the wire but ships through its own validating
// marshaler, so it counts as a scalar and needs no presence pair.
type Set map[string]bool

// MarshalBinary makes Set self-describing on the wire.
func (s Set) MarshalBinary() ([]byte, error) { return nil, nil }

// WithSet holds a self-marshaling scalar; no presence pair required.
type WithSet struct {
	Members Set
}

// Bad drops the presence booleans and leans on pointers — both lose the
// absent/zero distinction under gob.
type Bad struct {
	Env    Env            // want "has no HasEnv bool presence field"
	Items  []int          // want "has no HasItems bool presence field"
	Inputs map[string]int // want "has no HasInputs bool presence field"
	Ptr    *Env           // want "is a pointer"
}

func appendUvarint(dst []byte, v uint64) []byte { return append(dst, byte(v)) }

// encodeGood keeps nil and empty distinct: 0 = nil, n+1 = n entries.
func encodeGood(dst []byte, m map[string]int) []byte {
	if m == nil {
		return appendUvarint(dst, 0)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = appendUvarint(dst, uint64(len(keys))+1)
	for _, k := range keys {
		dst = appendUvarint(dst, uint64(m[k]))
	}
	return dst
}

// encodeBad is the PR 8 bug shape: the raw map length is the wire
// discriminant, so an assembled-but-empty map decodes as nil.
func encodeBad(dst []byte, m map[string]int) []byte {
	if len(m) == 0 { // want "branching on len"
		return dst
	}
	return appendUvarint(dst, uint64(len(m))) // want "raw map length"
}

var (
	_ = Good{}
	_ = Bad{}
	_ = WithSet{}
	_ = encodeGood
	_ = encodeBad
)
