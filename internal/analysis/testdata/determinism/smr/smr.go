// Package smr is a determinism fixture; its import path ends in "smr",
// one of the byte-determinism packages.
package smr

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want "wall clock"
}

func pause() {
	time.Sleep(time.Millisecond) // want "wall-clock delay"
}

func env() string {
	return os.Getenv("HOME") // want "environment read"
}

func roll() int {
	return rand.Intn(6) // want "global math/rand"
}

// seeded is the sanctioned pattern: constructors are not draws from the
// global source.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// sum is order-insensitive: commutative accumulation.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert is order-insensitive: distinct stores into another map.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// keys is the collect-then-sort idiom: the enclosing function sorts.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// firstKey leaks iteration order straight into the result.
func firstKey(m map[string]int) string {
	for k := range m { // want "map iteration order"
		return k
	}
	return ""
}

// appendAll leaks iteration order into slice order with no sort in
// sight.
func appendAll(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order"
		out = append(out, k)
	}
	return out
}

var (
	_ = clock
	_ = pause
	_ = env
	_ = roll
	_ = seeded
	_ = sum
	_ = invert
	_ = keys
	_ = firstKey
	_ = appendAll
)
