// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against expectations written in the fixture
// itself — a stdlib-only reimplementation of the x/tools analysistest
// idea, sized to repolint's needs.
//
// Expectations are trailing comments:
//
//	time.Now() // want "wall clock"
//	x, y()     // want "first finding" "second finding"
//
// Each quoted string is a regular expression. Every diagnostic on a
// line must be matched by one of that line's want patterns, every want
// pattern must match at least one diagnostic on its line, and a
// diagnostic on a line with no want comment fails the test.
package analysistest

import (
	"fmt"
	"regexp"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	loaderOnce sync.Once
	loaderVal  *analysis.Loader
	loaderErr  error
)

// loader returns a process-wide loader so fixtures share one
// type-checking universe (std imports are expensive to re-check).
func loader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = analysis.NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("analysistest: building loader: %v", loaderErr)
	}
	return loaderVal
}

// Load loads the fixture package in dir under importPath (which drives
// path-based analyzer scoping) without running anything — for tests
// that assert on raw Run output, like the escape-hatch tests.
func Load(t *testing.T, dir, importPath string) *analysis.Package {
	t.Helper()
	pkg, err := loader(t).LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("analysistest: loading %s as %q: %v", dir, importPath, err)
	}
	if pkg == nil {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	return pkg
}

// Run loads the fixture package in dir under importPath, runs exactly
// one analyzer, and matches diagnostics against the // want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	pkg := Load(t, dir, importPath)
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	wants := parseWants(t, pkg)

	matchedWant := map[*want]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		lineWants := wants[key]
		matched := false
		for _, w := range lineWants {
			if w.re.MatchString(d.Message) {
				matched = true
				matchedWant[w] = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", key, d.Message, d.Analyzer)
		}
	}
	for key, lineWants := range wants {
		for _, w := range lineWants {
			if !matchedWant[w] {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re)
			}
		}
	}
}

type want struct {
	re *regexp.Regexp
}

var (
	wantCommentRE = regexp.MustCompile(`^// want (.*)$`)
	wantPatternRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// parseWants collects want patterns keyed by "file:line".
func parseWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantCommentRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats := wantPatternRE.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, p := range pats {
					re, err := regexp.Compile(p[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p[1], err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}
