package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func systems() []System {
	return []System{Majority{}, Grid{}, CrumblingWall{}}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range systems() {
		if s.Name() == "" || seen[s.Name()] {
			t.Fatalf("bad or duplicate name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestMajorityBasics(t *testing.T) {
	conf := ids.Range(1, 5)
	var m Majority
	if m.IsQuorum(conf, ids.NewSet(1, 2)) {
		t.Fatal("2 of 5 is not a majority")
	}
	if !m.IsQuorum(conf, ids.NewSet(1, 2, 3)) {
		t.Fatal("3 of 5 is a majority")
	}
	if !m.IsQuorum(conf, ids.NewSet(1, 2, 3, 9, 10)) {
		t.Fatal("outsiders must not spoil a quorum")
	}
	if m.IsQuorum(ids.Set{}, ids.NewSet(1)) {
		t.Fatal("empty configuration has no quorums")
	}
}

func TestGridBasics(t *testing.T) {
	conf := ids.Range(1, 9) // 3×3 grid: rows {1,2,3},{4,5,6},{7,8,9}
	var g Grid
	if !g.IsQuorum(conf, ids.NewSet(1, 2, 3, 4, 7)) {
		t.Fatal("full row + column must be a quorum")
	}
	if g.IsQuorum(conf, ids.NewSet(1, 2, 3)) {
		t.Fatal("row without column is not a quorum")
	}
	if g.IsQuorum(conf, ids.NewSet(1, 4, 7)) {
		t.Fatal("column without a full row is not a quorum")
	}
	if !g.IsQuorum(conf, conf) {
		t.Fatal("whole configuration must be a quorum")
	}
}

func TestCrumblingWallBasics(t *testing.T) {
	conf := ids.Range(1, 5)
	var w CrumblingWall
	if !w.IsQuorum(conf, ids.NewSet(1, 4)) {
		t.Fatal("top + one wall element must be a quorum")
	}
	if !w.IsQuorum(conf, ids.NewSet(2, 3, 4, 5)) {
		t.Fatal("the full wall must be a quorum")
	}
	if w.IsQuorum(conf, ids.NewSet(2, 3)) {
		t.Fatal("partial wall without top is not a quorum")
	}
	if w.IsQuorum(conf, ids.NewSet(1)) {
		t.Fatal("top alone is not a quorum")
	}
	if !w.IsQuorum(ids.NewSet(7), ids.NewSet(7)) {
		t.Fatal("singleton configuration: the member is the quorum")
	}
}

// TestQuickPairwiseIntersection verifies the defining quorum property for
// every system: two quorums of the same configuration always intersect.
func TestQuickPairwiseIntersection(t *testing.T) {
	for _, sys := range systems() {
		sys := sys
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			conf := ids.Range(1, ids.ID(rng.Intn(12)+1))
			pick := func() (ids.Set, bool) {
				// Random subset; retry until it is a quorum.
				for tries := 0; tries < 200; tries++ {
					s := conf.Filter(func(ids.ID) bool { return rng.Intn(2) == 0 })
					if sys.IsQuorum(conf, s) {
						return s, true
					}
				}
				return ids.Set{}, false
			}
			q1, ok1 := pick()
			q2, ok2 := pick()
			if !ok1 || !ok2 {
				return true // tiny configs may make sampling fail; vacuous
			}
			return !q1.Intersect(q2).Empty()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
	}
}

// TestQuickMonotone verifies supersets of quorums are quorums.
func TestQuickMonotone(t *testing.T) {
	for _, sys := range systems() {
		sys := sys
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			conf := ids.Range(1, ids.ID(rng.Intn(10)+1))
			s := conf.Filter(func(ids.ID) bool { return rng.Intn(2) == 0 })
			if !sys.IsQuorum(conf, s) {
				return true
			}
			bigger := s.Add(conf.Members()[rng.Intn(conf.Size())])
			return sys.IsQuorum(conf, bigger)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
	}
}

func TestLive(t *testing.T) {
	conf := ids.Range(1, 5)
	if !Live(Majority{}, conf, ids.NewSet(1, 2, 3, 99)) {
		t.Fatal("live majority not detected")
	}
	if Live(Majority{}, conf, ids.NewSet(1, 2)) {
		t.Fatal("dead majority reported live")
	}
	if !Live(CrumblingWall{}, conf, ids.NewSet(1, 5)) {
		t.Fatal("crumbling wall liveness broken")
	}
}
