// Package quorum generalizes the scheme's quorum machinery beyond
// majorities. The paper (Section 1) uses majorities — "the simplest form
// of a quorum system" — but notes the scheme "can be modified to support
// more complex quorum systems, as long as processors have access to a
// mechanism (a function actually) that given a set of processors can
// generate the specific quorum system". This package is that function: a
// System derives, from a configuration member set, the predicate deciding
// which subsets are quorums. Besides majorities it implements two classic
// constructions from the literature the paper cites ([21] crumbling walls,
// [23] quorum-system survey): a grid system and singleton-row crumbling
// walls.
//
// The defining property — any two quorums of the same configuration
// intersect — is verified by property tests for every implementation.
package quorum

import (
	"math"

	"repro/internal/ids"
)

// System decides quorum membership for configurations.
type System interface {
	// Name identifies the system in logs and tables.
	Name() string
	// IsQuorum reports whether s contains a quorum of configuration conf.
	IsQuorum(conf ids.Set, s ids.Set) bool
}

// Majority is the paper's default: any strict majority is a quorum.
type Majority struct{}

var _ System = Majority{}

// Name implements System.
func (Majority) Name() string { return "majority" }

// IsQuorum implements System.
func (Majority) IsQuorum(conf ids.Set, s ids.Set) bool {
	if conf.Empty() {
		return false
	}
	return s.Intersect(conf).Size() >= conf.MajoritySize()
}

// Grid arranges the configuration (in ascending identifier order) into a
// ⌈√n⌉-wide grid; a quorum must contain one full row and one element of
// every row ("one row plus one column" in the usual formulation, adapted
// to ragged last rows). Any two quorums intersect: one's full row meets
// the other's column representative in that row.
type Grid struct{}

var _ System = Grid{}

// Name implements System.
func (Grid) Name() string { return "grid" }

// rows splits conf into rows of width ⌈√n⌉.
func gridRows(conf ids.Set) [][]ids.ID {
	members := conf.Members()
	n := len(members)
	if n == 0 {
		return nil
	}
	w := int(math.Ceil(math.Sqrt(float64(n))))
	rows := make([][]ids.ID, 0, (n+w-1)/w)
	for i := 0; i < n; i += w {
		end := i + w
		if end > n {
			end = n
		}
		rows = append(rows, members[i:end])
	}
	return rows
}

// IsQuorum implements System.
func (Grid) IsQuorum(conf ids.Set, s ids.Set) bool {
	rows := gridRows(conf)
	if len(rows) == 0 {
		return false
	}
	fullRow := false
	for _, row := range rows {
		all := true
		any := false
		for _, id := range row {
			if s.Contains(id) {
				any = true
			} else {
				all = false
			}
		}
		if all {
			fullRow = true
		}
		if !any {
			return false // a row with no representative: no column
		}
	}
	return fullRow
}

// CrumblingWall is the singleton-top-row crumbling wall of Peleg & Wool
// [21]: the first (smallest-identifier) member forms a one-element row and
// the rest one wide row; a quorum is the top element plus any element of
// the bottom row, or the entire bottom row. Quorums are tiny (size 2) in
// the common case while still pairwise intersecting.
type CrumblingWall struct{}

var _ System = CrumblingWall{}

// Name implements System.
func (CrumblingWall) Name() string { return "crumbling-wall" }

// IsQuorum implements System.
func (CrumblingWall) IsQuorum(conf ids.Set, s ids.Set) bool {
	members := conf.Members()
	switch len(members) {
	case 0:
		return false
	case 1:
		return s.Contains(members[0])
	}
	top := members[0]
	bottom := members[1:]
	if s.Contains(top) {
		for _, id := range bottom {
			if s.Contains(id) {
				return true // top + one of the wall
			}
		}
		return false
	}
	for _, id := range bottom {
		if !s.Contains(id) {
			return false
		}
	}
	return true // the entire wall
}

// Live reports whether the alive set still contains some quorum of conf —
// the generalized "majority has not collapsed" test the recMA layer needs.
// It is exact for Majority and CrumblingWall and conservative for Grid
// (checks whether alive itself is a quorum, which for monotone systems is
// equivalent to containing one).
func Live(sys System, conf ids.Set, alive ids.Set) bool {
	return sys.IsQuorum(conf, alive.Intersect(conf))
}
