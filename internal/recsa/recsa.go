package recsa

import (
	"math/rand"
	"sort"

	"repro/internal/ids"
)

// Options tunes the algorithm.
type Options struct {
	// DegreeGap is the maximum tolerated difference between notification
	// degrees (2·phase + all) of two participants before the state is
	// declared type-3 stale and reset. The paper's bound is 1, which is
	// exact under lock-step views but false-positive-prone when local
	// views lag asynchronously; the default of 2 tolerates one view of
	// staleness. Experiment E10 ablates this choice.
	DegreeGap int
	// Patience is the number of steps an idle processor tolerates the
	// system's maximal notification equaling its lastDone record before
	// concluding the record came from corrupted state and clearing it
	// (liveness only; safety never depends on it).
	Patience int
}

// DefaultOptions returns the recommended configuration.
func DefaultOptions() Options { return Options{DegreeGap: 2, Patience: 24} }

// FDSource supplies the failure detector's trusted set (which always
// includes the caller itself).
type FDSource interface {
	Trusted() ids.Set
}

// FDFunc adapts a function to FDSource.
type FDFunc func() ids.Set

// Trusted implements FDSource.
func (f FDFunc) Trusted() ids.Set { return f() }

// RecSA is the per-processor state of Algorithm 3.1. It is a pure step
// machine: the owner calls Step on its timer and HandleMessage on receipt,
// then collects outgoing messages with OutgoingMessage.
type RecSA struct {
	self ids.ID
	fd   FDSource
	opts Options

	config  Config
	prp     Notification
	all     bool
	allSeen map[ids.ID]bool
	views   map[ids.ID]*peerView
	// lastDone remembers the notification whose replacement this
	// processor most recently completed (2→0), so that the bounded tail
	// of its own stale broadcasts cannot be re-adopted and regenerated
	// forever. One slot suffices: estab() already refuses to re-propose
	// the installed configuration.
	lastDone      Notification
	lastDoneValid bool
	// stuckSteps counts consecutive steps in which the system's maximal
	// notification equals lastDone while this processor is idle — the
	// signature of peers waiting on a completion this processor recorded
	// under corrupted state. After Patience steps lastDone is cleared so
	// the cycle can re-run to a joint completion.
	stuckSteps int

	metrics Metrics
}

// New constructs the layer for processor self. initial is the starting
// config value: ConfigOf(...) for a coherent start, Bottom() to bootstrap
// via brute-force stabilization, NotParticipant() for a joining processor.
func New(self ids.ID, fd FDSource, initial Config, opts Options) *RecSA {
	if opts.DegreeGap <= 0 {
		opts.DegreeGap = 2
	}
	if opts.Patience <= 0 {
		opts.Patience = 24
	}
	return &RecSA{
		self:    self,
		fd:      fd,
		opts:    opts,
		config:  initial,
		prp:     DefaultNtf(),
		allSeen: make(map[ids.ID]bool),
		views:   make(map[ids.ID]*peerView),
	}
}

// Metrics returns a copy of the event counters.
func (r *RecSA) Metrics() Metrics { return r.metrics }

// Self returns the owning processor's identifier.
func (r *RecSA) Self() ids.ID { return r.self }

// CurrentConfig returns the raw config[i] value.
func (r *RecSA) CurrentConfig() Config { return r.config }

// Prp returns the processor's own notification (for tests and tracing).
func (r *RecSA) Prp() Notification { return r.prp }

// IsParticipant reports whether this processor broadcasts (config ≠ ]).
func (r *RecSA) IsParticipant() bool { return r.config.IsParticipant() }

// view returns the stored view of peer k, creating the boot-default entry
// on first reference (line 31's interrupt initialization).
func (r *RecSA) view(k ids.ID) *peerView {
	v, ok := r.views[k]
	if !ok {
		v = freshPeerView()
		r.views[k] = v
	}
	return v
}

// trustedSet returns FD[i] ∪ {self}.
func (r *RecSA) trustedSet() ids.Set {
	return r.fd.Trusted().Add(r.self)
}

// participants computes FD[i].part = {pj ∈ FD[i] : config[j] ≠ ]}, using
// the processor's own config for its own entry. A peer counts as a
// participant only if something was actually received from it: the
// configSet macro overwrites all stored config entries, and without the
// received-evidence requirement a silent joiner would be mistaken for a
// participant after a brute-force install, deadlocking noReco().
func (r *RecSA) participants(fdSet ids.Set) ids.Set {
	return fdSet.Filter(func(j ids.ID) bool {
		if j == r.self {
			return r.config.IsParticipant()
		}
		v := r.view(j)
		return v.FDKnown && v.Config.IsParticipant()
	})
}

// Participants exposes the current participant set.
func (r *RecSA) Participants() ids.Set { return r.participants(r.trustedSet()) }

// PeerPart returns the participant set last reported by peer j (known is
// false when nothing was ever received from j). The recMA layer's core()
// computation consumes it.
func (r *RecSA) PeerPart(j ids.ID) (ids.Set, bool) {
	if j == r.self {
		return r.Participants(), true
	}
	v := r.view(j)
	return v.Part, v.FDKnown
}

// prpOf returns the stored notification for k (own value for self).
func (r *RecSA) prpOf(k ids.ID) Notification {
	if k == r.self {
		return r.prp
	}
	return r.view(k).Prp
}

// allOf returns the stored all flag for k.
func (r *RecSA) allOf(k ids.ID) bool {
	if k == r.self {
		return r.all
	}
	return r.view(k).All
}

// configOf returns the stored config for k.
func (r *RecSA) configOf(k ids.ID) Config {
	if k == r.self {
		return r.config
	}
	return r.view(k).Config
}

// degree is the paper's degree(k) = 2·phase + [all].
func (r *RecSA) degree(k ids.ID) int {
	d := 2 * r.prpOf(k).Phase
	if r.allOf(k) {
		d++
	}
	return d
}

// maxNtf returns the lexicographically largest non-default notification
// among the participants (self included), or ok=false when every
// notification is the default (the paper's ⊥ return).
func (r *RecSA) maxNtf(part ids.Set) (Notification, bool) {
	best := DefaultNtf()
	found := false
	part.Each(func(k ids.ID) {
		n := r.prpOf(k)
		if n.IsDefault() {
			return
		}
		if !found || best.Less(n) {
			best = n
			found = true
		}
	})
	return best, found
}

// distinctProperConfigs collects the distinct proper (non-], non-⊥)
// configuration sets among the trusted processors, and reports whether any
// trusted processor holds ⊥.
func (r *RecSA) distinctProperConfigs(fdSet ids.Set) (distinct []ids.Set, anyBottom bool) {
	fdSet.Each(func(k ids.ID) {
		c := r.configOf(k)
		switch c.Kind {
		case KindBottom:
			anyBottom = true
		case KindSet:
			for _, d := range distinct {
				if d.Equal(c.Set) {
					return
				}
			}
			distinct = append(distinct, c.Set)
		}
	})
	return distinct, anyBottom
}

// configSet is the paper's configSet(val) macro: overwrite every local
// config entry with val and clear all notifications (no local active
// notifications may survive).
func (r *RecSA) configSet(val Config) {
	r.config = val
	r.prp = DefaultNtf()
	r.all = false
	r.allSeen = make(map[ids.ID]bool)
	for _, v := range r.views {
		v.Config = val
		v.Prp = DefaultNtf()
		v.All = false
	}
}

// reset starts the brute-force configuration reset (configSet(⊥)).
func (r *RecSA) reset() {
	r.metrics.Resets++
	r.configSet(Bottom())
}

// same is the paper's same(k): k's most recently received participant set
// and notification match this processor's current ones.
func (r *RecSA) same(k ids.ID, part ids.Set) bool {
	v := r.view(k)
	return v.Part.Equal(part) && v.Prp.Equal(r.prp)
}

// echoNoAll is the paper's echoNoAll(k): k echoed this processor's current
// (part, prp).
func (r *RecSA) echoNoAll(k ids.ID, part ids.Set) bool {
	v := r.view(k)
	return v.Echo.Valid && v.Echo.Part.Equal(part) && v.Echo.Prp.Equal(r.prp)
}

// echoFull is the paper's echo(): every participant echoed the full
// (part, prp, all) triple currently held.
func (r *RecSA) echoFull(part ids.Set) bool {
	ok := true
	part.Each(func(k ids.ID) {
		if k == r.self || !ok {
			return
		}
		v := r.view(k)
		if !(v.Echo.Valid && v.Echo.Part.Equal(part) && v.Echo.Prp.Equal(r.prp) && v.Echo.All == r.all) {
			ok = false
		}
	})
	return ok
}

// allSeenFull is the paper's allSeen() macro: every participant's all
// indication has been recorded.
func (r *RecSA) allSeenFull(part ids.Set) bool {
	ok := true
	part.Each(func(k ids.ID) {
		if !ok {
			return
		}
		if k == r.self {
			if !r.all {
				ok = false
			}
			return
		}
		if !r.allSeen[k] {
			ok = false
		}
	})
	return ok
}

// Step executes one iteration of the do-forever loop (lines 24–29).
func (r *RecSA) Step() {
	fdSet := r.trustedSet()
	part := r.participants(fdSet)

	r.cleanNonParticipants(part)
	r.cleanType1(part)
	if r.detectStale(fdSet, part) {
		r.reset()
		// A reset empties the notification state; fall through to the
		// brute-force branch below with recomputed participants (every
		// trusted entry now holds ⊥, hence everyone is a participant).
		part = r.participants(fdSet)
	}

	if _, hasNtf := r.maxNtf(part); !hasNtf || r.config.Kind == KindBottom {
		// No active notification — or this processor is resetting, in
		// which case the reset takes precedence over any replacement
		// residue still visible in the stored views.
		r.bruteForce(fdSet, part)
		return
	}
	if !r.config.IsParticipant() {
		// Non-participants only monitor during delicate replacement.
		return
	}
	r.delicate(part)
}

// cleanNonParticipants implements line 25's "clean after crashes": entries
// of processors outside the participant set revert to (], dfltNtf).
func (r *RecSA) cleanNonParticipants(part ids.Set) {
	for k, v := range r.views {
		if !part.Contains(k) {
			v.Config = NotParticipant()
			v.Prp = DefaultNtf()
			v.All = false
			delete(r.allSeen, k)
		}
	}
}

// cleanType1 removes type-1 stale information: notifications in phase 0
// must not carry a set (Claim 3.1: line 25 removes them locally).
func (r *RecSA) cleanType1(part ids.Set) {
	if r.prp.Phase == 0 && r.prp.HasSet {
		r.metrics.StaleType1++
		r.prp = DefaultNtf()
	}
	if !r.config.IsParticipant() && !r.prp.IsDefault() {
		// A non-participant never takes part in replacement; a
		// non-default own notification can only be corruption.
		r.metrics.StaleType1++
		r.prp = DefaultNtf()
	}
	if r.config.Kind == KindBottom && !r.prp.IsDefault() {
		// A resetting processor cannot be replacing configurations:
		// configSet(⊥) wipes notifications, so this combination only
		// arises from corruption (e.g., a stale notification adopted
		// mid-reset) and would trap the processor in the delicate
		// branch, starving its own reset forever.
		r.metrics.StaleType1++
		r.prp = DefaultNtf()
	}
	for _, v := range r.views {
		if v.Prp.Phase == 0 && v.Prp.HasSet {
			r.metrics.StaleType1++
			v.Prp = DefaultNtf()
		}
		if v.Config.Kind == KindBottom && !v.Prp.IsDefault() {
			r.metrics.StaleType1++
			v.Prp = DefaultNtf()
		}
	}
	_ = part
}

// detectStale evaluates the type-2/3/4 predicates of Definition 3.1 and
// reports whether a reset is required.
func (r *RecSA) detectStale(fdSet, part ids.Set) bool {
	// Type-2: a config field holding the illegal empty set, or a
	// participant reporting ⊥ while this processor is not resetting —
	// the reset wave must reach processors busy with a (possibly stuck)
	// delicate replacement too, so this fires regardless of
	// notifications.
	stale := false
	fdSet.Each(func(k ids.ID) {
		c := r.configOf(k)
		if c.Kind == KindSet && c.Set.Empty() {
			stale = true
		}
		if k != r.self && c.Kind == KindBottom && r.config.Kind != KindBottom {
			stale = true
		}
	})
	if stale {
		r.metrics.StaleType2++
		return true
	}

	// Type-3a: notification degrees of two participants further apart
	// than the tolerated gap.
	var degrees []int
	part.Each(func(k ids.ID) {
		if !r.prpOf(k).IsDefault() || r.allOf(k) {
			degrees = append(degrees, r.degree(k))
		}
	})
	lo, hi := 0, 0
	for i, d := range degrees {
		if i == 0 || d < lo {
			lo = d
		}
		if i == 0 || d > hi {
			hi = d
		}
	}
	if len(degrees) > 1 && hi-lo > r.opts.DegreeGap {
		r.metrics.StaleType3++
		return true
	}

	// Type-3b: a participant one phase ahead that was never recorded in
	// allSeen — impossible in a clean execution (the echo mechanism
	// guarantees the transitioning peer was seen; see DESIGN.md §4).
	if x := r.prp.Phase; x == 1 || x == 2 {
		ahead := false
		part.Each(func(k ids.ID) {
			if k == r.self {
				return
			}
			n := r.prpOf(k)
			// A default notification means "no proposal", not a
			// phase-0 step of the automaton; counting it here would
			// regenerate resets whenever a stale phase-2 notification
			// is re-adopted next to already-idle participants.
			if !n.IsDefault() && n.Phase == (x+1)%3 && !r.allSeen[k] {
				ahead = true
			}
		})
		if ahead {
			r.metrics.StaleType3++
			return true
		}
	}

	// Type-3c: someone is at phase 2 while more than one distinct
	// proposal set is in play.
	phase2 := false
	part.Each(func(k ids.ID) {
		if r.prpOf(k).Phase == 2 {
			phase2 = true
		}
	})
	if phase2 {
		var sets []ids.Set
		part.Each(func(k ids.ID) {
			n := r.prpOf(k)
			if n.IsDefault() || !n.HasSet {
				return
			}
			for _, s := range sets {
				if s.Equal(n.Set) {
					return
				}
			}
			sets = append(sets, n.Set)
		})
		if len(sets) > 1 {
			r.metrics.StaleType3++
			return true
		}
	}

	// Type-4: the configuration contains no active participant while the
	// membership view is stable (guards against false positives from a
	// still-converging failure detector).
	if r.config.Kind == KindSet && !r.config.Set.Empty() {
		stableView := true
		part.Each(func(k ids.ID) {
			if k == r.self || !stableView {
				return
			}
			v := r.view(k)
			if !v.FDKnown || !v.FD.Equal(fdSet) || !v.Part.Equal(part) {
				stableView = false
			}
		})
		if stableView && r.config.Set.Intersect(part).Empty() {
			r.metrics.StaleType4++
			return true
		}
	}
	return false
}

// bruteForce is the no-notification branch (lines 25–26): nullify on
// conflict, and complete a reset once the membership view is uniform.
func (r *RecSA) bruteForce(fdSet, part ids.Set) {
	distinct, _ := r.distinctProperConfigs(fdSet)
	if len(distinct) > 1 {
		r.reset()
		return
	}
	if r.config.Kind != KindBottom {
		return
	}
	// Reset in progress: wait until all broadcasting participants report
	// the same trusted set, then adopt it as the configuration. By the
	// end every active processor (joiners included) is a participant.
	uniform := true
	part.Each(func(k ids.ID) {
		if k == r.self || !uniform {
			return
		}
		v := r.view(k)
		if !v.FDKnown || !v.FD.Equal(fdSet) {
			uniform = false
		}
	})
	if uniform {
		r.metrics.BruteInstalls++
		r.configSet(ConfigOf(fdSet))
	}
}

// delicate runs one iteration of the three-phase replacement automaton
// (Figure 2) for a participant, given that at least one notification is
// active.
func (r *RecSA) delicate(part ids.Set) {
	// Phase-completion adoption for the 2→0 edge: once any participant
	// whose all-indication we recorded has returned to the default
	// notification, the whole system necessarily completed phase 2 (the
	// echo mechanism lets a processor exit only after every other
	// participant acknowledged its final state), so this processor may
	// complete as well. Without this rule the first exiting processor
	// would destroy the same(k) condition the laggards still wait on.
	if r.prp.Phase == 2 {
		done := false
		part.Each(func(k ids.ID) {
			if k != r.self && r.prpOf(k).IsDefault() && r.allSeen[k] {
				done = true
			}
		})
		if done {
			r.metrics.PhaseTransitions++
			r.lastDone = r.prp
			r.lastDoneValid = true
			r.prp = DefaultNtf()
			r.all = false
			r.allSeen = make(map[ids.ID]bool)
			return
		}
	}

	// Patience escape: if the system's maximal notification has equaled
	// this processor's lastDone record for many steps while it sits
	// idle, the record stems from a corrupted completion — clear it so
	// the cycle below can re-run jointly.
	if m, ok := r.maxNtf(part); ok && r.prp.IsDefault() && r.lastDoneValid && r.lastDone.Equal(m) {
		r.stuckSteps++
		if r.stuckSteps > r.opts.Patience {
			r.lastDoneValid = false
			r.stuckSteps = 0
		}
	} else {
		r.stuckSteps = 0
	}

	// Phase adoption ("case 1: prp[i] ← maxNtf()"): converge to the
	// lexicographically largest notification; adopting a phase-2
	// notification also installs its set, since the installation step of
	// the unison transition has already been passed by the leaders.
	if m, ok := r.maxNtf(part); ok && r.prp.Less(m) && !(r.lastDoneValid && r.lastDone.Equal(m)) {
		r.metrics.Adoptions++
		r.prp = m
		if m.Phase == 2 {
			r.config = ConfigOf(m.Set)
		}
		r.all = false
		r.allSeen = make(map[ids.ID]bool)
	}

	// all[i] ← everyone reports and echoes my current (part, prp).
	allNow := true
	part.Each(func(k ids.ID) {
		if k == r.self || !allNow {
			return
		}
		if !(r.echoNoAll(k, part) && r.same(k, part)) {
			allNow = false
		}
	})
	r.all = allNow

	// Record every participant whose all indication (with matching
	// state) has been received.
	part.Each(func(k ids.ID) {
		if k == r.self {
			return
		}
		if r.view(k).All && r.same(k, part) {
			r.allSeen[k] = true
		}
	})

	// Unison transition: everyone echoed my full state and everyone's
	// all indication was seen.
	if !(r.all && r.echoFull(part) && r.allSeenFull(part)) {
		return
	}
	r.metrics.PhaseTransitions++
	r.allSeen = make(map[ids.ID]bool)
	r.all = false
	switch r.prp.Phase {
	case 1:
		// Install the jointly selected proposal.
		r.prp.Phase = 2
		r.config = ConfigOf(r.prp.Set)
		r.metrics.DelicateInstalls++
	case 2:
		// Replacement done: return to monitoring.
		r.lastDone = r.prp
		r.lastDoneValid = true
		r.prp = DefaultNtf()
	default:
		// Phase 0 with an active notification cannot survive adoption;
		// treat as stale.
		r.prp = DefaultNtf()
	}
}

// --- Interface functions (lines 10–14) ---

// chsConfig returns the single configuration value present in the system
// (excluding ]), or Bottom when there is none (the complete-collapse case,
// which starts a reset when adopted).
func (r *RecSA) chsConfig() Config {
	distinct, anyBottom := r.distinctProperConfigs(r.trustedSet())
	switch {
	case len(distinct) == 1 && !anyBottom:
		return ConfigOf(distinct[0])
	case anyBottom:
		return Bottom()
	case len(distinct) > 0:
		return ConfigOf(distinct[0])
	default:
		return Bottom()
	}
}

// NoReco reports that no reconfiguration activity is observable: the
// processor is recognized by all trusted participants, exactly one proper
// configuration exists, the participant views are stable, no reset is in
// progress, and no notification is active. (DESIGN.md §4 note 1: this is
// the ¬(invariant-violation) reading of the paper's line 12.)
func (r *RecSA) NoReco() bool {
	fdSet := r.trustedSet()
	part := r.participants(fdSet)

	if !r.prp.IsDefault() {
		return false
	}
	distinct, anyBottom := r.distinctProperConfigs(fdSet)
	if anyBottom || len(distinct) != 1 {
		return false
	}
	if distinct[0].Intersect(part).Empty() {
		// The quorum configuration must contain at least one active
		// participant (otherwise either the configuration collapsed —
		// type-4 — or this processor simply has not heard from the
		// system yet); either way reconfiguration activity is pending.
		return false
	}
	ok := true
	part.Each(func(k ids.ID) {
		if k == r.self || !ok {
			return
		}
		v := r.view(k)
		if !v.FDKnown || !v.FD.Contains(r.self) {
			ok = false // condition (1): pi not recognized by a trusted participant
			return
		}
		if !v.Part.Equal(part) {
			ok = false // condition (3): participant sets not stabilized
			return
		}
		if !v.Prp.IsDefault() {
			ok = false // condition (5): delicate replacement in progress
			return
		}
		if r.config.IsParticipant() && (!v.Echo.Valid || !v.Echo.Part.Equal(part)) {
			ok = false // peers have not yet echoed this participant's view
			return
		}
	})
	return ok
}

// GetConfig returns the current quorum configuration. During stable periods
// this is the single system-wide configuration; during replacement it is
// the local config[i] (which may be ⊥ or ] — callers check Kind).
func (r *RecSA) GetConfig() Config {
	if r.NoReco() {
		return r.chsConfig()
	}
	return r.config
}

// Quorum returns the current proper configuration set, if one is in place.
func (r *RecSA) Quorum() (ids.Set, bool) {
	c := r.GetConfig()
	if c.Kind == KindSet && !c.Set.Empty() {
		return c.Set, true
	}
	return ids.Set{}, false
}

// Estab requests the replacement of the current configuration with set
// (line 13). Only participants may propose; the request is ignored while a
// reconfiguration is in progress or when set is empty or equals the current
// configuration. It reports whether the proposal was accepted.
func (r *RecSA) Estab(set ids.Set) bool {
	if set.Empty() || !r.config.IsParticipant() || !r.NoReco() {
		r.metrics.EstabRejected++
		return false
	}
	if r.config.Kind == KindSet && r.config.Set.Equal(set) {
		r.metrics.EstabRejected++
		return false
	}
	r.metrics.EstabAccepted++
	r.prp = Notification{Phase: 1, HasSet: true, Set: set}
	r.all = false
	r.allSeen = make(map[ids.ID]bool)
	return true
}

// Participate turns a joining processor into a participant (line 14),
// adopting the single system configuration. It reports success.
func (r *RecSA) Participate() bool {
	if !r.NoReco() {
		r.metrics.ParticipateDenied++
		return false
	}
	r.metrics.ParticipateOK++
	r.config = r.chsConfig()
	return true
}

// OutgoingMessage builds the line-29 broadcast payload for peer `to`, or
// ok=false when this processor must stay silent (non-participant).
func (r *RecSA) OutgoingMessage(to ids.ID) (Message, bool) {
	if !r.config.IsParticipant() {
		return Message{}, false
	}
	fdSet := r.trustedSet()
	part := r.participants(fdSet)
	v := r.view(to)
	return Message{
		FD:     fdSet,
		Part:   part,
		Config: r.config,
		Prp:    r.prp,
		All:    r.all,
		Echo: Echo{
			Valid: v.FDKnown,
			Part:  v.Part,
			Prp:   v.Prp,
			All:   v.All,
		},
	}, true
}

// HandleMessage stores a received broadcast (line 30).
func (r *RecSA) HandleMessage(from ids.ID, m Message) {
	if from == r.self || !from.Valid() {
		return
	}
	v := r.view(from)
	v.FD = m.FD
	v.FDKnown = true
	v.Part = m.Part
	v.Config = m.Config
	v.Prp = m.Prp
	v.All = m.All
	v.Echo = m.Echo
}

// CorruptState randomizes the entire recSA state — the transient-fault
// injection hook for the stabilization experiments. universe bounds the
// identifiers that corrupted sets may mention.
func (r *RecSA) CorruptState(rng *rand.Rand, universe ids.Set) {
	randomSet := func() ids.Set {
		out := ids.Set{}
		universe.Each(func(id ids.ID) {
			if rng.Intn(2) == 0 {
				out = out.Add(id)
			}
		})
		return out
	}
	randomConfig := func() Config {
		switch rng.Intn(4) {
		case 0:
			return Bottom()
		case 1:
			return ConfigOf(randomSet())
		case 2:
			return ConfigOf(ids.Set{}) // illegal empty set
		default:
			return ConfigOf(randomSet())
		}
	}
	randomNtf := func() Notification {
		n := Notification{Phase: rng.Intn(3)}
		if rng.Intn(2) == 0 {
			n.HasSet = true
			n.Set = randomSet()
		}
		return n
	}
	r.config = randomConfig()
	r.prp = randomNtf()
	r.lastDone = randomNtf()
	r.lastDoneValid = rng.Intn(2) == 0
	r.all = rng.Intn(2) == 0
	r.allSeen = make(map[ids.ID]bool)
	universe.Each(func(id ids.ID) {
		if rng.Intn(2) == 0 {
			r.allSeen[id] = true
		}
	})
	order := make([]ids.ID, 0, len(r.views))
	for k := range r.views {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, k := range order {
		v := r.views[k]
		v.Config = randomConfig()
		v.Prp = randomNtf()
		v.All = rng.Intn(2) == 0
		v.Echo = Echo{Valid: rng.Intn(2) == 0, Part: randomSet(), Prp: randomNtf(), All: rng.Intn(2) == 0}
		v.FD = randomSet()
		v.FDKnown = rng.Intn(2) == 0
		v.Part = randomSet()
	}
}
