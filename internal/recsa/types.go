// Package recsa implements Algorithm 3.1 of the paper, the Reconfiguration
// Stability Assurance layer: a self-stabilizing algorithm guaranteeing that
// (1) all active processors eventually hold identical copies of a single
// quorum configuration, (2) when participants ask to replace the current
// configuration the algorithm selects exactly one proposal and installs it,
// and (3) joining processors eventually become participants.
//
// The layer combines two techniques. Brute-force stabilization detects
// stale information (Definition 3.1's four types) and drives a global reset
// in which ⊥ propagates to every config field until all active processors
// adopt their failure-detector set as the new configuration. Delicate
// replacement is the three-phase automaton of Figure 2 — select a single
// proposal, install it, return to monitoring — synchronized in unison via
// the echo/allSeen mechanism so that no processor starts a phase before all
// active participants have completed the previous one.
//
// The arXiv pseudocode of Algorithm 3.1 is partially garbled; DESIGN.md §4
// documents the reconstructed choices (noReco polarity, phase-adoption rule,
// allSeen accumulation, degree-gap direction), each anchored to the proof
// steps in §3.1.2 of the paper.
package recsa

import (
	"fmt"

	"repro/internal/ids"
)

// ConfigKind discriminates the three values a config field can hold.
type ConfigKind int

const (
	// KindNotParticipant is the paper's ] marker: the processor has not
	// joined the computation (it receives but never broadcasts).
	KindNotParticipant ConfigKind = iota + 1
	// KindBottom is ⊥: a configuration reset is in progress.
	KindBottom
	// KindSet is a proper (possibly stale) configuration member set.
	KindSet
)

// Config is one entry of the config[] array.
type Config struct {
	Kind ConfigKind
	Set  ids.Set // meaningful only when Kind == KindSet
}

// NotParticipant returns the ] value.
func NotParticipant() Config { return Config{Kind: KindNotParticipant} }

// Bottom returns the ⊥ value.
func Bottom() Config { return Config{Kind: KindBottom} }

// ConfigOf wraps a proper member set.
func ConfigOf(set ids.Set) Config { return Config{Kind: KindSet, Set: set} }

// IsParticipant reports whether this config value marks a participant
// (anything other than ]).
func (c Config) IsParticipant() bool { return c.Kind == KindBottom || c.Kind == KindSet }

// Equal compares config values structurally.
func (c Config) Equal(o Config) bool {
	if c.Kind != o.Kind {
		return false
	}
	if c.Kind == KindSet {
		return c.Set.Equal(o.Set)
	}
	return true
}

func (c Config) String() string {
	switch c.Kind {
	case KindNotParticipant:
		return "]"
	case KindBottom:
		return "⊥"
	case KindSet:
		return c.Set.String()
	default:
		return fmt.Sprintf("Config(%d)", int(c.Kind))
	}
}

// Notification is a configuration-replacement notification
// prp = ⟨phase ∈ {0,1,2}, set ⊆ P or ⊥⟩.
type Notification struct {
	Phase  int
	HasSet bool    // false encodes set = ⊥
	Set    ids.Set // meaningful only when HasSet
}

// DefaultNtf is the paper's dfltNtf = ⟨0,⊥⟩, meaning "no proposal".
func DefaultNtf() Notification { return Notification{Phase: 0} }

// IsDefault reports whether n encodes "no proposal".
func (n Notification) IsDefault() bool { return n.Phase == 0 && !n.HasSet }

// Equal compares notifications structurally.
func (n Notification) Equal(o Notification) bool {
	if n.Phase != o.Phase || n.HasSet != o.HasSet {
		return false
	}
	return !n.HasSet || n.Set.Equal(o.Set)
}

// Less implements the paper's lexicographical proposal order ≺lex:
// first by phase, then by the proposed set viewed as an ascending tuple.
// A ⊥ set orders below any proper set.
func (n Notification) Less(o Notification) bool {
	if n.Phase != o.Phase {
		return n.Phase < o.Phase
	}
	if n.HasSet != o.HasSet {
		return !n.HasSet
	}
	if !n.HasSet {
		return false
	}
	return n.Set.Compare(o.Set) < 0
}

func (n Notification) String() string {
	if !n.HasSet {
		return fmt.Sprintf("⟨%d,⊥⟩", n.Phase)
	}
	return fmt.Sprintf("⟨%d,%s⟩", n.Phase, n.Set)
}

// Echo is the triple (part, prp, all) that a peer mirrors back: the most
// recent values it received from this processor.
type Echo struct {
	Valid bool // false until the peer has echoed at least once
	Part  ids.Set
	Prp   Notification
	All   bool
}

// Message is the state broadcast at the end of every do-forever iteration
// (line 29): ⟨FD, config, prp, all, echo⟩, where the echo component carries
// the sender's most recent view of the *receiver's* (part, prp, all). Every
// field is bounded by O(N) identifiers, giving the bounded message size the
// paper requires.
type Message struct {
	FD     ids.Set // trusted processors
	Part   ids.Set // participants among them
	Config Config
	Prp    Notification
	All    bool
	Echo   Echo
}

// peerView is everything processor pi stores about pj (the j-th entries of
// the paper's arrays).
type peerView struct {
	FD      ids.Set
	FDKnown bool // whether anything was ever received from the peer
	Part    ids.Set
	Config  Config
	Prp     Notification
	All     bool
	Echo    Echo
}

func freshPeerView() *peerView {
	// Line 31 (boot interrupt): (config[k], prp[k], all[k]) ← (], dflt, false).
	return &peerView{Config: NotParticipant(), Prp: DefaultNtf()}
}

// Metrics counts algorithm-level events for tests and benchmarks.
type Metrics struct {
	Resets            uint64 // configSet(⊥) invocations
	BruteInstalls     uint64 // configSet(FD) completions of a reset
	PhaseTransitions  uint64 // unison phase advances
	DelicateInstalls  uint64 // config ← prp.set installations
	Adoptions         uint64 // prp[i] ← maxNtf() adoptions
	StaleType1        uint64
	StaleType2        uint64
	StaleType3        uint64
	StaleType4        uint64
	EstabAccepted     uint64
	EstabRejected     uint64
	ParticipateOK     uint64
	ParticipateDenied uint64
}
