package recsa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// These regression tests pin down stabilization rules that were added
// after fault-campaign deadlocks were found (see the code comments in
// cleanType1, detectStale and delicate): each models a concrete corrupted
// state that once livelocked the system.

func TestBottomWithNotificationNormalized(t *testing.T) {
	l := newLockstep(4)
	l.rounds(5)
	// Corrupt p3 into the contradictory "resetting while replacing"
	// state: config = ⊥ with an active notification.
	l.nodes[3].config = Bottom()
	l.nodes[3].prp = Notification{Phase: 1, HasSet: true, Set: ids.NewSet(1, 4)}
	cfg := l.runUntilAgreed(t, 300)
	if cfg.Empty() {
		t.Fatal("no agreement")
	}
}

func TestBottomPropagatesIntoDelicateBranch(t *testing.T) {
	l := newLockstep(4)
	l.rounds(5)
	// p1 and p2 are busy with a replacement; p3 is resetting. The reset
	// must reach the busy processors (they cannot be allowed to wait for
	// a cohort that will never answer).
	prp := Notification{Phase: 2, HasSet: true, Set: ids.NewSet(1, 2)}
	l.nodes[1].prp = prp
	l.nodes[2].prp = prp
	l.nodes[3].configSet(Bottom())
	cfg := l.runUntilAgreed(t, 400)
	if cfg.Empty() {
		t.Fatal("no agreement")
	}
}

func TestPatienceClearsCorruptedLastDone(t *testing.T) {
	l := newLockstep(4)
	l.rounds(5)
	// p1 "completed" a notification the others are genuinely stuck at —
	// the corrupted-allSeen deadlock. Without the patience escape, p1
	// refuses to re-adopt forever.
	stuck := Notification{Phase: 2, HasSet: true, Set: ids.NewSet(2, 3)}
	for id := ids.ID(2); id <= 4; id++ {
		l.nodes[id].prp = stuck
		l.nodes[id].config = ConfigOf(ids.NewSet(2, 3))
	}
	l.nodes[1].lastDone = stuck
	l.nodes[1].lastDoneValid = true
	l.nodes[1].config = ConfigOf(ids.NewSet(2, 3))
	cfg := l.runUntilAgreed(t, 600)
	if cfg.Empty() {
		t.Fatal("no agreement")
	}
}

func TestQuickHarshCorruptionCampaign(t *testing.T) {
	// A stronger variant of the arbitrary-state property test: besides
	// randomizing all state, force the specific adversarial shapes the
	// regression tests above cover, at random.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := newLockstep(3 + rng.Intn(3))
		universe := l.alive
		for _, n := range l.nodes {
			n.CorruptState(rng, universe)
			switch rng.Intn(4) {
			case 0:
				n.config = Bottom()
				n.prp = Notification{Phase: 1 + rng.Intn(2), HasSet: true, Set: universe}
			case 1:
				n.lastDone = Notification{Phase: 2, HasSet: true, Set: universe}
				n.lastDoneValid = true
				n.prp = DefaultNtf()
			case 2:
				n.prp = Notification{Phase: 2, HasSet: true, Set: universe}
				n.all = true
			}
		}
		for i := 0; i < 800; i++ {
			l.round()
			if _, ok := l.agreedConfig(); ok {
				return true
			}
		}
		_, ok := l.agreedConfig()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAgreementIsStableUnderMoreRounds(t *testing.T) {
	// Safety after convergence: once agreed, the config never changes
	// without an estab() — even under continued execution from any
	// recovered state.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := newLockstep(3 + rng.Intn(3))
		for _, n := range l.nodes {
			n.CorruptState(rng, l.alive)
		}
		var agreed ids.Set
		ok := false
		for i := 0; i < 800; i++ {
			l.round()
			if cfg, now := l.agreedConfig(); now {
				agreed, ok = cfg, true
				break
			}
		}
		if !ok {
			return false
		}
		for i := 0; i < 60; i++ {
			l.round()
			cfg, now := l.agreedConfig()
			if !now || !cfg.Equal(agreed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
