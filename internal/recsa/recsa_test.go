package recsa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// lockstep is a synchronous harness: perfect channels, one round = every
// node steps, then all messages are exchanged. It isolates the algorithm's
// logic from link/failure-detector behavior (the integration tests in
// internal/core cover the full stack).
type lockstep struct {
	nodes   map[ids.ID]*RecSA
	alive   ids.Set
	trusted func(self ids.ID) ids.Set
}

func newLockstep(n int) *lockstep {
	l := &lockstep{nodes: make(map[ids.ID]*RecSA)}
	l.alive = ids.Range(1, ids.ID(n))
	l.trusted = func(self ids.ID) ids.Set { return l.alive }
	for i := 1; i <= n; i++ {
		id := ids.ID(i)
		l.nodes[id] = New(id, FDFunc(func() ids.Set { return l.trusted(id) }), ConfigOf(l.alive), DefaultOptions())
	}
	return l
}

// round performs one synchronous round: step all, then deliver all.
func (l *lockstep) round() {
	l.alive.Each(func(id ids.ID) {
		if n, ok := l.nodes[id]; ok {
			n.Step()
		}
	})
	type envelope struct {
		from, to ids.ID
		msg      Message
	}
	var out []envelope
	l.alive.Each(func(from ids.ID) {
		n, ok := l.nodes[from]
		if !ok {
			return
		}
		l.trusted(from).Each(func(to ids.ID) {
			if to == from || !l.alive.Contains(to) {
				return
			}
			if m, ok := n.OutgoingMessage(to); ok {
				out = append(out, envelope{from, to, m})
			}
		})
	})
	for _, e := range out {
		l.nodes[e.to].HandleMessage(e.from, e.msg)
	}
}

func (l *lockstep) rounds(n int) {
	for i := 0; i < n; i++ {
		l.round()
	}
}

// agreedConfig reports whether every alive node holds the same proper
// config with no activity, returning it.
func (l *lockstep) agreedConfig() (ids.Set, bool) {
	var agreed ids.Set
	first, ok := true, true
	l.alive.Each(func(id ids.ID) {
		n := l.nodes[id]
		c := n.CurrentConfig()
		if c.Kind != KindSet || !n.NoReco() {
			ok = false
			return
		}
		if first {
			agreed, first = c.Set, false
		} else if !agreed.Equal(c.Set) {
			ok = false
		}
	})
	return agreed, ok && !first
}

func (l *lockstep) runUntilAgreed(t *testing.T, maxRounds int) ids.Set {
	t.Helper()
	for i := 0; i < maxRounds; i++ {
		if cfg, ok := l.agreedConfig(); ok {
			return cfg
		}
		l.round()
	}
	cfg, ok := l.agreedConfig()
	if !ok {
		for id, n := range l.nodes {
			t.Logf("%v: cfg=%v prp=%v noReco=%v m=%+v", id, n.CurrentConfig(), n.Prp(), n.NoReco(), n.Metrics())
		}
		t.Fatalf("no agreement after %d rounds", maxRounds)
	}
	return cfg
}

func TestCoherentStartIsStable(t *testing.T) {
	l := newLockstep(5)
	l.rounds(20)
	cfg, ok := l.agreedConfig()
	if !ok || !cfg.Equal(ids.Range(1, 5)) {
		t.Fatalf("agreement lost: %v %v", cfg, ok)
	}
	for id, n := range l.nodes {
		if n.Metrics().Resets != 0 {
			t.Errorf("%v reset from coherent start", id)
		}
	}
}

func TestBottomBootstrap(t *testing.T) {
	l := newLockstep(4)
	for _, n := range l.nodes {
		n.configSet(Bottom())
	}
	cfg := l.runUntilAgreed(t, 100)
	if !cfg.Equal(ids.Range(1, 4)) {
		t.Fatalf("bootstrap config = %v", cfg)
	}
}

func TestConflictTriggersResetAndConverges(t *testing.T) {
	l := newLockstep(4)
	// Nodes start with two different proper configs: a conflict.
	l.nodes[1].config = ConfigOf(ids.NewSet(1, 2))
	l.nodes[2].config = ConfigOf(ids.NewSet(1, 2))
	l.nodes[3].config = ConfigOf(ids.NewSet(3, 4))
	l.nodes[4].config = ConfigOf(ids.NewSet(3, 4))
	cfg := l.runUntilAgreed(t, 200)
	if !cfg.Equal(ids.Range(1, 4)) {
		t.Fatalf("converged to %v, want FD set", cfg)
	}
	someReset := false
	for _, n := range l.nodes {
		if n.Metrics().Resets > 0 {
			someReset = true
		}
	}
	if !someReset {
		t.Fatal("conflict should have caused at least one reset")
	}
}

func TestEmptyConfigIsType2Stale(t *testing.T) {
	l := newLockstep(3)
	l.nodes[2].config = ConfigOf(ids.Set{})
	l.round()
	if l.nodes[2].Metrics().StaleType2 == 0 {
		t.Fatal("empty config not detected as type-2 stale")
	}
	cfg := l.runUntilAgreed(t, 200)
	if !cfg.Equal(ids.Range(1, 3)) {
		t.Fatalf("recovered to %v", cfg)
	}
}

func TestType1CleanedLocally(t *testing.T) {
	l := newLockstep(3)
	l.nodes[1].prp = Notification{Phase: 0, HasSet: true, Set: ids.NewSet(1)}
	l.round()
	if !l.nodes[1].Prp().IsDefault() {
		t.Fatal("type-1 stale notification not cleaned")
	}
	if l.nodes[1].Metrics().Resets != 0 {
		t.Fatal("type-1 must not cause a reset")
	}
}

func TestDelicateReplacementLockstep(t *testing.T) {
	l := newLockstep(5)
	l.rounds(5)
	target := ids.NewSet(1, 2, 3)
	if !l.nodes[1].Estab(target) {
		t.Fatalf("estab rejected, noReco=%v", l.nodes[1].NoReco())
	}
	for i := 0; i < 200; i++ {
		l.round()
		if cfg, ok := l.agreedConfig(); ok && cfg.Equal(target) {
			for id, n := range l.nodes {
				if n.Metrics().Resets != 0 {
					t.Errorf("%v used brute force during delicate replacement", id)
				}
			}
			return
		}
	}
	t.Fatalf("replacement never completed")
}

func TestConcurrentProposalsSelectMaxLex(t *testing.T) {
	l := newLockstep(5)
	l.rounds(5)
	a := ids.NewSet(1, 2, 3)
	b := ids.NewSet(2, 3, 4) // lexicographically larger than a
	if !l.nodes[1].Estab(a) || !l.nodes[4].Estab(b) {
		t.Fatal("estab rejected")
	}
	for i := 0; i < 300; i++ {
		l.round()
		if cfg, ok := l.agreedConfig(); ok {
			if !cfg.Equal(b) {
				t.Fatalf("installed %v, want the lexicographically larger %v", cfg, b)
			}
			return
		}
	}
	t.Fatal("no agreement")
}

func TestEstabRejectedDuringReplacement(t *testing.T) {
	l := newLockstep(4)
	l.rounds(5)
	if !l.nodes[1].Estab(ids.NewSet(1, 2)) {
		t.Fatal("first estab rejected")
	}
	l.rounds(2)
	if l.nodes[2].Estab(ids.NewSet(3, 4)) {
		t.Fatal("estab accepted while a replacement is in progress")
	}
}

func TestEstabRejectsCurrentAndEmpty(t *testing.T) {
	l := newLockstep(3)
	l.rounds(5)
	if l.nodes[1].Estab(ids.Set{}) {
		t.Fatal("empty set accepted")
	}
	if l.nodes[1].Estab(ids.Range(1, 3)) {
		t.Fatal("current configuration accepted as a proposal")
	}
}

func TestNoRecoFalseDuringReplacement(t *testing.T) {
	l := newLockstep(4)
	l.rounds(5)
	if !l.nodes[1].NoReco() {
		t.Fatal("noReco must hold in steady state")
	}
	l.nodes[1].Estab(ids.NewSet(1, 2))
	l.round()
	l.round()
	if l.nodes[2].NoReco() {
		t.Fatal("noReco must be false while a notification circulates")
	}
}

func TestJoinerParticipates(t *testing.T) {
	l := newLockstep(4)
	// p9 joins as a non-participant.
	joiner := New(9, FDFunc(func() ids.Set { return l.alive.Add(9) }), NotParticipant(), DefaultOptions())
	l.nodes[9] = joiner
	l.alive = l.alive.Add(9)
	l.rounds(5)
	if joiner.IsParticipant() {
		t.Fatal("joiner participated without Participate()")
	}
	if !joiner.NoReco() {
		t.Fatalf("joiner must observe steady state; cfg=%v", joiner.chsConfig())
	}
	if !joiner.Participate() {
		t.Fatal("Participate refused")
	}
	if !joiner.IsParticipant() {
		t.Fatal("joiner still not a participant")
	}
	if got := joiner.CurrentConfig(); got.Kind != KindSet || !got.Set.Equal(ids.Range(1, 4)) {
		t.Fatalf("joiner adopted %v", got)
	}
	l.rounds(20)
	if cfg, ok := l.agreedConfig(); !ok || !cfg.Equal(ids.Range(1, 4)) {
		t.Fatalf("join perturbed the configuration: %v %v", cfg, ok)
	}
}

func TestCrashDuringReplacementStillCompletes(t *testing.T) {
	l := newLockstep(5)
	l.rounds(5)
	if !l.nodes[1].Estab(ids.NewSet(1, 2, 3, 4)) {
		t.Fatal("estab rejected")
	}
	l.rounds(2)
	// p5 crashes mid-replacement: FD eventually excludes it.
	l.alive = l.alive.Remove(5)
	delete(l.nodes, 5)
	for i := 0; i < 300; i++ {
		l.round()
		if cfg, ok := l.agreedConfig(); ok && cfg.Equal(ids.NewSet(1, 2, 3, 4)) {
			return
		}
	}
	t.Fatal("replacement stalled after a crash")
}

func TestTotalCollapseType4Reset(t *testing.T) {
	l := newLockstep(4)
	// Config consists entirely of processors that are gone.
	dead := ids.NewSet(7, 8)
	for _, n := range l.nodes {
		n.config = ConfigOf(dead)
	}
	cfg := l.runUntilAgreed(t, 300)
	if !cfg.Equal(ids.Range(1, 4)) {
		t.Fatalf("recovered to %v", cfg)
	}
	someType4 := false
	for _, n := range l.nodes {
		if n.Metrics().StaleType4 > 0 {
			someType4 = true
		}
	}
	if !someType4 {
		t.Fatal("collapse not detected as type-4")
	}
}

func TestQuickArbitraryStateConverges(t *testing.T) {
	// Theorem 3.15 (convergence), property form: from ANY corrupted
	// state, the lock-step system reaches agreement on a proper config.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := newLockstep(3 + rng.Intn(3))
		universe := l.alive
		for _, n := range l.nodes {
			n.CorruptState(rng, universe)
		}
		for i := 0; i < 600; i++ {
			l.round()
			if _, ok := l.agreedConfig(); ok {
				return true
			}
		}
		_, ok := l.agreedConfig()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClosureAfterConvergence(t *testing.T) {
	// Theorem 3.16 (closure): once agreed with no stale info, further
	// rounds keep agreement and cause no resets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := newLockstep(3 + rng.Intn(4))
		l.rounds(10)
		cfg0, ok := l.agreedConfig()
		if !ok {
			return false
		}
		resets0 := uint64(0)
		for _, n := range l.nodes {
			resets0 += n.Metrics().Resets
		}
		l.rounds(30)
		cfg1, ok := l.agreedConfig()
		if !ok || !cfg1.Equal(cfg0) {
			return false
		}
		resets1 := uint64(0)
		for _, n := range l.nodes {
			resets1 += n.Metrics().Resets
		}
		return resets1 == resets0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNotificationLexOrder(t *testing.T) {
	dflt := DefaultNtf()
	n1a := Notification{Phase: 1, HasSet: true, Set: ids.NewSet(1, 2)}
	n1b := Notification{Phase: 1, HasSet: true, Set: ids.NewSet(1, 3)}
	n2a := Notification{Phase: 2, HasSet: true, Set: ids.NewSet(1, 2)}
	tests := []struct {
		a, b Notification
		want bool
	}{
		{dflt, n1a, true},
		{n1a, dflt, false},
		{n1a, n1b, true},
		{n1b, n1a, false},
		{n1b, n2a, true}, // phase dominates set
		{n1a, n1a, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestConfigValues(t *testing.T) {
	if NotParticipant().IsParticipant() {
		t.Fatal("] counted as participant")
	}
	if !Bottom().IsParticipant() {
		t.Fatal("⊥ must still be a participant")
	}
	if !ConfigOf(ids.NewSet(1)).IsParticipant() {
		t.Fatal("proper set must be a participant")
	}
	if !NotParticipant().Equal(NotParticipant()) || Bottom().Equal(NotParticipant()) {
		t.Fatal("Equal broken")
	}
	if ConfigOf(ids.NewSet(1)).Equal(ConfigOf(ids.NewSet(2))) {
		t.Fatal("distinct sets compare equal")
	}
	for _, s := range []string{NotParticipant().String(), Bottom().String(), ConfigOf(ids.NewSet(1)).String()} {
		if s == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestGetConfigDuringSteadyState(t *testing.T) {
	l := newLockstep(3)
	l.rounds(5)
	got := l.nodes[1].GetConfig()
	if got.Kind != KindSet || !got.Set.Equal(ids.Range(1, 3)) {
		t.Fatalf("GetConfig = %v", got)
	}
	q, ok := l.nodes[1].Quorum()
	if !ok || !q.Equal(ids.Range(1, 3)) {
		t.Fatalf("Quorum = %v %v", q, ok)
	}
}

func TestPeerPart(t *testing.T) {
	l := newLockstep(3)
	l.rounds(3)
	p, known := l.nodes[1].PeerPart(2)
	if !known || !p.Equal(ids.Range(1, 3)) {
		t.Fatalf("PeerPart(2) = %v %v", p, known)
	}
	if _, known := l.nodes[1].PeerPart(99); known {
		t.Fatal("unknown peer reported as known")
	}
}
