package label

import (
	"repro/internal/core"
	"repro/internal/ids"
)

// Message is the label exchange payload of Algorithm 4.1 (line 17):
// ⟨max[i], max[k]⟩ — the sender's maximal pair and its echo of the
// receiver's last reported pair.
type Message struct {
	SentMax  Pair
	HaveSent bool
	LastSent Pair
	HaveLast bool
}

// Manager is Algorithm 4.1: the reconfiguration-aware wrapper that runs the
// labeling scheme among the current configuration's members, rebuilding the
// bounded structures whenever recSA reports a completed reconfiguration. It
// plugs into a core.Node as its application.
type Manager struct {
	self ids.ID
	// OptsFor sizes the store for a given configuration size; nil uses
	// DefaultStoreOptions with the default link-capacity bound.
	OptsFor func(v int) StoreOptions

	store     *Store
	conf      ids.Set
	confValid bool
}

var _ core.App = (*Manager)(nil)

// NewManager builds the labeling application for processor self.
func NewManager(self ids.ID) *Manager {
	return &Manager{self: self}
}

// Store exposes the current label store (nil before the first
// configuration is learned). Tests and the counter layer use it.
func (m *Manager) Store() *Store { return m.store }

// Ready reports whether the processor currently runs the labeling scheme
// (it is a member of an agreed configuration).
func (m *Manager) Ready() bool { return m.store != nil && m.confValid }

// LocalMax returns the processor's current maximal label, if the scheme is
// running.
func (m *Manager) LocalMax() (Pair, bool) {
	if !m.Ready() {
		return Pair{}, false
	}
	return m.store.LocalMax()
}

func (m *Manager) storeOpts(v int) StoreOptions {
	if m.OptsFor != nil {
		return m.OptsFor(v)
	}
	return DefaultStoreOptions(v, 8)
}

// confChange reports whether the agreed configuration differs from the one
// the structures were built for (the paper's confChange()).
func (m *Manager) confChange(q ids.Set) bool {
	return !m.confValid || !m.conf.Equal(q)
}

// Tick implements core.App: lines 8–14 of Algorithm 4.1. Only configuration
// members run the scheme; after a reconfiguration the structures are
// rebuilt and the local maximum re-derived.
func (m *Manager) Tick(n *core.Node) {
	q, ok := n.Quorum()
	if !ok || !n.NoReco() {
		return // during reconfiguration: take no actions
	}
	if !q.Contains(m.self) {
		// Not a member: drop the structures entirely so stale labels
		// cannot leak into a later membership.
		m.store = nil
		m.confValid = false
		return
	}
	if m.confChange(q) {
		m.conf = q
		m.confValid = true
		if m.store == nil {
			m.store = NewStore(m.self, q, m.storeOpts(q.Size()))
		} else {
			m.store.Rebuild(q)
		}
	}
}

// Outgoing implements core.App: line 17's transmission of
// ⟨max[i], max[k]⟩, gated on a steady configuration.
func (m *Manager) Outgoing(to ids.ID, n *core.Node) any {
	q, ok := n.Quorum()
	if !ok || !n.NoReco() || !m.Ready() || m.confChange(q) {
		return nil
	}
	if !q.Contains(to) {
		return nil // labels flow only between members
	}
	msg := Message{}
	if p, ok := m.store.LocalMax(); ok {
		if clean, ok := m.store.CleanPair(p); ok {
			msg.SentMax = clean
			msg.HaveSent = true
		}
	}
	if p, ok := m.store.MaxOf(to); ok {
		if clean, ok := m.store.CleanPair(p); ok {
			msg.LastSent = clean
			msg.HaveLast = true
		}
	}
	if !msg.HaveSent && !msg.HaveLast {
		return nil
	}
	return msg
}

// HandleApp implements core.App: lines 18–22's receipt path.
func (m *Manager) HandleApp(from ids.ID, payload any, n *core.Node) {
	msg, ok := payload.(Message)
	if !ok {
		return
	}
	q, okq := n.Quorum()
	if !okq || !n.NoReco() || !m.Ready() || m.confChange(q) || !q.Contains(from) {
		return
	}
	sent, haveSent := msg.SentMax, msg.HaveSent
	if haveSent {
		sent, haveSent = m.store.CleanPair(sent)
	}
	last, haveLast := msg.LastSent, msg.HaveLast
	if haveLast {
		last, haveLast = m.store.CleanPair(last)
	}
	m.store.Receive(sent, haveSent, last, haveLast, from)
}
