package label

import (
	"sort"

	"repro/internal/ids"
)

// StoreOptions sizes the bounded label storage.
type StoreOptions struct {
	// Domain is |D|, the sting domain size. It must exceed k²+k where k
	// is the largest number of labels NextLabel may need to dominate.
	Domain int
	// QueueCap bounds storedLabels[j] for j ≠ self (the paper's v+m).
	QueueCap int
	// OwnQueueCap bounds storedLabels[self] (the paper's v(v²+m)+v).
	OwnQueueCap int
}

// DefaultStoreOptions sizes the store for a configuration of v members and
// link capacity m, following the paper's bounds.
func DefaultStoreOptions(v, m int) StoreOptions {
	if v < 1 {
		v = 1
	}
	own := v*(v*v+m) + v
	k := own + v*(v+m) // everything one processor might ever need to dominate
	return StoreOptions{
		Domain:      k*k + k + 1,
		QueueCap:    v + m,
		OwnQueueCap: own,
	}
}

// Metrics counts labeling events.
type Metrics struct {
	Creations     uint64 // nextLabel() invocations (Theorem 4.4's unit)
	Cancellations uint64
	QueueFlushes  uint64 // staleInfo() wipes
}

// Store is the per-processor label bookkeeping of Algorithm 4.2: the max[]
// array of label pairs and the storedLabels[] array of bounded queues, with
// the receipt action that converges to a global maximal label.
type Store struct {
	self    ids.ID
	opts    StoreOptions
	members ids.Set
	max     map[ids.ID]Pair // max[j]: last pair received from member j; max[self] is the local maximum
	maxSet  map[ids.ID]bool
	queues  map[ids.ID][]Pair // storedLabels[creator], front = most recent
	metrics Metrics
}

// NewStore builds the store for the given configuration member set.
func NewStore(self ids.ID, members ids.Set, opts StoreOptions) *Store {
	if opts.Domain <= 0 {
		opts = DefaultStoreOptions(members.Size(), 8)
	}
	s := &Store{self: self, opts: opts}
	s.Rebuild(members)
	return s
}

// Metrics returns a copy of the counters.
func (s *Store) Metrics() Metrics { return s.metrics }

// Members returns the configuration member set the store is built for.
func (s *Store) Members() ids.Set { return s.members }

// Rebuild adjusts the structures for a new configuration (the paper's
// rebuild(v) + emptyAllQueues() + cleanMax() after a reconfiguration):
// queues are emptied, and max entries of removed members or with
// non-member creators are dropped.
func (s *Store) Rebuild(members ids.Set) {
	s.members = members
	s.queues = make(map[ids.ID][]Pair, members.Size())
	newMax := make(map[ids.ID]Pair, members.Size())
	newSet := make(map[ids.ID]bool, members.Size())
	for j, p := range s.max {
		if !members.Contains(j) || !s.maxSet[j] {
			continue
		}
		if !members.Contains(p.ML.Creator) || (p.Cancel != nil && !members.Contains(p.Cancel.Creator)) {
			continue // cleanMax: labels by non-member creators are voided
		}
		newMax[j] = p
		newSet[j] = true
	}
	s.max, s.maxSet = newMax, newSet
	// Re-derive the local maximum from what survived (line 14).
	s.Receive(Pair{}, false, Pair{}, false, s.self)
}

// CleanPair implements cleanLP: a pair mentioning a non-member creator is
// voided (reported as absent).
func (s *Store) CleanPair(p Pair) (Pair, bool) {
	if !s.members.Contains(p.ML.Creator) {
		return Pair{}, false
	}
	if p.Cancel != nil && !s.members.Contains(p.Cancel.Creator) {
		return Pair{}, false
	}
	return p, true
}

// LocalMax returns the processor's current maximal label pair.
func (s *Store) LocalMax() (Pair, bool) {
	p, ok := s.max[s.self]
	return p, ok && s.maxSet[s.self]
}

// MaxOf returns the stored pair for member j.
func (s *Store) MaxOf(j ids.ID) (Pair, bool) {
	p, ok := s.max[j]
	return p, ok && s.maxSet[j]
}

// queueOf returns the stored queue for a creator.
func (s *Store) queueOf(creator ids.ID) []Pair { return s.queues[creator] }

// addFront inserts a pair at the front of creator's queue, enforcing the
// bound and the one-entry-per-ml rule (canceled copies win).
func (s *Store) addFront(creator ids.ID, p Pair) {
	q := s.queues[creator]
	out := make([]Pair, 0, len(q)+1)
	out = append(out, p)
	for _, e := range q {
		if e.ML.Equal(p.ML) {
			if !e.Legit() && p.Legit() {
				out[0] = e // keep the canceled copy
			}
			continue
		}
		out = append(out, e)
	}
	limit := s.opts.QueueCap
	if creator == s.self {
		limit = s.opts.OwnQueueCap
	}
	if len(out) > limit {
		out = out[:limit]
	}
	s.queues[creator] = out
}

// staleInfo reports structurally impossible storage: a queue entry whose
// label was created by a different processor than the queue's owner.
func (s *Store) staleInfo() bool {
	for owner, q := range s.queues {
		for _, p := range q {
			if p.ML.Creator != owner {
				return true
			}
		}
	}
	return false
}

// Receive is the labelReceiptAction of Algorithm 4.2. sentMax is the
// sender's maximal pair; lastSent is the sender's copy of what this
// processor last sent it (the echo used to learn about cancellations of our
// own maximum). from == self re-derives the local maximum (used after
// Rebuild). have* report presence (the paper's ⊥).
func (s *Store) Receive(sentMax Pair, haveSent bool, lastSent Pair, haveLast bool, from ids.ID) {
	// Lines 18–19: record the sender's maximum; adopt a cancellation of
	// our own current maximum.
	if haveSent && s.members.Contains(from) {
		s.max[from] = sentMax
		s.maxSet[from] = true
	}
	if haveLast && !lastSent.Legit() {
		if own, ok := s.LocalMax(); ok && own.ML.Equal(lastSent.ML) {
			s.max[s.self] = lastSent
			s.maxSet[s.self] = true
			s.metrics.Cancellations++
		}
	}

	// Line 20: impossible storage → flush. Oversized queues (only
	// possible in an arbitrary initial state) are re-trimmed to the
	// bound, as bounded local storage must survive transient faults.
	if s.staleInfo() {
		s.metrics.QueueFlushes++
		s.queues = make(map[ids.ID][]Pair, s.members.Size())
	}
	for owner, q := range s.queues {
		limit := s.opts.QueueCap
		if owner == s.self {
			limit = s.opts.OwnQueueCap
		}
		if len(q) > limit {
			s.queues[owner] = q[:limit]
		}
	}

	// Line 21: every known max must be recorded in its creator's queue.
	for _, j := range s.maxOrder() {
		p := s.max[j]
		if !s.recorded(p) {
			s.addFront(p.ML.Creator, p)
		}
	}

	// Line 22: a stored legit pair that does not dominate some other
	// entry of its queue is canceled by that entry.
	for _, owner := range s.queueOrder() {
		q := s.queues[owner]
		for i, lp := range q {
			if !lp.Legit() {
				continue
			}
			for _, other := range q {
				if other.ML.Equal(lp.ML) {
					continue
				}
				if !other.ML.Less(lp.ML) {
					q[i] = lp.CanceledBy(other.ML)
					s.metrics.Cancellations++
					break
				}
			}
		}
		s.queues[owner] = q
	}

	// Line 23: propagate cancellations seen in max[] into the queues.
	for _, j := range s.maxOrder() {
		p := s.max[j]
		if p.Legit() {
			continue
		}
		q := s.queueOf(p.ML.Creator)
		for i, lp := range q {
			if lp.ML.Equal(p.ML) && lp.Legit() {
				q[i] = p
			}
		}
	}

	// Line 25: a legit max[] entry whose queue copy is canceled adopts
	// the cancellation.
	for _, j := range s.maxOrder() {
		p := s.max[j]
		if !p.Legit() {
			continue
		}
		for _, lp := range s.queueOf(p.ML.Creator) {
			if lp.ML.Equal(p.ML) && !lp.Legit() {
				s.max[j] = lp
				s.metrics.Cancellations++
				break
			}
		}
	}

	// Lines 26–27: adopt the globally maximal legit label, or fall back
	// to (possibly creating) an own label.
	var legit []Label
	for _, j := range s.maxOrder() {
		if p := s.max[j]; p.Legit() {
			legit = append(legit, p.ML)
		}
	}
	if m, ok := MaxLegit(legit); ok {
		s.max[s.self] = Pair{ML: m}
		s.maxSet[s.self] = true
		return
	}
	s.useOwnLabel()
}

// maxOrder returns the identifiers with known max entries, ascending.
func (s *Store) maxOrder() []ids.ID {
	order := make([]ids.ID, 0, len(s.max))
	for j := range s.max {
		if s.maxSet[j] {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// queueOrder returns the queue owners, ascending.
func (s *Store) queueOrder() []ids.ID {
	order := make([]ids.ID, 0, len(s.queues))
	for j := range s.queues {
		order = append(order, j)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// recorded reports whether the pair's ml exists in its creator's queue.
func (s *Store) recorded(p Pair) bool {
	for _, lp := range s.queueOf(p.ML.Creator) {
		if lp.ML.Equal(p.ML) {
			return true
		}
	}
	return false
}

// useOwnLabel adopts a legit stored own label or creates a fresh one that
// dominates everything in the own queue (Algorithm 4.2's useOwnLabel()).
func (s *Store) useOwnLabel() {
	for _, lp := range s.queueOf(s.self) {
		if lp.Legit() {
			s.max[s.self] = lp
			s.maxSet[s.self] = true
			return
		}
	}
	dominate := make([]Label, 0, len(s.queueOf(s.self))*2)
	for _, lp := range s.queueOf(s.self) {
		dominate = append(dominate, lp.ML)
		if lp.Cancel != nil {
			dominate = append(dominate, *lp.Cancel)
		}
	}
	s.metrics.Creations++
	fresh := Pair{ML: NextLabel(s.self, dominate, s.opts.Domain)}
	s.addFront(s.self, fresh)
	s.max[s.self] = fresh
	s.maxSet[s.self] = true
}

// InjectPair force-feeds an arbitrary pair into a queue — the
// transient-fault hook for the labeling experiments (corrupt labels
// appearing anywhere in the state).
func (s *Store) InjectPair(owner ids.ID, p Pair) {
	s.queues[owner] = append([]Pair{p}, s.queues[owner]...)
}

// InjectMax force-feeds an arbitrary max[] entry.
func (s *Store) InjectMax(j ids.ID, p Pair) {
	s.max[j] = p
	s.maxSet[j] = true
}
