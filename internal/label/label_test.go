package label

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func lbl(creator ids.ID, sting int, anti ...int) Label {
	return Label{Creator: creator, Sting: sting, Antistings: anti}
}

func TestCreatorOrderDominates(t *testing.T) {
	a := lbl(1, 5)
	b := lbl(2, 0)
	if !a.Less(b) || b.Less(a) {
		t.Fatal("creator order broken")
	}
}

func TestStingAntistingOrder(t *testing.T) {
	a := lbl(1, 3, 1, 2)
	b := lbl(1, 7, 3, 4) // b.anti contains a.sting; a.anti misses b.sting
	if !a.Less(b) {
		t.Fatal("a ≺ b expected")
	}
	if b.Less(a) {
		t.Fatal("order not antisymmetric")
	}
}

func TestIncomparableLabels(t *testing.T) {
	a := lbl(1, 3, 9)
	b := lbl(1, 7, 9) // neither antisting set contains the other's sting
	if a.Less(b) || b.Less(a) {
		t.Fatal("expected incomparable")
	}
	if a.Comparable(b) {
		t.Fatal("Comparable() wrong")
	}
	if !a.Comparable(a) {
		t.Fatal("label must be comparable to itself")
	}
}

func TestNextLabelDominatesInputs(t *testing.T) {
	existing := []Label{
		lbl(1, 3, 7, 8),
		lbl(1, 5, 2, 3),
		lbl(1, 9, 0, 1),
	}
	fresh := NextLabel(1, existing, 1000)
	for _, old := range existing {
		if !old.Less(fresh) {
			t.Fatalf("%v does not dominate %v", fresh, old)
		}
	}
}

func TestQuickNextLabelDomination(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		domain := k*k + k + 1
		existing := make([]Label, 0, k)
		for i := 0; i < k; i++ {
			anti := make([]int, 0, k)
			seen := map[int]bool{}
			for j := 0; j < k; j++ {
				a := rng.Intn(domain)
				if !seen[a] {
					seen[a] = true
					anti = append(anti, a)
				}
			}
			existing = append(existing, NextLabel(1, nil, domain)) // valid shape
			existing[i] = lbl(1, rng.Intn(domain), anti...)
		}
		fresh := NextLabel(1, existing, domain)
		if !fresh.Valid(domain) {
			return false
		}
		for _, old := range existing {
			if !old.Less(fresh) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPairLegitAndCancel(t *testing.T) {
	p := Pair{ML: lbl(1, 3)}
	if !p.Legit() {
		t.Fatal("fresh pair must be legit")
	}
	c := p.CanceledBy(lbl(1, 9))
	if c.Legit() {
		t.Fatal("canceled pair reported legit")
	}
	if !c.ML.Equal(p.ML) {
		t.Fatal("cancel changed ml")
	}
	if p.Equal(c) || !p.Equal(p) {
		t.Fatal("pair equality broken")
	}
}

func TestMaxLegit(t *testing.T) {
	if _, ok := MaxLegit(nil); ok {
		t.Fatal("empty MaxLegit must fail")
	}
	labels := []Label{lbl(1, 1), lbl(3, 0), lbl(2, 9)}
	m, ok := MaxLegit(labels)
	if !ok || m.Creator != 3 {
		t.Fatalf("MaxLegit = %v", m)
	}
}

// storePeers simulates the members exchanging ⟨max[i], max[k]⟩ in rounds
// over perfect channels.
type storePeers struct {
	members ids.Set
	stores  map[ids.ID]*Store
}

func newStorePeers(n int) *storePeers {
	members := ids.Range(1, ids.ID(n))
	sp := &storePeers{members: members, stores: make(map[ids.ID]*Store, n)}
	members.Each(func(id ids.ID) {
		sp.stores[id] = NewStore(id, members, DefaultStoreOptions(n, 4))
	})
	return sp
}

func (sp *storePeers) round() {
	type msg struct {
		from, to           ids.ID
		sent, last         Pair
		haveSent, haveLast bool
	}
	var msgs []msg
	sp.members.Each(func(from ids.ID) {
		s := sp.stores[from]
		sp.members.Each(func(to ids.ID) {
			if to == from {
				return
			}
			m := msg{from: from, to: to}
			m.sent, m.haveSent = s.LocalMax()
			m.last, m.haveLast = s.MaxOf(to)
			msgs = append(msgs, m)
		})
	})
	for _, m := range msgs {
		sp.stores[m.to].Receive(m.sent, m.haveSent, m.last, m.haveLast, m.from)
	}
}

// agreedMax reports whether all stores agree on one legit local max.
func (sp *storePeers) agreedMax() (Label, bool) {
	var max Label
	first, ok := true, true
	sp.members.Each(func(id ids.ID) {
		p, has := sp.stores[id].LocalMax()
		if !has || !p.Legit() {
			ok = false
			return
		}
		if first {
			max, first = p.ML, false
		} else if !max.Equal(p.ML) {
			ok = false
		}
	})
	return max, ok && !first
}

func TestStoresConvergeToGlobalMax(t *testing.T) {
	sp := newStorePeers(4)
	for i := 0; i < 50; i++ {
		sp.round()
		if _, ok := sp.agreedMax(); ok {
			return
		}
	}
	t.Fatal("stores never agreed on a maximal label")
}

func TestStoreRecoversFromInjectedLabels(t *testing.T) {
	sp := newStorePeers(4)
	for i := 0; i < 20; i++ {
		sp.round()
	}
	// Transient fault: inject wild labels, including ones in wrong queues
	// and fake maxima by every creator.
	rng := rand.New(rand.NewSource(7))
	sp.members.Each(func(id ids.ID) {
		s := sp.stores[id]
		s.InjectPair(2, Pair{ML: lbl(3, rng.Intn(50), rng.Intn(50))}) // wrong queue → staleInfo
		s.InjectMax(3, Pair{ML: lbl(3, rng.Intn(50), rng.Intn(50))})
		s.InjectMax(1, Pair{ML: lbl(1, rng.Intn(50), rng.Intn(50))})
	})
	for i := 0; i < 200; i++ {
		sp.round()
	}
	if _, ok := sp.agreedMax(); !ok {
		t.Fatal("no agreement after label corruption")
	}
	// Closure: the agreed max must remain stable.
	before, _ := sp.agreedMax()
	for i := 0; i < 20; i++ {
		sp.round()
	}
	after, ok := sp.agreedMax()
	if !ok || !before.Equal(after) {
		t.Fatalf("agreed max drifted: %v → %v", before, after)
	}
}

func TestRebuildDropsNonMembers(t *testing.T) {
	sp := newStorePeers(4)
	for i := 0; i < 30; i++ {
		sp.round()
	}
	s := sp.stores[1]
	// New configuration without p4; labels created by p4 must vanish.
	s.InjectMax(2, Pair{ML: lbl(4, 3)})
	s.Rebuild(ids.NewSet(1, 2, 3))
	if p, ok := s.MaxOf(2); ok && p.ML.Creator == 4 {
		t.Fatal("non-member label survived rebuild")
	}
	if p, ok := s.LocalMax(); !ok || !s.members.Contains(p.ML.Creator) {
		t.Fatalf("local max invalid after rebuild: %v %v", p, ok)
	}
}

func TestCleanPair(t *testing.T) {
	s := NewStore(1, ids.NewSet(1, 2), DefaultStoreOptions(2, 4))
	if _, ok := s.CleanPair(Pair{ML: lbl(9, 0)}); ok {
		t.Fatal("non-member creator pair not voided")
	}
	bad := lbl(9, 0)
	if _, ok := s.CleanPair(Pair{ML: lbl(1, 0), Cancel: &bad}); ok {
		t.Fatal("non-member cancel not voided")
	}
	if _, ok := s.CleanPair(Pair{ML: lbl(2, 0)}); !ok {
		t.Fatal("member pair voided")
	}
}

func TestQueueBoundsEnforced(t *testing.T) {
	opts := StoreOptions{Domain: 10000, QueueCap: 3, OwnQueueCap: 5}
	s := NewStore(1, ids.NewSet(1, 2), opts)
	for i := 0; i < 50; i++ {
		s.InjectPair(2, Pair{ML: lbl(2, i)})
		s.Receive(Pair{ML: lbl(2, i)}, true, Pair{}, false, 2)
	}
	if got := len(s.queueOf(2)); got > 3 {
		t.Fatalf("peer queue grew to %d > 3", got)
	}
	if got := len(s.queueOf(1)); got > 5 {
		t.Fatalf("own queue grew to %d > 5", got)
	}
}

func TestCancellationForcesFreshLabel(t *testing.T) {
	members := ids.NewSet(1)
	s := NewStore(1, members, DefaultStoreOptions(1, 2))
	p0, ok := s.LocalMax()
	if !ok {
		t.Fatal("no initial label")
	}
	// Cancel the current max via the echo path (peer reports it canceled).
	canceled := p0.CanceledBy(lbl(1, p0.ML.Sting+1))
	s.Receive(Pair{}, false, canceled, true, 1)
	p1, ok := s.LocalMax()
	if !ok {
		t.Fatal("no label after cancellation")
	}
	if p1.ML.Equal(p0.ML) && p1.Legit() {
		t.Fatal("canceled label still maximal")
	}
	if s.Metrics().Creations < 2 {
		t.Fatalf("expected a fresh creation, metrics=%+v", s.Metrics())
	}
}

func TestTheorem44CreationBound(t *testing.T) {
	// Theorem 4.4: with v members and link capacity m, label creations
	// until a maximal label is bounded. After a reconfiguration (clean
	// queues), the bound is O(N²). We verify creations stay well under
	// the bound for a converging system.
	const n, m = 5, 4
	sp := newStorePeers(n)
	rng := rand.New(rand.NewSource(3))
	sp.members.Each(func(id ids.ID) {
		for k := 0; k < 10; k++ {
			sp.stores[id].InjectMax(ids.ID(rng.Intn(n)+1), Pair{ML: lbl(ids.ID(rng.Intn(n)+1), rng.Intn(100), rng.Intn(100))})
			sp.round()
		}
	})
	for i := 0; i < 300; i++ {
		sp.round()
	}
	if _, ok := sp.agreedMax(); !ok {
		t.Fatal("no agreement")
	}
	bound := uint64(n * n * (n*n + m)) // generous O(N(N²+m))
	sp.members.Each(func(id ids.ID) {
		if c := sp.stores[id].Metrics().Creations; c > bound {
			t.Fatalf("node %v created %d labels > bound %d", id, c, bound)
		}
	})
}

func TestDefaultStoreOptionsSane(t *testing.T) {
	for v := 1; v <= 8; v++ {
		o := DefaultStoreOptions(v, 8)
		if o.Domain <= o.OwnQueueCap {
			t.Fatalf("v=%d: domain %d too small", v, o.Domain)
		}
		if o.QueueCap <= 0 || o.OwnQueueCap <= 0 {
			t.Fatalf("v=%d: zero caps", v)
		}
	}
	if o := DefaultStoreOptions(0, 8); o.QueueCap <= 0 {
		t.Fatal("v=0 not defended")
	}
}
