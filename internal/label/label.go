// Package label implements the paper's bounded labeling scheme for
// reconfigurable systems (Section 4.1, Algorithms 4.1 and 4.2). Labels are
// bounded "epoch" identifiers with which the counter algorithm (Section
// 4.2) builds a practically-infinite counter: when a transient fault drives
// a counter to its maximum, a fresh, strictly larger label opens a new
// epoch.
//
// The label structure comes from the cited companion paper [11] (Dolev,
// Georgiou, Marcoullis, Schiller, "Self-Stabilizing Virtual Synchrony",
// SSS'15): a label is ⟨creator, sting, antistings⟩ where sting is drawn
// from a bounded domain D and antistings ⊂ D. For labels of the same
// creator, ℓ1 ≺ ℓ2 ⟺ ℓ1.sting ∈ ℓ2.antistings ∧ ℓ2.sting ∉ ℓ1.antistings —
// a relation under which any finite set of labels can be dominated by a
// fresh label (pick antistings = their stings, and a sting outside all
// their antistings; |D| > k²+k guarantees one exists). Labels of different
// creators are ordered by creator identifier. Two labels of one creator can
// be incomparable; the cancellation bookkeeping of Algorithm 4.2 detects
// and retires them until a single global maximum emerges.
package label

import (
	"fmt"
	"sort"

	"repro/internal/ids"
)

// Label is a bounded epoch label.
type Label struct {
	Creator    ids.ID
	Sting      int
	Antistings []int // sorted ascending; never mutated after construction
}

// Valid reports structural well-formedness w.r.t. a domain of the given
// size: sting and antistings within [0, domain).
func (l Label) Valid(domain int) bool {
	if !l.Creator.Valid() || l.Sting < 0 || l.Sting >= domain {
		return false
	}
	for _, a := range l.Antistings {
		if a < 0 || a >= domain {
			return false
		}
	}
	return true
}

// hasAntisting reports whether x ∈ l.Antistings.
func (l Label) hasAntisting(x int) bool {
	i := sort.SearchInts(l.Antistings, x)
	return i < len(l.Antistings) && l.Antistings[i] == x
}

// Equal compares labels structurally.
func (l Label) Equal(o Label) bool {
	if l.Creator != o.Creator || l.Sting != o.Sting || len(l.Antistings) != len(o.Antistings) {
		return false
	}
	for i := range l.Antistings {
		if l.Antistings[i] != o.Antistings[i] {
			return false
		}
	}
	return true
}

// Less implements the ≺lb order: first by creator, then by the
// sting/antisting relation. Same-creator labels may be incomparable, in
// which case both Less(a,b) and Less(b,a) are false.
func (l Label) Less(o Label) bool {
	if l.Creator != o.Creator {
		return l.Creator < o.Creator
	}
	return o.hasAntisting(l.Sting) && !l.hasAntisting(o.Sting)
}

// Comparable reports whether the two labels are ordered either way.
func (l Label) Comparable(o Label) bool {
	return l.Equal(o) || l.Less(o) || o.Less(l)
}

func (l Label) String() string {
	return fmt.Sprintf("⟨%v;%d;%v⟩", l.Creator, l.Sting, l.Antistings)
}

// NextLabel creates a label of the given creator that is strictly greater
// than every label in dominate (which should all share that creator; labels
// by other creators are ordered by creator anyway). domain is |D|; it must
// exceed len(dominate)² + len(dominate) for a fresh sting to be guaranteed.
func NextLabel(creator ids.ID, dominate []Label, domain int) Label {
	anti := make([]int, 0, len(dominate))
	seen := make(map[int]bool, len(dominate))
	blocked := make(map[int]bool)
	for _, l := range dominate {
		if !seen[l.Sting] {
			seen[l.Sting] = true
			anti = append(anti, l.Sting)
		}
		for _, a := range l.Antistings {
			blocked[a] = true
		}
	}
	sort.Ints(anti)
	sting := 0
	for s := 0; s < domain; s++ {
		if !blocked[s] {
			sting = s
			break
		}
	}
	return Label{Creator: creator, Sting: sting, Antistings: anti}
}

// Pair is the exchanged unit ⟨ml, cl⟩: a label and its canceling label.
// A nil Cancel means the label is legit (the paper's cl = ⊥).
type Pair struct {
	ML     Label
	Cancel *Label
}

// Legit reports whether the pair is not canceled (the paper's legit(lp)).
func (p Pair) Legit() bool { return p.Cancel == nil }

// Canceled returns a copy of p canceled by the witness w.
func (p Pair) CanceledBy(w Label) Pair {
	wc := w
	return Pair{ML: p.ML, Cancel: &wc}
}

// Equal compares pairs structurally.
func (p Pair) Equal(o Pair) bool {
	if !p.ML.Equal(o.ML) {
		return false
	}
	if (p.Cancel == nil) != (o.Cancel == nil) {
		return false
	}
	return p.Cancel == nil || p.Cancel.Equal(*o.Cancel)
}

func (p Pair) String() string {
	if p.Cancel == nil {
		return fmt.Sprintf("(%v,⊥)", p.ML)
	}
	return fmt.Sprintf("(%v,%v)", p.ML, *p.Cancel)
}

// MaxLegit returns the ≺lb-maximal label among the given legit labels,
// breaking same-creator incomparability deterministically by sting. ok is
// false for an empty input.
func MaxLegit(labels []Label) (Label, bool) {
	if len(labels) == 0 {
		return Label{}, false
	}
	best := labels[0]
	for _, l := range labels[1:] {
		switch {
		case best.Less(l):
			best = l
		case l.Less(best) || l.Equal(best):
			// keep best
		case l.Creator == best.Creator && l.Sting > best.Sting:
			// incomparable: deterministic tie-break
			best = l
		}
	}
	return best, true
}
