// Package sim provides a deterministic discrete-event scheduler.
//
// The paper's system model (Section 2) is the standard asynchronous
// interleaving model: an execution is an alternating sequence of system
// states and atomic steps, where each step is triggered either by a packet
// arrival or by a periodic timer whose rate is "totally unknown". The
// scheduler realizes that model with virtual time: events carry a virtual
// timestamp, ties are broken by insertion order, and all randomness flows
// from a single seeded source, so that every execution — including
// adversarial ones used by the stabilization tests — is exactly
// reproducible from its seed.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is a virtual timestamp. The unit is arbitrary ("ticks"); only the
// relative order of events matters to the protocols.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order, breaks timestamp ties deterministically
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled *bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler is a deterministic virtual-time event loop. The zero value is
// not usable; construct with NewScheduler.
type Scheduler struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	steps  uint64
	halted bool
}

// NewScheduler returns a scheduler whose randomness derives from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Rand returns the scheduler's deterministic random source. All protocol
// and adversary randomness must come from here to keep runs reproducible.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Cancel revokes a scheduled event. It is returned by At/After.
type Cancel func()

// At schedules fn to run at absolute time t (clamped to now).
func (s *Scheduler) At(t Time, fn func()) Cancel {
	if t < s.now {
		t = s.now
	}
	canceled := false
	e := &event{at: t, seq: s.seq, fn: fn, canceled: &canceled}
	s.seq++
	heap.Push(&s.queue, e)
	return func() { canceled = true }
}

// After schedules fn to run d ticks from now.
func (s *Scheduler) After(d Time, fn func()) Cancel {
	return s.At(s.now+d, fn)
}

// Every schedules fn to run now+first and then every interval ticks, with a
// bounded random jitter in [0, jitter] applied independently to each firing
// (the asynchronous model demands that timer rates be unknown; jitter keeps
// nodes from running in lock-step). Returns a Cancel that stops the series.
func (s *Scheduler) Every(first, interval, jitter Time, fn func()) Cancel {
	stopped := false
	var arm func(at Time)
	arm = func(at Time) {
		s.At(at, func() {
			if stopped {
				return
			}
			fn()
			next := s.now + interval
			if jitter > 0 {
				next += Time(s.rng.Int63n(int64(jitter) + 1))
			}
			arm(next)
		})
	}
	first += s.now
	if jitter > 0 {
		first += Time(s.rng.Int63n(int64(jitter) + 1))
	}
	arm(first)
	return func() { stopped = true }
}

// Halt stops Run/RunUntil/RunSteps at the next event boundary.
func (s *Scheduler) Halt() { s.halted = true }

// step executes the next pending event. It reports false when the queue is
// exhausted.
func (s *Scheduler) step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if *e.canceled {
			continue
		}
		s.now = e.at
		s.steps++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until virtual time exceeds deadline, the event
// queue drains, or Halt is called. It reports whether the deadline was
// reached (as opposed to draining or halting).
func (s *Scheduler) RunUntil(deadline Time) bool {
	s.halted = false
	for !s.halted {
		if len(s.queue) == 0 {
			return false
		}
		if s.peekTime() > deadline {
			s.now = deadline
			return true
		}
		s.step()
	}
	return false
}

// RunSteps executes up to n events. It returns the number executed.
func (s *Scheduler) RunSteps(n int) int {
	s.halted = false
	done := 0
	for done < n && !s.halted {
		if !s.step() {
			break
		}
		done++
	}
	return done
}

// RunWhile executes events while cond() holds and the queue is non-empty,
// up to maxSteps events. It reports whether cond became false (success).
func (s *Scheduler) RunWhile(cond func() bool, maxSteps int) bool {
	s.halted = false
	for i := 0; i < maxSteps && !s.halted; i++ {
		if !cond() {
			return true
		}
		if !s.step() {
			return !cond()
		}
	}
	return !cond()
}

func (s *Scheduler) peekTime() Time {
	return s.queue[0].at
}

// Pending returns the number of scheduled (possibly canceled) events.
func (s *Scheduler) Pending() int { return len(s.queue) }
