package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.RunUntil(100)
	want := []int{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunUntil(10)
	for i := range got {
		if got[i] != i {
			t.Fatalf("ties not broken by insertion: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler(1)
	var at Time
	s.At(50, func() {
		s.After(25, func() { at = s.Now() })
	})
	s.RunUntil(1000)
	if at != 75 {
		t.Fatalf("After fired at %d, want 75", at)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	cancel := s.At(10, func() { fired = true })
	cancel()
	s.RunUntil(100)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	cancel := s.Every(0, 10, 0, func() { count++ })
	s.RunUntil(95)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	cancel()
	s.RunUntil(200)
	if count != 10 {
		t.Fatalf("events fired after cancel: %d", count)
	}
}

func TestEveryJitterBounded(t *testing.T) {
	s := NewScheduler(42)
	var times []Time
	s.Every(0, 10, 5, func() { times = append(times, s.Now()) })
	s.RunUntil(1000)
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < 10 || gap > 15 {
			t.Fatalf("gap %d outside [10,15]", gap)
		}
	}
	if len(times) < 50 {
		t.Fatalf("too few firings: %d", len(times))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := NewScheduler(7)
		var times []Time
		s.Every(0, 10, 7, func() { times = append(times, s.Now()) })
		s.Every(3, 9, 3, func() { times = append(times, s.Now()) })
		s.RunUntil(500)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunSteps(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	s.Every(0, 1, 0, func() { count++ })
	if n := s.RunSteps(5); n != 5 || count != 5 {
		t.Fatalf("RunSteps: n=%d count=%d", n, count)
	}
}

func TestRunWhile(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	s.Every(0, 1, 0, func() { count++ })
	if !s.RunWhile(func() bool { return count < 7 }, 1000) {
		t.Fatal("RunWhile did not satisfy condition")
	}
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if s.RunWhile(func() bool { return false }, 10) != true {
		t.Fatal("vacuously satisfied condition not detected")
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	s.Every(0, 1, 0, func() {
		count++
		if count == 3 {
			s.Halt()
		}
	})
	s.RunUntil(100)
	if count != 3 {
		t.Fatalf("Halt did not stop the loop: %d", count)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	// A queue that drains before the deadline reports false.
	s := NewScheduler(1)
	s.At(5, func() {})
	if s.RunUntil(100) {
		t.Fatal("drained queue must report false")
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %d, want 5", s.Now())
	}
	// A perpetual series reaches the deadline and reports true.
	s2 := NewScheduler(1)
	s2.Every(0, 10, 0, func() {})
	if !s2.RunUntil(95) {
		t.Fatal("deadline not reported")
	}
	if s2.Now() != 95 {
		t.Fatalf("Now = %d, want 95", s2.Now())
	}
	// With an empty queue RunUntil reports false immediately.
	s3 := NewScheduler(1)
	if s3.RunUntil(10) {
		t.Fatal("empty queue should report false")
	}
}

func TestPastEventClamped(t *testing.T) {
	s := NewScheduler(1)
	s.At(50, func() {
		s.At(10, func() {
			if s.Now() < 50 {
				t.Fatalf("time ran backwards: %d", s.Now())
			}
		})
	})
	s.RunUntil(100)
}
