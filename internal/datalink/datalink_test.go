package datalink

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// harness wires two (or more) endpoints over a netsim network.
type harness struct {
	sched *sim.Scheduler
	net   *netsim.Network
	eps   map[ids.ID]*Endpoint
	// per endpoint, messages delivered and heartbeats observed
	delivered  map[ids.ID][]any
	heartbeats map[ids.ID]int
	// outgoing message source per endpoint
	next map[ids.ID]func(to ids.ID) any
}

type epHandler struct {
	h  *harness
	id ids.ID
}

func (e *epHandler) Receive(from ids.ID, payload any) {
	if pkt, ok := payload.(Packet); ok {
		e.h.eps[e.id].HandlePacket(from, pkt)
	}
}

func (e *epHandler) Tick() { e.h.eps[e.id].Tick() }

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newHarness(t *testing.T, n int, netOpts netsim.Options, linkOpts Options) *harness {
	return newSeededHarness(t, n, 11, netOpts, linkOpts)
}

func newSeededHarness(t *testing.T, n int, seed int64, netOpts netsim.Options, linkOpts Options) *harness {
	t.Helper()
	sched := sim.NewScheduler(seed)
	h := &harness{
		sched:      sched,
		net:        netsim.New(sched, netOpts),
		eps:        make(map[ids.ID]*Endpoint),
		delivered:  make(map[ids.ID][]any),
		heartbeats: make(map[ids.ID]int),
		next:       make(map[ids.ID]func(ids.ID) any),
	}
	for i := 1; i <= n; i++ {
		id := ids.ID(i)
		h.next[id] = func(ids.ID) any { return nil }
		ep := NewEndpoint(Config{
			Self: id,
			Opts: linkOpts,
			Rand: sched.Rand(),
			Send: func(to ids.ID, pkt Packet) { h.net.Send(id, to, pkt) },
			Deliver: func(from ids.ID, msg any) {
				h.delivered[id] = append(h.delivered[id], msg)
			},
			Heartbeat: func(peer ids.ID) { h.heartbeats[id]++ },
			Source:    func(to ids.ID) any { return h.next[id](to) },
		})
		h.eps[id] = ep
		if err := h.net.AddNode(id, &epHandler{h: h, id: id}); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *harness) connectAll() {
	for a, ep := range h.eps {
		for b := range h.eps {
			if a != b {
				ep.Connect(b)
			}
		}
	}
}

func adversarial() netsim.Options {
	o := netsim.DefaultOptions()
	return o
}

func TestDeliveryUnderAdversary(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	seq := 0
	h.next[1] = func(ids.ID) any { seq++; return seq }
	h.sched.RunUntil(3000)
	got := h.delivered[2]
	if len(got) < 10 {
		t.Fatalf("only %d messages delivered under adversary", len(got))
	}
	// FIFO: payloads must be strictly increasing (latest-state semantics
	// may skip values but never reorder).
	for i := 1; i < len(got); i++ {
		if got[i].(int) <= got[i-1].(int) {
			t.Fatalf("reordered delivery: %v", got[:i+1])
		}
	}
}

func TestHeartbeatsFlowBothWays(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	h.sched.RunUntil(2000)
	if h.heartbeats[1] < 5 || h.heartbeats[2] < 5 {
		t.Fatalf("heartbeats = %v", h.heartbeats)
	}
}

func TestHeartbeatsStopOnCrash(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	h.sched.RunUntil(1000)
	h.net.Crash(2)
	base := h.heartbeats[1]
	h.sched.RunUntil(3000)
	// A small number of in-flight acks may still land; the flow must stop.
	if h.heartbeats[1] > base+2 {
		t.Fatalf("heartbeats kept flowing after crash: %d -> %d", base, h.heartbeats[1])
	}
}

func TestAutoConnectOnFirstPacket(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	// Only node 1 connects; node 2 must learn the link from packets.
	h.eps[1].Connect(2)
	h.next[1] = func(ids.ID) any { return "ping" }
	h.sched.RunUntil(2000)
	if len(h.delivered[2]) == 0 {
		t.Fatal("one-sided connect did not deliver")
	}
	if !h.eps[2].Peers().Contains(1) {
		t.Fatal("receiver did not auto-establish the peer")
	}
}

func TestStalePacketsIgnored(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	h.sched.RunUntil(500)
	// Inject stale packets with random sessions: none may be delivered.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		h.net.InjectPacket(1, 2, Packet{
			Kind:    KindData,
			Session: uint64(rng.Int63()),
			Seq:     uint8(rng.Intn(2)),
			Payload: "STALE",
		})
	}
	h.sched.RunUntil(2000)
	for _, m := range h.delivered[2] {
		if m == "STALE" {
			t.Fatal("stale packet delivered")
		}
	}
}

func TestRecoveryFromCorruptedLinkState(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	seq := 0
	h.next[1] = func(ids.ID) any { seq++; return seq }
	h.sched.RunUntil(1000)
	rng := newTestRng(5)
	h.eps[1].CorruptState(rng)
	h.eps[2].CorruptState(rng)
	before := len(h.delivered[2])
	h.sched.RunUntil(5000)
	if len(h.delivered[2]) <= before+5 {
		t.Fatalf("link did not recover after corruption: %d -> %d",
			before, len(h.delivered[2]))
	}
	if h.eps[1].Stats().Cleanings < 2 {
		t.Fatal("recovery should have re-cleaned the link")
	}
}

func TestGarbagePacketKindIgnored(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	h.net.InjectPacket(1, 2, Packet{Kind: Kind(99)})
	h.sched.RunUntil(500)
	// Must not panic and must not deliver.
	for _, m := range h.delivered[2] {
		if m == nil {
			t.Fatal("garbage delivered")
		}
	}
}

func TestStrictPaperModeAckThreshold(t *testing.T) {
	opts := DefaultOptions()
	opts.AckThreshold = opts.Capacity + 1 // strict bounded-channel mode
	opts.StaleTicks = 40
	netOpts := adversarial()
	netOpts.LossProb = 0.02
	h := newHarness(t, 2, netOpts, opts)
	h.connectAll()
	seq := 0
	h.next[1] = func(ids.ID) any { seq++; return seq }
	h.sched.RunUntil(20000)
	if len(h.delivered[2]) < 3 {
		t.Fatalf("strict mode delivered only %d", len(h.delivered[2]))
	}
}

func TestNilSourceSkipsPayload(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	// Default source returns nil: tokens circulate, nothing delivered.
	h.sched.RunUntil(2000)
	if len(h.delivered[2]) != 0 {
		t.Fatalf("nil payloads delivered: %v", h.delivered[2])
	}
	if h.heartbeats[1] == 0 {
		t.Fatal("empty tokens must still produce heartbeats")
	}
}

func TestDisconnectForgetsPeer(t *testing.T) {
	h := newHarness(t, 2, adversarial(), DefaultOptions())
	h.connectAll()
	h.eps[1].Disconnect(2)
	if h.eps[1].Peers().Contains(2) {
		t.Fatal("peer still present after Disconnect")
	}
}

func TestSelfConnectIgnored(t *testing.T) {
	h := newHarness(t, 1, adversarial(), DefaultOptions())
	h.eps[1].Connect(1)
	if h.eps[1].Peers().Size() != 0 {
		t.Fatal("self-connect created a peer")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindClean: "CLEAN", KindCleanAck: "CLEAN-ACK",
		KindData: "DATA", KindAck: "ACK", Kind(0): "?",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestManyPeers(t *testing.T) {
	h := newHarness(t, 5, adversarial(), DefaultOptions())
	h.connectAll()
	for i := 1; i <= 5; i++ {
		id := ids.ID(i)
		h.next[id] = func(ids.ID) any { return int(id) }
	}
	h.sched.RunUntil(3000)
	for i := 1; i <= 5; i++ {
		if len(h.delivered[ids.ID(i)]) < 12 {
			t.Fatalf("node %d received only %d messages", i, len(h.delivered[ids.ID(i)]))
		}
	}
}
