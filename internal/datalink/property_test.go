package datalink

import (
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestOrderedExactDeliveryProperty is the batching hardening property:
// under random loss/duplication/jitter schedules (table-driven seeds for
// reproducibility), the payload sequence pushed into a link's outbound
// queue is delivered to the receiver exactly once and in order — batched
// or not. Batched links run the strict cumulative-sequence discipline,
// which holds even when a duplicated stale packet overtakes its
// successor; the legacy alternating-bit discipline (MaxBatch 1) is
// at-least-once under duplication, so its arms run duplication-free
// (loss + jitter reordering only), where stop-and-wait is exact.
func TestOrderedExactDeliveryProperty(t *testing.T) {
	type schedule struct {
		name     string
		seeds    []int64
		maxBatch int
		// window pipelines that many cycles concurrently (0/1 = the
		// stop-and-wait token cycle). Windowed links run the same strict
		// cumulative-sequence discipline as batched ones.
		window int
		// pace bounds how many payloads may sit in the queue at once
		// (0 = fill to MaxBatch×Window); pace 1 sends single-payload
		// cycles through the batching discipline — the "not batched"
		// shape.
		pace     int
		loss     float64
		dup      float64
		maxDelay sim.Time
		payloads int
	}
	cases := []schedule{
		{name: "legacy-unbatched/loss+jitter", seeds: []int64{1, 7, 23},
			maxBatch: 1, loss: 0.20, dup: 0, maxDelay: 15, payloads: 60},
		{name: "batch4/loss+dup+jitter", seeds: []int64{2, 11, 29},
			maxBatch: 4, loss: 0.20, dup: 0.15, maxDelay: 15, payloads: 120},
		{name: "batch8/heavy-adversary", seeds: []int64{3, 13, 31},
			maxBatch: 8, loss: 0.30, dup: 0.25, maxDelay: 20, payloads: 160},
		{name: "batch4/single-payload-cycles", seeds: []int64{5, 17},
			maxBatch: 4, pace: 1, loss: 0.15, dup: 0.20, maxDelay: 12, payloads: 60},
		// Delays long enough that duplicated CLEANs from the cleaning
		// phase land after steady-state delivery began — the window in
		// which a session-duplicate CLEAN must NOT reset the sequence
		// history (it would reopen the acceptance window and redeliver
		// overtaken stale DATA).
		{name: "batch4/late-dup-cleans", seeds: []int64{19, 37, 41},
			maxBatch: 4, loss: 0.10, dup: 0.30, maxDelay: 120, payloads: 40},
		// Pipelined windows 2/4/8 (window 1 is every arm above): the
		// strict in-order acceptance must hold with several cycles in
		// flight, with and without batching, under the same adversaries.
		{name: "window2/batch1/loss+dup+jitter", seeds: []int64{4, 14, 43},
			maxBatch: 1, window: 2, loss: 0.20, dup: 0.15, maxDelay: 15, payloads: 120},
		{name: "window4/batch4/loss+dup+jitter", seeds: []int64{6, 21, 47},
			maxBatch: 4, window: 4, loss: 0.20, dup: 0.15, maxDelay: 15, payloads: 160},
		{name: "window8/batch2/heavy-adversary", seeds: []int64{8, 25, 53},
			maxBatch: 2, window: 8, loss: 0.30, dup: 0.25, maxDelay: 20, payloads: 160},
		{name: "window4/single-payload-cycles", seeds: []int64{9, 27},
			maxBatch: 4, window: 4, pace: 1, loss: 0.15, dup: 0.20, maxDelay: 12, payloads: 60},
		{name: "window2/late-dup-cleans", seeds: []int64{19, 37, 41},
			maxBatch: 4, window: 2, loss: 0.10, dup: 0.30, maxDelay: 120, payloads: 40},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range tc.seeds {
				netOpts := netsim.Options{
					Capacity: 8, MinDelay: 1, MaxDelay: tc.maxDelay,
					LossProb: tc.loss, DupProb: tc.dup,
					TickEvery: 10, TickJitter: 5,
				}
				linkOpts := Options{
					Capacity: 8, AckThreshold: 1,
					// Generous staleness tolerance: a re-clean drops the
					// in-flight cycle by design, which is outside this
					// property (the link only guarantees the sequence
					// while it stays established).
					StaleTicks: 120,
					MaxBatch:   tc.maxBatch,
					Window:     tc.window,
				}
				h := newSeededHarness(t, 2, seed, netOpts, linkOpts)
				h.connectAll()

				want := make([]any, tc.payloads)
				for i := range want {
					want[i] = i + 1
				}
				bound := tc.pace
				if bound <= 0 {
					bound = tc.maxBatch
					if tc.window > 1 {
						bound *= tc.window // keep the pipeline fed
					}
				}
				next := 0
				deadline := sim.Time(400_000)
				for h.sched.Now() < deadline && len(h.delivered[2]) < len(want) {
					for next < len(want) && h.eps[1].QueueLen(2) < bound {
						if !h.eps[1].Enqueue(2, want[next]) {
							t.Fatalf("seed %d: enqueue %d refused", seed, next)
						}
						next++
					}
					h.sched.RunUntil(h.sched.Now() + 20)
				}
				got := h.delivered[2]
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: delivered %d/%d payloads, sequence equal=%v\n got=%v",
						seed, len(got), len(want), reflect.DeepEqual(got, want), truncateSeq(got))
				}
				if tc.maxBatch > 1 && tc.pace == 0 {
					if h.eps[1].Stats().Batches == 0 {
						t.Fatalf("seed %d: no multi-payload cycle completed — property not exercised", seed)
					}
				}
				if h.eps[1].Stats().QueueEvicted != 0 {
					t.Fatalf("seed %d: paced producer still evicted %d payloads",
						seed, h.eps[1].Stats().QueueEvicted)
				}
			}
		})
	}
}

func truncateSeq(s []any) []any {
	if len(s) > 24 {
		return s[:24]
	}
	return s
}

// TestStaleCleanCannotReopenBatchedLink: on a batched link, stale CLEAN
// packets — duplicates of the live session or replays of a past one —
// must not displace the receiver's sequence history; otherwise a stale
// DATA duplicate riding behind them would be redelivered, breaking
// exactly-once. The channel holds at most Capacity stale packets, so
// the Capacity+1 adoption threshold is exactly out of their reach.
func TestStaleCleanCannotReopenBatchedLink(t *testing.T) {
	netOpts := netsim.Options{Capacity: 8, MinDelay: 1, MaxDelay: 2, TickEvery: 10}
	opts := Options{Capacity: 8, MaxBatch: 4, StaleTicks: 120}
	h := newHarness(t, 2, netOpts, opts)
	h.connectAll()
	for i := 1; i <= 4; i++ {
		h.eps[1].Enqueue(2, i)
	}
	h.sched.RunUntil(1500)
	for i := 5; i <= 6; i++ {
		h.eps[1].Enqueue(2, i)
	}
	h.sched.RunUntil(3000)
	if len(h.delivered[2]) != 6 {
		t.Fatalf("setup delivered %d/6", len(h.delivered[2]))
	}
	live := h.eps[2].peers[1].rxSession
	stale := live ^ 0xdead // a past incarnation's nonce

	// Up to Capacity stale CLEANs of the old session, then stale DATA
	// of that session carrying a ghost batch: nothing may be adopted or
	// delivered.
	for i := 0; i < opts.Capacity; i++ {
		h.net.InjectPacket(1, 2, Packet{Kind: KindClean, Session: stale})
	}
	h.net.InjectPacket(1, 2, Packet{Kind: KindData, Session: stale, Seq: 0, Batch: []any{"GHOST"}})
	// A duplicate CLEAN of the live session must not reset history
	// either; the stale DATA replay behind it must stay ignored.
	h.net.InjectPacket(1, 2, Packet{Kind: KindClean, Session: live})
	h.net.InjectPacket(1, 2, Packet{Kind: KindData, Session: live, Seq: h.eps[2].peers[1].rxSeq, Batch: []any{"REPLAY"}})
	h.sched.RunUntil(4500)
	for _, m := range h.delivered[2] {
		if m == "GHOST" || m == "REPLAY" {
			t.Fatalf("stale packet delivered: %v", m)
		}
	}
	if got := h.eps[2].peers[1].rxSession; got != live {
		t.Fatalf("stale CLEANs displaced the live session: %x -> %x", live, got)
	}
	// The link still flows afterwards.
	for i := 7; i <= 10; i++ {
		h.eps[1].Enqueue(2, i)
	}
	h.sched.RunUntil(7500)
	want := []any{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if !reflect.DeepEqual(h.delivered[2], want) {
		t.Fatalf("post-attack sequence corrupted: %v", h.delivered[2])
	}
}

// TestBatchedLinkRecoversFromCorruption: the strict discipline must stay
// self-stabilizing — after randomizing both endpoints' link state the
// link re-cleans and flows again.
func TestBatchedLinkRecoversFromCorruption(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxBatch = 4
	h := newHarness(t, 2, adversarial(), opts)
	h.connectAll()
	seq := 0
	h.next[1] = func(ids.ID) any { seq++; return seq }
	h.sched.RunUntil(1000)
	rng := newTestRng(5)
	h.eps[1].CorruptState(rng)
	h.eps[2].CorruptState(rng)
	before := len(h.delivered[2])
	h.sched.RunUntil(6000)
	if len(h.delivered[2]) <= before+5 {
		t.Fatalf("batched link did not recover after corruption: %d -> %d",
			before, len(h.delivered[2]))
	}
	if h.eps[1].Stats().Cleanings < 2 {
		t.Fatal("recovery should have re-cleaned the link")
	}
}

// TestWindowedLinkRecoversFromCorruption: pipelining must not weaken
// self-stabilization — a window is just Window consecutive single
// cycles whose tokens overlap in the channel, and cleaning flushes all
// of them. After randomizing both endpoints' link state (including the
// in-flight window), the link re-cleans and flows again.
func TestWindowedLinkRecoversFromCorruption(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxBatch = 4
	opts.Window = 4
	h := newHarness(t, 2, adversarial(), opts)
	h.connectAll()
	seq := 0
	h.next[1] = func(ids.ID) any { seq++; return seq }
	h.sched.RunUntil(1000)
	rng := newTestRng(6)
	h.eps[1].CorruptState(rng)
	h.eps[2].CorruptState(rng)
	before := len(h.delivered[2])
	h.sched.RunUntil(6000)
	if len(h.delivered[2]) <= before+5 {
		t.Fatalf("windowed link did not recover after corruption: %d -> %d",
			before, len(h.delivered[2]))
	}
	if h.eps[1].Stats().Cleanings < 2 {
		t.Fatal("recovery should have re-cleaned the link")
	}
	// Gauge consistency: the in-flight count tracks the live windows and
	// never goes negative through cleanings and corruption.
	if got := h.eps[1].InflightTotal(); got < 0 || got > int64(opts.Window) {
		t.Fatalf("in-flight gauge %d outside [0, %d]", got, opts.Window)
	}
}

// TestEnqueueEvictsOldest: an unpaced producer overflowing the bounded
// queue displaces the oldest entry (latest-state-wins, the omission the
// bounded-link model allows) and the eviction is counted.
func TestEnqueueEvictsOldest(t *testing.T) {
	h := newHarness(t, 2, adversarial(), Options{Capacity: 8, MaxBatch: 2})
	h.eps[1].Connect(2)
	for i := 1; i <= 5; i++ {
		h.eps[1].Enqueue(2, i)
	}
	if got := h.eps[1].QueueLen(2); got != 2 {
		t.Fatalf("queue length %d, want bound 2", got)
	}
	if got := h.eps[1].Stats().QueueEvicted; got != 3 {
		t.Fatalf("evictions %d, want 3", got)
	}
	// Unknown peers and nil payloads are refused.
	if h.eps[1].Enqueue(9, "x") {
		t.Fatal("enqueue toward unknown peer accepted")
	}
	if h.eps[1].Enqueue(2, nil) {
		t.Fatal("nil payload accepted")
	}
}
