// Package datalink implements the paper's self-stabilizing data-link layer
// (Section 2): a token-carrying stop-and-wait protocol over unreliable
// bounded-capacity channels, together with the snap-stabilizing link
// cleaning that newly established (or corrupted) links must perform before
// any message is handed to the reconfiguration, joining, or application
// layers.
//
// Two anti-parallel data links run over every processor pair: each side is
// the sender of its own link and the receiver of the other. The sender
// retransmits the current packet until enough acknowledgments arrive
// ("retransmitted until more than the total capacity acknowledgments
// arrive"); every completed exchange is a returned token, which doubles as
// the heartbeat consumed by the (N,Θ)-failure detector — when a processor
// is no longer active the token stops coming back.
//
// Cleaning follows the snap-stabilizing discipline of [15] adapted to pairs:
// the sender floods a nonce-tagged CLEAN packet and waits for strictly more
// than the channel capacity matching CLEAN-ACKs, which guarantees at least
// one genuine acknowledgment and that all stale packets of the previous
// incarnation have drained. Any detectable inconsistency (no progress for a
// timeout, unknown session on the receiver) drives the link back through
// cleaning, making the layer self-stabilizing.
package datalink

import (
	"math/rand"
	"sort"

	"repro/internal/ids"
)

// Kind enumerates packet types.
type Kind int

// Packet kinds. Data/Clean travel from the link's sender; Ack/CleanAck
// travel back from the link's receiver.
const (
	KindClean Kind = iota + 1
	KindCleanAck
	KindData
	KindAck
)

func (k Kind) String() string {
	switch k {
	case KindClean:
		return "CLEAN"
	case KindCleanAck:
		return "CLEAN-ACK"
	case KindData:
		return "DATA"
	case KindAck:
		return "ACK"
	default:
		return "?"
	}
}

// Packet is the low-level unit exchanged through the network. Per the
// paper's labeling discipline, packets are identified by the data link they
// belong to; here the (sender, receiver) identities come from the transport
// and Session plays the role of the cleaned-link incarnation label.
type Packet struct {
	Kind    Kind
	Session uint64 // link incarnation nonce established by cleaning
	Seq     uint8  // alternating packet label within a session
	Payload any    // application message (KindData only)
}

// Options tunes the link protocol.
type Options struct {
	// Capacity is the channel capacity bound (the paper's cap); cleaning
	// demands Capacity+1 matching CLEAN-ACKs.
	Capacity int
	// AckThreshold is the number of acknowledgments that complete a data
	// token cycle. The paper's fully bounded construction uses
	// Capacity+1; with nonce-tagged sessions a single acknowledgment
	// already implies genuine receipt, so the default is 1 (set it to
	// Capacity+1 to run in strict paper mode — experiment E10 measures
	// the difference).
	AckThreshold int
	// StaleTicks is the number of sender ticks without progress after
	// which the link is re-cleaned.
	StaleTicks int
}

// DefaultOptions matches netsim.DefaultOptions' capacity.
func DefaultOptions() Options {
	return Options{Capacity: 8, AckThreshold: 1, StaleTicks: 12}
}

type senderState int

const (
	senderCleaning senderState = iota + 1
	senderSteady
)

type peer struct {
	// sender half (this endpoint's own data link toward the peer)
	state     senderState
	session   uint64
	cleanAcks int
	seq       uint8
	cur       any
	curValid  bool
	acks      int
	stale     int

	// receiver half (the peer's data link toward this endpoint)
	rxSession      uint64
	rxSessionValid bool
	rxSeq          uint8
	rxSeqValid     bool
}

// Endpoint is one processor's data-link multiplexer over all its peers.
// It is a pure step machine: the owner invokes Tick and HandlePacket, and
// the endpoint calls back through the injected functions.
type Endpoint struct {
	self  ids.ID
	opts  Options
	rng   *rand.Rand
	peers map[ids.ID]*peer

	// send transmits a raw packet through the (unreliable) network.
	send func(to ids.ID, pkt Packet)
	// deliver hands a cleanly received message to the upper layer.
	deliver func(from ids.ID, msg any)
	// heartbeat reports a returned token (the peer is alive).
	heartbeat func(peer ids.ID)
	// source produces the current outgoing message for a peer at the
	// start of each token cycle; returning nil skips the cycle's payload
	// (an empty token is still exchanged, so heartbeats keep flowing).
	source func(to ids.ID) any

	stats Stats
}

// Stats counts link-level events for the benchmarks.
type Stats struct {
	Cleanings     uint64
	CyclesDone    uint64
	Delivered     uint64
	StaleIgnored  uint64
	TimeoutsReset uint64
}

// Config carries the injected callbacks for NewEndpoint.
type Config struct {
	Self      ids.ID
	Opts      Options
	Rand      *rand.Rand
	Send      func(to ids.ID, pkt Packet)
	Deliver   func(from ids.ID, msg any)
	Heartbeat func(peer ids.ID)
	Source    func(to ids.ID) any
}

// NewEndpoint constructs an endpoint. All callbacks must be non-nil except
// Deliver/Heartbeat/Source which may be nil (treated as no-ops).
func NewEndpoint(cfg Config) *Endpoint {
	if cfg.Opts.Capacity <= 0 {
		cfg.Opts = DefaultOptions()
	}
	if cfg.Opts.AckThreshold <= 0 {
		cfg.Opts.AckThreshold = 1
	}
	if cfg.Opts.StaleTicks <= 0 {
		cfg.Opts.StaleTicks = 12
	}
	e := &Endpoint{
		self:      cfg.Self,
		opts:      cfg.Opts,
		rng:       cfg.Rand,
		peers:     make(map[ids.ID]*peer),
		send:      cfg.Send,
		deliver:   cfg.Deliver,
		heartbeat: cfg.Heartbeat,
		source:    cfg.Source,
	}
	if e.deliver == nil {
		e.deliver = func(ids.ID, any) {}
	}
	if e.heartbeat == nil {
		e.heartbeat = func(ids.ID) {}
	}
	if e.source == nil {
		e.source = func(ids.ID) any { return nil }
	}
	return e
}

// Stats returns a copy of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Peers returns the identifiers of all known peers.
func (e *Endpoint) Peers() ids.Set {
	out := ids.Set{}
	for id := range e.peers {
		out = out.Add(id)
	}
	return out
}

// Connect establishes (or re-establishes) the data link toward a peer,
// starting from the cleaning phase, as the paper requires for every newly
// established link. It is idempotent for already-known peers.
func (e *Endpoint) Connect(to ids.ID) {
	if to == e.self || !to.Valid() {
		return
	}
	if _, ok := e.peers[to]; ok {
		return
	}
	p := &peer{}
	e.peers[to] = p
	e.startClean(p)
}

// Disconnect forgets a peer entirely (used when the failure detector has
// permanently given up on it, to bound state).
func (e *Endpoint) Disconnect(to ids.ID) { delete(e.peers, to) }

func (e *Endpoint) startClean(p *peer) {
	p.state = senderCleaning
	p.session = e.nonce()
	p.cleanAcks = 0
	p.curValid = false
	p.acks = 0
	p.stale = 0
	e.stats.Cleanings++
}

func (e *Endpoint) nonce() uint64 {
	if e.rng != nil {
		return uint64(e.rng.Int63())<<1 | 1
	}
	return 1
}

// Tick drives retransmission for every peer in ascending identifier order
// (map order would make same-seed simulations diverge across runs); the
// owner calls it on its periodic timer.
func (e *Endpoint) Tick() {
	order := make([]ids.ID, 0, len(e.peers))
	for to := range e.peers {
		order = append(order, to)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, to := range order {
		e.tickPeer(to, e.peers[to])
	}
}

func (e *Endpoint) tickPeer(to ids.ID, p *peer) {
	switch p.state {
	case senderCleaning:
		e.send(to, Packet{Kind: KindClean, Session: p.session})
	case senderSteady:
		if !p.curValid {
			p.cur = e.source(to)
			p.curValid = true
			p.acks = 0
		}
		e.send(to, Packet{Kind: KindData, Session: p.session, Seq: p.seq, Payload: p.cur})
	default:
		// Arbitrary (corrupted) state: recover by cleaning.
		e.startClean(p)
		return
	}
	p.stale++
	if p.stale > e.opts.StaleTicks {
		e.stats.TimeoutsReset++
		e.startClean(p)
	}
}

// HandlePacket processes a raw packet from the network. Packets from
// unknown peers implicitly establish the link (the "connection signal"),
// starting with cleaning on this side too.
func (e *Endpoint) HandlePacket(from ids.ID, pkt Packet) {
	if from == e.self || !from.Valid() {
		return
	}
	p, ok := e.peers[from]
	if !ok {
		p = &peer{}
		e.peers[from] = p
		e.startClean(p)
	}
	switch pkt.Kind {
	case KindClean:
		// Receiver half: adopt the new incarnation, drop delivery
		// history, acknowledge. Accepting unconditionally is safe —
		// an adversarial CLEAN only forces a harmless extra cleanup.
		p.rxSession = pkt.Session
		p.rxSessionValid = true
		p.rxSeqValid = false
		e.send(from, Packet{Kind: KindCleanAck, Session: pkt.Session})
	case KindCleanAck:
		if p.state != senderCleaning || pkt.Session != p.session {
			e.stats.StaleIgnored++
			return
		}
		p.cleanAcks++
		p.stale = 0
		if p.cleanAcks > e.opts.Capacity {
			p.state = senderSteady
			p.seq = 0
			p.curValid = false
			p.acks = 0
			e.heartbeat(from)
		}
	case KindData:
		if !p.rxSessionValid || pkt.Session != p.rxSession {
			// Stale or unknown incarnation: ignore. The sender's
			// progress timeout will re-clean the link.
			e.stats.StaleIgnored++
			return
		}
		e.send(from, Packet{Kind: KindAck, Session: pkt.Session, Seq: pkt.Seq})
		if !p.rxSeqValid || pkt.Seq != p.rxSeq {
			p.rxSeq = pkt.Seq
			p.rxSeqValid = true
			if pkt.Payload != nil {
				e.stats.Delivered++
				e.deliver(from, pkt.Payload)
			}
		}
	case KindAck:
		if p.state != senderSteady || pkt.Session != p.session || pkt.Seq != p.seq || !p.curValid {
			e.stats.StaleIgnored++
			return
		}
		p.acks++
		p.stale = 0
		if p.acks >= e.opts.AckThreshold {
			// Token returned: cycle complete.
			e.stats.CyclesDone++
			p.seq ^= 1
			p.curValid = false
			p.acks = 0
			e.heartbeat(from)
		}
	default:
		e.stats.StaleIgnored++
	}
}

// CorruptState randomizes the endpoint's per-peer protocol state. It is the
// transient-fault hook used by the stabilization tests; the protocol must
// recover via cleaning.
func (e *Endpoint) CorruptState(rng *rand.Rand) {
	order := make([]ids.ID, 0, len(e.peers))
	for to := range e.peers {
		order = append(order, to)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, to := range order {
		p := e.peers[to]
		p.state = senderState(rng.Intn(4)) // includes invalid values
		p.session = uint64(rng.Int63())
		p.cleanAcks = rng.Intn(64)
		p.seq = uint8(rng.Intn(2))
		p.acks = rng.Intn(64)
		p.rxSession = uint64(rng.Int63())
		p.rxSessionValid = rng.Intn(2) == 0
		p.rxSeqValid = rng.Intn(2) == 0
	}
}
