// Package datalink implements the paper's self-stabilizing data-link layer
// (Section 2): a token-carrying stop-and-wait protocol over unreliable
// bounded-capacity channels, together with the snap-stabilizing link
// cleaning that newly established (or corrupted) links must perform before
// any message is handed to the reconfiguration, joining, or application
// layers.
//
// Two anti-parallel data links run over every processor pair: each side is
// the sender of its own link and the receiver of the other. The sender
// retransmits the current packet until enough acknowledgments arrive
// ("retransmitted until more than the total capacity acknowledgments
// arrive"); every completed exchange is a returned token, which doubles as
// the heartbeat consumed by the (N,Θ)-failure detector — when a processor
// is no longer active the token stops coming back.
//
// Cleaning follows the snap-stabilizing discipline of [15] adapted to pairs:
// the sender floods a nonce-tagged CLEAN packet and waits for strictly more
// than the channel capacity matching CLEAN-ACKs, which guarantees at least
// one genuine acknowledgment and that all stale packets of the previous
// incarnation have drained. Any detectable inconsistency (no progress for a
// timeout, unknown session on the receiver) drives the link back through
// cleaning, making the layer self-stabilizing.
//
// # Batching
//
// A stop-and-wait token cycle normally carries exactly one application
// payload, which caps throughput at one payload per round trip. With
// Options.MaxBatch > 1 each link keeps a bounded outbound queue
// (Enqueue); a DATA packet then carries up to MaxBatch queued payloads
// in its Batch slot, delivered in order as a unit on the receiving side.
// The token contract is unchanged — one DATA/ACK exchange per cycle, the
// returned token is still the heartbeat, cleaning works identically —
// only the payload multiplicity grows.
//
// Batched links additionally upgrade the packet label from the legacy
// alternating bit to a cumulative mod-256 sequence with strict in-order
// acceptance on the receiver, which makes delivery exactly-once and
// in-order even when a duplicated stale packet overtakes its successor.
// The legacy discipline (at-least-once under duplication+reordering,
// fine for the stack's idempotent latest-state gossip) is preserved
// bit-for-bit at MaxBatch <= 1 so that deterministic simulations keep
// their exact event sequences. Like the rest of the link options,
// MaxBatch must be configured uniformly across a cluster: the receiver
// picks its acceptance discipline from its own options.
//
// # Pipelining
//
// With Options.Window > 1 the sender additionally retires the two
// stop-and-wait taxes (DESIGN.md §14). First, the token cycle restarts
// on the acknowledgment itself instead of waiting for the next tick:
// when an ACK completes a cycle the sender immediately assembles and
// transmits the next DATA packet, so the cycle time drops from
// RTT-rounded-up-to-a-tick to the bare RTT. Second, up to Window cycles
// may be in flight at once, each with its own cumulative sequence
// number; the receiver keeps the strict in-order acceptance of the
// batching discipline (it only ever accepts rxSeq+1), and an ACK is
// cumulative — acknowledging sequence s completes every outstanding
// cycle up to and including s. Unacknowledged cycles are re-sent on
// every tick (the selective re-send) and the existing staleness timeout
// and session machinery are untouched, so the self-stabilization
// argument of the single-cycle link carries over: a window is just
// Window consecutive single cycles whose tokens can overlap in the
// channel, and cleaning still flushes all of them. Each session opens
// with a one-cycle slow start — the receiver anchors its sequence
// history on the first DATA it accepts after adopting a session, so
// the sender lets exactly one cycle win that race before widening to
// the full window (otherwise a lost first cycle could be overtaken by
// its successor and skipped forever). Window <= 1 (the default) is
// bit-identical to the legacy behavior. Like MaxBatch, Window must be
// uniform across a cluster.
//
// Options.AdaptiveBatch sizes the effective batch from an EWMA of the
// queue depth observed at each drain (clamped to [1, MaxBatch]) instead
// of always draining up to the static bound: light load keeps packets
// small and latency low, heavy load grows batches toward MaxBatch. The
// EWMA uses integer fixed-point arithmetic so simulations stay
// byte-identical across platforms.
package datalink

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
)

// Kind enumerates packet types.
type Kind int

// Packet kinds. Data/Clean travel from the link's sender; Ack/CleanAck
// travel back from the link's receiver.
const (
	KindClean Kind = iota + 1
	KindCleanAck
	KindData
	KindAck
)

func (k Kind) String() string {
	switch k {
	case KindClean:
		return "CLEAN"
	case KindCleanAck:
		return "CLEAN-ACK"
	case KindData:
		return "DATA"
	case KindAck:
		return "ACK"
	default:
		return "?"
	}
}

// Packet is the low-level unit exchanged through the network. Per the
// paper's labeling discipline, packets are identified by the data link they
// belong to; here the (sender, receiver) identities come from the transport
// and Session plays the role of the cleaned-link incarnation label.
type Packet struct {
	Kind    Kind
	Session uint64 // link incarnation nonce established by cleaning
	Seq     uint8  // packet label within a session (alternating bit, or cumulative mod 256 on batched links)
	Payload any    // application message (KindData only, single-payload cycles)
	// Batch carries the payloads of a multi-payload cycle (KindData only,
	// nil on unbatched links and single-payload cycles). The batch is
	// acknowledged, retransmitted, and delivered as one unit, in order.
	// Payload and Batch are mutually exclusive: when Batch is non-nil,
	// Payload is ignored by the receiver and not carried by the wire
	// codec.
	Batch []any
}

// Options tunes the link protocol.
type Options struct {
	// Capacity is the channel capacity bound (the paper's cap); cleaning
	// demands Capacity+1 matching CLEAN-ACKs.
	Capacity int
	// AckThreshold is the number of acknowledgments that complete a data
	// token cycle. The paper's fully bounded construction uses
	// Capacity+1; with nonce-tagged sessions a single acknowledgment
	// already implies genuine receipt, so the default is 1 (set it to
	// Capacity+1 to run in strict paper mode — experiment E10 measures
	// the difference).
	AckThreshold int
	// StaleTicks is the number of sender ticks without progress after
	// which the link is re-cleaned.
	StaleTicks int
	// MaxBatch bounds both the per-link outbound queue and the number of
	// payloads one DATA packet carries. Values <= 1 keep the legacy
	// single-payload alternating-bit contract exactly (the queue is
	// still usable, one payload per cycle); values > 1 enable batching
	// and the strict cumulative-sequence discipline (see the package
	// comment). Must be uniform across a cluster.
	MaxBatch int
	// Window bounds the number of DATA cycles a sender keeps in flight
	// at once. Values <= 1 keep the legacy one-outstanding-cycle
	// contract bit-identically; values > 1 enable pipelining — the
	// cycle restarts on ack instead of the next tick and up to Window
	// cycles overlap under the strict cumulative-sequence discipline
	// (see the package comment). Clamped to [1, 64] so in-flight
	// sequence numbers stay unambiguous mod 256. Must be uniform
	// across a cluster (the receiver's acceptance discipline follows
	// its own options). The outbound queue bound grows to
	// MaxBatch×Window so a full window of full batches can be staged.
	Window int
	// AdaptiveBatch, when true, sizes each drain from an EWMA of the
	// observed queue depth (clamped to [1, MaxBatch]) instead of the
	// static MaxBatch bound. False keeps the static drain bit-identical.
	AdaptiveBatch bool
}

// DefaultOptions matches netsim.DefaultOptions' capacity.
func DefaultOptions() Options {
	return Options{Capacity: 8, AckThreshold: 1, StaleTicks: 12, MaxBatch: 1, Window: 1}
}

// MaxWindow bounds Options.Window: well below 128 so an in-flight
// sequence number can never be confused with a stale ack from the same
// session 256 cycles earlier (the bounded channel cannot hold packets
// that old anyway; the clamp makes it structural). Exported so flag
// validation can refuse out-of-range values instead of clamping.
const MaxWindow = 64

type senderState int

const (
	senderCleaning senderState = iota + 1
	senderSteady
)

// cycle is one in-flight DATA exchange of a pipelined (Window > 1)
// link: its sequence label, payload(s), ack count and the endpoint tick
// at which it was first sent (for the ack-RTT histogram).
type cycle struct {
	seq      uint8
	payload  any
	batch    []any
	acks     int
	sentTick uint64
}

type peer struct {
	// sender half (this endpoint's own data link toward the peer)
	state     senderState
	session   uint64
	cleanAcks int
	seq       uint8
	cur       any
	curBatch  []any // multi-payload cycle (batched links only)
	curValid  bool
	curTick   uint64 // endpoint tick at which cur was first sent
	acks      int
	stale     int
	// inflight holds the outstanding cycles of a pipelined link
	// (Window > 1), oldest first, with consecutive sequence numbers
	// ending just below seq (the next label to assign). Empty on
	// legacy links, which use the cur* single slot above.
	inflight []cycle
	// sessionAcked reports that at least one cycle of the current
	// session has completed. Until then a pipelined sender keeps its
	// window at 1 (slow start): the receiver anchors its sequence
	// history on the first DATA it accepts after adopting a session,
	// so the sender must not have two cycles racing for that anchor —
	// if cycle 0 lost the race to cycle 1, cycle 0's payload would be
	// skipped forever (the receiver only accepts successors) yet
	// completed by the cumulative ack.
	sessionAcked bool
	// ewma16 is the adaptive-batch queue-depth estimate in 1/16 units
	// (integer fixed point keeps simulations byte-identical).
	ewma16 int
	// queue is the bounded per-link outbound queue drained into DATA
	// batches; Enqueue evicts the oldest entry when it overflows.
	queue []any

	// receiver half (the peer's data link toward this endpoint)
	rxSession      uint64
	rxSessionValid bool
	rxSeq          uint8
	rxSeqValid     bool
	// rxPending/rxPendingCnt stage a session change on batched links:
	// a new incarnation is adopted only after more than Capacity CLEAN
	// observations, so the bounded set of stale CLEANs a channel can
	// hold (duplicates of past sessions included) can never displace
	// the live session's sequence history.
	rxPending    uint64
	rxPendingCnt int
}

// Endpoint is one processor's data-link multiplexer over all its peers.
// It is a pure step machine: the owner invokes Tick and HandlePacket, and
// the endpoint calls back through the injected functions.
//
// Concurrency: protocol steps run in the owner's single execution
// context, but observability readers (a /metrics scrape, a load tool)
// poll Stats, QueueLen and QueuedTotal from other goroutines while the
// owner ticks. A mutex guards the peer table and queues; the event
// counters are atomics read lock-free. Callbacks (send, deliver,
// heartbeat, source) are invoked with the mutex held and must not
// re-enter the endpoint — the stack satisfies this by construction:
// every Endpoint call in core.Node is a top-level step, never nested
// inside a callback.
type Endpoint struct {
	self ids.ID
	opts Options
	rng  *rand.Rand

	mu    sync.Mutex // guards peers and all per-peer protocol state
	peers map[ids.ID]*peer
	// queued tracks the total outbound-queue depth across links for the
	// queue-depth gauge, maintained alongside every queue mutation.
	queued atomic.Int64
	// inflightN tracks the total in-flight DATA cycles across links for
	// the pipelining window gauge (legacy links count their single
	// outstanding cycle).
	inflightN atomic.Int64
	// ticks counts Tick invocations; cycle ack RTTs are measured in it.
	ticks uint64
	// ackRTT, when set (SetAckRTTObserver), observes the tick-measured
	// RTT of every completed DATA cycle. Called with the mutex held —
	// observers must be cheap and must not re-enter the endpoint.
	ackRTT func(ticks uint64)

	// send transmits a raw packet through the (unreliable) network.
	send func(to ids.ID, pkt Packet)
	// deliver hands a cleanly received message to the upper layer.
	deliver func(from ids.ID, msg any)
	// heartbeat reports a returned token (the peer is alive).
	heartbeat func(peer ids.ID)
	// source produces the current outgoing message for a peer at the
	// start of each token cycle; returning nil skips the cycle's payload
	// (an empty token is still exchanged, so heartbeats keep flowing).
	source func(to ids.ID) any

	stats statsCounters
}

// statsCounters are the live event counters, atomic so a concurrent
// /metrics scrape reads them without taking the endpoint mutex.
type statsCounters struct {
	cleanings     atomic.Uint64
	cyclesDone    atomic.Uint64
	delivered     atomic.Uint64
	staleIgnored  atomic.Uint64
	timeoutsReset atomic.Uint64
	batches       atomic.Uint64
	batchPayloads atomic.Uint64
	queueEvicted  atomic.Uint64
}

// Stats is a snapshot of the endpoint's link-level event counters, used
// by the benchmarks and exported (via counter views) on /metrics.
type Stats struct {
	Cleanings     uint64
	CyclesDone    uint64
	Delivered     uint64
	StaleIgnored  uint64
	TimeoutsReset uint64
	// Batches counts multi-payload DATA cycles completed by the sender;
	// BatchPayloads counts payloads delivered out of received batches;
	// QueueEvicted counts queued payloads displaced by Enqueue overflow.
	Batches       uint64
	BatchPayloads uint64
	QueueEvicted  uint64
}

// Config carries the injected callbacks for NewEndpoint.
type Config struct {
	Self      ids.ID
	Opts      Options
	Rand      *rand.Rand
	Send      func(to ids.ID, pkt Packet)
	Deliver   func(from ids.ID, msg any)
	Heartbeat func(peer ids.ID)
	Source    func(to ids.ID) any
}

// NewEndpoint constructs an endpoint. All callbacks must be non-nil except
// Deliver/Heartbeat/Source which may be nil (treated as no-ops).
func NewEndpoint(cfg Config) *Endpoint {
	if cfg.Opts.Capacity <= 0 {
		// Field-wise so a caller setting only MaxBatch (or another
		// single knob) still gets the remaining defaults.
		cfg.Opts.Capacity = DefaultOptions().Capacity
	}
	if cfg.Opts.AckThreshold <= 0 {
		cfg.Opts.AckThreshold = 1
	}
	if cfg.Opts.StaleTicks <= 0 {
		cfg.Opts.StaleTicks = 12
	}
	if cfg.Opts.MaxBatch <= 0 {
		cfg.Opts.MaxBatch = 1
	}
	if cfg.Opts.Window <= 0 {
		cfg.Opts.Window = 1
	}
	if cfg.Opts.Window > MaxWindow {
		cfg.Opts.Window = MaxWindow
	}
	e := &Endpoint{
		self:      cfg.Self,
		opts:      cfg.Opts,
		rng:       cfg.Rand,
		peers:     make(map[ids.ID]*peer),
		send:      cfg.Send,
		deliver:   cfg.Deliver,
		heartbeat: cfg.Heartbeat,
		source:    cfg.Source,
	}
	if e.deliver == nil {
		e.deliver = func(ids.ID, any) {}
	}
	if e.heartbeat == nil {
		e.heartbeat = func(ids.ID) {}
	}
	if e.source == nil {
		e.source = func(ids.ID) any { return nil }
	}
	return e
}

// Stats returns a snapshot of the endpoint counters. It is safe to call
// concurrently with protocol steps (each field is an atomic read; the
// snapshot is per-field consistent, not cross-field).
func (e *Endpoint) Stats() Stats {
	return Stats{
		Cleanings:     e.stats.cleanings.Load(),
		CyclesDone:    e.stats.cyclesDone.Load(),
		Delivered:     e.stats.delivered.Load(),
		StaleIgnored:  e.stats.staleIgnored.Load(),
		TimeoutsReset: e.stats.timeoutsReset.Load(),
		Batches:       e.stats.batches.Load(),
		BatchPayloads: e.stats.batchPayloads.Load(),
		QueueEvicted:  e.stats.queueEvicted.Load(),
	}
}

// QueuedTotal returns the total outbound-queue depth across all links
// (the /metrics queue-depth gauge), without taking the endpoint mutex.
func (e *Endpoint) QueuedTotal() int64 { return e.queued.Load() }

// MaxBatch returns the configured payload bound per DATA packet.
func (e *Endpoint) MaxBatch() int { return e.opts.MaxBatch }

// Window returns the configured in-flight cycle bound (after clamping).
func (e *Endpoint) Window() int { return e.opts.Window }

// InflightTotal returns the total in-flight DATA cycles across all
// links (the /metrics pipelining gauge), without taking the endpoint
// mutex.
func (e *Endpoint) InflightTotal() int64 { return e.inflightN.Load() }

// SetAckRTTObserver installs fn to observe the tick-measured RTT of
// every completed DATA cycle (time from first transmission to the
// completing acknowledgment, in endpoint ticks). fn runs with the
// endpoint mutex held: it must be cheap and must not re-enter the
// endpoint. A nil fn removes the observer.
func (e *Endpoint) SetAckRTTObserver(fn func(ticks uint64)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ackRTT = fn
}

// batched reports whether the endpoint runs the batching discipline.
func (e *Endpoint) batched() bool { return e.opts.MaxBatch > 1 }

// windowed reports whether the endpoint runs the pipelining discipline.
func (e *Endpoint) windowed() bool { return e.opts.Window > 1 }

// strict reports whether the receiver applies the strict
// cumulative-sequence acceptance (batched or pipelined links; the
// legacy alternating-bit discipline otherwise).
func (e *Endpoint) strict() bool { return e.batched() || e.windowed() }

// queueCap is the outbound queue bound: one full batch per window slot.
func (e *Endpoint) queueCap() int { return e.opts.MaxBatch * e.opts.Window }

// Enqueue appends a payload to the link's outbound queue; the next token
// cycle drains up to MaxBatch queued payloads into one DATA packet.
// When the queue is full the oldest entry is evicted (an omission the
// bounded-link model allows — producers that need lossless queueing pace
// themselves on QueueLen). It reports false for unknown peers and nil
// payloads.
func (e *Endpoint) Enqueue(to ids.ID, payload any) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.peers[to]
	if !ok || payload == nil {
		return false
	}
	if len(p.queue) >= e.queueCap() {
		p.queue = p.queue[1:]
		e.queued.Add(-1)
		e.stats.queueEvicted.Add(1)
	}
	p.queue = append(p.queue, payload)
	e.queued.Add(1)
	return true
}

// QueueLen returns the number of payloads queued toward a peer. Safe to
// call concurrently with protocol steps.
func (e *Endpoint) QueueLen(to ids.ID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.peers[to]; ok {
		return len(p.queue)
	}
	return 0
}

// Peers returns the identifiers of all known peers.
func (e *Endpoint) Peers() ids.Set {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := ids.Set{}
	//repolint:allow determinism -- set insertion is commutative; the resulting ids.Set is identical for every iteration order
	for id := range e.peers {
		out = out.Add(id)
	}
	return out
}

// Connect establishes (or re-establishes) the data link toward a peer,
// starting from the cleaning phase, as the paper requires for every newly
// established link. It is idempotent for already-known peers.
func (e *Endpoint) Connect(to ids.ID) {
	if to == e.self || !to.Valid() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.peers[to]; ok {
		return
	}
	p := &peer{}
	e.peers[to] = p
	e.startClean(p)
}

// Disconnect forgets a peer entirely (used when the failure detector has
// permanently given up on it, to bound state).
func (e *Endpoint) Disconnect(to ids.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.peers[to]; ok {
		e.queued.Add(-int64(len(p.queue)))
		e.dropInflight(p)
		delete(e.peers, to)
	}
}

func (e *Endpoint) startClean(p *peer) {
	p.state = senderCleaning
	p.session = e.nonce()
	p.cleanAcks = 0
	p.cur, p.curBatch = nil, nil
	if p.curValid {
		e.inflightN.Add(-1)
	}
	p.curValid = false
	e.dropInflight(p)
	p.sessionAcked = false
	p.acks = 0
	p.stale = 0
	e.stats.cleanings.Add(1)
}

// dropInflight abandons every outstanding pipelined cycle (cleaning,
// corruption recovery, disconnect), keeping the in-flight gauge honest.
func (e *Endpoint) dropInflight(p *peer) {
	if len(p.inflight) > 0 {
		e.inflightN.Add(-int64(len(p.inflight)))
		p.inflight = nil
	}
}

func (e *Endpoint) nonce() uint64 {
	if e.rng != nil {
		return uint64(e.rng.Int63())<<1 | 1
	}
	return 1
}

// Tick drives retransmission for every peer in ascending identifier order
// (map order would make same-seed simulations diverge across runs); the
// owner calls it on its periodic timer.
func (e *Endpoint) Tick() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ticks++
	order := make([]ids.ID, 0, len(e.peers))
	for to := range e.peers {
		order = append(order, to)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, to := range order {
		e.tickPeer(to, e.peers[to])
	}
}

func (e *Endpoint) tickPeer(to ids.ID, p *peer) {
	switch p.state {
	case senderCleaning:
		e.send(to, Packet{Kind: KindClean, Session: p.session})
	case senderSteady:
		if e.windowed() {
			// Selective re-send: every still-unacknowledged cycle,
			// oldest first, then top the window up with new cycles.
			for i := range p.inflight {
				c := &p.inflight[i]
				e.send(to, Packet{Kind: KindData, Session: p.session, Seq: c.seq, Payload: c.payload, Batch: c.batch})
			}
			e.fillWindow(to, p, false)
			break
		}
		if !p.curValid {
			p.cur, p.curBatch = e.nextPayload(to, p)
			p.curValid = true
			p.curTick = e.ticks
			p.acks = 0
			e.inflightN.Add(1)
		}
		e.send(to, Packet{Kind: KindData, Session: p.session, Seq: p.seq, Payload: p.cur, Batch: p.curBatch})
	default:
		// Arbitrary (corrupted) state: recover by cleaning.
		e.startClean(p)
		return
	}
	p.stale++
	if p.stale > e.opts.StaleTicks {
		e.stats.timeoutsReset.Add(1)
		e.startClean(p)
	}
}

// fillWindow starts new DATA cycles until the pipelining window is full
// or there is nothing useful to send. On a tick (onAck false) the first
// cycle of an empty window may fall back to the pull Source, so an idle
// link still exchanges one token per tick and heartbeats keep flowing;
// further slots — and every ack-time refill — are filled only from the
// outbound queue: pipelining copies of the same latest-state snapshot
// would waste channel capacity for no information, and an idle link
// restarting empty cycles on ack would ping-pong at the network RTT
// instead of the tick period.
func (e *Endpoint) fillWindow(to ids.ID, p *peer, onAck bool) {
	limit := e.opts.Window
	if !p.sessionAcked {
		// Slow start: one cycle until the session's first completion
		// anchors the receiver's sequence history at this session's
		// first label (see peer.sessionAcked).
		limit = 1
	}
	for len(p.inflight) < limit {
		if len(p.queue) == 0 && (onAck || len(p.inflight) > 0) {
			return
		}
		payload, batch := e.nextPayload(to, p)
		c := cycle{seq: p.seq, payload: payload, batch: batch, sentTick: e.ticks}
		p.seq++
		p.inflight = append(p.inflight, c)
		e.inflightN.Add(1)
		e.send(to, Packet{Kind: KindData, Session: p.session, Seq: c.seq, Payload: c.payload, Batch: c.batch})
	}
}

// ewmaShift is the adaptive-batch smoothing factor: the estimate moves
// 1/4 of the way toward each observation (alpha = 0.25), in 1/16
// fixed-point units.
const ewmaShift = 4

// nextPayload assembles the payload(s) of a new token cycle: queued
// payloads first (up to the batch bound, the freshest last), falling
// back to the pull Source when the queue is empty. A single payload
// travels in the legacy Payload slot so unbatched traffic keeps its
// exact shape. The static batch bound is MaxBatch; with AdaptiveBatch
// it is an EWMA of the queue depth observed at each drain, clamped to
// [1, MaxBatch], so light load ships small low-latency packets and
// heavy load grows toward the static bound.
func (e *Endpoint) nextPayload(to ids.ID, p *peer) (any, []any) {
	limit := e.opts.MaxBatch
	if e.opts.AdaptiveBatch {
		// ewma += (observation - ewma) / 4, in 1/16 units.
		p.ewma16 += (len(p.queue)<<ewmaShift - p.ewma16) >> 2
		limit = (p.ewma16 + (1 << ewmaShift) - 1) >> ewmaShift // ceil
		if limit < 1 {
			limit = 1
		}
		if limit > e.opts.MaxBatch {
			limit = e.opts.MaxBatch
		}
	}
	if len(p.queue) == 0 {
		return e.source(to), nil
	}
	k := len(p.queue)
	if k > limit {
		k = limit
	}
	if k == 1 {
		single := p.queue[0]
		p.queue = p.queue[1:]
		e.queued.Add(-1)
		return single, nil
	}
	batch := make([]any, k)
	copy(batch, p.queue[:k])
	p.queue = append([]any(nil), p.queue[k:]...)
	e.queued.Add(-int64(k))
	return nil, batch
}

// HandlePacket processes a raw packet from the network. Packets from
// unknown peers implicitly establish the link (the "connection signal"),
// starting with cleaning on this side too.
func (e *Endpoint) HandlePacket(from ids.ID, pkt Packet) {
	if from == e.self || !from.Valid() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.peers[from]
	if !ok {
		p = &peer{}
		e.peers[from] = p
		e.startClean(p)
	}
	switch pkt.Kind {
	case KindClean:
		// Receiver half: adopt the new incarnation, drop delivery
		// history, acknowledge. On legacy links adoption is
		// unconditional (bit-for-bit the original behavior; safe there
		// because delivery is at-least-once anyway — an adversarial
		// CLEAN only forces a harmless extra cleanup). Batched links
		// promise exactly-once, so a stale CLEAN — a duplicate of the
		// current session, or of a *past* one — must not reset the
		// sequence history and reopen the acceptance window for
		// overtaken DATA. A genuinely cleaning sender floods CLEANs
		// and sends no DATA until done (it needs Capacity+1
		// CLEAN-ACKs to proceed), so the receiver adopts a session
		// change only after more than Capacity uninterrupted
		// observations of the same new session — the staged count is
		// reset by live DATA delivery. Stale CLEANs (the bounded set a
		// channel can hold, plus delayed duplicates) arrive
		// interleaved with live traffic and therefore cannot sustain
		// the flood signature; even if an adversary could, the
		// displacement self-heals through the sender's staleness
		// re-clean. Every CLEAN is acknowledged regardless — acks
		// carry the packet's own session, so acks of a not-yet-adopted
		// session still drive the sender's handshake and stale acks
		// are ignored by session mismatch.
		switch {
		case !e.strict() || !p.rxSessionValid:
			p.rxSession = pkt.Session
			p.rxSessionValid = true
			p.rxSeqValid = false
			p.rxPendingCnt = 0
		case pkt.Session == p.rxSession:
			// Duplicate of the live session: re-ack only.
		case pkt.Session == p.rxPending:
			p.rxPendingCnt++
			if p.rxPendingCnt > e.opts.Capacity {
				p.rxSession = pkt.Session
				p.rxSeqValid = false
				p.rxPendingCnt = 0
			}
		default:
			p.rxPending = pkt.Session
			p.rxPendingCnt = 1
		}
		e.send(from, Packet{Kind: KindCleanAck, Session: pkt.Session})
	case KindCleanAck:
		if p.state != senderCleaning || pkt.Session != p.session {
			e.stats.staleIgnored.Add(1)
			return
		}
		p.cleanAcks++
		p.stale = 0
		if p.cleanAcks > e.opts.Capacity {
			p.state = senderSteady
			p.seq = 0
			p.curValid = false
			p.acks = 0
			e.heartbeat(from)
		}
	case KindData:
		if !p.rxSessionValid || pkt.Session != p.rxSession {
			// Stale or unknown incarnation: ignore. The sender's
			// progress timeout will re-clean the link.
			e.stats.staleIgnored.Add(1)
			return
		}
		if e.strict() {
			// Strict cumulative-sequence discipline: accept only the
			// successor cycle (or the first after cleaning), re-ack the
			// already-delivered cycle, and stay silent on overtaking
			// stale duplicates — exactly-once, in-order delivery.
			switch {
			case !p.rxSeqValid || pkt.Seq == p.rxSeq+1:
				e.send(from, Packet{Kind: KindAck, Session: pkt.Session, Seq: pkt.Seq})
				p.rxSeq = pkt.Seq
				p.rxSeqValid = true
				// Live traffic resets any staged session change: a
				// genuinely cleaning sender sends no DATA, so only an
				// uninterrupted CLEAN flood can reach the adoption
				// threshold (see KindClean).
				p.rxPendingCnt = 0
				e.deliverData(from, pkt)
			case pkt.Seq == p.rxSeq:
				e.send(from, Packet{Kind: KindAck, Session: pkt.Session, Seq: pkt.Seq})
			default:
				e.stats.staleIgnored.Add(1)
			}
			return
		}
		e.send(from, Packet{Kind: KindAck, Session: pkt.Session, Seq: pkt.Seq})
		if !p.rxSeqValid || pkt.Seq != p.rxSeq {
			p.rxSeq = pkt.Seq
			p.rxSeqValid = true
			e.deliverData(from, pkt)
		}
	case KindAck:
		if e.windowed() {
			e.handleWindowAck(from, p, pkt)
			return
		}
		if p.state != senderSteady || pkt.Session != p.session || pkt.Seq != p.seq || !p.curValid {
			e.stats.staleIgnored.Add(1)
			return
		}
		p.acks++
		p.stale = 0
		if p.acks >= e.opts.AckThreshold {
			// Token returned: cycle complete.
			e.stats.cyclesDone.Add(1)
			if len(p.curBatch) > 0 {
				e.stats.batches.Add(1)
			}
			e.observeAckRTT(e.ticks - p.curTick)
			if e.strict() {
				p.seq++ // cumulative mod-256 label
			} else {
				p.seq ^= 1 // legacy alternating bit
			}
			p.cur, p.curBatch = nil, nil
			p.curValid = false
			p.acks = 0
			e.inflightN.Add(-1)
			e.heartbeat(from)
		}
	default:
		e.stats.staleIgnored.Add(1)
	}
}

// handleWindowAck processes an acknowledgment on a pipelined link. The
// receiver only ever accepts cycles in sequence order, so an ack for
// sequence s is cumulative: it completes every outstanding cycle up to
// and including s. Completion immediately tops the window back up
// (fillWindow) — this is the pipelining lever, the next token cycle
// starts on the ack instead of the next tick.
func (e *Endpoint) handleWindowAck(from ids.ID, p *peer, pkt Packet) {
	if p.state != senderSteady || pkt.Session != p.session {
		e.stats.staleIgnored.Add(1)
		return
	}
	idx := -1
	for i := range p.inflight {
		if p.inflight[i].seq == pkt.Seq {
			idx = i
			break
		}
	}
	if idx < 0 {
		e.stats.staleIgnored.Add(1)
		return
	}
	p.inflight[idx].acks++
	p.stale = 0
	if p.inflight[idx].acks < e.opts.AckThreshold {
		return
	}
	for i := 0; i <= idx; i++ {
		c := &p.inflight[i]
		e.stats.cyclesDone.Add(1)
		if len(c.batch) > 0 {
			e.stats.batches.Add(1)
		}
		e.observeAckRTT(e.ticks - c.sentTick)
	}
	p.inflight = append(p.inflight[:0:0], p.inflight[idx+1:]...)
	e.inflightN.Add(-int64(idx + 1))
	p.sessionAcked = true // receiver anchored; open the full window
	e.heartbeat(from)
	e.fillWindow(from, p, true)
}

// observeAckRTT feeds a completed cycle's tick-measured RTT to the
// installed observer, if any.
func (e *Endpoint) observeAckRTT(ticks uint64) {
	if e.ackRTT != nil {
		e.ackRTT(ticks)
	}
}

// deliverData hands a DATA packet's payload(s) to the upper layer: every
// batch element in order, or the single legacy payload.
func (e *Endpoint) deliverData(from ids.ID, pkt Packet) {
	if pkt.Batch != nil {
		for _, payload := range pkt.Batch {
			if payload == nil {
				continue
			}
			e.stats.delivered.Add(1)
			e.stats.batchPayloads.Add(1)
			e.deliver(from, payload)
		}
		return
	}
	if pkt.Payload != nil {
		e.stats.delivered.Add(1)
		e.deliver(from, pkt.Payload)
	}
}

// CorruptState randomizes the endpoint's per-peer protocol state. It is the
// transient-fault hook used by the stabilization tests; the protocol must
// recover via cleaning.
func (e *Endpoint) CorruptState(rng *rand.Rand) {
	order := make([]ids.ID, 0, len(e.peers))
	for to := range e.peers {
		order = append(order, to)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, to := range order {
		p := e.peers[to]
		p.state = senderState(rng.Intn(4)) // includes invalid values
		p.session = uint64(rng.Int63())
		p.cleanAcks = rng.Intn(64)
		p.seq = uint8(rng.Intn(2))
		p.acks = rng.Intn(64)
		p.rxSession = uint64(rng.Int63())
		p.rxSessionValid = rng.Intn(2) == 0
		p.rxSeqValid = rng.Intn(2) == 0
		// A transient fault may also lose the pipelined in-flight set;
		// recovery must come from cleaning either way.
		if e.windowed() && rng.Intn(2) == 0 {
			e.dropInflight(p)
		}
	}
}
