// Package smr provides replicated state machines on top of the paper's
// self-stabilizing reconfigurable virtual synchrony (Section 4.3): the
// virtually synchronous multicast of internal/vs totally orders commands
// within views, and view/configuration changes carry the state across, so
// a deterministic state machine replicated through this package keeps its
// state through crashes, joins, and delicate reconfigurations.
package smr

import (
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/vs"
)

// StateMachine is a deterministic application automaton. State values are
// treated as immutable snapshots: Apply must not mutate its input.
type StateMachine interface {
	// Init returns the initial state.
	Init() any
	// Apply returns the state after executing cmd.
	Apply(state any, cmd any) any
}

// Applied is one command execution record: which member submitted the
// command in which round of which view.
type Applied struct {
	View   vs.View
	Rnd    uint64
	Member ids.ID
	Cmd    any
}

// Batch is one member's multi-command round input: Fetch bundles up to
// MaxBatch pending commands into a single Batch when command batching is
// enabled, so one multicast round orders several client commands per
// member instead of one. Apply and Deliver unfold it in submission
// order, so the replicated execution is identical to the commands
// arriving over consecutive rounds — just cheaper. The type travels
// between processes inside vs rounds (transport/wire registers it).
type Batch struct {
	Cmds []any
}

// Commands flattens a round input: the commands of a Batch in order, or
// the input itself as a one-element sequence. Consumers that inspect
// round inputs (delivery hooks, logs) use it to stay batching-agnostic.
func Commands(input any) []any {
	if b, ok := input.(Batch); ok {
		return b.Cmds
	}
	return []any{input}
}

// Replica replicates a StateMachine through virtual synchrony. It
// implements vs.App; wire it into a vs.Manager and a core.Node.
type Replica struct {
	self    ids.ID
	sm      StateMachine
	pending []any
	// MaxPending bounds the client submission queue (0 = 64).
	MaxPending int
	// MaxBatch bounds the commands Fetch bundles into one round input
	// (<= 1 keeps the legacy one-command-per-round behavior exactly).
	MaxBatch int
	// AdaptiveBatch, when true, bounds each bundle by an EWMA of the
	// pending-queue depth observed at each Fetch (clamped to
	// [1, MaxBatch]) instead of the static MaxBatch, mirroring the
	// datalink's adaptive drain: light load ships single commands with
	// minimal latency, heavy load grows bundles toward the knee. False
	// keeps the static bound bit-identical.
	AdaptiveBatch bool
	ewma16        int // fixed-point (1/16) EWMA of observed queue depth

	log []Applied
}

var _ vs.App = (*Replica)(nil)

// NewReplica builds a replica of the given machine for processor self.
func NewReplica(self ids.ID, sm StateMachine) *Replica {
	return &Replica{self: self, sm: sm}
}

// Submit enqueues a command for replication. It reports false when the
// local queue is full (the caller retries later).
func (r *Replica) Submit(cmd any) bool {
	limit := r.MaxPending
	if limit <= 0 {
		limit = 64
	}
	if len(r.pending) >= limit {
		return false
	}
	r.pending = append(r.pending, cmd)
	return true
}

// PendingLen returns the number of unsent commands.
func (r *Replica) PendingLen() int { return len(r.pending) }

// Log returns a copy of the applied-command log.
func (r *Replica) Log() []Applied {
	out := make([]Applied, len(r.log))
	copy(out, r.log)
	return out
}

// InitState implements vs.App.
func (r *Replica) InitState() any { return r.sm.Init() }

// Apply implements vs.App: execute the round's commands in ascending
// member order (the deterministic order virtual synchrony prescribes),
// unfolding each member's Batch in submission order.
func (r *Replica) Apply(state any, round vs.Round) any {
	members := make([]ids.ID, 0, len(round.Inputs))
	for m := range round.Inputs {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, m := range members {
		for _, cmd := range Commands(round.Inputs[m]) {
			state = r.sm.Apply(state, cmd)
		}
	}
	return state
}

// Fetch implements vs.App: the next pending command, or — with MaxBatch
// > 1 — up to MaxBatch of them bundled into one Batch. A single pending
// command always travels bare, so batch-1 traffic keeps its exact shape.
func (r *Replica) Fetch() any {
	limit := r.MaxBatch
	if r.AdaptiveBatch && r.MaxBatch > 1 {
		// ewma += (observation - ewma) / 4, in 1/16 fixed point —
		// integer arithmetic so deterministic simulations stay
		// byte-identical across platforms.
		r.ewma16 += (len(r.pending)<<4 - r.ewma16) >> 2
		limit = (r.ewma16 + 15) >> 4 // ceil
		if limit < 1 {
			limit = 1
		}
		if limit > r.MaxBatch {
			limit = r.MaxBatch
		}
	}
	if len(r.pending) == 0 {
		return nil
	}
	k := 1
	if limit > 1 {
		k = limit
		if k > len(r.pending) {
			k = len(r.pending)
		}
	}
	if k == 1 {
		next := r.pending[0]
		r.pending = r.pending[1:]
		return next
	}
	cmds := make([]any, k)
	copy(cmds, r.pending[:k])
	r.pending = append([]any(nil), r.pending[k:]...)
	return Batch{Cmds: cmds}
}

// Deliver implements vs.App: record the round's commands in the log,
// one entry per command (batches unfold in submission order).
func (r *Replica) Deliver(round vs.Round) {
	members := make([]ids.ID, 0, len(round.Inputs))
	for m := range round.Inputs {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, m := range members {
		for _, cmd := range Commands(round.Inputs[m]) {
			r.log = append(r.log, Applied{
				View: round.View, Rnd: round.Rnd, Member: m, Cmd: cmd,
			})
		}
	}
	const logBound = 4096
	if len(r.log) > logBound {
		r.log = r.log[len(r.log)-logBound:]
	}
}

// --- KV state machine ---

// KVOp is the operation kind of a KVCmd.
type KVOp int

// KV operations.
const (
	KVPut KVOp = iota + 1
	KVDelete
)

// KVCmd mutates a replicated key-value store.
type KVCmd struct {
	Op    KVOp
	Key   string
	Value string
}

func (c KVCmd) String() string {
	if c.Op == KVDelete {
		return fmt.Sprintf("del(%s)", c.Key)
	}
	return fmt.Sprintf("put(%s=%s)", c.Key, c.Value)
}

// KVMachine is a replicated map[string]string.
type KVMachine struct{}

var _ StateMachine = KVMachine{}

// Init implements StateMachine.
func (KVMachine) Init() any { return map[string]string{} }

// Apply implements StateMachine (copy-on-write; states are snapshots).
func (KVMachine) Apply(state any, cmd any) any {
	m, _ := state.(map[string]string)
	c, ok := cmd.(KVCmd)
	if !ok {
		return state
	}
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	switch c.Op {
	case KVPut:
		out[c.Key] = c.Value
	case KVDelete:
		delete(out, c.Key)
	}
	return out
}

// KVGet reads a key from a state snapshot.
func KVGet(state any, key string) (string, bool) {
	m, _ := state.(map[string]string)
	v, ok := m[key]
	return v, ok
}

// --- Bank state machine ---

// BankCmd moves Amount from one account to another (creating accounts on
// demand); transfers that would overdraw are rejected deterministically.
type BankCmd struct {
	From, To string
	Amount   int64
}

// BankMachine is a replicated ledger whose invariant — the total balance
// is constant — the property tests verify across reconfigurations.
type BankMachine struct {
	// InitialAccounts seeds the ledger.
	InitialAccounts map[string]int64
}

var _ StateMachine = BankMachine{}

// Init implements StateMachine.
func (b BankMachine) Init() any {
	out := make(map[string]int64, len(b.InitialAccounts))
	for k, v := range b.InitialAccounts {
		out[k] = v
	}
	return out
}

// Apply implements StateMachine.
func (BankMachine) Apply(state any, cmd any) any {
	m, _ := state.(map[string]int64)
	c, ok := cmd.(BankCmd)
	if !ok || c.Amount <= 0 {
		return state
	}
	if m[c.From] < c.Amount {
		return state // deterministic rejection
	}
	out := make(map[string]int64, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out[c.From] -= c.Amount
	out[c.To] += c.Amount
	return out
}

// BankTotal sums all balances in a state snapshot.
func BankTotal(state any) int64 {
	m, _ := state.(map[string]int64)
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// BankBalance reads one account.
func BankBalance(state any, account string) int64 {
	m, _ := state.(map[string]int64)
	return m[account]
}
