package smr

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/vs"
)

func TestKVMachineApply(t *testing.T) {
	var m KVMachine
	s0 := m.Init()
	s1 := m.Apply(s0, KVCmd{Op: KVPut, Key: "a", Value: "1"})
	s2 := m.Apply(s1, KVCmd{Op: KVPut, Key: "b", Value: "2"})
	s3 := m.Apply(s2, KVCmd{Op: KVDelete, Key: "a"})

	if v, ok := KVGet(s2, "a"); !ok || v != "1" {
		t.Fatalf("s2[a] = %q %v", v, ok)
	}
	if _, ok := KVGet(s3, "a"); ok {
		t.Fatal("delete did not remove key")
	}
	// Snapshot immutability: s2 must be unaffected by s3.
	if _, ok := KVGet(s2, "a"); !ok {
		t.Fatal("Apply mutated its input state")
	}
	if _, ok := KVGet(s0, "a"); ok {
		t.Fatal("initial state mutated")
	}
	// Garbage commands are ignored.
	if got := m.Apply(s2, 42); got == nil {
		t.Fatal("garbage command destroyed state")
	}
}

func TestBankMachineInvariants(t *testing.T) {
	b := BankMachine{InitialAccounts: map[string]int64{"alice": 100, "bob": 50}}
	s0 := b.Init()
	if BankTotal(s0) != 150 {
		t.Fatalf("total = %d", BankTotal(s0))
	}
	s1 := b.Apply(s0, BankCmd{From: "alice", To: "bob", Amount: 30})
	if BankBalance(s1, "alice") != 70 || BankBalance(s1, "bob") != 80 {
		t.Fatalf("balances: %v/%v", BankBalance(s1, "alice"), BankBalance(s1, "bob"))
	}
	// Overdraw rejected deterministically.
	s2 := b.Apply(s1, BankCmd{From: "alice", To: "bob", Amount: 1000})
	if BankBalance(s2, "alice") != 70 {
		t.Fatal("overdraw not rejected")
	}
	// Non-positive amounts rejected.
	s3 := b.Apply(s2, BankCmd{From: "bob", To: "alice", Amount: -5})
	if BankTotal(s3) != 150 {
		t.Fatal("negative transfer changed total")
	}
}

func TestReplicaApplyOrdersByMember(t *testing.T) {
	r := NewReplica(1, KVMachine{})
	round := vs.Round{
		Rnd: 1,
		Inputs: map[ids.ID]any{
			3: KVCmd{Op: KVPut, Key: "k", Value: "from-p3"},
			2: KVCmd{Op: KVPut, Key: "k", Value: "from-p2"},
		},
	}
	state := r.Apply(r.InitState(), round)
	// Ascending member order: p3's write lands last.
	if v, _ := KVGet(state, "k"); v != "from-p3" {
		t.Fatalf("k = %q, want from-p3 (member order)", v)
	}
}

func TestReplicaSubmitBound(t *testing.T) {
	r := NewReplica(1, KVMachine{})
	r.MaxPending = 2
	if !r.Submit(KVCmd{}) || !r.Submit(KVCmd{}) {
		t.Fatal("submissions rejected under bound")
	}
	if r.Submit(KVCmd{}) {
		t.Fatal("bound not enforced")
	}
	if r.PendingLen() != 2 {
		t.Fatalf("pending = %d", r.PendingLen())
	}
	if r.Fetch() == nil || r.Fetch() == nil {
		t.Fatal("fetch lost commands")
	}
	if r.Fetch() != nil {
		t.Fatal("fetch invented a command")
	}
}

func TestReplicaDeliverLog(t *testing.T) {
	r := NewReplica(1, KVMachine{})
	round := vs.Round{Rnd: 4, Inputs: map[ids.ID]any{2: KVCmd{Op: KVPut, Key: "x", Value: "1"}}}
	r.Deliver(round)
	log := r.Log()
	if len(log) != 1 || log[0].Member != 2 || log[0].Rnd != 4 {
		t.Fatalf("log = %+v", log)
	}
}

// --- full-stack replication test ---

type smrCluster struct {
	*core.Cluster
	mgrs map[ids.ID]*vs.Manager
	reps map[ids.ID]*Replica
}

func newSMRCluster(t *testing.T, n int, seed int64, sm StateMachine) *smrCluster {
	t.Helper()
	sc := &smrCluster{mgrs: map[ids.ID]*vs.Manager{}, reps: map[ids.ID]*Replica{}}
	opts := core.DefaultClusterOptions(seed)
	opts.Node.EvalConf = func(ids.Set, ids.Set) bool { return false }
	opts.AppFactory = func(self ids.ID) core.App {
		rep := NewReplica(self, sm)
		m := vs.NewManager(self, rep, nil)
		sc.mgrs[self] = m
		sc.reps[self] = rep
		return m
	}
	c, err := core.BootstrapCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	sc.Cluster = c
	return sc
}

func TestReplicatedKVAcrossCluster(t *testing.T) {
	sc := newSMRCluster(t, 4, 41, KVMachine{})
	// Wait for a view, then submit from two different nodes.
	ok := sc.Sched.RunWhile(func() bool {
		_, has := sc.mgrs[1].CurrentView()
		return !has
	}, 3_000_000)
	if !ok {
		t.Fatal("no view")
	}
	sc.reps[2].Submit(KVCmd{Op: KVPut, Key: "city", Value: "nicosia"})
	sc.reps[3].Submit(KVCmd{Op: KVPut, Key: "sea", Value: "mediterranean"})

	ok = sc.Sched.RunWhile(func() bool {
		for id := ids.ID(1); id <= 4; id++ {
			st := sc.mgrs[id].Replica().State
			if v, _ := KVGet(st, "city"); v != "nicosia" {
				return true
			}
			if v, _ := KVGet(st, "sea"); v != "mediterranean" {
				return true
			}
		}
		return false
	}, 6_000_000)
	if !ok {
		for id := ids.ID(1); id <= 4; id++ {
			t.Logf("%v: %v", id, sc.mgrs[id].Replica().State)
		}
		t.Fatal("KV state not replicated everywhere")
	}
}

func TestBankInvariantHoldsUnderCrash(t *testing.T) {
	sm := BankMachine{InitialAccounts: map[string]int64{"a": 500, "b": 500}}
	sc := newSMRCluster(t, 5, 42, sm)
	ok := sc.Sched.RunWhile(func() bool {
		_, has := sc.mgrs[1].CurrentView()
		return !has
	}, 3_000_000)
	if !ok {
		t.Fatal("no view")
	}
	for i := 0; i < 5; i++ {
		sc.reps[ids.ID(i%5+1)].Submit(BankCmd{From: "a", To: "b", Amount: 10})
	}
	sc.RunFor(8000)
	sc.Crash(5)
	for i := 0; i < 5; i++ {
		sc.reps[ids.ID(i%4+1)].Submit(BankCmd{From: "b", To: "a", Amount: 5})
	}
	sc.RunFor(30000)
	sc.EachAlive(func(n *core.Node) {
		st := sc.mgrs[n.Self()].Replica().State
		if got := BankTotal(st); got != 1000 {
			t.Errorf("%v: total = %d, want 1000 (state %v)", n.Self(), got, st)
		}
	})
}

func TestLogsArePrefixConsistentWithinViews(t *testing.T) {
	sc := newSMRCluster(t, 3, 43, KVMachine{})
	ok := sc.Sched.RunWhile(func() bool {
		_, has := sc.mgrs[1].CurrentView()
		return !has
	}, 3_000_000)
	if !ok {
		t.Fatal("no view")
	}
	for i := 0; i < 6; i++ {
		sc.reps[ids.ID(i%3+1)].Submit(KVCmd{Op: KVPut, Key: fmt.Sprintf("k%d", i), Value: "v"})
	}
	sc.RunFor(20000)
	// Build per-node sequences of (view, rnd, member, cmd); for rounds
	// present in two logs, the records must agree.
	type key struct {
		view string
		rnd  uint64
		mem  ids.ID
	}
	seen := map[key]any{}
	for id, rep := range sc.reps {
		for _, a := range rep.Log() {
			k := key{a.View.String(), a.Rnd, a.Member}
			if prev, ok := seen[k]; ok && fmt.Sprint(prev) != fmt.Sprint(a.Cmd) {
				t.Fatalf("node %v delivered %v at %v; another delivered %v", id, a.Cmd, k, prev)
			}
			seen[k] = a.Cmd
		}
	}
	if len(seen) == 0 {
		t.Fatal("no deliveries recorded")
	}
}
