// Package obs is the cluster observability layer: a dependency-free
// metrics core (atomic counters, gauges and fixed-bucket histograms
// collected into a Registry that renders the Prometheus text exposition
// format), a strict parser for that format (tests and CI lint every
// rendered page through it), and a thin log/slog-based structured
// logging setup with per-subsystem component tags (log.go).
//
// Why no client_golang dependency: the stack's hot paths (datalink token
// cycles, tcp write coalescing, smr round application) tick millions of
// times per experiment run, and the repository's hard rule is that
// simulated experiments stay byte-identical across runs — so the
// instruments must be allocation-free, lock-free on the increment path,
// and free of background goroutines or global state. The subset of
// Prometheus actually needed (counter, gauge, histogram, text
// exposition) is small enough that owning it outright costs less than
// gating a vendored dependency, and it keeps the container build
// hermetic (no module downloads). BenchmarkObsHotPath guards the
// 0 allocs/op contract.
//
// Usage: instruments are created (or attached) once at wiring time —
// Registry methods are idempotent for an identical (name, labels,
// type) triple — and the returned pointer is incremented on the hot
// path without further lookups:
//
//	reg := obs.NewRegistry()
//	sent := reg.Counter("repro_tcp_sent_total", "Messages handed to the transport.", nil)
//	...
//	sent.Inc() // 0 allocs, one atomic add
//
// Existing per-package Stats() structs stay the test-facing surface:
// their packages keep the counters in atomics and the Registry observes
// the very same values through CounterFunc/GaugeFunc views, so nothing
// is ever counted twice.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; Inc/Add are lock- and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that may go up and down. The zero value is ready
// to use; Set/Add are lock- and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are the
// inclusive upper bounds in strictly increasing order; an implicit +Inf
// bucket catches the rest. Observe is lock- and allocation-free.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative); last entry is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// NewHistogram builds a standalone histogram (Registry.Histogram is the
// registered path). It panics on unsorted or empty bounds.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %d", i))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		panic("obs: +Inf bucket is implicit, do not pass it")
	}
	up := make([]float64, len(buckets))
	copy(up, buckets)
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefLatencyBuckets are the default request-latency bounds, in seconds
// (1ms .. 10s), used by the HTTP layer.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Labels is one series' constant label set. Label order in the rendered
// output is sorted by key, so identical sets are identical series.
type Labels map[string]string

// Instrument type names, as rendered on # TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// series is one registered (labels, instrument) pair of a family.
type series struct {
	labels string // rendered sorted label block, "" for none

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family is one metric name: its metadata and series.
type family struct {
	name, help, typ string
	series          map[string]*series
	order           []string // insertion-ordered label keys for stable render
}

// Registry collects instruments and renders them as Prometheus text
// exposition format. All methods are safe for concurrent use; the
// instruments themselves are atomic, so rendering concurrently with
// increments observes a live (per-value consistent) snapshot.
type Registry struct {
	mu        sync.Mutex
	fams      map[string]*family
	gatherers []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// OnGather registers a hook run (in registration order) at the start of
// every Render. Subsystems whose counters live behind an execution
// context use it to refresh view instruments just before exposition.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gatherers = append(r.gatherers, fn)
}

// renderLabels renders a sorted, escaped {k="v",...} block ("" when
// empty). It also validates the label names.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRe.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// seriesFor resolves (creating as needed) the series of one name+labels
// under a declared type, panicking on any inconsistency — registration
// happens at wiring time, where a mistake is a bug, not a runtime
// condition.
func (r *Registry) seriesFor(name, help, typ string, labels Labels) *series {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	s, ok := f.series[lbl]
	if !ok {
		s = &series{labels: lbl}
		f.series[lbl] = s
		f.order = append(f.order, lbl)
	}
	return s
}

// Counter registers (or fetches) a counter series. Keep the returned
// pointer; increments through it are allocation-free.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.seriesFor(name, help, TypeCounter, labels)
	if s.counterFn != nil {
		panic(fmt.Sprintf("obs: %s%s already registered as a counter view", name, s.labels))
	}
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// CounterFunc registers a counter view: fn is read at render time. Use
// it to expose an existing atomic counter (a package's Stats field)
// without counting it twice.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	s := r.seriesFor(name, help, TypeCounter, labels)
	if s.counter != nil || s.counterFn != nil {
		panic(fmt.Sprintf("obs: duplicate counter registration %s%s", name, s.labels))
	}
	s.counterFn = fn
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.seriesFor(name, help, TypeGauge, labels)
	if s.gaugeFn != nil {
		panic(fmt.Sprintf("obs: %s%s already registered as a gauge view", name, s.labels))
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge view evaluated at render time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.seriesFor(name, help, TypeGauge, labels)
	if s.gauge != nil || s.gaugeFn != nil {
		panic(fmt.Sprintf("obs: duplicate gauge registration %s%s", name, s.labels))
	}
	s.gaugeFn = fn
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (+Inf implicit). Re-registration must use
// identical bounds.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	s := r.seriesFor(name, help, TypeHistogram, labels)
	if s.hist == nil {
		s.hist = NewHistogram(buckets)
		return s.hist
	}
	if len(s.hist.upper) != len(buckets) {
		panic(fmt.Sprintf("obs: %s re-registered with different buckets", name))
	}
	for i := range buckets {
		if s.hist.upper[i] != buckets[i] {
			panic(fmt.Sprintf("obs: %s re-registered with different buckets", name))
		}
	}
	return s.hist
}

// formatValue renders a sample value: integral floats without exponent
// noise, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes the registry in Prometheus text exposition format:
// families sorted by name, each with its HELP/TYPE header and its
// series in registration order. Gather hooks run first.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	hooks := make([]func(), len(r.gatherers))
	copy(hooks, r.gatherers)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, lbl := range f.order {
			if err := renderSeries(w, f, f.series[lbl]); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderSeries(w io.Writer, f *family, s *series) error {
	switch f.typ {
	case TypeCounter:
		v := uint64(0)
		if s.counter != nil {
			v = s.counter.Value()
		} else if s.counterFn != nil {
			v = s.counterFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, strconv.FormatUint(v, 10))
		return err
	case TypeGauge:
		v := 0.0
		if s.gauge != nil {
			v = s.gauge.Value()
		} else if s.gaugeFn != nil {
			v = s.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(v))
		return err
	case TypeHistogram:
		return renderHistogram(w, f.name, s)
	}
	return fmt.Errorf("obs: unknown family type %q", f.typ)
}

// renderHistogram emits the cumulative _bucket series, then _sum and
// _count. The le label is appended to (or merged into) the series'
// constant labels.
func renderHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	cum := uint64(0)
	withLE := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return s.labels[:len(s.labels)-1] + `,le="` + le + `"}`
	}
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatValue(ub)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.upper)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}
