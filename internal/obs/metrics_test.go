package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRenderParseRoundTrip renders a registry with every instrument
// kind and strict-parses it back: same families, types, help and
// values.
func TestRenderParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_test_ops_total", "Operations done.", Labels{"shard": "0"})
	c.Add(42)
	c2 := r.Counter("repro_test_ops_total", "Operations done.", Labels{"shard": "1"})
	c2.Add(7)
	r.CounterFunc("repro_test_view_total", "A counter view.", nil, func() uint64 { return 9 })
	g := r.Gauge("repro_test_depth", "Queue depth.", nil)
	g.Set(3.5)
	h := r.Histogram("repro_test_latency_seconds", "Latency.", Labels{"route": "put"}, []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	fams, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse of rendered output: %v\n%s", err, buf.String())
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4:\n%s", len(fams), buf.String())
	}

	ops := fams["repro_test_ops_total"]
	if ops == nil || ops.Type != TypeCounter || ops.Help != "Operations done." {
		t.Fatalf("ops family wrong: %+v", ops)
	}
	if got := SumFamily(ops); got != 49 {
		t.Fatalf("ops sum = %v, want 49", got)
	}
	byShard := map[string]float64{}
	for _, s := range ops.Samples {
		byShard[s.Labels["shard"]] = s.Value
	}
	if byShard["0"] != 42 || byShard["1"] != 7 {
		t.Fatalf("per-shard values wrong: %v", byShard)
	}

	if v := fams["repro_test_view_total"]; v == nil || SumFamily(v) != 9 {
		t.Fatalf("counter view wrong: %+v", v)
	}
	depth := fams["repro_test_depth"]
	if depth == nil || depth.Type != TypeGauge || depth.Samples[0].Value != 3.5 {
		t.Fatalf("gauge wrong: %+v", depth)
	}

	lat := fams["repro_test_latency_seconds"]
	if lat == nil || lat.Type != TypeHistogram {
		t.Fatalf("histogram family wrong: %+v", lat)
	}
	if got := SumFamily(lat); got != 3 {
		t.Fatalf("histogram count sum = %v, want 3", got)
	}
	var sum float64
	buckets := map[string]float64{}
	for _, s := range lat.Samples {
		switch s.Name {
		case "repro_test_latency_seconds_sum":
			sum = s.Value
		case "repro_test_latency_seconds_bucket":
			buckets[s.Labels["le"]] = s.Value
		}
	}
	if math.Abs(sum-5.055) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 5.055", sum)
	}
	want := map[string]float64{"0.01": 1, "0.1": 2, "1": 2, "+Inf": 3}
	for le, v := range want {
		if buckets[le] != v {
			t.Fatalf("bucket le=%s = %v, want %v (all: %v)", le, buckets[le], v, buckets)
		}
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound
// semantics: a value exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // (<=1)=2: {0.5,1}; (<=2)=2: {1.0000001,2}; (<=4)=1: {4}; +Inf=2: {4.5,100}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
}

// TestConcurrentIncrements hammers every instrument kind from many
// goroutines (run under -race) and checks the totals are exact.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_test_c_total", "", nil)
	g := r.Gauge("repro_test_g", "", nil)
	h := r.Histogram("repro_test_h", "", nil, []float64{1, 2})

	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1.5)
			}
		}()
	}
	// Render concurrently with the increments: must not race or error.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.Render(&buf); err != nil {
				t.Errorf("concurrent render: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if want := 1.5 * workers * per; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

// TestRegistryIdempotentAndConflicts pins the wiring-time contract:
// same (name, labels, type) returns the same instrument; a type
// conflict panics.
func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("repro_test_x_total", "", Labels{"k": "v"})
	b := r.Counter("repro_test_x_total", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("type conflict did not panic")
			}
		}()
		r.Gauge("repro_test_x_total", "", Labels{"k": "v"})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad metric name did not panic")
			}
		}()
		r.Counter("bad name", "", nil)
	}()
}

// TestLabelEscaping round-trips label values with quotes, backslashes
// and newlines through render + parse.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	nasty := `he said "hi"` + "\n" + `then \left`
	r.Counter("repro_test_esc_total", "with \"quotes\" and\nnewline", Labels{"v": nasty}).Inc()
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	fams, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	f := fams["repro_test_esc_total"]
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("family missing: %+v", f)
	}
	if got := f.Samples[0].Labels["v"]; got != nasty {
		t.Fatalf("label value round-trip: got %q want %q", got, nasty)
	}
	if f.Help != "with \"quotes\" and\nnewline" {
		t.Fatalf("help round-trip: got %q", f.Help)
	}
}

// TestParseRejects pins the strict-mode rejections CI relies on.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "repro_x_total 1\n",
		"duplicate series":    "# TYPE repro_x_total counter\nrepro_x_total 1\nrepro_x_total 2\n",
		"foreign sample":      "# TYPE repro_x_total counter\nrepro_y_total 1\n",
		"bad value":           "# TYPE repro_x_total counter\nrepro_x_total one\n",
		"unterminated labels": "# TYPE repro_x_total counter\nrepro_x_total{k=\"v 1\n",
		"duplicate TYPE":      "# TYPE repro_x_total counter\n# TYPE repro_x_total counter\n",
		"HELP after TYPE":     "# TYPE repro_x_total counter\n# HELP repro_x_total late\n",
		"bucket without le":   "# TYPE repro_h histogram\nrepro_h_bucket 1\n",
		"histogram no +Inf": "# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"1\"} 1\nrepro_h_sum 1\nrepro_h_count 1\n",
		"histogram not cumulative": "# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"1\"} 5\nrepro_h_bucket{le=\"+Inf\"} 3\nrepro_h_sum 1\nrepro_h_count 3\n",
		"histogram count mismatch": "# TYPE repro_h histogram\n" +
			"repro_h_bucket{le=\"1\"} 1\nrepro_h_bucket{le=\"+Inf\"} 3\nrepro_h_sum 1\nrepro_h_count 4\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: strict parse accepted:\n%s", name, text)
		}
	}
}

// TestOnGather checks gather hooks run before values are read.
func TestOnGather(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("repro_test_refresh", "", nil)
	n := 0
	r.OnGather(func() { n++; g.Set(float64(n)) })
	var buf bytes.Buffer
	for i := 1; i <= 3; i++ {
		buf.Reset()
		if err := r.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "repro_test_refresh "+string(rune('0'+i))) {
			t.Fatalf("render %d did not see refreshed gauge:\n%s", i, buf.String())
		}
	}
}

// TestHotPathAllocs asserts the increment fast paths allocate nothing;
// BenchmarkObsHotPath (repo root) guards the same property under -benchmem.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_test_alloc_total", "", nil)
	g := r.Gauge("repro_test_alloc_gauge", "", nil)
	h := r.Histogram("repro_test_alloc_seconds", "", nil, DefLatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}
