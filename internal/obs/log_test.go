package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	Component(l, "datalink").Info("hello", "queue", 3)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("json log line invalid: %v: %q", err, buf.String())
	}
	if obj["component"] != "datalink" || obj["msg"] != "hello" {
		t.Fatalf("json line missing fields: %v", obj)
	}

	buf.Reset()
	l, err = NewLogger(&buf, slog.LevelWarn, "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering wrong: %q", out)
	}

	if _, err := NewLogger(&buf, slog.LevelInfo, "xml"); err == nil {
		t.Error("NewLogger accepted bad format")
	}
}

func TestComponentNilParent(t *testing.T) {
	l := Component(nil, "anything")
	l.Info("must not panic") // and must not write anywhere
}
