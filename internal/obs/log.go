package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging setup shared by the daemons: one slog.Logger per
// process, text or JSON handler, and per-subsystem component tags so a
// grep for component=datalink isolates one layer of a noisy node.

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf(`log level %q: want "debug", "info", "warn" or "error"`, s)
}

// NewLogger builds the process logger writing to w. format is "text"
// (logfmt-style, the default) or "json" (one object per line, for log
// shippers).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf(`log format %q: want "text" or "json"`, format)
}

// Component returns a child logger tagged with component=name; every
// subsystem logs through its own component logger. A nil parent yields
// a logger that discards everything, so call sites never nil-check.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return slog.New(discardHandler{})
	}
	return l.With(slog.String("component", name))
}

// discardHandler drops every record.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
