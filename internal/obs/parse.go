package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the strict side of the exposition contract: a parser for
// the Prometheus text format that refuses anything the renderer should
// never produce. Tests round-trip Render through Parse, and CI pipes a
// live node's /metrics page through it (cmd/metricslint), so a
// formatting regression fails fast instead of silently breaking
// scrapers.

// Sample is one parsed series: the sample name (which for histograms
// includes the _bucket/_sum/_count suffix), its sorted label pairs, and
// the value.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse reads a complete Prometheus text exposition page and returns
// its families keyed by name. It is strict: every sample must follow
// its family's # TYPE line, HELP (when present) must precede TYPE,
// names and labels must be well-formed, duplicate series are an error,
// and histogram families must consist of cumulative _bucket samples
// (ending in le="+Inf") plus exactly one _sum and one _count per label
// set, with the +Inf bucket equal to _count.
func Parse(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	var cur *Family
	helps := make(map[string]string)
	seen := make(map[string]bool) // duplicate-series detection: "name{labels}"

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			switch kind {
			case "HELP":
				if _, dup := helps[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if _, typed := fams[name]; typed {
					return nil, fmt.Errorf("line %d: HELP for %s after its TYPE", lineNo, name)
				}
				helps[name] = unescapeHelp(rest)
			case "TYPE":
				if rest != TypeCounter && rest != TypeGauge && rest != TypeHistogram {
					return nil, fmt.Errorf("line %d: unsupported type %q for %s", lineNo, rest, name)
				}
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				cur = &Family{Name: name, Type: rest, Help: helps[name]}
				fams[name] = cur
			default:
				// Arbitrary comments are legal in the format; the
				// renderer never writes them but a scrape target is
				// allowed to.
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		// A sample must belong to the most recent TYPE: the bare name
		// for counters and gauges, or one of the three histogram
		// suffixes of it.
		if cur == nil {
			return nil, fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, s.Name)
		}
		f := cur
		switch {
		case f.Type == TypeHistogram &&
			(s.Name == f.Name+"_bucket" || s.Name == f.Name+"_sum" || s.Name == f.Name+"_count"):
		case f.Type != TypeHistogram && s.Name == f.Name:
		default:
			return nil, fmt.Errorf("line %d: sample %s does not belong to current family %s (%s)",
				lineNo, s.Name, f.Name, f.Type)
		}
		if f.Type == TypeHistogram && s.Name == f.Name+"_bucket" {
			if _, ok := s.Labels["le"]; !ok {
				return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name := range helps {
		if _, ok := fams[name]; !ok {
			return nil, fmt.Errorf("HELP for %s without TYPE", name)
		}
	}
	for _, f := range fams {
		if f.Type == TypeHistogram {
			if err := checkHistogram(f); err != nil {
				return nil, fmt.Errorf("family %s: %w", f.Name, err)
			}
		}
	}
	return fams, nil
}

func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	kind, tail, _ := strings.Cut(body, " ")
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", nil
	}
	name, rest, ok := strings.Cut(tail, " ")
	if kind == "TYPE" && !ok {
		return "", "", "", fmt.Errorf("malformed %s line", kind)
	}
	if !nameRe.MatchString(name) {
		return "", "", "", fmt.Errorf("%s for invalid metric name %q", kind, name)
	}
	return kind, name, rest, nil
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabelBlock(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		// An optional timestamp is the only thing allowed after the
		// value; the renderer writes none.
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(tok, 64)
}

// parseLabelBlock parses `{k="v",...}` honoring \\ \" \n escapes, and
// returns the remaining tail of the line.
func parseLabelBlock(s string) (Labels, string, error) {
	labels := Labels{}
	i := 1 // past '{'
	for {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		key := strings.TrimSpace(s[i:j])
		if !labelRe.MatchString(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %q: value not quoted", key)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %q: dangling escape", key)
				}
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					return nil, "", fmt.Errorf("label %q: bad escape \\%c", key, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(s[i])
			i++
		}
		if i >= len(s) {
			return nil, "", fmt.Errorf("label %q: unterminated value", key)
		}
		labels[key] = val.String()
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %q", key)
	}
}

func seriesKey(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// checkHistogram validates each label set of a histogram family:
// buckets cumulative and sorted by le, last bucket le="+Inf", exactly
// one _sum and one _count, and count equal to the +Inf bucket.
func checkHistogram(f *Family) error {
	type group struct {
		les     []float64
		cum     []float64
		sum     *float64
		count   *float64
		infSeen bool
	}
	groups := make(map[string]*group)
	gkey := func(labels Labels) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	for _, s := range f.Samples {
		g := groups[gkey(s.Labels)]
		if g == nil {
			g = &group{}
			groups[gkey(s.Labels)] = g
		}
		switch s.Name {
		case f.Name + "_bucket":
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("bad le %q", s.Labels["le"])
			}
			g.les = append(g.les, le)
			g.cum = append(g.cum, s.Value)
			if math.IsInf(le, +1) {
				g.infSeen = true
			}
		case f.Name + "_sum":
			v := s.Value
			g.sum = &v
		case f.Name + "_count":
			v := s.Value
			g.count = &v
		}
	}
	for key, g := range groups {
		if !g.infSeen {
			return fmt.Errorf("series {%s}: no le=\"+Inf\" bucket", key)
		}
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("series {%s}: missing _sum or _count", key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("series {%s}: le bounds not increasing", key)
			}
			if g.cum[i] < g.cum[i-1] {
				return fmt.Errorf("series {%s}: bucket counts not cumulative", key)
			}
		}
		if g.cum[len(g.cum)-1] != *g.count {
			return fmt.Errorf("series {%s}: +Inf bucket %v != count %v", key, g.cum[len(g.cum)-1], *g.count)
		}
	}
	return nil
}

// SumFamily adds up a family's sample values; for histograms it sums
// the _count samples. nodeload uses it to fold per-endpoint scrapes
// into cluster-wide totals.
func SumFamily(f *Family) float64 {
	if f == nil {
		return 0
	}
	total := 0.0
	for _, s := range f.Samples {
		if f.Type == TypeHistogram {
			if s.Name == f.Name+"_count" {
				total += s.Value
			}
			continue
		}
		total += s.Value
	}
	return total
}
