package baseline

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func newHarness(t *testing.T, n int) (*sim.Scheduler, *Cluster) {
	t.Helper()
	sched := sim.NewScheduler(61)
	net := netsim.New(sched, netsim.DefaultOptions())
	c, err := NewCluster(net, n)
	if err != nil {
		t.Fatal(err)
	}
	return sched, c
}

func TestCoherentStartAgrees(t *testing.T) {
	sched, c := newHarness(t, 5)
	sched.RunUntil(2000)
	cfg, ok := c.Converged()
	if !ok || !cfg.Equal(ids.Range(1, 5)) {
		t.Fatalf("baseline lost coherent agreement: %v %v", cfg, ok)
	}
}

func TestReconfigurationPropagates(t *testing.T) {
	sched, c := newHarness(t, 5)
	sched.RunUntil(500)
	c.Node(1).Reconfigure(ids.NewSet(1, 2, 3))
	sched.RunUntil(5000)
	cfg, ok := c.Converged()
	if !ok || !cfg.Equal(ids.NewSet(1, 2, 3)) {
		t.Fatalf("reconfiguration did not propagate: %v %v", cfg, ok)
	}
}

func TestHigherEpochWins(t *testing.T) {
	sched, c := newHarness(t, 4)
	sched.RunUntil(500)
	c.Node(1).Reconfigure(ids.NewSet(1, 2))
	c.Node(2).Reconfigure(ids.NewSet(3, 4))
	c.Node(2).Reconfigure(ids.NewSet(2, 3, 4)) // epoch 3 beats epoch 2
	sched.RunUntil(5000)
	cfg, ok := c.Converged()
	if !ok || !cfg.Equal(ids.NewSet(2, 3, 4)) {
		t.Fatalf("highest epoch did not win: %v %v", cfg, ok)
	}
}

func TestTransientFaultNeverRecovers(t *testing.T) {
	// The headline negative result: equal epochs with different configs
	// stay split forever — no transient-fault recovery.
	sched, c := newHarness(t, 4)
	sched.RunUntil(500)
	c.Node(1).Corrupt(ids.NewSet(1, 2), 7)
	c.Node(2).Corrupt(ids.NewSet(1, 2), 7)
	c.Node(3).Corrupt(ids.NewSet(3, 4), 7)
	c.Node(4).Corrupt(ids.NewSet(3, 4), 7)
	sched.RunUntil(60000)
	if _, ok := c.Converged(); ok {
		t.Fatal("baseline unexpectedly recovered from a transient fault")
	}
}

func TestGarbageIgnored(t *testing.T) {
	sched, c := newHarness(t, 2)
	c.Net.InjectPacket(1, 2, "garbage")
	sched.RunUntil(1000)
	if _, ok := c.Converged(); !ok {
		t.Fatal("garbage packet broke the baseline")
	}
}
