// Package baseline implements a deliberately non-self-stabilizing
// reconfiguration service in the style the paper's related-work section
// describes (e.g., RAMBO [17] and DynaStore [2] as characterized there):
// correctness presumes a coherent start, configurations are ordered by an
// unbounded epoch number, and there is no detection of — or recovery from —
// stale information. It is the comparator for experiment E8: from a
// coherent start it reconfigures exactly like a classic scheme, but after a
// transient fault that leaves two equal-epoch configurations in the system
// it stays split forever, whereas the paper's scheme recovers.
package baseline

import (
	"repro/internal/ids"
	"repro/internal/netsim"
)

// Message is the baseline's gossip: the sender's configuration and epoch.
type Message struct {
	Epoch  uint64
	Config ids.Set
}

// Node is one baseline processor. It gossips (epoch, config) and adopts
// any strictly higher epoch; equal epochs with different configurations
// are never reconciled — the design hole self-stabilization closes.
type Node struct {
	self   ids.ID
	net    *netsim.Network
	peers  ids.Set
	epoch  uint64
	config ids.Set
}

// NewNode creates a baseline node with the given coherent-start state.
func NewNode(net *netsim.Network, self ids.ID, peers ids.Set, config ids.Set) (*Node, error) {
	n := &Node{self: self, net: net, peers: peers, epoch: 1, config: config}
	if err := net.AddNode(self, n); err != nil {
		return nil, err
	}
	return n, nil
}

// Config returns the node's current configuration and epoch.
func (n *Node) Config() (ids.Set, uint64) { return n.config, n.epoch }

// Reconfigure installs a new configuration under the next epoch and
// gossips it; there is no agreement round — a higher epoch simply wins
// (the coherent-start assumption makes that sufficient).
func (n *Node) Reconfigure(config ids.Set) {
	n.epoch++
	n.config = config
}

// Corrupt is the transient-fault hook: it overwrites configuration and
// epoch without any of the paper's detection machinery noticing.
func (n *Node) Corrupt(config ids.Set, epoch uint64) {
	n.config = config
	n.epoch = epoch
}

// Tick implements netsim.Handler: gossip to all peers.
func (n *Node) Tick() {
	n.peers.Each(func(p ids.ID) {
		if p != n.self {
			n.net.Send(n.self, p, Message{Epoch: n.epoch, Config: n.config})
		}
	})
}

// Receive implements netsim.Handler: adopt strictly higher epochs only.
func (n *Node) Receive(_ ids.ID, payload any) {
	m, ok := payload.(Message)
	if !ok {
		return
	}
	if m.Epoch > n.epoch {
		n.epoch = m.Epoch
		n.config = m.Config
	}
	// m.Epoch == n.epoch with a different config: silently ignored.
	// This is precisely the unhandled conflict the paper's type-2
	// staleness detection exists for.
}

// Cluster is a convenience harness mirroring core.Cluster for benches.
type Cluster struct {
	Net   *netsim.Network
	nodes map[ids.ID]*Node
}

// NewCluster builds n baseline nodes with a coherent configuration.
func NewCluster(net *netsim.Network, n int) (*Cluster, error) {
	all := ids.Range(1, ids.ID(n))
	c := &Cluster{Net: net, nodes: make(map[ids.ID]*Node, n)}
	for i := 1; i <= n; i++ {
		node, err := NewNode(net, ids.ID(i), all, all)
		if err != nil {
			return nil, err
		}
		c.nodes[ids.ID(i)] = node
	}
	return c, nil
}

// Node returns a node by id.
func (c *Cluster) Node(id ids.ID) *Node { return c.nodes[id] }

// Converged reports whether all alive nodes agree on one configuration.
func (c *Cluster) Converged() (ids.Set, bool) {
	var agreed ids.Set
	var epoch uint64
	first, ok := true, true
	for id, n := range c.nodes {
		if c.Net.Crashed(id) {
			continue
		}
		if first {
			agreed, epoch = n.config, n.epoch
			first = false
			continue
		}
		if !agreed.Equal(n.config) || epoch != n.epoch {
			ok = false
		}
	}
	return agreed, ok && !first
}
