// Command repolint runs the repository's own static-analysis suite
// (internal/analysis) over the module: the invariants earlier PRs
// learned the hard way — explicit wire presence, byte-determinism,
// atomic-field discipline, metric naming, and the HTTP error envelope —
// enforced mechanically on every change.
//
// Usage:
//
//	go run ./cmd/repolint ./...          # whole module (CI invocation)
//	go run ./cmd/repolint ./internal/smr # one package tree
//	go run ./cmd/repolint -list          # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Suppressions are in-source and audited: a finding on a line covered
// by "//repolint:allow <analyzer> -- <justification>" is silenced, a
// bare allow is itself a finding, and an allow that silences nothing is
// reported as unused. See DESIGN.md §15.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-list] [patterns]\n\npatterns default to ./... relative to the module root\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fail(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fail(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(2)
}
