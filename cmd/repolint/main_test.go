package main

import (
	"testing"

	"repro/internal/analysis"
)

// TestSuiteRegistration pins the multichecker's analyzer set: every
// analyzer the suite ships is registered exactly once, under its
// documented name.
func TestSuiteRegistration(t *testing.T) {
	want := []string{
		"explicitpresence",
		"determinism",
		"atomicfields",
		"metricname",
		"errenvelope",
	}
	got := analysis.All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for i, a := range got {
		if a == nil || a.Run == nil {
			t.Fatalf("analyzer %d is nil or has no Run", i)
		}
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered more than once", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
