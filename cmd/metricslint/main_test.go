package main

import (
	"io"
	"strings"
	"testing"
)

const goodPage = `# HELP repro_tcp_sent_total Messages sent.
# TYPE repro_tcp_sent_total counter
repro_tcp_sent_total 12
# HELP repro_smr_pending_commands Pending commands.
# TYPE repro_smr_pending_commands gauge
repro_smr_pending_commands{shard="0"} 0
`

func TestLint(t *testing.T) {
	cases := []struct {
		name    string
		page    string
		asserts []string
		want    int
	}{
		{"parse only", goodPage, nil, 0},
		{"present", goodPage, []string{"repro_tcp_sent_total", "repro_smr_pending_commands"}, 0},
		{"nonzero ok", goodPage, []string{"repro_tcp_sent_total=nonzero"}, 0},
		{"nonzero fails on zero gauge", goodPage, []string{"repro_smr_pending_commands=nonzero"}, 1},
		{"missing family", goodPage, []string{"repro_no_such_total"}, 1},
		{"malformed page", "repro_x_total 1\n", nil, 1},
		{"type before help", "# TYPE x counter\n# HELP x h\nx 1\n", nil, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := lint(strings.NewReader(c.page), c.asserts, false, io.Discard, io.Discard); got != c.want {
				t.Errorf("lint = %d, want %d", got, c.want)
			}
		})
	}
}

func TestLintVerboseListsFamilies(t *testing.T) {
	var out strings.Builder
	if got := lint(strings.NewReader(goodPage), nil, true, &out, io.Discard); got != 0 {
		t.Fatalf("lint = %d", got)
	}
	for _, want := range []string{"repro_tcp_sent_total", "repro_smr_pending_commands", "sum=12"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose output lacks %q:\n%s", want, out.String())
		}
	}
}
