// Command metricslint strict-parses a Prometheus text-exposition page
// from stdin (internal/obs parser: HELP-before-TYPE ordering, no
// duplicate series, well-formed cumulative histograms) and asserts the
// metric families named as arguments are present. It is the CI lint
// behind scripts/metrics_smoke.sh: curl a live noded's /metrics, pipe
// it through here, and the job fails on any malformed exposition or
// missing subsystem family.
//
// Usage:
//
//	curl -s $NODE/metrics | metricslint [-v] FAMILY[=nonzero]...
//
// A bare FAMILY must exist; FAMILY=nonzero must also have a nonzero
// sample sum (for histograms, a nonzero observation count) — proof the
// subsystem actually moved during the run, not just that it registered
// its instruments. With no arguments the page is only parsed. -v lists
// every family with its sample count and sum.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("metricslint", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "list every parsed family with sample count and sum")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	os.Exit(lint(os.Stdin, fs.Args(), *verbose, os.Stdout, os.Stderr))
}

// lint parses the page and checks the family assertions, returning the
// process exit code.
func lint(r io.Reader, asserts []string, verbose bool, out, errw io.Writer) int {
	fams, err := obs.Parse(r)
	if err != nil {
		fmt.Fprintln(errw, "metricslint: exposition malformed:", err)
		return 1
	}
	if verbose {
		names := make([]string, 0, len(fams))
		for name := range fams {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f := fams[name]
			fmt.Fprintf(out, "%-44s %-9s samples=%-3d sum=%g\n",
				name, f.Type, len(f.Samples), obs.SumFamily(f))
		}
	}

	failed := 0
	for _, arg := range asserts {
		name, needNonzero := strings.CutSuffix(arg, "=nonzero")
		f := fams[name]
		switch {
		case f == nil:
			fmt.Fprintf(errw, "metricslint: FAIL family %s missing\n", name)
			failed++
		case needNonzero && obs.SumFamily(f) == 0:
			fmt.Fprintf(errw, "metricslint: FAIL family %s present but all-zero\n", name)
			failed++
		default:
			fmt.Fprintf(out, "ok: %s (sum %g)\n", name, obs.SumFamily(f))
		}
	}
	if failed > 0 {
		fmt.Fprintf(errw, "metricslint: %d of %d assertions failed (of %d families parsed)\n",
			failed, len(asserts), len(fams))
		return 1
	}
	fmt.Fprintf(out, "metricslint: %d families parsed clean, %d assertions passed\n",
		len(fams), len(asserts))
	return 0
}
