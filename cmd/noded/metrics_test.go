package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/pkg/api"
	"repro/pkg/client"
)

// soloDaemonStored boots a single-node daemon with per-shard memory
// backends (so the storage metric families have live values) and
// returns a test server over its handler.
func soloDaemonStored(t *testing.T, shards int, opTimeout time.Duration) (*Daemon, *httptest.Server) {
	t.Helper()
	tr := inproc.New(47, transport.Options{Capacity: 64, TickEvery: time.Millisecond})
	t.Cleanup(func() { tr.Close() })
	one := ids.NewSet(1)
	d, err := NewDaemon(tr, 1, DaemonConfig{
		Peers: one, Members: one, Shards: shards, Batch: 1, MaxN: 8,
		OpTimeout: opTimeout,
		Backends:  func(int) (storage.Backend, error) { return storage.NewMemory(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

// waitServing blocks until every shard of the node serves.
func waitServing(t *testing.T, srv *httptest.Server) {
	t.Helper()
	c, err := client.New([]string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.WaitServing(ctx, 0); err != nil {
		t.Fatalf("never served: %v", err)
	}
}

// TestMetricsEndpoint boots a solo daemon with in-memory storage,
// applies load through the API, and checks GET /metrics serves
// strict-parser-clean Prometheus text covering the subsystem families
// with live values.
func TestMetricsEndpoint(t *testing.T) {
	d, srv := soloDaemonStored(t, 2, 10*time.Second)
	waitServing(t, srv)

	// Put traffic through every instrumented path: writes (shard router
	// + storage WAL), a read, a sync read, a bad route (404 counter).
	for i := 0; i < 4; i++ {
		resp, body := doReq(t, "PUT", srv.URL+api.RegPath(fmt.Sprintf("k%d", i)), "v")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("put: %d %s", resp.StatusCode, body)
		}
	}
	doReq(t, "GET", srv.URL+api.RegPath("k0"), "")
	doReq(t, "GET", srv.URL+api.RegPath("k0")+"?sync=1", "")
	doReq(t, "GET", srv.URL+"/no/such/route", "")

	resp, body := doReq(t, "GET", srv.URL+api.PathMetrics, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	fams, err := obs.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("strict parse of /metrics: %v\n%s", err, body)
	}

	// Every subsystem family present with nonzero samples. (No tcp
	// family here — the test transport is inproc — and a solo node
	// exchanges no datalink tokens; the metrics smoke script covers
	// both against a live 3-node cluster.)
	nonzero := []string{
		"repro_node_ticks_total",
		"repro_build_info",
		"repro_vs_rounds_applied_total",
		"repro_shard_ops_total",
		"repro_storage_appends_total",
		"repro_http_requests_total",
	}
	for _, name := range nonzero {
		f := fams[name]
		if f == nil {
			t.Errorf("family %s missing", name)
			continue
		}
		if obs.SumFamily(f) == 0 {
			t.Errorf("family %s has no nonzero samples", name)
		}
	}
	for _, name := range []string{
		"repro_datalink_cycles_total", "repro_datalink_queue_depth",
		"repro_smr_pending_commands", "repro_storage_wal_records",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing", name)
		}
	}

	// Build identity: exactly one series, value 1, stamped with the
	// running toolchain version.
	if f := fams["repro_build_info"]; f != nil {
		if len(f.Samples) != 1 {
			t.Errorf("repro_build_info has %d series, want 1", len(f.Samples))
		} else if got := f.Samples[0].Labels["go_version"]; got != runtime.Version() {
			t.Errorf("repro_build_info go_version = %q, want %q", got, runtime.Version())
		} else if f.Samples[0].Labels["vcs_rev"] == "" {
			t.Errorf("repro_build_info missing vcs_rev label")
		}
	}

	// The histogram family renders and the latency observations landed.
	if f := fams["repro_http_request_seconds"]; f == nil || obs.SumFamily(f) == 0 {
		t.Errorf("repro_http_request_seconds missing or empty")
	}
	// Per-shard labels: both shards' op counters exist.
	shards := map[string]bool{}
	for _, s := range fams["repro_shard_ops_total"].Samples {
		shards[s.Labels["shard"]] = true
	}
	if !shards["0"] || !shards["1"] {
		t.Errorf("shard ops not labeled per shard: %v", shards)
	}
	// The 404 surfaced under route="other" with code 404.
	found404 := false
	for _, s := range fams["repro_http_requests_total"].Samples {
		if s.Labels["route"] == "other" && s.Labels["code"] == "404" && s.Value > 0 {
			found404 = true
		}
	}
	if !found404 {
		t.Errorf("404 request not counted: %+v", fams["repro_http_requests_total"].Samples)
	}

	// Stats() views and /metrics expose the same instruments: the
	// datalink cycles counter must match the endpoint's own snapshot
	// (monotone between the two reads, nothing double-counted).
	before := d.Node().Endpoint.Stats().CyclesDone
	var cycles float64
	for _, s := range fams["repro_datalink_cycles_total"].Samples {
		cycles = s.Value
	}
	if cycles > float64(before) {
		t.Errorf("metrics cycles %v ahead of live Stats %d", cycles, before)
	}

	// pprof is off by default.
	resp, _ = doReq(t, "GET", srv.URL+api.PathPprof, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without -pprof: %d", resp.StatusCode)
	}
}

// TestMetricsScrapeRaces hammers /metrics concurrently with write load;
// run under -race this is the live-scrape safety check for the datalink
// and vs stats paths.
func TestMetricsScrapeRaces(t *testing.T) {
	_, srv := soloDaemonStored(t, 1, 10*time.Second)
	waitServing(t, srv)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			resp, err := http.Get(srv.URL + api.PathMetrics)
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Errorf("scrape read: %v", err)
			}
			resp.Body.Close()
		}
	}()
	for i := 0; i < 10; i++ {
		doReq(t, "PUT", srv.URL+api.RegPath(fmt.Sprintf("r%d", i)), "v")
	}
	<-done
}

func TestRouteLabelBounded(t *testing.T) {
	cases := map[string]string{
		api.PathHealthz:              "healthz",
		api.PathStatus:               "status",
		api.PathMetrics:              "metrics",
		api.PathShards:               "shards",
		api.PathShards + "/1":        "shards",
		api.PathReg + "some%20name":  "registers",
		api.PathSMRPropose:           "smr_propose",
		api.PathSMRLog:               "smr_log",
		api.PathStorage:              "storage",
		api.PathStorage + "/0":       "storage",
		api.PathStorageSnapshot:      "storage_snapshot",
		api.PathPprof:                "pprof",
		api.PathPprof + "profile":    "pprof",
		"/anything/else":             "other",
		"/v1/storagex":               "other",
		api.PathShards + "extra/odd": "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
