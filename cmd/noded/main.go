// Command noded runs one processor of the self-stabilizing
// reconfiguration stack as a real networked process: a core.Node with
// the vs/smr/regmem service stack on the TCP transport backend, plus a
// small HTTP API for clients. A shell script can drive a live cluster
// through bootstrap → crash → delicate reconfiguration → recovery (see
// scripts/noded_demo.sh).
//
// Daemon:
//
//	noded -id 1 -peers "1=127.0.0.1:7101,2=127.0.0.1:7102,..." \
//	      -http 127.0.0.1:8101 [-members 1,2,3] [-join-timeout 60s] [-seed 1] [-shards 4] \
//	      [-batch 16] [-window 4] [-adaptive-batch] [-wire-version 2] \
//	      [-loss 0.02] [-dup 0.01] [-tick 2ms] \
//	      [-data-dir /var/lib/noded-1] [-fsync always|snapshot] [-snap-every 1024] \
//	      [-log-level info] [-log-format text|json] [-pprof]
//
// Observability: the HTTP listener always serves GET /metrics
// (Prometheus text exposition format, every subsystem instrumented —
// see DESIGN.md §13) and, with -pprof, the net/http/pprof profiles
// under /debug/pprof/. Logs are structured (log/slog) with a component
// tag per subsystem; -log-level sets the threshold and -log-format
// picks text or JSON encoding. Startup logs one line with the node's
// full effective configuration, shutdown one line with the reason.
//
// With -data-dir each shard keeps a per-shard write-ahead log and
// compacted snapshots under the directory and recovers its registers
// from them at boot — a restarted node resumes from local state instead
// of a full state transfer. -fsync picks the durability policy and
// -snap-every the automatic compaction threshold; GET /v1/storage (or
// `noded client storage`) reports the live counters, and
// POST /v1/storage/snapshot (`noded client snapshot [shard]`) forces a
// compaction.
//
// With -shards N the register namespace is partitioned over N
// independent vs/smr/regmem stacks (one view, coordinator and round
// pipeline each) multiplexed over the node's single reconfiguration
// layer and transport; register names route to shards by deterministic
// hash, so every node and client agrees on placement.
//
// With -batch B the hot path batches: up to B application payloads ride
// one datalink token cycle and up to B submitted commands ride one
// multicast round input (DESIGN.md §11). With -window W up to W token
// cycles stay in flight per link (pipelining, DESIGN.md §14), and
// -adaptive-batch sizes each batch from an EWMA of the observed queue
// depth instead of the static bound. All three knobs must be uniform
// across the cluster. -wire-version writes an older wire-format version
// during rolling upgrades (readers always accept the full range);
// current-version streams encode hot DATA packets with the compact
// binary fast path.
//
// The HTTP surface is the versioned /v1 contract defined in
// repro/pkg/api (typed documents, uniform JSON error envelope); the
// client subcommand is a thin CLI over the cluster-aware
// repro/pkg/client (multi-endpoint failover, client-side shard
// routing). Use repro/cmd/nodeload to put load on a cluster.
//
// Client:
//
//	noded client -addr http://127.0.0.1:8101 status
//	noded client -addr url1,url2,... [-shards 4] ...   # failover + shard routing
//	noded client -addr ... healthz
//	noded client -addr ... wait [-exclude 3] [-timeout 60s]
//	noded client -addr ... put <register> <value>
//	noded client -addr ... get <register> | sync-get <register>
//	noded client -addr ... shards
//	noded client -addr ... [-shard 2] propose <key> <value>
//	noded client -addr ... [-shard 2] log
//	noded client -addr ... storage
//	noded client -addr ... snapshot [shard]
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
	"repro/internal/transport/wire"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 && args[0] == "client" {
		err = runClient(args[1:])
	} else {
		err = runDaemon(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "noded:", err)
		os.Exit(1)
	}
}

func runDaemon(args []string) error {
	fs := flag.NewFlagSet("noded", flag.ContinueOnError)
	var (
		id       = fs.Int("id", 0, "this node's identifier (>= 1, required)")
		peers    = fs.String("peers", "", `cluster address book "1=host:port,2=host:port,..." (required)`)
		httpAddr = fs.String("http", "127.0.0.1:0", "client API listen address")
		members  = fs.String("members", "", `initial configuration ids "1,2,3" ("none" to start as a joiner; default: all peers)`)
		joinTO   = fs.Duration("join-timeout", 0, "with -members none: exit nonzero if the joiner has not reached serving within this deadline (0 = wait forever)")
		seed     = fs.Int64("seed", 1, "random seed component")
		loss     = fs.Float64("loss", 0, "injected packet loss probability")
		dup      = fs.Float64("dup", 0, "injected packet duplication probability")
		tick     = fs.Duration("tick", 2*time.Millisecond, "node timer period")
		jitter   = fs.Duration("jitter", time.Millisecond, "node timer jitter bound")
		capacity = fs.Int("capacity", 256, "bounded link/queue capacity")
		shards   = fs.Int("shards", 1, "register namespace shards (independent service stacks)")
		batch    = fs.Int("batch", 1, "hot-path batch bound: payloads per datalink token and commands per round (cluster-uniform; 1 = unbatched)")
		window   = fs.Int("window", 1, "pipelined datalink window: in-flight token cycles per link (cluster-uniform; 1 = stop-and-wait)")
		adaptive = fs.Bool("adaptive-batch", false, "size hot-path batches from an EWMA of queue depth instead of the static -batch bound")
		wireVer  = fs.Int("wire-version", 0, "wire-format version to write (0 = current; older accepted versions serve not-yet-upgraded peers)")
		maxN     = fs.Int("maxn", 16, "system bound N (failure detector sizing)")
		opTO     = fs.Duration("op-timeout", 30*time.Second, "write/sync-read completion deadline")
		dataDir  = fs.String("data-dir", "", "durable storage directory (per-shard WAL + snapshots; empty = in-memory only)")
		fsyncStr = fs.String("fsync", "always", `disk durability policy: "always" (fsync per append) or "snapshot" (fsync only at snapshots)`)
		snapEv   = fs.Uint64("snap-every", 1024, "compact the WAL into a snapshot every N records (0 = only on demand)")
		verbose  = fs.Bool("v", false, "log transport diagnostics")
		logLevel = fs.String("log-level", "info", `log threshold: "debug", "info", "warn" or "error"`)
		logFmt   = fs.String("log-format", "text", `log encoding: "text" or "json"`)
		pprofOn  = fs.Bool("pprof", false, "serve net/http/pprof profiles on the client API under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFmt)
	if err != nil {
		return err
	}
	book, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	self := ids.ID(*id)
	if !self.Valid() {
		return fmt.Errorf("-id is required and must be >= 1")
	}
	if _, ok := book[self]; !ok {
		return fmt.Errorf("-peers has no entry for own id %v", self)
	}
	initial, err := parseMembers(*members, book)
	if err != nil {
		return err
	}

	if *wireVer < 0 || *wireVer > wire.Version {
		return fmt.Errorf("-wire-version %d outside supported range 0..%d", *wireVer, wire.Version)
	}
	if *wireVer == 1 && *shards > 1 {
		// The version-1 schema has no shard field: every shard >= 1
		// payload would be silently dropped and those shards would
		// never serve. Refuse the combination outright.
		return fmt.Errorf("-wire-version 1 cannot carry -shards %d (no shard field before version 2); use -shards 1 or -wire-version >= 2", *shards)
	}
	if *wireVer != 0 && *wireVer < 5 && (*batch > 1 || *window > 1) {
		// The binary fast path only exists on version-5 streams; batched
		// and pipelined hot paths still work over gob framing, just
		// without the codec savings — worth a note, not a refusal.
		logger.Warn("wire version predates the binary fast path; hot-path packets fall back to gob",
			"batch", *batch, "window", *window, "wire_version", *wireVer)
	}
	if *wireVer != 0 && *wireVer < 3 && *batch > 1 {
		// Batches collapse to their freshest payload on a <= 2 stream;
		// commands still flow (they ride inside the freshest envelope),
		// so this degrades throughput rather than correctness — warn.
		logger.Warn("outbound batches collapse to their freshest payload; prefer -batch 1 during mixed-version operation",
			"batch", *batch, "wire_version", *wireVer)
	}
	cfg := tcp.Config{
		Addrs: book,
		// Decorrelate per-process randomness while keeping runs
		// reproducible from (seed, id).
		Seed: *seed*1_000_003 + int64(self),
		Opts: transport.Options{
			Capacity:   *capacity,
			LossProb:   *loss,
			DupProb:    *dup,
			TickEvery:  *tick,
			TickJitter: *jitter,
		},
		WireVersion: byte(*wireVer),
	}
	// Transport diagnostics flow through the structured logger: always
	// at debug (visible with -log-level debug), promoted to info by -v.
	tcpLog := obs.Component(logger, "tcp")
	cfg.Logf = func(format string, a ...any) { tcpLog.Debug(fmt.Sprintf(format, a...)) }
	if *verbose {
		cfg.Logf = func(format string, a ...any) { tcpLog.Info(fmt.Sprintf(format, a...)) }
	}
	tr := tcp.New(cfg)
	defer tr.Close()

	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1")
	}
	if *batch > wire.MaxWireBatch {
		// Peers' readers refuse larger batches outright; a full queue
		// draining into one packet would wedge the link forever.
		return fmt.Errorf("-batch %d exceeds the wire codec's per-packet bound %d", *batch, wire.MaxWireBatch)
	}
	if *window < 1 || *window > datalink.MaxWindow {
		// Beyond the structural clamp the mod-256 sequence discipline
		// could confuse an in-flight cycle with a stale ack; refuse
		// rather than silently clamp a cluster-uniform knob.
		return fmt.Errorf("-window %d outside supported range 1..%d", *window, datalink.MaxWindow)
	}
	fsync, ok := storage.ParseFsync(*fsyncStr)
	if !ok {
		return fmt.Errorf(`-fsync %q: want "always" or "snapshot"`, *fsyncStr)
	}
	storLog := obs.Component(logger, "storage")
	dcfg := DaemonConfig{
		Peers:     bookIDs(book),
		Members:   initial,
		Shards:    *shards,
		Batch:     *batch,
		Window:    *window,
		Adaptive:  *adaptive,
		MaxN:      *maxN,
		OpTimeout: *opTO,
		DataDir:   *dataDir,
		Fsync:     fsync,
		SnapEvery: *snapEv,
		Pprof:     *pprofOn,
		Logf:      func(format string, a ...any) { storLog.Warn(fmt.Sprintf(format, a...)) },
	}
	d, err := NewDaemon(tr, self, dcfg)
	if err != nil {
		logger.Error("bootstrap failed", "id", int(self), "err", err)
		return err
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		logger.Error("client API listen failed", "id", int(self), "addr", *httpAddr, "err", err)
		return fmt.Errorf("client API listen: %w", err)
	}
	effWire := *wireVer
	if effWire == 0 {
		effWire = wire.Version
	}
	logger.Info("noded started",
		"id", int(self),
		"transport", book[self],
		"http", ln.Addr().String(),
		"members", setInts(initial),
		"shards", *shards,
		"batch", *batch,
		"window", *window,
		"adaptive_batch", *adaptive,
		"wire_version", effWire,
		"data_dir", *dataDir,
		"fsync", fsync.String(),
		"snap_every", *snapEv,
		"join_timeout", joinTO.String(),
		"pprof", *pprofOn,
	)
	srv := &http.Server{Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// A joiner that is never adopted (dead cluster, partition, admission
	// refused) would otherwise poll Algorithm 3.3 forever with no
	// distinct diagnostic; the watchdog turns that into a structured
	// join_timeout failure churn harnesses and scripts can assert on.
	joinc := make(chan struct{})
	if initial.Empty() && *joinTO > 0 {
		go joinWatchdog(d, *joinTO, joinc)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("noded shutting down", "id", int(self), "reason", sig.String())
		srv.Close()
		return nil
	case <-joinc:
		logger.Error("noded shutting down", "id", int(self), "reason", "join_timeout",
			"join_timeout", joinTO.String())
		srv.Close()
		return fmt.Errorf("joiner not serving within -join-timeout %s", *joinTO)
	case err := <-errc:
		logger.Error("noded shutting down", "id", int(self), "reason", err.Error())
		return err
	}
}

// joinWatchdog polls the daemon's status until it reports serving,
// closing c if the deadline passes first. Only started for -members
// none processes with a nonzero -join-timeout.
func joinWatchdog(d *Daemon, timeout time.Duration, c chan struct{}) {
	deadline := time.Now().Add(timeout)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		if st, ok := d.status(); ok && st.Serving {
			return
		}
		if time.Now().After(deadline) {
			close(c)
			return
		}
	}
}

// parsePeers parses "1=host:port,2=host:port" into an address book.
func parsePeers(s string) (map[ids.ID]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-peers is required")
	}
	book := make(map[ids.ID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=host:port", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || !ids.ID(n).Valid() {
			return nil, fmt.Errorf("peer %q: bad id", part)
		}
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("peer %q: empty address", part)
		}
		if _, dup := book[ids.ID(n)]; dup {
			return nil, fmt.Errorf("peer %q: duplicate id", part)
		}
		book[ids.ID(n)] = addr
	}
	if len(book) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return book, nil
}

// parseMembers parses the initial configuration: "" = all peers,
// "none" = start as a joiner, otherwise a comma list of ids.
func parseMembers(s string, book map[ids.ID]string) (ids.Set, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "":
		return bookIDs(book), nil
	case "none":
		return ids.Set{}, nil
	}
	out := ids.Set{}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || !ids.ID(n).Valid() {
			return ids.Set{}, fmt.Errorf("member %q: bad id", part)
		}
		out = out.Add(ids.ID(n))
	}
	return out, nil
}

func bookIDs(book map[ids.ID]string) ids.Set {
	out := ids.Set{}
	for id := range book {
		out = out.Add(id)
	}
	return out
}

func setInts(s ids.Set) []int {
	out := make([]int, 0, s.Size())
	s.Each(func(id ids.ID) { out = append(out, int(id)) })
	sort.Ints(out)
	return out
}
