package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/pkg/client"
)

// TestJoinerAdoptedOverTCP is the live-socket counterpart of the
// unit-tested internal/join flow: a 3-node TCP cluster takes writes,
// then a fresh process started with -members none (it knows addresses
// but is in nobody's configuration) must be adopted through the joining
// mechanism — Algorithm 3.3 over real sockets — reach serving within
// its -join-timeout, and answer sync-reads with the state written
// before it existed (Theorem 4.13: joiners adopt, they do not reset).
func TestJoinerAdoptedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real noded processes")
	}
	bin := filepath.Join(t.TempDir(), "noded")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building noded: %v\n%s", err, out)
	}

	const nodes, shards = 3, 2
	joinerID := nodes + 1
	var trAddrs, httpAddrs []string
	for i := 0; i <= nodes; i++ {
		trAddrs = append(trAddrs, freePort(t))
		httpAddrs = append(httpAddrs, freePort(t))
	}
	book := ""
	for i := 0; i <= nodes; i++ {
		if i > 0 {
			book += ","
		}
		book += fmt.Sprintf("%d=%s", i+1, trAddrs[i])
	}

	start := func(id int, members string, extra ...string) *exec.Cmd {
		args := append([]string{
			"-id", fmt.Sprint(id),
			"-peers", book,
			"-http", httpAddrs[id-1],
			"-members", members,
			"-shards", fmt.Sprint(shards),
			"-data-dir", filepath.Join(t.TempDir(), fmt.Sprintf("n%d", id)),
		}, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting noded %d: %v", id, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for id := 1; id <= nodes; id++ {
		start(id, "1,2,3")
	}
	c, err := client.New(httpAddrs[:nodes],
		client.WithShards(shards), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WaitServing(ctx, 0); err != nil {
		t.Fatalf("cluster never served: %v", err)
	}

	// State the joiner must adopt: written before its process exists.
	want := map[string]string{}
	for sh, group := range shard.NamesPerShard(shards, 2) {
		for j, name := range group {
			v := fmt.Sprintf("pre-join-%d-%d", sh, j)
			if _, err := c.Write(ctx, name, v); err != nil {
				t.Fatalf("write %s: %v", name, err)
			}
			want[name] = v
		}
	}

	start(joinerID, "none", "-join-timeout", "60s")
	jc, err := client.New([]string{httpAddrs[joinerID-1]},
		client.WithShards(shards), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	adopted := time.Now()
	if _, err := jc.WaitServing(ctx, 0); err != nil {
		t.Fatalf("joiner never reached serving: %v", err)
	}
	t.Logf("joiner serving after %v", time.Since(adopted).Round(time.Millisecond))

	// The joiner answers with the adopted state, not a blank replica.
	for name, v := range want {
		got, err := jc.SyncRead(ctx, name)
		if err != nil {
			t.Fatalf("sync-read %s via joiner: %v", name, err)
		}
		if !got.Found || got.Value != v {
			t.Fatalf("joiner state for %s: %+v, want %q", name, got, v)
		}
	}

	// And it participates in new writes: a post-join write through the
	// joiner's endpoint is visible cluster-wide.
	if _, err := jc.Write(ctx, "post-join", "ok"); err != nil {
		t.Fatalf("write via joiner: %v", err)
	}
	got, err := c.SyncRead(ctx, "post-join")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || got.Value != "ok" {
		t.Fatalf("post-join write not visible cluster-wide: %+v", got)
	}
}
