package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/pkg/api"
)

// Daemon is one live processor: the full reconfiguration stack with the
// MWMR shared-memory service — one vs/smr/regmem stack per shard,
// register names routed by the deterministic hash router — plus the
// HTTP client API speaking the repro/pkg/api contract. It is
// transport-generic — production runs it on tcp, the tests on inproc.
type Daemon struct {
	self      ids.ID
	tr        transport.Transport
	node      *core.Node
	mem       *shard.Map
	opTimeout time.Duration
	// Durability surface: stored reports a backend is attached; the
	// strings describe it in the /v1/storage document. snapBusy
	// serializes forced snapshots — a second trigger while one runs is
	// refused with snapshot_in_progress.
	stored   bool
	kind     string
	fsync    string
	dataDir  string
	snapBusy atomic.Bool
	// Observability: the per-daemon metrics registry (served on
	// GET /metrics), the HTTP instrumentation, and the pprof gate.
	reg      *obs.Registry
	httpReqs *httpInstruments
	pprof    bool
}

// DaemonConfig carries everything NewDaemon needs beyond the transport
// and the node's own identity.
type DaemonConfig struct {
	// Peers is every node of the cluster (the connection universe).
	Peers ids.Set
	// Members is the initial configuration (empty = start as a joiner
	// and acquire participation through the joining protocol).
	Members ids.Set
	// Shards is the register-namespace partition count (raised to 1 if
	// smaller).
	Shards int
	// Batch bounds the hot-path batching — payloads per datalink token
	// cycle and commands per multicast round input (DESIGN.md §11;
	// <= 1 disables batching; the bound must be cluster-uniform).
	Batch int
	// Window bounds the in-flight datalink token cycles per link
	// (DESIGN.md §14; <= 1 keeps the legacy stop-and-wait cycle;
	// cluster-uniform like Batch).
	Window int
	// Adaptive switches hot-path batch sizing to the queue-depth EWMA
	// (datalink drains and smr round inputs); false keeps the static
	// Batch bound bit-identical.
	Adaptive bool
	// MaxN is the system bound N (failure detector sizing).
	MaxN int
	// OpTimeout is the write/sync-read completion deadline
	// (<= 0 means 30s).
	OpTimeout time.Duration
	// DataDir enables the per-shard disk durability backend: each
	// shard logs to <DataDir>/shard-<i>/ and recovers from it at boot.
	// Empty means no durable storage (today's in-memory behavior).
	DataDir string
	// Fsync is the disk backend's durability policy (DataDir only).
	Fsync storage.Fsync
	// SnapEvery is the per-shard automatic compaction threshold: a
	// snapshot replaces the WAL once it holds this many records
	// (0 disables automatic snapshots; DataDir or Backends only).
	SnapEvery uint64
	// Backends overrides DataDir with caller-built per-shard backends
	// (tests inject memory or failing backends here). When set, Kind
	// and the storage document reflect what it returns.
	Backends func(shard int) (storage.Backend, error)
	// Logf receives storage diagnostics (discarded-snapshot warnings,
	// truncated-tail notices). Nil means silent.
	Logf func(format string, a ...any)
	// Pprof mounts the net/http/pprof handlers on the client API
	// (api.PathPprof); off by default since the profiles expose
	// internals.
	Pprof bool
}

// NewDaemon builds and wires the stack: the sharded service stacks,
// their durability backends (recovering each shard's registers from
// its snapshot + WAL tail before the node first ticks), the core node,
// and the transport connections.
func NewDaemon(tr transport.Transport, self ids.ID, cfg DaemonConfig) (*Daemon, error) {
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	// Coordinator-led delicate reconfiguration (Algorithm 4.6): the
	// view coordinator reconfigures when a configuration member is no
	// longer trusted. recMA's prediction path stays disabled, exactly
	// as the paper's modified Algorithm 3.2 prescribes for the vs
	// service; its majority-loss trigger remains active. Every shard
	// applies the same predicate against the shared configuration.
	mem := shard.New(self, cfg.Shards, func(cur ids.Set, trusted ids.Set) bool {
		return cur.Diff(trusted).Size() > 0
	})
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	mem.SetMaxBatch(cfg.Batch)
	mem.SetAdaptiveBatch(cfg.Adaptive)

	d := &Daemon{self: self, tr: tr, mem: mem, opTimeout: cfg.OpTimeout}
	// Attach durability before the node exists: recovery seeds each
	// shard's replica state here, so no tick can observe (or gossip) a
	// pre-recovery empty state.
	mk := cfg.Backends
	if mk == nil && cfg.DataDir != "" {
		dir := cfg.DataDir
		mk = func(sh int) (storage.Backend, error) {
			return storage.OpenDisk(
				filepath.Join(dir, fmt.Sprintf("shard-%d", sh)),
				storage.DiskOptions{Fsync: cfg.Fsync, Logf: cfg.Logf})
		}
	}
	if mk != nil {
		if err := mem.AttachStorage(mk, cfg.SnapEvery); err != nil {
			return nil, fmt.Errorf("noded: storage: %w", err)
		}
		d.stored = true
		d.fsync = cfg.Fsync.String()
		d.dataDir = cfg.DataDir
		if st, ok := mem.StorageStats(0); ok {
			d.kind = st.Kind
		}
	}

	initial := recsa.NotParticipant()
	if !cfg.Members.Empty() {
		initial = recsa.ConfigOf(cfg.Members)
	}
	node, err := core.NewNode(tr, core.Params{
		Self:     self,
		N:        cfg.MaxN,
		Initial:  initial,
		EvalConf: func(ids.Set, ids.Set) bool { return false },
		Apps:     mem.Apps(),
		Link: datalink.Options{
			MaxBatch:      cfg.Batch,
			Window:        cfg.Window,
			AdaptiveBatch: cfg.Adaptive,
		},
	})
	if err != nil {
		return nil, err
	}
	d.node = node
	others := cfg.Peers.Remove(self)
	if !tr.Inspect(self, func() {
		node.ConnectAll(others)
		node.Detector.Bootstrap(others)
	}) {
		return nil, fmt.Errorf("noded: wiring node %v failed", self)
	}
	d.pprof = cfg.Pprof
	d.initMetrics()
	return d, nil
}

// Node exposes the underlying core node (tests).
func (d *Daemon) Node() *core.Node { return d.node }

// Mem exposes the sharded register map (tests).
func (d *Daemon) Mem() *shard.Map { return d.mem }

func (d *Daemon) status() (api.Status, bool) {
	var st api.Status
	ok := d.tr.Inspect(d.self, func() {
		st.ID = int(d.self)
		st.Ticks = d.node.Ticks()
		st.Participant = d.node.IsParticipant()
		st.NoReco = d.node.NoReco()
		cfg, has := d.node.Quorum()
		st.HasConfig = has
		st.Config = setInts(cfg)
		st.Trusted = setInts(d.node.Trusted())
		st.Participants = setInts(d.node.Participants())
		st.Serving = st.Participant && st.HasConfig
		st.Shards = make([]api.ShardStatus, d.mem.N())
		for i := range st.Shards {
			st.Shards[i] = d.shardStatusLocked(i, st.Participant && st.HasConfig)
			st.Serving = st.Serving && st.Shards[i].Serving
		}
		// Shard 0 mirrors into the legacy top-level fields.
		st.HasView = st.Shards[0].HasView
		st.ViewCoord = st.Shards[0].ViewCoord
		st.ViewMembers = st.Shards[0].ViewMembers
	})
	return st, ok
}

// shardStatusLocked reads one shard's status; the caller must already be
// inside the node's execution context.
func (d *Daemon) shardStatusLocked(i int, reconfigured bool) api.ShardStatus {
	out := api.ShardStatus{Shard: i}
	mem, err := d.mem.Mem(i)
	if err != nil {
		return out
	}
	if v, hasV := mem.VS().CurrentView(); hasV {
		out.HasView = true
		out.ViewCoord = int(v.Coordinator())
		out.ViewMembers = setInts(v.Set)
	}
	out.Registers = mem.Registers()
	out.Rounds = mem.VS().Metrics().RoundsApplied
	out.Serving = reconfigured && out.HasView
	return out
}

// waitHandle polls an operation handle from outside the node context
// until it completes or the deadline passes.
func (d *Daemon) waitHandle(h *regmem.Handle) bool {
	deadline := time.Now().Add(d.opTimeout)
	for time.Now().Before(deadline) {
		done := false
		if !d.tr.Inspect(d.self, func() { done = h.Done() }) {
			return false
		}
		if done {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// regName validates the register name of a request; empty (or
// all-whitespace) names are rejected with 400 before touching the stack.
func regName(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		api.WriteError(w, api.Errorf(api.CodeEmptyRegister, "empty register name"))
		return "", false
	}
	return name, true
}

// checkShard validates a client-supplied shard index (path value or
// query parameter), rejecting malformed or out-of-range values with
// 400.
func (d *Daemon) checkShard(w http.ResponseWriter, raw string) (int, bool) {
	i, err := strconv.Atoi(raw)
	if err != nil || i < 0 || i >= d.mem.N() {
		api.WriteError(w, api.Errorf(api.CodeBadShard,
			"bad shard %q (node hosts shards 0..%d)", raw, d.mem.N()-1))
		return 0, false
	}
	return i, true
}

// shardParam resolves the ?shard= query parameter (default 0).
func (d *Daemon) shardParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("shard")
	if q == "" {
		return 0, true
	}
	return d.checkShard(w, q)
}

// nodeDown answers when the transport refuses to run an inspection —
// the node is closed or crashing.
func nodeDown(w http.ResponseWriter) {
	api.WriteError(w, api.Errorf(api.CodeUnavailable, "node is down"))
}

// storageDoc converts one shard's backend counters into the wire
// document.
func storageDoc(i int, st storage.Stats) api.ShardStorageStatus {
	doc := api.ShardStorageStatus{
		Shard:             i,
		Kind:              st.Kind,
		WALRecords:        st.WALRecords,
		WALBytes:          st.WALBytes,
		Appended:          st.Appended,
		Snapshots:         st.Snapshots,
		SnapshotIndex:     st.SnapshotIndex,
		SnapshotBytes:     st.SnapshotBytes,
		Recovered:         st.Recovery.Recovered,
		SnapshotLoaded:    st.Recovery.SnapshotLoaded,
		RecoveredBytes:    st.Recovery.SnapshotBytes,
		TailRecords:       st.Recovery.TailRecords,
		SkippedRecords:    st.Recovery.SkippedRecords,
		TruncatedWALBytes: st.Recovery.TruncatedBytes,
		Failed:            st.Failed,
		LastError:         st.LastError,
	}
	if !st.LastSnapshot.IsZero() {
		doc.LastSnapshotUnix = st.LastSnapshot.Unix()
	}
	return doc
}

// storageStatus reads the node-level durability document inside the
// execution context.
func (d *Daemon) storageStatus() (api.StorageStatus, bool) {
	st := api.StorageStatus{ID: int(d.self)}
	if !d.stored {
		return st, d.tr.Inspect(d.self, func() {})
	}
	ok := d.tr.Inspect(d.self, func() {
		st.Attached, st.Kind, st.Fsync, st.DataDir = true, d.kind, d.fsync, d.dataDir
		for i := 0; i < d.mem.N(); i++ {
			if s, has := d.mem.StorageStats(i); has {
				st.Shards = append(st.Shards, storageDoc(i, s))
			}
		}
	})
	return st, ok
}

// Handler returns the client API: the /v1 contract of repro/pkg/api,
// every response application/json, every error the uniform envelope.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()

	// Liveness: served without entering the node's execution context,
	// so it answers even while the stack is wedged mid-reconfiguration.
	// Scripts and CI poll this (cheap, no view lock) before switching
	// to the full status wait.
	mux.HandleFunc("GET "+api.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, api.Health{OK: true, ID: int(d.self)})
	})

	mux.HandleFunc("GET "+api.PathStatus, func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.status()
		if !ok {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, st)
	})

	mux.HandleFunc("GET "+api.PathShards, func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.status()
		if !ok {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, st.Shards)
	})

	mux.HandleFunc("GET "+api.PathShards+"/{shard}", func(w http.ResponseWriter, r *http.Request) {
		i, ok := d.checkShard(w, r.PathValue("shard"))
		if !ok {
			return
		}
		st, ok := d.status()
		if !ok {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, st.Shards[i])
	})

	getReg := func(w http.ResponseWriter, r *http.Request) {
		name, ok := regName(w, r)
		if !ok {
			return
		}
		if r.URL.Query().Get("sync") != "" {
			var h *regmem.Handle
			var sh int
			if !d.tr.Inspect(d.self, func() { h, sh = d.mem.SyncRead(name) }) {
				nodeDown(w)
				return
			}
			if !d.waitHandle(h) {
				api.WriteError(w, api.Errorf(api.CodeTimeout,
					"sync read did not complete (retry)").WithShard(sh))
				return
			}
			var resp api.RegResponse
			if !d.tr.Inspect(d.self, func() {
				v, found := h.Value()
				resp = api.RegResponse{Name: name, Shard: sh, Value: v, Found: found, Done: true}
			}) {
				nodeDown(w)
				return
			}
			api.WriteJSON(w, resp)
			return
		}
		var resp api.RegResponse
		if !d.tr.Inspect(d.self, func() {
			v, found := d.mem.Read(name)
			resp = api.RegResponse{Name: name, Shard: shard.ShardFor(name, d.mem.N()), Value: v, Found: found, Done: true}
		}) {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, resp)
	}
	mux.HandleFunc("GET "+api.PathReg+"{name}", getReg)

	putReg := func(w http.ResponseWriter, r *http.Request) {
		name, ok := regName(w, r)
		if !ok {
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, api.MaxBody))
		if err != nil {
			api.WriteError(w, api.Errorf(api.CodeBadRequest, "read body: %v", err))
			return
		}
		value := string(body)
		var h *regmem.Handle
		var sh int
		if !d.tr.Inspect(d.self, func() { h, sh = d.mem.Write(name, value) }) {
			nodeDown(w)
			return
		}
		if !d.waitHandle(h) {
			api.WriteError(w, api.Errorf(api.CodeTimeout,
				"write did not complete (retry)").WithShard(sh))
			return
		}
		api.WriteJSON(w, api.RegResponse{Name: name, Shard: sh, Value: value, Done: true})
	}
	mux.HandleFunc("PUT "+api.PathReg+"{name}", putReg)
	mux.HandleFunc("POST "+api.PathReg+"{name}", putReg)
	// An empty {name} segment does not match the routes above; answer
	// it with an explicit 400 instead of a bare 404.
	emptyReg := func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, api.Errorf(api.CodeEmptyRegister, "empty register name"))
	}
	mux.HandleFunc("GET "+api.PathReg+"{$}", emptyReg)
	mux.HandleFunc("PUT "+api.PathReg+"{$}", emptyReg)
	mux.HandleFunc("POST "+api.PathReg+"{$}", emptyReg)

	mux.HandleFunc("POST "+api.PathSMRPropose, func(w http.ResponseWriter, r *http.Request) {
		sh, ok := d.shardParam(w, r)
		if !ok {
			return
		}
		var req api.ProposeRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, api.MaxBody)).Decode(&req); err != nil {
			api.WriteError(w, api.Errorf(api.CodeBadRequest, "decode: %v", err).WithShard(sh))
			return
		}
		accepted := false
		if !d.tr.Inspect(d.self, func() {
			mem, err := d.mem.Mem(sh)
			if err != nil {
				return
			}
			accepted = mem.SMR().Submit(smr.KVCmd{Op: smr.KVPut, Key: req.Key, Value: req.Value})
		}) {
			nodeDown(w)
			return
		}
		if !accepted {
			api.WriteError(w, api.Errorf(api.CodeOverload,
				"submission queue full (retry)").WithShard(sh))
			return
		}
		api.WriteJSON(w, api.ProposeResponse{Accepted: true, Shard: sh})
	})

	mux.HandleFunc("GET "+api.PathStorage, func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.storageStatus()
		if !ok {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, st)
	})

	mux.HandleFunc("GET "+api.PathStorage+"/{shard}", func(w http.ResponseWriter, r *http.Request) {
		i, ok := d.checkShard(w, r.PathValue("shard"))
		if !ok {
			return
		}
		if !d.stored {
			api.WriteError(w, api.Errorf(api.CodeStorageUnavailable,
				"node runs without a durability backend (start with -data-dir)").WithShard(i))
			return
		}
		var doc api.ShardStorageStatus
		has := false
		if !d.tr.Inspect(d.self, func() {
			var st storage.Stats
			if st, has = d.mem.StorageStats(i); has {
				doc = storageDoc(i, st)
			}
		}) {
			nodeDown(w)
			return
		}
		if !has {
			api.WriteError(w, api.Errorf(api.CodeStorageUnavailable,
				"shard has no durability backend").WithShard(i))
			return
		}
		api.WriteJSON(w, doc)
	})

	mux.HandleFunc("POST "+api.PathStorageSnapshot, func(w http.ResponseWriter, r *http.Request) {
		var req api.SnapshotRequest
		body, err := io.ReadAll(io.LimitReader(r.Body, api.MaxBody))
		if err != nil {
			api.WriteError(w, api.Errorf(api.CodeBadRequest, "read body: %v", err))
			return
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				api.WriteError(w, api.Errorf(api.CodeBadRequest, "decode: %v", err))
				return
			}
		}
		targets := make([]int, 0, d.mem.N())
		if req.Shard != nil {
			i, ok := d.checkShard(w, strconv.Itoa(*req.Shard))
			if !ok {
				return
			}
			targets = append(targets, i)
		} else {
			for i := 0; i < d.mem.N(); i++ {
				targets = append(targets, i)
			}
		}
		if !d.stored {
			e := api.Errorf(api.CodeStorageUnavailable,
				"node runs without a durability backend (start with -data-dir)")
			if req.Shard != nil {
				e = e.WithShard(*req.Shard)
			}
			api.WriteError(w, e)
			return
		}
		// One forced compaction at a time: a second trigger while the
		// first still runs gets the 409 (which clients never fail over —
		// snapshots are per-node state).
		if !d.snapBusy.CompareAndSwap(false, true) {
			api.WriteError(w, api.Errorf(api.CodeSnapshotInProgress,
				"a forced snapshot is already running"))
			return
		}
		defer d.snapBusy.Store(false)
		resp := api.SnapshotResponse{Snapshotted: []int{}}
		var snapErr error
		errShard := -1
		if !d.tr.Inspect(d.self, func() {
			for _, i := range targets {
				if err := d.mem.ForceSnapshot(i); err != nil {
					snapErr, errShard = err, i
					return
				}
				resp.Snapshotted = append(resp.Snapshotted, i)
				if st, has := d.mem.StorageStats(i); has {
					resp.Shards = append(resp.Shards, storageDoc(i, st))
				}
			}
		}) {
			nodeDown(w)
			return
		}
		if snapErr != nil {
			api.WriteError(w, api.Errorf(api.CodeStorageUnavailable,
				"snapshot failed: %v", snapErr).WithShard(errShard))
			return
		}
		api.WriteJSON(w, resp)
	})

	mux.HandleFunc("GET "+api.PathSMRLog, func(w http.ResponseWriter, r *http.Request) {
		sh, ok := d.shardParam(w, r)
		if !ok {
			return
		}
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		var entries []api.LogEntry
		if !d.tr.Inspect(d.self, func() {
			mem, err := d.mem.Mem(sh)
			if err != nil {
				return
			}
			log := mem.SMR().Log()
			if len(log) > n {
				log = log[len(log)-n:]
			}
			entries = make([]api.LogEntry, 0, len(log))
			for _, a := range log {
				entries = append(entries, api.LogEntry{
					View:   a.View.String(),
					Rnd:    a.Rnd,
					Member: int(a.Member),
					Cmd:    fmt.Sprint(a.Cmd),
				})
			}
		}) {
			nodeDown(w)
			return
		}
		api.WriteJSON(w, entries)
	})

	// Operational endpoints outside the /v1 contract (documented in
	// pkg/api): the Prometheus text page, and — only when enabled — the
	// pprof profiles. /metrics bypasses the JSON envelope (its body is
	// text exposition format by definition).
	mux.HandleFunc("GET "+api.PathMetrics, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//repolint:allow errenvelope -- /metrics serves Prometheus text exposition, not the JSON envelope
		_ = d.reg.Render(w)
	})
	if d.pprof {
		mux.HandleFunc(api.PathPprof, pprof.Index)
		mux.HandleFunc(api.PathPprof+"cmdline", pprof.Cmdline)
		mux.HandleFunc(api.PathPprof+"profile", pprof.Profile)
		mux.HandleFunc(api.PathPprof+"symbol", pprof.Symbol)
		mux.HandleFunc(api.PathPprof+"trace", pprof.Trace)
	}

	return d.httpReqs.instrument(envelopeFallbacks(mux))
}

// envelopeFallbacks wraps the mux so its built-in plain-text 404/405
// responses (unknown route, known route with the wrong method) carry
// the uniform JSON envelope instead: the contract promises
// application/json on every response. Handler-written JSON errors pass
// through untouched — they set their Content-Type before WriteHeader.
func envelopeFallbacks(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

type envelopeWriter struct {
	http.ResponseWriter
	// rewrote: the plain-text error was replaced with an envelope and
	// the original body must be swallowed.
	rewrote bool
	wrote   bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	w.wrote = true
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.Contains(w.Header().Get("Content-Type"), "json") {
		w.rewrote = true
		code2 := api.CodeNotFound
		if code == http.StatusMethodNotAllowed {
			code2 = api.CodeMethodNotAllowed
		}
		e := api.Errorf(code2, "%s", strings.ToLower(http.StatusText(code)))
		e.HTTPStatus = code
		api.WriteError(w.ResponseWriter, e)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	if w.rewrote {
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}
