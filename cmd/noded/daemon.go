package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/recsa"
	"repro/internal/regmem"
	"repro/internal/smr"
	"repro/internal/transport"
)

// Daemon is one live processor: the full reconfiguration stack with the
// MWMR shared-memory service on top, plus the HTTP client API. It is
// transport-generic — production runs it on tcp, the tests on inproc.
type Daemon struct {
	self      ids.ID
	tr        transport.Transport
	node      *core.Node
	mem       *regmem.SharedMemory
	opTimeout time.Duration
}

// NewDaemon builds and wires the stack. peers is every node of the
// cluster (the connection universe); members is the initial
// configuration (empty = start as a joiner and acquire participation
// through the joining protocol).
func NewDaemon(tr transport.Transport, self ids.ID, peers, members ids.Set, maxN int, opTimeout time.Duration) (*Daemon, error) {
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	// Coordinator-led delicate reconfiguration (Algorithm 4.6): the
	// view coordinator reconfigures when a configuration member is no
	// longer trusted. recMA's prediction path stays disabled, exactly
	// as the paper's modified Algorithm 3.2 prescribes for the vs
	// service; its majority-loss trigger remains active.
	mem := regmem.New(self, func(cur ids.Set, trusted ids.Set) bool {
		return cur.Diff(trusted).Size() > 0
	})
	initial := recsa.NotParticipant()
	if !members.Empty() {
		initial = recsa.ConfigOf(members)
	}
	node, err := core.NewNode(tr, core.Params{
		Self:     self,
		N:        maxN,
		Initial:  initial,
		EvalConf: func(ids.Set, ids.Set) bool { return false },
		App:      mem,
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{self: self, tr: tr, node: node, mem: mem, opTimeout: opTimeout}
	others := peers.Remove(self)
	if !tr.Inspect(self, func() {
		node.ConnectAll(others)
		node.Detector.Bootstrap(others)
	}) {
		return nil, fmt.Errorf("noded: wiring node %v failed", self)
	}
	return d, nil
}

// Node exposes the underlying core node (tests).
func (d *Daemon) Node() *core.Node { return d.node }

// Status is the introspection document served at /v1/status.
type Status struct {
	ID           int    `json:"id"`
	Ticks        uint64 `json:"ticks"`
	Participant  bool   `json:"participant"`
	NoReco       bool   `json:"noReco"`
	HasConfig    bool   `json:"hasConfig"`
	Config       []int  `json:"config"`
	Trusted      []int  `json:"trusted"`
	Participants []int  `json:"participants"`
	HasView      bool   `json:"hasView"`
	ViewCoord    int    `json:"viewCoordinator"`
	ViewMembers  []int  `json:"viewMembers"`
	// Serving means the node can make progress on client operations: it
	// participates, holds an agreed configuration, and sits in an
	// installed view.
	Serving bool `json:"serving"`
}

// RegResponse answers register reads and writes.
type RegResponse struct {
	Name  string `json:"name"`
	Value string `json:"value,omitempty"`
	Found bool   `json:"found,omitempty"`
	Done  bool   `json:"done"`
}

// ProposeRequest submits a raw SMR command.
type ProposeRequest struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// LogEntry is one applied SMR command.
type LogEntry struct {
	View   string `json:"view"`
	Rnd    uint64 `json:"rnd"`
	Member int    `json:"member"`
	Cmd    string `json:"cmd"`
}

func (d *Daemon) status() (Status, bool) {
	var st Status
	ok := d.tr.Inspect(d.self, func() {
		st.ID = int(d.self)
		st.Ticks = d.node.Ticks()
		st.Participant = d.node.IsParticipant()
		st.NoReco = d.node.NoReco()
		cfg, has := d.node.Quorum()
		st.HasConfig = has
		st.Config = setInts(cfg)
		st.Trusted = setInts(d.node.Trusted())
		st.Participants = setInts(d.node.Participants())
		if v, hasV := d.mem.VS().CurrentView(); hasV {
			st.HasView = true
			st.ViewCoord = int(v.Coordinator())
			st.ViewMembers = setInts(v.Set)
		}
		st.Serving = st.Participant && st.HasConfig && st.HasView
	})
	return st, ok
}

// waitHandle polls an operation handle from outside the node context
// until it completes or the deadline passes.
func (d *Daemon) waitHandle(h *regmem.Handle) bool {
	deadline := time.Now().Add(d.opTimeout)
	for time.Now().Before(deadline) {
		done := false
		if !d.tr.Inspect(d.self, func() { done = h.Done() }) {
			return false
		}
		if done {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Handler returns the client API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.status()
		if !ok {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, st)
	})

	mux.HandleFunc("GET /v1/reg/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if r.URL.Query().Get("sync") != "" {
			var h *regmem.Handle
			if !d.tr.Inspect(d.self, func() { h = d.mem.SyncRead(name) }) {
				httpErr(w, http.StatusServiceUnavailable, "node is down")
				return
			}
			if !d.waitHandle(h) {
				httpErr(w, http.StatusGatewayTimeout, "sync read did not complete (retry)")
				return
			}
			var resp RegResponse
			if !d.tr.Inspect(d.self, func() {
				v, found := h.Value()
				resp = RegResponse{Name: name, Value: v, Found: found, Done: true}
			}) {
				httpErr(w, http.StatusServiceUnavailable, "node is down")
				return
			}
			writeJSON(w, resp)
			return
		}
		var resp RegResponse
		if !d.tr.Inspect(d.self, func() {
			v, found := d.mem.Read(name)
			resp = RegResponse{Name: name, Value: v, Found: found, Done: true}
		}) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, resp)
	})

	putReg := func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			httpErr(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		value := string(body)
		var h *regmem.Handle
		if !d.tr.Inspect(d.self, func() { h = d.mem.Write(name, value) }) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		if !d.waitHandle(h) {
			httpErr(w, http.StatusGatewayTimeout, "write did not complete (retry)")
			return
		}
		writeJSON(w, RegResponse{Name: name, Value: value, Done: true})
	}
	mux.HandleFunc("PUT /v1/reg/{name}", putReg)
	mux.HandleFunc("POST /v1/reg/{name}", putReg)

	mux.HandleFunc("POST /v1/smr/propose", func(w http.ResponseWriter, r *http.Request) {
		var req ProposeRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, "decode: "+err.Error())
			return
		}
		accepted := false
		if !d.tr.Inspect(d.self, func() {
			accepted = d.mem.SMR().Submit(smr.KVCmd{Op: smr.KVPut, Key: req.Key, Value: req.Value})
		}) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		if !accepted {
			httpErr(w, http.StatusTooManyRequests, "submission queue full (retry)")
			return
		}
		writeJSON(w, map[string]bool{"accepted": true})
	})

	mux.HandleFunc("GET /v1/smr/log", func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		var entries []LogEntry
		if !d.tr.Inspect(d.self, func() {
			log := d.mem.SMR().Log()
			if len(log) > n {
				log = log[len(log)-n:]
			}
			entries = make([]LogEntry, 0, len(log))
			for _, a := range log {
				entries = append(entries, LogEntry{
					View:   a.View.String(),
					Rnd:    a.Rnd,
					Member: int(a.Member),
					Cmd:    fmt.Sprint(a.Cmd),
				})
			}
		}) {
			httpErr(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		writeJSON(w, entries)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
